//===- tools/slin_serviced.cpp - Stream service daemon --------------------===//
///
/// \file
/// The long-lived serving daemon: compile (or prefetch) a serving set
/// of stream graphs once, then answer run/stats/list requests over a
/// Unix or loopback-TCP socket until a client sends shutdown or the
/// process receives SIGINT/SIGTERM.
///
///   slin-serviced --unix /tmp/slin.sock
///   slin-serviced --tcp 0 --graphs FIR,FilterBank --workers 4
///   slin-serviced --unix /tmp/slin.sock --require-warm   # CI: no compiles
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "support/RuntimeConfig.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace slin;
using namespace slin::service;

namespace {

std::atomic<bool> SignalStop{false};

void onSignal(int) { SignalStop.store(true); }

void usage() {
  std::fprintf(
      stderr,
      "usage: slin-serviced (--unix PATH | --tcp PORT) [options]\n"
      "\n"
      "  --unix PATH       listen on a Unix-domain socket\n"
      "  --tcp PORT        listen on loopback TCP (0: ephemeral, printed)\n"
      "  --graphs A,B,C    serving set (default: every benchmark)\n"
      "  --mode MODE       base|linear|freq|redundancy|autosel (default:\n"
      "                    autosel)\n"
      "  --workers N       pool workers per graph (default: hardware)\n"
      "  --queue N         per-graph queued-request cap (default: 64)\n"
      "  --deadline-ms N   default per-request deadline (default:\n"
      "                    SLIN_RUN_DEADLINE_MS, else none)\n"
      "  --outputs N       default outputs per request (default: 256)\n"
      "  --no-prefetch     skip the startup artifact-store bulk load\n"
      "  --require-warm    exit nonzero if any serving-set graph needed a\n"
      "                    compile (CI hook: a warm store serves with zero\n"
      "                    passes)\n");
}

std::vector<std::string> splitCommas(const std::string &S) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

bool parseMode(const std::string &S, OptMode &M) {
  if (S == "base")
    M = OptMode::Base;
  else if (S == "linear")
    M = OptMode::Linear;
  else if (S == "freq")
    M = OptMode::Freq;
  else if (S == "redundancy")
    M = OptMode::Redundancy;
  else if (S == "autosel")
    M = OptMode::AutoSel;
  else
    return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerConfig Cfg;
  Cfg.Service.DefaultDeadlineMillis =
      RuntimeConfig::current().RunDeadlineMillis;
  bool RequireWarm = false;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "slin-serviced: %s needs a value\n", Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--unix")
      Cfg.UnixPath = Value();
    else if (Arg == "--tcp")
      Cfg.TcpPort = std::atoi(Value());
    else if (Arg == "--graphs")
      Cfg.Service.Graphs = splitCommas(Value());
    else if (Arg == "--mode") {
      std::string M = Value();
      if (!parseMode(M, Cfg.Service.Mode)) {
        std::fprintf(stderr, "slin-serviced: unknown mode '%s'\n", M.c_str());
        return 2;
      }
    } else if (Arg == "--workers")
      Cfg.Service.Workers = std::atoi(Value());
    else if (Arg == "--queue")
      Cfg.Service.MaxQueueDepth = static_cast<size_t>(std::atol(Value()));
    else if (Arg == "--deadline-ms")
      Cfg.Service.DefaultDeadlineMillis = std::atol(Value());
    else if (Arg == "--outputs")
      Cfg.Service.DefaultOutputs = static_cast<uint32_t>(std::atol(Value()));
    else if (Arg == "--no-prefetch")
      Cfg.Service.Prefetch = false;
    else if (Arg == "--require-warm")
      RequireWarm = true;
    else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "slin-serviced: unknown argument '%s'\n",
                   Arg.c_str());
      usage();
      return 2;
    }
  }
  if (Cfg.UnixPath.empty() && Cfg.TcpPort < 0) {
    usage();
    return 2;
  }

  Server Srv(Cfg);
  Status St = Srv.start();
  if (!St.isOk()) {
    std::fprintf(stderr, "slin-serviced: %s\n", St.message().c_str());
    return 1;
  }

  Admission::Counters C = Srv.admission().counters();
  if (!Cfg.UnixPath.empty())
    std::printf("slin-serviced: listening on %s\n", Cfg.UnixPath.c_str());
  else
    std::printf("slin-serviced: listening on 127.0.0.1:%d\n", Srv.tcpPort());
  std::printf("slin-serviced: serving %zu graphs (%llu warm, %llu compiled, "
              "%llu artifacts prefetched)\n",
              Srv.admission().graphs().size(),
              static_cast<unsigned long long>(C.WarmStarts),
              static_cast<unsigned long long>(C.StartupCompiles),
              static_cast<unsigned long long>(C.PrefetchedArtifacts));
  std::fflush(stdout);

  if (RequireWarm && C.StartupCompiles > 0) {
    std::fprintf(stderr,
                 "slin-serviced: --require-warm: %llu graphs compiled at "
                 "startup (expected all from cache)\n",
                 static_cast<unsigned long long>(C.StartupCompiles));
    Srv.stop();
    return 3;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  Srv.waitForShutdown([] { return SignalStop.load(); });
  Srv.stop();
  std::printf("slin-serviced: shut down cleanly\n");
  return 0;
}
