//===- tools/slin_lint.cpp - Standalone WIR lint driver -------------------===//
///
/// \file
/// slin-lint: runs the three abstract-interpretation lint analyses
/// (src/verify/Lint.h — verify-linear, verify-bounds, verify-state) over
/// compiled programs and prints a findings report.
///
///   slin-lint --all-graphs            lint every benchmark program
///   slin-lint --graph FIR             lint one benchmark by name
///   slin-lint --store DIR             lint every artifact in a store
///   slin-lint                         --store $SLIN_ARTIFACT_DIR, else
///                                     --all-graphs
///   ... --json                        machine-readable report
///
/// Exit status: 0 when every linted program is clean (no Error-severity
/// findings), 1 when any lint finding is an Error, 2 on usage errors or
/// when a requested program/artifact cannot be built or loaded.
///
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "compiler/ArtifactStore.h"
#include "compiler/Program.h"
#include "support/RuntimeConfig.h"
#include "support/StatsRegistry.h"
#include "verify/Lint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

using namespace slin;

namespace {

struct Options {
  std::vector<std::string> Graphs;
  bool AllGraphs = false;
  std::string StoreDir;
  bool Json = false;
  bool Stats = false;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--graph NAME]... [--all-graphs] [--store DIR] "
               "[--json] [--stats]\n"
               "With no selection, lints $SLIN_ARTIFACT_DIR when set, else "
               "all benchmark graphs.\n",
               Argv0);
  return 2;
}

/// One linted program's report, labelled for the combined output.
struct Linted {
  std::string Label;
  verify::LintReport Report;
};

bool lintBenchmark(const apps::BenchmarkEntry &B, std::vector<Linted> &Out) {
  StreamPtr Root = B.Build();
  if (!Root) {
    std::fprintf(stderr, "slin-lint: cannot build graph '%s'\n",
                 B.Name.c_str());
    return false;
  }
  CompiledProgram P(*Root, CompiledOptions{});
  Out.push_back({B.Name, verify::lintProgram(P)});
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--graph" && I + 1 < Argc)
      Opt.Graphs.push_back(Argv[++I]);
    else if (A == "--all-graphs")
      Opt.AllGraphs = true;
    else if (A == "--store" && I + 1 < Argc)
      Opt.StoreDir = Argv[++I];
    else if (A == "--json")
      Opt.Json = true;
    else if (A == "--stats")
      Opt.Stats = true;
    else
      return usage(Argv[0]);
  }
  if (Opt.Graphs.empty() && !Opt.AllGraphs && Opt.StoreDir.empty()) {
    std::string Env = RuntimeConfig::current().ArtifactDir;
    if (!Env.empty())
      Opt.StoreDir = Env;
    else
      Opt.AllGraphs = true;
  }

  std::vector<Linted> Results;
  bool LoadFailed = false;

  const std::vector<apps::BenchmarkEntry> &Benches = apps::allBenchmarks();
  if (Opt.AllGraphs) {
    for (const apps::BenchmarkEntry &B : Benches)
      LoadFailed |= !lintBenchmark(B, Results);
  }
  for (const std::string &Name : Opt.Graphs) {
    const apps::BenchmarkEntry *Found = nullptr;
    for (const apps::BenchmarkEntry &B : Benches)
      if (B.Name == Name)
        Found = &B;
    if (!Found) {
      std::fprintf(stderr, "slin-lint: unknown graph '%s'\n", Name.c_str());
      LoadFailed = true;
      continue;
    }
    LoadFailed |= !lintBenchmark(*Found, Results);
  }
  if (!Opt.StoreDir.empty()) {
    // Probe before constructing the store: the ArtifactStore ctor
    // mkdirs its directory, which would paper over a typo'd path.
    std::error_code EC;
    if (!std::filesystem::is_directory(Opt.StoreDir, EC)) {
      std::fprintf(stderr,
                   "slin-lint: store directory '%s' does not exist\n",
                   Opt.StoreDir.c_str());
      return 2;
    }
    ArtifactStore Store(Opt.StoreDir);
    std::vector<ArtifactStore::Key> Keys = Store.listArtifacts();
    if (Keys.empty()) {
      // Nothing to lint is a failure, not a clean report: this is how
      // a mis-wired lint-what-you-serve CI step would silently pass.
      std::fprintf(stderr, "slin-lint: no artifacts in '%s'\n",
                   Opt.StoreDir.c_str());
      LoadFailed = true;
    }
    for (const ArtifactStore::Key &K : Keys) {
      std::shared_ptr<const CompiledProgram> P = Store.load(K);
      std::string Label = "artifact " + K.Structure.str().substr(0, 12);
      if (!P) {
        std::fprintf(stderr,
                     "slin-lint: artifact %s-%s failed to load/validate\n",
                     K.Structure.str().c_str(), K.Options.str().c_str());
        LoadFailed = true;
        continue;
      }
      Results.push_back({Label, verify::lintProgram(*P)});
    }
  }

  size_t Errors = 0, Notes = 0;
  for (const Linted &L : Results) {
    Errors += L.Report.errorCount();
    Notes += L.Report.noteCount();
  }

  if (Opt.Json) {
    std::string Out = "{\"programs\":[";
    for (size_t I = 0; I != Results.size(); ++I) {
      if (I)
        Out += ",";
      Out += "{\"name\":\"" + Results[I].Label +
             "\",\"report\":" + Results[I].Report.json() + "}";
    }
    Out += "],\"errors\":" + std::to_string(Errors) +
           ",\"notes\":" + std::to_string(Notes) + "}";
    std::printf("%s\n", Out.c_str());
  } else {
    for (const Linted &L : Results) {
      if (L.Report.findings().empty())
        continue;
      std::printf("== %s ==\n%s", L.Label.c_str(), L.Report.text().c_str());
    }
    std::printf("slin-lint: %zu program(s), %zu error(s), %zu note(s)\n",
                Results.size(), Errors, Notes);
  }

  if (Opt.Stats) {
    // The unified counter snapshot (support/StatsRegistry.h) for this
    // run: cache/store behaviour of exactly the programs linted above.
    std::printf("%s\n", StatsRegistry::json(StatsRegistry::global().snapshot())
                             .c_str());
  }

  if (LoadFailed)
    return 2;
  return Errors ? 1 : 0;
}
