//===- tools/slin_service_client.cpp - Service client CLI -----------------===//
///
/// \file
/// Command-line client for the stream service daemon: liveness probes,
/// serving-set listing, unified stats dumps, runs and shutdown, over
/// the same wire protocol every other client speaks.
///
///   slin-service-client --unix /tmp/slin.sock ping
///   slin-service-client --unix /tmp/slin.sock list
///   slin-service-client --unix /tmp/slin.sock stats --json
///   slin-service-client --unix /tmp/slin.sock run --graph FIR -n 1024
///   slin-service-client --tcp 9090 shutdown
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "support/StatsRegistry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace slin;
using namespace slin::service;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: slin-service-client (--unix PATH | --tcp PORT) COMMAND\n"
      "\n"
      "commands:\n"
      "  ping                        liveness round-trip\n"
      "  list                        serving-set graph names\n"
      "  stats [--json]              unified counter snapshot\n"
      "  shutdown                    ask the daemon to exit\n"
      "  run --graph NAME [-n N] [--engine compiled|parallel|native]\n"
      "      [--latency] [--deadline-ms N] [--count-ops]\n");
}

bool parseEngine(const std::string &S, Engine &E) {
  if (S == "compiled")
    E = Engine::Compiled;
  else if (S == "parallel")
    E = Engine::Parallel;
  else if (S == "native")
    E = Engine::Native;
  else
    return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string UnixPath;
  int TcpPort = -1;
  std::string Command;
  bool Json = false;
  RunRequest Run;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&]() -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "slin-service-client: %s needs a value\n",
                     Arg.c_str());
        std::exit(2);
      }
      return Argv[++I];
    };
    if (Arg == "--unix")
      UnixPath = Value();
    else if (Arg == "--tcp")
      TcpPort = std::atoi(Value());
    else if (Arg == "--json")
      Json = true;
    else if (Arg == "--graph")
      Run.Graph = Value();
    else if (Arg == "-n" || Arg == "--outputs")
      Run.NOutputs = static_cast<uint32_t>(std::atol(Value()));
    else if (Arg == "--engine") {
      std::string E = Value();
      if (!parseEngine(E, Run.Eng)) {
        std::fprintf(stderr, "slin-service-client: unknown engine '%s'\n",
                     E.c_str());
        return 2;
      }
    } else if (Arg == "--latency")
      Run.Latency = true;
    else if (Arg == "--deadline-ms")
      Run.DeadlineMillis = std::atol(Value());
    else if (Arg == "--count-ops")
      Run.CountOps = true;
    else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else if (!Arg.empty() && Arg[0] != '-' && Command.empty())
      Command = Arg;
    else {
      std::fprintf(stderr, "slin-service-client: unknown argument '%s'\n",
                   Arg.c_str());
      usage();
      return 2;
    }
  }
  if (Command.empty() || (UnixPath.empty() && TcpPort < 0)) {
    usage();
    return 2;
  }

  Expected<Client> EC = UnixPath.empty() ? Client::connectTcp(TcpPort)
                                         : Client::connectUnix(UnixPath);
  if (!EC.hasValue()) {
    std::fprintf(stderr, "slin-service-client: %s\n",
                 EC.status().message().c_str());
    return 1;
  }
  Client C = EC.take();

  if (Command == "ping") {
    Status St = C.ping();
    if (!St.isOk()) {
      std::fprintf(stderr, "slin-service-client: %s\n", St.message().c_str());
      return 1;
    }
    std::printf("ok\n");
    return 0;
  }
  if (Command == "list") {
    Expected<std::vector<std::string>> EG = C.listGraphs();
    if (!EG.hasValue()) {
      std::fprintf(stderr, "slin-service-client: %s\n",
                   EG.status().message().c_str());
      return 1;
    }
    for (const std::string &G : EG.take())
      std::printf("%s\n", G.c_str());
    return 0;
  }
  if (Command == "stats") {
    Expected<StatsRegistry::Counters> ES = C.stats();
    if (!ES.hasValue()) {
      std::fprintf(stderr, "slin-service-client: %s\n",
                   ES.status().message().c_str());
      return 1;
    }
    StatsRegistry::Counters Counters = ES.take();
    if (Json) {
      std::printf("%s\n", StatsRegistry::json(Counters).c_str());
    } else {
      for (const auto &KV : Counters)
        std::printf("%-40s %llu\n", KV.first.c_str(),
                    static_cast<unsigned long long>(KV.second));
    }
    return 0;
  }
  if (Command == "shutdown") {
    Status St = C.shutdownServer();
    if (!St.isOk()) {
      std::fprintf(stderr, "slin-service-client: %s\n", St.message().c_str());
      return 1;
    }
    std::printf("shutdown acknowledged\n");
    return 0;
  }
  if (Command == "run") {
    if (Run.Graph.empty()) {
      std::fprintf(stderr, "slin-service-client: run needs --graph\n");
      return 2;
    }
    Expected<RunResponse> ER = C.run(Run);
    if (!ER.hasValue()) {
      std::fprintf(stderr, "slin-service-client: %s\n",
                   ER.status().message().c_str());
      return 1;
    }
    RunResponse R = ER.take();
    if (!R.St.isOk()) {
      std::fprintf(stderr, "run failed: %s\n", R.St.message().c_str());
      return 1;
    }
    std::printf("outputs: %zu\n", R.Outputs.size());
    if (Run.CountOps)
      std::printf("flops: %llu\n",
                  static_cast<unsigned long long>(R.Flops));
    std::printf("server seconds: %.6f\n", R.ServerSeconds);
    if (Run.Latency)
      std::printf("first output seconds: %.6f\n", R.FirstOutputSeconds);
    if (R.Degraded)
      std::printf("degraded: %s\n", R.DegradeReason.c_str());
    return 0;
  }

  std::fprintf(stderr, "slin-service-client: unknown command '%s'\n",
               Command.c_str());
  usage();
  return 2;
}
