#!/usr/bin/env python3
"""Perf-regression gate over the BENCH_*.json trajectory.

Compares a run's benchmark JSON (written by bench/BenchUtil.h's JsonReport
into $SLIN_BENCH_DIR) against a committed baseline snapshot and fails when
any entry's headline wall-clock metric regressed by more than the
threshold. Entries are matched by (label, engine); the headline metric is
the first wall-clock field an entry carries, in this preference order:

    ns_per_output, p99_ms, p50_ms, ms, warm_ms, cold_ms, seconds

FLOP/multiplication counts are deterministic and checked by the test
suite, so only wall-clock fields gate here. New benchmarks and new
entries pass ungated, but are *reported* as "NEW (ungated)" rows so a
reviewer can see what has no baseline yet and refresh it with --update.
A whole baseline file absent from the current run is reported and
skipped (partial runs gate what they ran); a baseline entry missing
from a file the current run DID produce fails, so coverage within a
benchmark cannot silently shrink.

Usage:
    bench_compare.py BASELINE_DIR CURRENT_DIR [--threshold 0.25]
    bench_compare.py BASELINE_DIR CURRENT_DIR --update   # refresh baseline
"""

import argparse
import json
import os
import shutil
import sys

HEADLINE_PREFERENCE = [
    "ns_per_output",
    "p99_ms",
    "p50_ms",
    "ms",
    "warm_ms",
    "cold_ms",
    "seconds",
]


def headline(entry):
    for key in HEADLINE_PREFERENCE:
        value = entry.get(key)
        if isinstance(value, (int, float)) and value > 0:
            return key, float(value)
    return None, None


def load(path):
    with open(path) as f:
        doc = json.load(f)
    entries = {}
    for entry in doc.get("entries", []):
        entries[(entry.get("label"), entry.get("engine"))] = entry
    return entries


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir")
    parser.add_argument("current_dir")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated relative regression (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the current BENCH_*.json over the baseline and exit",
    )
    args = parser.parse_args()

    # A run that produced nothing must not gate as "compared 0, PASS" —
    # that is exactly how a broken $SLIN_BENCH_DIR wiring (unset, or
    # pointing somewhere the benchmarks never wrote) would slip through.
    if not os.path.isdir(args.current_dir):
        print(
            f"error: current dir {args.current_dir!r} does not exist — "
            "is SLIN_BENCH_DIR set and did the benchmarks run?",
            file=sys.stderr,
        )
        return 2
    current_files = sorted(
        f
        for f in os.listdir(args.current_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not current_files and not args.update:
        print(
            f"error: no BENCH_*.json under {args.current_dir!r} — "
            "is SLIN_BENCH_DIR set and did the benchmarks run?",
            file=sys.stderr,
        )
        return 2
    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        stale = [
            f
            for f in os.listdir(args.baseline_dir)
            if f.startswith("BENCH_")
            and f.endswith(".json")
            and f not in current_files
        ]
        for name in stale:
            os.remove(os.path.join(args.baseline_dir, name))
        for name in current_files:
            shutil.copyfile(
                os.path.join(args.current_dir, name),
                os.path.join(args.baseline_dir, name),
            )
        print(
            f"baseline refreshed: {len(current_files)} files"
            + (f", {len(stale)} stale removed" if stale else "")
        )
        return 0

    baseline_files = sorted(
        f
        for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not baseline_files:
        print(f"error: no BENCH_*.json under {args.baseline_dir}", file=sys.stderr)
        return 2

    failures = []
    rows = []
    notes = []
    compared = 0
    new_entries = 0
    for name in baseline_files:
        current_path = os.path.join(args.current_dir, name)
        if not os.path.exists(current_path):
            notes.append(
                f"{name}: not produced by this run (baseline kept; "
                "entries not gated)"
            )
            continue
        base_entries = load(os.path.join(args.baseline_dir, name))
        cur_entries = load(current_path)
        for key in sorted(set(cur_entries) - set(base_entries), key=str):
            label, engine = key
            metric, value = headline(cur_entries[key])
            if metric is None:
                continue  # counters-only entry: would never gate anyway
            new_entries += 1
            rows.append(
                f"  {name[6:-5]:<24} {label:<28} {engine:<9} {metric:<14}"
                f"{'--':>14} {value:>14.3f} {'NEW':>8}  (ungated)"
            )
        for key, base_entry in sorted(base_entries.items(), key=str):
            label, engine = key
            metric, base_value = headline(base_entry)
            if metric is None:
                continue  # counters-only entry: nothing to gate
            cur_entry = cur_entries.get(key)
            if cur_entry is None:
                failures.append(
                    f"{name}: entry ({label}, {engine}) missing from the current run"
                )
                continue
            cur_value = cur_entry.get(metric)
            if not isinstance(cur_value, (int, float)) or cur_value <= 0:
                failures.append(
                    f"{name}: ({label}, {engine}) lost its {metric} field"
                )
                continue
            compared += 1
            delta = cur_value / base_value - 1.0
            marker = ""
            if delta > args.threshold:
                marker = "  << REGRESSION"
                failures.append(
                    f"{name}: ({label}, {engine}) {metric} "
                    f"{base_value:.3f} -> {cur_value:.3f} ({delta:+.1%})"
                )
            rows.append(
                f"  {name[6:-5]:<24} {label:<28} {engine:<9} {metric:<14}"
                f"{base_value:>14.3f} {cur_value:>14.3f} {delta:>+8.1%}{marker}"
            )

    for name in current_files:
        if name in baseline_files:
            continue
        for key, entry in sorted(load(os.path.join(args.current_dir, name)).items(), key=str):
            label, engine = key
            metric, value = headline(entry)
            if metric is None:
                continue
            new_entries += 1
            rows.append(
                f"  {name[6:-5]:<24} {label:<28} {engine:<9} {metric:<14}"
                f"{'--':>14} {value:>14.3f} {'NEW':>8}  (ungated)"
            )

    print(
        f"  {'benchmark':<24} {'label':<28} {'engine':<9} {'metric':<14}"
        f"{'baseline':>14} {'current':>14} {'delta':>8}"
    )
    for row in rows:
        print(row)
    summary = f"\ncompared {compared} entries at threshold +{args.threshold:.0%}"
    if new_entries:
        summary += (
            f"; {new_entries} new (ungated — run --update to baseline them)"
        )
    print(summary)
    for note in notes:
        print(f"note: {note}")
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("PASS: no entry regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
