//===- tests/cleanup_test.cpp - Cleanup & verification pass tests ----------==//
//
// LinearConstFold: bit-identical outputs AND FLOP counts vs the unfolded
// pipeline on the fig 5-1 benchmarks, with measurably smaller schedules.
// DeadChannelElim: dead splitjoin branches disappear (or reduce to
// discard sinks) without observable change. VerifyRates: deliberately
// corrupted graphs and schedules are caught with a diagnostic. Artifact
// round-trip: folded programs persist and reload bit-identically.
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "compiler/AnalysisManager.h"
#include "compiler/ArtifactStore.h"
#include "compiler/Pipeline.h"
#include "exec/CompiledExecutor.h"
#include "exec/Measure.h"
#include "opt/Cleanup.h"
#include "sched/Schedule.h"
#include "wir/Build.h"

#include "TestGraphs.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <unistd.h>

using namespace slin;
using namespace slin::testing_helpers;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

PipelineOptions cleanupOn(OptMode M) {
  PipelineOptions O;
  O.Mode = M;
  O.VerifyAfterEachPass = true; // every test compile self-checks
  return O;
}

PipelineOptions cleanupOff(OptMode M) {
  PipelineOptions O = cleanupOn(M);
  O.ConstFold = false;
  O.DeadChannelElim = false;
  return O;
}

/// Total steady-state buffer capacity of \p S's compiled schedule.
int64_t bufferTotal(const Stream &S) {
  flat::FlatGraph G(S);
  StaticSchedule Sched = computeSchedule(G, 16);
  return std::accumulate(Sched.ChannelBufSize.begin(),
                         Sched.ChannelBufSize.end(), int64_t{0});
}

Measurement measureFlops(const Stream &Root, Engine Eng) {
  MeasureOptions MO;
  MO.WarmupOutputs = 64;
  MO.MeasureOutputs = 256;
  MO.MeasureTime = false;
  MO.Exec.Eng = Eng;
  return measureSteadyState(Root, MO);
}

const PassInfo *findPass(const CompileResult &R, const std::string &Name) {
  for (const PassInfo &P : R.Passes)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

/// Filter with a peek window deeper than its pops and an all-zero
/// coefficient matrix: pushes a constant, consumes one item, inspects
/// three. LinearConstFold must rebuild it as a peek-free-beyond-pops
/// constant emitter.
std::unique_ptr<Filter> makeZeroMatrixFilter() {
  using namespace wir;
  using namespace wir::build;
  WorkFunction W(3, 1, 1, stmts(push(cst(3.25)), popStmt()));
  return std::make_unique<Filter>("ZeroMatrix", std::vector<FieldDef>{},
                                  std::move(W));
}

/// Sink that consumes one item per firing without printing — an
/// unobservable branch tail for the dead-channel tests.
std::unique_ptr<Filter> makeSilentSink() {
  using namespace wir;
  using namespace wir::build;
  WorkFunction W(1, 1, 0, stmts(popStmt()));
  return std::make_unique<Filter>("SilentSink", std::vector<FieldDef>{},
                                  std::move(W));
}

/// source -> SJ{Gain branch (kept), FIR->sink branch (dead)} -> printer.
StreamPtr deadBranchGraph(Splitter Split, bool PrintingTail) {
  auto Root = std::make_unique<Pipeline>("deadbranch");
  Root->add(makeCountingSource());
  auto SJ = std::make_unique<SplitJoin>("sj", std::move(Split),
                                        Joiner::roundRobin({1, 0}));
  SJ->add(makeGain(2.0));
  auto Dead = std::make_unique<Pipeline>("deadpipe");
  Dead->add(makeFIR({1, 2, 3, 4, 5, 6, 7, 8}, "DeadFir"));
  if (PrintingTail)
    Dead->add(makePrinterSink());
  else
    Dead->add(makeSilentSink());
  SJ->add(std::move(Dead));
  Root->add(std::move(SJ));
  Root->add(makePrinterSink());
  return Root;
}

} // namespace

//===----------------------------------------------------------------------===//
// LinearConstFold
//===----------------------------------------------------------------------===//

// The fold must be invisible in both output values and FLOP counts: the
// rebuilt filters are the same generated code with a smaller declared
// peek window.
TEST(ConstFold, BitIdenticalOutputsAndFlopsOnFig51Benchmarks) {
  for (const char *Name : {"RateConvert", "FilterBank", "Vocoder"}) {
    for (OptMode Mode : {OptMode::Linear, OptMode::AutoSel}) {
      StreamPtr Root;
      for (const auto &B : apps::allBenchmarks())
        if (B.Name == Name)
          Root = B.Build();
      ASSERT_NE(Root, nullptr) << Name;

      CompileResult On = compileStream(*Root, cleanupOn(Mode));
      CompileResult Off = compileStream(*Root, cleanupOff(Mode));
      for (Engine Eng : {Engine::Dynamic, Engine::Compiled}) {
        EXPECT_EQ(collectOutputs(*On.Optimized, 384, Eng),
                  collectOutputs(*Off.Optimized, 384, Eng))
            << Name << " " << optModeName(Mode) << " on "
            << engineName(Eng);
        Measurement MOn = measureFlops(*On.Optimized, Eng);
        Measurement MOff = measureFlops(*Off.Optimized, Eng);
        EXPECT_EQ(MOn.Ops.flops(), MOff.Ops.flops())
            << Name << " " << optModeName(Mode) << " on "
            << engineName(Eng);
        EXPECT_EQ(MOn.Outputs, MOff.Outputs);
      }
    }
  }
}

// Combined decimating sections (Compressor tails) leave their deepest
// peek positions with all-zero coefficients; trimming them must shrink
// the compiled buffers of at least one paper benchmark.
TEST(ConstFold, ShrinksBuffersOnAtLeastOneFig51Benchmark) {
  int Shrunk = 0;
  for (const auto &B : apps::allBenchmarks()) {
    StreamPtr Root = B.Build();
    CompileResult On = compileStream(*Root, cleanupOn(OptMode::Linear));
    CompileResult Off = compileStream(*Root, cleanupOff(OptMode::Linear));
    int64_t BufOn = bufferTotal(*On.Optimized);
    int64_t BufOff = bufferTotal(*Off.Optimized);
    EXPECT_LE(BufOn, BufOff) << B.Name << ": cleanup grew the buffers";
    if (BufOn < BufOff)
      ++Shrunk;
  }
  EXPECT_GE(Shrunk, 1)
      << "const folding trimmed no fig 5-1 benchmark's buffers";
}

TEST(ConstFold, VocoderTrimIsReportedInPassNotes) {
  StreamPtr Root = apps::buildVocoder();
  CompileResult R = compileStream(*Root, cleanupOn(OptMode::Linear));
  const PassInfo *P = findPass(R, "linear-const-fold");
  ASSERT_NE(P, nullptr);
  EXPECT_NE(P->Note.find("trimmed"), std::string::npos) << P->Note;
}

// An all-zero coefficient matrix folds to a constant emitter whose peek
// window is its pop count; values, FLOPs and the shrunken window are all
// checked.
TEST(ConstFold, ZeroMatrixBecomesConstEmitter) {
  auto Build = [] {
    auto Root = std::make_unique<Pipeline>("zm");
    Root->add(makeCountingSource());
    Root->add(makeZeroMatrixFilter());
    Root->add(makePrinterSink());
    return Root;
  };
  StreamPtr Root = Build();
  CompileResult On = compileStream(*Root, cleanupOn(OptMode::Linear));
  CompileResult Off = compileStream(*Root, cleanupOff(OptMode::Linear));
  const PassInfo *P = findPass(On, "linear-const-fold");
  ASSERT_NE(P, nullptr);
  EXPECT_NE(P->Note.find("const emitter"), std::string::npos) << P->Note;
  EXPECT_EQ(collectOutputs(*On.Optimized, 64),
            collectOutputs(*Off.Optimized, 64));
  EXPECT_LT(bufferTotal(*On.Optimized), bufferTotal(*Off.Optimized));
}

// Hand-written filters — even linear ones with dead peek rows — are not
// code-generator output and must never be rebuilt (their arithmetic
// order is not ours to preserve). A loop-coded FIR whose two deepest
// taps are zero is trimmable by its matrix but fails the
// codegen-identity gate.
TEST(ConstFold, HandWrittenFiltersAreLeftAlone) {
  auto Root = std::make_unique<Pipeline>("hand");
  Root->add(makeCountingSource());
  Root->add(makeFIR({1.0, 2.0, 0.0, 0.0}, "DeadTapFir"));
  Root->add(makePrinterSink());
  CleanupStats Stats;
  AnalysisManager AM;
  StreamPtr Out =
      constFoldLinear(*Root, AM, LinearCodeGenStyle::Auto, Stats);
  EXPECT_EQ(Out, nullptr);
  EXPECT_FALSE(Stats.any());
}

//===----------------------------------------------------------------------===//
// DeadChannelElim
//===----------------------------------------------------------------------===//

// A duplicate-splitter branch the joiner never reads is deleted, and the
// two-branch splitjoin collapses onto the surviving branch.
TEST(DeadChannel, DuplicateBranchIsRemovedAndSplitJoinCollapses) {
  StreamPtr Root = deadBranchGraph(Splitter::duplicate(), false);
  CleanupStats Stats;
  StreamPtr Out = eliminateDeadChannels(*Root, Stats);
  ASSERT_NE(Out, nullptr);
  EXPECT_EQ(Stats.RemovedBranches, 1);
  EXPECT_EQ(Stats.CollapsedSplitJoins, 1);
  GraphCounts Before = countStreams(*Root), After = countStreams(*Out);
  EXPECT_EQ(After.SplitJoins, Before.SplitJoins - 1);
  EXPECT_LT(After.Filters, Before.Filters);
  EXPECT_EQ(collectOutputs(*Out, 64), collectOutputs(*Root, 64));
}

// A roundrobin branch still owed items keeps a minimal discard sink in
// place of its whole subtree; outputs are unchanged and the dead FIR's
// FLOPs disappear.
TEST(DeadChannel, RoundRobinBranchReducesToDiscardSink) {
  StreamPtr Root = deadBranchGraph(Splitter::roundRobin({1, 1}), false);
  CompileResult On = compileStream(*Root, cleanupOn(OptMode::Linear));
  CompileResult Off = compileStream(*Root, cleanupOff(OptMode::Linear));
  const PassInfo *P = findPass(On, "dead-channel-elim");
  ASSERT_NE(P, nullptr);
  EXPECT_NE(P->Note.find("discard sink"), std::string::npos) << P->Note;
  for (Engine Eng : {Engine::Dynamic, Engine::Compiled}) {
    EXPECT_EQ(collectOutputs(*On.Optimized, 128, Eng),
              collectOutputs(*Off.Optimized, 128, Eng));
#if SLIN_COUNT_OPS
    EXPECT_LT(measureFlops(*On.Optimized, Eng).Ops.flops(),
              measureFlops(*Off.Optimized, Eng).Ops.flops());
#endif
  }
  // Idempotent: a second pass finds nothing left to remove.
  CleanupStats Stats;
  EXPECT_EQ(eliminateDeadChannels(*On.Optimized, Stats), nullptr);
}

// A branch that prints is observable no matter what the joiner ignores.
TEST(DeadChannel, PrintingBranchSurvives) {
  StreamPtr Root = deadBranchGraph(Splitter::duplicate(), true);
  CleanupStats Stats;
  EXPECT_EQ(eliminateDeadChannels(*Root, Stats), nullptr);
  EXPECT_FALSE(Stats.any());
}

TEST(DeadChannel, LiveBranchesAreUntouchedAcrossBenchmarks) {
  // None of the paper's nine programs contains a dead branch; the pass
  // must report "no change" on all of them.
  for (const auto &B : apps::allBenchmarks()) {
    StreamPtr Root = B.Build();
    CleanupStats Stats;
    EXPECT_EQ(eliminateDeadChannels(*Root, Stats), nullptr) << B.Name;
  }
}

//===----------------------------------------------------------------------===//
// VerifyRates: stream hierarchy
//===----------------------------------------------------------------------===//

TEST(VerifyRates, AcceptsEveryBenchmark) {
  for (const auto &B : apps::allBenchmarks()) {
    StreamPtr Root = B.Build();
    EXPECT_EQ(verifyStreamRates(*Root), "") << B.Name;
  }
}

TEST(VerifyRates, CatchesJoinerWeightCountMismatch) {
  auto Root = std::make_unique<Pipeline>("bad");
  Root->add(makeCountingSource());
  auto SJ = std::make_unique<SplitJoin>("sj", Splitter::duplicate(),
                                        Joiner::roundRobin({1, 1, 1}));
  SJ->add(makeGain(1.0));
  SJ->add(makeGain(2.0));
  Root->add(std::move(SJ));
  Root->add(makePrinterSink());
  std::string Err = verifyStreamRates(*Root);
  EXPECT_NE(Err.find("joiner weight count mismatch"), std::string::npos)
      << Err;
}

TEST(VerifyRates, CatchesMismatchedDuplicateConsumption) {
  auto Root = std::make_unique<Pipeline>("bad");
  Root->add(makeCountingSource());
  auto SJ = std::make_unique<SplitJoin>("sj", Splitter::duplicate(),
                                        Joiner::roundRobin({1, 1}));
  SJ->add(makeGain(1.0));      // pop 1 push 1
  SJ->add(makeCompressor(2));  // pop 2 push 1
  Root->add(std::move(SJ));
  Root->add(makePrinterSink());
  std::string Err = verifyStreamRates(*Root);
  EXPECT_NE(Err.find("consume mismatched amounts"), std::string::npos)
      << Err;
}

TEST(VerifyRates, CatchesPeekBelowPop) {
  using namespace wir;
  using namespace wir::build;
  auto Root = std::make_unique<Pipeline>("bad");
  Root->add(makeCountingSource());
  WorkFunction W(1, 2, 1, stmts(push(pop()), popStmt()));
  Root->add(std::make_unique<Filter>("BadRates", std::vector<FieldDef>{},
                                     std::move(W)));
  Root->add(makePrinterSink());
  std::string Err = verifyStreamRates(*Root);
  EXPECT_NE(Err.find("peek rate below pop rate"), std::string::npos) << Err;
}

TEST(VerifyRates, CatchesMidPipelineSink) {
  auto Root = std::make_unique<Pipeline>("bad");
  Root->add(makeCountingSource());
  Root->add(makePrinterSink()); // pushes nothing but is not last
  Root->add(makeGain(1.0));
  std::string Err = verifyStreamRates(*Root);
  EXPECT_NE(Err.find("pushes nothing but is not last"), std::string::npos)
      << Err;
}

//===----------------------------------------------------------------------===//
// VerifyRates: lowered schedule
//===----------------------------------------------------------------------===//

class VerifySchedule : public ::testing::Test {
protected:
  void SetUp() override {
    Root = apps::buildRateConvert(32);
    PipelineOptions O;
    O.Mode = OptMode::Linear;
    O.Exec.Eng = Engine::Compiled;
    O.UseProgramCache = false;
    CompileResult R = compileStream(*Root, O);
    Program = R.Program;
    ASSERT_NE(Program, nullptr);
  }

  StreamPtr Root;
  CompiledProgramRef Program;
};

TEST_F(VerifySchedule, AcceptsTheRealSchedule) {
  EXPECT_EQ(verifySchedule(Program->graph(), Program->schedule()), "");
}

TEST_F(VerifySchedule, CatchesTamperedRepetitions) {
  StaticSchedule S = Program->schedule();
  S.Repetitions.front() += 1;
  EXPECT_NE(verifySchedule(Program->graph(), S), "");
}

TEST_F(VerifySchedule, CatchesTamperedInitFirings) {
  StaticSchedule S = Program->schedule();
  S.InitFirings.back() += 1;
  EXPECT_NE(verifySchedule(Program->graph(), S), "");
}

TEST_F(VerifySchedule, CatchesTamperedFiringProgram) {
  StaticSchedule S = Program->schedule();
  ASSERT_FALSE(S.SteadyProgram.empty());
  S.SteadyProgram.front().Count += 1;
  EXPECT_NE(verifySchedule(Program->graph(), S), "");
}

TEST_F(VerifySchedule, CatchesTamperedHighWaterMark) {
  StaticSchedule S = Program->schedule();
  for (int64_t &HW : S.ChannelHighWater)
    if (HW > 0) {
      HW -= 1;
      break;
    }
  EXPECT_NE(verifySchedule(Program->graph(), S), "");
}

TEST_F(VerifySchedule, CatchesTamperedBufferCapacity) {
  StaticSchedule S = Program->schedule();
  for (size_t C = 0; C != S.ChannelBufSize.size(); ++C) {
    bool External =
        static_cast<int>(C) == Program->graph().ExternalIn ||
        static_cast<int>(C) == Program->graph().ExternalOut;
    if (!External && S.ChannelBufSize[C] > 0) {
      S.ChannelBufSize[C] -= 1;
      break;
    }
  }
  EXPECT_NE(verifySchedule(Program->graph(), S), "");
}

TEST_F(VerifySchedule, CatchesTamperedPostInitLive) {
  StaticSchedule S = Program->schedule();
  for (size_t C = 0; C != S.PostInitLive.size(); ++C) {
    bool External =
        static_cast<int>(C) == Program->graph().ExternalIn ||
        static_cast<int>(C) == Program->graph().ExternalOut;
    if (!External) {
      S.PostInitLive[C] += 1;
      break;
    }
  }
  EXPECT_NE(verifySchedule(Program->graph(), S), "");
}

//===----------------------------------------------------------------------===//
// Artifact round-trip of a folded program
//===----------------------------------------------------------------------===//

// A program whose stream was const-folded must persist and reload with
// bit-identical behaviour and zero compiler passes (the alias fast
// path), proving the folded structure participates in option hashing
// and artifact keys.
TEST(FoldedArtifact, RoundTripsThroughTheStore) {
  namespace fs = std::filesystem;
  std::string Dir =
      (fs::temp_directory_path() /
       ("slin-cleanup-test-" + std::to_string(::getpid())))
          .string();
  ArtifactStore::setGlobalDir(Dir);
  ProgramCache::global().clear();

  PipelineOptions O;
  O.Mode = OptMode::Linear;
  O.Exec.Eng = Engine::Compiled;
  O.VerifyAfterEachPass = true;

  StreamPtr Root = apps::buildVocoder();
  CompileResult Cold = slin::compileStream(*Root, O);
  ASSERT_NE(Cold.Program, nullptr);
  const PassInfo *Fold = findPass(Cold, "linear-const-fold");
  ASSERT_NE(Fold, nullptr);
  EXPECT_NE(Fold->Note, "no change");

  ProgramCache::global().clear(); // drop memory tier; keep the disk tier
  CompileResult Warm = slin::compileStream(*Root, O);
  ASSERT_NE(Warm.Program, nullptr);
  EXPECT_TRUE(Warm.Program->loadedFromArtifact());
  EXPECT_EQ(Warm.Passes.size(), 1u) << Warm.timingReport();
  EXPECT_EQ(verifySchedule(Warm.Program->graph(),
                           Warm.Program->schedule()),
            "");

  auto RunProgram = [](const CompiledProgramRef &P, size_t N) {
    CompiledExecutor E(P);
    E.run(N);
    std::vector<double> Out =
        E.printed().empty() ? E.outputSnapshot() : E.printed();
    if (Out.size() > N)
      Out.resize(N);
    return Out;
  };
  EXPECT_EQ(RunProgram(Warm.Program, 256), RunProgram(Cold.Program, 256));

  ArtifactStore::setGlobalDir("");
  ProgramCache::global().clear();
  std::error_code EC;
  fs::remove_all(Dir, EC);
}
