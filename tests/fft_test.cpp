//===- tests/fft_test.cpp - FFT library unit tests ------------------------==//

#include "fft/FFT.h"
#include "support/OpCounters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

using namespace slin;
using namespace slin::fft;

namespace {

std::vector<Complex> randomComplex(size_t N, unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<Complex> V(N);
  for (Complex &C : V)
    C = Complex(Dist(Rng), Dist(Rng));
  return V;
}

std::vector<double> randomReal(size_t N, unsigned Seed) {
  std::mt19937 Rng(Seed);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<double> V(N);
  for (double &D : V)
    D = Dist(Rng);
  return V;
}

double maxDiff(const std::vector<Complex> &A, const std::vector<Complex> &B) {
  double M = 0;
  for (size_t I = 0; I != A.size(); ++I)
    M = std::max(M, std::abs(A[I] - B[I]));
  return M;
}

TEST(FFT, PowerOfTwoHelpers) {
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(2), 2u);
  EXPECT_EQ(nextPowerOfTwo(3), 4u);
  EXPECT_EQ(nextPowerOfTwo(511), 512u);
  EXPECT_EQ(nextPowerOfTwo(512), 512u);
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(64));
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_FALSE(isPowerOfTwo(48));
}

class FFTSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(FFTSizes, PlannedMatchesSlowDFT) {
  size_t N = GetParam();
  auto In = randomComplex(N, 42 + static_cast<unsigned>(N));
  auto Expect = slowDFT(In, false);
  auto Data = In;
  FFTPlan Plan(N);
  Plan.forward(Data.data());
  EXPECT_LT(maxDiff(Data, Expect), 1e-9) << "N=" << N;
}

TEST_P(FFTSizes, PlannedRoundTrip) {
  size_t N = GetParam();
  auto In = randomComplex(N, 7 + static_cast<unsigned>(N));
  auto Data = In;
  FFTPlan Plan(N);
  Plan.forward(Data.data());
  Plan.inverse(Data.data());
  EXPECT_LT(maxDiff(Data, In), 1e-9) << "N=" << N;
}

TEST_P(FFTSizes, SimpleMatchesSlowDFT) {
  size_t N = GetParam();
  auto In = randomComplex(N, 3 + static_cast<unsigned>(N));
  auto Expect = slowDFT(In, false);
  auto Data = In;
  simpleFFT(Data, false);
  EXPECT_LT(maxDiff(Data, Expect), 1e-9) << "N=" << N;
}

TEST_P(FFTSizes, RealForwardMatchesComplex) {
  size_t N = GetParam();
  auto In = randomReal(N, 5 + static_cast<unsigned>(N));
  std::vector<Complex> CIn(N);
  for (size_t I = 0; I != N; ++I)
    CIn[I] = Complex(In[I], 0.0);
  auto Expect = slowDFT(CIn, false);

  FFTPlan Plan(N);
  std::vector<double> HC(N);
  Plan.forwardReal(In.data(), HC.data());

  EXPECT_NEAR(HC[0], Expect[0].real(), 1e-9);
  if (N > 1) {
    EXPECT_NEAR(HC[N / 2], Expect[N / 2].real(), 1e-9);
  }
  for (size_t K = 1; K < N / 2; ++K) {
    EXPECT_NEAR(HC[K], Expect[K].real(), 1e-9) << "N=" << N << " K=" << K;
    EXPECT_NEAR(HC[N - K], Expect[K].imag(), 1e-9) << "N=" << N << " K=" << K;
  }
}

TEST_P(FFTSizes, RealRoundTrip) {
  size_t N = GetParam();
  auto In = randomReal(N, 9 + static_cast<unsigned>(N));
  FFTPlan Plan(N);
  std::vector<double> HC(N), Out(N);
  Plan.forwardReal(In.data(), HC.data());
  Plan.inverseReal(HC.data(), Out.data());
  for (size_t I = 0; I != N; ++I)
    EXPECT_NEAR(Out[I], In[I], 1e-9) << "N=" << N << " I=" << I;
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FFTSizes,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256));

TEST(FFT, ConvolutionViaHalfComplex) {
  // The exact computation pattern of Transformation 5: zero-padded real
  // FFTs, half-complex pointwise product, inverse real FFT.
  std::vector<double> H = {1, 2, 3};
  std::vector<double> X = {4, 5, 6, 7, 8};
  auto Expect = directConvolve(X, H);

  size_t N = nextPowerOfTwo(X.size() + H.size() - 1);
  FFTPlan Plan(N);
  std::vector<double> HP(N, 0.0), XP(N, 0.0);
  std::copy(H.begin(), H.end(), HP.begin());
  std::copy(X.begin(), X.end(), XP.begin());
  std::vector<double> HF(N), XF(N), YF(N), Y(N);
  Plan.forwardReal(HP.data(), HF.data());
  Plan.forwardReal(XP.data(), XF.data());
  multiplyHalfComplex(N, XF.data(), HF.data(), YF.data());
  Plan.inverseReal(YF.data(), Y.data());
  for (size_t I = 0; I != Expect.size(); ++I)
    EXPECT_NEAR(Y[I], Expect[I], 1e-9) << "I=" << I;
}

TEST(FFT, RealPathIsCheaperThanComplexPath) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  // The "FFTW tier" (planned real path) must beat the "simple tier"
  // (recursive complex FFT) in multiplication count — this gap is what
  // Figure 5-12(d) vs (b) measures.
  size_t N = 256;
  auto In = randomReal(N, 21);
  FFTPlan Plan(N);
  std::vector<double> HC(N);

  ops::CountingScope Scope;
  ops::reset();
  Plan.forwardReal(In.data(), HC.data());
  uint64_t RealMuls = ops::counts().mults();

  std::vector<Complex> CIn(N);
  for (size_t I = 0; I != N; ++I)
    CIn[I] = Complex(In[I], 0.0);
  ops::reset();
  simpleFFT(CIn, false);
  uint64_t SimpleMuls = ops::counts().mults();

  EXPECT_LT(RealMuls, SimpleMuls);
  EXPECT_LT(RealMuls * 3, SimpleMuls * 2) << "expected >1.5x savings";
}

TEST(FFT, ParsevalEnergyConservation) {
  size_t N = 128;
  auto In = randomReal(N, 33);
  FFTPlan Plan(N);
  std::vector<double> HC(N);
  Plan.forwardReal(In.data(), HC.data());
  double TimeEnergy = 0;
  for (double D : In)
    TimeEnergy += D * D;
  double FreqEnergy = HC[0] * HC[0] + HC[N / 2] * HC[N / 2];
  for (size_t K = 1; K < N / 2; ++K)
    FreqEnergy += 2 * (HC[K] * HC[K] + HC[N - K] * HC[N - K]);
  EXPECT_NEAR(TimeEnergy, FreqEnergy / N, 1e-6);
}

} // namespace
