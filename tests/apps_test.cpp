//===- tests/apps_test.cpp - Benchmark application tests ------------------==//

#include "apps/Benchmarks.h"
#include "exec/Measure.h"
#include "linear/Analysis.h"

#include <gtest/gtest.h>

using namespace slin;
using namespace slin::apps;

namespace {

TEST(Apps, AllBenchmarksBuildAndRun) {
  for (const BenchmarkEntry &B : allBenchmarks()) {
    StreamPtr S = B.Build();
    ASSERT_NE(S, nullptr) << B.Name;
    auto Out = collectOutputs(*S, 8);
    EXPECT_EQ(Out.size(), 8u) << B.Name;
  }
}

TEST(Apps, LinearityCountsMatchExpectations) {
  // Reproduces the flavor of Table 5.2's "(linear)" columns.
  struct Expect {
    const char *Name;
    int Filters;
    int LinearFilters;
  };
  // Counts for OUR versions of the benchmarks (recorded in
  // EXPERIMENTS.md against the paper's Table 5.2).
  for (const BenchmarkEntry &B : allBenchmarks()) {
    StreamPtr S = B.Build();
    LinearAnalysis LA(*S);
    auto St = LA.stats();
    EXPECT_GT(St.LinearFilters, 0) << B.Name;
    EXPECT_LT(St.LinearFilters, St.Filters)
        << B.Name << ": sources/sinks are nonlinear";
  }
}

TEST(Apps, FIRStatsMatchTable52) {
  StreamPtr S = buildFIR();
  LinearAnalysis LA(*S);
  auto St = LA.stats();
  EXPECT_EQ(St.Filters, 3);
  EXPECT_EQ(St.LinearFilters, 1);
  EXPECT_EQ(St.Pipelines, 1);
  EXPECT_DOUBLE_EQ(St.AvgVectorSize, 256);
}

TEST(Apps, OversamplerStatsMatchTable52) {
  StreamPtr S = buildOversampler();
  LinearAnalysis LA(*S);
  auto St = LA.stats();
  EXPECT_EQ(St.Filters, 10);
  EXPECT_EQ(St.LinearFilters, 8);
}

TEST(Apps, VocoderAndRadarHaveNonlinearKernels) {
  StreamPtr V = buildVocoder();
  LinearAnalysis LAV(*V);
  EXPECT_EQ(LAV.nodeFor(*V), nullptr);
  StreamPtr R = buildRadar();
  LinearAnalysis LAR(*R);
  EXPECT_EQ(LAR.nodeFor(*R), nullptr);
}

} // namespace
