//===- tests/compiler_test.cpp - Compiler pipeline & caches ---------------==//
//
// The StreamCompiler subsystem: structural hashing of stream subtrees,
// the hash-consed AnalysisManager (extraction + combination memoization,
// invalidation, cache-on/off equivalence), the CompiledProgram artifact
// (one program, many independent executor instances), the ProgramCache
// (compiling a structurally identical configuration twice is one
// compile), and the pass manager's timing/dump diagnostics.
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "compiler/AnalysisManager.h"
#include "compiler/Pipeline.h"
#include "compiler/Program.h"
#include "compiler/StructuralHash.h"
#include "exec/CompiledExecutor.h"
#include "exec/Measure.h"
#include "linear/Analysis.h"
#include "opt/Optimizer.h"
#include "TestGraphs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

using namespace slin;
using namespace slin::testing_helpers;

namespace {

StreamPtr firPipeline(std::vector<double> Taps, const std::string &Name) {
  auto P = std::make_unique<Pipeline>(Name);
  P->add(makeCountingSource());
  P->add(makeFIR(std::move(Taps)));
  P->add(makePrinterSink());
  return P;
}

//===----------------------------------------------------------------------===//
// Structural hashing
//===----------------------------------------------------------------------===//

TEST(StructuralHash, IdenticalBuildsAndClonesAgree) {
  StreamPtr A = firPipeline({1, 2, 3, 4}, "p");
  StreamPtr B = firPipeline({1, 2, 3, 4}, "p");
  EXPECT_EQ(structuralHash(*A), structuralHash(*B));
  EXPECT_EQ(structuralHash(*A), structuralHash(*A->clone()));
}

TEST(StructuralHash, NamesDoNotAffectTheHash) {
  // The replacers generate fresh names on every run; caching must see
  // through them.
  StreamPtr A = firPipeline({1, 2, 3, 4}, "p");
  StreamPtr B = firPipeline({1, 2, 3, 4}, "differently_named");
  EXPECT_EQ(structuralHash(*A), structuralHash(*B));
}

TEST(StructuralHash, ContentChangesTheHash) {
  StreamPtr A = firPipeline({1, 2, 3, 4}, "p");
  EXPECT_NE(structuralHash(*A), structuralHash(*firPipeline({1, 2, 3}, "p")));
  EXPECT_NE(structuralHash(*A),
            structuralHash(*firPipeline({1, 2, 3, 5}, "p")));
}

TEST(StructuralHash, WeightsAndSplitterKindMatter) {
  auto Make = [](Splitter S, Joiner J) {
    auto SJ = std::make_unique<SplitJoin>("sj", std::move(S), std::move(J));
    SJ->add(makeGain(1.0));
    SJ->add(makeGain(1.0));
    return SJ;
  };
  HashDigest Dup =
      structuralHash(*Make(Splitter::duplicate(), Joiner::roundRobin({1, 1})));
  HashDigest RR = structuralHash(
      *Make(Splitter::roundRobin({1, 1}), Joiner::roundRobin({1, 1})));
  HashDigest RR21 = structuralHash(
      *Make(Splitter::roundRobin({2, 1}), Joiner::roundRobin({1, 1})));
  EXPECT_NE(Dup, RR);
  EXPECT_NE(RR, RR21);
}

TEST(StructuralHash, GeneratedNativeFiltersHashByContent) {
  // Two separately generated PackedNative linear filters over the same
  // node must alias; a different matrix must not.
  LinearNode N(Matrix::fromRows({{0.5, 1.0}, {2.0, 0.25}}),
               Vector{0.0, 0.0}, 2, 1, 2);
  LinearNode M(Matrix::fromRows({{0.5, 1.0}, {2.5, 0.25}}),
               Vector{0.0, 0.0}, 2, 1, 2);
  auto F1 = makeLinearFilter(N, "a", LinearCodeGenStyle::PackedNative);
  auto F2 = makeLinearFilter(N, "b", LinearCodeGenStyle::PackedNative);
  auto F3 = makeLinearFilter(M, "a", LinearCodeGenStyle::PackedNative);
  EXPECT_EQ(structuralHash(*F1), structuralHash(*F2));
  EXPECT_NE(structuralHash(*F1), structuralHash(*F3));
}

//===----------------------------------------------------------------------===//
// AnalysisManager
//===----------------------------------------------------------------------===//

TEST(AnalysisManager, HashConsesExtractionAcrossIdenticalFilters) {
  AnalysisManager AM;
  StreamPtr A = firPipeline({1, 2, 3, 4, 5, 6, 7, 8}, "a");
  StreamPtr B = firPipeline({1, 2, 3, 4, 5, 6, 7, 8}, "b");

  LinearAnalysis::Options LO;
  LO.AM = &AM;
  LinearAnalysis LA1(*A, LO);
  auto AfterFirst = AM.stats();
  EXPECT_GT(AfterFirst.ExtractionMisses, 0u);

  LinearAnalysis LA2(*B, LO);
  auto AfterSecond = AM.stats();
  // Every filter of the structurally identical graph hits the cache.
  EXPECT_EQ(AfterSecond.ExtractionMisses, AfterFirst.ExtractionMisses);
  EXPECT_GE(AfterSecond.ExtractionHits,
            AfterFirst.ExtractionHits + 3); // source, FIR, sink

  // The two analyses share one hash-consed node (not just equal values).
  const Filter *FirA = cast<Filter>(cast<Pipeline>(A.get())->children()[1].get());
  const Filter *FirB = cast<Filter>(cast<Pipeline>(B.get())->children()[1].get());
  EXPECT_EQ(LA1.nodeFor(*FirA), LA2.nodeFor(*FirB));
}

TEST(AnalysisManager, RewriteChangesKeySoNoStaleReuse) {
  AnalysisManager AM;
  LinearAnalysis::Options LO;
  LO.AM = &AM;

  StreamPtr A = firPipeline({1, 2, 3, 4}, "p");
  LinearAnalysis LA1(*A, LO);
  auto Before = AM.stats();

  // "Rewrite": same shape, one coefficient changed. The structural hash
  // differs, so extraction re-runs instead of serving the stale node.
  StreamPtr B = firPipeline({1, 2, 3, 9}, "p");
  EXPECT_NE(structuralHash(*A), structuralHash(*B));
  LinearAnalysis LA2(*B, LO);
  auto After = AM.stats();
  EXPECT_GT(After.ExtractionMisses, Before.ExtractionMisses);

  const Filter *FirA = cast<Filter>(cast<Pipeline>(A.get())->children()[1].get());
  const Filter *FirB = cast<Filter>(cast<Pipeline>(B.get())->children()[1].get());
  ASSERT_NE(LA2.nodeFor(*FirB), nullptr);
  EXPECT_NE(LA1.nodeFor(*FirA)->coeff(3, 0), LA2.nodeFor(*FirB)->coeff(3, 0));
}

TEST(AnalysisManager, InvalidateDropsEntries) {
  AnalysisManager AM;
  LinearAnalysis::Options LO;
  LO.AM = &AM;
  StreamPtr A = firPipeline({1, 2, 3, 4}, "p");
  LinearAnalysis LA1(*A, LO);
  auto Before = AM.stats();
  AM.invalidate();
  LinearAnalysis LA2(*A, LO);
  auto After = AM.stats();
  // Everything recomputes after invalidation...
  EXPECT_GT(After.ExtractionMisses, Before.ExtractionMisses);
  // ...and nodes handed out earlier stay alive and correct (shared_ptr
  // ownership survives the cache flush).
  const Filter *Fir = cast<Filter>(cast<Pipeline>(A.get())->children()[1].get());
  ASSERT_NE(LA1.nodeFor(*Fir), nullptr);
  EXPECT_EQ(LA1.nodeFor(*Fir)->coeff(0, 0), 1.0);
}

TEST(AnalysisManager, CombinationResultsAreMemoized) {
  AnalysisManager AM;
  LinearAnalysis::Options LO;
  LO.AM = &AM;
  // Two structurally identical two-stage linear pipelines: the second
  // pipeline's combination is a cache hit.
  auto Make = [] {
    auto P = std::make_unique<Pipeline>("lin");
    P->add(makeFIR({1, 2, 3}));
    P->add(makeGain(0.5));
    return P;
  };
  StreamPtr A = Make();
  StreamPtr B = Make();
  LinearAnalysis LA1(*A, LO);
  auto AfterFirst = AM.stats();
  EXPECT_EQ(AfterFirst.CombineMisses, 1u);
  LinearAnalysis LA2(*B, LO);
  auto AfterSecond = AM.stats();
  EXPECT_EQ(AfterSecond.CombineMisses, 1u);
  EXPECT_EQ(AfterSecond.CombineHits, AfterFirst.CombineHits + 1);
  EXPECT_EQ(LA1.nodeFor(*A), LA2.nodeFor(*B)); // shared combined node
}

/// AutoSel must produce identical results with the cache on and off —
/// the cached values are pure-function results, so this is a strict
/// differential test of the whole DP through the cache layer.
TEST(AnalysisManager, AutoSelBitIdenticalWithCacheOnAndOff) {
  for (const char *Name : {"FilterBank", "TargetDetect", "RateConvert"}) {
    StreamPtr Root;
    for (const apps::BenchmarkEntry &B : apps::allBenchmarks())
      if (B.Name == Name)
        Root = B.Build();
    ASSERT_NE(Root, nullptr) << Name;

    AnalysisManager Cached;
    AnalysisManager Uncached;
    Uncached.setEnabled(false);

    PipelineOptions OC;
    OC.Mode = OptMode::AutoSel;
    OC.AM = &Cached;
    PipelineOptions OU = OC;
    OU.AM = &Uncached;

    StreamPtr WithCache = compileStream(*Root, OC).Optimized;
    StreamPtr WithoutCache = compileStream(*Root, OU).Optimized;

    // Same selected configuration...
    EXPECT_EQ(structuralHash(*WithCache), structuralHash(*WithoutCache))
        << Name;
    EXPECT_EQ(printGraph(*WithCache), printGraph(*WithoutCache)) << Name;
    // ...and bit-identical outputs on both engines.
    EXPECT_EQ(collectOutputs(*WithCache, 32, Engine::Dynamic),
              collectOutputs(*WithoutCache, 32, Engine::Dynamic))
        << Name;
    EXPECT_EQ(collectOutputs(*WithCache, 32, Engine::Compiled),
              collectOutputs(*WithoutCache, 32, Engine::Compiled))
        << Name;
    EXPECT_GT(Cached.stats().ExtractionHits + Cached.stats().CombineHits, 0u)
        << Name;
  }
}

//===----------------------------------------------------------------------===//
// CompiledProgram artifacts and the ProgramCache
//===----------------------------------------------------------------------===//

TEST(CompiledProgram, OneArtifactManyIndependentInstances) {
  StreamPtr Root = firPipeline({1.5, -2.25, 3.0, 0.5}, "p");
  auto Program = std::make_shared<const CompiledProgram>(*Root,
                                                         CompiledOptions());
  CompiledExecutor E1(Program);
  CompiledExecutor E2(Program);
  E1.run(64);
  E2.run(64); // fresh state: same prefix, not a continuation
  EXPECT_EQ(E1.printed(), E2.printed());
  // And both match the dynamic reference engine bit for bit.
  EXPECT_EQ(E1.printed(), collectOutputs(*Root, 64, Engine::Dynamic));
}

TEST(ProgramCache, CompilingTwiceHitsTheCache) {
  ProgramCache::global().clear();
  StreamPtr Root = apps::buildFilterBank();

  PipelineOptions O;
  O.Mode = OptMode::Linear;
  O.Exec.Eng = Engine::Compiled;

  CompileResult First = compileStream(*Root, O);
  ASSERT_NE(First.Program, nullptr);
  EXPECT_FALSE(First.ProgramCacheHit);

  // A fresh optimize() of the same configuration produces a structurally
  // identical stream — the lowering must be a cache hit sharing the same
  // artifact object.
  CompileResult Second = compileStream(*Root, O);
  EXPECT_TRUE(Second.ProgramCacheHit);
  EXPECT_EQ(First.Program.get(), Second.Program.get());

  // Different engine options are a different artifact.
  PipelineOptions O2 = O;
  O2.Exec.Compiled.BatchIterations = 4;
  CompileResult Third = compileStream(*Root, O2);
  EXPECT_FALSE(Third.ProgramCacheHit);
  EXPECT_NE(First.Program.get(), Third.Program.get());
  EXPECT_EQ(Third.Program->schedule().BatchIterations, 4);
}

TEST(ProgramCache, RepeatedMeasurementsShareOneCompile) {
  ProgramCache::global().clear();
  auto SBefore = ProgramCache::global().stats();
  StreamPtr Root = firPipeline({1, 2, 3, 4, 5, 6, 7, 8}, "p");
  MeasureOptions MO;
  MO.WarmupOutputs = 32;
  MO.MeasureOutputs = 128;
  MO.Exec.Eng = Engine::Compiled;
  // Each measurement's counting and timing runs share one artifact
  // fetch; a repeated measurement of the structurally identical graph
  // (even a fresh clone) recompiles nothing.
  measureSteadyState(*Root, MO);
  StreamPtr Clone = Root->clone();
  measureSteadyState(*Clone, MO);
  auto S = ProgramCache::global().stats();
  EXPECT_EQ(S.Misses, SBefore.Misses + 1);
  EXPECT_GE(S.Hits, SBefore.Hits + 1);
}

//===----------------------------------------------------------------------===//
// Pass manager diagnostics
//===----------------------------------------------------------------------===//

TEST(CompilerPipeline, RecordsPassTimings) {
  StreamPtr Root = apps::buildFIR(64);
  PipelineOptions O;
  O.Mode = OptMode::Linear;
  O.Exec.Eng = Engine::Compiled;
  O.UseProgramCache = false;
  O.VerifyAfterEachPass = false; // keep the pass list env-independent
  CompileResult R = compileStream(*Root, O);
  std::vector<std::string> Names;
  for (const PassInfo &P : R.Passes)
    Names.push_back(P.Name);
  EXPECT_EQ(Names,
            (std::vector<std::string>{"linear-analysis", "linear-replacement",
                                      "linear-const-fold", "dead-channel-elim",
                                      "flatten", "schedule", "tape-compile"}));
  EXPECT_FALSE(R.timingReport().empty());
  EXPECT_GT(R.totalSeconds(), 0.0);
}

TEST(CompilerPipeline, VerifierPassesAreRecordedWhenEnabled) {
  StreamPtr Root = apps::buildFIR(64);
  PipelineOptions O;
  O.Mode = OptMode::Linear;
  O.Exec.Eng = Engine::Compiled;
  O.UseProgramCache = false;
  O.VerifyAfterEachPass = true;
  CompileResult R = compileStream(*Root, O);
  bool SawRates = false, SawSchedule = false;
  for (const PassInfo &P : R.Passes) {
    SawRates = SawRates || P.Name == "verify-rates";
    SawSchedule = SawSchedule || P.Name == "verify-schedule";
  }
  EXPECT_TRUE(SawRates);
  EXPECT_TRUE(SawSchedule);
}

TEST(CompilerPipeline, DumpAfterPassWritesDotAndJson) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "slin_dump_test";
  fs::remove_all(Dir);

  StreamPtr Root = apps::buildFIR(32);
  PipelineOptions O;
  O.Mode = OptMode::Linear;
  O.DumpDir = Dir.string();
  compileStream(*Root, O);

  bool SawDot = false, SawJson = false;
  for (const auto &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() == ".dot")
      SawDot = Entry.file_size() > 0;
    if (Entry.path().extension() == ".json")
      SawJson = Entry.file_size() > 0;
  }
  EXPECT_TRUE(SawDot);
  EXPECT_TRUE(SawJson);
  fs::remove_all(Dir);
}

} // namespace
