//===- tests/linear_extract_test.cpp - Extraction analysis tests ----------==//

#include "fft/FFT.h"
#include "linear/Analysis.h"
#include "linear/Extract.h"
#include "TestGraphs.h"

#include <gtest/gtest.h>

using namespace slin;
using namespace slin::testing_helpers;
using namespace slin::wir;
using namespace slin::wir::build;

namespace {

std::unique_ptr<Filter> makeFilter(WorkFunction W,
                                   std::vector<FieldDef> Fields = {}) {
  return std::make_unique<Filter>("f", std::move(Fields), std::move(W));
}

TEST(Extract, Figure31Example) {
  // work peek 3 pop 1 push 2 { push(3*peek(2)+5*peek(1));
  //                            push(2*peek(2)+peek(0)+6); pop(); }
  WorkFunction W(3, 1, 2,
                 stmts(push(add(mul(cst(3), peek(2)), mul(cst(5), peek(1)))),
                       push(add(add(mul(cst(2), peek(2)), peek(0)), cst(6))),
                       popStmt()));
  auto F = makeFilter(std::move(W));
  ExtractionResult R = extractLinearNode(*F);
  ASSERT_TRUE(R.isLinear()) << R.FailureReason;
  EXPECT_EQ(R.Node->matrix(), Matrix::fromRows({{2, 3}, {0, 5}, {1, 0}}));
  EXPECT_EQ(R.Node->vector(), Vector({6, 0}));
  EXPECT_EQ(R.Node->peekRate(), 3);
  EXPECT_EQ(R.Node->popRate(), 1);
  EXPECT_EQ(R.Node->pushRate(), 2);
}

TEST(Extract, FIRWithConstFields) {
  auto F = makeFIR({1.5, -2.0, 0.0, 4.0});
  ExtractionResult R = extractLinearNode(*F);
  ASSERT_TRUE(R.isLinear()) << R.FailureReason;
  const LinearNode &N = *R.Node;
  EXPECT_EQ(N.peekRate(), 4);
  for (int P = 0; P != 4; ++P)
    EXPECT_DOUBLE_EQ(N.coeff(P, 0), std::vector<double>({1.5, -2, 0, 4})[P]);
  EXPECT_DOUBLE_EQ(N.offset(0), 0.0);
}

TEST(Extract, PopSequenceBuildsCoefficients) {
  // push(2*pop() + 3*pop()): first pop is peek(0), second peek(1).
  WorkFunction W(2, 2, 1,
                 stmts(push(add(mul(cst(2), pop()), mul(cst(3), pop())))));
  auto F = makeFilter(std::move(W));
  ExtractionResult R = extractLinearNode(*F);
  ASSERT_TRUE(R.isLinear()) << R.FailureReason;
  EXPECT_DOUBLE_EQ(R.Node->coeff(0, 0), 2);
  EXPECT_DOUBLE_EQ(R.Node->coeff(1, 0), 3);
}

TEST(Extract, PeekAfterPopIsShifted) {
  // pop(); push(peek(0)) reads original index 1.
  WorkFunction W(2, 2, 1, stmts(popStmt(), push(peek(0)), popStmt()));
  auto F = makeFilter(std::move(W));
  ExtractionResult R = extractLinearNode(*F);
  ASSERT_TRUE(R.isLinear()) << R.FailureReason;
  EXPECT_DOUBLE_EQ(R.Node->coeff(0, 0), 0);
  EXPECT_DOUBLE_EQ(R.Node->coeff(1, 0), 1);
}

TEST(Extract, ExpanderCompressorAdder) {
  auto Exp = makeExpander(3);
  ExtractionResult RE = extractLinearNode(*Exp);
  ASSERT_TRUE(RE.isLinear()) << RE.FailureReason;
  EXPECT_EQ(RE.Node->pushRate(), 3);
  EXPECT_DOUBLE_EQ(RE.Node->coeff(0, 0), 1);
  EXPECT_DOUBLE_EQ(RE.Node->coeff(0, 1), 0);
  EXPECT_DOUBLE_EQ(RE.Node->coeff(0, 2), 0);

  auto Comp = makeCompressor(3);
  ExtractionResult RC = extractLinearNode(*Comp);
  ASSERT_TRUE(RC.isLinear()) << RC.FailureReason;
  EXPECT_EQ(RC.Node->peekRate(), 3);
  EXPECT_DOUBLE_EQ(RC.Node->coeff(0, 0), 1);
  EXPECT_DOUBLE_EQ(RC.Node->coeff(1, 0), 0);
  EXPECT_DOUBLE_EQ(RC.Node->coeff(2, 0), 0);

  auto Add = makeAdder(3);
  ExtractionResult RA = extractLinearNode(*Add);
  ASSERT_TRUE(RA.isLinear()) << RA.FailureReason;
  for (int P = 0; P != 3; ++P)
    EXPECT_DOUBLE_EQ(RA.Node->coeff(P, 0), 1);
}

TEST(Extract, LocalArrayReverseIsLinear) {
  WorkFunction W(3, 3, 3,
                 stmts(localArray("buf", 3),
                       loop("i", cst(0), cst(3),
                            stmts(arrAssign("buf", vr("i"), pop()))),
                       loop("i", cst(0), cst(3),
                            stmts(push(arrAt("buf", sub(cst(2), vr("i"))))))));
  auto F = makeFilter(std::move(W));
  ExtractionResult R = extractLinearNode(*F);
  ASSERT_TRUE(R.isLinear()) << R.FailureReason;
  // push j reads peek(2-j).
  EXPECT_DOUBLE_EQ(R.Node->coeff(2, 0), 1);
  EXPECT_DOUBLE_EQ(R.Node->coeff(1, 1), 1);
  EXPECT_DOUBLE_EQ(R.Node->coeff(0, 2), 1);
  EXPECT_DOUBLE_EQ(R.Node->coeff(0, 0), 0);
}

TEST(Extract, MutableStateIsNonlinear) {
  auto F = makeCountingSource();
  ExtractionResult R = extractLinearNode(*F);
  EXPECT_FALSE(R.isLinear());
}

TEST(Extract, PrintIsNonlinear) {
  auto F = makePrinterSink();
  ExtractionResult R = extractLinearNode(*F);
  EXPECT_FALSE(R.isLinear());
}

TEST(Extract, InputProductIsNonlinear) {
  // FMDemodulator-style peek(0)*peek(1).
  WorkFunction W(2, 1, 1, stmts(push(mul(peek(0), peek(1))), popStmt()));
  ExtractionResult R = extractLinearNode(*makeFilter(std::move(W)));
  EXPECT_FALSE(R.isLinear());
  EXPECT_NE(R.FailureReason.find("not an affine"), std::string::npos);
}

TEST(Extract, DivisionByInputIsNonlinear) {
  WorkFunction W(1, 1, 1, stmts(push(div(cst(1), peek(0))), popStmt()));
  ExtractionResult R = extractLinearNode(*makeFilter(std::move(W)));
  EXPECT_FALSE(R.isLinear());
}

TEST(Extract, DivisionByConstantIsLinear) {
  WorkFunction W(1, 1, 1, stmts(push(div(peek(0), cst(4))), popStmt()));
  ExtractionResult R = extractLinearNode(*makeFilter(std::move(W)));
  ASSERT_TRUE(R.isLinear()) << R.FailureReason;
  EXPECT_DOUBLE_EQ(R.Node->coeff(0, 0), 0.25);
}

TEST(Extract, IntrinsicOnInputIsNonlinear) {
  WorkFunction W(1, 1, 1, stmts(push(atanE(peek(0))), popStmt()));
  ExtractionResult R = extractLinearNode(*makeFilter(std::move(W)));
  EXPECT_FALSE(R.isLinear());
}

TEST(Extract, IntrinsicOnConstantFolds) {
  WorkFunction W(1, 1, 1,
                 stmts(push(mul(sqrtE(cst(16)), peek(0))), popStmt()));
  ExtractionResult R = extractLinearNode(*makeFilter(std::move(W)));
  ASSERT_TRUE(R.isLinear()) << R.FailureReason;
  EXPECT_DOUBLE_EQ(R.Node->coeff(0, 0), 4.0);
}

TEST(Extract, DataDependentBranchConflictIsNonlinear) {
  // ThresholdDetector: pushes different linear forms per arm.
  WorkFunction W(1, 1, 1,
                 stmts(assign("t", pop()),
                       ifStmt(gt(vr("t"), cst(0.5)), stmts(push(cst(1))),
                              stmts(push(cst(0))))));
  ExtractionResult R = extractLinearNode(*makeFilter(std::move(W)));
  EXPECT_FALSE(R.isLinear());
}

TEST(Extract, DataDependentBranchAgreementIsLinear) {
  // Both arms push the same affine form: the join keeps it linear.
  WorkFunction W(1, 1, 1,
                 stmts(assign("t", peek(0)),
                       ifStmt(gt(vr("t"), cst(0)),
                              stmts(push(mul(cst(2), peek(0)))),
                              stmts(push(add(peek(0), peek(0))))),
                       popStmt()));
  ExtractionResult R = extractLinearNode(*makeFilter(std::move(W)));
  ASSERT_TRUE(R.isLinear()) << R.FailureReason;
  EXPECT_DOUBLE_EQ(R.Node->coeff(0, 0), 2.0);
}

TEST(Extract, ConstantBranchTakesOneArm) {
  // if (1 < 2) push(peek(0)) else push(peek(0)*peek(0)) — the dead arm
  // would be nonlinear but is never analyzed.
  WorkFunction W(1, 1, 1,
                 stmts(ifStmt(lt(cst(1), cst(2)), stmts(push(peek(0))),
                              stmts(push(mul(peek(0), peek(0))))),
                       popStmt()));
  ExtractionResult R = extractLinearNode(*makeFilter(std::move(W)));
  ASSERT_TRUE(R.isLinear()) << R.FailureReason;
}

TEST(Extract, RateMismatchIsRejected) {
  // Declares pop 2 but pops once.
  WorkFunction W(2, 2, 1, stmts(push(peek(0)), popStmt()));
  ExtractionResult R = extractLinearNode(*makeFilter(std::move(W)));
  EXPECT_FALSE(R.isLinear());
  EXPECT_NE(R.FailureReason.find("pop count"), std::string::npos);
}

TEST(Extract, SinkIsNotLinear) {
  // push-free filters are excluded from the framework.
  WorkFunction W(1, 1, 0, stmts(popStmt()));
  ExtractionResult R = extractLinearNode(*makeFilter(std::move(W)));
  EXPECT_FALSE(R.isLinear());
}

//===----------------------------------------------------------------------===//
// Whole-graph analysis
//===----------------------------------------------------------------------===//

TEST(Analysis, TwoFIRPipelineCombinesToConvolution) {
  // The motivating example (Figures 1-3/1-4): the combined weights of two
  // back-to-back FIRs are the convolution of the individual weights.
  std::vector<double> H1 = {1, 2, 3};
  std::vector<double> H2 = {4, 5};
  Pipeline P("TwoFilters");
  P.add(makeFIR(H1, "FIR1"));
  P.add(makeFIR(H2, "FIR2"));
  LinearAnalysis LA(P);
  const LinearNode *N = LA.nodeFor(P);
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->peekRate(), 4); // N1 + N2 - 1
  EXPECT_EQ(N->popRate(), 1);
  EXPECT_EQ(N->pushRate(), 1);
  auto Conv = fft::directConvolve(H1, H2);
  for (int P2 = 0; P2 != 4; ++P2)
    EXPECT_NEAR(N->coeff(P2, 0), Conv[static_cast<size_t>(P2)], 1e-12);
}

TEST(Analysis, MixedPipelineMarksContainerNonlinear) {
  Pipeline P("prog");
  P.add(makeCountingSource());
  P.add(makeFIR({1, 2}));
  P.add(makePrinterSink());
  LinearAnalysis LA(P);
  EXPECT_EQ(LA.nodeFor(P), nullptr);
  EXPECT_NE(LA.nodeFor(*P.children()[1]), nullptr);
  EXPECT_EQ(LA.nodeFor(*P.children()[0]), nullptr);
  LinearAnalysis::Stats S = LA.stats();
  EXPECT_EQ(S.Filters, 3);
  EXPECT_EQ(S.LinearFilters, 1);
  EXPECT_EQ(S.Pipelines, 1);
  EXPECT_EQ(S.LinearPipelines, 0);
  EXPECT_DOUBLE_EQ(S.AvgVectorSize, 2.0);
}

TEST(Analysis, LinearSplitJoinGetsANode) {
  auto SJ = std::make_unique<SplitJoin>("sj", Splitter::duplicate(),
                                        Joiner::roundRobin({1, 1}));
  SJ->add(makeFIR({1, 2}, "a"));
  SJ->add(makeFIR({3, 4}, "b"));
  LinearAnalysis LA(*SJ);
  const LinearNode *N = LA.nodeFor(*SJ);
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->pushRate(), 2);
  EXPECT_EQ(N->popRate(), 1);
  // Output 0 comes from child a, output 1 from child b.
  auto Out = N->apply({10.0, 20.0});
  EXPECT_DOUBLE_EQ(Out[0], 1 * 10 + 2 * 20);
  EXPECT_DOUBLE_EQ(Out[1], 3 * 10 + 4 * 20);
}

TEST(Analysis, FeedbackLoopIsNonlinearButChildrenAnalyzed) {
  auto FB = std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeFIR({1, 2}, "body"),
      makeIdentity("loop"), Splitter::roundRobin({1, 1}),
      std::vector<double>{0});
  LinearAnalysis LA(*FB);
  EXPECT_EQ(LA.nodeFor(*FB), nullptr);
  EXPECT_NE(LA.nodeFor(FB->body()), nullptr);
  EXPECT_NE(LA.nodeFor(FB->loop()), nullptr);
}

} // namespace
