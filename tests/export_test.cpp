//===- tests/export_test.cpp - Stream exporter golden tests ---------------==//
//
// Golden-file tests for the DOT/JSON stream exporters (graph/Export.h):
// the rendered text of a small pipeline and a splitjoin must match the
// checked-in goldens byte for byte (tests/golden/). The exporters feed
// the compiler pipeline's dump-after-pass diagnostics, so their output
// must stay deterministic; regenerate the goldens deliberately when the
// format changes (the failure message prints the actual text).
//
//===----------------------------------------------------------------------===//

#include "graph/Export.h"
#include "TestGraphs.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace slin;
using namespace slin::testing_helpers;

namespace {

std::string readGolden(const std::string &Name) {
  std::string Path = std::string(SLIN_TEST_GOLDEN_DIR) + "/" + Name;
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "missing golden file " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

StreamPtr makeSmallPipeline() {
  auto P = std::make_unique<Pipeline>("p");
  P->add(makeCountingSource());
  P->add(makeFIR({1.0, 2.0, 3.0}, "Fir3"));
  P->add(makePrinterSink());
  return P;
}

StreamPtr makeSmallSplitJoin() {
  auto Root = std::make_unique<Pipeline>("root");
  Root->add(makeCountingSource());
  auto SJ = std::make_unique<SplitJoin>("sj", Splitter::duplicate(),
                                        Joiner::roundRobin({1, 2}));
  SJ->add(makeGain(10.0, "Gain10"));
  {
    auto Inner = std::make_unique<Pipeline>("inner");
    Inner->add(makeFIR({1.0, 2.0}, "Fir2"));
    Inner->add(makeExpander(2));
    SJ->add(std::move(Inner));
  }
  Root->add(std::move(SJ));
  Root->add(makePrinterSink());
  return Root;
}

TEST(Export, PipelineDotGolden) {
  EXPECT_EQ(streamToDot(*makeSmallPipeline()), readGolden("pipeline.dot"));
}

TEST(Export, PipelineJsonGolden) {
  EXPECT_EQ(streamToJson(*makeSmallPipeline()), readGolden("pipeline.json"));
}

TEST(Export, SplitJoinDotGolden) {
  EXPECT_EQ(streamToDot(*makeSmallSplitJoin()), readGolden("splitjoin.dot"));
}

TEST(Export, SplitJoinJsonGolden) {
  EXPECT_EQ(streamToJson(*makeSmallSplitJoin()), readGolden("splitjoin.json"));
}

// Exported text must not depend on object identity: a clone renders the
// same bytes.
TEST(Export, CloneRendersIdentically) {
  StreamPtr S = makeSmallSplitJoin();
  StreamPtr C = S->clone();
  EXPECT_EQ(streamToDot(*S), streamToDot(*C));
  EXPECT_EQ(streamToJson(*S), streamToJson(*C));
}

} // namespace
