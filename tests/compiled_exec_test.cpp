//===- tests/compiled_exec_test.cpp - Compiled engine tests ----------------==//
//
// The compiled batched execution engine, bottom up: the static scheduler
// (flat balance equations, init fixpoint, firing programs, high-water
// marks), the work-function op tape (bit-identical values AND identical
// op counts vs the tree interpreter), the batched matrix kernels
// (bit-identical to their sequential forms), and the CompiledExecutor
// driving them (external input handling, init work, feedback loops,
// batch-size invariance).
//
//===----------------------------------------------------------------------===//

#include "exec/CompiledExecutor.h"
#include "exec/Measure.h"
#include "matrix/Kernels.h"
#include "sched/Schedule.h"
#include "TestGraphs.h"

#include <gtest/gtest.h>

#include <random>

using namespace slin;
using namespace slin::testing_helpers;

namespace {

//===----------------------------------------------------------------------===//
// Static schedule
//===----------------------------------------------------------------------===//

TEST(Schedule, PipelineRepetitionsAndInit) {
  Pipeline P("p");
  P.add(makeCountingSource());
  P.add(makeFIR({1, 2, 3})); // peek 3 pop 1: needs 2 items of lookahead
  P.add(makePrinterSink());
  flat::FlatGraph G(P);
  StaticSchedule S = computeSchedule(G, 4);
  ASSERT_EQ(S.Repetitions.size(), 3u);
  EXPECT_EQ(S.Repetitions, (std::vector<int64_t>{1, 1, 1}));
  // Source must prime the FIR's peek - pop = 2 extra items.
  EXPECT_EQ(S.InitFirings, (std::vector<int64_t>{2, 0, 0}));
  // Each batch covers 4 steady states.
  int64_t SourceFirings = 0;
  for (const FiringStep &St : S.BatchProgram)
    if (St.Node == 0)
      SourceFirings += St.Count;
  EXPECT_EQ(SourceFirings, 4);
}

TEST(Schedule, MismatchedRatesSolveMinimally) {
  Pipeline P("p");
  P.add(makeCountingSource());
  P.add(makeExpander(2));
  P.add(makeCompressor(3));
  P.add(makePrinterSink());
  flat::FlatGraph G(P);
  StaticSchedule S = computeSchedule(G, 1);
  // Expander x3, Compressor x2 balances 2*3 == 3*2; source feeds 3,
  // sink drains 2 per steady state.
  EXPECT_EQ(S.Repetitions, (std::vector<int64_t>{3, 3, 2, 2}));
}

TEST(Schedule, ExternalInputAccounting) {
  auto F = makeFIR({1, 2, 3, 4}); // peek 4 pop 1
  flat::FlatGraph G(*F);
  StaticSchedule S = computeSchedule(G, 8);
  EXPECT_EQ(S.SteadyExternalPops, 1);
  EXPECT_EQ(S.SteadyExternalNeed, 1 + 3); // pop + lookahead
  EXPECT_EQ(S.BatchExternalPops, 8);
  EXPECT_EQ(S.BatchExternalNeed, 8 + 3);
  EXPECT_EQ(S.BatchExternalPushes, 8);
}

TEST(Schedule, HighWaterTracksBatch) {
  Pipeline P("p");
  P.add(makeCountingSource());
  P.add(makeGain(2));
  P.add(makePrinterSink());
  flat::FlatGraph G(P);
  StaticSchedule S = computeSchedule(G, 16);
  // The greedy program fires the source 16 times back to back, so the
  // source->gain channel's high-water mark is the full batch.
  bool Any = false;
  for (size_t C = 0; C != G.numChannels(); ++C)
    if (S.ChannelHighWater[C] == 16)
      Any = true;
  EXPECT_TRUE(Any);
}

TEST(ScheduleDeath, DeadlockedFeedbackLoopIsFatal) {
  // No enqueued items: the joiner can never fire.
  auto FB = std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeSumDiffFilter(), makeIdentity(),
      Splitter::roundRobin({1, 1}), std::vector<double>{});
  flat::FlatGraph G(*FB);
  EXPECT_DEATH(computeSchedule(G, 4), "cannot schedule");
}

//===----------------------------------------------------------------------===//
// Op tape vs tree interpreter
//===----------------------------------------------------------------------===//

/// Runs one firing of \p F through the interpreter (VectorTape) and the
/// op tape (raw buffers), expecting bit-identical outputs and identical
/// op counts.
void expectTapeMatchesInterp(const Filter &F,
                             const std::vector<double> &Input) {
  ASSERT_FALSE(F.isNative());
  const wir::WorkFunction &W = F.work();

  wir::VectorTape T(Input);
  wir::FieldStore SInterp(F.fields());
  ops::CountingScope Scope;
  ops::reset();
  wir::interpret(W, F.fields(), SInterp, T);
  OpCounts InterpOps = ops::counts();

  wir::OpProgram P = wir::OpProgram::compile(W, F.fields());
  wir::WorkFrame Frame;
  P.prepareFrame(Frame);
  wir::FieldStore STape(F.fields());
  std::vector<double> Out(static_cast<size_t>(std::max(W.PushRate, 1)));
  std::vector<double> Printed;
  ops::reset();
  P.run(Frame, STape, Input.data(), Out.data(), Printed);
  OpCounts TapeOps = ops::counts();

  ASSERT_EQ(T.Output.size(), static_cast<size_t>(W.PushRate));
  for (int J = 0; J != W.PushRate; ++J)
    EXPECT_EQ(T.Output[static_cast<size_t>(J)], Out[static_cast<size_t>(J)])
        << "push " << J;
  EXPECT_EQ(T.Printed, Printed);
  // Mutable fields must evolve identically.
  for (size_t I = 0; I != SInterp.Values.size(); ++I)
    EXPECT_EQ(SInterp.Values[I], STape.Values[I]) << "field " << I;
  // The paper's FLOP taxonomy must be preserved exactly.
  EXPECT_EQ(InterpOps.Adds, TapeOps.Adds);
  EXPECT_EQ(InterpOps.Subs, TapeOps.Subs);
  EXPECT_EQ(InterpOps.Muls, TapeOps.Muls);
  EXPECT_EQ(InterpOps.Divs, TapeOps.Divs);
  EXPECT_EQ(InterpOps.Cmps, TapeOps.Cmps);
  EXPECT_EQ(InterpOps.Trans, TapeOps.Trans);
}

TEST(OpTape, FIRMatchesInterp) {
  auto F = makeFIR({0.5, -1.25, 3.0, 0.0, 2.5});
  expectTapeMatchesInterp(*F, {1.5, -2.25, 3.125, 4.0, 5.5, 6.0});
}

TEST(OpTape, CompressorAndAdderMatchInterp) {
  auto C = makeCompressor(3);
  expectTapeMatchesInterp(*C, {1, 2, 3});
  auto A = makeAdder(4);
  expectTapeMatchesInterp(*A, {0.1, 0.2, 0.3, 0.4});
}

TEST(OpTape, ControlFlowAndIntrinsics) {
  using namespace slin::wir;
  using namespace slin::wir::build;
  // if (peek(0) < peek(1)) push(sin(pop())) else push(-pop());
  // plus a local array round-trip and a logical operator.
  StmtList Body;
  Body.push_back(localArray("buf", 4));
  Body.push_back(arrAssign("buf", cst(2), peek(1)));
  Body.push_back(
      ifStmt(lt(peek(0), peek(1)),
             stmts(push(call(Intrinsic::Sin, pop())),
                   push(arrAt("buf", cst(2)))),
             stmts(push(neg(pop())), push(cst(0)))));
  Body.push_back(assign("flag", bin(BinOp::LAnd, gt(peek(0), cst(-100)),
                                    le(peek(0), cst(100)))));
  Body.push_back(push(vr("flag")));
  Body.push_back(popStmt());
  WorkFunction W(2, 2, 3, std::move(Body));
  Filter F("ctrl", {}, std::move(W));
  expectTapeMatchesInterp(F, {0.25, 0.75});
}

TEST(OpTape, StatefulFieldsMatchInterp) {
  // Counting source: mutable scalar field evolves across the firing.
  auto S = makeCountingSource();
  expectTapeMatchesInterp(*S, {});
}

TEST(OpTape, LogicalResultFeedingAddIsNotMisfused) {
  using namespace slin::wir;
  using namespace slin::wir::build;
  // Regression: (a && b) + v ends the LAnd sequence with a Const landing
  // pad that the AddImm peephole must NOT fuse away (the LAnd's end jump
  // targets the instruction after it).
  StmtList Body;
  Body.push_back(assign("v", peek(2)));
  Body.push_back(push(add(bin(BinOp::LAnd, peek(0), peek(1)), vr("v"))));
  Body.push_back(popStmt());
  WorkFunction W(3, 1, 1, std::move(Body));
  Filter F("landadd", {}, std::move(W));
  expectTapeMatchesInterp(F, {1, 2, 10});  // true path: 1 + 10
  expectTapeMatchesInterp(F, {0, 2, 10});  // false path: 0 + 10
}

TEST(OpTape, LoopExitTargetIsNotMisfused) {
  using namespace slin::wir;
  using namespace slin::wir::build;
  // Regression companion: an accumulation right after a loop exit (a
  // jump target) must not fuse with the loop's last instruction.
  StmtList Body;
  Body.push_back(assign("s", cst(0)));
  Body.push_back(loop("i", cst(0), peek(0),
                      stmts(assign("s", add(vr("s"), peek(vr("i")))))));
  Body.push_back(push(add(vr("s"), cst(100))));
  Body.push_back(popStmt());
  WorkFunction W(4, 1, 1, std::move(Body));
  Filter F("loopadd", {}, std::move(W));
  expectTapeMatchesInterp(F, {3, 5, 7, 9});
}

//===----------------------------------------------------------------------===//
// Batched kernels
//===----------------------------------------------------------------------===//

TEST(BatchedKernels, PackedBatchedBitIdentical) {
  std::mt19937 Rng(7);
  std::uniform_real_distribution<double> D(-2.0, 2.0);
  const int E = 13, U = 5, O = 3, K = 11;
  Matrix C(E, U);
  Vector B(U);
  for (int P = 0; P != E; ++P)
    for (int J = 0; J != U; ++J)
      C.at(P, J) = (P + J) % 4 == 0 ? 0.0 : D(Rng); // some zero bands
  for (int J = 0; J != U; ++J)
    B[J] = J % 2 ? D(Rng) : 0.0;
  PackedLinearKernel Kern(C, B);

  std::vector<double> In(static_cast<size_t>((K - 1) * O + E));
  for (double &V : In)
    V = D(Rng);
  std::vector<double> Seq(static_cast<size_t>(K) * U), Bat(Seq.size());
  for (int I = 0; I != K; ++I)
    Kern.applyBanded(In.data() + static_cast<size_t>(I) * O,
                     Seq.data() + static_cast<size_t>(I) * U);
  Kern.applyBatched(In.data(), Bat.data(), K, O);
  EXPECT_EQ(Seq, Bat);

  // Counted path: batched counts == K x sequential counts.
  ops::CountingScope Scope;
  ops::reset();
  Kern.applyBanded(In.data(), Seq.data());
  OpCounts One = ops::counts();
  ops::reset();
  Kern.applyBatched(In.data(), Bat.data(), K, O);
  OpCounts Batch = ops::counts();
  EXPECT_EQ(Batch.flops(), static_cast<uint64_t>(K) * One.flops());
}

TEST(BatchedKernels, TunedBatchedBitIdentical) {
  std::mt19937 Rng(11);
  std::uniform_real_distribution<double> D(-1.0, 1.0);
  const int E = 10, U = 4, O = 2, K = 9;
  Matrix C(E, U);
  Vector B(U);
  for (int P = 0; P != E; ++P)
    for (int J = 0; J != U; ++J)
      C.at(P, J) = D(Rng);
  for (int J = 0; J != U; ++J)
    B[J] = D(Rng);
  TunedGemv Kern(C, B);

  std::vector<double> In(static_cast<size_t>((K - 1) * O + E));
  for (double &V : In)
    V = D(Rng);
  std::vector<double> Seq(static_cast<size_t>(K) * U), Bat(Seq.size());
  for (int I = 0; I != K; ++I)
    Kern.apply(In.data() + static_cast<size_t>(I) * O,
               Seq.data() + static_cast<size_t>(I) * U);
  Kern.applyBatched(In.data(), Bat.data(), K, O);
  EXPECT_EQ(Seq, Bat);
}

//===----------------------------------------------------------------------===//
// CompiledExecutor
//===----------------------------------------------------------------------===//

TEST(CompiledExec, SourceFIRSink) {
  Pipeline P("FIRProgram");
  P.add(makeCountingSource());
  P.add(makeFIR({1, 2, 3}));
  P.add(makePrinterSink());
  CompiledExecutor E(P);
  E.run(4);
  ASSERT_GE(E.printed().size(), 4u);
  for (int K = 0; K != 4; ++K)
    EXPECT_DOUBLE_EQ(E.printed()[static_cast<size_t>(K)], 6.0 * K + 8.0);
}

TEST(CompiledExec, ExternalInputAndOutput) {
  auto F = makeFIR({2, 5});
  CompiledExecutor E(*F);
  E.provideInput({1, 2, 3, 4});
  E.run(3);
  auto Out = E.outputSnapshot();
  ASSERT_GE(Out.size(), 3u);
  EXPECT_DOUBLE_EQ(Out[0], 2 * 1 + 5 * 2);
  EXPECT_DOUBLE_EQ(Out[1], 2 * 2 + 5 * 3);
  EXPECT_DOUBLE_EQ(Out[2], 2 * 3 + 5 * 4);
}

TEST(CompiledExec, TailIterationsWhenInputShort) {
  // 20 inputs with batch size 16: one batch plus tail steady iterations.
  auto F = makeGain(3);
  CompiledExecutor::Options O;
  O.BatchIterations = 16;
  CompiledExecutor E(*F, O);
  std::vector<double> In;
  for (int I = 0; I != 20; ++I)
    In.push_back(I);
  E.provideInput(In);
  E.run(20);
  auto Out = E.outputSnapshot();
  ASSERT_EQ(Out.size(), 20u);
  for (int I = 0; I != 20; ++I)
    EXPECT_DOUBLE_EQ(Out[static_cast<size_t>(I)], 3.0 * I);
}

TEST(CompiledExecDeath, InsufficientInputIsFatal) {
  auto F = makeFIR({1, 1, 1, 1});
  CompiledExecutor E(*F);
  E.provideInput({1, 2});
  EXPECT_DEATH(E.run(1), "deadlocked");
}

TEST(CompiledExec, InitWorkPeekingBeyondPopsOnExternalInput) {
  using namespace slin::wir;
  using namespace slin::wir::build;
  // Regression: the init firing peeks 5 deep but pops only 3; the
  // schedule's external-input requirement must cover the full window,
  // and both engines must agree on the outputs.
  auto Make = [] {
    auto F = std::make_unique<Filter>(
        "initf", std::vector<FieldDef>{},
        WorkFunction(2, 1, 1, stmts(push(add(peek(0), peek(1))), popStmt())));
    F->setInitWork(WorkFunction(
        5, 3, 2, stmts(push(add(pop(), peek(3))), push(add(pop(), pop())))));
    return F;
  };
  auto F1 = Make();
  flat::FlatGraph G(*F1);
  StaticSchedule S = computeSchedule(G, 4);
  EXPECT_GE(S.InitExternalNeed, 5); // the init window, not just pops+extra

  std::vector<double> In = {1, 2, 3, 4, 5, 6, 7};
  auto F2 = Make();
  Executor D(*F2);
  D.provideInput(In);
  D.run(4);
  auto F3 = Make();
  CompiledExecutor C(*F3);
  C.provideInput(In);
  C.run(4);
  auto Dyn = D.outputSnapshot();
  auto Comp = C.outputSnapshot();
  ASSERT_GE(Dyn.size(), 4u);
  ASSERT_GE(Comp.size(), 4u);
  for (size_t I = 0; I != 4; ++I)
    EXPECT_EQ(Dyn[I], Comp[I]) << "output " << I;

  // With one item short of the init window, both engines must refuse.
  auto F4 = Make();
  CompiledExecutor Short(*F4);
  Short.provideInput({1, 2, 3, 4});
  EXPECT_DEATH(Short.run(1), "deadlocked");
}

TEST(CompiledExec, InitWorkDifferentRates) {
  using namespace slin::wir;
  using namespace slin::wir::build;
  auto F = std::make_unique<Filter>(
      "init", std::vector<FieldDef>{},
      WorkFunction(1, 1, 1, stmts(push(pop()))));
  F->setInitWork(WorkFunction(
      3, 3, 1, stmts(push(add(add(pop(), pop()), pop())))));
  CompiledExecutor E(*F);
  E.provideInput({1, 2, 3, 4, 5});
  E.run(3);
  auto Out = E.outputSnapshot();
  ASSERT_GE(Out.size(), 3u);
  EXPECT_DOUBLE_EQ(Out[0], 6);
  EXPECT_DOUBLE_EQ(Out[1], 4);
  EXPECT_DOUBLE_EQ(Out[2], 5);
}

TEST(CompiledExec, FeedbackLoopSumDiff) {
  auto FB = std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeSumDiffFilter(), makeIdentity(),
      Splitter::roundRobin({1, 1}), std::vector<double>{0});
  CompiledExecutor E(*FB);
  E.provideInput({1, 2, 3, 4, 5, 6, 7, 8});
  E.run(3);
  auto Out = E.outputSnapshot();
  ASSERT_GE(Out.size(), 3u);
  EXPECT_DOUBLE_EQ(Out[0], 1);
  EXPECT_DOUBLE_EQ(Out[1], 2 + 1);
  EXPECT_DOUBLE_EQ(Out[2], 3 + (2 - 1));
}

TEST(CompiledExec, BatchSizeDoesNotChangeOutputs) {
  Pipeline P("p");
  P.add(makeCountingSource());
  P.add(makeFIR({1, -2, 3, -4, 5, -6, 7, -8}));
  P.add(makePrinterSink());
  std::vector<double> Ref;
  for (int B : {1, 2, 16, 64}) {
    CompiledExecutor::Options O;
    O.BatchIterations = B;
    CompiledExecutor E(P, O);
    E.run(100);
    std::vector<double> Out(E.printed().begin(),
                            E.printed().begin() + 100);
    if (Ref.empty())
      Ref = Out;
    else
      EXPECT_EQ(Ref, Out) << "batch " << B;
  }
}

TEST(CompiledExec, FiringsAccounted) {
  Pipeline P("p");
  P.add(makeCountingSource());
  P.add(makeGain(2));
  P.add(makePrinterSink());
  CompiledExecutor::Options O;
  O.BatchIterations = 8;
  CompiledExecutor E(P, O);
  E.run(8);
  // One batch: 8 firings each of source, gain, sink.
  EXPECT_EQ(E.firings(), 24u);
}

TEST(CompiledExec, MeasureCountsMatchDynamic) {
  Pipeline P("p");
  P.add(makeCountingSource());
  P.add(makeFIR({1, 2, 3, 4, 5, 6, 7, 8}));
  P.add(makePrinterSink());
  MeasureOptions MO;
  MO.WarmupOutputs = 64;
  MO.MeasureOutputs = 512;
  MO.MeasureTime = false;
  Measurement MD = measureSteadyState(P, MO);
  MO.Exec.Eng = Engine::Compiled;
  Measurement MC = measureSteadyState(P, MO);
  EXPECT_NEAR(MD.flopsPerOutput(), MC.flopsPerOutput(), 0.2);
  EXPECT_NEAR(MD.multsPerOutput(), MC.multsPerOutput(), 0.1);
}

} // namespace
