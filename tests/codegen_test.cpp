//===- tests/codegen_test.cpp - Native codegen engine tests ---------------==//
//
// The emitted-C++ native engine (src/codegen/ + wir/CxxEmit.h): hexfloat
// literal round trips, bit-identity of emitted tape code and emitted
// linear batch kernels against the op-tape interpreter, the warm-restart
// path (a stored .so dlopens with zero compiler passes and zero codegen),
// the SLIN_NO_CACHE disk-tier bypass, clean degradation without a
// toolchain (SLIN_CXX=/nonexistent) and under SLIN_NO_NATIVE, the
// pipeline's native-codegen pass bookkeeping, and FLOP-count preservation
// (counting runs fall back to the tapes, so Engine::Native reports the
// interpreter's numbers).
//
// Every native compile here shells out to the real toolchain; tests that
// need one GTEST_SKIP when discoverCompiler() finds none.
//
//===----------------------------------------------------------------------===//

#include "codegen/CxxBackend.h"
#include "codegen/NativeModule.h"
#include "compiler/ArtifactStore.h"
#include "compiler/Pipeline.h"
#include "compiler/Program.h"
#include "exec/CompiledExecutor.h"
#include "exec/Measure.h"
#include "support/OpCounters.h"
#include "support/RuntimeConfig.h"
#include "wir/CxxEmit.h"
#include "TestGraphs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <sys/wait.h>
#include <unistd.h>

using namespace slin;
using namespace slin::testing_helpers;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Scoped environment override; restores the previous value (or absence).
/// Refreshes the RuntimeConfig snapshot both ways so the override is
/// visible to every config-reading call site in between.
class EnvGuard {
public:
  EnvGuard(const char *Name, const char *Value) : Name(Name) {
    if (const char *Old = std::getenv(Name)) {
      Saved = Old;
      Had = true;
    }
    if (Value)
      ::setenv(Name, Value, 1);
    else
      ::unsetenv(Name);
    RuntimeConfig::refreshFromEnv();
  }
  ~EnvGuard() {
    if (Had)
      ::setenv(Name.c_str(), Saved.c_str(), 1);
    else
      ::unsetenv(Name.c_str());
    RuntimeConfig::refreshFromEnv();
  }

private:
  std::string Name;
  std::string Saved;
  bool Had = false;
};

/// Clears the process-global native-module cache (modules AND negative
/// entries AND stats) on entry and exit, so no test sees a neighbour's
/// memoization.
struct NativeGuard {
  NativeGuard() {
    codegen::NativeModuleCache::global().clear();
    codegen::NativeModuleCache::global().resetStats();
  }
  ~NativeGuard() {
    codegen::NativeModuleCache::global().clear();
    codegen::NativeModuleCache::global().resetStats();
  }
};

/// A scoped artifact directory for the process-global store.
class StoreGuard {
public:
  StoreGuard() {
    Dir = (std::filesystem::temp_directory_path() /
           ("slin-codegen-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(Counter++)))
              .string();
    ArtifactStore::setGlobalDir(Dir);
    ProgramCache::global().clear();
    ProgramCache::global().resetStats();
  }
  ~StoreGuard() {
    ArtifactStore::setGlobalDir("");
    ProgramCache::global().clear();
    ProgramCache::global().resetStats();
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }

  const std::string &dir() const { return Dir; }

  /// Published native objects ("o-*.so", final names only).
  size_t objectCount() const {
    size_t N = 0;
    for (auto It = std::filesystem::directory_iterator(Dir);
         It != std::filesystem::directory_iterator(); ++It) {
      std::string F = It->path().filename().string();
      if (F.rfind("o-", 0) == 0 && F.find(".tmp.") == std::string::npos)
        ++N;
    }
    return N;
  }

private:
  static int Counter;
  std::string Dir;
};

int StoreGuard::Counter = 0;

StreamPtr firSourcePipeline(std::vector<double> Taps,
                            const std::string &Name = "fir") {
  auto P = std::make_unique<Pipeline>(Name);
  P->add(makeCountingSource());
  P->add(makeFIR(std::move(Taps)));
  P->add(makePrinterSink());
  return P;
}

/// A pipeline that exercises the tape emitter's full surface: field
/// state (the counting source), peeks (FIR), an intrinsic call, and
/// init work that peeks beyond what it pops.
StreamPtr tapeZooPipeline() {
  using namespace slin::wir;
  using namespace slin::wir::build;
  auto P = std::make_unique<Pipeline>("zoo");
  P->add(makeCountingSource());
  P->add(makeFIR({1.5, -2.25, 1.0 / 3.0, 0.5, -0.125, 7.0, 11.0, -13.0}));
  P->add(std::make_unique<Filter>(
      "sinmod", std::vector<FieldDef>{},
      WorkFunction(1, 1, 1, stmts(push(mul(sinE(pop()), cst(0.25)))))));
  {
    auto F = std::make_unique<Filter>(
        "initf", std::vector<FieldDef>{},
        WorkFunction(2, 1, 1, stmts(push(add(peek(0), peek(1))), popStmt())));
    F->setInitWork(WorkFunction(
        5, 3, 2, stmts(push(add(pop(), peek(3))), push(add(pop(), pop())))));
    P->add(std::move(F));
  }
  P->add(makePrinterSink());
  return P;
}

CompiledProgramRef makeProgram(const Stream &Root,
                               CompiledOptions Opts = CompiledOptions()) {
  return std::make_shared<const CompiledProgram>(Root, Opts);
}

/// First N outputs of a fresh executor, with \p M attached (null: tapes).
std::vector<double> runWith(const CompiledProgramRef &P,
                            codegen::NativeModuleRef M, size_t N) {
  CompiledExecutor E(P, std::move(M));
  E.run(N);
  std::vector<double> Out =
      E.printed().empty() ? E.outputSnapshot() : E.printed();
  if (Out.size() > N)
    Out.resize(N);
  return Out;
}

/// True when the discovered compiler both exists and runs: the CI
/// no-toolchain arm points SLIN_CXX at a nonexistent path, which
/// discoverCompiler() returns verbatim — tests that need a *working*
/// toolchain must probe it, not just name it. Deliberately unmemoized
/// (tests flip SLIN_CXX around it).
bool haveToolchain() {
  std::string Cxx = codegen::discoverCompiler();
  if (Cxx.empty())
    return false;
  std::string Cmd = "'" + Cxx + "' --version >/dev/null 2>&1";
  int Rc = std::system(Cmd.c_str());
  return Rc != -1 && WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0;
}

//===----------------------------------------------------------------------===//
// Literal emission
//===----------------------------------------------------------------------===//

TEST(CxxEmit, DoubleLiteralRoundTripsBitExactly) {
  // Hexfloat literals parse back to the same bits — the property the
  // whole bit-identity contract rests on for embedded constants.
  const double Values[] = {0.0,
                           1.0,
                           -1.0,
                           1.0 / 3.0,
                           0.1,
                           -2.5e-7,
                           3.141592653589793,
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::denorm_min(),
                           -4.9406564584124654e-324};
  for (double V : Values) {
    std::string L = wir::cxxDoubleLiteral(V);
    double Back = std::strtod(L.c_str(), nullptr);
    EXPECT_EQ(0, std::memcmp(&V, &Back, sizeof(double)))
        << "literal " << L << " for " << V;
  }
  // Negative zero keeps its sign bit.
  double NZ = -0.0;
  double Back = std::strtod(wir::cxxDoubleLiteral(NZ).c_str(), nullptr);
  EXPECT_TRUE(std::signbit(Back));
  // Non-finite values route through the bit-pattern helper (strtod
  // cannot express them portably).
  EXPECT_EQ(wir::cxxDoubleLiteral(std::nan("")).rfind("slin_bits_(", 0), 0u);
  EXPECT_EQ(wir::cxxDoubleLiteral(std::numeric_limits<double>::infinity())
                .rfind("slin_bits_(", 0),
            0u);
}

//===----------------------------------------------------------------------===//
// Toolchain discovery
//===----------------------------------------------------------------------===//

TEST(NativeCodegen, SlinCxxOverridesDiscoveryVerbatim) {
  EnvGuard CXX("SLIN_CXX", "/nonexistent/slin-test-cxx");
  // Verbatim, no probing: the CI no-toolchain arm depends on a missing
  // path surfacing at compile time, not being silently skipped.
  EXPECT_EQ(codegen::discoverCompiler(), "/nonexistent/slin-test-cxx");
}

//===----------------------------------------------------------------------===//
// Bit-identity
//===----------------------------------------------------------------------===//

TEST(NativeCodegen, EmittedTapesBitIdenticalToInterpreter) {
  if (!haveToolchain())
    GTEST_SKIP() << "no C++ toolchain available";
  NativeGuard NG;
  StreamPtr Root = tapeZooPipeline();
  CompiledProgramRef P = makeProgram(*Root);

  std::string Reason;
  codegen::NativeModuleRef M =
      codegen::NativeModuleCache::global().get(*P, &Reason);
  ASSERT_NE(M, nullptr) << Reason;
  EXPECT_TRUE(M->hasAnyFn());

  // 257 outputs: covers init firings, whole batches and a remainder.
  auto Tapes = runWith(P, nullptr, 257);
  auto Native = runWith(P, M, 257);
  EXPECT_EQ(Tapes, Native); // EXPECT_EQ on doubles: bit-identical
}

TEST(NativeCodegen, EmittedLinearKernelBitIdenticalToHostKernel) {
  if (!haveToolchain())
    GTEST_SKIP() << "no C++ toolchain available";
  NativeGuard NG;
  // Linear replacement collapses the FIR into a PackedLinearFilter whose
  // batch kernel the backend re-emits as C++ (Kernels.cpp
  // emitBatchedCxx); outputs must match the host kernel bit-for-bit.
  StreamPtr Root = firSourcePipeline(
      {0.25, -1.5, 1.0 / 7.0, 3.25, -0.875, 2.0 / 3.0, 5.5, -1.0 / 9.0});
  PipelineOptions PO;
  PO.Mode = OptMode::Linear;
  PO.Exec.Eng = Engine::Native;
  PO.UseProgramCache = false;
  CompileResult R = compileStream(*Root, PO);
  ASSERT_NE(R.Program, nullptr);
  EXPECT_FALSE(R.Degraded) << R.DegradeReason;

  codegen::NativeModuleRef M =
      codegen::NativeModuleCache::global().get(*R.Program);
  ASSERT_NE(M, nullptr);
  auto Host = runWith(R.Program, nullptr, 200);
  auto Native = runWith(R.Program, M, 200);
  EXPECT_EQ(Host, Native);
}

//===----------------------------------------------------------------------===//
// FLOP accounting under Engine::Native
//===----------------------------------------------------------------------===//

TEST(NativeCodegen, CountingRunsFallBackToTapesSoFlopsMatchCompiled) {
  NativeGuard NG;
  // Emitted code does no op accounting; the executor's dispatch is
  // counting-gated, so a counting run under Engine::Native executes the
  // tapes and reports exactly the compiled engine's FLOP numbers.
  StreamPtr Root = firSourcePipeline({1, 2, 3, 4, 5, 6, 7, 8});
  MeasureOptions MO;
  MO.WarmupOutputs = 32;
  MO.MeasureOutputs = 128;
  MO.MeasureTime = false;
  MO.Exec.Eng = Engine::Compiled;
  Measurement Comp = measureSteadyState(*Root, MO);
  MO.Exec.Eng = Engine::Native;
  Measurement Nat = measureSteadyState(*Root, MO);
  EXPECT_EQ(Comp.Outputs, Nat.Outputs);
  EXPECT_EQ(Comp.flopsPerOutput(), Nat.flopsPerOutput());
  EXPECT_EQ(Comp.multsPerOutput(), Nat.multsPerOutput());
}

//===----------------------------------------------------------------------===//
// Warm restart: the stored .so is the whole load path
//===----------------------------------------------------------------------===//

TEST(NativeCodegen, WarmRestartServesObjectWithZeroPassesAndZeroCodegen) {
  if (!haveToolchain())
    GTEST_SKIP() << "no C++ toolchain available";
  StoreGuard SG;
  NativeGuard NG;
  StreamPtr Root = firSourcePipeline({2.0, -0.5, 1.25, 0.75, -3.5});
  PipelineOptions PO;
  PO.Mode = OptMode::Linear;
  PO.Exec.Eng = Engine::Native;

  // Cold: full pipeline + emit + compile + publish.
  CompileResult R1 = compileStream(*Root, PO);
  ASSERT_NE(R1.Program, nullptr);
  EXPECT_FALSE(R1.Degraded) << R1.DegradeReason;
  {
    auto S = codegen::NativeModuleCache::global().stats();
    EXPECT_EQ(S.Compiles, 1u);
    EXPECT_EQ(S.DiskHits, 0u);
  }
  EXPECT_EQ(SG.objectCount(), 1u);
  auto Cold =
      runWith(R1.Program, codegen::NativeModuleCache::global().get(*R1.Program),
              150);

  // Simulated process restart: drop every in-memory cache; only the
  // store directory survives.
  ProgramCache::global().clear();
  ProgramCache::global().resetStats();
  codegen::NativeModuleCache::global().clear();
  codegen::NativeModuleCache::global().resetStats();

  CompileResult R2 = compileStream(*Root, PO);
  ASSERT_NE(R2.Program, nullptr);
  EXPECT_TRUE(R2.ProgramCacheHit);
  EXPECT_TRUE(R2.Program->loadedFromArtifact());
  // Zero compiler passes: the alias fast path replaces them all with one
  // artifact load, plus the native-codegen resolution step.
  for (const PassInfo &P : R2.Passes)
    EXPECT_TRUE(P.Name == "artifact-load" || P.Name == "native-codegen")
        << "unexpected pass on the warm path: " << P.Name;
  // Zero codegen: the module came from the disk tier, no compile ran.
  {
    auto S = codegen::NativeModuleCache::global().stats();
    EXPECT_EQ(S.DiskHits, 1u);
    EXPECT_EQ(S.Compiles, 0u);
    EXPECT_EQ(S.CompileFailures, 0u);
  }
  auto Warm =
      runWith(R2.Program, codegen::NativeModuleCache::global().get(*R2.Program),
              150);
  EXPECT_EQ(Cold, Warm);
}

//===----------------------------------------------------------------------===//
// SLIN_NO_CACHE bypasses the native disk tier too
//===----------------------------------------------------------------------===//

TEST(NativeCodegen, NoCacheEnvBypassesNativeObjectDiskTier) {
  if (!haveToolchain())
    GTEST_SKIP() << "no C++ toolchain available";
  StoreGuard SG;
  NativeGuard NG;
  codegen::NativeModuleCache &C = codegen::NativeModuleCache::global();
  StreamPtr Root = firSourcePipeline({4.0, -2.0, 1.0});
  CompiledProgramRef P = makeProgram(*Root);

  {
    EnvGuard NC("SLIN_NO_CACHE", "1");
    codegen::NativeModuleRef M = C.get(*P);
    ASSERT_NE(M, nullptr);
    // Built, but never published: the disk tier is bypassed on write...
    EXPECT_EQ(C.stats().Compiles, 1u);
    EXPECT_EQ(SG.objectCount(), 0u);
    // ...while in-process memoization stays on.
    EXPECT_EQ(C.get(*P).get(), M.get());
    EXPECT_EQ(C.stats().MemHits, 1u);
    EXPECT_EQ(C.stats().Compiles, 1u);
  }

  // Cache re-enabled: a fresh build publishes the object...
  C.clear();
  C.resetStats();
  ASSERT_NE(C.get(*P), nullptr);
  EXPECT_EQ(C.stats().Compiles, 1u);
  EXPECT_EQ(SG.objectCount(), 1u);

  // ...and SLIN_NO_CACHE also bypasses it on *read*: a cold cache under
  // the env compiles again instead of dlopening the stored object.
  {
    EnvGuard NC("SLIN_NO_CACHE", "1");
    C.clear();
    C.resetStats();
    ASSERT_NE(C.get(*P), nullptr);
    EXPECT_EQ(C.stats().DiskHits, 0u);
    EXPECT_EQ(C.stats().Compiles, 1u);
  }

  // Control: without the env the same cold cache disk-hits.
  C.clear();
  C.resetStats();
  ASSERT_NE(C.get(*P), nullptr);
  EXPECT_EQ(C.stats().DiskHits, 1u);
  EXPECT_EQ(C.stats().Compiles, 0u);
}

//===----------------------------------------------------------------------===//
// Degradation
//===----------------------------------------------------------------------===//

TEST(NativeCodegen, MissingToolchainDegradesCleanlyAndNegativelyCaches) {
  NativeGuard NG;
  EnvGuard CXX("SLIN_CXX", "/nonexistent/slin-test-cxx");
  codegen::NativeModuleCache &C = codegen::NativeModuleCache::global();
  StreamPtr Root = firSourcePipeline({1.0, -1.0, 2.0});
  CompiledProgramRef P = makeProgram(*Root);

  std::string Reason;
  EXPECT_EQ(C.get(*P, &Reason), nullptr);
  EXPECT_FALSE(Reason.empty());
  EXPECT_EQ(C.stats().CompileFailures, 1u);
  EXPECT_GE(C.stats().Degrades, 1u);

  // Negatively cached: the dead toolchain is probed once per program,
  // not once per run.
  Reason.clear();
  EXPECT_EQ(C.get(*P, &Reason), nullptr);
  EXPECT_FALSE(Reason.empty());
  EXPECT_EQ(C.stats().Compiles, 1u);
  EXPECT_EQ(C.stats().MemHits, 1u);

  // The engine still answers — on the op tapes, bit-identically.
  auto Degraded = collectOutputs(*Root, 96, Engine::Native);
  auto Reference = collectOutputs(*Root, 96, Engine::Compiled);
  EXPECT_EQ(Degraded, Reference);
}

TEST(NativeCodegen, SlinNoNativeDisablesCodegenOutright) {
  NativeGuard NG;
  EnvGuard Off("SLIN_NO_NATIVE", "1");
  codegen::NativeModuleCache &C = codegen::NativeModuleCache::global();
  StreamPtr Root = firSourcePipeline({1.0, 2.0});
  CompiledProgramRef P = makeProgram(*Root);

  std::string Reason;
  EXPECT_EQ(C.get(*P, &Reason), nullptr);
  EXPECT_NE(Reason.find("SLIN_NO_NATIVE"), std::string::npos);
  // Disabled before any work: no compile, no disk probe, no negative
  // cache entry (flipping the env back re-enables immediately).
  EXPECT_EQ(C.stats().Compiles, 0u);
  EXPECT_EQ(C.stats().Misses, 0u);
}

TEST(NativeCodegen, PipelineRecordsNativeCodegenPass) {
  NativeGuard NG;
  StreamPtr Root = firSourcePipeline({3.0, 1.0, -2.0});
  PipelineOptions PO;
  PO.Mode = OptMode::Linear;
  PO.Exec.Eng = Engine::Native;
  PO.UseProgramCache = false;
  CompileResult R = compileStream(*Root, PO);
  ASSERT_NE(R.Program, nullptr);
  const PassInfo *NP = nullptr;
  for (const PassInfo &P : R.Passes)
    if (P.Name == "native-codegen")
      NP = &P;
  ASSERT_NE(NP, nullptr) << "pipeline did not record the native-codegen pass";
  if (haveToolchain()) {
    EXPECT_FALSE(R.Degraded) << R.DegradeReason;
    EXPECT_TRUE(NP->Note == "emitted+compiled" ||
                NP->Note == "native cache hit (memory)")
        << NP->Note;
  } else {
    // No toolchain in this environment: the pass degrades, visibly.
    EXPECT_TRUE(R.Degraded);
    EXPECT_FALSE(R.DegradeReason.empty());
  }
}

} // namespace
