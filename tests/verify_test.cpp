//===- tests/verify_test.cpp - Abstract-interpretation linter tests -------==//
//
// The WIR linter (src/verify/): the affine abstract executor, the three
// analyses (verify-linear / verify-bounds / verify-state), the mutation
// corpus — programmatically corrupted tapes and mislabeled state claims
// that the linter must flag with precise findings — the clean benchmark
// suite (zero findings), the pipeline degradation path behind the
// lint-verifier-trip fault point, and the artifact-store inventory hook
// the lint-what-you-serve CI mode uses.
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "compiler/ArtifactStore.h"
#include "compiler/Pipeline.h"
#include "compiler/Program.h"
#include "compiler/StructuralHash.h"
#include "linear/Extract.h"
#include "support/FaultInjection.h"
#include "support/Serialize.h"
#include "verify/AbstractInterp.h"
#include "verify/Lint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

using namespace slin;
using namespace slin::verify;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

StreamPtr buildByName(const std::string &Name) {
  for (const apps::BenchmarkEntry &B : apps::allBenchmarks())
    if (B.Name == Name)
      return B.Build();
  return nullptr;
}

/// First filter node whose name contains \p Sub; -1 when absent.
int findFilter(const CompiledProgram &P, const std::string &Sub) {
  const flat::FlatGraph &G = P.graph();
  for (size_t I = 0; I != G.Nodes.size(); ++I)
    if (G.Nodes[I].Kind == flat::NodeKind::Filter && G.Nodes[I].F &&
        !G.Nodes[I].F->isNative() &&
        G.Nodes[I].Name.find(Sub) != std::string::npos)
      return static_cast<int>(I);
  return -1;
}

/// Serialized wire image of one tape (support/Serialize.h layout:
/// u32 count, then 26 bytes per instruction — K at +0, flags at +1,
/// A/B/C/D at +2/+6/+10/+14, Imm at +18 — then the frame trailer ending
/// with PeekRate, PopRate, PushRate as the last three i32s).
std::vector<uint8_t> tapeBytes(const wir::OpProgram &T) {
  serial::Writer W;
  T.serialize(W);
  return W.bytes();
}

/// Byte offset of instruction \p I's field at intra-instruction offset
/// \p At (0 = opcode, 2 = A, 6 = B, 10 = C, 14 = D, 18 = Imm).
size_t instOffset(size_t I, size_t At) { return 4 + I * 26 + At; }

void patchI32(std::vector<uint8_t> &Bytes, size_t Off, int32_t V) {
  for (int I = 0; I != 4; ++I)
    Bytes[Off + static_cast<size_t>(I)] =
        static_cast<uint8_t>(static_cast<uint32_t>(V) >> (8 * I));
}

/// Deserializes a (possibly patched) wire image; Ok reports acceptance.
wir::OpProgram reload(const std::vector<uint8_t> &Bytes, bool &Ok) {
  serial::Reader R(Bytes);
  wir::OpProgram Out;
  Ok = wir::OpProgram::deserialize(R, Out) && R.ok();
  return Out;
}

/// Index of the first instruction with opcode \p K; -1 when absent.
int findOp(const wir::OpProgram &T, wir::Op K) {
  for (size_t I = 0; I != T.code().size(); ++I)
    if (T.code()[I].K == K)
      return static_cast<int>(I);
  return -1;
}

bool hasErrorContaining(const LintReport &R, const std::string &Sub) {
  for (const Finding &F : R.findings())
    if (F.Sev == Finding::Severity::Error &&
        F.Message.find(Sub) != std::string::npos)
      return true;
  return false;
}

/// Disarms a fault point on scope exit (mirrors fault_test's guard).
class FaultGuard {
public:
  ~FaultGuard() {
    for (int I = 0; I != static_cast<int>(faults::Point::NumPoints); ++I)
      faults::arm(static_cast<faults::Point>(I), 0);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Clean suite: every benchmark lints with zero findings
//===----------------------------------------------------------------------===//

TEST(LintCleanSuite, AllBenchmarksHaveZeroFindings) {
  size_t LinearFiltersChecked = 0;
  for (const apps::BenchmarkEntry &B : apps::allBenchmarks()) {
    StreamPtr Root = B.Build();
    ASSERT_NE(Root, nullptr) << B.Name;
    CompiledProgram P(*Root, CompiledOptions{});
    LintReport R = lintProgram(P);
    EXPECT_TRUE(R.findings().empty())
        << B.Name << " is not lint-clean:\n"
        << R.text();
    // The linearity oracle must actually have had work to do.
    const flat::FlatGraph &G = P.graph();
    for (const flat::Node &N : G.Nodes)
      if (N.Kind == flat::NodeKind::Filter && N.F && !N.F->isNative() &&
          extractLinearNode(*N.F).isLinear())
        ++LinearFiltersChecked;
  }
  // Fig 5-1 programs are full of linear filters; a tiny count would mean
  // the oracle is comparing against nothing.
  EXPECT_GE(LinearFiltersChecked, 20u);
}

//===----------------------------------------------------------------------===//
// verify-linear: exact re-derivation of [A, b] from the tape
//===----------------------------------------------------------------------===//

TEST(VerifyLinear, TapeRederivesExtractionExactly) {
  StreamPtr Root = buildByName("FIR");
  ASSERT_NE(Root, nullptr);
  CompiledProgram P(*Root, CompiledOptions{});
  int I = findFilter(P, "LowPass");
  ASSERT_GE(I, 0);
  const flat::Node &N = P.graph().Nodes[static_cast<size_t>(I)];
  const wir::OpProgram &Tape =
      P.filterArtifact(static_cast<size_t>(I)).Work;

  ExtractionResult Ext = extractLinearNode(*N.F);
  ASSERT_TRUE(Ext.isLinear()) << Ext.FailureReason;
  const LinearNode &LN = *Ext.Node;

  TapeSummary Sum = abstractExecute(Tape, N.F->fields());
  ASSERT_TRUE(Sum.Completed);
  ASSERT_FALSE(Sum.faulted()) << Sum.Faults.front().Msg;
  ASSERT_EQ(static_cast<int>(Sum.Pushes.size()), LN.pushRate());
  for (int J = 0; J != LN.pushRate(); ++J) {
    const AffineValue &V = Sum.Pushes[static_cast<size_t>(J)];
    ASSERT_TRUE(V.isInputAffine());
    for (int Pk = 0; Pk != LN.peekRate(); ++Pk)
      EXPECT_EQ(V.In[static_cast<size_t>(Pk)], LN.coeff(Pk, J))
          << "peek " << Pk << ", push " << J;
    EXPECT_EQ(V.Const, LN.offset(J)) << "push " << J;
  }

  // And the packaged cross-check agrees with itself: zero disagreements.
  LintReport R;
  lintTapeLinear(Tape, *N.F, N.Name, R);
  EXPECT_EQ(R.errorCount(), 0u) << R.text();
}

//===----------------------------------------------------------------------===//
// Mutation corpus: corrupted tapes must be flagged precisely
//===----------------------------------------------------------------------===//

namespace {

/// FMRadio's FloatDiff (push(peek(1) - peek(0)); pop; pop): small,
/// linear, and rich in mutation targets (PeekImm, Sub, rate trailer).
struct DiffFixture {
  StreamPtr Root;
  std::unique_ptr<CompiledProgram> P;
  int Node = -1;

  DiffFixture() {
    Root = buildByName("FMRadio");
    P = std::make_unique<CompiledProgram>(*Root, CompiledOptions{});
    Node = findFilter(*P, "FloatDiff");
  }
  const flat::Node &node() const {
    return P->graph().Nodes[static_cast<size_t>(Node)];
  }
  const wir::OpProgram &tape() const {
    return P->filterArtifact(static_cast<size_t>(Node)).Work;
  }
};

} // namespace

TEST(MutationCorpus, OffByOnePeekIsFlaggedAtItsOffset) {
  DiffFixture F;
  ASSERT_GE(F.Node, 0);
  const wir::OpProgram &Clean = F.tape();
  int Pc = findOp(Clean, wir::Op::PeekImm);
  ASSERT_GE(Pc, 0);
  int Window = std::max(Clean.peekRate(), Clean.popRate());

  std::vector<uint8_t> Bytes = tapeBytes(Clean);
  // PeekImm's window offset is operand B: one past the window is the
  // classic off-by-one.
  patchI32(Bytes, instOffset(static_cast<size_t>(Pc), 6), Window);
  bool Ok = false;
  wir::OpProgram Bad = reload(Bytes, Ok);
  ASSERT_TRUE(Ok) << "patch must survive deserialization to reach the linter";

  LintReport R;
  lintTapeBounds(Bad, F.node().F->fields(), "FloatDiff", R);
  ASSERT_GE(R.errorCount(), 1u);
  EXPECT_TRUE(hasErrorContaining(R, "outside the window")) << R.text();
  bool Anchored = false;
  for (const Finding &Fd : R.findings())
    Anchored |= Fd.Pc == Pc;
  EXPECT_TRUE(Anchored) << "finding must carry the tape offset:\n"
                        << R.text();

  // The linearity oracle independently refuses the mutated tape.
  LintReport RL;
  lintTapeLinear(Bad, *F.node().F, "FloatDiff", RL);
  EXPECT_GE(RL.errorCount(), 1u) << RL.text();
}

TEST(MutationCorpus, WrongPopRateIsFlagged) {
  DiffFixture F;
  ASSERT_GE(F.Node, 0);
  const wir::OpProgram &Clean = F.tape();
  std::vector<uint8_t> Bytes = tapeBytes(Clean);
  // The frame trailer ends ... PeekRate, PopRate, PushRate.
  patchI32(Bytes, Bytes.size() - 8, Clean.popRate() + 1);
  bool Ok = false;
  wir::OpProgram Bad = reload(Bytes, Ok);
  ASSERT_TRUE(Ok);
  ASSERT_EQ(Bad.popRate(), Clean.popRate() + 1);

  LintReport R;
  lintTapeBounds(Bad, F.node().F->fields(), "FloatDiff", R);
  ASSERT_GE(R.errorCount(), 1u);
  EXPECT_TRUE(hasErrorContaining(R, "declared pop rate")) << R.text();
}

TEST(MutationCorpus, NonlinearOpInjectionIsFlagged) {
  DiffFixture F;
  ASSERT_GE(F.Node, 0);
  const wir::OpProgram &Clean = F.tape();
  int Pc = findOp(Clean, wir::Op::Sub);
  ASSERT_GE(Pc, 0);

  std::vector<uint8_t> Bytes = tapeBytes(Clean);
  // peek - peek becomes peek * peek: same operands, nonlinear result.
  Bytes[instOffset(static_cast<size_t>(Pc), 0)] =
      static_cast<uint8_t>(wir::Op::Mul);
  bool Ok = false;
  wir::OpProgram Bad = reload(Bytes, Ok);
  ASSERT_TRUE(Ok);

  // Extraction still claims linear (it analyzes the IR, not the tape);
  // the tape-side oracle must report the disagreement.
  LintReport R;
  lintTapeLinear(Bad, *F.node().F, "FloatDiff", R);
  ASSERT_GE(R.errorCount(), 1u);
  EXPECT_TRUE(hasErrorContaining(R, "not affine")) << R.text();
}

TEST(MutationCorpus, DroppedAccumulationIsACoefficientMismatch) {
  // FMRadio's Adder sums its window in a loop; turning the counted Add
  // into a Copy of one operand leaves an affine tape whose matrix is
  // wrong — the oracle must name expected vs. derived coefficients.
  StreamPtr Root = buildByName("FMRadio");
  ASSERT_NE(Root, nullptr);
  CompiledProgram P(*Root, CompiledOptions{});
  int I = findFilter(P, "Adder");
  ASSERT_GE(I, 0);
  const flat::Node &N = P.graph().Nodes[static_cast<size_t>(I)];
  const wir::OpProgram &Clean = P.filterArtifact(static_cast<size_t>(I)).Work;
  int Pc = findOp(Clean, wir::Op::Add);
  ASSERT_GE(Pc, 0);

  std::vector<uint8_t> Bytes = tapeBytes(Clean);
  Bytes[instOffset(static_cast<size_t>(Pc), 0)] =
      static_cast<uint8_t>(wir::Op::Copy);
  bool Ok = false;
  wir::OpProgram Bad = reload(Bytes, Ok);
  ASSERT_TRUE(Ok);

  LintReport R;
  lintTapeLinear(Bad, *N.F, N.Name, R);
  ASSERT_GE(R.errorCount(), 1u);
  EXPECT_TRUE(hasErrorContaining(R, "extraction says") ||
              hasErrorContaining(R, "not affine"))
      << R.text();
}

TEST(MutationCorpus, CorruptRegisterOperandIsStructurallyRejected) {
  DiffFixture F;
  ASSERT_GE(F.Node, 0);
  std::vector<uint8_t> Bytes = tapeBytes(F.tape());
  // First instruction's A operand -> far outside the register frame.
  // deserialize() accepts it (it only validates opcodes and jump
  // targets); checkWellFormed must refuse to execute it.
  patchI32(Bytes, instOffset(0, 2), 100000);
  bool Ok = false;
  wir::OpProgram Bad = reload(Bytes, Ok);
  ASSERT_TRUE(Ok);

  std::vector<TapeFault> Faults;
  EXPECT_FALSE(checkWellFormed(Bad, F.node().F->fields(), Faults));
  ASSERT_FALSE(Faults.empty());

  LintReport R;
  lintTapeBounds(Bad, F.node().F->fields(), "FloatDiff", R);
  EXPECT_GE(R.errorCount(), 1u);
}

TEST(MutationCorpus, MislabeledStateClassIsFlagged) {
  // FIR's FloatSource advances a cursor modulo its table size: the tape
  // proves kind=ModAffine, delta=1. Every mislabel must be rejected.
  StreamPtr Root = buildByName("FIR");
  ASSERT_NE(Root, nullptr);
  CompiledProgram P(*Root, CompiledOptions{});
  int I = findFilter(P, "Source");
  ASSERT_GE(I, 0);
  const flat::Node &N = P.graph().Nodes[static_cast<size_t>(I)];
  const wir::OpProgram &Tape = P.filterArtifact(static_cast<size_t>(I)).Work;

  wir::SteadyStateInfo Claims = Tape.analyzeSteadyState(N.F->fields());
  ASSERT_TRUE(Claims.Reconstructable);
  ASSERT_EQ(Claims.Updates.size(), 1u);
  ASSERT_EQ(Claims.Updates[0].Kind,
            wir::SteadyStateInfo::FieldKind::ModAffine);

  {
    LintReport R; // the true claims audit clean
    lintStateClaims(Tape, N.F->fields(), Claims, N.Name, R);
    EXPECT_EQ(R.errorCount(), 0u) << R.text();
  }
  {
    wir::SteadyStateInfo Bad = Claims; // drop the modulus
    Bad.Updates[0].Kind = wir::SteadyStateInfo::FieldKind::Affine;
    Bad.Updates[0].Mod = 0.0;
    LintReport R;
    lintStateClaims(Tape, N.F->fields(), Bad, N.Name, R);
    EXPECT_GE(R.errorCount(), 1u);
    EXPECT_TRUE(hasErrorContaining(R, "tape computes")) << R.text();
  }
  {
    wir::SteadyStateInfo Bad = Claims; // wrong stride
    Bad.Updates[0].Delta += 1.0;
    LintReport R;
    lintStateClaims(Tape, N.F->fields(), Bad, N.Name, R);
    EXPECT_GE(R.errorCount(), 1u) << R.text();
  }
  {
    wir::SteadyStateInfo Bad = Claims; // wrong modulus
    Bad.Updates[0].Mod *= 2.0;
    LintReport R;
    lintStateClaims(Tape, N.F->fields(), Bad, N.Name, R);
    EXPECT_GE(R.errorCount(), 1u) << R.text();
  }
  {
    wir::SteadyStateInfo Bad = Claims; // "no prior-firing state" lie
    Bad.Updates[0].Kind =
        wir::SteadyStateInfo::FieldKind::InputDetermined;
    LintReport R;
    lintStateClaims(Tape, N.F->fields(), Bad, N.Name, R);
    EXPECT_GE(R.errorCount(), 1u);
    EXPECT_TRUE(hasErrorContaining(R, "prior-firing state")) << R.text();
  }
}

//===----------------------------------------------------------------------===//
// Pipeline integration: the lint passes run under SLIN_VERIFY and their
// failures take the recoverable degradation path
//===----------------------------------------------------------------------===//

TEST(LintPipeline, LintVerifierTripDegradesRecoverably) {
  FaultGuard G;
  StreamPtr Root = buildByName("FIR");
  ASSERT_NE(Root, nullptr);
  PipelineOptions PO;
  PO.Mode = OptMode::Linear;
  PO.Exec.Eng = Engine::Compiled;
  PO.VerifyAfterEachPass = true;
  PO.UseProgramCache = false;
  faults::arm(faults::Point::LintVerifierTrip, 1);
  Expected<CompileResult> R = CompilerPipeline(PO).tryCompile(*Root);
  ASSERT_TRUE(R) << R.status().str();
  EXPECT_TRUE(R->Degraded);
  EXPECT_NE(R->DegradeReason.find("lint-verifier trip"), std::string::npos)
      << R->DegradeReason;
  ASSERT_NE(R->Program, nullptr);
}

TEST(LintPipeline, PersistentLintFailureSurfacesAStatus) {
  FaultGuard G;
  StreamPtr Root = buildByName("FIR");
  ASSERT_NE(Root, nullptr);
  PipelineOptions PO;
  PO.Mode = OptMode::Linear;
  PO.Exec.Eng = Engine::Compiled;
  PO.VerifyAfterEachPass = true;
  PO.UseProgramCache = false;
  faults::arm(faults::Point::LintVerifierTrip, 1, /*Persistent=*/true);
  Expected<CompileResult> R = CompilerPipeline(PO).tryCompile(*Root);
  ASSERT_FALSE(R); // even the Base-mode rung tripped: nothing left
  EXPECT_EQ(R.status().code(), ErrorCode::VerifyFailed);
}

TEST(LintPipeline, CleanCompileRunsLintPassesWithoutFindings) {
  StreamPtr Root = buildByName("FIR");
  ASSERT_NE(Root, nullptr);
  PipelineOptions PO;
  PO.Exec.Eng = Engine::Compiled;
  PO.VerifyAfterEachPass = true;
  PO.UseProgramCache = false;
  CompileResult R = compileStream(*Root, PO);
  ASSERT_NE(R.Program, nullptr);
  bool SawLinear = false, SawBounds = false, SawState = false;
  for (const PassInfo &Pass : R.Passes) {
    SawLinear |= Pass.Name == "verify-linear";
    SawBounds |= Pass.Name == "verify-bounds";
    SawState |= Pass.Name == "verify-state";
  }
  EXPECT_TRUE(SawLinear && SawBounds && SawState)
      << "lint passes missing from the pass list";
}

//===----------------------------------------------------------------------===//
// Store inventory: the lint-what-you-serve hook
//===----------------------------------------------------------------------===//

TEST(StoreInventory, ListArtifactsRoundTripsKeys) {
  std::string Dir =
      (std::filesystem::temp_directory_path() /
       ("slin-verify-test-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(Dir);
  ArtifactStore Store(Dir);

  StreamPtr Root = buildByName("FIR");
  ASSERT_NE(Root, nullptr);
  CompiledOptions Opts;
  CompiledProgram P(*Root, Opts);
  ArtifactStore::Key K{structuralHash(P.root()), hashOptions(Opts)};
  ASSERT_TRUE(Store.store(K, P));

  std::vector<ArtifactStore::Key> Keys = Store.listArtifacts();
  ASSERT_EQ(Keys.size(), 1u);
  EXPECT_TRUE(Keys[0].Structure == K.Structure);
  EXPECT_TRUE(Keys[0].Options == K.Options);

  // The listed key loads, and what the store serves lints clean.
  std::shared_ptr<const CompiledProgram> Loaded = Store.load(Keys[0]);
  ASSERT_NE(Loaded, nullptr);
  EXPECT_TRUE(Loaded->loadedFromArtifact());
  LintReport R = lintProgram(*Loaded);
  EXPECT_TRUE(R.findings().empty()) << R.text();

  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}
