//===- tests/parallel_test.cpp - Parallel sharded execution backend -------==//
//
// The parallel backend's contract: sharded runs are *bit-identical* to
// single-threaded CompiledExecutor runs — output values, printed values
// AND FLOP counts — across the test graphs and every benchmark x
// optimization configuration; programs whose shard-boundary state cannot
// be reconstructed degrade to an equivalent sequential run. Plus the
// executor pool, the concurrency stress tests, the ProgramCache
// options-keying regression and AnalysisManager eviction.
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "apps/Dsp.h"
#include "compiler/AnalysisManager.h"
#include "compiler/Program.h"
#include "exec/CompiledExecutor.h"
#include "exec/Measure.h"
#include "exec/Parallel.h"
#include "opt/Optimizer.h"
#include "TestGraphs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace slin;
using namespace slin::testing_helpers;
using apps::allBenchmarks;
using apps::BenchmarkEntry;
using apps::buildFIR;
using apps::buildFMRadio;

namespace {

CompiledProgramRef makeProgram(const Stream &Root,
                               CompiledOptions Opts = CompiledOptions()) {
  return std::make_shared<const CompiledProgram>(Root, Opts);
}

/// Reference single-threaded run over exactly \p Iters steady iterations.
struct RefRun {
  std::vector<double> Out;
  std::vector<double> Printed;
  OpCounts Ops;
};

RefRun referenceRun(CompiledProgramRef P, int64_t Iters,
                    const std::vector<double> &Input = {}) {
  RefRun R;
  CompiledExecutor E(P);
  if (!Input.empty())
    E.provideInput(Input);
  ops::CountingScope Scope;
  OpCounts Before = ops::counts();
  E.runIterations(Iters);
  R.Ops = ops::counts() - Before;
  R.Out = E.outputSnapshot();
  R.Printed = E.printed();
  return R;
}

RefRun parallelRun(CompiledProgramRef P, int64_t Iters, ParallelOptions Opts,
                   const std::vector<double> &Input = {},
                   ParallelExecutor::RunStats *Stats = nullptr) {
  RefRun R;
  ParallelExecutor E(P, Opts);
  if (!Input.empty())
    E.provideInput(Input);
  ops::CountingScope Scope;
  OpCounts Before = ops::counts();
  E.runIterations(Iters);
  R.Ops = ops::counts() - Before;
  R.Out = E.outputSnapshot();
  R.Printed = E.printed();
  if (Stats)
    *Stats = E.lastRunStats();
  return R;
}

/// Iteration span that forces several shards past the washout depth but
/// stays cheap (freq-replaced programs do a lot of work per iteration).
int64_t spanFor(const CompiledProgram &P, int /*Workers*/) {
  int64_t W = P.shardInfo().Shardable ? P.shardInfo().WashoutIterations : 0;
  return std::min<int64_t>(4096, 3 * std::max<int64_t>(W, 8) + 1);
}

//===----------------------------------------------------------------------===//
// Sharded bit-identity on the engine test graphs
//===----------------------------------------------------------------------===//

StreamPtr sourcePipeline(std::vector<StreamPtr> Mids) {
  auto P = std::make_unique<Pipeline>("p");
  P->add(makeCountingSource());
  for (StreamPtr &M : Mids)
    P->add(std::move(M));
  P->add(makePrinterSink());
  return P;
}

struct GraphCase {
  std::string Name;
  std::function<StreamPtr()> Build;
  bool ExpectShardable;
};

std::vector<GraphCase> shardGraphs() {
  std::vector<GraphCase> G;
  G.push_back({"PeekingFIR", [] {
    std::vector<StreamPtr> M;
    M.push_back(makeFIR({1.5, -2.25, 3.0, 0.5, -0.125, 7.0, 11.0, -13.0}));
    return sourcePipeline(std::move(M));
  }, true});
  G.push_back({"RateMismatch", [] {
    std::vector<StreamPtr> M;
    M.push_back(makeExpander(3));
    M.push_back(makeGain(0.5));
    M.push_back(makeCompressor(2));
    return sourcePipeline(std::move(M));
  }, true});
  G.push_back({"DuplicateSplitJoin", [] {
    auto SJ = std::make_unique<SplitJoin>("sj", Splitter::duplicate(),
                                          Joiner::roundRobin({1, 2}));
    SJ->add(makeGain(10));
    {
      auto Inner = std::make_unique<Pipeline>("inner");
      Inner->add(makeFIR({1, 2, 3}));
      Inner->add(makeExpander(2));
      SJ->add(std::move(Inner));
    }
    std::vector<StreamPtr> M;
    M.push_back(std::move(SJ));
    return sourcePipeline(std::move(M));
  }, true});
  G.push_back({"RoundRobinSplitJoin", [] {
    auto SJ = std::make_unique<SplitJoin>("sj", Splitter::roundRobin({2, 1}),
                                          Joiner::roundRobin({2, 1}));
    SJ->add(makeGain(1));
    SJ->add(makeGain(-1));
    std::vector<StreamPtr> M;
    M.push_back(std::move(SJ));
    return sourcePipeline(std::move(M));
  }, true});
  G.push_back({"DelayLine", [] {
    std::vector<StreamPtr> M;
    M.push_back(apps::makeDelay(0.25));
    M.push_back(makeFIR({0.5, 0.5, 1.0}));
    return sourcePipeline(std::move(M));
  }, true});
  G.push_back({"RampAndTable", [] {
    // Modular-cursor source (idx = (idx + 1) mod Period) upstream of a
    // peeking filter: exercises ModAffine seeding.
    auto P = std::make_unique<Pipeline>("p");
    P->add(apps::makeRampSource(16));
    P->add(makeFIR({1, -2, 4, -8, 16}, "fir5"));
    P->add(makePrinterSink());
    return StreamPtr(std::move(P));
  }, true});
  // Feedback loops cycle state; must fall back, still bit-identically.
  G.push_back({"FeedbackLoop", [] {
    std::vector<StreamPtr> M;
    M.push_back(std::make_unique<FeedbackLoop>(
        "fb", Joiner::roundRobin({1, 1}), makeSumDiffFilter(),
        makeIdentity(), Splitter::roundRobin({1, 1}),
        std::vector<double>{0.5}));
    return sourcePipeline(std::move(M));
  }, false});
  return G;
}

class ShardedEquivalence : public ::testing::TestWithParam<GraphCase> {};

TEST_P(ShardedEquivalence, BitIdenticalToSingleThread) {
  StreamPtr Root = GetParam().Build();
  CompiledProgramRef P = makeProgram(*Root);
  EXPECT_EQ(P->shardInfo().Shardable, GetParam().ExpectShardable)
      << P->shardInfo().Reason;

  ParallelOptions PO;
  PO.Workers = 4;
  PO.ShardMinIterations = 4;
  int64_t S = spanFor(*P, PO.Workers);

  RefRun Ref = referenceRun(P, S);
  ParallelExecutor::RunStats Stats;
  RefRun Par = parallelRun(P, S, PO, {}, &Stats);

  EXPECT_EQ(Ref.Out, Par.Out);
  EXPECT_EQ(Ref.Printed, Par.Printed);
  EXPECT_EQ(Ref.Ops.flops(), Par.Ops.flops());
  EXPECT_TRUE(Ref.Ops == Par.Ops);
  if (GetParam().ExpectShardable) {
    EXPECT_FALSE(Stats.Sequential);
    EXPECT_GT(Stats.ShardsUsed, 1) << "span " << S << " washout "
                                   << P->shardInfo().WashoutIterations;
  } else {
    EXPECT_TRUE(Stats.Sequential);
    EXPECT_FALSE(Stats.FallbackReason.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    TestGraphs, ShardedEquivalence, ::testing::ValuesIn(shardGraphs()),
    [](const ::testing::TestParamInfo<GraphCase> &I) { return I.param.Name; });

//===----------------------------------------------------------------------===//
// Externally-driven graphs (input sharding with peek overlap)
//===----------------------------------------------------------------------===//

StreamPtr externallyDrivenGraph() {
  auto P = std::make_unique<Pipeline>("ext");
  P->add(makeFIR({2, -1, 0.5, 4, -3, 1, 1, -1}, "extfir"));
  P->add(makeGain(0.25));
  return P;
}

TEST(ParallelExternalInput, ShardedSlicesMatchSingleThread) {
  StreamPtr Root = externallyDrivenGraph();
  CompiledProgramRef P = makeProgram(*Root);
  ASSERT_TRUE(P->shardInfo().Shardable) << P->shardInfo().Reason;

  int64_t S = 200;
  std::vector<double> Input;
  for (int I = 0; I != 600; ++I)
    Input.push_back(0.125 * I - 3.0);

  ParallelOptions PO;
  PO.Workers = 4;
  PO.ShardMinIterations = 4;
  RefRun Ref = referenceRun(P, S, Input);
  ParallelExecutor::RunStats Stats;
  RefRun Par = parallelRun(P, S, PO, Input, &Stats);

  EXPECT_EQ(Ref.Out, Par.Out);
  EXPECT_TRUE(Ref.Ops == Par.Ops);
  EXPECT_GT(Stats.ShardsUsed, 1);
}

TEST(ParallelExternalInput, InsufficientInputIsReportedUpFront) {
  StreamPtr Root = externallyDrivenGraph();
  CompiledProgramRef P = makeProgram(*Root);
  ParallelExecutor E(P, ParallelOptions());
  E.provideInput({1, 2, 3});
  EXPECT_DEATH(E.runIterations(64), "external input");
}

//===----------------------------------------------------------------------===//
// Continuation across run calls
//===----------------------------------------------------------------------===//

TEST(ParallelContinuation, SplitRunsEqualOneRun) {
  StreamPtr Root = shardGraphs()[0].Build(); // PeekingFIR, washout 7
  CompiledProgramRef P = makeProgram(*Root);
  ASSERT_TRUE(P->shardInfo().Shardable);
  int64_t W = P->shardInfo().WashoutIterations;
  ASSERT_GT(W, 0);

  ParallelOptions PO;
  PO.Workers = 3;
  PO.ShardMinIterations = 2;

  // First span shorter than the washout: the continuation's first shard
  // must replay from the true stream start (seed boundary would be
  // negative).
  int64_t S1 = W - 2, S2 = 150;
  RefRun Ref = referenceRun(P, S1 + S2);

  ParallelExecutor E(P, PO);
  ops::CountingScope Scope;
  OpCounts Before = ops::counts();
  E.runIterations(S1);
  E.runIterations(S2);
  OpCounts Ops = ops::counts() - Before;

  EXPECT_EQ(Ref.Printed, E.printed());
  EXPECT_EQ(Ref.Out, E.outputSnapshot());
  EXPECT_TRUE(Ref.Ops == Ops);
  EXPECT_EQ(E.iterationsDone(), S1 + S2);
}

TEST(ParallelContinuation, SingleShardCallsContinueTheAdoptedTail) {
  // Workers=1 forces single-shard calls; the second and third calls must
  // continue the adopted tail executor (no washout replay) and still be
  // bit-identical — values and FLOPs — to one sequential run.
  StreamPtr Root = shardGraphs()[0].Build();
  CompiledProgramRef P = makeProgram(*Root);
  ASSERT_TRUE(P->shardInfo().Shardable);

  RefRun Ref = referenceRun(P, 120);

  ParallelOptions PO;
  PO.Workers = 1;
  ParallelExecutor E(P, PO);
  ops::CountingScope Scope;
  OpCounts Before = ops::counts();
  E.runIterations(40);
  E.runIterations(40);
  E.runIterations(40);
  OpCounts Ops = ops::counts() - Before;
  EXPECT_EQ(E.lastRunStats().WarmupIterations, 0)
      << "tail continuation must not replay";
  EXPECT_EQ(Ref.Printed, E.printed());
  EXPECT_TRUE(Ref.Ops == Ops);
}

TEST(ParallelRunByOutputs, ProbedPrintRatesReachTarget) {
  StreamPtr Root = shardGraphs()[1].Build(); // RateMismatch (print-driven)
  CompiledProgramRef P = makeProgram(*Root);
  ParallelExecutor E(P, ParallelOptions());
  E.run(100);
  EXPECT_GE(E.outputsProduced(), 100u);
  // Prefix-identical to the engine the shards run on.
  auto Expect = collectOutputs(*Root, 100, Engine::Compiled);
  ASSERT_GE(E.printed().size(), Expect.size());
  for (size_t I = 0; I != Expect.size(); ++I)
    EXPECT_EQ(E.printed()[I], Expect[I]) << "output " << I;
}

//===----------------------------------------------------------------------===//
// Benchmarks x configurations (the equivalence suite, sharded)
//===----------------------------------------------------------------------===//

struct BenchCase {
  std::string Benchmark;
  OptMode Mode;
};

std::string benchCaseName(const ::testing::TestParamInfo<BenchCase> &Info) {
  const BenchCase &C = Info.param;
  std::string Mode;
  switch (C.Mode) {
  case OptMode::Linear: Mode = "linear"; break;
  case OptMode::Freq: Mode = "freq"; break;
  case OptMode::Redundancy: Mode = "redund"; break;
  case OptMode::AutoSel: Mode = "autosel"; break;
  case OptMode::Base: Mode = "base"; break;
  }
  return C.Benchmark + "_" + Mode;
}

std::vector<BenchCase> benchCases() {
  std::vector<BenchCase> Cases;
  for (const BenchmarkEntry &B : allBenchmarks()) {
    Cases.push_back({B.Name, OptMode::Base});
    Cases.push_back({B.Name, OptMode::Linear});
    Cases.push_back({B.Name, OptMode::Freq});
    Cases.push_back({B.Name, OptMode::AutoSel});
  }
  return Cases;
}

class BenchmarkShardedEquivalence : public ::testing::TestWithParam<BenchCase> {
};

TEST_P(BenchmarkShardedEquivalence, BitIdenticalToSingleThread) {
  const BenchCase &C = GetParam();
  StreamPtr Base;
  for (const BenchmarkEntry &B : allBenchmarks())
    if (B.Name == C.Benchmark)
      Base = B.Build();
  ASSERT_NE(Base, nullptr);
  OptimizerOptions O;
  O.Mode = C.Mode;
  StreamPtr Opt = optimize(*Base, O);
  CompiledProgramRef P = makeProgram(*Opt);

  ParallelOptions PO;
  PO.Workers = 4;
  PO.ShardMinIterations = 4;
  int64_t S = spanFor(*P, PO.Workers);

  RefRun Ref = referenceRun(P, S);
  ParallelExecutor::RunStats Stats;
  RefRun Par = parallelRun(P, S, PO, {}, &Stats);

  EXPECT_EQ(Ref.Out, Par.Out);
  EXPECT_EQ(Ref.Printed, Par.Printed);
  EXPECT_TRUE(Ref.Ops == Par.Ops)
      << "flops " << Ref.Ops.flops() << " vs " << Par.Ops.flops();
  // DToA's feedback loop (and any opaque state) must degrade, not break.
  if (!P->shardInfo().Shardable) {
    EXPECT_TRUE(Stats.Sequential);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkShardedEquivalence,
                         ::testing::ValuesIn(benchCases()), benchCaseName);

//===----------------------------------------------------------------------===//
// Measurement over the parallel engine
//===----------------------------------------------------------------------===//

TEST(ParallelMeasure, FlopTotalsMatchCompiledEngine) {
  StreamPtr Root = buildFIR(64);
  MeasureOptions MO;
  MO.WarmupOutputs = 64;
  MO.MeasureOutputs = 512;
  MO.MeasureTime = false;
  MO.Exec.Eng = Engine::Compiled;
  MO.Program = makeProgram(*Root);
  Measurement Single = measureSteadyState(*Root, MO);

  MO.Exec.Eng = Engine::Parallel;
  MO.Exec.Compiled.Parallel.Workers = 4;
  MO.Exec.Compiled.Parallel.ShardMinIterations = 8;
  Measurement Par = measureSteadyState(*Root, MO);

  // Worker-thread counters must aggregate into the measured result: same
  // windows, same totals.
  EXPECT_EQ(Single.Outputs, Par.Outputs);
  EXPECT_TRUE(Single.Ops == Par.Ops)
      << Single.Ops.flops() << " vs " << Par.Ops.flops();
#if SLIN_COUNT_OPS
  EXPECT_GT(Par.Ops.flops(), 0u);
#endif
}

TEST(OpCounters, AccumulateFoldsWorkerDeltas) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out";
#endif
  ops::CountingScope Scope;
  ops::reset();
  OpCounts Delta;
  std::thread T([&] {
    ops::CountingScope WorkerScope;
    OpCounts Before = ops::counts();
    double X = 1.0;
    for (int I = 0; I != 10; ++I)
      X = ops::add(X, 2.0);
    Delta = ops::counts() - Before;
    EXPECT_GT(X, 0.0);
  });
  T.join();
  EXPECT_EQ(Delta.Adds, 10u);
  EXPECT_EQ(ops::counts().Adds, 0u); // worker ops invisible until folded
  ops::accumulate(Delta);
  EXPECT_EQ(ops::counts().Adds, 10u);
}

//===----------------------------------------------------------------------===//
// Executor pool
//===----------------------------------------------------------------------===//

TEST(ExecutorPool, ConcurrentRequestsMatchSequentialRuns) {
  StreamPtr Root = buildFIR(32);
  CompiledProgramRef P = makeProgram(*Root);

  std::vector<double> Expect;
  OpCounts ExpectOps;
  {
    CompiledExecutor E(P);
    ops::CountingScope Scope;
    OpCounts Before = ops::counts();
    E.run(96);
    ExpectOps = ops::counts() - Before;
    Expect = E.printed();
  }

  ExecutorPool Pool(P, 4);
  EXPECT_EQ(Pool.workers(), 4);
  std::vector<std::future<ExecutorPool::Result>> Futures;
  for (int I = 0; I != 12; ++I) {
    ExecutorPool::Request R;
    R.NOutputs = 96;
    R.CountOps = true;
    Futures.push_back(Pool.submit(std::move(R)));
  }
  for (auto &F : Futures) {
    ExecutorPool::Result R = F.get();
    EXPECT_EQ(R.Outputs, Expect);
    EXPECT_TRUE(R.Ops == ExpectOps);
  }
  EXPECT_EQ(Pool.served(), 12u);
}

//===----------------------------------------------------------------------===//
// Concurrency stress (exercised under TSan in CI)
//===----------------------------------------------------------------------===//

TEST(ConcurrencyStress, ExecutorsAndAnalysesInParallel) {
  StreamPtr Root = buildFIR(24);
  CompiledProgramRef P = makeProgram(*Root);
  std::vector<double> Expect = [&] {
    CompiledExecutor E(P);
    E.run(64);
    return E.printed();
  }();

  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T != 8; ++T) {
    Threads.emplace_back([&, T] {
      for (int R = 0; R != 3; ++R) {
        // Independent executor instances over the shared artifact.
        CompiledExecutor E(P);
        E.run(64);
        if (E.printed() != Expect)
          ++Failures;
        // Concurrent compiles through the global caches.
        StreamPtr G = buildFMRadio(8 + T % 3, 3);
        OptimizerOptions OO;
        OO.Mode = OptMode::AutoSel;
        StreamPtr Opt = optimize(*G, OO);
        if (!Opt)
          ++Failures;
        // Concurrent hash-consed extraction.
        auto F = makeFIR({1.0, 2.0, 3.0, double(T)}, "stress");
        auto X = AnalysisManager::global().extraction(*F);
        if (!X)
          ++Failures;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

//===----------------------------------------------------------------------===//
// ProgramCache options-keying regression
//===----------------------------------------------------------------------===//

TEST(ProgramCacheKeying, DistinctOptionsGetDistinctArtifacts) {
  StreamPtr Root = buildFIR(16);
  ProgramCache Cache;

  CompiledOptions A;
  A.BatchIterations = 16;
  A.Parallel.Workers = 1;
  CompiledOptions B = A;
  B.Parallel.Workers = 4; // same BatchIterations: the old key collided

  bool Hit = true;
  CompiledProgramRef PA = Cache.get(*Root, A, &Hit);
  EXPECT_FALSE(Hit);
  CompiledProgramRef PB = Cache.get(*Root, B, &Hit);
  EXPECT_FALSE(Hit) << "options differing only in parallel knobs must not "
                       "share a cache entry";
  EXPECT_NE(PA.get(), PB.get());
  EXPECT_EQ(PA->options().Parallel.Workers, 1);
  EXPECT_EQ(PB->options().Parallel.Workers, 4);

  // Same options again: served from cache.
  CompiledProgramRef PA2 = Cache.get(*Root, A, &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(PA.get(), PA2.get());

  CompiledOptions C = A;
  C.Parallel.ShardMinIterations = 99;
  Cache.get(*Root, C, &Hit);
  EXPECT_FALSE(Hit);
}

//===----------------------------------------------------------------------===//
// AnalysisManager eviction
//===----------------------------------------------------------------------===//

TEST(AnalysisManagerEviction, CapBoundsEntriesAndCountsEvictions) {
  AnalysisManager AM;
  AM.setCapacity(2, 2);

  auto MakeF = [](int I) {
    return makeFIR({1.0 + I, 2.0, 3.0 + I}, "evict" + std::to_string(I));
  };
  for (int I = 0; I != 5; ++I)
    ASSERT_NE(AM.extraction(*MakeF(I)), nullptr);

  AnalysisManager::Stats S = AM.stats();
  EXPECT_EQ(S.ExtractionMisses, 5u);
  EXPECT_LE(S.ExtractionEntries, 2u);
  EXPECT_EQ(S.ExtractionEvictions, 3u);

  // Recently used entries survive; evicted ones recompute correctly.
  auto R4 = AM.extraction(*MakeF(4));
  EXPECT_EQ(AM.stats().ExtractionHits, 1u);
  auto R0 = AM.extraction(*MakeF(0));
  EXPECT_EQ(AM.stats().ExtractionMisses, 6u);
  ASSERT_NE(R0, nullptr);
  ASSERT_NE(R4, nullptr);

  // Shrinking the cap evicts immediately.
  AM.setCapacity(1, 1);
  EXPECT_LE(AM.stats().ExtractionEntries, 1u);
}

TEST(AnalysisManagerEviction, LruKeepsHotEntries) {
  AnalysisManager AM;
  AM.setCapacity(2, 2);
  auto A = makeFIR({1, 2}, "hotA");
  auto B = makeFIR({3, 4}, "hotB");
  auto C = makeFIR({5, 6}, "hotC");
  AM.extraction(*A);
  AM.extraction(*B);
  AM.extraction(*A); // refresh A; B is now the LRU entry
  AM.extraction(*C); // evicts B
  uint64_t MissesBefore = AM.stats().ExtractionMisses;
  AM.extraction(*A);
  EXPECT_EQ(AM.stats().ExtractionMisses, MissesBefore) << "A was evicted";
  AM.extraction(*B);
  EXPECT_EQ(AM.stats().ExtractionMisses, MissesBefore + 1) << "B survived";
}

//===----------------------------------------------------------------------===//
// Shard-boundary computation unit checks
//===----------------------------------------------------------------------===//

TEST(ShardBoundary, WashoutTracksPeekWindows) {
  // peek 8 / pop 1 leaves 7 items on the source channel: washout 7.
  StreamPtr Root = shardGraphs()[0].Build();
  CompiledProgramRef P = makeProgram(*Root);
  ASSERT_TRUE(P->shardInfo().Shardable);
  EXPECT_EQ(P->shardInfo().WashoutIterations, 7);

  // No peeking anywhere: nothing to wash out.
  StreamPtr Rate = shardGraphs()[1].Build();
  CompiledProgramRef P2 = makeProgram(*Rate);
  ASSERT_TRUE(P2->shardInfo().Shardable);
  EXPECT_EQ(P2->shardInfo().WashoutIterations, 0);

  // A delay line is depth-1 state: washout at least one iteration.
  StreamPtr Delay = shardGraphs()[4].Build();
  CompiledProgramRef P3 = makeProgram(*Delay);
  ASSERT_TRUE(P3->shardInfo().Shardable);
  EXPECT_GE(P3->shardInfo().WashoutIterations, 1);
}

TEST(ShardBoundary, ClosedFormSeedsForSources) {
  StreamPtr Root = shardGraphs()[5].Build(); // RampAndTable
  CompiledProgramRef P = makeProgram(*Root);
  ASSERT_TRUE(P->shardInfo().Shardable) << P->shardInfo().Reason;
  ASSERT_EQ(P->shardInfo().Seeds.size(), 1u);
  const CompiledProgram::ShardInfo::FieldSeed &S = P->shardInfo().Seeds[0];
  EXPECT_EQ(S.DeltaRest, 1.0);
  EXPECT_EQ(S.Modulus, 16.0);
}

TEST(ShardBoundary, NegativeModularCursorIsRejected) {
  // A countdown cursor idx = fmod(idx - 1, P) goes negative, where the
  // tape's per-firing fmod and a one-shot closed form pick different
  // representatives — such fields must not be seeded.
  using namespace slin::wir;
  using namespace slin::wir::build;
  auto P = std::make_unique<Pipeline>("p");
  {
    std::vector<FieldDef> Fields = {FieldDef::mutableScalar("idx", 0)};
    WorkFunction W(0, 0, 1,
                   stmts(push(fld("idx")),
                         fldAssign("idx", mod(sub(fld("idx"), cst(1)),
                                              cst(8)))));
    P->add(std::make_unique<Filter>("Countdown", std::move(Fields),
                                    std::move(W)));
  }
  P->add(makePrinterSink());
  CompiledProgramRef Prog = makeProgram(*P);
  EXPECT_FALSE(Prog->shardInfo().Shardable);

  // The fallback still reproduces the sequential stream bit for bit.
  RefRun Ref = referenceRun(Prog, 100);
  RefRun Par = parallelRun(Prog, 100, ParallelOptions());
  EXPECT_EQ(Ref.Printed, Par.Printed);
}

TEST(ShardBoundary, OpaqueStateIsRejected) {
  // An accumulator (x += pop()) cannot be seeded or washed out.
  using namespace slin::wir;
  using namespace slin::wir::build;
  auto P = std::make_unique<Pipeline>("p");
  P->add(makeCountingSource());
  {
    std::vector<FieldDef> Fields = {FieldDef::mutableScalar("acc", 0)};
    WorkFunction W(1, 1, 1,
                   stmts(fldAssign("acc", add(fld("acc"), pop())),
                         push(fld("acc"))));
    P->add(std::make_unique<Filter>("Accum", std::move(Fields), std::move(W)));
  }
  P->add(makePrinterSink());
  CompiledProgramRef Prog = makeProgram(*P);
  EXPECT_FALSE(Prog->shardInfo().Shardable);
  EXPECT_NE(Prog->shardInfo().Reason.find("Accum"), std::string::npos);

  // ... and the parallel executor still runs it, sequentially and
  // bit-identically.
  RefRun Ref = referenceRun(Prog, 100);
  ParallelExecutor::RunStats Stats;
  RefRun Par = parallelRun(Prog, 100, ParallelOptions(), {}, &Stats);
  EXPECT_EQ(Ref.Printed, Par.Printed);
  EXPECT_TRUE(Ref.Ops == Par.Ops);
  EXPECT_TRUE(Stats.Sequential);
}

} // namespace
