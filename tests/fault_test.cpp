//===- tests/fault_test.cpp - Recoverable errors under injected faults ----==//
//
// The recoverable-error layer (support/Error.h) driven through the
// deterministic fault-injection points (support/FaultInjection.h): every
// SLIN_FAULT arm must recover without process death, and every recovery
// must land on outputs — and FLOP counts — bit-identical to a clean run.
// Covers the store's publish failures (short write, rename, ENOSPC with
// retries/eviction), stale-tmp sweeping and size/TTL eviction, the
// pipeline's Base-mode degradation ladder, the parallel backend's
// sequential fallback on shard-seed anomalies, and the run-deadline /
// cancellation token.
//
// NOTE: the FaultEnv tests must run first (registration order): SLIN_FAULT
// is consumed once per process, and the first faults::reset() marks it
// consumed forever after.
//
//===----------------------------------------------------------------------===//

#include "codegen/CxxBackend.h"
#include "codegen/NativeModule.h"
#include "compiler/ArtifactStore.h"
#include "compiler/Pipeline.h"
#include "compiler/Program.h"
#include "compiler/StructuralHash.h"
#include "exec/CompiledExecutor.h"
#include "exec/Parallel.h"
#include "sched/Rates.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "support/OpCounters.h"
#include "TestGraphs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sys/time.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

using namespace slin;
using namespace slin::testing_helpers;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Disarms every fault point on entry and exit, so no test leaks an
/// armed point into its neighbours (and the SLIN_FAULT environment is
/// marked consumed — tests own the configuration).
struct FaultGuard {
  FaultGuard() { faults::reset(); }
  ~FaultGuard() { faults::reset(); }
};

StreamPtr firSourcePipeline(std::vector<double> Taps,
                            const std::string &Name = "fir") {
  auto P = std::make_unique<Pipeline>(Name);
  P->add(makeCountingSource());
  P->add(makeFIR(std::move(Taps)));
  P->add(makePrinterSink());
  return P;
}

/// A graph that pops external input (no source filter).
StreamPtr externallyDrivenGraph() {
  auto P = std::make_unique<Pipeline>("ext");
  P->add(makeFIR({2, -1, 0.5, 4}, "extfir"));
  P->add(makeGain(0.25));
  return P;
}

CompiledProgramRef makeProgram(const Stream &Root,
                               CompiledOptions Opts = CompiledOptions()) {
  return std::make_shared<const CompiledProgram>(Root, Opts);
}

/// Runs a fresh executor over \p P and returns the first \p N outputs.
std::vector<double> runProgram(const CompiledProgramRef &P, size_t N) {
  CompiledExecutor E(P);
  E.run(N);
  std::vector<double> Out =
      E.printed().empty() ? E.outputSnapshot() : E.printed();
  if (Out.size() > N)
    Out.resize(N);
  return Out;
}

/// A scoped artifact directory for the process-global store.
class StoreGuard {
public:
  StoreGuard() {
    Dir = (std::filesystem::temp_directory_path() /
           ("slin-fault-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(Counter++)))
              .string();
    ArtifactStore::setGlobalDir(Dir);
    ProgramCache::global().clear();
    ProgramCache::global().resetStats();
  }
  ~StoreGuard() {
    ArtifactStore::setGlobalDir("");
    ProgramCache::global().clear();
    ProgramCache::global().resetStats();
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }

  ArtifactStore &store() { return *ArtifactStore::global(); }
  const std::string &dir() const { return Dir; }

  size_t fileCount() const {
    size_t N = 0;
    for (auto It = std::filesystem::directory_iterator(Dir);
         It != std::filesystem::directory_iterator(); ++It)
      ++N;
    return N;
  }

  size_t tmpFileCount() const {
    size_t N = 0;
    for (auto It = std::filesystem::directory_iterator(Dir);
         It != std::filesystem::directory_iterator(); ++It)
      if (It->path().filename().string().find(".tmp.") != std::string::npos)
        ++N;
    return N;
  }

private:
  static int Counter;
  std::string Dir;
};

int StoreGuard::Counter = 0;

ArtifactStore::Key keyFor(const CompiledProgramRef &P) {
  return {structuralHash(P->root()), hashOptions(P->options())};
}

/// Sets a file's mtime \p AgeSeconds into the past.
void setFileAge(const std::string &Path, int64_t AgeSeconds) {
  struct timeval TV[2];
  TV[0].tv_sec = TV[1].tv_sec =
      static_cast<time_t>(::time(nullptr) - AgeSeconds);
  TV[0].tv_usec = TV[1].tv_usec = 0;
  ASSERT_EQ(::utimes(Path.c_str(), TV), 0) << Path;
}

/// A pid guaranteed dead and reaped: fork a child that exits immediately.
pid_t deadPid() {
  pid_t P = ::fork();
  if (P == 0)
    ::_exit(0);
  int Stat = 0;
  ::waitpid(P, &Stat, 0);
  return P;
}

//===----------------------------------------------------------------------===//
// SLIN_FAULT parsing (must run before any reset; see file header)
//===----------------------------------------------------------------------===//

TEST(FaultEnv, SpecParsingArmsPoints) {
  ::setenv("SLIN_FAULT",
           "artifact-rename-fail:2+,bogus-point:1,store-enospc:0,"
           "pass-verifier-trip",
           1);
  faults::armFromEnv();
  ::unsetenv("SLIN_FAULT");

  // No ordinal: the first hit fails, one-shot.
  EXPECT_TRUE(faults::shouldFail(faults::Point::PassVerifierTrip));
  EXPECT_FALSE(faults::shouldFail(faults::Point::PassVerifierTrip));

  // ":2+": persistent from the second hit on (retries must exhaust).
  EXPECT_FALSE(faults::shouldFail(faults::Point::ArtifactRenameFail));
  EXPECT_TRUE(faults::shouldFail(faults::Point::ArtifactRenameFail));
  EXPECT_TRUE(faults::shouldFail(faults::Point::ArtifactRenameFail));
  EXPECT_EQ(faults::hitCount(faults::Point::ArtifactRenameFail), 3u);

  // ":0" is a malformed ordinal: skipped item-wise, as is bogus-point.
  EXPECT_FALSE(faults::shouldFail(faults::Point::StoreEnospc));

  faults::reset();
  EXPECT_FALSE(faults::shouldFail(faults::Point::ArtifactRenameFail));
  EXPECT_EQ(faults::hitCount(faults::Point::ArtifactRenameFail), 0u);
}

TEST(FaultEnv, ResetConsumesTheEnvironmentForGood) {
  // After the reset above, a still-set SLIN_FAULT must not re-arm:
  // tests own the configuration for the rest of the process.
  ::setenv("SLIN_FAULT", "store-enospc:1+", 1);
  faults::armFromEnv();
  EXPECT_FALSE(faults::shouldFail(faults::Point::StoreEnospc));
  ::unsetenv("SLIN_FAULT");
}

TEST(FaultEnv, ProgrammaticArmOneShotAndPersistent) {
  FaultGuard G;
  faults::arm(faults::Point::StoreEnospc, 2);
  EXPECT_FALSE(faults::shouldFail(faults::Point::StoreEnospc));
  EXPECT_TRUE(faults::shouldFail(faults::Point::StoreEnospc));
  EXPECT_FALSE(faults::shouldFail(faults::Point::StoreEnospc));

  faults::arm(faults::Point::StoreEnospc, 2, /*Persistent=*/true);
  EXPECT_FALSE(faults::shouldFail(faults::Point::StoreEnospc));
  EXPECT_TRUE(faults::shouldFail(faults::Point::StoreEnospc));
  EXPECT_TRUE(faults::shouldFail(faults::Point::StoreEnospc));
}

//===----------------------------------------------------------------------===//
// Status / Expected
//===----------------------------------------------------------------------===//

TEST(StatusExpected, CodesContextsAndValues) {
  Status Ok;
  EXPECT_TRUE(Ok.isOk());
  EXPECT_TRUE(static_cast<bool>(Ok));
  EXPECT_EQ(Ok.str(), "");

  Status St(ErrorCode::IoError, "short read");
  EXPECT_FALSE(St.isOk());
  Status Chained = St.withContext("read header").withContext("load artifact");
  EXPECT_EQ(Chained.code(), ErrorCode::IoError);
  EXPECT_EQ(Chained.message(), "load artifact: read header: short read");
  EXPECT_EQ(Chained.str(), "io-error: load artifact: read header: short read");

  EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
  EXPECT_STREQ(errorCodeName(ErrorCode::NoSpace), "no-space");
  EXPECT_STREQ(errorCodeName(ErrorCode::VerifyFailed), "verify-failed");
  EXPECT_STREQ(errorCodeName(ErrorCode::ShardAnomaly), "shard-anomaly");
  EXPECT_STREQ(errorCodeName(ErrorCode::Timeout), "timeout");

  Expected<int> V = 42;
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 42);
  EXPECT_TRUE(V.status().isOk());

  Expected<int> E = Status(ErrorCode::Corrupt, "bad bytes");
  ASSERT_FALSE(E);
  EXPECT_EQ(E.status().code(), ErrorCode::Corrupt);
}

TEST(StatusExpected, RatesTryFormsReportRateError) {
  // The exec_test death test's graph, through the recoverable route: an
  // unbalanced feedback loop names its inconsistency in a Status.
  auto FB = std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeAdder(2), makeIdentity(),
      Splitter::roundRobin({1, 1}), std::vector<double>{0});
  Expected<std::vector<int64_t>> Reps = tryChildRepetitions(*FB);
  ASSERT_FALSE(Reps);
  EXPECT_EQ(Reps.status().code(), ErrorCode::RateError);
  EXPECT_NE(Reps.status().message().find("inconsistent loop rates"),
            std::string::npos);
  Expected<RateSignature> Rates = tryComputeRates(*FB);
  ASSERT_FALSE(Rates);
  EXPECT_EQ(Rates.status().code(), ErrorCode::RateError);

  StreamPtr Good = firSourcePipeline({1, 2, 3});
  Expected<RateSignature> R = tryComputeRates(*Good);
  ASSERT_TRUE(R);
  EXPECT_EQ(R->Push, 0); // printer sink: no pushed output
}

//===----------------------------------------------------------------------===//
// Store publish faults: short write, rename failure, ENOSPC
//===----------------------------------------------------------------------===//

TEST(StoreFaults, ShortWriteRetriesAndPublishes) {
  FaultGuard G;
  StoreGuard Guard;
  StreamPtr Root = firSourcePipeline({1, 2, 3, 4});
  CompiledProgramRef P = makeProgram(*Root);
  std::vector<double> Expect = runProgram(P, 128);

  faults::arm(faults::Point::ArtifactWriteShort, 1);
  Status St = Guard.store().tryStore(keyFor(P), *P);
  EXPECT_TRUE(St.isOk()) << St.str();
  EXPECT_GE(faults::hitCount(faults::Point::ArtifactWriteShort), 1u);

  ArtifactStore::Stats S = Guard.store().stats();
  EXPECT_EQ(S.Stores, 1u);
  EXPECT_EQ(S.PublishFailures, 1u);
  EXPECT_EQ(S.IoRetries, 1u);
  EXPECT_EQ(Guard.tmpFileCount(), 0u); // the failed attempt left no litter

  auto Loaded = Guard.store().tryLoad(keyFor(P));
  ASSERT_TRUE(Loaded) << Loaded.status().str();
  EXPECT_EQ(runProgram(*Loaded, 128), Expect);
}

TEST(StoreFaults, RenameFailureUnlinksTmpAndRetries) {
  FaultGuard G;
  StoreGuard Guard;
  StreamPtr Root = firSourcePipeline({5, 6, 7});
  CompiledProgramRef P = makeProgram(*Root);

  faults::arm(faults::Point::ArtifactRenameFail, 1);
  Status St = Guard.store().tryStore(keyFor(P), *P);
  EXPECT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(Guard.tmpFileCount(), 0u);
  EXPECT_TRUE(std::filesystem::exists(Guard.store().pathFor(keyFor(P))));

  ArtifactStore::Stats S = Guard.store().stats();
  EXPECT_EQ(S.PublishFailures, 1u);
  EXPECT_EQ(S.IoRetries, 1u);
  EXPECT_EQ(S.Stores, 1u);
}

TEST(StoreFaults, PersistentRenameFailureExhaustsRetriesCleanly) {
  FaultGuard G;
  StoreGuard Guard;
  StreamPtr Root = firSourcePipeline({8, 9});
  CompiledProgramRef P = makeProgram(*Root);

  faults::arm(faults::Point::ArtifactRenameFail, 1, /*Persistent=*/true);
  Status St = Guard.store().tryStore(keyFor(P), *P);
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.code(), ErrorCode::IoError);
  EXPECT_NE(St.message().find("publish artifact"), std::string::npos);
  EXPECT_NE(St.message().find("rename (injected)"), std::string::npos);

  // Three attempts, every tmp file unlinked, nothing published.
  ArtifactStore::Stats S = Guard.store().stats();
  EXPECT_EQ(S.PublishFailures, 3u);
  EXPECT_EQ(S.IoRetries, 2u);
  EXPECT_EQ(S.Stores, 0u);
  EXPECT_EQ(Guard.fileCount(), 0u);
}

TEST(StoreFaults, EnospcDuringCachePublishDegradesToMemoryOnly) {
  FaultGuard G;
  StoreGuard Guard;
  StreamPtr Root = firSourcePipeline({1, 2, 3, 4, 5});
  CompiledOptions Opts;

  faults::arm(faults::Point::StoreEnospc, 1, /*Persistent=*/true);
  CompiledProgramRef P = ProgramCache::global().get(*Root, Opts);
  ASSERT_NE(P, nullptr); // the serving path survives a full disk
  std::vector<double> Expect = runProgram(P, 128);

  ProgramCache::Stats CS = ProgramCache::global().stats();
  EXPECT_EQ(CS.DiskStores, 0u);
  EXPECT_EQ(CS.DiskStoreFailures, 1u);
  ArtifactStore::Stats S = Guard.store().stats();
  EXPECT_EQ(S.PublishFailures, 3u); // bounded retry, then memory-only
  EXPECT_EQ(S.IoRetries, 2u);
  EXPECT_EQ(Guard.fileCount(), 0u); // no artifact, no tmp litter

  // The memory tier still serves it...
  bool Hit = false;
  ProgramCache::global().get(*Root, Opts, &Hit);
  EXPECT_TRUE(Hit);

  // ...and once space is back, a cold process recompiles cleanly and
  // publishes, with bit-identical outputs.
  faults::reset();
  ProgramCache::global().clear();
  CompiledProgramRef Clean = ProgramCache::global().get(*Root, Opts, &Hit);
  EXPECT_FALSE(Hit);
  EXPECT_EQ(runProgram(Clean, 128), Expect);
  EXPECT_GE(Guard.fileCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Store maintenance: stale-tmp sweep, TTL, size quota
//===----------------------------------------------------------------------===//

TEST(StoreMaintenance, StartupSweepCollectsStaleTmpOnly) {
  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("slin-sweep-test-" + std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  auto Touch = [&](const std::string &Name) {
    std::ofstream(Dir + "/" + Name) << "x";
  };
  // A dead writer's tmp, a live (our own) tmp, an hour-stale tmp with an
  // unparseable pid, and a published artifact.
  std::string DeadTmp =
      "a.slin.tmp." + std::to_string(static_cast<long>(deadPid())) + ".0";
  std::string OwnTmp =
      "b.slin.tmp." + std::to_string(static_cast<long>(::getpid())) + ".0";
  Touch(DeadTmp);
  Touch(OwnTmp);
  Touch("c.slin.tmp.garbage");
  setFileAge(Dir + "/c.slin.tmp.garbage", 2 * 3600);
  Touch("published.slin");

  ArtifactStore Store(Dir); // constructor sweeps
  EXPECT_FALSE(std::filesystem::exists(Dir + "/" + DeadTmp));
  EXPECT_FALSE(std::filesystem::exists(Dir + "/c.slin.tmp.garbage"));
  EXPECT_TRUE(std::filesystem::exists(Dir + "/" + OwnTmp));
  EXPECT_TRUE(std::filesystem::exists(Dir + "/published.slin"));
  EXPECT_EQ(Store.stats().TmpSwept, 2u);
  std::filesystem::remove_all(Dir);
}

TEST(StoreMaintenance, TtlExpiresOldArtifacts) {
  FaultGuard G;
  StoreGuard Guard;
  StreamPtr RootA = firSourcePipeline({1, 2}, "ttl-a");
  StreamPtr RootB = firSourcePipeline({3, 4, 5}, "ttl-b");
  CompiledProgramRef A = makeProgram(*RootA), B = makeProgram(*RootB);
  ASSERT_TRUE(Guard.store().tryStore(keyFor(A), *A).isOk());
  ASSERT_TRUE(Guard.store().tryStore(keyFor(B), *B).isOk());

  std::string PathA = Guard.store().pathFor(keyFor(A));
  setFileAge(PathA, 2 * 3600);
  Guard.store().setTtlSeconds(3600);
  Guard.store().sweepNow();

  EXPECT_FALSE(std::filesystem::exists(PathA));
  EXPECT_TRUE(std::filesystem::exists(Guard.store().pathFor(keyFor(B))));
  ArtifactStore::Stats S = Guard.store().stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_GT(S.EvictedBytes, 0u);

  // The evicted key is a plain miss -> clean recompile territory.
  EXPECT_FALSE(Guard.store().tryLoad(keyFor(A)));
  EXPECT_TRUE(Guard.store().tryLoad(keyFor(B)));
}

TEST(StoreMaintenance, QuotaEvictsOldestFirstAndSparesTheFreshPublish) {
  FaultGuard G;
  StoreGuard Guard;
  StreamPtr RootA = firSourcePipeline({1, 2}, "quota-a");
  StreamPtr RootB = firSourcePipeline({3, 4, 5}, "quota-b");
  CompiledProgramRef A = makeProgram(*RootA), B = makeProgram(*RootB);

  ASSERT_TRUE(Guard.store().tryStore(keyFor(A), *A).isOk());
  std::string PathA = Guard.store().pathFor(keyFor(A));
  uint64_t SizeA = std::filesystem::file_size(PathA);
  setFileAge(PathA, 3600); // unambiguously the oldest

  // Room for one artifact but not two: publishing B must evict A (the
  // oldest) and never the just-published B.
  Guard.store().setMaxBytes(SizeA + SizeA);
  ASSERT_TRUE(Guard.store().tryStore(keyFor(B), *B).isOk());

  EXPECT_FALSE(std::filesystem::exists(PathA));
  EXPECT_TRUE(std::filesystem::exists(Guard.store().pathFor(keyFor(B))));
  ArtifactStore::Stats S = Guard.store().stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.EvictedBytes, SizeA);

  // Evicted key recompiles cleanly (a plain miss, not an error).
  Expected<std::shared_ptr<const CompiledProgram>> Miss =
      Guard.store().tryLoad(keyFor(A));
  ASSERT_FALSE(Miss);
  EXPECT_EQ(Miss.status().code(), ErrorCode::IoError);
}

//===----------------------------------------------------------------------===//
// Pipeline degradation ladder: verifier trip -> Base-mode recompile
//===----------------------------------------------------------------------===//

TEST(PipelineDegrade, VerifierTripRecompilesInBaseMode) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({1, 2, 3, 4, 5, 6, 7, 8});

  PipelineOptions BasePO;
  BasePO.Mode = OptMode::Base;
  BasePO.Exec.Eng = Engine::Compiled;
  BasePO.UseProgramCache = false;
  CompileResult BaseRef = compileStream(*Root, BasePO);
  ASSERT_NE(BaseRef.Program, nullptr);
  std::vector<double> BaseOut = runProgram(BaseRef.Program, 128);

  PipelineOptions PO = BasePO;
  PO.Mode = OptMode::Linear;
  PO.VerifyAfterEachPass = true;
  faults::arm(faults::Point::PassVerifierTrip, 1);
  Expected<CompileResult> R = CompilerPipeline(PO).tryCompile(*Root);
  ASSERT_TRUE(R) << R.status().str();
  EXPECT_TRUE(R->Degraded);
  EXPECT_NE(R->DegradeReason.find("verify-failed"), std::string::npos);
  EXPECT_NE(R->DegradeReason.find("injected verifier trip"),
            std::string::npos);
  ASSERT_NE(R->Program, nullptr);
  // The degraded result is the program as written: bit-identical to a
  // clean Base-mode compile.
  EXPECT_EQ(runProgram(R->Program, 128), BaseOut);
}

TEST(PipelineDegrade, CleanTryCompileDoesNotDegrade) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({1, 2, 3, 4});
  PipelineOptions PO;
  PO.Mode = OptMode::Linear;
  PO.VerifyAfterEachPass = true;
  PO.Exec.Eng = Engine::Compiled;
  PO.UseProgramCache = false;
  Expected<CompileResult> R = CompilerPipeline(PO).tryCompile(*Root);
  ASSERT_TRUE(R) << R.status().str();
  EXPECT_FALSE(R->Degraded);
  EXPECT_TRUE(R->DegradeReason.empty());
  ASSERT_NE(R->Program, nullptr);
}

TEST(PipelineDegrade, PersistentVerifierFailureSurfacesAStatus) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({1, 2, 3});
  PipelineOptions PO;
  PO.Mode = OptMode::Linear;
  PO.VerifyAfterEachPass = true;
  PO.UseProgramCache = false;
  faults::arm(faults::Point::PassVerifierTrip, 1, /*Persistent=*/true);
  Expected<CompileResult> R = CompilerPipeline(PO).tryCompile(*Root);
  ASSERT_FALSE(R); // even the Base-mode rung tripped: nothing left
  EXPECT_EQ(R.status().code(), ErrorCode::VerifyFailed);
  EXPECT_NE(R.status().message().find("base-mode degraded recompile"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Executor front doors: deadlocks as Statuses, seed validation
//===----------------------------------------------------------------------===//

TEST(ExecutorTry, InputShortfallIsADeadlockStatus) {
  FaultGuard G;
  StreamPtr Root = externallyDrivenGraph();
  CompiledProgramRef P = makeProgram(*Root);

  CompiledExecutor E(P);
  E.provideInput({1, 2, 3});
  Status St = E.tryRunIterations(64);
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.code(), ErrorCode::Deadlock);
  EXPECT_NE(St.message().find("external input"), std::string::npos);

  ParallelExecutor PE(P, ParallelOptions());
  PE.provideInput({1, 2, 3});
  Status PSt = PE.tryRunIterations(64);
  ASSERT_FALSE(PSt.isOk());
  EXPECT_EQ(PSt.code(), ErrorCode::Deadlock);
  EXPECT_NE(PSt.message().find("external input"), std::string::npos);
}

TEST(ExecutorTry, SeedPreconditionsComeBackAsShardAnomalies) {
  FaultGuard G;
  // Non-shardable program (feedback loop cycles state).
  auto Root = std::make_unique<Pipeline>("fb-root");
  Root->add(makeCountingSource());
  Root->add(std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeSumDiffFilter(), makeIdentity(),
      Splitter::roundRobin({1, 1}), std::vector<double>{0.5}));
  Root->add(makePrinterSink());
  CompiledProgramRef FB = makeProgram(*Root);
  ASSERT_FALSE(FB->shardInfo().Shardable);
  CompiledExecutor E1(FB);
  Status St = E1.trySeedSteadyState(8);
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.code(), ErrorCode::ShardAnomaly);

  // A stale (already-run) executor must refuse seeding too.
  StreamPtr Fir = firSourcePipeline({1, 2, 3, 4, 5, 6, 7, 8});
  CompiledProgramRef P = makeProgram(*Fir);
  ASSERT_TRUE(P->shardInfo().Shardable) << P->shardInfo().Reason;
  CompiledExecutor E2(P);
  E2.runIterations(4);
  St = E2.trySeedSteadyState(8);
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.code(), ErrorCode::ShardAnomaly);

  // The injected corruption fires on an otherwise-valid seed.
  faults::arm(faults::Point::ShardSeedCorrupt, 1);
  CompiledExecutor E3(P);
  St = E3.trySeedSteadyState(8);
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.code(), ErrorCode::ShardAnomaly);
  EXPECT_NE(St.message().find("injected"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parallel backend: shard-seed anomaly -> sequential fallback,
// bit-identical
//===----------------------------------------------------------------------===//

void expectSeedCorruptFallback(bool Persistent) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({1.5, -2.25, 3.0, 0.5, -0.125, 7.0});
  CompiledProgramRef P = makeProgram(*Root);
  ASSERT_TRUE(P->shardInfo().Shardable) << P->shardInfo().Reason;

  const int64_t Span = 150;
  CompiledExecutor Ref(P);
  ops::CountingScope Scope;
  OpCounts Before = ops::counts();
  Ref.runIterations(Span);
  OpCounts RefOps = ops::counts() - Before;

  ParallelOptions PO;
  PO.Workers = 4;
  PO.ShardMinIterations = 2;
  faults::arm(faults::Point::ShardSeedCorrupt, 1, Persistent);
  ParallelExecutor E(P, PO);
  Before = ops::counts();
  Status St = E.tryRunIterations(Span);
  OpCounts ParOps = ops::counts() - Before;
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_GE(faults::hitCount(faults::Point::ShardSeedCorrupt), 1u);

  // The whole span re-ran sequentially, recorded as such...
  ParallelExecutor::RunStats Stats = E.lastRunStats();
  EXPECT_TRUE(Stats.Sequential);
  EXPECT_EQ(Stats.ShardsUsed, 1);
  EXPECT_NE(Stats.FallbackReason.find("shard-anomaly"), std::string::npos);
  // ...with outputs AND FLOP counts bit-identical to the clean run.
  EXPECT_EQ(E.printed(), Ref.printed());
  EXPECT_EQ(E.outputSnapshot(), Ref.outputSnapshot());
  EXPECT_TRUE(ParOps == RefOps);
  EXPECT_EQ(E.iterationsDone(), Span);
}

TEST(ParallelFallback, OneCorruptShardFallsBackBitIdentically) {
  expectSeedCorruptFallback(/*Persistent=*/false);
}

TEST(ParallelFallback, PersistentCorruptionFallsBackBitIdentically) {
  expectSeedCorruptFallback(/*Persistent=*/true);
}

TEST(ParallelFallback, NextSpanAfterFallbackContinuesCleanly) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({2, -3, 5, -7});
  CompiledProgramRef P = makeProgram(*Root);
  ASSERT_TRUE(P->shardInfo().Shardable);

  CompiledExecutor Ref(P);
  Ref.runIterations(240);

  ParallelOptions PO;
  PO.Workers = 4;
  PO.ShardMinIterations = 2;
  ParallelExecutor E(P, PO);
  faults::arm(faults::Point::ShardSeedCorrupt, 1); // poisons the 1st call
  ASSERT_TRUE(E.tryRunIterations(120).isOk());
  EXPECT_TRUE(E.lastRunStats().Sequential);
  ASSERT_TRUE(E.tryRunIterations(120).isOk()); // fault spent: shards again
  EXPECT_FALSE(E.lastRunStats().Sequential);
  EXPECT_EQ(E.printed(), Ref.printed());
}

//===----------------------------------------------------------------------===//
// Run deadline / cancellation
//===----------------------------------------------------------------------===//

TEST(RunDeadlineToken, InjectedHangReturnsTimeout) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({1, 2, 3});
  CompiledProgramRef P = makeProgram(*Root);

  faults::arm(faults::Point::ExecHang, 1);
  faults::RunDeadline DL = faults::RunDeadline::afterMillis(50);
  CompiledExecutor E(P);
  Status St = E.tryRun(256, &DL);
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.code(), ErrorCode::Timeout);
}

TEST(RunDeadlineToken, CancellationFlagReturnsCancelled) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({1, 2, 3});
  CompiledProgramRef P = makeProgram(*Root);

  std::atomic<bool> Cancel{true};
  faults::RunDeadline DL;
  DL.setCancelFlag(&Cancel);
  CompiledExecutor E(P);
  Status St = E.tryRunIterations(64, &DL);
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.code(), ErrorCode::Cancelled);
}

TEST(RunDeadlineToken, GenerousDeadlineChangesNothing) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({4, 5, 6});
  CompiledProgramRef P = makeProgram(*Root);

  CompiledExecutor Ref(P);
  Ref.run(128);

  faults::RunDeadline DL = faults::RunDeadline::afterMillis(60'000);
  CompiledExecutor E(P);
  ASSERT_TRUE(E.tryRun(128, &DL).isOk());
  EXPECT_EQ(E.printed(), Ref.printed());
}

TEST(RunDeadlineToken, ExpiredDeadlineStopsAParallelRun) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({1, 2, 3, 4});
  CompiledProgramRef P = makeProgram(*Root);

  faults::RunDeadline DL = faults::RunDeadline::afterMillis(1);
  while (!DL.expired())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ParallelOptions PO;
  PO.Workers = 2;
  ParallelExecutor E(P, PO);
  Status St = E.tryRunIterations(100, &DL);
  ASSERT_FALSE(St.isOk());
  EXPECT_EQ(St.code(), ErrorCode::Timeout);
}

TEST(RunDeadlineToken, FromEnvReadsPerCall) {
  ::setenv("SLIN_RUN_DEADLINE_MS", "5", 1);
  EXPECT_TRUE(faults::RunDeadline::fromEnv().hasDeadline());
  ::unsetenv("SLIN_RUN_DEADLINE_MS");
  EXPECT_FALSE(faults::RunDeadline::fromEnv().hasDeadline());
}

//===----------------------------------------------------------------------===//
// Native codegen (codegen-cc-fail / codegen-dlopen-fail)
//===----------------------------------------------------------------------===//

/// Clears the native-module cache (including negative entries) so a
/// fault armed here cannot poison — or be masked by — another test's
/// memoized module.
struct NativeGuard {
  NativeGuard() {
    codegen::NativeModuleCache::global().clear();
    codegen::NativeModuleCache::global().resetStats();
  }
  ~NativeGuard() {
    codegen::NativeModuleCache::global().clear();
    codegen::NativeModuleCache::global().resetStats();
  }
};

/// True when the discovered compiler both exists and runs (the CI
/// no-toolchain arm names a nonexistent SLIN_CXX, which
/// discoverCompiler() returns verbatim).
bool toolchainWorks() {
  std::string Cxx = codegen::discoverCompiler();
  if (Cxx.empty())
    return false;
  std::string Cmd = "'" + Cxx + "' --version >/dev/null 2>&1";
  int Rc = std::system(Cmd.c_str());
  return Rc != -1 && WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0;
}

/// First N outputs with module \p M attached (null: op tapes).
std::vector<double> runWithModule(const CompiledProgramRef &P,
                                  codegen::NativeModuleRef M, size_t N) {
  CompiledExecutor E(P, std::move(M));
  E.run(N);
  std::vector<double> Out =
      E.printed().empty() ? E.outputSnapshot() : E.printed();
  if (Out.size() > N)
    Out.resize(N);
  return Out;
}

TEST(NativeCodegenFaults, CompileFailureDegradesBitIdentical) {
  FaultGuard G;
  NativeGuard NG;
  if (codegen::discoverCompiler().empty())
    GTEST_SKIP() << "no C++ toolchain available";
  StreamPtr Root = firSourcePipeline({2.5, -1.25, 0.5, 3.0});
  CompiledProgramRef P = makeProgram(*Root);
  std::vector<double> Clean = runProgram(P, 96);

  faults::arm(faults::Point::CodegenCcFail, 1);
  std::string Reason;
  codegen::NativeModuleRef M =
      codegen::NativeModuleCache::global().get(*P, &Reason);
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Reason.find("injected compiler failure"), std::string::npos);
  EXPECT_EQ(codegen::NativeModuleCache::global().stats().CompileFailures, 1u);

  // The degraded engine answers on the op tapes, bit-identically.
  EXPECT_EQ(runWithModule(P, M, 96), Clean);
}

TEST(NativeCodegenFaults, DlopenFailureDegradesBitIdentical) {
  FaultGuard G;
  NativeGuard NG;
  if (!toolchainWorks())
    GTEST_SKIP() << "no working C++ toolchain available";
  StreamPtr Root = firSourcePipeline({1.5, 4.0, -2.0, 0.25});
  CompiledProgramRef P = makeProgram(*Root);
  std::vector<double> Clean = runProgram(P, 96);

  // The compile succeeds; loading the fresh object fails.
  faults::arm(faults::Point::CodegenDlopenFail, 1);
  std::string Reason;
  codegen::NativeModuleRef M =
      codegen::NativeModuleCache::global().get(*P, &Reason);
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Reason.find("injected dlopen failure"), std::string::npos);
  auto S = codegen::NativeModuleCache::global().stats();
  EXPECT_EQ(S.Compiles, 1u);
  EXPECT_EQ(S.DlopenFailures, 1u);

  EXPECT_EQ(runWithModule(P, M, 96), Clean);
}

TEST(NativeCodegenFaults, DiskTierDlopenFailureEvictsAndRebuilds) {
  FaultGuard G;
  NativeGuard NG;
  if (!toolchainWorks())
    GTEST_SKIP() << "no working C++ toolchain available";
  StoreGuard SG;
  codegen::NativeModuleCache &C = codegen::NativeModuleCache::global();
  StreamPtr Root = firSourcePipeline({0.75, -3.0, 2.25});
  CompiledProgramRef P = makeProgram(*Root);
  std::vector<double> Clean = runProgram(P, 96);

  // Build and publish the object, then forget the in-memory module.
  ASSERT_NE(C.get(*P), nullptr);
  ASSERT_EQ(C.stats().Compiles, 1u);
  C.clear();
  C.resetStats();

  // The disk-tier dlopen fails once: the stored object must be evicted
  // and a fresh build must serve the module — never a crash, never null.
  faults::arm(faults::Point::CodegenDlopenFail, 1);
  codegen::NativeModuleRef M = C.get(*P);
  ASSERT_NE(M, nullptr);
  auto S = C.stats();
  EXPECT_EQ(S.DiskHits, 0u);
  EXPECT_EQ(S.DlopenFailures, 1u);
  EXPECT_EQ(S.Compiles, 1u);

  EXPECT_EQ(runWithModule(P, M, 96), Clean);
}

//===----------------------------------------------------------------------===//
// Executor pool under concurrent requests with fault arms active
//===----------------------------------------------------------------------===//

TEST(PoolFaults, OneHungRequestTimesOutOthersServeIdentically) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({1.25, -0.5, 2.0, 0.75});
  CompiledProgramRef P = makeProgram(*Root);
  std::vector<double> Clean = runProgram(P, 128);

  // One-shot hang: exactly one of the concurrent requests draws it,
  // parks until its deadline and comes back as a Timeout *result* —
  // the pool worker survives and keeps serving.
  faults::arm(faults::Point::ExecHang, 1);
  ExecutorPool Pool(P, 4);
  std::vector<std::future<ExecutorPool::Result>> Futures;
  for (int I = 0; I != 8; ++I) {
    ExecutorPool::Request R;
    R.NOutputs = 128;
    R.DeadlineMillis = 200;
    Futures.push_back(Pool.submit(std::move(R)));
  }
  int Timeouts = 0, Ok = 0;
  for (auto &F : Futures) {
    ExecutorPool::Result R = F.get();
    if (R.St.isOk()) {
      ++Ok;
      ASSERT_GE(R.Outputs.size(), Clean.size());
      std::vector<double> Out = R.Outputs;
      Out.resize(Clean.size());
      EXPECT_EQ(Out, Clean);
    } else {
      EXPECT_EQ(R.St.code(), ErrorCode::Timeout) << R.St.str();
      ++Timeouts;
    }
  }
  EXPECT_EQ(Timeouts, 1);
  EXPECT_EQ(Ok, 7);
  ExecutorPool::Stats S = Pool.stats();
  EXPECT_EQ(S.Served, 7u);
  EXPECT_EQ(S.Timeouts, 1u);
  EXPECT_EQ(S.Failures, 0u);
}

TEST(PoolFaults, PersistentShardCorruptionServesSequentiallyBitIdentical) {
  FaultGuard G;
  StreamPtr Root = firSourcePipeline({2.0, -1.5, 0.25});
  CompiledProgramRef P = makeProgram(*Root);
  ASSERT_TRUE(P->shardInfo().Shardable) << P->shardInfo().Reason;
  std::vector<double> Clean = runProgram(P, 256);

  // Every shard-seed attempt is corrupted for the whole burst: each
  // parallel-engine request must absorb the anomaly and fall back to an
  // equivalent sequential run — all Ok, outputs bit-identical.
  faults::arm(faults::Point::ShardSeedCorrupt, 1, /*Persistent=*/true);
  ExecutorPool Pool(P, 4);
  std::vector<std::future<ExecutorPool::Result>> Futures;
  for (int I = 0; I != 6; ++I) {
    ExecutorPool::Request R;
    R.NOutputs = 256;
    R.Eng = Engine::Parallel;
    Futures.push_back(Pool.submit(std::move(R)));
  }
  for (auto &F : Futures) {
    ExecutorPool::Result R = F.get();
    ASSERT_TRUE(R.St.isOk()) << R.St.str();
    ASSERT_GE(R.Outputs.size(), Clean.size());
    std::vector<double> Out = R.Outputs;
    Out.resize(Clean.size());
    EXPECT_EQ(Out, Clean);
  }
  EXPECT_GE(faults::hitCount(faults::Point::ShardSeedCorrupt), 1u);
  EXPECT_EQ(Pool.stats().Served, 6u);
  EXPECT_EQ(Pool.stats().Failures, 0u);
}

} // namespace
