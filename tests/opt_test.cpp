//===- tests/opt_test.cpp - Optimization pass tests -----------------------==//
//
// Output-equivalence is the master property: every optimization
// configuration must produce exactly the same stream of values as the
// original program (frequency replacement up to floating-point noise).
//
//===----------------------------------------------------------------------===//

#include "exec/Measure.h"
#include "opt/Optimizer.h"
#include "TestGraphs.h"

#include "support/OpCounters.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace slin;
using namespace slin::testing_helpers;

namespace {

/// Source -> FIR(H1) -> FIR(H2) -> sink.
std::unique_ptr<Pipeline> twoFIRProgram(std::vector<double> H1,
                                        std::vector<double> H2) {
  auto P = std::make_unique<Pipeline>("TwoFilters");
  P->add(makeCountingSource());
  P->add(makeFIR(std::move(H1), "FIR1"));
  P->add(makeFIR(std::move(H2), "FIR2"));
  P->add(makePrinterSink());
  return P;
}

void expectSameOutputs(const Stream &A, const Stream &B, size_t N,
                       double Tol, const std::string &What) {
  auto OutA = collectOutputs(A, N);
  auto OutB = collectOutputs(B, N);
  ASSERT_EQ(OutA.size(), OutB.size()) << What;
  for (size_t I = 0; I != N; ++I)
    ASSERT_NEAR(OutA[I], OutB[I], Tol) << What << " at " << I;
}

//===----------------------------------------------------------------------===//
// Linear replacement
//===----------------------------------------------------------------------===//

class LinearStyles
    : public ::testing::TestWithParam<LinearCodeGenStyle> {};

TEST_P(LinearStyles, ReplacementPreservesOutputs) {
  auto P = twoFIRProgram({1, 2, 3, 4, 5}, {0.5, -1, 2});
  OptimizerOptions O;
  O.Mode = OptMode::Linear;
  O.CodeGen = GetParam();
  auto Opt = optimize(*P, O);
  expectSameOutputs(*P, *Opt, 64, 1e-9, "linear replacement");
}

INSTANTIATE_TEST_SUITE_P(AllStyles, LinearStyles,
                         ::testing::Values(LinearCodeGenStyle::Unrolled,
                                           LinearCodeGenStyle::Banded,
                                           LinearCodeGenStyle::TunedNative,
                                           LinearCodeGenStyle::Auto));

TEST(LinearReplacement, CombinationCollapsesPipeline) {
  auto P = twoFIRProgram({1, 2, 3}, {4, 5});
  auto Combined = optimizeLinear(*P, /*Combine=*/true);
  auto Separate = optimizeLinear(*P, /*Combine=*/false);
  // Combined: source + 1 collapsed filter + sink; separate keeps both.
  EXPECT_EQ(countStreams(*Combined).Filters, 3);
  EXPECT_EQ(countStreams(*Separate).Filters, 4);
  expectSameOutputs(*P, *Combined, 48, 1e-9, "combined");
  expectSameOutputs(*P, *Separate, 48, 1e-9, "separate");
}

TEST(LinearReplacement, CombinationHalvesMultiplications) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  // The motivating example: two 8-tap FIRs collapse into one 15-tap FIR,
  // nearly halving the multiplications per output.
  // 0.4 so no combined coefficient is exactly 1.0 (unit coefficients are
  // strength-reduced by the unrolled code generator, as gcc -O2 would).
  std::vector<double> H(8, 0.4);
  auto P = twoFIRProgram(H, H);
  auto Combined = optimizeLinear(*P, true);
  MeasureOptions MO;
  MO.MeasureTime = false;
  MO.WarmupOutputs = 64;
  MO.MeasureOutputs = 512;
  double Base = measureSteadyState(*P, MO).multsPerOutput();
  double Opt = measureSteadyState(*Combined, MO).multsPerOutput();
  EXPECT_NEAR(Base, 16.0, 0.5);
  EXPECT_NEAR(Opt, 15.0, 0.5);
}

TEST(LinearReplacement, SplitJoinCollapses) {
  auto SJ = std::make_unique<SplitJoin>("sj", Splitter::duplicate(),
                                        Joiner::roundRobin({1, 1}));
  SJ->add(makeFIR({1, 2, 3}, "a"));
  SJ->add(makeFIR({4, 5, 6}, "b"));
  auto P = std::make_unique<Pipeline>("prog");
  P->add(makeCountingSource());
  P->add(std::move(SJ));
  P->add(makePrinterSink());

  auto Opt = optimizeLinear(*P, true);
  GraphCounts C = countStreams(*Opt);
  EXPECT_EQ(C.SplitJoins, 0);
  EXPECT_EQ(C.Filters, 3);
  expectSameOutputs(*P, *Opt, 64, 1e-9, "splitjoin collapse");
}

//===----------------------------------------------------------------------===//
// Frequency replacement
//===----------------------------------------------------------------------===//

class FreqVariants
    : public ::testing::TestWithParam<std::tuple<bool, FFTTier>> {};

TEST_P(FreqVariants, PreservesOutputs) {
  auto [Optimized, Tier] = GetParam();
  auto P = twoFIRProgram({1, 2, 3, 4, 5, 6, 7}, {1, -1});
  OptimizerOptions O;
  O.Mode = OptMode::Freq;
  O.Freq.Optimized = Optimized;
  O.Freq.Tier = Tier;
  auto Opt = optimize(*P, O);
  expectSameOutputs(*P, *Opt, 128, 1e-6, "frequency replacement");
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, FreqVariants,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(FFTTier::PlannedReal,
                                         FFTTier::SimpleComplex)));

TEST(FreqReplacement, DecimatorHandlesPopRateAboveOne) {
  // Expander/FIR/Compressor combine to a node with o = 3, u = 2.
  auto P = std::make_unique<Pipeline>("rateconvert");
  P->add(makeCountingSource());
  P->add(makeExpander(2));
  P->add(makeFIR({1, 2, 3, 4, 5, 6}, "LPF"));
  P->add(makeCompressor(3));
  P->add(makePrinterSink());
  auto Opt = optimizeFreq(*P, true);
  expectSameOutputs(*P, *Opt, 96, 1e-6, "freq with decimation");
}

TEST(FreqReplacement, FFTSizeOverride) {
  auto P = twoFIRProgram({1, 2, 3, 4}, {1, 1});
  OptimizerOptions O;
  O.Mode = OptMode::Freq;
  O.Freq.FFTSizeOverride = 64;
  auto Opt = optimize(*P, O);
  expectSameOutputs(*P, *Opt, 96, 1e-6, "fft size override");
}

TEST(FreqReplacement, PopLimitSkipsHighPopNodes) {
  auto P = std::make_unique<Pipeline>("radarish");
  P->add(makeCountingSource());
  P->add(makeCompressor(8)); // linear node with o = 8
  P->add(makePrinterSink());
  OptimizerOptions O;
  O.Mode = OptMode::Freq;
  O.Freq.PopLimit = 1;
  auto Opt = optimize(*P, O);
  // Nothing convertible: the graph keeps its original shape.
  EXPECT_EQ(countStreams(*Opt).Filters, 3);
  expectSameOutputs(*P, *Opt, 32, 1e-9, "pop limit");
}

TEST(FreqReplacement, ReducesMultiplicationsForLongFIR) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  auto P = std::make_unique<Pipeline>("fir64");
  P->add(makeCountingSource());
  std::vector<double> H(64);
  for (size_t I = 0; I != H.size(); ++I)
    H[I] = std::sin(0.1 * static_cast<double>(I + 1));
  P->add(makeFIR(H, "FIR64"));
  P->add(makePrinterSink());
  auto Opt = optimizeFreq(*P, true);
  expectSameOutputs(*P, *Opt, 256, 1e-6, "fir64 freq");

  MeasureOptions MO;
  MO.MeasureTime = false;
  MO.WarmupOutputs = 256;
  MO.MeasureOutputs = 2048;
  double Base = measureSteadyState(*P, MO).multsPerOutput();
  double Freq = measureSteadyState(*Opt, MO).multsPerOutput();
  EXPECT_NEAR(Base, 64.0, 1.0);
  // At 64 taps the default FFT size (128) amortizes over r = 64 outputs;
  // the reduction deepens with tap count (Figure 5-8).
  EXPECT_LT(Freq, Base * 0.75) << "expected multiplication reduction";
}

TEST(FreqReplacement, OptimizedBeatsNaive) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  auto P = std::make_unique<Pipeline>("fir32");
  P->add(makeCountingSource());
  P->add(makeFIR(std::vector<double>(32, 0.5), "FIR32"));
  P->add(makePrinterSink());

  OptimizerOptions O;
  O.Mode = OptMode::Freq;
  O.Freq.Optimized = false;
  auto Naive = optimize(*P, O);
  O.Freq.Optimized = true;
  auto Optd = optimize(*P, O);
  expectSameOutputs(*P, *Naive, 128, 1e-6, "naive freq");
  expectSameOutputs(*P, *Optd, 128, 1e-6, "optimized freq");

  MeasureOptions MO;
  MO.MeasureTime = false;
  MO.WarmupOutputs = 256;
  MO.MeasureOutputs = 2048;
  double NaiveMults = measureSteadyState(*Naive, MO).multsPerOutput();
  double OptMults = measureSteadyState(*Optd, MO).multsPerOutput();
  EXPECT_LT(OptMults, NaiveMults)
      << "partial-sum reuse must reduce multiplications per output";
}

//===----------------------------------------------------------------------===//
// Redundancy elimination
//===----------------------------------------------------------------------===//

TEST(Redundancy, Figure41Example) {
  // SimpleFIR: push(2*peek(2) + peek(1) + 2*peek(0)); pop();
  Matrix A = Matrix::fromRows({{2}, {1}, {2}});
  LinearNode N(A, Vector(1), 3, 1, 1);
  RedundancyInfo Info = analyzeRedundancy(N);
  // The newest product 2*peek(2) is reused two firings later as 2*peek(0).
  LCT Newest{2.0, 2};
  LCT Oldest{2.0, 0};
  ASSERT_EQ(Info.Reused.size(), 1u);
  EXPECT_TRUE(Info.Reused.count(Newest));
  ASSERT_TRUE(Info.CompMap.count(Oldest));
  EXPECT_TRUE(Info.CompMap.at(Oldest).first == Newest);
  EXPECT_EQ(Info.CompMap.at(Oldest).second, 2);
  EXPECT_EQ(Info.maxUse(Newest), 2);
  EXPECT_EQ(Info.minUse(Newest), 0);
}

TEST(Redundancy, FilterPreservesOutputs) {
  for (int Taps : {3, 4, 7, 8}) {
    // Symmetric coefficients like a real FIR design.
    std::vector<double> H(static_cast<size_t>(Taps));
    for (int I = 0; I != Taps; ++I)
      H[static_cast<size_t>(I)] =
          1.0 + std::min(I, Taps - 1 - I);
    auto P = std::make_unique<Pipeline>("fir");
    P->add(makeCountingSource());
    P->add(makeFIR(H, "FIR"));
    P->add(makePrinterSink());
    OptimizerOptions O;
    O.Mode = OptMode::Redundancy;
    auto Opt = optimize(*P, O);
    expectSameOutputs(*P, *Opt, 64, 1e-9,
                      "redundancy taps=" + std::to_string(Taps));
  }
}

TEST(Redundancy, SymmetricFIRSavesMultiplications) {
  // Even-length symmetric FIR: every product is reused; odd length: the
  // middle tap cannot be (the Figure 5-10 zig-zag).
  auto SymmetricFIR = [](int Taps) {
    std::vector<double> H(static_cast<size_t>(Taps));
    for (int I = 0; I != Taps; ++I)
      H[static_cast<size_t>(I)] = 1.0 + std::min(I, Taps - 1 - I);
    Matrix A(static_cast<size_t>(Taps), 1);
    for (int I = 0; I != Taps; ++I)
      A.at(static_cast<size_t>(Taps - 1 - I), 0) = H[static_cast<size_t>(I)];
    return LinearNode(A, Vector(1), Taps, 1, 1);
  };
  LinearNode Even = SymmetricFIR(8);
  LinearNode Odd = SymmetricFIR(9);
  double FracEven = analyzeRedundancy(Even).redundantFraction(Even);
  double FracOdd = analyzeRedundancy(Odd).redundantFraction(Odd);
  EXPECT_GT(FracEven, 0.4);
  EXPECT_GT(FracEven, FracOdd);
}

TEST(Redundancy, ReducesCountedMultiplications) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  std::vector<double> H = {1, 2, 3, 3, 2, 1}; // fully symmetric, 6 taps
  auto P = std::make_unique<Pipeline>("fir");
  P->add(makeCountingSource());
  P->add(makeFIR(H, "FIR"));
  P->add(makePrinterSink());
  OptimizerOptions O;
  O.Mode = OptMode::Redundancy;
  auto Opt = optimize(*P, O);
  MeasureOptions MO;
  MO.MeasureTime = false;
  MO.WarmupOutputs = 64;
  MO.MeasureOutputs = 1024;
  double Base = measureSteadyState(*P, MO).multsPerOutput();
  double Red = measureSteadyState(*Opt, MO).multsPerOutput();
  EXPECT_NEAR(Base, 6.0, 0.2);
  EXPECT_NEAR(Red, 3.0, 0.3) << "half the products should be cached";
}

//===----------------------------------------------------------------------===//
// Optimization selection
//===----------------------------------------------------------------------===//

TEST(Selection, PicksFrequencyForLongFIR) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  auto P = std::make_unique<Pipeline>("fir");
  P->add(makeCountingSource());
  P->add(makeFIR(std::vector<double>(128, 0.25), "FIR128"));
  P->add(makePrinterSink());
  auto Opt = optimizeAutoSel(*P);
  expectSameOutputs(*P, *Opt, 128, 1e-6, "autosel fir");

  MeasureOptions MO;
  MO.MeasureTime = false;
  MO.WarmupOutputs = 256;
  MO.MeasureOutputs = 1024;
  double Base = measureSteadyState(*P, MO).multsPerOutput();
  double Sel = measureSteadyState(*Opt, MO).multsPerOutput();
  EXPECT_LT(Sel, Base / 2) << "selection should have chosen frequency";
}

TEST(Selection, AvoidsExpandingBeamformLikeNodes) {
  // A Beamform-like node (pop 24, push 2) followed by an FIR: collapsing
  // duplicates most of the Beamform work; the DP must keep them apart.
  using namespace slin::wir;
  using namespace slin::wir::build;
  std::vector<double> W(24);
  for (size_t I = 0; I != 24; ++I)
    W[I] = 0.1 * static_cast<double>(I + 1);
  StmtList Body;
  for (int J = 0; J != 2; ++J) {
    ExprPtr Sum;
    for (int P2 = 0; P2 != 12; ++P2) {
      ExprPtr T = mul(cst(W[static_cast<size_t>(12 * J + P2)]),
                      peek(12 * J + P2));
      Sum = Sum ? add(std::move(Sum), std::move(T)) : std::move(T);
    }
    Body.push_back(push(std::move(Sum)));
  }
  for (int I = 0; I != 24; ++I)
    Body.push_back(popStmt());
  auto Beamform = std::make_unique<Filter>(
      "Beamform", std::vector<FieldDef>{},
      WorkFunction(24, 24, 2, std::move(Body)));

  auto P = std::make_unique<Pipeline>("radarish");
  P->add(makeCountingSource());
  P->add(std::move(Beamform));
  P->add(makeFIR({1, 2, 3, 4}, "FIR"));
  P->add(makePrinterSink());

  auto Opt = optimizeAutoSel(*P);
  expectSameOutputs(*P, *Opt, 64, 1e-6, "autosel beamform");
  // The collapsed Beamform∘FIR node would peek 24*4-ish items; selection
  // must not have collapsed them into a single huge filter. We verify by
  // cost: selection's multiplication count must not exceed maximal
  // linear replacement's.
  auto MaxLinear = optimizeLinear(*P, true);
  MeasureOptions MO;
  MO.MeasureTime = false;
  MO.WarmupOutputs = 64;
  MO.MeasureOutputs = 512;
  double Sel = measureSteadyState(*Opt, MO).multsPerOutput();
  double Lin = measureSteadyState(*MaxLinear, MO).multsPerOutput();
  EXPECT_LE(Sel, Lin * 1.05);
}

TEST(Selection, HandlesSplitJoins) {
  auto SJ = std::make_unique<SplitJoin>("eq", Splitter::duplicate(),
                                        Joiner::roundRobin({1, 1, 1}));
  for (int K = 0; K != 3; ++K) {
    std::vector<double> H(8);
    for (int I = 0; I != 8; ++I)
      H[static_cast<size_t>(I)] = std::cos(0.2 * (K + 1) * (I + 1));
    SJ->add(makeFIR(H, "band" + std::to_string(K)));
  }
  auto P = std::make_unique<Pipeline>("bank");
  P->add(makeCountingSource());
  P->add(std::move(SJ));
  P->add(makeAdder(3));
  P->add(makePrinterSink());

  auto Opt = optimizeAutoSel(*P);
  expectSameOutputs(*P, *Opt, 96, 1e-6, "autosel splitjoin");
}

TEST(Selection, FeedbackLoopChildrenOptimized) {
  auto FB = std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeSumDiffFilter(),
      makeIdentity("loop"), Splitter::roundRobin({1, 1}),
      std::vector<double>{0});
  auto P = std::make_unique<Pipeline>("prog");
  P->add(makeCountingSource());
  P->add(std::move(FB));
  P->add(makePrinterSink());
  auto Opt = optimizeAutoSel(*P);
  expectSameOutputs(*P, *Opt, 48, 1e-9, "autosel feedback");
}

} // namespace
