//===- tests/wir_test.cpp - Work-IR builder/printer/interpreter tests -----==//

#include "support/OpCounters.h"
#include "wir/Build.h"
#include "wir/Interp.h"

#include <gtest/gtest.h>

using namespace slin;
using namespace slin::wir;
using namespace slin::wir::build;

namespace {

/// Builds the FIR work function of Figure 1-3 over a const field "h".
WorkFunction makeFIRWork(int N) {
  return WorkFunction(
      N, 1, 1,
      stmts(assign("sum", cst(0)),
            loop("i", cst(0), cst(N),
                 stmts(assign("sum", add(vr("sum"), mul(fldAt("h", vr("i")),
                                                        peek(vr("i"))))))),
            push(vr("sum")), popStmt()));
}

TEST(WorkIR, CloneIsDeepAndEqualText) {
  WorkFunction W = makeFIRWork(4);
  WorkFunction C = W.clone();
  EXPECT_EQ(print(W), print(C));
  // Mutating the clone must not affect the original.
  C.Body.clear();
  EXPECT_NE(print(W), print(C));
}

TEST(WorkIR, PrinterGolden) {
  WorkFunction W(3, 1, 2,
                 stmts(push(add(mul(cst(3), peek(2)), mul(cst(5), peek(1)))),
                       push(add(add(mul(cst(2), peek(2)), peek(0)), cst(6))),
                       popStmt()));
  EXPECT_EQ(print(W),
            "work peek 3 pop 1 push 2 {\n"
            "  push(((3 * peek(2)) + (5 * peek(1))));\n"
            "  push((((2 * peek(2)) + peek(0)) + 6));\n"
            "  pop();\n"
            "}\n");
}

TEST(WorkIR, InterpretFIR) {
  std::vector<FieldDef> Fields = {FieldDef::constArray("h", {1, 2, 3, 4})};
  WorkFunction W = makeFIRWork(4);
  FieldStore State(Fields);
  VectorTape T({10, 20, 30, 40, 50});
  interpret(W, Fields, State, T);
  // sum = 1*10 + 2*20 + 3*30 + 4*40 = 300; one item popped.
  ASSERT_EQ(T.Output.size(), 1u);
  EXPECT_DOUBLE_EQ(T.Output[0], 300);
  EXPECT_EQ(T.consumed(), 1u);
  interpret(W, Fields, State, T);
  ASSERT_EQ(T.Output.size(), 2u);
  EXPECT_DOUBLE_EQ(T.Output[1], 1 * 20 + 2 * 30 + 3 * 40 + 4 * 50);
}

TEST(WorkIR, InterpretCountsOps) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  std::vector<FieldDef> Fields = {FieldDef::constArray("h", {1, 2, 3, 4})};
  WorkFunction W = makeFIRWork(4);
  FieldStore State(Fields);
  VectorTape T({1, 1, 1, 1});
  ops::CountingScope Scope;
  ops::reset();
  interpret(W, Fields, State, T);
  EXPECT_EQ(ops::counts().Muls, 4u);
  EXPECT_EQ(ops::counts().Adds, 4u);
}

TEST(WorkIR, MutableFieldPersistsAcrossFirings) {
  // FloatSource: push(x++) with mutable scalar field x.
  std::vector<FieldDef> Fields = {FieldDef::mutableScalar("x", 0)};
  WorkFunction W(0, 0, 1,
                 stmts(push(fld("x")), fldAssign("x", add(fld("x"), cst(1)))));
  FieldStore State(Fields);
  VectorTape T({});
  for (int I = 0; I != 5; ++I)
    interpret(W, Fields, State, T);
  EXPECT_EQ(T.Output, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(WorkIR, BranchesAndComparisons) {
  // ThresholdDetector-like filter: push(1) if input > 0.5 else push(0).
  WorkFunction W(1, 1, 1,
                 stmts(assign("t", pop()),
                       ifStmt(gt(vr("t"), cst(0.5)), stmts(push(cst(1))),
                              stmts(push(cst(0))))));
  std::vector<FieldDef> NoFields;
  FieldStore State(NoFields);
  VectorTape T({0.2, 0.9, 0.5, 0.7});
  for (int I = 0; I != 4; ++I)
    interpret(W, NoFields, State, T);
  EXPECT_EQ(T.Output, (std::vector<double>{0, 1, 0, 1}));
}

TEST(WorkIR, LocalArrays) {
  // Reverses a window of 3 via a local array.
  WorkFunction W(3, 3, 3,
                 stmts(localArray("buf", 3),
                       loop("i", cst(0), cst(3),
                            stmts(arrAssign("buf", vr("i"), pop()))),
                       loop("i", cst(0), cst(3),
                            stmts(push(arrAt("buf", sub(cst(2), vr("i"))))))));
  std::vector<FieldDef> NoFields;
  FieldStore State(NoFields);
  VectorTape T({1, 2, 3});
  interpret(W, NoFields, State, T);
  EXPECT_EQ(T.Output, (std::vector<double>{3, 2, 1}));
}

TEST(WorkIR, IntrinsicsAndModulo) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  WorkFunction W(0, 0, 3,
                 stmts(push(sqrtE(cst(9))), push(mod(cst(7), cst(3))),
                       push(absE(neg(cst(2))))));
  std::vector<FieldDef> NoFields;
  FieldStore State(NoFields);
  VectorTape T({});
  ops::CountingScope Scope;
  ops::reset();
  interpret(W, NoFields, State, T);
  EXPECT_EQ(T.Output, (std::vector<double>{3, 1, 2}));
  EXPECT_EQ(ops::counts().Trans, 2u); // sqrt, abs
  EXPECT_EQ(ops::counts().Divs, 1u);  // fmod counted with divides
}

TEST(WorkIR, PrintRoutesToTape) {
  WorkFunction W(1, 1, 0, stmts(printStmt(pop())));
  std::vector<FieldDef> NoFields;
  FieldStore State(NoFields);
  VectorTape T({42, 43});
  interpret(W, NoFields, State, T);
  interpret(W, NoFields, State, T);
  EXPECT_EQ(T.Printed, (std::vector<double>{42, 43}));
  EXPECT_TRUE(T.Output.empty());
}

TEST(WorkIRDeath, UndefinedVariableIsFatal) {
  WorkFunction W(0, 0, 1, stmts(push(vr("nope"))));
  std::vector<FieldDef> NoFields;
  FieldStore State(NoFields);
  VectorTape T({});
  EXPECT_DEATH(interpret(W, NoFields, State, T), "undefined variable");
}

TEST(WorkIRDeath, AssignToConstFieldIsFatal) {
  std::vector<FieldDef> Fields = {FieldDef::constScalar("c", 1)};
  WorkFunction W(0, 0, 0, stmts(fldAssign("c", cst(2))));
  FieldStore State(Fields);
  VectorTape T({});
  EXPECT_DEATH(interpret(W, Fields, State, T), "non-mutable field");
}

} // namespace
