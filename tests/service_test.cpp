//===- tests/service_test.cpp - Stream service daemon and APIs ------------===//
//
// The serving stack end to end: RuntimeConfig (the one-parse SLIN_* API),
// StatsRegistry (the unified counter snapshot), the wire protocol's
// encode/decode and its untrusted-input rejection, and a live Server on a
// Unix socket — warm serving bit-identical to a local executor, latency
// vs throughput mode, per-request deadlines under an injected hang,
// queue-cap admission (Overloaded), native-engine degradation, and the
// prefetch path that makes a daemon restart zero compile passes.
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "codegen/NativeModule.h"
#include "compiler/ArtifactStore.h"
#include "compiler/Pipeline.h"
#include "exec/CompiledExecutor.h"
#include "service/Admission.h"
#include "service/Client.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "support/FaultInjection.h"
#include "support/RuntimeConfig.h"
#include "support/StatsRegistry.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace slin;
using namespace slin::service;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

struct FaultGuard {
  FaultGuard() { faults::reset(); }
  ~FaultGuard() { faults::reset(); }
};

/// A scoped artifact directory for the process-global store (the service
/// tests exercise the prefetch path against it).
class StoreGuard {
public:
  StoreGuard() {
    Dir = (std::filesystem::temp_directory_path() /
           ("slin-service-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(Counter++)))
              .string();
    ArtifactStore::setGlobalDir(Dir);
    ProgramCache::global().clear();
    ProgramCache::global().resetStats();
  }
  ~StoreGuard() {
    ArtifactStore::setGlobalDir("");
    ProgramCache::global().clear();
    ProgramCache::global().resetStats();
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }

private:
  static int Counter;
  std::string Dir;
};

int StoreGuard::Counter = 0;

std::string freshSocketPath() {
  static int Counter = 0;
  return (std::filesystem::temp_directory_path() /
          ("slin-service-test-" + std::to_string(::getpid()) + "-" +
           std::to_string(Counter++) + ".sock"))
      .string();
}

/// The first \p N outputs of graph \p Name compiled locally with the
/// service's own options — the bit-identity reference for served runs.
std::vector<double> localReference(const std::string &Name, size_t N,
                                   OptMode Mode) {
  StreamPtr Root;
  for (const auto &B : apps::allBenchmarks())
    if (B.Name == Name)
      Root = B.Build();
  EXPECT_NE(Root, nullptr);
  PipelineOptions Opts;
  Opts.Mode = Mode;
  Opts.Exec.Eng = Engine::Compiled;
  CompileResult R = compileStream(*Root, Opts);
  CompiledExecutor E(R.Program);
  E.run(N);
  std::vector<double> Out = R.Program->graph().RootProducesOutput
                                ? E.outputSnapshot()
                                : E.printed();
  if (Out.size() > N)
    Out.resize(N);
  return Out;
}

std::vector<double> firstN(std::vector<double> V, size_t N) {
  EXPECT_GE(V.size(), N);
  V.resize(N);
  return V;
}

//===----------------------------------------------------------------------===//
// RuntimeConfig: the unified SLIN_* environment API
//===----------------------------------------------------------------------===//

TEST(RuntimeConfig, FromEnvParsesEveryKnob) {
  ::setenv("SLIN_RUN_DEADLINE_MS", "1234", 1);
  ::setenv("SLIN_NO_CACHE", "", 1); // set-but-empty still disables
  ::setenv("SLIN_VERIFY", "1", 1);
  ::setenv("SLIN_FAULT", "exec-hang:1", 1);
  RuntimeConfig C = RuntimeConfig::fromEnv();
  EXPECT_EQ(C.RunDeadlineMillis, 1234);
  EXPECT_TRUE(C.NoCache);
  EXPECT_TRUE(C.Verify);
  EXPECT_EQ(C.FaultSpec, "exec-hang:1");

  ::setenv("SLIN_VERIFY", "0", 1); // "0" means off, unlike NO_CACHE
  EXPECT_FALSE(RuntimeConfig::fromEnv().Verify);

  ::unsetenv("SLIN_RUN_DEADLINE_MS");
  ::unsetenv("SLIN_NO_CACHE");
  ::unsetenv("SLIN_VERIFY");
  ::unsetenv("SLIN_FAULT");
  C = RuntimeConfig::fromEnv();
  EXPECT_EQ(C.RunDeadlineMillis, 0);
  EXPECT_FALSE(C.NoCache);
  EXPECT_TRUE(C.FaultSpec.empty());
}

TEST(RuntimeConfig, SnapshotRefreshesOnDemandNotPerRead) {
  ::unsetenv("SLIN_RUN_DEADLINE_MS");
  RuntimeConfig::refreshFromEnv();
  EXPECT_EQ(RuntimeConfig::current().RunDeadlineMillis, 0);

  // Mutating the environment does NOT move the snapshot...
  ::setenv("SLIN_RUN_DEADLINE_MS", "77", 1);
  EXPECT_EQ(RuntimeConfig::current().RunDeadlineMillis, 0);
  // ...until a refresh republishes it.
  RuntimeConfig::refreshFromEnv();
  EXPECT_EQ(RuntimeConfig::current().RunDeadlineMillis, 77);

  ::unsetenv("SLIN_RUN_DEADLINE_MS");
  RuntimeConfig::refreshFromEnv();
}

TEST(RuntimeConfig, OverridesLayerWithoutMutatingTheBase) {
  RuntimeConfig Base;
  Base.RunDeadlineMillis = 100;
  Base.NoNative = false;

  RuntimeConfig::Overrides O;
  O.RunDeadlineMillis = 250;
  O.NoNative = true;
  RuntimeConfig Derived = Base.withOverrides(O);
  EXPECT_EQ(Derived.RunDeadlineMillis, 250);
  EXPECT_TRUE(Derived.NoNative);
  EXPECT_EQ(Base.RunDeadlineMillis, 100); // untouched
  EXPECT_FALSE(Base.NoNative);

  RuntimeConfig Same = Base.withOverrides(RuntimeConfig::Overrides());
  EXPECT_EQ(Same.RunDeadlineMillis, 100);
}

//===----------------------------------------------------------------------===//
// StatsRegistry: the unified counter snapshot
//===----------------------------------------------------------------------===//

TEST(StatsRegistrySnapshot, PrefixesSortsAndUnregisters) {
  StatsRegistry &Reg = StatsRegistry::global();
  auto Count = [&](const std::string &Name) {
    int N = 0;
    for (const auto &KV : Reg.snapshot())
      if (KV.first == Name)
        ++N;
    return N;
  };
  {
    StatsRegistry::Registration R("svc-test", [](StatsRegistry::Counters &C) {
      C.emplace_back("zeta", 7);
      C.emplace_back("alpha", 1);
    });
    EXPECT_EQ(Count("svc-test.zeta"), 1);
    EXPECT_EQ(Count("svc-test.alpha"), 1);
    StatsRegistry::Counters Snap = Reg.snapshot();
    EXPECT_TRUE(std::is_sorted(
        Snap.begin(), Snap.end(),
        [](const auto &A, const auto &B) { return A.first < B.first; }));
  }
  EXPECT_EQ(Count("svc-test.zeta"), 0); // RAII unregistration
}

TEST(StatsRegistrySnapshot, BuiltInSubsystemsAreRegistered) {
  StatsRegistry::Counters Snap = StatsRegistry::global().snapshot();
  auto Has = [&](const std::string &Name) {
    for (const auto &KV : Snap)
      if (KV.first == Name)
        return true;
    return false;
  };
  EXPECT_TRUE(Has("program-cache.hits"));
  EXPECT_TRUE(Has("program-cache.misses"));
  EXPECT_TRUE(Has("native-cache.compiles"));
  EXPECT_TRUE(Has("analysis.extraction_hits"));
}

TEST(StatsRegistrySnapshot, JsonRendersFlatObject) {
  StatsRegistry::Counters C;
  C.emplace_back("a.x", 1);
  C.emplace_back("b.y", 22);
  EXPECT_EQ(StatsRegistry::json(C), "{\"a.x\":1,\"b.y\":22}");
}

//===----------------------------------------------------------------------===//
// Wire protocol: round-trips and untrusted-input rejection
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTripsEveryKind) {
  Request Req;
  Req.Kind = MsgKind::Run;
  Req.Run.Graph = "FIR";
  Req.Run.Eng = Engine::Parallel;
  Req.Run.Latency = true;
  Req.Run.NOutputs = 4096;
  Req.Run.DeadlineMillis = 1500;
  Req.Run.CountOps = true;
  Req.Run.Input = {1.5, -2.25, 3.0};

  serial::Writer W;
  encodeRequest(W, Req);
  Expected<Request> ER = decodeRequest(W.bytes());
  ASSERT_TRUE(ER.hasValue()) << ER.status().str();
  Request Back = ER.take();
  EXPECT_EQ(Back.Kind, MsgKind::Run);
  EXPECT_EQ(Back.Run.Graph, "FIR");
  EXPECT_EQ(Back.Run.Eng, Engine::Parallel);
  EXPECT_TRUE(Back.Run.Latency);
  EXPECT_EQ(Back.Run.NOutputs, 4096u);
  EXPECT_EQ(Back.Run.DeadlineMillis, 1500);
  EXPECT_TRUE(Back.Run.CountOps);
  EXPECT_EQ(Back.Run.Input, Req.Run.Input);

  for (MsgKind K : {MsgKind::Ping, MsgKind::Stats, MsgKind::ListGraphs,
                    MsgKind::Shutdown}) {
    Request Small;
    Small.Kind = K;
    serial::Writer SW;
    encodeRequest(SW, Small);
    Expected<Request> ES = decodeRequest(SW.bytes());
    ASSERT_TRUE(ES.hasValue());
    EXPECT_EQ(ES.take().Kind, K);
  }
}

TEST(Protocol, ResponseRoundTripsRunStatsAndLists) {
  Response Resp;
  Resp.Kind = MsgKind::Run;
  Resp.Run.St = Status(ErrorCode::Timeout, "run deadline expired");
  Resp.Run.Degraded = true;
  Resp.Run.DegradeReason = "native codegen unavailable";
  Resp.Run.Outputs = {0.5, 1.5};
  Resp.Run.Flops = 12345;
  Resp.Run.ServerSeconds = 0.25;
  Resp.Run.FirstOutputSeconds = 0.01;

  serial::Writer W;
  encodeResponse(W, Resp);
  Expected<Response> ER = decodeResponse(W.bytes());
  ASSERT_TRUE(ER.hasValue()) << ER.status().str();
  Response Back = ER.take();
  EXPECT_TRUE(Back.St.isOk());
  EXPECT_EQ(Back.Run.St.code(), ErrorCode::Timeout);
  EXPECT_TRUE(Back.Run.Degraded);
  EXPECT_EQ(Back.Run.DegradeReason, "native codegen unavailable");
  EXPECT_EQ(Back.Run.Outputs, Resp.Run.Outputs);
  EXPECT_EQ(Back.Run.Flops, 12345u);

  Response Stats;
  Stats.Kind = MsgKind::Stats;
  Stats.Counters = {{"service.requests", 7}, {"service.served", 6}};
  serial::Writer SW;
  encodeResponse(SW, Stats);
  Expected<Response> ES = decodeResponse(SW.bytes());
  ASSERT_TRUE(ES.hasValue());
  EXPECT_EQ(ES.take().Counters, Stats.Counters);

  Response List;
  List.Kind = MsgKind::ListGraphs;
  List.Graphs = {"FIR", "FilterBank"};
  serial::Writer LW;
  encodeResponse(LW, List);
  Expected<Response> EL = decodeResponse(LW.bytes());
  ASSERT_TRUE(EL.hasValue());
  EXPECT_EQ(EL.take().Graphs, List.Graphs);
}

TEST(Protocol, MalformedPayloadsAreCorruptNeverCrashes) {
  // Unknown kind byte.
  EXPECT_EQ(decodeRequest({0x00}).status().code(), ErrorCode::Corrupt);
  EXPECT_EQ(decodeRequest({0x77}).status().code(), ErrorCode::Corrupt);
  // Empty payload.
  EXPECT_EQ(decodeRequest({}).status().code(), ErrorCode::Corrupt);

  // A valid request with trailing garbage must be rejected whole.
  Request Req;
  Req.Kind = MsgKind::Ping;
  serial::Writer W;
  encodeRequest(W, Req);
  std::vector<uint8_t> Tampered = W.bytes();
  Tampered.push_back(0xAB);
  EXPECT_EQ(decodeRequest(Tampered).status().code(), ErrorCode::Corrupt);

  // Truncations of a real Run request: every prefix must fail cleanly.
  Request Run;
  Run.Kind = MsgKind::Run;
  Run.Run.Graph = "FIR";
  Run.Run.Input = {1.0, 2.0};
  serial::Writer RW;
  encodeRequest(RW, Run);
  std::vector<uint8_t> Full = RW.bytes();
  for (size_t N = 1; N < Full.size(); ++N) {
    std::vector<uint8_t> Cut(Full.begin(), Full.begin() + N);
    EXPECT_EQ(decodeRequest(Cut).status().code(), ErrorCode::Corrupt);
  }

  // A bad engine byte inside an otherwise-valid request.
  Expected<Request> EB = decodeRequest(Full);
  ASSERT_TRUE(EB.hasValue());
  // Graph "FIR" is encoded as u32 len + bytes right after the kind; the
  // engine byte follows it.
  std::vector<uint8_t> BadEngine = Full;
  BadEngine[1 + 4 + 3] = 0x7F;
  EXPECT_EQ(decodeRequest(BadEngine).status().code(), ErrorCode::Corrupt);

  // Responses: a stats count larger than the remaining bytes could ever
  // hold must be rejected before any allocation-by-count.
  serial::Writer SW;
  SW.u8(static_cast<uint8_t>(MsgKind::Stats));
  SW.u8(static_cast<uint8_t>(ErrorCode::Ok));
  SW.str("");
  SW.u32(0x7FFFFFFF);
  EXPECT_EQ(decodeResponse(SW.bytes()).status().code(), ErrorCode::Corrupt);
}

//===----------------------------------------------------------------------===//
// Live server on a Unix socket
//===----------------------------------------------------------------------===//

TEST(ServiceServer, ServesWarmRunsBitIdenticalToLocalExecution) {
  FaultGuard G;
  std::string Path = freshSocketPath();
  ServerConfig Cfg;
  Cfg.UnixPath = Path;
  Cfg.Service.Graphs = {"FIR"};
  Cfg.Service.Mode = OptMode::Linear;
  Server Srv(Cfg);
  ASSERT_TRUE(Srv.start().isOk());

  Expected<Client> EC = Client::connectUnix(Path);
  ASSERT_TRUE(EC.hasValue()) << EC.status().str();
  Client C = EC.take();

  EXPECT_TRUE(C.ping().isOk());
  Expected<std::vector<std::string>> EG = C.listGraphs();
  ASSERT_TRUE(EG.hasValue());
  EXPECT_EQ(EG.take(), std::vector<std::string>{"FIR"});

  const size_t N = 128;
  std::vector<double> Ref = localReference("FIR", N, OptMode::Linear);

  RunRequest R;
  R.Graph = "FIR";
  R.NOutputs = N;
  R.CountOps = true;
  Expected<RunResponse> ER = C.run(R);
  ASSERT_TRUE(ER.hasValue()) << ER.status().str();
  RunResponse Resp = ER.take();
  ASSERT_TRUE(Resp.St.isOk()) << Resp.St.str();
  EXPECT_FALSE(Resp.Degraded);
  EXPECT_EQ(firstN(Resp.Outputs, N), Ref);
  EXPECT_GT(Resp.Flops, 0u);
  EXPECT_GT(Resp.ServerSeconds, 0.0);

  // Unknown graph: an admission refusal travels as a reply and the
  // connection (and daemon) survive.
  RunRequest Bad;
  Bad.Graph = "NoSuchGraph";
  Expected<RunResponse> EBad = C.run(Bad);
  ASSERT_TRUE(EBad.hasValue());
  EXPECT_FALSE(EBad.take().St.isOk());
  EXPECT_TRUE(C.ping().isOk());

  Srv.stop();
}

TEST(ServiceServer, LatencyModeSameOutputsBoundedFirstOutput) {
  FaultGuard G;
  std::string Path = freshSocketPath();
  ServerConfig Cfg;
  Cfg.UnixPath = Path;
  Cfg.Service.Graphs = {"FIR"};
  Cfg.Service.Mode = OptMode::Linear;
  Server Srv(Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  Expected<Client> EC = Client::connectUnix(Path);
  ASSERT_TRUE(EC.hasValue());
  Client C = EC.take();

  const size_t N = 96;
  RunRequest Through;
  Through.Graph = "FIR";
  Through.NOutputs = N;
  Expected<RunResponse> ET = C.run(Through);
  ASSERT_TRUE(ET.hasValue());
  RunResponse TResp = ET.take();
  ASSERT_TRUE(TResp.St.isOk());

  RunRequest Lat = Through;
  Lat.Latency = true;
  Expected<RunResponse> EL = C.run(Lat);
  ASSERT_TRUE(EL.hasValue());
  RunResponse LResp = EL.take();
  ASSERT_TRUE(LResp.St.isOk());

  // Same stream, bit for bit — latency mode changes scheduling, never
  // values — and the first output lands before the full batch would.
  EXPECT_EQ(firstN(LResp.Outputs, N), firstN(TResp.Outputs, N));
  EXPECT_GT(LResp.FirstOutputSeconds, 0.0);
  EXPECT_LE(LResp.FirstOutputSeconds, LResp.ServerSeconds);
  // Throughput mode overshoots to batch granularity; single-iteration
  // firing stops at iteration granularity, never beyond the batch.
  EXPECT_LE(LResp.Outputs.size(), TResp.Outputs.size());

  Srv.stop();
}

TEST(ServiceServer, DeadlineExpiryUnderInjectedHangIsATimeoutReply) {
  FaultGuard G;
  std::string Path = freshSocketPath();
  ServerConfig Cfg;
  Cfg.UnixPath = Path;
  Cfg.Service.Graphs = {"FIR"};
  Cfg.Service.Mode = OptMode::Linear;
  Server Srv(Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  Expected<Client> EC = Client::connectUnix(Path);
  ASSERT_TRUE(EC.hasValue());
  Client C = EC.take();

  faults::arm(faults::Point::ExecHang, 1);
  RunRequest R;
  R.Graph = "FIR";
  R.NOutputs = 64;
  R.DeadlineMillis = 150;
  Expected<RunResponse> ER = C.run(R);
  ASSERT_TRUE(ER.hasValue()) << ER.status().str();
  RunResponse Resp = ER.take();
  EXPECT_EQ(Resp.St.code(), ErrorCode::Timeout) << Resp.St.str();

  // The worker and the daemon both survived; the next request serves.
  Expected<RunResponse> EAgain = C.run(R);
  ASSERT_TRUE(EAgain.hasValue());
  EXPECT_TRUE(EAgain.take().St.isOk());

  Srv.stop();
}

TEST(ServiceServer, QueueCapRefusesWithOverloaded) {
  FaultGuard G;
  std::string Path = freshSocketPath();
  ServerConfig Cfg;
  Cfg.UnixPath = Path;
  Cfg.Service.Graphs = {"FIR"};
  Cfg.Service.Mode = OptMode::Linear;
  Cfg.Service.MaxQueueDepth = 0; // admit nothing: deterministic refusal
  Server Srv(Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  Expected<Client> EC = Client::connectUnix(Path);
  ASSERT_TRUE(EC.hasValue());
  Client C = EC.take();

  RunRequest R;
  R.Graph = "FIR";
  Expected<RunResponse> ER = C.run(R);
  ASSERT_TRUE(ER.hasValue());
  EXPECT_EQ(ER.take().St.code(), ErrorCode::Overloaded);
  EXPECT_TRUE(C.ping().isOk()); // refusal, not disconnection

  EXPECT_GE(Srv.admission().counters().Rejected, 1u);
  Srv.stop();
}

TEST(ServiceServer, NativeRequestDegradesToCompiledWhenUnavailable) {
  FaultGuard G;
  // SLIN_NO_NATIVE: the config-level kill switch; the service must
  // serve the request anyway, one rung down, and say so.
  ::setenv("SLIN_NO_NATIVE", "1", 1);
  RuntimeConfig::refreshFromEnv();
  codegen::NativeModuleCache::global().clear();

  std::string Path = freshSocketPath();
  ServerConfig Cfg;
  Cfg.UnixPath = Path;
  Cfg.Service.Graphs = {"FIR"};
  Cfg.Service.Mode = OptMode::Linear;
  Server Srv(Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  Expected<Client> EC = Client::connectUnix(Path);
  ASSERT_TRUE(EC.hasValue());
  Client C = EC.take();

  const size_t N = 64;
  std::vector<double> Ref = localReference("FIR", N, OptMode::Linear);
  RunRequest R;
  R.Graph = "FIR";
  R.NOutputs = N;
  R.Eng = Engine::Native;
  Expected<RunResponse> ER = C.run(R);
  ASSERT_TRUE(ER.hasValue());
  RunResponse Resp = ER.take();
  ASSERT_TRUE(Resp.St.isOk()) << Resp.St.str();
  EXPECT_TRUE(Resp.Degraded);
  EXPECT_FALSE(Resp.DegradeReason.empty());
  EXPECT_EQ(firstN(Resp.Outputs, N), Ref);

  Srv.stop();
  ::unsetenv("SLIN_NO_NATIVE");
  RuntimeConfig::refreshFromEnv();
  codegen::NativeModuleCache::global().clear();
}

TEST(ServiceServer, StatsRequestSnapshotsServiceAndCacheCounters) {
  FaultGuard G;
  std::string Path = freshSocketPath();
  ServerConfig Cfg;
  Cfg.UnixPath = Path;
  Cfg.Service.Graphs = {"FIR"};
  Cfg.Service.Mode = OptMode::Linear;
  Server Srv(Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  Expected<Client> EC = Client::connectUnix(Path);
  ASSERT_TRUE(EC.hasValue());
  Client C = EC.take();

  RunRequest R;
  R.Graph = "FIR";
  R.NOutputs = 32;
  ASSERT_TRUE(C.run(R).hasValue());

  Expected<StatsRegistry::Counters> ES = C.stats();
  ASSERT_TRUE(ES.hasValue()) << ES.status().str();
  StatsRegistry::Counters Snap = ES.take();
  auto Value = [&](const std::string &Name) -> int64_t {
    for (const auto &KV : Snap)
      if (KV.first == Name)
        return static_cast<int64_t>(KV.second);
    return -1;
  };
  EXPECT_GE(Value("service.requests"), 1);
  EXPECT_GE(Value("service.served"), 1);
  EXPECT_EQ(Value("service.rejected"), 0);
  EXPECT_GE(Value("service.pool_served"), 1);
  // The unified snapshot carries the cache subsystems too.
  EXPECT_GE(Value("program-cache.hits"), 0);
  EXPECT_GE(Value("native-cache.compiles"), 0);
  EXPECT_GE(Value("analysis.extraction_hits"), 0);

  Srv.stop();
}

TEST(ServiceServer, MalformedFrameGetsErrorReplyThenDisconnect) {
  FaultGuard G;
  std::string Path = freshSocketPath();
  ServerConfig Cfg;
  Cfg.UnixPath = Path;
  Cfg.Service.Graphs = {"FIR"};
  Cfg.Service.Mode = OptMode::Linear;
  Server Srv(Cfg);
  ASSERT_TRUE(Srv.start().isOk());

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Path.c_str());
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);

  // A frame whose payload is garbage: the server must answer with a
  // protocol error and close — never crash.
  ASSERT_TRUE(writeFrame(Fd, {0xFF, 0xEE, 0xDD}).isOk());
  std::vector<uint8_t> Reply;
  ASSERT_TRUE(readFrame(Fd, Reply).isOk());
  Expected<Response> ER = decodeResponse(Reply);
  ASSERT_TRUE(ER.hasValue() || ER.status().code() == ErrorCode::Corrupt);
  if (ER.hasValue())
    EXPECT_EQ(ER.take().St.code(), ErrorCode::Corrupt);

  // The connection is gone afterwards...
  bool Closed = false;
  std::vector<uint8_t> Nothing;
  EXPECT_FALSE(readFrame(Fd, Nothing, &Closed).isOk());
  ::close(Fd);

  // ...but the daemon is not.
  Expected<Client> EC = Client::connectUnix(Path);
  ASSERT_TRUE(EC.hasValue());
  EXPECT_TRUE(EC.take().ping().isOk());
  Srv.stop();
}

TEST(ServiceServer, TcpLoopbackWithEphemeralPort) {
  FaultGuard G;
  ServerConfig Cfg;
  Cfg.TcpPort = 0; // ephemeral: the OS picks, tcpPort() reports
  Cfg.Service.Graphs = {"FIR"};
  Cfg.Service.Mode = OptMode::Linear;
  Server Srv(Cfg);
  ASSERT_TRUE(Srv.start().isOk());
  ASSERT_GT(Srv.tcpPort(), 0);

  Expected<Client> EC = Client::connectTcp(Srv.tcpPort());
  ASSERT_TRUE(EC.hasValue()) << EC.status().str();
  Client C = EC.take();
  EXPECT_TRUE(C.ping().isOk());
  Expected<std::vector<std::string>> EG = C.listGraphs();
  ASSERT_TRUE(EG.hasValue());
  EXPECT_EQ(EG.take(), std::vector<std::string>{"FIR"});
  Srv.stop();
}

TEST(ServiceServer, ClientShutdownRequestStopsTheServeLoop) {
  FaultGuard G;
  std::string Path = freshSocketPath();
  ServerConfig Cfg;
  Cfg.UnixPath = Path;
  Cfg.Service.Graphs = {"FIR"};
  Cfg.Service.Mode = OptMode::Linear;
  Server Srv(Cfg);
  ASSERT_TRUE(Srv.start().isOk());

  Expected<Client> EC = Client::connectUnix(Path);
  ASSERT_TRUE(EC.hasValue());
  EXPECT_TRUE(EC.take().shutdownServer().isOk());
  Srv.waitForShutdown(); // returns because the request flagged it
  Srv.stop();
}

//===----------------------------------------------------------------------===//
// Prefetch: a daemon restart against a populated store is zero passes
//===----------------------------------------------------------------------===//

TEST(ServicePrefetch, RestartServesEntirelyFromPrefetchedArtifacts) {
  FaultGuard G;
  StoreGuard SG;

  ServiceConfig Cfg;
  Cfg.Graphs = {"FIR"};
  Cfg.Mode = OptMode::Linear;

  // Cold start: compiles, and publishes the artifact to the store.
  {
    Admission Cold(Cfg);
    ASSERT_TRUE(Cold.start().isOk());
    Admission::Counters C = Cold.counters();
    EXPECT_EQ(C.StartupCompiles, 1u);
    EXPECT_EQ(C.WarmStarts, 0u);
  }

  // Forget every in-memory program; the disk store is all that's left.
  ProgramCache::global().clear();
  ProgramCache::global().resetStats();

  // Warm restart: the serving set loads via the bulk prefetch, with no
  // compile passes and not even a cache miss (a prefetch is not a
  // request).
  Admission Warm(Cfg);
  ASSERT_TRUE(Warm.start().isOk());
  Admission::Counters C = Warm.counters();
  EXPECT_GE(C.PrefetchedArtifacts, 1u);
  EXPECT_EQ(C.WarmStarts, 1u);
  EXPECT_EQ(C.StartupCompiles, 0u);
  ProgramCache::Stats PS = ProgramCache::global().stats();
  EXPECT_EQ(PS.Misses, 0u);

  // And it serves.
  RunRequest R;
  R.Graph = "FIR";
  R.NOutputs = 32;
  RunResponse Resp = Warm.run(R);
  EXPECT_TRUE(Resp.St.isOk()) << Resp.St.str();
  EXPECT_FALSE(Resp.Outputs.empty());
}

} // namespace