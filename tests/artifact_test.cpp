//===- tests/artifact_test.cpp - Persistent artifact tests ----------------==//
//
// The disk-persistent CompiledProgram artifacts (support/Serialize.h +
// compiler/ArtifactStore.h): serialization round trips (graph, schedule,
// op tapes, packed matrices, native prototypes), golden-file byte
// stability, cache-key coverage (every CompiledOptions field perturbs
// the digest), ProgramCache observability, the disk tier (zero-pass
// loads that are bit-identical in outputs AND FLOP counts across the
// Compiled and Parallel engines), and the failure paths: corrupt,
// truncated and version-mismatched files must fall back to a clean
// recompile, never crash or serve stale bytes.
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "compiler/ArtifactStore.h"
#include "support/RuntimeConfig.h"
#include "compiler/AnalysisManager.h"
#include "compiler/Pipeline.h"
#include "compiler/Program.h"
#include "compiler/StructuralHash.h"
#include "exec/CompiledExecutor.h"
#include "exec/Measure.h"
#include "exec/Parallel.h"
#include "support/Serialize.h"
#include "TestGraphs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace slin;
using namespace slin::testing_helpers;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

StreamPtr firPipeline(std::vector<double> Taps, const std::string &Name) {
  auto P = std::make_unique<Pipeline>(Name);
  P->add(makeCountingSource());
  P->add(makeFIR(std::move(Taps)));
  P->add(makePrinterSink());
  return P;
}

StreamPtr splitJoinGraph() {
  auto Root = std::make_unique<Pipeline>("root");
  Root->add(makeCountingSource());
  auto SJ = std::make_unique<SplitJoin>("sj", Splitter::duplicate(),
                                        Joiner::roundRobin({1, 2}));
  SJ->add(makeGain(10.0, "Gain10"));
  {
    auto Inner = std::make_unique<Pipeline>("inner");
    Inner->add(makeFIR({1.0, 2.0}, "Fir2"));
    Inner->add(makeExpander(2));
    SJ->add(std::move(Inner));
  }
  Root->add(std::move(SJ));
  Root->add(makePrinterSink());
  return Root;
}

StreamPtr feedbackGraph() {
  auto Root = std::make_unique<Pipeline>("root");
  Root->add(makeCountingSource());
  Root->add(std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeSumDiffFilter(), makeIdentity(),
      Splitter::roundRobin({1, 1}), std::vector<double>{0.5}));
  Root->add(makePrinterSink());
  return Root;
}

std::vector<uint8_t> serializeOrDie(const CompiledProgram &P) {
  serial::Writer W;
  EXPECT_TRUE(serializeProgram(W, P));
  return W.bytes();
}

/// Runs a fresh executor over \p P and returns the first \p N outputs.
std::vector<double> runProgram(const CompiledProgramRef &P, size_t N) {
  CompiledExecutor E(P);
  E.run(N);
  std::vector<double> Out =
      E.printed().empty() ? E.outputSnapshot() : E.printed();
  if (Out.size() > N)
    Out.resize(N);
  return Out;
}

Measurement measureProgram(const Stream &Root, const CompiledProgramRef &P,
                           Engine Eng) {
  MeasureOptions MO;
  MO.WarmupOutputs = 64;
  MO.MeasureOutputs = 256;
  MO.MeasureTime = false;
  MO.Exec.Eng = Eng;
  MO.Program = P;
  return measureSteadyState(Root, MO);
}

/// A scoped artifact directory: points the global store at a fresh temp
/// directory and restores a clean, store-less state afterwards.
class StoreGuard {
public:
  StoreGuard() {
    Dir = (std::filesystem::temp_directory_path() /
           ("slin-artifact-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(Counter++)))
              .string();
    ArtifactStore::setGlobalDir(Dir);
    ProgramCache::global().clear();
    ProgramCache::global().resetStats();
  }
  ~StoreGuard() {
    ArtifactStore::setGlobalDir("");
    ProgramCache::global().clear();
    ProgramCache::global().resetStats();
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }

  ArtifactStore &store() { return *ArtifactStore::global(); }
  const std::string &dir() const { return Dir; }

  size_t fileCount() const {
    size_t N = 0;
    for (auto It = std::filesystem::directory_iterator(Dir);
         It != std::filesystem::directory_iterator(); ++It)
      ++N;
    return N;
  }

private:
  static int Counter;
  std::string Dir;
};

int StoreGuard::Counter = 0;

//===----------------------------------------------------------------------===//
// Serialize primitives
//===----------------------------------------------------------------------===//

TEST(Serialize, PrimitivesRoundTrip) {
  serial::Writer W;
  W.u8(7);
  W.u32(0xdeadbeefu);
  W.u64(0x0123456789abcdefULL);
  W.i32(-42);
  W.i64(-1234567890123LL);
  W.f64(3.14159);
  W.boolean(true);
  W.str("hello");
  W.f64s({1.5, -2.5});
  W.ints({3, -4, 5});
  W.strs({"a", "bc"});

  serial::Reader R(W.bytes());
  EXPECT_EQ(R.u8(), 7);
  EXPECT_EQ(R.u32(), 0xdeadbeefu);
  EXPECT_EQ(R.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(R.i32(), -42);
  EXPECT_EQ(R.i64(), -1234567890123LL);
  EXPECT_EQ(R.f64(), 3.14159);
  EXPECT_TRUE(R.boolean());
  EXPECT_EQ(R.str(), "hello");
  EXPECT_EQ(R.f64s(), (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(R.ints(), (std::vector<int>{3, -4, 5}));
  EXPECT_EQ(R.strs(), (std::vector<std::string>{"a", "bc"}));
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(Serialize, ReaderRejectsTruncationAndAbsurdCounts) {
  serial::Writer W;
  W.u32(1000000); // element count with no elements behind it
  serial::Reader R(W.bytes());
  std::vector<double> V = R.f64s();
  EXPECT_TRUE(V.empty());
  EXPECT_FALSE(R.ok());

  serial::Reader R2(W.bytes().data(), 2); // truncated mid-integer
  R2.u32();
  EXPECT_FALSE(R2.ok());
}

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

/// Serializing the deserialized program must reproduce the original
/// bytes exactly — graph, schedule, tapes, matrices, everything.
void expectStableRoundTrip(const CompiledProgram &P) {
  std::vector<uint8_t> Bytes = serializeOrDie(P);
  serial::Reader R(Bytes);
  auto Loaded = deserializeProgram(R);
  ASSERT_NE(Loaded, nullptr);
  EXPECT_TRUE(Loaded->loadedFromArtifact());
  EXPECT_EQ(serializeOrDie(*Loaded), Bytes);

  // Spot checks on the pieces (the byte comparison above covers them,
  // but these localize failures).
  EXPECT_EQ(Loaded->graph().Nodes.size(), P.graph().Nodes.size());
  EXPECT_EQ(Loaded->graph().numChannels(), P.graph().numChannels());
  EXPECT_EQ(Loaded->schedule().BatchIterations,
            P.schedule().BatchIterations);
  EXPECT_EQ(Loaded->schedule().Repetitions, P.schedule().Repetitions);
  EXPECT_EQ(Loaded->schedule().ChannelBufSize, P.schedule().ChannelBufSize);
  EXPECT_EQ(Loaded->shardInfo().Shardable, P.shardInfo().Shardable);
  EXPECT_EQ(Loaded->shardInfo().WashoutIterations,
            P.shardInfo().WashoutIterations);
  for (size_t I = 0; I != P.graph().Nodes.size(); ++I) {
    if (P.graph().Nodes[I].Kind != flat::NodeKind::Filter)
      continue;
    EXPECT_EQ(Loaded->filterArtifact(I).Work.size(),
              P.filterArtifact(I).Work.size());
    EXPECT_EQ(Loaded->filterArtifact(I).Native != nullptr,
              P.filterArtifact(I).Native != nullptr);
  }

  // The reconstructed stream is structurally the stored stream.
  EXPECT_EQ(structuralHash(Loaded->root()), structuralHash(P.root()));
  EXPECT_EQ(hashOptions(Loaded->options()), hashOptions(P.options()));
}

TEST(ArtifactRoundTrip, PlainIRGraphs) {
  for (const auto &Make :
       {+[] { return firPipeline({1, 2, 3, 4, 5}, "fir"); },
        +[] { return splitJoinGraph(); }, +[] { return feedbackGraph(); }}) {
    StreamPtr Root = Make();
    CompiledOptions Opts;
    Opts.BatchIterations = 4;
    auto P = std::make_shared<const CompiledProgram>(*Root, Opts);
    expectStableRoundTrip(*P);

    std::vector<uint8_t> Bytes = serializeOrDie(*P);
    serial::Reader R(Bytes);
    auto Loaded = deserializeProgram(R);
    ASSERT_NE(Loaded, nullptr);
    EXPECT_EQ(runProgram(Loaded, 96), runProgram(P, 96));
  }
}

TEST(ArtifactRoundTrip, OptimizedNativePrototypes) {
  // Each mode exercises a different native prototype: PackedNative and
  // TunedNative the packed/tuned matrix kernels, Freq the FFT filter
  // with its precomputed spectra.
  struct Config {
    OptMode Mode;
    LinearCodeGenStyle CodeGen;
  };
  for (Config C : {Config{OptMode::Linear, LinearCodeGenStyle::PackedNative},
                   Config{OptMode::Linear, LinearCodeGenStyle::TunedNative},
                   Config{OptMode::Freq, LinearCodeGenStyle::Auto}}) {
    StreamPtr Root = firPipeline({1, 2, 3, 4, 5, 6, 7, 8}, "fir8");
    PipelineOptions PO;
    PO.Mode = C.Mode;
    PO.CodeGen = C.CodeGen;
    PO.Exec.Eng = Engine::Compiled;
    PO.UseProgramCache = false;
    CompileResult R = compileStream(*Root, PO);
    ASSERT_NE(R.Program, nullptr);
    expectStableRoundTrip(*R.Program);

    std::vector<uint8_t> Bytes = serializeOrDie(*R.Program);
    serial::Reader Rd(Bytes);
    auto Loaded = deserializeProgram(Rd);
    ASSERT_NE(Loaded, nullptr);
    EXPECT_EQ(runProgram(Loaded, 96), runProgram(R.Program, 96))
        << "mode " << optModeName(C.Mode);
  }
}

// The real applications, AutoSel-optimized (frequency natives, packed
// kernels, null splitters, init work): a loaded artifact must behave
// bit-identically — outputs and FLOP counts — on both artifact engines.
TEST(ArtifactRoundTrip, BenchmarkAppsAutoSelLoadedBitIdentity) {
  StoreGuard Guard;
  for (const char *Name : {"FIR", "RateConvert", "FilterBank", "Radar"}) {
    StreamPtr Root;
    for (const apps::BenchmarkEntry &B : apps::allBenchmarks())
      if (B.Name == Name)
        Root = B.Build();
    ASSERT_NE(Root, nullptr) << Name;

    PipelineOptions PO;
    PO.Mode = OptMode::AutoSel;
    PO.Exec.Eng = Engine::Compiled;
    CompileResult Cold = compileStream(*Root, PO);
    ASSERT_NE(Cold.Program, nullptr) << Name;

    ProgramCache::global().clear();
    AnalysisManager::global().invalidate();
    CompileResult Warm = compileStream(*Root, PO);
    ASSERT_NE(Warm.Program, nullptr) << Name;
    EXPECT_TRUE(Warm.Program->loadedFromArtifact()) << Name;
    EXPECT_EQ(Warm.Passes.size(), 1u) << Name << "\n" << Warm.timingReport();

    EXPECT_EQ(runProgram(Warm.Program, 512), runProgram(Cold.Program, 512))
        << Name;
    for (Engine Eng : {Engine::Compiled, Engine::Parallel}) {
      Measurement MCold = measureProgram(*Cold.Optimized, Cold.Program, Eng);
      Measurement MWarm = measureProgram(*Warm.Optimized, Warm.Program, Eng);
      EXPECT_EQ(MCold.Ops.flops(), MWarm.Ops.flops())
          << Name << " on " << engineName(Eng);
      EXPECT_EQ(MCold.Outputs, MWarm.Outputs)
          << Name << " on " << engineName(Eng);
    }
  }
}

//===----------------------------------------------------------------------===//
// Golden file
//===----------------------------------------------------------------------===//

// The serialized form of a fixed small program must stay byte-stable;
// any intentional format change must bump ArtifactStore::formatVersion()
// and regenerate this golden (SLIN_UPDATE_GOLDEN=1 ./artifact_test).
TEST(ArtifactGolden, SmallProgramBytesAreStable) {
  StreamPtr Root = firPipeline({1.0, 2.0, 3.0}, "golden");
  CompiledOptions Opts;
  Opts.BatchIterations = 4;
  CompiledProgram P(*Root, Opts);
  std::vector<uint8_t> Bytes = serializeOrDie(P);

  std::string Path =
      std::string(SLIN_TEST_GOLDEN_DIR) + "/program_v1.bin";
  if (std::getenv("SLIN_UPDATE_GOLDEN")) {
    std::ofstream Out(Path, std::ios::binary);
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    GTEST_SKIP() << "golden regenerated: " << Path;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path;
  std::vector<uint8_t> Golden((std::istreambuf_iterator<char>(In)),
                              std::istreambuf_iterator<char>());
  EXPECT_EQ(Bytes, Golden)
      << "serialized format changed (" << Bytes.size() << " vs "
      << Golden.size()
      << " bytes): bump ArtifactStore::formatVersion() and regenerate "
         "with SLIN_UPDATE_GOLDEN=1";
}

//===----------------------------------------------------------------------===//
// Cache-key coverage
//===----------------------------------------------------------------------===//

// Every CompiledOptions field (including nested ParallelOptions) must
// perturb the cache key, or configurations differing only in that field
// would alias one artifact. hashOptions itself is guarded at compile
// time by aggregate destructuring; this pins the runtime behaviour.
TEST(HashOptionsKey, EveryFieldPerturbsTheDigest) {
  CompiledOptions Base;
  HashDigest D0 = hashOptions(Base);

  CompiledOptions A = Base;
  A.BatchIterations += 1;
  EXPECT_NE(hashOptions(A), D0) << "BatchIterations not keyed";

  CompiledOptions B = Base;
  B.Parallel.Workers += 1;
  EXPECT_NE(hashOptions(B), D0) << "Parallel.Workers not keyed";

  CompiledOptions C = Base;
  C.Parallel.ShardMinIterations += 1;
  EXPECT_NE(hashOptions(C), D0) << "Parallel.ShardMinIterations not keyed";

  // And all three produce distinct keys from each other.
  EXPECT_NE(hashOptions(A), hashOptions(B));
  EXPECT_NE(hashOptions(A), hashOptions(C));
  EXPECT_NE(hashOptions(B), hashOptions(C));
}

//===----------------------------------------------------------------------===//
// ProgramCache observability
//===----------------------------------------------------------------------===//

TEST(ProgramCacheStats, HitsMissesEvictionsAndEntries) {
  ArtifactStore::setGlobalDir(""); // memory tier only
  ProgramCache &Cache = ProgramCache::global();
  Cache.clear();
  Cache.resetStats();
  Cache.setCapacity(2);

  StreamPtr G1 = firPipeline({1, 2}, "g1");
  StreamPtr G2 = firPipeline({1, 2, 3}, "g2");
  StreamPtr G3 = firPipeline({1, 2, 3, 4}, "g3");
  CompiledOptions Opts;

  Cache.get(*G1, Opts);
  Cache.get(*G1, Opts); // hit
  Cache.get(*G2, Opts);
  Cache.get(*G3, Opts); // evicts the LRU entry (g1)

  ProgramCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Misses, 3u);
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Entries, 2u);
  EXPECT_EQ(S.DiskHits, 0u);
  EXPECT_EQ(S.DiskMisses, 0u);

  bool Hit = false;
  Cache.get(*G1, Opts, &Hit); // was evicted: recompile
  EXPECT_FALSE(Hit);

  Cache.setCapacity(64); // restore the default for other tests
  Cache.clear();
  Cache.resetStats();
}

//===----------------------------------------------------------------------===//
// Disk tier
//===----------------------------------------------------------------------===//

TEST(DiskTier, ProgramCacheLoadsFromDiskAfterClear) {
  StoreGuard Guard;
  StreamPtr Root = firPipeline({1, 2, 3, 4}, "disk");
  CompiledOptions Opts;

  bool Hit = true;
  CompiledProgramRef Fresh = ProgramCache::global().get(*Root, Opts, &Hit);
  EXPECT_FALSE(Hit);
  EXPECT_FALSE(Fresh->loadedFromArtifact());
  EXPECT_GE(ProgramCache::global().stats().DiskStores, 1u);

  // "Second process": drop all in-memory state, keep the files.
  ProgramCache::global().clear();
  CompiledProgramRef Loaded = ProgramCache::global().get(*Root, Opts, &Hit);
  EXPECT_TRUE(Hit);
  ASSERT_NE(Loaded, nullptr);
  EXPECT_TRUE(Loaded->loadedFromArtifact());
  EXPECT_GE(ProgramCache::global().stats().DiskHits, 1u);

  // Zero lowering passes ran for the loaded program.
  EXPECT_EQ(Loaded->buildStats().FlattenSeconds, 0.0);
  EXPECT_EQ(Loaded->buildStats().ScheduleSeconds, 0.0);
  EXPECT_EQ(Loaded->buildStats().TapeSeconds, 0.0);

  EXPECT_EQ(runProgram(Loaded, 128), runProgram(Fresh, 128));
}

// The acceptance path: a post-clear (second-process-equivalent) compile
// of an optimizing configuration resolves entirely through the artifact
// store — zero compiler passes, asserted via the pass-manager records —
// and the loaded program is bit-identical in outputs AND FLOP counts to
// the fresh compile on both artifact engines.
TEST(DiskTier, WarmPipelineCompileRunsZeroPassesAndIsBitIdentical) {
  StoreGuard Guard;
  StreamPtr Root = firPipeline({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, "warm");

  PipelineOptions PO;
  PO.Mode = OptMode::AutoSel;
  PO.Exec.Eng = Engine::Compiled;
  PO.Exec.Compiled.Parallel.Workers = 2;

  CompileResult Cold = compileStream(*Root, PO);
  ASSERT_NE(Cold.Program, nullptr);
  EXPECT_FALSE(Cold.Program->loadedFromArtifact());
  bool SawTransformPass = false;
  for (const PassInfo &P : Cold.Passes)
    SawTransformPass |= P.Name == "selection";
  EXPECT_TRUE(SawTransformPass);

  // Second process: all in-memory caches gone.
  ProgramCache::global().clear();
  AnalysisManager::global().invalidate();

  CompileResult Warm = compileStream(*Root, PO);
  ASSERT_NE(Warm.Program, nullptr);
  EXPECT_TRUE(Warm.Program->loadedFromArtifact());
  EXPECT_TRUE(Warm.ProgramCacheHit);
  ASSERT_EQ(Warm.Passes.size(), 1u) << Warm.timingReport();
  EXPECT_EQ(Warm.Passes[0].Name, "artifact-load");
  EXPECT_EQ(Warm.Passes[0].Note, "disk artifact hit");
  EXPECT_EQ(Warm.Program->buildStats().FlattenSeconds, 0.0);
  EXPECT_EQ(Warm.Program->buildStats().ScheduleSeconds, 0.0);
  EXPECT_EQ(Warm.Program->buildStats().TapeSeconds, 0.0);

  // Same optimized structure, bit-identical behaviour on both engines.
  EXPECT_EQ(structuralHash(*Warm.Optimized), structuralHash(*Cold.Optimized));
  EXPECT_EQ(runProgram(Warm.Program, 256), runProgram(Cold.Program, 256));
  for (Engine Eng : {Engine::Compiled, Engine::Parallel}) {
    Measurement MCold = measureProgram(*Cold.Optimized, Cold.Program, Eng);
    Measurement MWarm = measureProgram(*Warm.Optimized, Warm.Program, Eng);
    EXPECT_EQ(MCold.Ops.flops(), MWarm.Ops.flops())
        << "engine " << engineName(Eng);
    EXPECT_EQ(MCold.Ops.mults(), MWarm.Ops.mults())
        << "engine " << engineName(Eng);
    EXPECT_EQ(MCold.Outputs, MWarm.Outputs) << "engine " << engineName(Eng);
  }
}

TEST(DiskTier, SlinNoCacheBypassesTheDiskTier) {
  StoreGuard Guard;
  StreamPtr Root = firPipeline({4, 3, 2, 1}, "nocache");
  CompiledOptions Opts;

  // Populate the store.
  ProgramCache::global().get(*Root, Opts);
  ASSERT_GE(Guard.fileCount(), 1u);
  size_t Files = Guard.fileCount();

  ProgramCache::global().clear();
  ProgramCache::global().resetStats();
  ::setenv("SLIN_NO_CACHE", "1", 1);
  RuntimeConfig::refreshFromEnv();
  bool Hit = true;
  CompiledProgramRef P = ProgramCache::global().get(*Root, Opts, &Hit);
  ::unsetenv("SLIN_NO_CACHE");
  RuntimeConfig::refreshFromEnv();

  // Neither served from disk nor stored to disk.
  EXPECT_FALSE(Hit);
  EXPECT_FALSE(P->loadedFromArtifact());
  ProgramCache::Stats S = ProgramCache::global().stats();
  EXPECT_EQ(S.DiskHits, 0u);
  EXPECT_EQ(S.DiskMisses, 0u);
  EXPECT_EQ(S.DiskStores, 0u);
  EXPECT_EQ(Guard.fileCount(), Files);
}

TEST(DiskTier, CorruptTruncatedAndVersionMismatchedFilesRecompile) {
  StoreGuard Guard;
  StreamPtr Root = firPipeline({1, 2, 3, 4, 5}, "corrupt");
  CompiledOptions Opts;

  CompiledProgramRef Fresh = ProgramCache::global().get(*Root, Opts);
  std::vector<double> Expect = runProgram(Fresh, 128);

  ArtifactStore::Key K{structuralHash(Fresh->root()), hashOptions(Opts)};
  std::string Path = Guard.store().pathFor(K);
  ASSERT_TRUE(std::filesystem::exists(Path));
  std::ifstream In(Path, std::ios::binary);
  std::vector<char> Original((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  In.close();
  ASSERT_GT(Original.size(), 100u);

  auto WriteFile = [&](const std::vector<char> &Bytes) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  };
  auto ExpectCleanRecompile = [&](const char *What) {
    ProgramCache::global().clear();
    uint64_t FailuresBefore = Guard.store().stats().LoadFailures;
    bool Hit = true;
    CompiledProgramRef P = ProgramCache::global().get(*Root, Opts, &Hit);
    EXPECT_FALSE(Hit) << What;
    ASSERT_NE(P, nullptr) << What;
    EXPECT_FALSE(P->loadedFromArtifact()) << What;
    EXPECT_EQ(runProgram(P, 128), Expect) << What;
    EXPECT_GT(Guard.store().stats().LoadFailures, FailuresBefore) << What;
  };

  // Bit flip in the middle of the payload: the checksum must reject it.
  std::vector<char> Flipped = Original;
  Flipped[Flipped.size() / 2] ^= 0x40;
  WriteFile(Flipped);
  ExpectCleanRecompile("bit-flipped payload");

  // Bit flip inside the header's key field.
  Flipped = Original;
  Flipped[20] ^= 0x01;
  WriteFile(Flipped);
  ExpectCleanRecompile("bit-flipped header");

  // Truncation at an arbitrary point.
  std::vector<char> Truncated(Original.begin(),
                              Original.begin() + Original.size() / 3);
  WriteFile(Truncated);
  ExpectCleanRecompile("truncated file");

  // Format-version bump: byte 8 is the little-endian version word.
  std::vector<char> Versioned = Original;
  Versioned[8] = static_cast<char>(Versioned[8] + 1);
  WriteFile(Versioned);
  ExpectCleanRecompile("version mismatch");

  // Restoring the original bytes serves from disk again (same content).
  WriteFile(Original);
  ProgramCache::global().clear();
  bool Hit = false;
  CompiledProgramRef P = ProgramCache::global().get(*Root, Opts, &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_TRUE(P->loadedFromArtifact());
  EXPECT_EQ(runProgram(P, 128), Expect);
}

//===----------------------------------------------------------------------===//
// Unserializable natives degrade to memory-only caching
//===----------------------------------------------------------------------===//

/// A native with no serialTag: programs containing it must never be
/// persisted (and never crash trying).
class OpaqueNegate : public NativeFilter {
public:
  int peekRate() const override { return 1; }
  int popRate() const override { return 1; }
  int pushRate() const override { return 1; }
  void fire(wir::Tape &T) override { T.push(-T.peek(0)), T.pop(); }
  std::unique_ptr<NativeFilter> clone() const override {
    return std::make_unique<OpaqueNegate>();
  }
};

TEST(DiskTier, UnserializableNativeStaysMemoryOnly) {
  StoreGuard Guard;
  auto Root = std::make_unique<Pipeline>("opaque");
  Root->add(makeCountingSource());
  Root->add(std::make_unique<Filter>("Neg", std::make_unique<OpaqueNegate>()));
  Root->add(makePrinterSink());

  CompiledOptions Opts;
  size_t FilesBefore = Guard.fileCount();
  CompiledProgramRef P = ProgramCache::global().get(*Root, Opts);
  EXPECT_EQ(Guard.fileCount(), FilesBefore); // nothing persisted
  EXPECT_EQ(ProgramCache::global().stats().DiskStores, 0u);

  serial::Writer W;
  EXPECT_FALSE(serializeProgram(W, *P));

  // Memory tier still serves it.
  bool Hit = false;
  ProgramCache::global().get(*Root, Opts, &Hit);
  EXPECT_TRUE(Hit);
}

} // namespace
