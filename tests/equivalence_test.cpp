//===- tests/equivalence_test.cpp - Cross-configuration equivalence -------==//
//
// The master integration property of the whole system: every optimization
// configuration of every benchmark must produce the same output stream as
// the unoptimized program (frequency replacement up to FP round-off).
//
// A second property is stricter: the two execution engines (dynamic
// interpreter and compiled batched engine) must produce *bit-identical*
// outputs on the very same program — the op tapes replay the
// interpreter's evaluation order and the batched kernels replay the
// sequential kernels' accumulation order, so not even round-off may
// differ. Verified across the small TestGraphs (peeking, init work,
// splitjoins, feedback) and every benchmark x configuration.
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "codegen/CxxBackend.h"
#include "codegen/NativeModule.h"
#include "exec/Measure.h"
#include "opt/Optimizer.h"
#include "TestGraphs.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sys/wait.h>

using namespace slin;
using namespace slin::apps;

namespace {

struct Case {
  std::string Benchmark;
  OptMode Mode;
  bool Combine;
};

std::string caseName(const ::testing::TestParamInfo<Case> &Info) {
  const Case &C = Info.param;
  std::string Mode;
  switch (C.Mode) {
  case OptMode::Linear: Mode = "linear"; break;
  case OptMode::Freq: Mode = "freq"; break;
  case OptMode::Redundancy: Mode = "redund"; break;
  case OptMode::AutoSel: Mode = "autosel"; break;
  case OptMode::Base: Mode = "base"; break;
  }
  return C.Benchmark + "_" + Mode + (C.Combine ? "" : "_nc");
}

class BenchmarkEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(BenchmarkEquivalence, OutputsMatchBaseline) {
  const Case &C = GetParam();
  StreamPtr Base;
  for (const BenchmarkEntry &B : allBenchmarks())
    if (B.Name == C.Benchmark)
      Base = B.Build();
  ASSERT_NE(Base, nullptr);

  OptimizerOptions O;
  O.Mode = C.Mode;
  O.Combine = C.Combine;
  StreamPtr Opt = optimize(*Base, O);

  size_t N = 48;
  auto Expect = collectOutputs(*Base, N);
  auto Got = collectOutputs(*Opt, N);
  ASSERT_EQ(Expect.size(), Got.size());
  double Tol = C.Mode == OptMode::Freq || C.Mode == OptMode::AutoSel
                   ? 1e-5
                   : 1e-8;
  for (size_t I = 0; I != N; ++I)
    ASSERT_NEAR(Got[I], Expect[I], Tol) << "output " << I;
}

std::vector<Case> makeCases() {
  std::vector<Case> Cases;
  for (const BenchmarkEntry &B : allBenchmarks()) {
    Cases.push_back({B.Name, OptMode::Linear, true});
    Cases.push_back({B.Name, OptMode::Linear, false});
    Cases.push_back({B.Name, OptMode::Freq, true});
    Cases.push_back({B.Name, OptMode::Freq, false});
    Cases.push_back({B.Name, OptMode::Redundancy, true});
    Cases.push_back({B.Name, OptMode::AutoSel, true});
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkEquivalence,
                         ::testing::ValuesIn(makeCases()), caseName);

//===----------------------------------------------------------------------===//
// Engine equivalence (bit-identical)
//===----------------------------------------------------------------------===//

using testing_helpers::makeAdder;
using testing_helpers::makeCompressor;
using testing_helpers::makeCountingSource;
using testing_helpers::makeExpander;
using testing_helpers::makeFIR;
using testing_helpers::makeGain;
using testing_helpers::makeIdentity;
using testing_helpers::makePrinterSink;
using testing_helpers::makeSumDiffFilter;

StreamPtr sourcePipeline(std::vector<StreamPtr> Mids) {
  auto P = std::make_unique<Pipeline>("p");
  P->add(makeCountingSource());
  for (StreamPtr &M : Mids)
    P->add(std::move(M));
  P->add(makePrinterSink());
  return P;
}

StreamPtr makeInitWorkFilter() {
  using namespace slin::wir;
  using namespace slin::wir::build;
  // Init work peeks beyond what it pops (peek 5, pop 3), exercising the
  // init scheduler's lookahead-demand computation.
  auto F = std::make_unique<Filter>(
      "initf", std::vector<FieldDef>{},
      WorkFunction(2, 1, 1, stmts(push(add(peek(0), peek(1))), popStmt())));
  F->setInitWork(WorkFunction(
      5, 3, 2, stmts(push(add(pop(), peek(3))), push(add(pop(), pop())))));
  return F;
}

struct GraphCase {
  std::string Name;
  std::function<StreamPtr()> Build;
};

std::vector<GraphCase> engineGraphs() {
  std::vector<GraphCase> G;
  G.push_back({"PeekingFIR", [] {
    std::vector<StreamPtr> M;
    M.push_back(makeFIR({1.5, -2.25, 3.0, 0.5, -0.125, 7.0, 11.0, -13.0}));
    return sourcePipeline(std::move(M));
  }});
  G.push_back({"RateMismatch", [] {
    std::vector<StreamPtr> M;
    M.push_back(makeExpander(3));
    M.push_back(makeGain(0.5));
    M.push_back(makeCompressor(2));
    return sourcePipeline(std::move(M));
  }});
  G.push_back({"DuplicateSplitJoin", [] {
    auto SJ = std::make_unique<SplitJoin>("sj", Splitter::duplicate(),
                                          Joiner::roundRobin({1, 2}));
    SJ->add(makeGain(10));
    {
      auto Inner = std::make_unique<Pipeline>("inner");
      Inner->add(makeFIR({1, 2, 3}));
      Inner->add(makeExpander(2));
      SJ->add(std::move(Inner));
    }
    std::vector<StreamPtr> M;
    M.push_back(std::move(SJ));
    return sourcePipeline(std::move(M));
  }});
  G.push_back({"RoundRobinSplitJoin", [] {
    auto SJ = std::make_unique<SplitJoin>("sj", Splitter::roundRobin({2, 1}),
                                          Joiner::roundRobin({2, 1}));
    SJ->add(makeGain(1));
    SJ->add(makeGain(-1));
    std::vector<StreamPtr> M;
    M.push_back(std::move(SJ));
    return sourcePipeline(std::move(M));
  }});
  G.push_back({"FeedbackLoop", [] {
    std::vector<StreamPtr> M;
    M.push_back(std::make_unique<FeedbackLoop>(
        "fb", Joiner::roundRobin({1, 1}), makeSumDiffFilter(),
        makeIdentity(), Splitter::roundRobin({1, 1}),
        std::vector<double>{0.5}));
    return sourcePipeline(std::move(M));
  }});
  G.push_back({"InitWork", [] {
    std::vector<StreamPtr> M;
    M.push_back(makeInitWorkFilter());
    return sourcePipeline(std::move(M));
  }});
  G.push_back({"AdderChain", [] {
    std::vector<StreamPtr> M;
    M.push_back(makeAdder(4));
    M.push_back(makeGain(1.0 / 3.0));
    return sourcePipeline(std::move(M));
  }});
  return G;
}

class EngineEquivalence
    : public ::testing::TestWithParam<GraphCase> {};

TEST_P(EngineEquivalence, BitIdenticalOutputs) {
  StreamPtr Root = GetParam().Build();
  size_t N = 96;
  auto Dyn = collectOutputs(*Root, N, Engine::Dynamic);
  auto Comp = collectOutputs(*Root, N, Engine::Compiled);
  // Bit-identical: EXPECT_EQ on the doubles, no tolerance.
  EXPECT_EQ(Dyn, Comp);
}

INSTANTIATE_TEST_SUITE_P(
    TestGraphs, EngineEquivalence, ::testing::ValuesIn(engineGraphs()),
    [](const ::testing::TestParamInfo<GraphCase> &I) { return I.param.Name; });

/// Every benchmark x configuration must also be engine-bit-identical:
/// the configurations cover WIR filters, native FFT filters with init
/// work, and the native linear kernels.
class BenchmarkEngineEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(BenchmarkEngineEquivalence, BitIdenticalOutputs) {
  const Case &C = GetParam();
  StreamPtr Base;
  for (const BenchmarkEntry &B : allBenchmarks())
    if (B.Name == C.Benchmark)
      Base = B.Build();
  ASSERT_NE(Base, nullptr);
  OptimizerOptions O;
  O.Mode = C.Mode;
  O.Combine = C.Combine;
  StreamPtr Opt = optimize(*Base, O);

  size_t N = 48;
  auto Dyn = collectOutputs(*Opt, N, Engine::Dynamic);
  auto Comp = collectOutputs(*Opt, N, Engine::Compiled);
  EXPECT_EQ(Dyn, Comp);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkEngineEquivalence,
                         ::testing::ValuesIn(makeCases()), caseName);

//===----------------------------------------------------------------------===//
// Native-engine column (emitted C++, compiled and dlopen'd)
//===----------------------------------------------------------------------===//

/// The Engine::Native column of the matrix: across the Figure 5-1 suite
/// x {Linear, AutoSel}, the emitted-C++ engine must be *bit-identical*
/// to the compiled op-tape engine on the very same program — the
/// generated code replays the interpreter's evaluation order and is
/// built with -ffp-contract=off / -fno-builtin, so not even round-off
/// may differ. Without a toolchain the engine degrades to the op tapes,
/// which makes the property trivially true; skip so degradation doesn't
/// masquerade as codegen coverage (the CI no-toolchain arm asserts the
/// degraded path separately).
class BenchmarkNativeEquivalence : public ::testing::TestWithParam<Case> {};

/// True when the discovered compiler both exists and runs: the CI
/// no-toolchain arm names a *nonexistent* SLIN_CXX, which
/// discoverCompiler() returns verbatim, so the empty() check alone would
/// let the suite run degraded and trivially-pass.
bool toolchainWorks() {
  std::string Cxx = codegen::discoverCompiler();
  if (Cxx.empty())
    return false;
  std::string Cmd = "'" + Cxx + "' --version >/dev/null 2>&1";
  int Rc = std::system(Cmd.c_str());
  return Rc != -1 && WIFEXITED(Rc) && WEXITSTATUS(Rc) == 0;
}

TEST_P(BenchmarkNativeEquivalence, BitIdenticalToCompiledEngine) {
  if (!toolchainWorks())
    GTEST_SKIP() << "no working C++ toolchain; Engine::Native degrades "
                    "to op tapes";
  const Case &C = GetParam();
  StreamPtr Base;
  for (const BenchmarkEntry &B : allBenchmarks())
    if (B.Name == C.Benchmark)
      Base = B.Build();
  ASSERT_NE(Base, nullptr);
  OptimizerOptions O;
  O.Mode = C.Mode;
  O.Combine = C.Combine;
  StreamPtr Opt = optimize(*Base, O);

  size_t N = 48;
  auto Comp = collectOutputs(*Opt, N, Engine::Compiled);
  auto Native = collectOutputs(*Opt, N, Engine::Native);
  EXPECT_EQ(Comp, Native);
}

// NOTE (FLOP counts under Engine::Native): the engine-equivalence FLOP
// assertions elsewhere in the suite are *not* replicated for the Native
// column. Emitted machine code performs no op accounting; counting runs
// are dispatched to the op tapes instead (CompiledExecutor's
// counting-gated dispatch), so a FLOP assertion under Engine::Native
// would measure the tape fallback — the identical numbers the Compiled
// column already asserts — while the native code path contributes
// nothing. codegen_test's CountingRunsFallBackToTapesSoFlopsMatchCompiled
// pins that fallback equality; here the assertion is skipped, visibly.
TEST(BenchmarkNativeEquivalence, FlopCountAssertionsNotApplicable) {
  GTEST_SKIP() << "FLOP-count assertions are skipped under Engine::Native: "
                  "emitted code does no op accounting, counting runs fall "
                  "back to the op tapes (see the NOTE above this test)";
}

std::vector<Case> nativeCases() {
  std::vector<Case> Cases;
  for (const BenchmarkEntry &B : allBenchmarks()) {
    Cases.push_back({B.Name, OptMode::Linear, true});
    Cases.push_back({B.Name, OptMode::AutoSel, true});
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Fig51Suite, BenchmarkNativeEquivalence,
                         ::testing::ValuesIn(nativeCases()), caseName);

} // namespace
