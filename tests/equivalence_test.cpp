//===- tests/equivalence_test.cpp - Cross-configuration equivalence -------==//
//
// The master integration property of the whole system: every optimization
// configuration of every benchmark must produce the same output stream as
// the unoptimized program (frequency replacement up to FP round-off).
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "exec/Measure.h"
#include "opt/Optimizer.h"

#include <gtest/gtest.h>

using namespace slin;
using namespace slin::apps;

namespace {

struct Case {
  std::string Benchmark;
  OptMode Mode;
  bool Combine;
};

std::string caseName(const ::testing::TestParamInfo<Case> &Info) {
  const Case &C = Info.param;
  std::string Mode;
  switch (C.Mode) {
  case OptMode::Linear: Mode = "linear"; break;
  case OptMode::Freq: Mode = "freq"; break;
  case OptMode::Redundancy: Mode = "redund"; break;
  case OptMode::AutoSel: Mode = "autosel"; break;
  case OptMode::Base: Mode = "base"; break;
  }
  return C.Benchmark + "_" + Mode + (C.Combine ? "" : "_nc");
}

class BenchmarkEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(BenchmarkEquivalence, OutputsMatchBaseline) {
  const Case &C = GetParam();
  StreamPtr Base;
  for (const BenchmarkEntry &B : allBenchmarks())
    if (B.Name == C.Benchmark)
      Base = B.Build();
  ASSERT_NE(Base, nullptr);

  OptimizerOptions O;
  O.Mode = C.Mode;
  O.Combine = C.Combine;
  StreamPtr Opt = optimize(*Base, O);

  size_t N = 48;
  auto Expect = collectOutputs(*Base, N);
  auto Got = collectOutputs(*Opt, N);
  ASSERT_EQ(Expect.size(), Got.size());
  double Tol = C.Mode == OptMode::Freq || C.Mode == OptMode::AutoSel
                   ? 1e-5
                   : 1e-8;
  for (size_t I = 0; I != N; ++I)
    ASSERT_NEAR(Got[I], Expect[I], Tol) << "output " << I;
}

std::vector<Case> makeCases() {
  std::vector<Case> Cases;
  for (const BenchmarkEntry &B : allBenchmarks()) {
    Cases.push_back({B.Name, OptMode::Linear, true});
    Cases.push_back({B.Name, OptMode::Linear, false});
    Cases.push_back({B.Name, OptMode::Freq, true});
    Cases.push_back({B.Name, OptMode::Freq, false});
    Cases.push_back({B.Name, OptMode::Redundancy, true});
    Cases.push_back({B.Name, OptMode::AutoSel, true});
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkEquivalence,
                         ::testing::ValuesIn(makeCases()), caseName);

} // namespace
