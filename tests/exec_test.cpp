//===- tests/exec_test.cpp - Executor and scheduler tests -----------------==//

#include "exec/Measure.h"
#include "sched/Rates.h"
#include "TestGraphs.h"

#include "support/OpCounters.h"

#include <gtest/gtest.h>

using namespace slin;
using namespace slin::testing_helpers;

namespace {

TEST(Sched, FilterRates) {
  auto F = makeFIR({1, 2, 3});
  RateSignature R = computeRates(*F);
  EXPECT_EQ(R.Peek, 3);
  EXPECT_EQ(R.Pop, 1);
  EXPECT_EQ(R.Push, 1);
}

TEST(Sched, PipelineRepetitions) {
  // Expander(2) then Compressor(3): reps must balance 2*r1 = 3*r2.
  Pipeline P("p");
  P.add(makeExpander(2));
  P.add(makeCompressor(3));
  auto Reps = childRepetitions(P);
  EXPECT_EQ(Reps, (std::vector<int64_t>{3, 2}));
  RateSignature R = computeRates(P);
  EXPECT_EQ(R.Pop, 3);
  EXPECT_EQ(R.Push, 2);
}

TEST(Sched, PipelinePeekCarriesExtra) {
  Pipeline P("p");
  P.add(makeFIR({1, 2, 3, 4})); // peek 4 pop 1
  P.add(makeCompressor(2));
  auto Reps = childRepetitions(P);
  EXPECT_EQ(Reps, (std::vector<int64_t>{2, 1}));
  RateSignature R = computeRates(P);
  EXPECT_EQ(R.Pop, 2);
  EXPECT_EQ(R.Peek, 2 + 3); // extra lookahead of the FIR
  EXPECT_EQ(R.Push, 1);
}

TEST(Sched, SplitJoinDuplicate) {
  // Figure 3-6's topology: children pushing 4 and 1, joiner (2, 1).
  SplitJoin SJ("sj", Splitter::duplicate(), Joiner::roundRobin({2, 1}));
  // Child 0: pop 2 push 4; child 1: pop 1 push 1.
  {
    using namespace slin::wir;
    using namespace slin::wir::build;
    WorkFunction W0(2, 2, 4, stmts(push(peek(0)), push(peek(0)), push(peek(1)),
                                   push(peek(1)), popStmt(), popStmt()));
    SJ.add(std::make_unique<Filter>("c0", std::vector<FieldDef>{},
                                    std::move(W0)));
    WorkFunction W1(1, 1, 1, stmts(push(pop())));
    SJ.add(std::make_unique<Filter>("c1", std::vector<FieldDef>{},
                                    std::move(W1)));
  }
  auto Reps = childRepetitions(SJ);
  // joinRep = lcm(lcm(4,2)/2, lcm(1,1)/1) = lcm(2,1) = 2;
  // rep0 = 2*2/4 = 1, rep1 = 1*2/1 = 2.
  EXPECT_EQ(Reps, (std::vector<int64_t>{1, 2}));
  RateSignature R = computeRates(SJ);
  EXPECT_EQ(R.Pop, 2);
  EXPECT_EQ(R.Push, 6);
}

TEST(Sched, FeedbackLoopRates) {
  auto FB = std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeSumDiffFilter(), makeIdentity(),
      Splitter::roundRobin({1, 1}), std::vector<double>{0});
  auto Reps = childRepetitions(*FB);
  EXPECT_EQ(Reps, (std::vector<int64_t>{1, 1}));
  RateSignature R = computeRates(*FB);
  EXPECT_EQ(R.Pop, 1);
  EXPECT_EQ(R.Push, 1);
}

TEST(Sched, SplitJoinWholeCycleAlignment) {
  // Weights that are unreduced multiples of the per-repetition flows
  // (as built by the selection DP's vertical cuts): the child balance
  // reduces to {1, 1}, but one splitter/joiner cycle needs two firings
  // of each child. Repetitions must scale so cycles stay integral.
  using namespace slin::wir;
  using namespace slin::wir::build;
  auto MakeChild = [](const std::string &Name) {
    // pop 8 push 2: sums four pairs.
    StmtList Body;
    for (int J = 0; J != 2; ++J)
      Body.push_back(push(add(add(peek(4 * J), peek(4 * J + 1)),
                              add(peek(4 * J + 2), peek(4 * J + 3)))));
    for (int P = 0; P != 8; ++P)
      Body.push_back(popStmt());
    return std::make_unique<Filter>(Name, std::vector<FieldDef>{},
                                    WorkFunction(8, 8, 2, std::move(Body)));
  };
  SplitJoin SJ("vcutlike", Splitter::roundRobin({16, 16}),
               Joiner::roundRobin({4, 4}));
  SJ.add(MakeChild("a"));
  SJ.add(MakeChild("b"));
  auto Reps = childRepetitions(SJ);
  EXPECT_EQ(Reps, (std::vector<int64_t>{2, 2}));
  RateSignature R = computeRates(SJ);
  EXPECT_EQ(R.Pop, 32);
  EXPECT_EQ(R.Push, 8);
}

TEST(SchedDeath, UnbalancedFeedbackLoopIsFatal) {
  // Adder(2) pushes one item per firing but the splitter must send one
  // item per cycle to the loop AND one downstream: inconsistent.
  auto FB = std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeAdder(2), makeIdentity(),
      Splitter::roundRobin({1, 1}), std::vector<double>{0});
  EXPECT_DEATH(childRepetitions(*FB), "inconsistent loop rates");
}

TEST(Exec, SourceFIRSink) {
  Pipeline P("FIRProgram");
  P.add(makeCountingSource());
  P.add(makeFIR({1, 2, 3}));
  P.add(makePrinterSink());

  Executor E(P);
  E.run(4);
  ASSERT_GE(E.printed().size(), 4u);
  // Input 0,1,2,3,...; out[k] = 1*k + 2*(k+1) + 3*(k+2) = 6k + 8.
  for (int K = 0; K != 4; ++K)
    EXPECT_DOUBLE_EQ(E.printed()[K], 6.0 * K + 8.0);
}

TEST(Exec, ExternalInputAndOutput) {
  auto F = makeFIR({2, 5});
  Executor E(*F);
  E.provideInput({1, 2, 3, 4});
  E.run(3);
  auto Out = E.outputSnapshot();
  ASSERT_GE(Out.size(), 3u);
  EXPECT_DOUBLE_EQ(Out[0], 2 * 1 + 5 * 2);
  EXPECT_DOUBLE_EQ(Out[1], 2 * 2 + 5 * 3);
  EXPECT_DOUBLE_EQ(Out[2], 2 * 3 + 5 * 4);
}

TEST(Exec, DuplicateSplitJoinInterleaving) {
  SplitJoin SJ("sj", Splitter::duplicate(), Joiner::roundRobin({1, 1}));
  SJ.add(makeGain(10, "g10"));
  SJ.add(makeGain(100, "g100"));
  Executor E(SJ);
  E.provideInput({1, 2, 3});
  E.run(6);
  EXPECT_EQ(E.outputSnapshot(),
            (std::vector<double>{10, 100, 20, 200, 30, 300}));
}

TEST(Exec, RoundRobinSplitJoin) {
  // roundrobin(2,1) split, gains, roundrobin(2,1) join: reorders nothing.
  SplitJoin SJ("sj", Splitter::roundRobin({2, 1}),
               Joiner::roundRobin({2, 1}));
  SJ.add(makeGain(1, "id"));
  SJ.add(makeGain(-1, "neg"));
  Executor E(SJ);
  E.provideInput({1, 2, 3, 4, 5, 6});
  E.run(6);
  EXPECT_EQ(E.outputSnapshot(), (std::vector<double>{1, 2, -3, 4, 5, -6}));
}

TEST(Exec, FeedbackLoopSumDiff) {
  // Joiner interleaves [x_i, fb_i]; body pushes sum then difference; the
  // splitter routes sums downstream and differences around the loop.
  auto FB = std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeSumDiffFilter(), makeIdentity(),
      Splitter::roundRobin({1, 1}), std::vector<double>{0});
  Executor E(*FB);
  E.provideInput({1, 2, 3});
  E.run(3);
  auto Out = E.outputSnapshot();
  ASSERT_GE(Out.size(), 3u);
  EXPECT_DOUBLE_EQ(Out[0], 1);         // 1 + enqueued 0
  EXPECT_DOUBLE_EQ(Out[1], 2 + 1);     // fb = 1 - 0
  EXPECT_DOUBLE_EQ(Out[2], 3 + (2 - 1));
}

TEST(Exec, InitWorkDifferentRates) {
  using namespace slin::wir;
  using namespace slin::wir::build;
  // initWork consumes 3 and pushes their sum; work then echoes items.
  auto F = std::make_unique<Filter>(
      "init", std::vector<FieldDef>{},
      WorkFunction(1, 1, 1, stmts(push(pop()))));
  F->setInitWork(WorkFunction(
      3, 3, 1, stmts(push(add(add(pop(), pop()), pop())))));
  Executor E(*F);
  E.provideInput({1, 2, 3, 4, 5});
  E.run(3);
  EXPECT_EQ(E.outputSnapshot(), (std::vector<double>{6, 4, 5}));
}

TEST(Exec, DeadlockIsFatal) {
  // A filter that needs more input than ever arrives.
  auto F = makeFIR({1, 1, 1, 1});
  Executor E(*F);
  E.provideInput({1, 2});
  EXPECT_DEATH(E.run(1), "deadlock");
}

TEST(Exec, BatchLimitOneStillCorrect) {
  // BatchLimit = 1 forces strict round-robin sweeps; outputs must not
  // change, only the firing interleaving.
  Pipeline P("p");
  P.add(makeCountingSource());
  P.add(makeFIR({1, 2, 3}));
  P.add(makePrinterSink());
  Executor::Options O;
  O.BatchLimit = 1;
  Executor E(P, O);
  E.run(4);
  ASSERT_GE(E.printed().size(), 4u);
  for (int K = 0; K != 4; ++K)
    EXPECT_DOUBLE_EQ(E.printed()[static_cast<size_t>(K)], 6.0 * K + 8.0);
}

TEST(Exec, ChannelCapDerivation) {
  // A channel's cap is derived from its consumer's peek requirement:
  // max(MinChannelCap, 2 * need), clamped to ChannelCap.
  auto F = makeFIR({1, 2, 3, 4, 5, 6, 7, 8}); // peek 8
  {
    Executor::Options O;
    O.MinChannelCap = 4;
    Executor E(*F, O);
    EXPECT_EQ(E.channelCap(0), 16u); // external input channel: 2 * 8
  }
  {
    Executor::Options O;
    O.MinChannelCap = 4;
    O.ChannelCap = 10;
    Executor E(*F, O);
    EXPECT_EQ(E.channelCap(0), 10u); // clamped to the global cap
  }
  {
    Executor::Options O;
    O.MinChannelCap = 64;
    Executor E(*F, O);
    EXPECT_EQ(E.channelCap(0), 64u); // floor at MinChannelCap
  }
}

TEST(ExecDeath, SweepThatFiresNothingDiagnosesDeadlock) {
  // A feedback loop with no enqueued items passes rate analysis but can
  // never start: the very first sweep fires nothing and must be
  // diagnosed as a deadlock rather than spinning.
  auto FB = std::make_unique<FeedbackLoop>(
      "fb", Joiner::roundRobin({1, 1}), makeSumDiffFilter(), makeIdentity(),
      Splitter::roundRobin({1, 1}), std::vector<double>{});
  Executor E(*FB);
  E.provideInput({1, 2, 3, 4});
  EXPECT_DEATH(E.run(1), "deadlocked: no node can fire");
}

TEST(Exec, TinyChannelCapStillMakesProgress) {
  // Even with the smallest possible caps the bounded scheduler must
  // deliver correct output (producers stall until consumers drain).
  Pipeline P("p");
  P.add(makeCountingSource());
  P.add(makeGain(2));
  P.add(makePrinterSink());
  Executor::Options O;
  O.MinChannelCap = 1;
  O.ChannelCap = 2;
  O.BatchLimit = 3;
  Executor E(P, O);
  E.run(16);
  ASSERT_GE(E.printed().size(), 16u);
  for (int K = 0; K != 16; ++K)
    EXPECT_DOUBLE_EQ(E.printed()[static_cast<size_t>(K)], 2.0 * K);
}

TEST(Measure, FIRFlopsPerOutput) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  Pipeline P("FIRProgram");
  P.add(makeCountingSource());
  P.add(makeFIR({1, 2, 3, 4, 5, 6, 7, 8}));
  P.add(makePrinterSink());
  MeasureOptions Opts;
  Opts.WarmupOutputs = 64;
  Opts.MeasureOutputs = 2048;
  Opts.MeasureTime = false;
  Opts.Exec.Dynamic.BatchLimit = 8; // keep in-flight noise small
  Measurement M = measureSteadyState(P, Opts);
  // Per output: 8 muls + 8 adds in the FIR, 1 add in the source.
  EXPECT_NEAR(M.multsPerOutput(), 8.0, 0.4);
  EXPECT_NEAR(M.flopsPerOutput(), 17.0, 0.9);
}

TEST(Measure, CollectOutputsMatchesManual) {
  Pipeline P("p");
  P.add(makeCountingSource());
  P.add(makeGain(3));
  P.add(makePrinterSink());
  auto Out = collectOutputs(P, 5);
  EXPECT_EQ(Out, (std::vector<double>{0, 3, 6, 9, 12}));
}

} // namespace
