//===- tests/matrix_test.cpp - Matrix and kernel unit tests ---------------==//

#include "matrix/Kernels.h"
#include "matrix/Matrix.h"
#include "support/MathUtil.h"
#include "support/OpCounters.h"

#include <gtest/gtest.h>

#include <random>

using namespace slin;

namespace {

TEST(MathUtil, GcdLcm) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(1, 1), 1);
  EXPECT_EQ(lcm64(7, 13), 91);
  EXPECT_EQ(ceilDiv(7, 3), 3);
  EXPECT_EQ(ceilDiv(6, 3), 2);
  EXPECT_EQ(ceilDiv(1, 4), 1);
}

TEST(MathUtil, RationalNormalization) {
  Rational R(6, 4);
  EXPECT_EQ(R.num(), 3);
  EXPECT_EQ(R.den(), 2);
  Rational Q(3, -6);
  EXPECT_EQ(Q.num(), -1);
  EXPECT_EQ(Q.den(), 2);
  EXPECT_EQ(Rational(1, 2) * Rational(2, 3), Rational(1, 3));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2, 1));
}

TEST(Matrix, IdentityMultiply) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix I3 = Matrix::identity(3);
  EXPECT_EQ(I3.multiply(A), A);
  Matrix I2 = Matrix::identity(2);
  EXPECT_EQ(A.multiply(I2), A);
}

TEST(Matrix, MultiplyKnown) {
  // Figure 3-4's pipeline-combination product.
  Matrix A1e = Matrix::fromRows(
      {{1, 0, 0}, {2, 1, 0}, {0, 2, 1}, {0, 0, 2}});
  Matrix A2 = Matrix::fromRows({{3}, {4}, {5}});
  Matrix P = A1e.multiply(A2);
  EXPECT_EQ(P, Matrix::fromRows({{3}, {10}, {13}, {10}}));
}

TEST(Matrix, LeftMultiplyMatchesMultiply) {
  std::mt19937 Rng(7);
  std::uniform_real_distribution<double> Dist(-2.0, 2.0);
  Matrix A(5, 3);
  for (size_t R = 0; R != 5; ++R)
    for (size_t C = 0; C != 3; ++C)
      A.at(R, C) = Dist(Rng);
  Vector V(5);
  for (size_t I = 0; I != 5; ++I)
    V[I] = Dist(Rng);
  Vector Y = A.leftMultiply(V);
  for (size_t J = 0; J != 3; ++J) {
    double Expect = 0;
    for (size_t I = 0; I != 5; ++I)
      Expect += V[I] * A.at(I, J);
    EXPECT_NEAR(Y[J], Expect, 1e-12);
  }
}

TEST(Matrix, ColumnRoundTrip) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  Vector C1 = A.column(1);
  EXPECT_EQ(C1, Vector({2, 4}));
  A.setColumn(0, Vector({9, 8}));
  EXPECT_EQ(A, Matrix::fromRows({{9, 2}, {8, 4}}));
}

TEST(Matrix, CountNonZero) {
  Matrix A = Matrix::fromRows({{0, 1}, {2, 0}, {0, 0}});
  EXPECT_EQ(A.countNonZero(), 2u);
  Vector V({0, 1, 0, 3});
  EXPECT_EQ(V.countNonZero(), 2u);
}

TEST(PackedLinearKernel, BandedSkipsZeros) {
  // Column 0 has zeros at both ends; column 1 is dense.
  Matrix C = Matrix::fromRows({{0, 1}, {2, 1}, {3, 1}, {0, 1}});
  Vector B({0.5, 0.0});
  PackedLinearKernel K(C, B);
  EXPECT_EQ(K.peekRate(), 4);
  EXPECT_EQ(K.pushRate(), 2);
  EXPECT_EQ(K.columns()[0].First, 1);
  EXPECT_EQ(K.columns()[0].Coeffs.size(), 2u);
  EXPECT_EQ(K.columns()[1].First, 0);
  EXPECT_EQ(K.columns()[1].Coeffs.size(), 4u);
  EXPECT_EQ(K.bandedMultiplyCount(), 6u);

  double In[4] = {1, 2, 3, 4};
  double OutB[2], OutD[2];
  K.applyBanded(In, OutB);
  K.applyDense(In, OutD);
  EXPECT_DOUBLE_EQ(OutB[0], 2 * 2 + 3 * 3 + 0.5);
  EXPECT_DOUBLE_EQ(OutB[1], 1 + 2 + 3 + 4);
  EXPECT_DOUBLE_EQ(OutD[0], OutB[0]);
  EXPECT_DOUBLE_EQ(OutD[1], OutB[1]);
}

TEST(PackedLinearKernel, CountsMultiplications) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  Matrix C = Matrix::fromRows({{0, 1}, {2, 1}, {3, 1}, {0, 1}});
  Vector B({0.5, 0.0});
  PackedLinearKernel K(C, B);
  double In[4] = {1, 2, 3, 4};
  double Out[2];

  ops::CountingScope Scope;
  ops::reset();
  K.applyBanded(In, Out);
  EXPECT_EQ(ops::counts().Muls, 6u);

  ops::reset();
  K.applyDense(In, Out);
  EXPECT_EQ(ops::counts().Muls, 8u);
}

TEST(TunedGemv, MatchesBanded) {
  std::mt19937 Rng(11);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  for (int E : {1, 3, 8, 17, 64}) {
    Matrix C(E, 3);
    for (int P = 0; P != E; ++P)
      for (int J = 0; J != 3; ++J)
        C.at(P, J) = Dist(Rng);
    Vector B({Dist(Rng), 0.0, Dist(Rng)});
    PackedLinearKernel K(C, B);
    TunedGemv T(C, B);
    std::vector<double> In(E);
    for (double &D : In)
      D = Dist(Rng);
    std::vector<double> OutK(3), OutT(3);
    K.applyBanded(In.data(), OutK.data());
    T.apply(In.data(), OutT.data());
    for (int J = 0; J != 3; ++J)
      EXPECT_NEAR(OutK[J], OutT[J], 1e-9) << "E=" << E << " J=" << J;
  }
}

TEST(TunedGemv, DoesNotSkipZeros) {
#if !SLIN_COUNT_OPS
  GTEST_SKIP() << "op accounting compiled out (SLIN_COUNT_OPS=OFF)";
#endif

  // A very sparse column: banded does 1 multiply, tuned does E.
  int E = 32;
  Matrix C(E, 1);
  C.at(16, 0) = 2.0;
  Vector B(1);
  PackedLinearKernel K(C, B);
  TunedGemv T(C, B);
  std::vector<double> In(E, 1.0);
  double Out;

  ops::CountingScope Scope;
  ops::reset();
  K.applyBanded(In.data(), &Out);
  uint64_t BandedMuls = ops::counts().Muls;
  ops::reset();
  T.apply(In.data(), &Out);
  uint64_t TunedMuls = ops::counts().Muls;
  EXPECT_EQ(BandedMuls, 1u);
  EXPECT_EQ(TunedMuls, static_cast<uint64_t>(E));
}

} // namespace
