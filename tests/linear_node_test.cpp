//===- tests/linear_node_test.cpp - LinearNode algebra tests --------------==//
//
// Exercises Definition 1 and Transformations 1-4 against the worked
// examples in the thesis (Figures 3-1, 3-3, 3-4, 3-5, 3-6) and against
// stream-simulation properties on random nodes.
//
//===----------------------------------------------------------------------===//

#include "linear/LinearNode.h"

#include <gtest/gtest.h>

#include <random>

using namespace slin;

namespace {

LinearNode randomNode(std::mt19937 &Rng, int E, int O, int U,
                      bool WithOffsets = true) {
  std::uniform_real_distribution<double> Dist(-2.0, 2.0);
  Matrix A(static_cast<size_t>(E), static_cast<size_t>(U));
  for (int R = 0; R != E; ++R)
    for (int C = 0; C != U; ++C)
      A.at(static_cast<size_t>(R), static_cast<size_t>(C)) = Dist(Rng);
  Vector B(static_cast<size_t>(U));
  if (WithOffsets)
    for (int C = 0; C != U; ++C)
      B[static_cast<size_t>(C)] = Dist(Rng);
  return LinearNode(std::move(A), std::move(B), E, O, U);
}

std::vector<double> randomInput(std::mt19937 &Rng, size_t N) {
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<double> V(N);
  for (double &D : V)
    D = Dist(Rng);
  return V;
}

/// Simulates a channel: fires \p N as many times as \p Input allows and
/// returns the concatenated outputs.
std::vector<double> runNode(const LinearNode &N,
                            const std::vector<double> &Input) {
  if (Input.size() < static_cast<size_t>(N.peekRate()))
    return {};
  int Firings =
      1 + static_cast<int>((Input.size() - N.peekRate()) / N.popRate());
  return N.applyStream(Input, Firings);
}

TEST(LinearNode, Figure31Example) {
  // work peek 3 pop 1 push 2 { push(3*peek(2)+5*peek(1));
  //                            push(2*peek(2)+peek(0)+6); pop(); }
  // => A = [[2,3],[0,5],[1,0]], b = [6,0].
  Matrix A = Matrix::fromRows({{2, 3}, {0, 5}, {1, 0}});
  Vector B({6, 0});
  LinearNode N(A, B, 3, 1, 2);
  // Natural accessors: push 0 = 3*peek(2) + 5*peek(1).
  EXPECT_DOUBLE_EQ(N.coeff(2, 0), 3);
  EXPECT_DOUBLE_EQ(N.coeff(1, 0), 5);
  EXPECT_DOUBLE_EQ(N.coeff(0, 0), 0);
  EXPECT_DOUBLE_EQ(N.offset(0), 0);
  // push 1 = 2*peek(2) + peek(0) + 6.
  EXPECT_DOUBLE_EQ(N.coeff(2, 1), 2);
  EXPECT_DOUBLE_EQ(N.coeff(0, 1), 1);
  EXPECT_DOUBLE_EQ(N.offset(1), 6);

  auto Out = N.apply({10.0, 20.0, 30.0});
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_DOUBLE_EQ(Out[0], 3 * 30 + 5 * 20);
  EXPECT_DOUBLE_EQ(Out[1], 2 * 30 + 10 + 6);
}

TEST(LinearNode, ExpansionFigure34) {
  // Expanding A1 = [1;2] (e=2,o=1,u=1) to (4,1,3) gives the banded matrix
  // in Figure 3-4.
  LinearNode N(Matrix::fromRows({{1}, {2}}), Vector(1), 2, 1, 1);
  LinearNode X = expand(N, 4, 1, 3);
  EXPECT_EQ(X.matrix(), Matrix::fromRows({{1, 0, 0},
                                          {2, 1, 0},
                                          {0, 2, 1},
                                          {0, 0, 2}}));
}

TEST(LinearNode, ExpansionPreservesSemantics) {
  // expand(N, k) with u'=k*u, o'=k*o is interchangeable with k firings.
  std::mt19937 Rng(5);
  for (int Trial = 0; Trial != 20; ++Trial) {
    int E = 1 + static_cast<int>(Rng() % 5);
    int O = 1 + static_cast<int>(Rng() % E);
    int U = 1 + static_cast<int>(Rng() % 4);
    int K = 1 + static_cast<int>(Rng() % 4);
    LinearNode N = randomNode(Rng, E, O, U);
    LinearNode X = expand(N, E + (K - 1) * O, K * O, K * U);
    auto Input = randomInput(Rng, static_cast<size_t>(E + (K - 1) * O));
    auto Direct = N.applyStream(Input, K);
    auto Expanded = X.apply(Input);
    ASSERT_EQ(Direct.size(), Expanded.size());
    for (size_t I = 0; I != Direct.size(); ++I)
      EXPECT_NEAR(Direct[I], Expanded[I], 1e-9)
          << "E=" << E << " O=" << O << " U=" << U << " K=" << K;
  }
}

TEST(LinearNode, ExpansionPartialColumnsAndOffsets) {
  // u' not a multiple of u exercises the partial last copy and the
  // b'[j] = b[u-1-(u'-1-j) mod u] rule.
  LinearNode N(Matrix::fromRows({{1, 3}, {2, 4}}), Vector({10, 20}), 2, 1, 2);
  LinearNode X = expand(N, 3, 1, 3);
  // Offsets cycle push-wise: pushes are ..., so b' in natural order is
  // (10? 20?) — verify via semantics instead of literal layout:
  // firing 0 pushes apply(in[0..1]); firing 1 pushes apply(in[1..2])[0].
  std::vector<double> In = {1, 2, 3};
  auto Full = X.apply(In);
  auto F0 = N.apply(In);
  std::vector<double> Shift(In.begin() + 1, In.end());
  auto F1 = N.apply(Shift);
  ASSERT_EQ(Full.size(), 3u);
  EXPECT_NEAR(Full[0], F0[0], 1e-12);
  EXPECT_NEAR(Full[1], F0[1], 1e-12);
  EXPECT_NEAR(Full[2], F1[0], 1e-12);
}

TEST(LinearNode, PipelineCombinationFigure34) {
  LinearNode N1(Matrix::fromRows({{1}, {2}}), Vector(1), 2, 1, 1);
  LinearNode N2(Matrix::fromRows({{3}, {4}, {5}}), Vector(1), 3, 1, 1);
  LinearNode C = combinePipeline(N1, N2);
  EXPECT_EQ(C.peekRate(), 4);
  EXPECT_EQ(C.popRate(), 1);
  EXPECT_EQ(C.pushRate(), 1);
  EXPECT_EQ(C.matrix(), Matrix::fromRows({{3}, {10}, {13}, {10}}));
}

TEST(LinearNode, PipelineCombinationProperty) {
  std::mt19937 Rng(17);
  for (int Trial = 0; Trial != 40; ++Trial) {
    int E1 = 1 + static_cast<int>(Rng() % 4);
    int O1 = 1 + static_cast<int>(Rng() % E1);
    int U1 = 1 + static_cast<int>(Rng() % 3);
    int E2 = 1 + static_cast<int>(Rng() % 5);
    int O2 = 1 + static_cast<int>(Rng() % E2);
    int U2 = 1 + static_cast<int>(Rng() % 3);
    LinearNode N1 = randomNode(Rng, E1, O1, U1);
    LinearNode N2 = randomNode(Rng, E2, O2, U2);
    LinearNode C = combinePipeline(N1, N2);

    auto Input = randomInput(Rng, 96);
    auto Mid = runNode(N1, Input);
    auto Expect = runNode(N2, Mid);
    auto Got = runNode(C, Input);
    size_t Common = std::min(Expect.size(), Got.size());
    ASSERT_GT(Common, 0u) << "trial " << Trial;
    for (size_t I = 0; I != Common; ++I)
      EXPECT_NEAR(Got[I], Expect[I], 1e-7)
          << "trial " << Trial << " I=" << I << " rates (" << E1 << ","
          << O1 << "," << U1 << ")->(" << E2 << "," << O2 << "," << U2
          << ")";
  }
}

TEST(LinearNode, SplitJoinCombinationFigure36) {
  LinearNode N1(Matrix::fromRows({{1, 2, 3, 4}, {5, 6, 7, 8}}),
                Vector({5, 6, 7, 8}), 2, 2, 4);
  LinearNode N2(Matrix::fromRows({{9}}), Vector({10}), 1, 1, 1);
  LinearNode C = combineSplitJoinDuplicate({N1, N2}, {2, 1});
  EXPECT_EQ(C.peekRate(), 2);
  EXPECT_EQ(C.popRate(), 2);
  EXPECT_EQ(C.pushRate(), 6);
  EXPECT_EQ(C.matrix(), Matrix::fromRows({{9, 1, 2, 0, 3, 4},
                                          {0, 5, 6, 9, 7, 8}}));
  EXPECT_EQ(C.vector(), Vector({10, 5, 6, 10, 7, 8}));
}

/// Simulates a duplicate splitjoin with roundrobin joiner over \p Input.
std::vector<double> simulateDupSJ(const std::vector<LinearNode> &Children,
                                  const std::vector<int> &W,
                                  const std::vector<double> &Input) {
  std::vector<std::vector<double>> Outs;
  for (const LinearNode &C : Children)
    Outs.push_back(runNode(C, Input));
  std::vector<double> Merged;
  std::vector<size_t> Pos(Children.size(), 0);
  while (true) {
    for (size_t K = 0; K != Children.size(); ++K) {
      if (Pos[K] + static_cast<size_t>(W[K]) > Outs[K].size())
        return Merged;
      for (int I = 0; I != W[K]; ++I)
        Merged.push_back(Outs[K][Pos[K]++]);
    }
  }
}

TEST(LinearNode, SplitJoinDuplicateProperty) {
  std::mt19937 Rng(23);
  for (int Trial = 0; Trial != 30; ++Trial) {
    size_t NChildren = 2 + Rng() % 2;
    std::vector<LinearNode> Children;
    std::vector<int> W;
    int O = 1 + static_cast<int>(Rng() % 3);
    for (size_t K = 0; K != NChildren; ++K) {
      // All children share a pop rate (duplicate requires rate match
      // after joiner-derived repetitions; keep o_k equal and u_k = o so
      // every valid joiner weighting balances).
      int E = O + static_cast<int>(Rng() % 3);
      Children.push_back(randomNode(Rng, E, O, O));
      W.push_back(1 + static_cast<int>(Rng() % 2));
    }
    // Balance: rep_k = w_k*joinRep/u_k must give equal o*rep_k for all k;
    // with u_k = o_k = O this forces equal weights — so use equal weights.
    std::fill(W.begin(), W.end(), W[0]);
    LinearNode C = combineSplitJoin(Children, /*DuplicateSplitter=*/true,
                                    {}, W);
    auto Input = randomInput(Rng, 64);
    auto Expect = simulateDupSJ(Children, W, Input);
    auto Got = runNode(C, Input);
    size_t Common = std::min(Expect.size(), Got.size());
    ASSERT_GT(Common, 0u);
    for (size_t I = 0; I != Common; ++I)
      EXPECT_NEAR(Got[I], Expect[I], 1e-8) << "trial " << Trial;
  }
}

TEST(LinearNode, DecimatorSelectsSlice) {
  // roundrobin(2,1): child 0 sees items {0,1}, child 1 sees item {2}.
  LinearNode D0 = makeDecimator(3, 0, 2);
  LinearNode D1 = makeDecimator(3, 2, 1);
  std::vector<double> In = {7, 8, 9};
  EXPECT_EQ(D0.apply(In), (std::vector<double>{7, 8}));
  EXPECT_EQ(D1.apply(In), (std::vector<double>{9}));
}

TEST(LinearNode, RoundRobinSplitJoinProperty) {
  std::mt19937 Rng(31);
  for (int Trial = 0; Trial != 20; ++Trial) {
    // Two children, roundrobin(v0, v1) split, each child an FIR-like node
    // (e=o=u so rates always balance through lcm machinery).
    int V0 = 1 + static_cast<int>(Rng() % 3);
    int V1 = 1 + static_cast<int>(Rng() % 3);
    LinearNode C0 = randomNode(Rng, V0, V0, V0);
    LinearNode C1 = randomNode(Rng, V1, V1, V1);
    LinearNode C =
        combineSplitJoin({C0, C1}, /*DuplicateSplitter=*/false, {V0, V1},
                         {V0, V1});
    auto Input = randomInput(Rng, 60);
    // Simulate: deinterleave, run children, reinterleave.
    std::vector<double> In0, In1;
    for (size_t I = 0; I + V0 + V1 <= Input.size();) {
      for (int J = 0; J != V0; ++J)
        In0.push_back(Input[I++]);
      for (int J = 0; J != V1; ++J)
        In1.push_back(Input[I++]);
    }
    auto Out0 = runNode(C0, In0);
    auto Out1 = runNode(C1, In1);
    std::vector<double> Expect;
    for (size_t P0 = 0, P1 = 0;
         P0 + V0 <= Out0.size() && P1 + V1 <= Out1.size();) {
      for (int J = 0; J != V0; ++J)
        Expect.push_back(Out0[P0++]);
      for (int J = 0; J != V1; ++J)
        Expect.push_back(Out1[P1++]);
    }
    auto Got = runNode(C, Input);
    size_t Common = std::min(Expect.size(), Got.size());
    ASSERT_GT(Common, 0u);
    for (size_t I = 0; I != Common; ++I)
      EXPECT_NEAR(Got[I], Expect[I], 1e-8) << "trial " << Trial;
  }
}

TEST(LinearNode, CombinationWithOffsetsProperty) {
  // b must flow through pipeline combination as b1*A2 + b2.
  std::mt19937 Rng(41);
  LinearNode N1 = randomNode(Rng, 3, 1, 2, /*WithOffsets=*/true);
  LinearNode N2 = randomNode(Rng, 4, 2, 1, /*WithOffsets=*/true);
  LinearNode C = combinePipeline(N1, N2);
  auto Input = randomInput(Rng, 40);
  auto Expect = runNode(N2, runNode(N1, Input));
  auto Got = runNode(C, Input);
  size_t Common = std::min(Expect.size(), Got.size());
  ASSERT_GT(Common, 0u);
  for (size_t I = 0; I != Common; ++I)
    EXPECT_NEAR(Got[I], Expect[I], 1e-8);
}

} // namespace
