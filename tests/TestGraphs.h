//===- tests/TestGraphs.h - Small stream factories for tests ---*- C++ -*-===//
//
// Tiny filters mirroring Appendix A building blocks, used across the test
// suite. The full benchmark applications live in src/apps/.
//
//===----------------------------------------------------------------------===//

#ifndef SLIN_TESTS_TESTGRAPHS_H
#define SLIN_TESTS_TESTGRAPHS_H

#include "graph/Stream.h"
#include "wir/Build.h"

#include <memory>
#include <vector>

namespace slin {
namespace testing_helpers {

using namespace slin::wir;
using namespace slin::wir::build;

/// FloatSource: pushes 0, 1, 2, ... (stateful, nonlinear).
inline std::unique_ptr<Filter> makeCountingSource() {
  std::vector<FieldDef> Fields = {FieldDef::mutableScalar("x", 0)};
  WorkFunction W(0, 0, 1,
                 stmts(push(fld("x")), fldAssign("x", add(fld("x"), cst(1)))));
  return std::make_unique<Filter>("FloatSource", std::move(Fields),
                                  std::move(W));
}

/// FloatPrinter: prints and discards one item per firing.
inline std::unique_ptr<Filter> makePrinterSink() {
  WorkFunction W(1, 1, 0, stmts(printStmt(pop())));
  return std::make_unique<Filter>("FloatPrinter", std::vector<FieldDef>{},
                                  std::move(W));
}

/// FIR filter with explicit coefficients h (peek N pop 1 push 1),
/// convolution-sum form of Figure 1-3: sum += h[i] * peek(i).
inline std::unique_ptr<Filter> makeFIR(std::vector<double> H,
                                       const std::string &Name = "FIR") {
  int N = static_cast<int>(H.size());
  std::vector<FieldDef> Fields = {FieldDef::constArray("h", std::move(H))};
  WorkFunction W(
      N, 1, 1,
      stmts(assign("sum", cst(0)),
            loop("i", cst(0), cst(N),
                 stmts(assign("sum", add(vr("sum"), mul(fldAt("h", vr("i")),
                                                        peek(vr("i"))))))),
            push(vr("sum")), popStmt()));
  return std::make_unique<Filter>(Name, std::move(Fields), std::move(W));
}

/// Gain filter: push(g * pop()).
inline std::unique_ptr<Filter> makeGain(double G,
                                        const std::string &Name = "Gain") {
  WorkFunction W(1, 1, 1, stmts(push(mul(cst(G), pop()))));
  return std::make_unique<Filter>(Name, std::vector<FieldDef>{}, std::move(W));
}

/// Compressor(M): keeps the first of every M items (Figure A-4).
inline std::unique_ptr<Filter> makeCompressor(int M) {
  WorkFunction W(M, M, 1,
                 stmts(push(pop()),
                       loop("i", cst(0), cst(M - 1), stmts(popStmt()))));
  return std::make_unique<Filter>("Compressor", std::vector<FieldDef>{},
                                  std::move(W));
}

/// Expander(L): emits each input followed by L-1 zeros (Figure A-5).
inline std::unique_ptr<Filter> makeExpander(int L) {
  WorkFunction W(1, 1, L,
                 stmts(push(pop()),
                       loop("i", cst(0), cst(L - 1), stmts(push(cst(0))))));
  return std::make_unique<Filter>("Expander", std::vector<FieldDef>{},
                                  std::move(W));
}

/// Adder(N): pops N items and pushes their sum (FilterBank's combiner).
inline std::unique_ptr<Filter> makeAdder(int N) {
  WorkFunction W(N, N, 1,
                 stmts(assign("sum", cst(0)),
                       loop("i", cst(0), cst(N),
                            stmts(assign("sum", add(vr("sum"), pop())))),
                       push(vr("sum"))));
  return std::make_unique<Filter>("Adder", std::vector<FieldDef>{},
                                  std::move(W));
}

/// Identity filter.
inline std::unique_ptr<Filter> makeIdentity(const std::string &Name = "Id") {
  WorkFunction W(1, 1, 1, stmts(push(pop())));
  return std::make_unique<Filter>(Name, std::vector<FieldDef>{}, std::move(W));
}

/// Pops [a, b], pushes [a+b, a-b]; the body of a balanced feedback loop.
inline std::unique_ptr<Filter> makeSumDiffFilter() {
  WorkFunction W(2, 2, 2,
                 stmts(assign("a", pop()), assign("b", pop()),
                       push(add(vr("a"), vr("b"))),
                       push(sub(vr("a"), vr("b")))));
  return std::make_unique<Filter>("SumDiff", std::vector<FieldDef>{},
                                  std::move(W));
}

} // namespace testing_helpers
} // namespace slin

#endif // SLIN_TESTS_TESTGRAPHS_H
