//===- examples/custom_filter_analysis.cpp - Analyzing your own filter ----==//
//
// Shows the analysis toolkit on a hand-written filter: extraction of the
// linear node (Section 3.2), redundancy analysis (Algorithm 3) on its
// products, and the generated caching implementation (Transformation 7).
//
//===----------------------------------------------------------------------===//

#include "linear/Extract.h"
#include "opt/Redundancy.h"
#include "wir/Build.h"

#include <cstdio>

using namespace slin;
using namespace slin::wir;
using namespace slin::wir::build;

int main() {
  // The SimpleFIR of Figure 4-1: symmetric taps recompute products.
  //   work peek 3 pop 1 push 1 { push(2*peek(2) + peek(1) + 2*peek(0)); }
  WorkFunction W(3, 1, 1,
                 stmts(push(add(add(mul(cst(2), peek(2)), peek(1)),
                                mul(cst(2), peek(0)))),
                       popStmt()));
  Filter SimpleFIR("SimpleFIR", {}, std::move(W));
  std::printf("filter:\n%s\n", print(SimpleFIR.work()).c_str());

  ExtractionResult R = extractLinearNode(SimpleFIR);
  if (!R.isLinear()) {
    std::printf("not linear: %s\n", R.FailureReason.c_str());
    return 1;
  }
  std::printf("extracted:\n%s\n\n", R.Node->str().c_str());

  RedundancyInfo Info = analyzeRedundancy(*R.Node);
  std::printf("redundancy analysis (Algorithm 3):\n");
  for (const auto &[T, Uses] : Info.UseMap) {
    std::printf("  LCT (%.0f * peek(%d)) used in firings {", T.Coeff, T.Pos);
    for (int F : Uses)
      std::printf(" %d", F);
    std::printf(" }%s\n", Info.Reused.count(T) ? "  <- cached" : "");
  }
  std::printf("redundant fraction: %.0f%%\n\n",
              100.0 * Info.redundantFraction(*R.Node));

  auto Cached = makeRedundancyFilter(*R.Node, "NoRedundFIR");
  std::printf("generated caching filter (Figure 4-2's shape):\n%s\n",
              print(Cached->work()).c_str());
  return 0;
}
