//===- examples/quickstart.cpp - The motivating example -------------------==//
//
// Chapter 1's motivating example, end to end: write two FIR filters the
// natural way (Figure 1-3), let the compiler discover they are linear,
// combine them (Figure 1-4), move them to the frequency domain (Figure
// 1-5), and check that every version computes the same stream.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "exec/Measure.h"
#include "linear/Analysis.h"
#include "opt/Optimizer.h"
#include "wir/Build.h"

#include <cstdio>

using namespace slin;
using namespace slin::wir;
using namespace slin::wir::build;

/// float->float filter FIRFilter(float[N] weights)
///   work push 1 pop 1 peek N { ... sum += weights[i] * peek(i) ... }
static std::unique_ptr<Filter> makeFIRFilter(std::vector<double> Weights,
                                             const std::string &Name) {
  int N = static_cast<int>(Weights.size());
  std::vector<FieldDef> Fields = {
      FieldDef::constArray("weights", std::move(Weights))};
  WorkFunction W(
      N, 1, 1,
      stmts(assign("sum", cst(0)),
            loop("i", cst(0), cst(N),
                 stmts(assign("sum",
                              add(vr("sum"), mul(fldAt("weights", vr("i")),
                                                 peek(vr("i"))))))),
            push(vr("sum")), popStmt()));
  return std::make_unique<Filter>(Name, std::move(Fields), std::move(W));
}

int main() {
  // --- Figure 1-3: TwoFilters, written modularly. --------------------------
  auto Source = [] {
    std::vector<FieldDef> F = {FieldDef::mutableScalar("x", 0)};
    WorkFunction W(0, 0, 1, stmts(push(fld("x")),
                                  fldAssign("x", add(fld("x"), cst(1)))));
    return std::make_unique<Filter>("Source", std::move(F), std::move(W));
  };
  auto Sink = [] {
    WorkFunction W(1, 1, 0, stmts(printStmt(pop())));
    return std::make_unique<Filter>("Printer", std::vector<FieldDef>{},
                                    std::move(W));
  };

  auto Program = std::make_unique<Pipeline>("TwoFilters");
  Program->add(Source());
  Program->add(makeFIRFilter({0.25, 0.5, 0.25}, "FIR1"));
  Program->add(makeFIRFilter({0.5, -0.1, 0.2, 0.4}, "FIR2"));
  Program->add(Sink());

  std::printf("original program:\n%s\n", printGraph(*Program).c_str());

  // --- Linear extraction + combination (Chapter 3). ------------------------
  LinearAnalysis LA(*Program);
  const Stream &FIR1 = *cast<Pipeline>(Program.get())->children()[1];
  std::printf("extracted node for FIR1:\n%s\n\n",
              LA.nodeFor(FIR1)->str().c_str());
  std::printf("combined node for the whole pipeline: %s\n\n",
              LA.nodeFor(*Program)
                  ? "(nonlinear source/sink keep the top level nonlinear)"
                  : "none — as expected");

  // --- The three optimized versions (Chapters 3-4). ------------------------
  auto Combined = optimizeLinear(*Program);  // Figure 1-4
  auto Frequency = optimizeFreq(*Program);   // Figure 1-5
  auto Selected = optimizeAutoSel(*Program); // Section 4.3

  std::printf("after linear replacement:\n%s\n",
              printGraph(*Combined).c_str());
  std::printf("after frequency replacement:\n%s\n",
              printGraph(*Frequency).c_str());

  // --- All versions agree. --------------------------------------------------
  auto Expect = collectOutputs(*Program, 10);
  for (const auto &[Name, S] :
       {std::pair<const char *, const Stream *>{"linear", Combined.get()},
        {"freq", Frequency.get()},
        {"autosel", Selected.get()}}) {
    auto Got = collectOutputs(*S, 10);
    double Max = 0;
    for (size_t I = 0; I != Got.size(); ++I)
      Max = std::max(Max, std::abs(Got[I] - Expect[I]));
    std::printf("%-8s outputs match baseline (max error %.2e)\n", Name, Max);
  }

  // --- And the savings are real. --------------------------------------------
  MeasureOptions MO;
  MO.MeasureTime = false;
  std::printf("\nmultiplications per output:\n");
  std::printf("  original  %6.2f\n",
              measureSteadyState(*Program, MO).multsPerOutput());
  std::printf("  combined  %6.2f\n",
              measureSteadyState(*Combined, MO).multsPerOutput());
  std::printf("  frequency %6.2f\n",
              measureSteadyState(*Frequency, MO).multsPerOutput());
  return 0;
}
