//===- examples/fm_equalizer.cpp - FMRadio walk-through --------------------==//
//
// Section 3.3.4's multi-band equalizer scenario on the real FMRadio
// benchmark: ten band filters designed independently collapse into one
// linear node, so a design change means a recompile instead of a manual
// filter redesign. Shows the before/after graphs and the measured
// operation savings.
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "exec/Measure.h"
#include "linear/Analysis.h"
#include "opt/Optimizer.h"

#include <cstdio>

using namespace slin;

int main() {
  StreamPtr Radio = apps::buildFMRadio();

  LinearAnalysis LA(*Radio);
  auto S = LA.stats();
  std::printf("FMRadio: %d filters (%d linear), %d pipelines, %d "
              "splitjoins; average vector size %.0f\n\n",
              S.Filters, S.LinearFilters, S.Pipelines, S.SplitJoins,
              S.AvgVectorSize);
  std::printf("original graph:\n%s\n", printGraph(*Radio).c_str());

  StreamPtr Opt = optimizeAutoSel(*Radio);
  std::printf("after automatic optimization selection:\n%s\n",
              printGraph(*Opt).c_str());

  MeasureOptions MO;
  MO.WarmupOutputs = 512;
  MO.MeasureOutputs = 1024;
  Measurement Base = measureSteadyState(*Radio, MO);
  Measurement Sel = measureSteadyState(*Opt, MO);
  std::printf("FLOPs/output: %.0f -> %.0f (%.0f%% removed)\n",
              Base.flopsPerOutput(), Sel.flopsPerOutput(),
              100.0 * (1.0 - Sel.flopsPerOutput() / Base.flopsPerOutput()));
  std::printf("time/output:  %.2fus -> %.2fus (%.1fx)\n",
              Base.secondsPerOutput() * 1e6, Sel.secondsPerOutput() * 1e6,
              Base.secondsPerOutput() / Sel.secondsPerOutput());
  return 0;
}
