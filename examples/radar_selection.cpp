//===- examples/radar_selection.cpp - Why selection matters ----------------==//
//
// Section 5.2's Radar story: the Beamform stage pushes 2 items but pops
// 24, so blindly collapsing it with downstream filters duplicates most of
// its work, and frequency replacement drowns in the high pop rates. The
// selection DP averts both. This example measures all four configurations
// side by side.
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "exec/Measure.h"
#include "opt/Optimizer.h"

#include <cstdio>

using namespace slin;

int main() {
  apps::RadarParams P;
  P.Channels = 8;
  P.Beams = 4;
  StreamPtr Radar = apps::buildRadar(P);

  MeasureOptions MO;
  MO.WarmupOutputs = 256;
  MO.MeasureOutputs = 512;

  Measurement Base = measureSteadyState(*Radar, MO);
  std::printf("Radar (%d channels, %d beams): %.0f mults/output as "
              "written\n\n", P.Channels, P.Beams, Base.multsPerOutput());
  std::printf("%-22s %16s %14s\n", "configuration", "mults/output",
              "vs original");

  struct Cfg {
    const char *Name;
    OptMode Mode;
  };
  for (Cfg C : {Cfg{"maximal linear", OptMode::Linear},
                Cfg{"maximal frequency", OptMode::Freq},
                Cfg{"automatic selection", OptMode::AutoSel}}) {
    OptimizerOptions O;
    O.Mode = C.Mode;
    StreamPtr Opt = optimize(*Radar, O);
    Measurement M = measureSteadyState(*Opt, MO);
    std::printf("%-22s %16.0f %+13.1f%%\n", C.Name, M.multsPerOutput(),
                100.0 * (M.multsPerOutput() / Base.multsPerOutput() - 1.0));
  }
  std::printf("\n(the selection algorithm averts the blowup that both "
              "maximal strategies cause)\n");
  return 0;
}
