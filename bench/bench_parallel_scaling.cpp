//===- bench/bench_parallel_scaling.cpp - Parallel backend scaling --------==//
//
// Throughput scaling of the parallel sharded backend (exec/Parallel.h)
// over worker counts, on representative shardable benchmarks, plus the
// executor-pool "serve many users" mode. Each row reports wall-clock for
// a fixed iteration span (best of N rounds, op counting off) and the
// speedup against the single-worker run of the same program.
//
// Sharding overhead is the washout replay (shard boundaries are
// reconstructed, not re-executed), so per-worker spans are chosen large
// relative to each program's washout depth. Speedups saturate at the
// machine's core count: on a single-core container every worker count
// measures ~1x.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "compiler/Program.h"
#include "exec/Parallel.h"

#include <chrono>

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

struct ScalingCase {
  const char *Name;
  OptMode Mode;
  const char *ModeTag;
  int64_t Iterations;
};

} // namespace

int main() {
  JsonReport Report("parallel_scaling");
  const int Rounds = 3;
  const int WorkerSweep[] = {1, 2, 4, 8};

  const ScalingCase Cases[] = {
      {"FIR", OptMode::Base, "base", 16384},
      {"FilterBank", OptMode::Linear, "linear", 2048},
      {"Radar", OptMode::AutoSel, "autosel", 2048},
  };

  std::printf("Sharded steady-state scaling (fixed iteration span)\n");
  std::printf("%-22s %8s %10s %12s %9s %7s\n", "Benchmark", "workers",
              "shards", "ms (best)", "iters/ms", "speedup");
  printRule();

  for (const ScalingCase &C : Cases) {
    StreamPtr Root;
    for (const BenchmarkEntry &B : allBenchmarks())
      if (B.Name == C.Name)
        Root = B.Build();
    OptimizerOptions O;
    O.Mode = C.Mode;
    StreamPtr Opt = optimize(*Root, O);
    auto Program =
        std::make_shared<const CompiledProgram>(*Opt, CompiledOptions());
    std::string Label = std::string(C.Name) + "_" + C.ModeTag;
    if (!Program->shardInfo().Shardable) {
      std::printf("%-22s unshardable: %s\n", Label.c_str(),
                  Program->shardInfo().Reason.c_str());
      continue;
    }

    double OneWorker = 0.0;
    for (int Workers : WorkerSweep) {
      ParallelOptions PO;
      PO.Workers = Workers;
      PO.ShardMinIterations = 32;
      double Best = 0.0;
      int Shards = 0;
      for (int R = 0; R != Rounds; ++R) {
        ParallelExecutor E(Program, PO);
        ops::CountingScope Off(false);
        auto Start = std::chrono::steady_clock::now();
        E.runIterations(C.Iterations);
        double Secs = secondsSince(Start);
        if (R == 0 || Secs < Best)
          Best = Secs;
        Shards = E.lastRunStats().ShardsUsed;
      }
      if (Workers == 1)
        OneWorker = Best;
      double Speedup = Best > 0.0 ? OneWorker / Best : 0.0;
      std::printf("%-22s %8d %10d %12.2f %9.1f %6.2fx\n", Label.c_str(),
                  Workers, Shards, Best * 1e3,
                  static_cast<double>(C.Iterations) / (Best * 1e3), Speedup);
      Report.add(Label, Engine::Parallel,
                 {{"workers", static_cast<double>(Workers)},
                  {"shards", static_cast<double>(Shards)},
                  {"iterations", static_cast<double>(C.Iterations)},
                  {"washout",
                   static_cast<double>(Program->shardInfo().WashoutIterations)},
                  {"ms", Best * 1e3},
                  {"speedup_x", Speedup}});
    }
    printRule();
  }

  // Executor-pool mode: many independent short runs against one program.
  {
    StreamPtr Root;
    for (const BenchmarkEntry &B : allBenchmarks())
      if (B.Name == "FIR")
        Root = B.Build();
    auto Program =
        std::make_shared<const CompiledProgram>(*Root, CompiledOptions());
    const int Requests = 32;
    const size_t Outputs = 2048;
    std::printf("Executor pool (%d requests x %zu outputs)\n", Requests,
                Outputs);
    std::printf("%-22s %8s %12s %7s\n", "Benchmark", "workers", "ms (best)",
                "speedup");
    printRule();
    double OneWorker = 0.0;
    for (int Workers : WorkerSweep) {
      double Best = 0.0;
      for (int R = 0; R != Rounds; ++R) {
        ExecutorPool Pool(Program, Workers);
        ops::CountingScope Off(false);
        auto Start = std::chrono::steady_clock::now();
        std::vector<std::future<ExecutorPool::Result>> Futures;
        for (int I = 0; I != Requests; ++I) {
          ExecutorPool::Request Req;
          Req.NOutputs = Outputs;
          Futures.push_back(Pool.submit(std::move(Req)));
        }
        for (auto &F : Futures)
          F.get();
        double Secs = secondsSince(Start);
        if (R == 0 || Secs < Best)
          Best = Secs;
      }
      if (Workers == 1)
        OneWorker = Best;
      double Speedup = Best > 0.0 ? OneWorker / Best : 0.0;
      std::printf("%-22s %8d %12.2f %6.2fx\n", "FIR_base_pool", Workers,
                  Best * 1e3, Speedup);
      Report.add("FIR_base_pool", Engine::Parallel,
                 {{"workers", static_cast<double>(Workers)},
                  {"requests", static_cast<double>(Requests)},
                  {"outputs", static_cast<double>(Outputs)},
                  {"ms", Best * 1e3},
                  {"speedup_x", Speedup}});
    }
    printRule();
  }
  return 0;
}
