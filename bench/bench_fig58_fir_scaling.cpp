//===- bench/bench_fig58_fir_scaling.cpp - Figures 5-8 and 5-9 ------------==//
//
// FIR scaling (Section 5.5): multiplication elimination and speedup of
// frequency replacement as a function of the FIR tap count (Figure 5-8),
// plus the original-vs-optimized execution time scatter with the
// selection cost-function curve (Figure 5-9).
//
// Every configuration is measured on both execution engines: the dynamic
// tree-walking interpreter and the compiled batched engine (B = 16
// steady-state iterations per batch). The "engine speedup" column is the
// compiled engine's wall-clock advantage on the *same* program — the
// payoff of static scheduling + op tapes + batched kernels, orthogonal
// to the paper's algorithmic optimizations.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cmath>

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  JsonReport Report("fig58_fir_scaling");

  std::printf("Figure 5-8: frequency replacement vs FIR size "
              "(both execution engines)\n");
  printRule(78);
  std::printf("%5s %13s %13s %13s %9s %9s\n", "taps", "base mults/out",
              "freq mults/out", "mults removed", "freq spd", "engine x");
  printRule(78);

  struct Point {
    int Taps;
    double BaseUs, OptUs;
  };
  std::vector<Point> Scatter;

  for (int Taps = 4; Taps <= 128; Taps += Taps < 16 ? 2 : 8) {
    StreamPtr Root = buildFIR(Taps);
    std::string T = std::to_string(Taps);
    OptimizerOptions O;
    O.Mode = OptMode::Base;
    Measurement Base = measureConfig(*Root, O, "FIR", true);
    Measurement BaseC =
        measureConfig(*Root, O, "FIR", true, Engine::Compiled);
    O.Mode = OptMode::Freq;
    Measurement Freq = measureConfig(*Root, O, "FIR", true);
    Measurement FreqC =
        measureConfig(*Root, O, "FIR", true, Engine::Compiled);

    double EngineSpeedup =
        BaseC.secondsPerOutput() > 0.0
            ? Base.secondsPerOutput() / BaseC.secondsPerOutput()
            : 0.0;
    std::printf("%5d %14.1f %13.1f %12.1f%% %8.1f%% %8.2fx\n", Taps,
                Base.multsPerOutput(), Freq.multsPerOutput(),
                percentRemoved(Base.multsPerOutput(), Freq.multsPerOutput()),
                speedupPercent(Base.secondsPerOutput(),
                               Freq.secondsPerOutput()),
                EngineSpeedup);
    Report.add("FIR" + T + "_base", Engine::Dynamic, Base, {{"taps", double(Taps)}});
    Report.add("FIR" + T + "_base", Engine::Compiled, BaseC, {{"taps", double(Taps)}});
    Report.add("FIR" + T + "_freq", Engine::Dynamic, Freq, {{"taps", double(Taps)}});
    Report.add("FIR" + T + "_freq", Engine::Compiled, FreqC, {{"taps", double(Taps)}});
    Scatter.push_back({Taps, Base.secondsPerOutput() * 1e6,
                       Freq.secondsPerOutput() * 1e6});
  }

  std::printf("\nFigure 5-9: original vs optimized time per output "
              "(with the selection cost curve)\n");
  printRule(70);
  std::printf("%6s %16s %18s %16s\n", "taps", "original us/out",
              "optimized us/out", "cost-curve value");
  printRule(70);
  for (const Point &P : Scatter) {
    // The reconstructed freqVal shape: a logarithmic curve in the tap
    // count scaled into the measured time range (Section 5.5).
    double CostCurve = 0.65 + std::log(static_cast<double>(P.Taps)) / 10.0;
    std::printf("%6d %16.3f %18.3f %16.3f\n", P.Taps, P.BaseUs, P.OptUs,
                CostCurve * Scatter.front().OptUs);
  }
  std::printf("(expected shape: optimized time grows ~lg(N) while original "
              "grows linearly)\n");
  return 0;
}
