//===- bench/bench_matrix.cpp - Linear-kernel micro-benchmarks ------------==//
//
// Micro-benchmarks for the runtime linear-replacement kernels: the banded
// ("diagonal", Figure 5-7) multiply and the ATLAS-substitute tuned gemv.
//
//===----------------------------------------------------------------------===//

#include "matrix/Kernels.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace slin;

namespace {

Matrix randomMatrix(int E, int U, double Sparsity) {
  std::mt19937 Rng(23);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::uniform_real_distribution<double> Coin(0.0, 1.0);
  Matrix M(E, U);
  for (int P = 0; P != E; ++P)
    for (int J = 0; J != U; ++J)
      if (Coin(Rng) >= Sparsity)
        M.at(P, J) = Dist(Rng);
  return M;
}

void BM_BandedGemv(benchmark::State &State) {
  int E = static_cast<int>(State.range(0));
  Matrix C = randomMatrix(E, 4, 0.0);
  PackedLinearKernel K(C, Vector(4));
  std::vector<double> In(E, 1.0), Out(4);
  for ([[maybe_unused]] auto _ : State) {
    K.applyBanded(In.data(), Out.data());
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * E * 4);
}
BENCHMARK(BM_BandedGemv)->RangeMultiplier(4)->Range(16, 1024);

void BM_TunedGemv(benchmark::State &State) {
  int E = static_cast<int>(State.range(0));
  Matrix C = randomMatrix(E, 4, 0.0);
  TunedGemv K(C, Vector(4));
  std::vector<double> In(E, 1.0), Out(4);
  for ([[maybe_unused]] auto _ : State) {
    K.apply(In.data(), Out.data());
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * E * 4);
}
BENCHMARK(BM_TunedGemv)->RangeMultiplier(4)->Range(16, 1024);

} // namespace

#include "GBenchMain.h"

int main(int argc, char **argv) {
  return slin::bench::runGoogleBenchmarks(argc, argv, "matrix");
}
