//===- bench/bench_artifact_store.cpp - Warm-start benchmark --------------==//
//
// The disk-persistent artifact store (compiler/ArtifactStore.h): how much
// of a service restart's compile bill does SLIN_ARTIFACT_DIR eliminate?
//
//  * default mode measures, per fig 5-1 pipeline, the in-memory-cold
//    compile (pass-through analysis cache, no program cache — the
//    pre-artifact restart cost) against a warm start that resolves the
//    same configuration through the artifact store with every in-memory
//    cache cleared (the post-restart cost). Target: >= 5x.
//  * --populate <dir> compiles every configuration into <dir>;
//    --serve <dir> then proves (exit status) that a *separate process*
//    loads each stored artifact with zero compiler passes and serves
//    outputs bit-identical to a from-scratch compile. CI runs the pair
//    as its two-process cache-sharing smoke test.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "compiler/ArtifactStore.h"
#include "compiler/Program.h"
#include "support/RuntimeConfig.h"

#include <chrono>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

namespace {

const char *const Names[] = {"FIR", "RateConvert", "TargetDetect",
                             "FilterBank", "Radar"};
constexpr size_t ServeWindow = 256;

StreamPtr buildByName(const std::string &Name) {
  for (const BenchmarkEntry &B : allBenchmarks())
    if (B.Name == Name)
      return B.Build();
  std::fprintf(stderr, "unknown benchmark %s\n", Name.c_str());
  std::exit(2);
}

/// The fig 5-1 serving configuration: AutoSel with the compiled engine's
/// measured cost model (the most expensive compile path in the harness).
OptimizerOptions servingConfig() {
  static const MeasuredCostModel CompiledModel{Engine::Compiled};
  OptimizerOptions O;
  O.Mode = OptMode::AutoSel;
  O.Model = &CompiledModel;
  O.Exec.Eng = Engine::Compiled;
  return O;
}

double msSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
             .count() *
         1e3;
}

void flushMemoryCaches() {
  AnalysisManager::global().invalidate();
  ProgramCache::global().clear();
}

int populate(const std::string &Dir) {
  ArtifactStore::setGlobalDir(Dir);
  for (const char *Name : Names) {
    StreamPtr Root = buildByName(Name);
    CompileResult R = compileStream(*Root, servingConfig());
    if (!R.Program) {
      std::fprintf(stderr, "%s: no program produced\n", Name);
      return 1;
    }
  }
  ArtifactStore::Stats S = ArtifactStore::global()->stats();
  std::printf("populated %s: %llu artifacts stored\n", Dir.c_str(),
              static_cast<unsigned long long>(S.Stores));
  return 0;
}

int serve(const std::string &Dir) {
  ArtifactStore::setGlobalDir(Dir);
  int Failures = 0;
  for (const char *Name : Names) {
    StreamPtr Root = buildByName(Name);

    // This process is cold: any pass beyond the artifact load means the
    // cross-process cache failed.
    flushMemoryCaches();
    CompileResult Warm = compileStream(*Root, servingConfig());
    bool ZeroPasses = Warm.Program && Warm.Program->loadedFromArtifact() &&
                      Warm.Passes.size() == 1 &&
                      Warm.Passes[0].Name == "artifact-load";
    std::vector<double> Served =
        Warm.Program ? collectOutputs(*Warm.Optimized, ServeWindow,
                                      Engine::Compiled)
                     : std::vector<double>();

    // Reference: a from-scratch compile that never touches the store.
    OptimizerOptions Cold = servingConfig();
    AnalysisManager PassThrough;
    PassThrough.setEnabled(false);
    Cold.AM = &PassThrough;
    Cold.UseProgramCache = false;
    CompileResult Ref = compileStream(*Root, Cold);
    std::vector<double> Expect =
        collectOutputs(*Ref.Optimized, ServeWindow, Engine::Dynamic);
    // Dynamic vs compiled engines are bit-identical (equivalence_test),
    // so the dynamic run of the reference stream is a store-independent
    // oracle for the served outputs.
    bool BitIdentical = Served == Expect;

    std::printf("%-14s zero-pass load: %-3s  bit-identical: %-3s\n", Name,
                ZeroPasses ? "yes" : "NO", BitIdentical ? "yes" : "NO");
    if (!ZeroPasses || !BitIdentical)
      ++Failures;
  }
  return Failures ? 1 : 0;
}

int coldWarmReport() {
  JsonReport Report("artifact_store");
  std::string Dir = RuntimeConfig::current().ArtifactDir;
  bool OwnDir = Dir.empty();
  if (OwnDir) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "artifact-store-bench.%ld",
                  static_cast<long>(::getpid()));
    Dir = Buf;
  }

  std::printf("%-14s %14s %14s %10s\n", "Benchmark", "cold (ms)",
              "warm (ms)", "speedup");
  printRule(56);
  double ColdTotal = 0.0, WarmTotal = 0.0;
  for (const char *Name : Names) {
    StreamPtr Root = buildByName(Name);

    // In-memory-cold: the pre-artifact restart price (every cache empty
    // and unused, as under SLIN_NO_CACHE).
    ArtifactStore::setGlobalDir("");
    OptimizerOptions Cold = servingConfig();
    AnalysisManager PassThrough;
    PassThrough.setEnabled(false);
    Cold.AM = &PassThrough;
    Cold.UseProgramCache = false;
    auto Start = std::chrono::steady_clock::now();
    CompileResult ColdR = compileStream(*Root, Cold);
    double ColdMs = msSince(Start);

    // Warm start: stored artifact on disk, in-memory caches as empty as
    // a fresh process.
    ArtifactStore::setGlobalDir(Dir);
    flushMemoryCaches();
    compileStream(*Root, servingConfig()); // populate disk
    flushMemoryCaches();
    Start = std::chrono::steady_clock::now();
    CompileResult WarmR = compileStream(*Root, servingConfig());
    double WarmMs = msSince(Start);

    bool Loaded = WarmR.Program && WarmR.Program->loadedFromArtifact();
    if (!Loaded)
      std::fprintf(stderr, "%s: warm compile missed the store!\n", Name);
    (void)ColdR;

    ColdTotal += ColdMs;
    WarmTotal += WarmMs;
    std::printf("%-14s %14.2f %14.2f %9.1fx\n", Name, ColdMs, WarmMs,
                WarmMs > 0 ? ColdMs / WarmMs : 0.0);
    Report.add(Name, Engine::Compiled,
               {{"cold_ms", ColdMs},
                {"warm_ms", WarmMs},
                {"speedup", WarmMs > 0 ? ColdMs / WarmMs : 0.0},
                {"loaded_from_disk", Loaded ? 1.0 : 0.0}});
  }
  printRule(56);
  double Speedup = WarmTotal > 0 ? ColdTotal / WarmTotal : 0.0;
  std::printf("%-14s %14.2f %14.2f %9.1fx  (target >= 5x)\n", "total",
              ColdTotal, WarmTotal, Speedup);
  Report.add("total", Engine::Compiled,
             {{"cold_ms", ColdTotal},
              {"warm_ms", WarmTotal},
              {"speedup", Speedup}});

  ArtifactStore::setGlobalDir("");
  if (OwnDir) {
    std::string Cmd = "rm -rf '" + Dir + "'";
    if (std::system(Cmd.c_str()) != 0)
      std::fprintf(stderr, "warning: could not remove %s\n", Dir.c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc == 3 && std::strcmp(Argv[1], "--populate") == 0)
    return populate(Argv[2]);
  if (Argc == 3 && std::strcmp(Argv[1], "--serve") == 0)
    return serve(Argv[2]);
  if (Argc != 1) {
    std::fprintf(stderr,
                 "usage: %s [--populate <dir> | --serve <dir>]\n", Argv[0]);
    return 2;
  }
  return coldWarmReport();
}
