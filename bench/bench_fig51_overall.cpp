//===- bench/bench_fig51_overall.cpp - Figures 5-1, 5-2, 5-3 --------------==//
//
// Overall validation (Section 5.2): for every benchmark, the elimination
// of floating-point operations (Figure 5-1), the elimination of
// multiplications (Figure 5-2), and the execution speedup (Figure 5-3)
// under maximal linear replacement, maximal frequency replacement and
// automatic optimization selection. One measurement sweep powers all
// three figures; each is printed as its own series.
//
// Every configuration is additionally measured on the compiled batched
// engine; the final series reports its wall-clock advantage over the
// dynamic interpreter on the same programs. FLOP counts are engine-
// independent (the engines execute identical arithmetic).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  JsonReport Report("fig51_overall");

  struct Row {
    std::string Name;
    Measurement Base, Linear, Freq, AutoSel;
    Measurement BaseC, LinearC, FreqC, AutoSelC; ///< compiled engine
  };
  std::vector<Row> Rows;

  for (const BenchmarkEntry &B : allBenchmarks()) {
    StreamPtr Root = B.Build();
    Row R;
    R.Name = B.Name;
    OptimizerOptions O;
    O.Mode = OptMode::Base;
    R.Base = measureConfig(*Root, O, B.Name, true);
    R.BaseC = measureConfig(*Root, O, B.Name, true, Engine::Compiled);
    O.Mode = OptMode::Linear;
    R.Linear = measureConfig(*Root, O, B.Name, true);
    R.LinearC = measureConfig(*Root, O, B.Name, true, Engine::Compiled);
    O.Mode = OptMode::Freq;
    R.Freq = measureConfig(*Root, O, B.Name, true);
    R.FreqC = measureConfig(*Root, O, B.Name, true, Engine::Compiled);
    O.Mode = OptMode::AutoSel;
    R.AutoSel = measureConfig(*Root, O, B.Name, true);
    R.AutoSelC = measureConfig(*Root, O, B.Name, true, Engine::Compiled);
    for (auto [Tag, MD, MC] :
         {std::tuple<const char *, const Measurement *, const Measurement *>
              {"base", &R.Base, &R.BaseC},
          {"linear", &R.Linear, &R.LinearC},
          {"freq", &R.Freq, &R.FreqC},
          {"autosel", &R.AutoSel, &R.AutoSelC}}) {
      Report.add(B.Name + "_" + Tag, Engine::Dynamic, *MD);
      Report.add(B.Name + "_" + Tag, Engine::Compiled, *MC);
    }
    Rows.push_back(std::move(R));
    std::printf("measured %s\n", B.Name.c_str());
  }

  std::printf("\nFigure 5-1: elimination of floating point operations (%%)\n");
  printRule();
  std::printf("%-14s %12s %12s %12s %14s\n", "Benchmark", "base FLOPs/out",
              "linear", "freq", "autosel");
  printRule();
  double SumAuto = 0;
  for (const Row &R : Rows) {
    std::printf("%-14s %14.1f %11.1f%% %11.1f%% %13.1f%%\n", R.Name.c_str(),
                R.Base.flopsPerOutput(),
                percentRemoved(R.Base.flopsPerOutput(),
                               R.Linear.flopsPerOutput()),
                percentRemoved(R.Base.flopsPerOutput(),
                               R.Freq.flopsPerOutput()),
                percentRemoved(R.Base.flopsPerOutput(),
                               R.AutoSel.flopsPerOutput()));
    SumAuto += percentRemoved(R.Base.flopsPerOutput(),
                              R.AutoSel.flopsPerOutput());
  }
  printRule();
  std::printf("average FLOPs removed by autosel: %.1f%%  (paper: 86%%)\n",
              SumAuto / Rows.size());

  std::printf("\nFigure 5-2: elimination of multiplications (%%)\n");
  printRule();
  std::printf("%-14s %12s %12s %12s %14s\n", "Benchmark", "base mults/out",
              "linear", "freq", "autosel");
  printRule();
  for (const Row &R : Rows)
    std::printf("%-14s %14.1f %11.1f%% %11.1f%% %13.1f%%\n", R.Name.c_str(),
                R.Base.multsPerOutput(),
                percentRemoved(R.Base.multsPerOutput(),
                               R.Linear.multsPerOutput()),
                percentRemoved(R.Base.multsPerOutput(),
                               R.Freq.multsPerOutput()),
                percentRemoved(R.Base.multsPerOutput(),
                               R.AutoSel.multsPerOutput()));

  std::printf("\nFigure 5-3: execution speedup (%%; 100%% = 2x faster)\n");
  printRule();
  std::printf("%-14s %14s %12s %12s %14s\n", "Benchmark", "base us/out",
              "linear", "freq", "autosel");
  printRule();
  double SumSpeed = 0, BestSpeed = 0;
  for (const Row &R : Rows) {
    double Lin = speedupPercent(R.Base.secondsPerOutput(),
                                R.Linear.secondsPerOutput());
    double Frq = speedupPercent(R.Base.secondsPerOutput(),
                                R.Freq.secondsPerOutput());
    double Sel = speedupPercent(R.Base.secondsPerOutput(),
                                R.AutoSel.secondsPerOutput());
    std::printf("%-14s %14.2f %11.1f%% %11.1f%% %13.1f%%\n", R.Name.c_str(),
                R.Base.secondsPerOutput() * 1e6, Lin, Frq, Sel);
    SumSpeed += Sel;
    BestSpeed = std::max(BestSpeed, Sel);
  }
  printRule();
  std::printf("average autosel speedup: %.0f%%  best: %.0f%%  "
              "(paper: 450%% avg, 800%% best)\n",
              SumSpeed / Rows.size(), BestSpeed);

  std::printf("\nTwo engines: compiled-vs-dynamic wall clock on the same "
              "program (x)\n");
  printRule();
  std::printf("%-14s %10s %10s %10s %10s\n", "Benchmark", "base", "linear",
              "freq", "autosel");
  printRule();
  auto Ratio = [](const Measurement &D, const Measurement &C) {
    return C.secondsPerOutput() > 0.0
               ? D.secondsPerOutput() / C.secondsPerOutput()
               : 0.0;
  };
  for (const Row &R : Rows)
    std::printf("%-14s %9.2fx %9.2fx %9.2fx %9.2fx\n", R.Name.c_str(),
                Ratio(R.Base, R.BaseC), Ratio(R.Linear, R.LinearC),
                Ratio(R.Freq, R.FreqC), Ratio(R.AutoSel, R.AutoSelC));

  // Artifact reuse across the harness: every configuration above ran the
  // full compiler pipeline (analysis, transform, lowering). Rerun with
  // SLIN_NO_CACHE=1 to compare against cold compiles every time.
  std::printf("\ncompiler pipeline time across the harness: %.3f s "
              "(analysis/program caches %s)\n",
              compileSecondsTotal(), cachesDisabled() ? "OFF" : "ON");
  Report.add("harness_compile_total", Engine::Dynamic,
             {{"seconds", compileSecondsTotal()},
              {"caches_enabled", cachesDisabled() ? 0.0 : 1.0}});
  return 0;
}
