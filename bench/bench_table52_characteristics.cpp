//===- bench/bench_table52_characteristics.cpp - Table 5.2 ----------------==//
//
// Characteristics of the benchmarks before and after running the
// automatic selection optimizations (Table 5.2): stream construct counts,
// how many are linear, and the average vector size (e*u over linear
// filters).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "linear/Analysis.h"

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  JsonReport Report("table52_characteristics");
  std::printf("Table 5.2: benchmark characteristics before/after autosel\n");
  printRule(94);
  std::printf("%-13s | %9s %10s %10s %9s | %9s %10s %10s\n", "Benchmark",
              "Filters", "Pipelines", "SplitJoins", "AvgVec", "Filters",
              "Pipelines", "SplitJoins");
  std::printf("%-13s | %9s %10s %10s %9s | %9s %10s %10s\n", "",
              "(linear)", "(linear)", "(linear)", "", "", "", "");
  printRule(94);
  for (const BenchmarkEntry &B : allBenchmarks()) {
    StreamPtr Root = B.Build();
    LinearAnalysis LA(*Root);
    auto S = LA.stats();

    StreamPtr Opt = optimizeAutoSel(*Root);
    GraphCounts After = countStreams(*Opt);

    char FBuf[24], PBuf[24], SBuf[24];
    std::snprintf(FBuf, sizeof(FBuf), "%d (%d)", S.Filters, S.LinearFilters);
    std::snprintf(PBuf, sizeof(PBuf), "%d (%d)", S.Pipelines,
                  S.LinearPipelines);
    std::snprintf(SBuf, sizeof(SBuf), "%d (%d)", S.SplitJoins,
                  S.LinearSplitJoins);
    std::printf("%-13s | %9s %10s %10s %9.0f | %9d %10d %10d\n",
                B.Name.c_str(), FBuf, PBuf, SBuf, S.AvgVectorSize,
                After.Filters, After.Pipelines, After.SplitJoins);
    Report.add(B.Name, Engine::Dynamic,
               {{"filters", double(S.Filters)},
                {"linear_filters", double(S.LinearFilters)},
                {"pipelines", double(S.Pipelines)},
                {"splitjoins", double(S.SplitJoins)},
                {"avg_vector_size", S.AvgVectorSize},
                {"filters_after", double(After.Filters)},
                {"pipelines_after", double(After.Pipelines)},
                {"splitjoins_after", double(After.SplitJoins)}});
  }
  printRule(94);
  std::printf("(paper, before: FIR 3(1), RateConvert 5(3), TargetDetect "
              "10(4), FMRadio 26(22),\n Radar 76(60), FilterBank 27(24), "
              "Vocoder 17(13), Oversampler 10(8), DToA 14(10))\n");
  return 0;
}
