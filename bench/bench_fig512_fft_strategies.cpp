//===- bench/bench_fig512_fft_strategies.cpp - Figure 5-12 ----------------==//
//
// FFT savings, theory vs practice (Section 5.8): the multiplication
// reduction factor (base mults/output over frequency mults/output) for
// the FIR program as a function of FIR size and manually chosen FFT
// length, under four strategies:
//   a) theory (closed form),
//   b) the naive transformation (Transformation 5) with the simple FFT,
//   c) the optimized transformation (Transformation 6) with the simple
//      FFT,
//   d) the optimized transformation with the planned real-input FFT
//      (the FFTW substitute).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "opt/Frequency.h"

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

namespace {

double reductionFactor(const Stream &Root, int FFTSize, bool Optimized,
                       FFTTier Tier, double BaseMults) {
  OptimizerOptions O;
  O.Mode = OptMode::Freq;
  O.Freq.FFTSizeOverride = FFTSize;
  O.Freq.Optimized = Optimized;
  O.Freq.Tier = Tier;
  MeasureOptions MO;
  // The window must cover several firings of the freq filter, which
  // emits ~FFTSize outputs per firing.
  MO.WarmupOutputs = static_cast<size_t>(2 * FFTSize);
  MO.MeasureOutputs = static_cast<size_t>(4 * FFTSize);
  MO.MeasureTime = false;
  StreamPtr Opt = optimize(Root, O);
  Measurement M = measureSteadyState(*Opt, MO);
  return BaseMults / M.multsPerOutput();
}

} // namespace

int main() {
  JsonReport Report("fig512_fft_strategies");
  std::printf("Figure 5-12: multiplication reduction factor vs FIR size "
              "and FFT size\n");
  const int Sizes[] = {16, 32, 64, 128};
  for (const char *Series :
       {"a) theory", "b) naive (simple FFT)", "c) optimized (simple FFT)",
        "d) optimized (planned real FFT / FFTW-substitute)"}) {
    std::printf("\n%s\n", Series);
    printRule(70);
    std::printf("%10s", "FFT size");
    for (int E : Sizes)
      std::printf("   fir=%-5d", E);
    std::printf("\n");
    printRule(70);
    for (int N = 64; N <= 2048; N *= 2) {
      std::printf("%10d", N);
      for (int E : Sizes) {
        if (N < 2 * E) {
          std::printf("   %-8s", "-");
          continue;
        }
        double Factor = 0;
        if (Series[0] == 'a') {
          Factor = E / theoreticalFreqMultsPerOutput(E, N);
        } else {
          StreamPtr Root = buildFIR(E);
          OptimizerOptions OB;
          OB.Mode = OptMode::Base;
          Measurement Base = measureConfig(*Root, OB, "FIR", false);
          bool Optimized = Series[0] != 'b';
          FFTTier Tier = Series[0] == 'd' ? FFTTier::PlannedReal
                                          : FFTTier::SimpleComplex;
          Factor = reductionFactor(*Root, N, Optimized, Tier,
                                   Base.multsPerOutput());
        }
        std::printf("   %-8.2f", Factor);
        std::fflush(stdout);
        Report.add(std::string(1, Series[0]) + "_fir" + std::to_string(E) +
                       "_fft" + std::to_string(N),
                   Engine::Dynamic,
                   {{"fir_taps", double(E)},
                    {"fft_size", double(N)},
                    {"reduction_factor", Factor}});
      }
      std::printf("\n");
    }
  }
  std::printf("\n(expected: d > c > b at each point; the optimized "
              "transformation buys ~1.5x over naive\n and the planned real "
              "FFT a further multiple, as in the paper)\n");
  return 0;
}
