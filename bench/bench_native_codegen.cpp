//===- bench/bench_native_codegen.cpp - Emitted-C++ engine speedup --------==//
//
// The native codegen engine against the op-tape interpreter on the
// Figure 5-8 FIR, at the tap counts where the acceptance bar sits
// (>= 1.5x over the op tapes at 64+ taps). Two configurations per size:
//
//   * Base mode — the work function runs as written, so the comparison
//     is emitted C++ (peek/pop lowered to direct indexing, MacFldPeek
//     fused, -O3 -march=native) vs the op-tape dispatch loop: the
//     engine's headline win.
//   * Linear mode — linear replacement has already collapsed the FIR
//     into a packed kernel on both sides, so the comparison is the
//     emitted batch GEMM vs the host's identically-shaped kernel:
//     expected to be roughly at par (it is the same loop nest), kept as
//     a guard against the emitted kernel ever regressing.
//
// FLOP columns are identical across engines by construction (counting
// runs fall back to the tapes); only wall-clock differs. Without a
// toolchain the harness prints the degradation and exits 0 — the CI
// no-toolchain arm runs it too.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "codegen/CxxBackend.h"
#include "compiler/Pipeline.h"

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  JsonReport Report("native_codegen");

  // Probe with a real Engine::Native compile: discoverCompiler() can
  // return a *named but unusable* compiler (the CI no-toolchain arm sets
  // SLIN_CXX to a nonexistent path), and a degraded run would "measure"
  // the op tapes against themselves. Print the degradation and exit 0.
  {
    StreamPtr Probe = buildFIR(8);
    PipelineOptions PO;
    PO.Exec.Eng = Engine::Native;
    PO.UseProgramCache = false;
    CompileResult R = compileStream(*Probe, PO);
    if (R.Degraded) {
      std::printf("native codegen: %s; Engine::Native degrades to the "
                  "op tapes — nothing to measure.\n",
                  R.DegradeReason.c_str());
      return 0;
    }
  }

  std::printf("Native codegen engine vs op-tape interpreter (fig 5-8 FIR)\n");
  printRule(74);
  std::printf("%5s %8s %14s %14s %9s %14s\n", "taps", "mode", "tape ns/out",
              "native ns/out", "native x", "flops/out");
  printRule(74);

  for (int Taps : {16, 64, 128}) {
    StreamPtr Root = buildFIR(Taps);
    std::string T = std::to_string(Taps);
    for (OptMode Mode : {OptMode::Base, OptMode::Linear}) {
      OptimizerOptions O;
      O.Mode = Mode;
      Measurement Tape =
          measureConfig(*Root, O, "FIR", true, Engine::Compiled);
      Measurement Native =
          measureConfig(*Root, O, "FIR", true, Engine::Native);
      double Speedup = Native.secondsPerOutput() > 0.0
                           ? Tape.secondsPerOutput() /
                                 Native.secondsPerOutput()
                           : 0.0;
      const char *ModeName = Mode == OptMode::Base ? "base" : "linear";
      std::printf("%5d %8s %14.1f %14.1f %8.2fx %14.1f\n", Taps, ModeName,
                  Tape.secondsPerOutput() * 1e9,
                  Native.secondsPerOutput() * 1e9, Speedup,
                  Native.flopsPerOutput());
      std::string Label = "FIR" + T + "_" + ModeName;
      Report.add(Label, Engine::Compiled, Tape, {{"taps", double(Taps)}});
      Report.add(Label, Engine::Native, Native,
                 {{"taps", double(Taps)},
                  {"speedup_vs_optape", Speedup}});
    }
  }
  return 0;
}
