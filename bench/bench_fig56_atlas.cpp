//===- bench/bench_fig56_atlas.cpp - Figure 5-6 ---------------------------==//
//
// Effect of the machine-tuned gemv backend (Section 5.4): speedup of
// linear replacement with the paper's own generated multiply (our
// unrolled/banded code, Figure 5-7) versus the ATLAS substitute (the
// TunedGemv call-out with its buffer-copy interface overhead).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  std::printf("Figure 5-6: linear replacement speedups, direct vs "
              "ATLAS-substitute gemv (%%)\n");
  printRule(66);
  std::printf("%-14s %22s %24s\n", "Benchmark", "direct matrix multiply",
              "tuned (ATLAS-substitute)");
  printRule(66);
  double SumDelta = 0;
  int Count = 0;
  for (const BenchmarkEntry &B : allBenchmarks()) {
    StreamPtr Root = B.Build();
    OptimizerOptions O;
    O.Mode = OptMode::Base;
    Measurement Base = measureConfig(*Root, O, B.Name, true);
    O.Mode = OptMode::Linear;
    O.CodeGen = LinearCodeGenStyle::Auto;
    Measurement Direct = measureConfig(*Root, O, B.Name, true);
    O.CodeGen = LinearCodeGenStyle::TunedNative;
    Measurement Tuned = measureConfig(*Root, O, B.Name, true);
    double SD = speedupPercent(Base.secondsPerOutput(),
                               Direct.secondsPerOutput());
    double ST = speedupPercent(Base.secondsPerOutput(),
                               Tuned.secondsPerOutput());
    std::printf("%-14s %21.1f%% %23.1f%%\n", B.Name.c_str(), SD, ST);
    SumDelta += ST - SD;
    ++Count;
  }
  printRule(66);
  std::printf("average tuned-vs-direct delta: %.1f%% (paper: -4.3%%, "
              "varying -36%%..+58%%)\n", SumDelta / Count);
  return 0;
}
