//===- bench/bench_fig56_atlas.cpp - Figure 5-6 ---------------------------==//
//
// Effect of the machine-tuned gemv backend (Section 5.4): speedup of
// linear replacement with the paper's own generated multiply (our
// unrolled/banded code, Figure 5-7) versus the ATLAS substitute (the
// TunedGemv call-out with its buffer-copy interface overhead).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  JsonReport Report("fig56_atlas");
  std::printf("Figure 5-6: linear replacement speedups, direct vs "
              "ATLAS-substitute gemv (%%), plus the compiled engine's "
              "batched gemm\n");
  printRule(78);
  std::printf("%-14s %16s %18s %20s\n", "Benchmark", "direct multiply",
              "tuned (ATLAS-sub)", "batched gemm (comp.)");
  printRule(78);
  double SumDelta = 0;
  int Count = 0;
  for (const BenchmarkEntry &B : allBenchmarks()) {
    StreamPtr Root = B.Build();
    OptimizerOptions O;
    O.Mode = OptMode::Base;
    Measurement Base = measureConfig(*Root, O, B.Name, true);
    O.Mode = OptMode::Linear;
    O.CodeGen = LinearCodeGenStyle::Auto;
    Measurement Direct = measureConfig(*Root, O, B.Name, true);
    O.CodeGen = LinearCodeGenStyle::TunedNative;
    Measurement Tuned = measureConfig(*Root, O, B.Name, true);
    // The compiled engine on the packed-kernel backend: a whole batch of
    // firings becomes one cache-blocked gemm (measured against the same
    // dynamic base, so all three columns share a denominator).
    O.CodeGen = LinearCodeGenStyle::PackedNative;
    Measurement Batched =
        measureConfig(*Root, O, B.Name, true, Engine::Compiled);
    double SD = speedupPercent(Base.secondsPerOutput(),
                               Direct.secondsPerOutput());
    double ST = speedupPercent(Base.secondsPerOutput(),
                               Tuned.secondsPerOutput());
    double SB = speedupPercent(Base.secondsPerOutput(),
                               Batched.secondsPerOutput());
    std::printf("%-14s %15.1f%% %17.1f%% %19.1f%%\n", B.Name.c_str(), SD, ST,
                SB);
    Report.add(B.Name + "_base", Engine::Dynamic, Base);
    Report.add(B.Name + "_linear_direct", Engine::Dynamic, Direct);
    Report.add(B.Name + "_linear_tuned", Engine::Dynamic, Tuned);
    Report.add(B.Name + "_linear_packed", Engine::Compiled, Batched);
    SumDelta += ST - SD;
    ++Count;
  }
  printRule(78);
  std::printf("average tuned-vs-direct delta: %.1f%% (paper: -4.3%%, "
              "varying -36%%..+58%%)\n", SumDelta / Count);
  return 0;
}
