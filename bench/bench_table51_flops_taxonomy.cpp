//===- bench/bench_table51_flops_taxonomy.cpp - Table 5.1 -----------------==//
//
// Table 5.1 classifies IA-32 opcodes into FLOPs; our substitute for the
// DynamoRIO counting client is the op-accounting layer, whose categories
// map onto the paper's instruction families. This binary prints the
// mapping and a sample categorized count over the FIR benchmark, so the
// accounting basis of every other figure is explicit.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  std::printf("Table 5.1: FLOP taxonomy (IA-32 families -> our counters)\n");
  printRule(72);
  std::printf("%-12s %-34s %s\n", "counter", "IA-32 family (Table 5.1)",
              "in mults?");
  printRule(72);
  std::printf("%-12s %-34s %s\n", "Adds", "FADD/FADDP/FIADD", "no");
  std::printf("%-12s %-34s %s\n", "Subs", "FSUB/FSUBR/FCHS", "no");
  std::printf("%-12s %-34s %s\n", "Muls", "FMUL/FMULP/FIMUL", "yes");
  std::printf("%-12s %-34s %s\n", "Divs", "FDIV/FDIVR/FPREM", "yes");
  std::printf("%-12s %-34s %s\n", "Cmps", "FCOM/FCOMI/FUCOM/FTST", "no");
  std::printf("%-12s %-34s %s\n", "Trans",
              "FSIN/FCOS/FPATAN/FSQRT/FABS/...", "no");
  std::printf("(loads/stores and integer/address arithmetic are not "
              "FLOPs, as in the paper)\n\n");

  StreamPtr Root = buildFIR(64);
  MeasureOptions MO;
  MO.WarmupOutputs = 64;
  MO.MeasureOutputs = 512;
  MO.MeasureTime = false;
  Measurement M = measureSteadyState(*Root, MO);
  std::printf("sample: FIR(64 taps), per output:\n");
  printRule(40);
  double N = static_cast<double>(M.Outputs);
  std::printf("  Adds  %10.2f\n", M.Ops.Adds / N);
  std::printf("  Subs  %10.2f\n", M.Ops.Subs / N);
  std::printf("  Muls  %10.2f\n", M.Ops.Muls / N);
  std::printf("  Divs  %10.2f\n", M.Ops.Divs / N);
  std::printf("  Cmps  %10.2f\n", M.Ops.Cmps / N);
  std::printf("  Trans %10.2f\n", M.Ops.Trans / N);
  std::printf("  FLOPs %10.2f   mults %7.2f\n", M.flopsPerOutput(),
              M.multsPerOutput());

  // The compiled engine's counted path must reproduce the interpreter's
  // taxonomy exactly (its op tapes tag uncounted index arithmetic the
  // same way); print it so drift is visible.
  MO.Exec.Eng = Engine::Compiled;
  Measurement MC = measureSteadyState(*Root, MO);
  std::printf("\nsame window on the compiled engine (must match):\n");
  printRule(40);
  std::printf("  FLOPs %10.2f   mults %7.2f\n", MC.flopsPerOutput(),
              MC.multsPerOutput());

  JsonReport Report("table51_flops_taxonomy");
  Report.add("FIR64", Engine::Dynamic, M);
  Report.add("FIR64", Engine::Compiled, MC);
  Report.add("FIR64_categories", Engine::Dynamic,
             {{"adds", M.Ops.Adds / N},
              {"subs", M.Ops.Subs / N},
              {"muls", M.Ops.Muls / N},
              {"divs", M.Ops.Divs / N},
              {"cmps", M.Ops.Cmps / N},
              {"trans", M.Ops.Trans / N}});
  return 0;
}
