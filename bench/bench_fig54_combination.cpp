//===- bench/bench_fig54_combination.cpp - Figures 5-4 and 5-5 ------------==//
//
// Effect of combination (Section 5.3): multiplication elimination and
// speedup for linear and frequency replacement with combination enabled
// and disabled ("(nc)"), plus the speedup deltas of Figure 5-5.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  JsonReport Report("fig54_combination");
  struct Row {
    std::string Name;
    Measurement Base, Lin, LinNC, Frq, FrqNC;
  };
  std::vector<Row> Rows;
  for (const BenchmarkEntry &B : allBenchmarks()) {
    StreamPtr Root = B.Build();
    Row R;
    R.Name = B.Name;
    OptimizerOptions O;
    O.Mode = OptMode::Base;
    R.Base = measureConfig(*Root, O, B.Name, true);
    O.Mode = OptMode::Linear;
    O.Combine = true;
    R.Lin = measureConfig(*Root, O, B.Name, true);
    O.Combine = false;
    R.LinNC = measureConfig(*Root, O, B.Name, true);
    O.Mode = OptMode::Freq;
    O.Combine = true;
    R.Frq = measureConfig(*Root, O, B.Name, true);
    O.Combine = false;
    R.FrqNC = measureConfig(*Root, O, B.Name, true);
    Report.add(B.Name + "_base", Engine::Dynamic, R.Base);
    Report.add(B.Name + "_linear", Engine::Dynamic, R.Lin);
    Report.add(B.Name + "_linear_nc", Engine::Dynamic, R.LinNC);
    Report.add(B.Name + "_freq", Engine::Dynamic, R.Frq);
    Report.add(B.Name + "_freq_nc", Engine::Dynamic, R.FrqNC);
    Rows.push_back(std::move(R));
    std::printf("measured %s\n", B.Name.c_str());
  }

  auto MR = [](const Measurement &Base, const Measurement &M) {
    return percentRemoved(Base.multsPerOutput(), M.multsPerOutput());
  };
  auto SP = [](const Measurement &Base, const Measurement &M) {
    return speedupPercent(Base.secondsPerOutput(), M.secondsPerOutput());
  };

  std::printf("\nFigure 5-4 (left): multiplication elimination with/without "
              "combination (%%)\n");
  printRule(86);
  std::printf("%-14s %12s %12s %12s %12s\n", "Benchmark", "linear(nc)",
              "linear", "freq(nc)", "freq");
  printRule(86);
  for (const Row &R : Rows)
    std::printf("%-14s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n", R.Name.c_str(),
                MR(R.Base, R.LinNC), MR(R.Base, R.Lin), MR(R.Base, R.FrqNC),
                MR(R.Base, R.Frq));

  std::printf("\nFigure 5-4 (right): speedup with/without combination (%%)\n");
  printRule(86);
  std::printf("%-14s %12s %12s %12s %12s\n", "Benchmark", "linear(nc)",
              "linear", "freq(nc)", "freq");
  printRule(86);
  for (const Row &R : Rows)
    std::printf("%-14s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n", R.Name.c_str(),
                SP(R.Base, R.LinNC), SP(R.Base, R.Lin), SP(R.Base, R.FrqNC),
                SP(R.Base, R.Frq));

  std::printf("\nFigure 5-5: speedup increase due to combination "
              "(percentage points)\n");
  printRule(60);
  std::printf("%-14s %20s %20s\n", "Benchmark", "linear collapse",
              "freq collapse");
  printRule(60);
  for (const Row &R : Rows)
    std::printf("%-14s %19.1f%% %19.1f%%\n", R.Name.c_str(),
                SP(R.Base, R.Lin) - SP(R.Base, R.LinNC),
                SP(R.Base, R.Frq) - SP(R.Base, R.FrqNC));
  return 0;
}
