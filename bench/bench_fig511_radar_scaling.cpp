//===- bench/bench_fig511_radar_scaling.cpp - Figure 5-11 -----------------==//
//
// Radar scaling (Section 5.7): multiplication reduction of maximal linear
// replacement as a function of the number of channels and beams. The
// paper finds linear replacement degrades as the problem grows — more
// beams hurt much more than more channels, because collapsing the
// Beamform stage (pop 2*channels, push 2) with downstream filters
// duplicates its work per output.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  JsonReport Report("fig511_radar_scaling");
  std::printf("Figure 5-11: Radar multiplication reduction under maximal "
              "linear replacement (%%)\n");
  printRule(64);
  std::printf("%10s", "channels");
  for (int Beams = 1; Beams <= 4; ++Beams)
    std::printf(" %10s%d", "beams=", Beams);
  std::printf("\n");
  printRule(64);
  for (int Channels = 4; Channels <= 12; Channels += 4) {
    std::printf("%10d", Channels);
    for (int Beams = 1; Beams <= 4; ++Beams) {
      RadarParams P;
      P.Channels = Channels;
      P.Beams = Beams;
      StreamPtr Root = buildRadar(P);
      OptimizerOptions O;
      O.Mode = OptMode::Base;
      Measurement Base = measureConfig(*Root, O, "Radar", false);
      O.Mode = OptMode::Linear;
      Measurement Lin = measureConfig(*Root, O, "Radar", false);
      std::printf(" %10.1f%%",
                  percentRemoved(Base.multsPerOutput(),
                                 Lin.multsPerOutput()));
      std::fflush(stdout);
      std::string Tag = "Radar_c" + std::to_string(Channels) + "_b" +
                        std::to_string(Beams);
      Report.add(Tag + "_base", Engine::Dynamic, Base,
                 {{"channels", double(Channels)}, {"beams", double(Beams)}});
      Report.add(Tag + "_linear", Engine::Dynamic, Lin,
                 {{"channels", double(Channels)}, {"beams", double(Beams)}});
    }
    std::printf("\n");
  }
  std::printf("(expected shape: reduction degrades as beams grow, "
              "channels matter less)\n");
  return 0;
}
