//===- bench/GBenchMain.h - Shared Google-Benchmark main --------*- C++ -*-===//
//
// Entry point for the micro-benchmark binaries: runs the registered
// benchmarks and defaults --benchmark_out to BENCH_<name>.json (JSON
// format) unless the caller provides its own, so every bench_* binary
// leaves a machine-readable result behind.
//
//===----------------------------------------------------------------------===//

#ifndef SLIN_BENCH_GBENCHMAIN_H
#define SLIN_BENCH_GBENCHMAIN_H

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace slin {
namespace bench {

inline int runGoogleBenchmarks(int argc, char **argv, const char *Name) {
  std::vector<char *> Args(argv, argv + argc);
  std::string OutFlag = std::string("--benchmark_out=BENCH_") + Name + ".json";
  std::string FmtFlag = "--benchmark_out_format=json";
  bool HasOut = false, HasFmt = false;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A.rfind("--benchmark_out=", 0) == 0)
      HasOut = true;
    if (A.rfind("--benchmark_out_format", 0) == 0)
      HasFmt = true;
  }
  if (!HasOut)
    Args.push_back(OutFlag.data());
  if (!HasOut && !HasFmt)
    Args.push_back(FmtFlag.data());
  int Argc = static_cast<int>(Args.size());
  benchmark::Initialize(&Argc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(Argc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

} // namespace bench
} // namespace slin

#endif // SLIN_BENCH_GBENCHMAIN_H
