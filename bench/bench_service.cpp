//===- bench/bench_service.cpp - Service daemon latency/throughput --------===//
///
/// \file
/// Load benchmark for the stream service daemon: concurrent clients
/// drive an open-loop arrival schedule (request send times are fixed in
/// advance, so server slowdowns lengthen the measured latencies instead
/// of silently thinning the load — the coordinated-omission trap) and
/// every request's send-to-response latency is recorded. Reports p50,
/// p99, mean and sustained throughput for a throughput-mode and a
/// latency-mode configuration over a mixed two-graph serving set.
///
/// By default the benchmark hosts its own in-process server on a Unix
/// socket under TMPDIR — one self-contained binary for CI. With
/// `--connect PATH` it drives an externally started slin-serviced
/// (same labels, so baselines compare either way).
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "service/Client.h"
#include "service/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace slin;
using namespace slin::service;

namespace {

using Clock = std::chrono::steady_clock;

const char *const GraphA = "FIR";
const char *const GraphB = "FilterBank";

struct LoadConfig {
  std::string Label;
  bool Latency = false;
  int Requests = 300;
  int Clients = 4;
  /// Open-loop arrival rate, chosen well under saturation so the tail
  /// reflects service time rather than queueing noise (a p99 gated at
  /// +25% cannot sit on the hockey-stick part of the latency curve).
  double RatePerSec = 60.0;
  uint32_t NOutputs = 128;
};

struct LoadResult {
  std::vector<double> LatencyMs; ///< one entry per completed request
  double WallSeconds = 0.0;
  int Failures = 0;
};

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t Idx = static_cast<size_t>(P * (Sorted.size() - 1) + 0.5);
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

/// Runs one open-loop load configuration against the daemon at \p Path.
LoadResult runLoad(const std::string &Path, const LoadConfig &Cfg) {
  LoadResult Res;
  Res.LatencyMs.resize(static_cast<size_t>(Cfg.Requests), -1.0);

  std::atomic<int> Next{0};
  std::atomic<int> Failures{0};
  Clock::time_point Start = Clock::now();

  auto ClientLoop = [&] {
    Expected<Client> EC = Client::connectUnix(Path);
    if (!EC.hasValue()) {
      Failures.fetch_add(1);
      return;
    }
    Client C = EC.take();
    for (;;) {
      int I = Next.fetch_add(1);
      if (I >= Cfg.Requests)
        return;
      // Open loop: request I is due at its scheduled arrival time no
      // matter how slow earlier responses were.
      Clock::time_point Due =
          Start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(I / Cfg.RatePerSec));
      std::this_thread::sleep_until(Due);

      RunRequest R;
      R.Graph = (I % 2 == 0) ? GraphA : GraphB;
      R.NOutputs = Cfg.NOutputs;
      R.Latency = Cfg.Latency;
      Clock::time_point Sent = Clock::now();
      Expected<RunResponse> ER = C.run(R);
      Clock::time_point Got = Clock::now();
      if (!ER.hasValue() || !ER.take().St.isOk()) {
        Failures.fetch_add(1);
        continue;
      }
      Res.LatencyMs[static_cast<size_t>(I)] =
          std::chrono::duration<double, std::milli>(Got - Sent).count();
    }
  };

  std::vector<std::thread> Threads;
  for (int I = 0; I != Cfg.Clients; ++I)
    Threads.emplace_back(ClientLoop);
  for (auto &T : Threads)
    T.join();

  Res.WallSeconds = std::chrono::duration<double>(Clock::now() - Start).count();
  Res.Failures = Failures.load();
  Res.LatencyMs.erase(
      std::remove_if(Res.LatencyMs.begin(), Res.LatencyMs.end(),
                     [](double L) { return L < 0.0; }),
      Res.LatencyMs.end());
  return Res;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ConnectPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--connect" && I + 1 < Argc) {
      ConnectPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: bench_service [--connect SOCKET_PATH]\n");
      return 2;
    }
  }

  // Self-hosted mode: spin the server up in-process on a private socket.
  std::unique_ptr<Server> Srv;
  std::string Path = ConnectPath;
  if (Path.empty()) {
    const char *Tmp = std::getenv("TMPDIR");
    Path = std::string(Tmp && *Tmp ? Tmp : "/tmp") + "/slin-bench-service-" +
           std::to_string(static_cast<long>(::getpid())) + ".sock";
    ServerConfig Cfg;
    Cfg.UnixPath = Path;
    Cfg.Service.Graphs = {GraphA, GraphB};
    if (Status St = (Srv = std::make_unique<Server>(Cfg))->start();
        !St.isOk()) {
      std::fprintf(stderr, "bench_service: %s\n", St.message().c_str());
      return 1;
    }
  }

  // One warm-up request per graph so compile/prefetch cost stays out of
  // the measured window (the serving set is warm by design).
  {
    Expected<Client> EC = Client::connectUnix(Path);
    if (!EC.hasValue()) {
      std::fprintf(stderr, "bench_service: %s\n", EC.status().message().c_str());
      return 1;
    }
    Client C = EC.take();
    for (const char *G : {GraphA, GraphB}) {
      RunRequest R;
      R.Graph = G;
      R.NOutputs = 128;
      Expected<RunResponse> ER = C.run(R);
      if (!ER.hasValue() || !ER.take().St.isOk()) {
        std::fprintf(stderr, "bench_service: warmup run of %s failed\n", G);
        return 1;
      }
    }
  }

  bench::JsonReport Report("service");
  std::printf("%-24s %10s %10s %10s %10s %6s\n", "config", "p50 ms", "p99 ms",
              "mean ms", "req/s", "fail");
  bench::printRule();

  std::vector<LoadConfig> Configs;
  {
    LoadConfig Throughput;
    Throughput.Label = "mixed-throughput";
    Configs.push_back(Throughput);
    LoadConfig Latency;
    Latency.Label = "mixed-latency";
    Latency.Latency = true;
    Configs.push_back(Latency);
  }

  int Exit = 0;
  for (const LoadConfig &Cfg : Configs) {
    LoadResult R = runLoad(Path, Cfg);
    if (R.LatencyMs.empty() || R.Failures > 0) {
      std::fprintf(stderr, "bench_service: %s: %d failures, %zu completions\n",
                   Cfg.Label.c_str(), R.Failures, R.LatencyMs.size());
      Exit = 1;
      continue;
    }
    std::vector<double> Sorted = R.LatencyMs;
    std::sort(Sorted.begin(), Sorted.end());
    double P50 = percentile(Sorted, 0.50);
    double P99 = percentile(Sorted, 0.99);
    double Mean = 0.0;
    for (double L : Sorted)
      Mean += L;
    Mean /= static_cast<double>(Sorted.size());
    double Rps = static_cast<double>(Sorted.size()) / R.WallSeconds;

    std::printf("%-24s %10.3f %10.3f %10.3f %10.1f %6d\n", Cfg.Label.c_str(),
                P50, P99, Mean, Rps, R.Failures);
    // Gate what is stable: latency mode exists to bound the tail, so its
    // p99 is the gated headline. Throughput mode's p99 rides the
    // queueing/CPU-contention hockey stick and flaps far beyond any
    // sane threshold — its gate is the (tight) p50, with the observed
    // tail reported under a name the comparator never gates.
    if (Cfg.Latency)
      Report.add(Cfg.Label, Engine::Compiled,
                 {{"p99_ms", P99},
                  {"p50_ms", P50},
                  {"mean_ms", Mean},
                  {"rps", Rps},
                  {"requests", static_cast<double>(Sorted.size())}});
    else
      Report.add(Cfg.Label, Engine::Compiled,
                 {{"p50_ms", P50},
                  {"p99_info_ms", P99},
                  {"mean_ms", Mean},
                  {"rps", Rps},
                  {"requests", static_cast<double>(Sorted.size())}});
  }

  if (Srv) {
    Srv->stop();
    Srv.reset();
  }
  return Exit;
}
