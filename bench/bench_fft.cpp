//===- bench/bench_fft.cpp - FFT substrate micro-benchmarks ---------------==//
//
// Micro-benchmarks for the FFTW-substitute library: planned complex FFT,
// planned real FFT (half-complex), and the unplanned recursive FFT used as
// the "simple" tier in Figure 5-12.
//
//===----------------------------------------------------------------------===//

#include "fft/FFT.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace slin;
using namespace slin::fft;

namespace {

std::vector<double> randomReal(size_t N) {
  std::mt19937 Rng(17);
  std::uniform_real_distribution<double> Dist(-1.0, 1.0);
  std::vector<double> V(N);
  for (double &D : V)
    D = Dist(Rng);
  return V;
}

void BM_PlannedComplexFFT(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  FFTPlan Plan(N);
  auto Real = randomReal(N);
  std::vector<Complex> Data(N);
  for ([[maybe_unused]] auto _ : State) {
    for (size_t I = 0; I != N; ++I)
      Data[I] = Complex(Real[I], 0.0);
    Plan.forward(Data.data());
    benchmark::DoNotOptimize(Data.data());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_PlannedComplexFFT)->RangeMultiplier(4)->Range(64, 4096);

void BM_PlannedRealFFT(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  FFTPlan Plan(N);
  auto In = randomReal(N);
  std::vector<double> Out(N);
  for ([[maybe_unused]] auto _ : State) {
    Plan.forwardReal(In.data(), Out.data());
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_PlannedRealFFT)->RangeMultiplier(4)->Range(64, 4096);

void BM_SimpleFFT(benchmark::State &State) {
  size_t N = static_cast<size_t>(State.range(0));
  auto Real = randomReal(N);
  for ([[maybe_unused]] auto _ : State) {
    std::vector<Complex> Data(N);
    for (size_t I = 0; I != N; ++I)
      Data[I] = Complex(Real[I], 0.0);
    simpleFFT(Data, false);
    benchmark::DoNotOptimize(Data.data());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_SimpleFFT)->RangeMultiplier(4)->Range(64, 4096);

} // namespace

#include "GBenchMain.h"

int main(int argc, char **argv) {
  return slin::bench::runGoogleBenchmarks(argc, argv, "fft");
}
