//===- bench/bench_compile_reuse.cpp - Artifact-reuse benchmark -----------==//
//
// The "compile once, serve many runs" property of the compiler pipeline:
// repeatedly compile AutoSel configurations (with the compiled engine's
// MeasuredCostModel, the most expensive path of the fig 5-1 harness) and
// serve a short output window from each. With the hash-consed analysis
// cache and the program cache, every round after the first reuses the
// first round's extraction/combination results and compiled artifacts;
// without them (or pre-refactor) each round pays full price.
//
// Intentionally uses only the long-stable surface (optimize +
// collectOutputs) so the same source measures older checkouts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "compiler/Program.h"

#include <chrono>

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  JsonReport Report("compile_reuse");
  static const MeasuredCostModel CompiledModel{Engine::Compiled};
  const int Rounds = 3;
  const size_t Window = 256;

  double Total = 0.0;
  std::printf("%-14s %14s %14s %14s\n", "Benchmark", "round 1 (ms)",
              "round 2 (ms)", "round 3 (ms)");
  for (const char *Name :
       {"FIR", "RateConvert", "TargetDetect", "FilterBank", "Radar"}) {
    StreamPtr Root;
    for (const BenchmarkEntry &B : allBenchmarks())
      if (B.Name == Name)
        Root = B.Build();
    double RoundMs[Rounds] = {};
    for (int R = 0; R != Rounds; ++R) {
      if (cachesDisabled()) {
        // Honest cold rounds: flush the process-global caches so every
        // round pays full analysis + lowering price (the pre-refactor
        // behaviour).
        AnalysisManager::global().invalidate();
        ProgramCache::global().clear();
      }
      auto Start = std::chrono::steady_clock::now();
      OptimizerOptions O;
      O.Mode = OptMode::AutoSel;
      O.Model = &CompiledModel;
      StreamPtr Opt = optimize(*Root, O);
      collectOutputs(*Opt, Window, Engine::Compiled);
      RoundMs[R] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count() *
          1e3;
      Total += RoundMs[R];
      Report.add(std::string(Name) + "_round" + std::to_string(R + 1),
                 Engine::Compiled, {{"ms", RoundMs[R]}});
    }
    std::printf("%-14s %14.1f %14.1f %14.1f\n", Name, RoundMs[0], RoundMs[1],
                RoundMs[2]);
  }
  std::printf("total: %.1f ms (compile+serve, %d rounds each)\n", Total,
              Rounds);
  Report.add("total", Engine::Compiled, {{"ms", Total}});
  return 0;
}
