//===- bench/BenchUtil.h - Shared harness helpers ---------------*- C++ -*-===//
//
// Helpers for the figure/table reproduction binaries: build a benchmark,
// apply an optimization configuration, measure steady-state FLOPs,
// multiplications and wall-clock time per output (Section 5.1's
// methodology), and print aligned rows.
//
//===----------------------------------------------------------------------===//

#ifndef SLIN_BENCH_BENCHUTIL_H
#define SLIN_BENCH_BENCHUTIL_H

#include "apps/Benchmarks.h"
#include "exec/Measure.h"
#include "opt/Optimizer.h"

#include <cstdio>
#include <string>

namespace slin {
namespace bench {

/// Per-benchmark measured window sizes: the heavyweight apps (Radar's
/// channel banks, Vocoder's O(W^2) pitch detector) get smaller windows so
/// the whole harness stays fast; all are deep in steady state.
inline size_t measureWindow(const std::string &Name) {
  // The window must span several firings of the coarsest-grained
  // configuration (an optimized frequency filter emits u*(m+e-1) items
  // per firing), or per-output rates are dominated by quantization.
  if (Name == "Vocoder")
    return 256;
  if (Name == "Radar")
    return 1024;
  if (Name == "TargetDetect" || Name == "Oversampler")
    return 4096;
  if (Name == "DToA")
    return 3072;
  if (Name == "FMRadio")
    return 1536;
  return 2048;
}

inline size_t warmupWindow(const std::string &Name) {
  return measureWindow(Name) / 2;
}

inline Measurement measureConfig(const Stream &Root,
                                 const OptimizerOptions &Opts,
                                 const std::string &Name,
                                 bool MeasureTime) {
  StreamPtr Opt = optimize(Root, Opts);
  MeasureOptions MO;
  MO.WarmupOutputs = warmupWindow(Name);
  MO.MeasureOutputs = measureWindow(Name);
  MO.MeasureTime = MeasureTime;
  return measureSteadyState(*Opt, MO);
}

inline double percentRemoved(double Base, double Opt) {
  if (Base == 0.0)
    return 0.0;
  return 100.0 * (1.0 - Opt / Base);
}

/// The paper reports speedup as percentage increase in throughput
/// ("average execution time decrease of 450%"): 100*(tBase/tOpt - 1).
inline double speedupPercent(double BaseSeconds, double OptSeconds) {
  if (OptSeconds <= 0.0)
    return 0.0;
  return 100.0 * (BaseSeconds / OptSeconds - 1.0);
}

inline void printRule(int Width = 78) {
  for (int I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

} // namespace bench
} // namespace slin

#endif // SLIN_BENCH_BENCHUTIL_H
