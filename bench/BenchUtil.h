//===- bench/BenchUtil.h - Shared harness helpers ---------------*- C++ -*-===//
//
// Helpers for the figure/table reproduction binaries: build a benchmark,
// apply an optimization configuration, measure steady-state FLOPs,
// multiplications and wall-clock time per output (Section 5.1's
// methodology), and print aligned rows.
//
//===----------------------------------------------------------------------===//

#ifndef SLIN_BENCH_BENCHUTIL_H
#define SLIN_BENCH_BENCHUTIL_H

#include "apps/Benchmarks.h"
#include "compiler/AnalysisManager.h"
#include "exec/Measure.h"
#include "opt/Optimizer.h"
#include "support/RuntimeConfig.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace slin {
namespace bench {

/// Per-benchmark measured window sizes: the heavyweight apps (Radar's
/// channel banks, Vocoder's O(W^2) pitch detector) get smaller windows so
/// the whole harness stays fast; all are deep in steady state.
inline size_t measureWindow(const std::string &Name) {
  // The window must span several firings of the coarsest-grained
  // configuration (an optimized frequency filter emits u*(m+e-1) items
  // per firing), or per-output rates are dominated by quantization.
  if (Name == "Vocoder")
    return 256;
  if (Name == "Radar")
    return 1024;
  if (Name == "TargetDetect" || Name == "Oversampler")
    return 4096;
  if (Name == "DToA")
    return 3072;
  if (Name == "FMRadio")
    return 1536;
  return 2048;
}

inline size_t warmupWindow(const std::string &Name) {
  return measureWindow(Name) / 2;
}

/// Kill-switch for the compiler caches (set SLIN_NO_CACHE=1): the
/// harnesses report compile time with and without artifact reuse, so the
/// caches' effect is measurable from the same binary.
inline bool cachesDisabled() { return RuntimeConfig::current().NoCache; }

inline AnalysisManager &passThroughAM() {
  static AnalysisManager *AM = [] {
    auto *A = new AnalysisManager();
    A->setEnabled(false);
    return A;
  }();
  return *AM;
}

/// Wall-clock seconds spent inside the compiler pipeline (all passes,
/// including cache-hit lookups) across every measureConfig call.
inline double &compileSecondsTotal() {
  static double Total = 0.0;
  return Total;
}

inline Measurement measureConfig(const Stream &Root,
                                 const OptimizerOptions &Opts,
                                 const std::string &Name, bool MeasureTime,
                                 Engine Eng = Engine::Dynamic) {
  OptimizerOptions O = Opts;
  if (cachesDisabled()) {
    O.AM = &passThroughAM();
    O.UseProgramCache = false;
  }
  // The pipeline optimizes for the engine that will run the result (the
  // compiled engine's op tapes shift AutoSel's break-even points) and,
  // for compiled runs, lowers through the program cache — so the
  // measurement's counting and timing runs reuse one artifact, as do
  // repeated measurements of structurally identical configurations.
  O.Exec.Eng = Eng;
  CompileResult R = compileStream(Root, O);
  compileSecondsTotal() += R.totalSeconds();
  MeasureOptions MO;
  MO.WarmupOutputs = warmupWindow(Name);
  MO.MeasureOutputs = measureWindow(Name);
  MO.MeasureTime = MeasureTime;
  MO.Exec = O.Exec;
  MO.Program = R.Program; // null on the dynamic engine
  return measureSteadyState(*R.Optimized, MO);
}

inline double percentRemoved(double Base, double Opt) {
  if (Base == 0.0)
    return 0.0;
  return 100.0 * (1.0 - Opt / Base);
}

/// The paper reports speedup as percentage increase in throughput
/// ("average execution time decrease of 450%"): 100*(tBase/tOpt - 1).
inline double speedupPercent(double BaseSeconds, double OptSeconds) {
  if (OptSeconds <= 0.0)
    return 0.0;
  return 100.0 * (BaseSeconds / OptSeconds - 1.0);
}

inline void printRule(int Width = 78) {
  for (int I = 0; I != Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

//===----------------------------------------------------------------------===//
// Machine-readable results
//===----------------------------------------------------------------------===//

/// Collects benchmark rows and writes them as BENCH_<name>.json in the
/// working directory, so the perf trajectory is trackable across PRs.
/// Each entry carries a label, an engine tag and a flat set of numeric
/// fields (ns_per_output, flops_per_output, ...).
class JsonReport {
public:
  explicit JsonReport(std::string BenchName) : Name(std::move(BenchName)) {}
  ~JsonReport() { write(); }

  JsonReport(const JsonReport &) = delete;
  JsonReport &operator=(const JsonReport &) = delete;

  /// Adds one row of arbitrary numeric fields.
  void add(const std::string &Label, Engine Eng,
           std::vector<std::pair<std::string, double>> Fields) {
    Entries.push_back({Label, engineName(Eng), std::move(Fields)});
  }

  /// Adds one row for a Measurement (the standard column set), plus any
  /// extra fields (e.g. {"taps", 64}).
  void add(const std::string &Label, Engine Eng, const Measurement &M,
           std::vector<std::pair<std::string, double>> Extra = {}) {
    std::vector<std::pair<std::string, double>> Fields = std::move(Extra);
    Fields.push_back({"ns_per_output", M.secondsPerOutput() * 1e9});
    Fields.push_back({"flops_per_output", M.flopsPerOutput()});
    Fields.push_back({"mults_per_output", M.multsPerOutput()});
    Fields.push_back({"outputs", static_cast<double>(M.Outputs)});
    Entries.push_back({Label, engineName(Eng), std::move(Fields)});
  }

  /// Writes BENCH_<name>.json (also invoked by the destructor; idempotent
  /// per content change). Output lands in $SLIN_BENCH_DIR when set —
  /// giving CI one fixed, uploadable location regardless of each
  /// binary's working directory — and the CWD otherwise.
  void write() {
    std::string Path = "BENCH_" + Name + ".json";
    std::string Dir = RuntimeConfig::current().BenchDir;
    if (!Dir.empty())
      Path = Dir + "/" + Path;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return;
    }
    std::fprintf(F, "{\n  \"bench\": \"%s\",\n  \"entries\": [\n",
                 Name.c_str());
    for (size_t I = 0; I != Entries.size(); ++I) {
      const Entry &E = Entries[I];
      std::fprintf(F, "    {\"label\": \"%s\", \"engine\": \"%s\"",
                   E.Label.c_str(), E.EngineTag.c_str());
      for (const auto &KV : E.Fields)
        std::fprintf(F, ", \"%s\": %.17g", KV.first.c_str(), KV.second);
      std::fprintf(F, "}%s\n", I + 1 == Entries.size() ? "" : ",");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
  }

private:
  struct Entry {
    std::string Label;
    std::string EngineTag;
    std::vector<std::pair<std::string, double>> Fields;
  };

  std::string Name;
  std::vector<Entry> Entries;
};

} // namespace bench
} // namespace slin

#endif // SLIN_BENCH_BENCHUTIL_H
