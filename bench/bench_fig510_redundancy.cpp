//===- bench/bench_fig510_redundancy.cpp - Figure 5-10 --------------------==//
//
// Redundancy elimination vs FIR size (Section 5.6): multiplications
// remaining and speedup after redundancy replacement. The paper's
// signature features: the even/odd "zig-zag" (even-length symmetric
// filters cache every product, odd-length ones cannot cache the middle
// tap), and slowdown despite the multiplication savings because the
// cache loads/stores cost more than the multiplies they replace.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace slin;
using namespace slin::apps;
using namespace slin::bench;

int main() {
  JsonReport Report("fig510_redundancy");
  std::printf("Figure 5-10: redundancy replacement vs FIR size\n");
  printRule(76);
  std::printf("%6s %14s %16s %18s %12s\n", "taps", "base mults/out",
              "redund mults/out", "mults remaining", "speedup");
  printRule(76);
  for (int Taps = 2; Taps <= 64; Taps += Taps < 16 ? 1 : 4) {
    StreamPtr Root = buildFIR(Taps);
    OptimizerOptions O;
    O.Mode = OptMode::Base;
    Measurement Base = measureConfig(*Root, O, "FIR", true);
    O.Mode = OptMode::Redundancy;
    Measurement Red = measureConfig(*Root, O, "FIR", true);
    std::printf("%6d %14.1f %16.1f %17.1f%% %11.1f%%\n", Taps,
                Base.multsPerOutput(), Red.multsPerOutput(),
                100.0 * Red.multsPerOutput() / Base.multsPerOutput(),
                speedupPercent(Base.secondsPerOutput(),
                               Red.secondsPerOutput()));
    std::string T = std::to_string(Taps);
    Report.add("FIR" + T + "_base", Engine::Dynamic, Base,
               {{"taps", double(Taps)}});
    Report.add("FIR" + T + "_redund", Engine::Dynamic, Red,
               {{"taps", double(Taps)}});
  }
  std::printf("(expected: ~50%% remaining at even sizes, zig-zag at odd "
              "sizes, negative speedup)\n");
  return 0;
}
