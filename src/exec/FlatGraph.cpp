//===- exec/FlatGraph.cpp - Flattened stream graph --------------------------==//

#include "exec/FlatGraph.h"

#include "sched/Rates.h"
#include "support/Diag.h"

using namespace slin;
using namespace slin::flat;

//===----------------------------------------------------------------------===//
// Node rate queries
//===----------------------------------------------------------------------===//

int Node::peekNeedOn(int Chan, bool InitFiring) const {
  if (Chan < 0)
    return 0;
  switch (Kind) {
  case NodeKind::Filter:
    if (Chan != In)
      return 0;
    return InitFiring && F->hasInitWork() ? F->initPeekRate() : F->peekRate();
  case NodeKind::DupSplit:
    return Chan == In ? 1 : 0;
  case NodeKind::RRSplit:
    return Chan == In ? totalWeight() : 0;
  case NodeKind::RRJoin:
    for (size_t K = 0; K != Ins.size(); ++K)
      if (Ins[K] == Chan)
        return Weights[K];
    return 0;
  }
  unreachable("unknown node kind");
}

int Node::popsFrom(int Chan, bool InitFiring) const {
  if (Chan < 0)
    return 0;
  switch (Kind) {
  case NodeKind::Filter:
    if (Chan != In)
      return 0;
    return InitFiring && F->hasInitWork() ? F->initPopRate() : F->popRate();
  case NodeKind::DupSplit:
  case NodeKind::RRSplit:
  case NodeKind::RRJoin:
    return peekNeedOn(Chan, InitFiring);
  }
  unreachable("unknown node kind");
}

int Node::pushesTo(int Chan, bool InitFiring) const {
  if (Chan < 0)
    return 0;
  switch (Kind) {
  case NodeKind::Filter:
    if (Chan != Out)
      return 0;
    return InitFiring && F->hasInitWork() ? F->initPushRate() : F->pushRate();
  case NodeKind::DupSplit: {
    int N = 0;
    for (int C : Outs)
      if (C == Chan)
        ++N;
    return N;
  }
  case NodeKind::RRSplit: {
    int N = 0;
    for (size_t K = 0; K != Outs.size(); ++K)
      if (Outs[K] == Chan)
        N += Weights[K];
    return N;
  }
  case NodeKind::RRJoin:
    return Chan == Out ? totalWeight() : 0;
  }
  unreachable("unknown node kind");
}

std::vector<int> Node::inputChannels() const {
  std::vector<int> R;
  if (In >= 0)
    R.push_back(In);
  for (int C : Ins)
    if (C >= 0)
      R.push_back(C);
  return R;
}

std::vector<int> Node::outputChannels() const {
  std::vector<int> R;
  if (Out >= 0)
    R.push_back(Out);
  for (int C : Outs)
    if (C >= 0)
      R.push_back(C);
  return R;
}

//===----------------------------------------------------------------------===//
// Flattening
//===----------------------------------------------------------------------===//

FlatGraph::FlatGraph(const Stream &Root) {
  ExternalIn = makeChannel();
  ExternalOut = makeChannel();
  flatten(Root, ExternalIn, ExternalOut);
  RootProducesOutput = computeRates(Root).Push > 0;
}

int FlatGraph::makeChannel() {
  InitialItems.emplace_back();
  return static_cast<int>(InitialItems.size() - 1);
}

void FlatGraph::flatten(const Stream &S, int InChan, int OutChan) {
  switch (S.kind()) {
  case StreamKind::Filter: {
    const auto *F = cast<Filter>(&S);
    Node N;
    N.Kind = NodeKind::Filter;
    N.Name = F->name();
    N.F = F;
    N.In = F->peekRate() == 0 && F->popRate() == 0 && F->initPeekRate() == 0 &&
                   F->initPopRate() == 0
               ? -1
               : InChan;
    N.Out = OutChan;
    Nodes.push_back(std::move(N));
    return;
  }
  case StreamKind::Pipeline: {
    const auto *P = cast<Pipeline>(&S);
    const auto &Children = P->children();
    assert(!Children.empty() && "empty pipeline");
    int Cur = InChan;
    for (size_t I = 0; I != Children.size(); ++I) {
      int Next = I + 1 == Children.size() ? OutChan : makeChannel();
      flatten(*Children[I], Cur, Next);
      Cur = Next;
    }
    return;
  }
  case StreamKind::SplitJoin: {
    const auto *SJ = cast<SplitJoin>(&S);
    const auto &Children = SJ->children();
    assert(!Children.empty() && "empty splitjoin");

    Node Split;
    Split.Kind = SJ->splitter().Kind == Splitter::Duplicate
                     ? NodeKind::DupSplit
                     : NodeKind::RRSplit;
    Split.Name = SJ->name() + ".split";
    Split.In = InChan;
    Split.Weights = SJ->splitter().Weights;

    Node Join;
    Join.Kind = NodeKind::RRJoin;
    Join.Name = SJ->name() + ".join";
    Join.Out = OutChan;
    Join.Weights = SJ->joiner().Weights;

    std::vector<std::pair<int, int>> ChildChans;
    for (size_t K = 0; K != Children.size(); ++K) {
      int CIn = makeChannel();
      int COut = makeChannel();
      Split.Outs.push_back(CIn);
      Join.Ins.push_back(COut);
      ChildChans.push_back({CIn, COut});
    }
    // A "null" roundrobin splitter (all weights zero; e.g. Radar's bank of
    // source channels) moves no data: omit the node entirely.
    bool NullSplit =
        Split.Kind == NodeKind::RRSplit && SJ->splitter().totalWeight() == 0;
    if (!NullSplit)
      Nodes.push_back(std::move(Split));
    for (size_t K = 0; K != Children.size(); ++K)
      flatten(*Children[K], ChildChans[K].first, ChildChans[K].second);
    Nodes.push_back(std::move(Join));
    return;
  }
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    int BodyIn = makeChannel();
    int BodyOut = makeChannel();
    int LoopIn = makeChannel();
    int LoopOut = makeChannel();

    Node Join;
    Join.Kind = NodeKind::RRJoin;
    Join.Name = FB->name() + ".join";
    Join.Ins = {InChan, LoopOut};
    Join.Weights = FB->joiner().Weights;
    Join.Out = BodyIn;
    Nodes.push_back(std::move(Join));

    flatten(FB->body(), BodyIn, BodyOut);

    Node Split;
    Split.Kind = FB->splitter().Kind == Splitter::Duplicate
                     ? NodeKind::DupSplit
                     : NodeKind::RRSplit;
    Split.Name = FB->name() + ".split";
    Split.In = BodyOut;
    Split.Outs = {OutChan, LoopIn};
    Split.Weights = FB->splitter().Weights;
    Nodes.push_back(std::move(Split));

    flatten(FB->loop(), LoopIn, LoopOut);

    // Pre-fill the feedback channel so the joiner can start.
    for (double V : FB->enqueued())
      InitialItems[static_cast<size_t>(LoopOut)].push_back(V);
    return;
  }
  }
  unreachable("unknown stream kind");
}
