//===- exec/Parallel.cpp - Parallel sharded execution backend ----------------==//

#include "exec/Parallel.h"

#include "exec/CompiledExecutor.h"
#include "support/Diag.h"
#include "support/MathUtil.h"

#include <algorithm>

using namespace slin;

int slin::resolveWorkerCount(int Requested) {
  if (Requested > 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? static_cast<int>(HW) : 1;
}

//===----------------------------------------------------------------------===//
// ParallelExecutor
//===----------------------------------------------------------------------===//

namespace {

/// Items the external input must hold beyond what a program run pops
/// (peek lookahead of the first consumer; init-work windows).
int64_t externalLookahead(const StaticSchedule &S) {
  int64_t E = std::max(S.InitExternalNeed - S.InitExternalPops,
                       S.SteadyExternalNeed - S.SteadyExternalPops);
  return std::max(E, S.BatchExternalNeed - S.BatchExternalPops);
}

} // namespace

ParallelExecutor::ParallelExecutor(CompiledProgramRef Program)
    : ParallelExecutor(std::move(Program), ParallelOptions()) {
  Opts = Prog->options().Parallel;
}

ParallelExecutor::ParallelExecutor(CompiledProgramRef Program,
                                   ParallelOptions Opts)
    : Prog(std::move(Program)), Opts(Opts) {
  assert(Prog && "null program");
}

ParallelExecutor::~ParallelExecutor() = default;

void ParallelExecutor::provideInput(const std::vector<double> &Items) {
  In.insert(In.end(), Items.begin(), Items.end());
}

size_t ParallelExecutor::outputsProduced() const {
  return Prog->graph().RootProducesOutput ? ExtOut.size() : Printed.size();
}

int64_t ParallelExecutor::consumedInputItems() const {
  const StaticSchedule &S = Prog->schedule();
  return (InitDone ? S.InitExternalPops : 0) +
         IterationsDone * S.SteadyExternalPops;
}

/// Executes one shard: seeds (or genuinely initializes) a fresh executor
/// at the shard boundary, replays the washout with counting off, then
/// runs the shard span and keeps only its outputs and op deltas. Any
/// failure lands in Result.St (never aborts off the main thread).
void ParallelExecutor::runShard(int64_t Start, int64_t Span, bool Counting,
                                const faults::RunDeadline *DL,
                                ShardResult &Result) const {
  const StaticSchedule &S = Prog->schedule();
  int64_t Washout = Prog->shardInfo().WashoutIterations;
  int64_t From = std::max<int64_t>(0, Start - Washout);
  int64_t Warm = Start - From;

  Result.Exec = std::make_unique<CompiledExecutor>(Prog);
  CompiledExecutor &E = *Result.Exec;
  // The shard's input slice: its own pops plus the peek lookahead. A
  // worker replaying from the stream start (From == 0) runs the real
  // init program and consumes the init pops too.
  int64_t Offset = From == 0 ? 0 : S.InitExternalPops + From * S.SteadyExternalPops;
  int64_t Len = (From == 0 ? S.InitExternalPops : 0) +
                (Warm + Span) * S.SteadyExternalPops + externalLookahead(S);
  if (Len > 0 && Offset < static_cast<int64_t>(In.size())) {
    size_t End = std::min(In.size(), static_cast<size_t>(Offset + Len));
    E.provideInput(std::vector<double>(In.begin() + Offset, In.begin() + End));
    Result.InFedEnd = End;
  }

  if (From > 0) {
    Result.St = E.trySeedSteadyState(From);
    if (!Result.St.isOk())
      return;
  }
  if (Warm > 0 || From > 0) {
    // Replayed iterations refresh boundary state; their outputs are
    // discarded below and their ops must not count (a sequential run
    // executes them once, not once per shard). The Warm == 0 shard at the
    // true stream start takes no warmup at all: its init program must run
    // inside the counted span, exactly like a sequential run's.
    ops::CountingScope Off(false);
    Result.St = E.tryRunIterations(Warm, DL);
    if (!Result.St.isOk())
      return;
  }
  size_t OutBoundary = E.externalOutputCount();
  size_t PrintBoundary = E.printed().size();

  OpCounts Before = ops::counts();
  {
    ops::CountingScope Scope(Counting);
    Result.St = E.tryRunIterations(Span, DL);
  }
  Result.Ops = ops::counts() - Before;
  if (!Result.St.isOk())
    return;

  std::vector<double> Out = E.outputSnapshot();
  Result.Out.assign(Out.begin() + static_cast<ptrdiff_t>(OutBoundary),
                    Out.end());
  const std::vector<double> &P = E.printed();
  Result.Printed.assign(P.begin() + static_cast<ptrdiff_t>(PrintBoundary),
                        P.end());
}

CompiledExecutor &ParallelExecutor::seqExecutor() {
  bool Fresh = !Seq;
  if (Fresh) {
    Seq = std::make_unique<CompiledExecutor>(Prog);
    SeqInFed = 0;
  }
  if (SeqInFed < In.size()) {
    Seq->provideInput(std::vector<double>(
        In.begin() + static_cast<ptrdiff_t>(SeqInFed), In.end()));
    SeqInFed = In.size();
  }
  // A fresh executor created after a mid-run failure discarded its
  // predecessor must catch up (uncounted) to the logical stream
  // position; it replays work that already ran, so it cannot starve.
  if (Fresh && IterationsDone > 0) {
    ops::CountingScope Off(false);
    Seq->runIterations(IterationsDone);
  }
  return *Seq;
}

void ParallelExecutor::spliceSeqOutputs(size_t OutBoundary,
                                        size_t PrintBoundary) {
  std::vector<double> Out = Seq->outputSnapshot();
  ExtOut.insert(ExtOut.end(),
                Out.begin() + static_cast<ptrdiff_t>(OutBoundary), Out.end());
  const std::vector<double> &P = Seq->printed();
  Printed.insert(Printed.end(),
                 P.begin() + static_cast<ptrdiff_t>(PrintBoundary), P.end());
}

Status ParallelExecutor::runSequential(int64_t Iters,
                                       const faults::RunDeadline *DL) {
  CompiledExecutor &E = seqExecutor();
  size_t OutBoundary = E.externalOutputCount();
  size_t PrintBoundary = E.printed().size();
  if (Status St = E.tryRunIterations(Iters, DL); !St.isOk()) {
    // Mid-run failure leaves E indeterminate; discard it so the next
    // call rebuilds (and catches up) a fresh one.
    Seq.reset();
    SeqInFed = 0;
    return St;
  }
  spliceSeqOutputs(OutBoundary, PrintBoundary);
  return Status::ok();
}

Status ParallelExecutor::runSequentialByOutputs(size_t NOutputs,
                                                const faults::RunDeadline *DL) {
  CompiledExecutor &E = seqExecutor();
  size_t OutBoundary = E.externalOutputCount();
  size_t PrintBoundary = E.printed().size();
  // E holds the whole logical stream: same target.
  if (Status St = E.tryRun(NOutputs, DL); !St.isOk()) {
    Seq.reset();
    SeqInFed = 0;
    return St;
  }
  spliceSeqOutputs(OutBoundary, PrintBoundary);
  return Status::ok();
}

/// Sharded fan-out hit a seed anomaly: every shard's partial output has
/// been discarded and the whole span re-runs on the continuation tail —
/// or, when none exists, on a fresh executor caught up (uncounted)
/// through the iterations already done. The sequential re-run fires the
/// exact firing sequence a single-threaded engine would, so outputs and
/// FLOP counts stay bit-identical to the clean path.
Status ParallelExecutor::recoverSpanSequentially(int64_t Iters,
                                                 const std::string &Why,
                                                 const faults::RunDeadline *DL) {
  if (!Tail) {
    Tail = std::make_unique<CompiledExecutor>(Prog);
    Tail->provideInput(In);
    TailInFed = In.size();
    if (IterationsDone > 0) {
      ops::CountingScope Off(false);
      if (Status St = Tail->tryRunIterations(IterationsDone, DL);
          !St.isOk()) {
        Tail.reset();
        return St;
      }
    }
  } else if (TailInFed < In.size()) {
    Tail->provideInput(std::vector<double>(
        In.begin() + static_cast<ptrdiff_t>(TailInFed), In.end()));
    TailInFed = In.size();
  }
  size_t OutBoundary = Tail->externalOutputCount();
  size_t PrintBoundary = Tail->printed().size();
  if (Status St = Tail->tryRunIterations(Iters, DL); !St.isOk()) {
    Tail.reset();
    return St;
  }
  std::vector<double> Out = Tail->outputSnapshot();
  ExtOut.insert(ExtOut.end(), Out.begin() + static_cast<ptrdiff_t>(OutBoundary),
                Out.end());
  const std::vector<double> &P = Tail->printed();
  Printed.insert(Printed.end(),
                 P.begin() + static_cast<ptrdiff_t>(PrintBoundary), P.end());
  int64_t SpanIters = Stats.Iterations;
  Stats = RunStats();
  Stats.Iterations = SpanIters;
  Stats.ShardsUsed = 1;
  Stats.Sequential = true;
  Stats.FallbackReason = Why;
  return Status::ok();
}

void ParallelExecutor::runIterations(int64_t Iters) {
  if (Status St = tryRunIterations(Iters); !St.isOk())
    fatalError(St.message());
}

Status ParallelExecutor::tryRunIterations(int64_t Iters,
                                          const faults::RunDeadline *DL) {
  Stats = RunStats();
  if (Iters <= 0)
    return Status::ok();
  Stats.Iterations = Iters;
  const StaticSchedule &S = Prog->schedule();

  const CompiledProgram::ShardInfo &SI = Prog->shardInfo();
  if (!SI.Shardable) {
    // The persistent executor does its own input bookkeeping.
    if (Status St = runSequential(Iters, DL); !St.isOk())
      return St;
    Stats.ShardsUsed = 1;
    Stats.Sequential = true;
    Stats.FallbackReason = SI.Reason;
    IterationsDone += Iters;
    InitDone = true;
    return Status::ok();
  }

  // Validate input coverage up front (workers must not hit the engine's
  // deadlock diagnostics off the main thread).
  int64_t Required = (InitDone ? 0 : S.InitExternalPops) +
                     Iters * S.SteadyExternalPops + externalLookahead(S);
  int64_t Avail = static_cast<int64_t>(In.size()) - consumedInputItems();
  if (Avail < Required)
    return Status(ErrorCode::Deadlock,
                  "parallel run needs " + std::to_string(Required) +
                      " external input items, have " + std::to_string(Avail));

  // Shards shorter than the washout replay more than they execute; the
  // floor keeps the fan-out worth its warmup.
  int64_t MinSpan = std::max<int64_t>(
      {static_cast<int64_t>(Opts.ShardMinIterations), SI.WashoutIterations, 1});
  int Workers = resolveWorkerCount(Opts.Workers);
  int Shards = static_cast<int>(
      std::min<int64_t>(Workers, std::max<int64_t>(1, Iters / MinSpan)));
  bool Counting = ops::isCounting();

  if (Shards == 1) {
    // Single shard: run on the calling thread (its counting scope
    // already applies — no delta folding). A tail executor adopted from
    // the previous call sits exactly at IterationsDone and continues
    // directly, with no re-seeding or washout replay.
    if (Tail) {
      if (TailInFed < In.size()) {
        Tail->provideInput(std::vector<double>(
            In.begin() + static_cast<ptrdiff_t>(TailInFed), In.end()));
        TailInFed = In.size();
      }
      size_t OutBoundary = Tail->externalOutputCount();
      size_t PrintBoundary = Tail->printed().size();
      if (Status St = Tail->tryRunIterations(Iters, DL); !St.isOk()) {
        Tail.reset(); // indeterminate mid-stream; rebuild on next call
        return St;
      }
      std::vector<double> Out = Tail->outputSnapshot();
      ExtOut.insert(ExtOut.end(),
                    Out.begin() + static_cast<ptrdiff_t>(OutBoundary),
                    Out.end());
      const std::vector<double> &P = Tail->printed();
      Printed.insert(Printed.end(),
                     P.begin() + static_cast<ptrdiff_t>(PrintBoundary),
                     P.end());
    } else {
      ShardResult R;
      runShard(IterationsDone, Iters, Counting, DL, R);
      if (!R.St.isOk()) {
        if (R.St.code() != ErrorCode::ShardAnomaly)
          return R.St;
        if (Status St = recoverSpanSequentially(Iters, R.St.str(), DL);
            !St.isOk())
          return St;
        IterationsDone += Iters;
        InitDone = true;
        return Status::ok();
      }
      Stats.WarmupIterations += std::min(SI.WashoutIterations, IterationsDone);
      ExtOut.insert(ExtOut.end(), R.Out.begin(), R.Out.end());
      Printed.insert(Printed.end(), R.Printed.begin(), R.Printed.end());
      Tail = std::move(R.Exec);
      TailInFed = R.InFedEnd;
    }
    Stats.ShardsUsed = 1;
    IterationsDone += Iters;
    InitDone = true;
    return Status::ok();
  }

  // Fanning out. Any previous tail will be superseded by the new last
  // shard (which ends at the new IterationsDone) — but it is kept alive
  // until the shards succeed, as the cheapest sequential-recovery point
  // should one of them hit a seed anomaly.
  int64_t Base = Iters / Shards, Rem = Iters % Shards;
  std::vector<ShardResult> Results(static_cast<size_t>(Shards));
  std::vector<std::thread> Threads;
  Threads.reserve(static_cast<size_t>(Shards));
  int64_t Start = IterationsDone;
  for (int I = 0; I != Shards; ++I) {
    int64_t Span = Base + (I < Rem ? 1 : 0);
    if (I > 0 || Start > 0)
      Stats.WarmupIterations += std::min(SI.WashoutIterations, Start);
    Threads.emplace_back([this, Start, Span, Counting, DL, &Results, I] {
      runShard(Start, Span, Counting, DL, Results[static_cast<size_t>(I)]);
    });
    Start += Span;
  }
  for (std::thread &T : Threads)
    T.join();

  for (ShardResult &R : Results) {
    if (R.St.isOk())
      continue;
    // One bad shard poisons the span: later shards' outputs depend on
    // positions the bad shard was meant to cover, so discard everything
    // (op deltas were never folded in) and re-run sequentially.
    if (R.St.code() != ErrorCode::ShardAnomaly)
      return R.St;
    if (Status St = recoverSpanSequentially(Iters, R.St.str(), DL);
        !St.isOk())
      return St;
    IterationsDone += Iters;
    InitDone = true;
    return Status::ok();
  }

  OpCounts Total;
  for (ShardResult &R : Results) {
    ExtOut.insert(ExtOut.end(), R.Out.begin(), R.Out.end());
    Printed.insert(Printed.end(), R.Printed.begin(), R.Printed.end());
    Total += R.Ops;
  }
  if (Counting)
    ops::accumulate(Total);
  Tail = std::move(Results.back().Exec);
  TailInFed = Results.back().InFedEnd;

  Stats.ShardsUsed = Shards;
  IterationsDone += Iters;
  InitDone = true;
  return Status::ok();
}

void ParallelExecutor::run(size_t NOutputs) {
  if (Status St = tryRun(NOutputs); !St.isOk())
    fatalError(St.message());
}

Status ParallelExecutor::tryRun(size_t NOutputs,
                                const faults::RunDeadline *DL) {
  size_t Have = outputsProduced();
  if (Have >= NOutputs)
    return Status::ok();
  const StaticSchedule &S = Prog->schedule();

  if (!Prog->shardInfo().Shardable) {
    // Drive the persistent executor's own output-driven loop directly —
    // identical behavior (including deadlock diagnostics) to a plain
    // CompiledExecutor::run.
    Stats = RunStats();
    if (Status St = runSequentialByOutputs(NOutputs, DL); !St.isOk())
      return St;
    Stats.ShardsUsed = 1;
    Stats.Sequential = true;
    Stats.FallbackReason = Prog->shardInfo().Reason;
    InitDone = true;
    return Status::ok();
  }

  int64_t PerIter = S.SteadyExternalPushes;
  if (!Prog->graph().RootProducesOutput) {
    // Print-driven graph: the schedule cannot count prints statically, so
    // probe a throwaway executor for two iterations (uncounted) when
    // enough input exists; otherwise leave the rate unknown and let the
    // loop below pace itself.
    if (ProbedPerIterOut < 0 &&
        static_cast<int64_t>(In.size()) >=
            S.InitExternalPops + 2 * S.SteadyExternalPops +
                externalLookahead(S)) {
      CompiledExecutor E(Prog);
      ops::CountingScope Off(false);
      E.provideInput(In);
      E.runIterations(1);
      size_t O1 = E.outputsProduced();
      E.runIterations(1);
      ProbedPerIterOut = static_cast<int64_t>(E.outputsProduced() - O1);
    }
    PerIter = std::max<int64_t>(ProbedPerIterOut, 0);
  }

  // The rate may be approximate (print counts can vary per iteration),
  // so loop to the target like the sequential engine does, and fail the
  // same way it does: a batch-sized span yielding no output is a
  // deadlock, and exhausted input surfaces runIterations' diagnostic.
  int64_t Floor = 1;
  while (outputsProduced() < NOutputs) {
    size_t Before = outputsProduced();
    int64_t Deficit = static_cast<int64_t>(NOutputs - Before);
    int64_t Iters = std::max<int64_t>(
        PerIter > 0 ? ceilDiv(Deficit, PerIter) : S.BatchIterations, Floor);
    if (S.SteadyExternalPops > 0) {
      int64_t Budget = (static_cast<int64_t>(In.size()) -
                        consumedInputItems() -
                        (InitDone ? 0 : S.InitExternalPops) -
                        externalLookahead(S)) /
                       S.SteadyExternalPops;
      Iters = std::min(Iters, std::max<int64_t>(Budget, 1));
    }
    if (Status St = tryRunIterations(std::max<int64_t>(Iters, 1), DL);
        !St.isOk())
      return St;
    if (outputsProduced() == Before) {
      if (Iters >= S.BatchIterations)
        return Status(ErrorCode::Deadlock,
                      "stream graph deadlocked: steady state produces no "
                      "observable output");
      // A short span may legitimately print nothing; escalate to a full
      // batch before declaring deadlock (input-starved runs terminate
      // via runIterations' own diagnostic as the budget drains).
      Floor = S.BatchIterations;
    }
  }
  return Status::ok();
}

//===----------------------------------------------------------------------===//
// ExecutorPool
//===----------------------------------------------------------------------===//

ExecutorPool::ExecutorPool(CompiledProgramRef Program, int Workers)
    : Prog(std::move(Program)) {
  int N = resolveWorkerCount(Workers > 0 ? Workers
                                         : Prog->options().Parallel.Workers);
  Threads.reserve(static_cast<size_t>(N));
  for (int I = 0; I != N; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ExecutorPool::~ExecutorPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Ready.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

std::future<ExecutorPool::Result> ExecutorPool::submit(Request R) {
  Job J;
  J.Req = std::move(R);
  std::future<Result> F = J.Promise.get_future();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    assert(!Stopping && "submit on a stopping pool");
    Queue.push_back(std::move(J));
  }
  Ready.notify_one();
  return F;
}

uint64_t ExecutorPool::served() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters.Served;
}

ExecutorPool::Stats ExecutorPool::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}

size_t ExecutorPool::queueDepth() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queue.size();
}

void ExecutorPool::workerLoop() {
  for (;;) {
    Job J;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Ready.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // stopping and drained
      J = std::move(Queue.front());
      Queue.pop_front();
    }
    faults::RunDeadline DL =
        faults::RunDeadline::afterMillis(J.Req.DeadlineMillis);
    const faults::RunDeadline *DLP = J.Req.DeadlineMillis > 0 ? &DL : nullptr;
    Result R;
    OpCounts Before = ops::counts();
    auto Start = std::chrono::steady_clock::now();
    {
      ops::CountingScope Scope(J.Req.CountOps);
      if (J.Req.Eng == Engine::Parallel && !J.Req.Latency) {
        ParallelExecutor E(Prog);
        E.provideInput(J.Req.Input);
        R.St = E.tryRun(J.Req.NOutputs, DLP);
        if (R.St.isOk())
          R.Outputs = Prog->graph().RootProducesOutput ? E.outputSnapshot()
                                                       : E.printed();
      } else {
        // Compiled and Native share the executor; a null module IS the
        // op-tape engine. Latency mode always runs here (see Request).
        CompiledExecutor E(Prog, J.Req.Native);
        E.provideInput(J.Req.Input);
        R.St = J.Req.Latency
                   ? E.tryRunLatency(J.Req.NOutputs, DLP,
                                     &R.FirstOutputSeconds)
                   : E.tryRun(J.Req.NOutputs, DLP);
        if (R.St.isOk())
          R.Outputs = Prog->graph().RootProducesOutput ? E.outputSnapshot()
                                                       : E.printed();
      }
    }
    R.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    R.Ops = ops::counts() - Before;
    {
      // Count before fulfilling: a caller that observed the future must
      // also observe the increment.
      std::lock_guard<std::mutex> Lock(Mutex);
      if (R.St.isOk())
        ++Counters.Served;
      else if (R.St.code() == ErrorCode::Timeout ||
               R.St.code() == ErrorCode::Cancelled)
        ++Counters.Timeouts;
      else
        ++Counters.Failures;
    }
    J.Promise.set_value(std::move(R));
  }
}
