//===- exec/ExecOptions.h - Unified execution options -----------*- C++ -*-===//
///
/// \file
/// One struct holding every engine knob: which engine runs the program
/// and the per-engine tuning options. Measurement helpers, the compiler
/// pipeline, the program cache and the bench harnesses all carry an
/// ExecOptions instead of parallel (engine, executor-options, batch-
/// iterations) fields. The per-engine structs live here — away from the
/// engine headers — so option-only consumers stay light; the engines
/// alias them (`Executor::Options`, `CompiledExecutor::Options`).
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_EXEC_EXECOPTIONS_H
#define SLIN_EXEC_EXECOPTIONS_H

#include "exec/Engine.h"

#include <cstddef>

namespace slin {

/// Knobs of the dynamic data-driven engine (exec/Executor.h).
struct DynamicOptions {
  /// Upper bound on any channel's high-water mark. Each channel's
  /// actual cap is derived from its consumer's peek requirement (twice
  /// the requirement, at least MinChannelCap) so producers stay only
  /// slightly ahead of consumers and measured windows reflect steady
  /// state rather than queue fill-up.
  size_t ChannelCap = 1 << 16;
  size_t MinChannelCap = 64;
  /// Max consecutive firings of one node within a sweep.
  size_t BatchLimit = 1024;
};

/// Knobs of the parallel sharded backend (exec/Parallel.h), which runs
/// CompiledProgram artifacts across a pool of worker threads.
struct ParallelOptions {
  /// Worker threads a sharded run fans out to (also the executor-pool
  /// size). 0 picks the hardware concurrency.
  int Workers = 4;
  /// Minimum steady iterations per shard; a run too short to give every
  /// worker this much (or a program whose shard-boundary state cannot be
  /// reconstructed) degrades gracefully to fewer workers / one shard.
  /// The effective floor is max(ShardMinIterations, washout) — shards
  /// shorter than the washout would spend more iterations refreshing
  /// boundary state than executing their span.
  long long ShardMinIterations = 32;

  bool operator==(const ParallelOptions &O) const {
    return Workers == O.Workers && ShardMinIterations == O.ShardMinIterations;
  }
};

/// Knobs of the compiled batched engine (exec/CompiledExecutor.h) and of
/// the parallel backend layered on top of it.
///
/// NOTE for maintainers: ProgramCache keys artifacts (in memory AND on
/// disk) on a hash of EVERY field of this struct. Adding a field is a
/// compile error in hashOptions (compiler/Program.cpp) and in
/// serializeProgram (compiler/ArtifactStore.cpp) until the new field is
/// mixed into the key and round-tripped — both destructure this struct
/// and ParallelOptions field by field, so a new knob can never silently
/// alias artifacts compiled under different options. Keep this struct
/// (and ParallelOptions) an aggregate, or those checks stop compiling.
struct CompiledOptions {
  /// Steady-state iterations fused into one batch program. Larger
  /// batches give the batched kernels longer runs (and cost
  /// proportionally more channel memory).
  int BatchIterations = 16;
  /// Parallel-backend knobs (ignored by plain CompiledExecutor runs).
  ParallelOptions Parallel;
};

/// Engine selection plus both engines' knobs.
struct ExecOptions {
  Engine Eng = Engine::Dynamic;
  DynamicOptions Dynamic;
  CompiledOptions Compiled;
};

} // namespace slin

#endif // SLIN_EXEC_EXECOPTIONS_H
