//===- exec/CompiledExecutor.h - Batched compiled executor ------*- C++ -*-===//
///
/// \file
/// The compiled, batched steady-state execution engine — the runtime
/// counterpart of the paper's performance model, where linear replacement
/// collapses a pipeline into one matrix multiply whose cost is then
/// driven down by a tuned kernel (Sections 5.2-5.4). Where the dynamic
/// Executor re-discovers a schedule every sweep and tree-walks each work
/// function, this engine precomputes everything it can:
///
///  * the flattened graph's steady-state schedule (sched/Schedule.h)
///    becomes a fixed firing program — a short list of (node, count)
///    steps covering B steady-state iterations per batch;
///  * channels become flat ring buffers sized from the schedule's exact
///    high-water marks, compacted once per program run, so every peek
///    window and push cursor is a raw pointer;
///  * each work function is flattened once into an op tape
///    (wir/OpTape.h) executed by a tight dispatch loop;
///  * a linear node fired K times in a row executes one cache-blocked,
///    register-tiled K x e by e x u matrix multiply (matrix/Kernels.h
///    applyBatched) instead of K matrix-vector products.
///
/// Outputs are bit-identical to the dynamic Executor's: op tapes replay
/// the interpreter's evaluation order exactly, and batched kernels
/// replay the sequential kernels' per-firing accumulation order.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_EXEC_COMPILEDEXECUTOR_H
#define SLIN_EXEC_COMPILEDEXECUTOR_H

#include "codegen/NativeModule.h"
#include "compiler/Program.h"
#include "exec/ExecOptions.h"
#include "exec/FlatGraph.h"
#include "sched/Schedule.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "wir/OpTape.h"

namespace slin {

/// An executor *instance* over an immutable CompiledProgram artifact
/// (compiler/Program.h): the artifact holds the flat graph, the static
/// schedule and the compiled op tapes; this class holds only runtime
/// state (channel buffers, register frames, field stores, native filter
/// clones), so one program instantiates any number of independent
/// executors — the "compile once, serve many runs" split.
class CompiledExecutor {
public:
  /// Knobs live in exec/ExecOptions.h (shared with the unified
  /// ExecOptions struct); the alias keeps `CompiledExecutor::Options`.
  using Options = CompiledOptions;

  /// Convenience constructors compiling a fresh private program (not
  /// routed through the ProgramCache; see exec/Measure.h for the cached
  /// path).
  explicit CompiledExecutor(const Stream &Root)
      : CompiledExecutor(Root, Options()) {}
  CompiledExecutor(const Stream &Root, Options Opts);

  /// Instantiates runtime state over a shared artifact.
  explicit CompiledExecutor(CompiledProgramRef Program);

  /// Same, with a native module pre-attached (the Engine::Native serving
  /// path; null \p Native is the plain op-tape executor).
  CompiledExecutor(CompiledProgramRef Program, codegen::NativeModuleRef Native)
      : CompiledExecutor(std::move(Program)) {
    NativeMod = std::move(Native);
  }

  ~CompiledExecutor();

  CompiledExecutor(const CompiledExecutor &) = delete;
  CompiledExecutor &operator=(const CompiledExecutor &) = delete;

  /// Appends items to the graph's external input channel.
  void provideInput(const std::vector<double> &Items);

  /// Runs batch programs (falling back to single steady iterations when
  /// the remaining external input cannot cover a batch) until the
  /// observable output count reaches \p NOutputs. Reports a fatal error
  /// when the graph deadlocks (insufficient input / invalid graph).
  void run(size_t NOutputs);

  /// Runs the init program (if not yet run) plus exactly \p Iters steady
  /// iterations, batch-granular where input allows. The iteration-driven
  /// counterpart of run() used by the parallel backend, whose shards and
  /// reference runs must execute identical firing sequences.
  void runIterations(int64_t Iters);

  /// Serving-path front doors behind run()/runIterations(): a deadlock
  /// (insufficient input / unproductive steady state) comes back as
  /// ErrorCode::Deadlock instead of aborting, and an optional \p DL is
  /// polled between firing programs so a runaway (or injected-hang) run
  /// returns Timeout/Cancelled. On any non-Ok Status the executor's
  /// state is indeterminate mid-stream — recover by rerunning on a
  /// fresh executor, never by continuing this one.
  Status tryRun(size_t NOutputs,
                const faults::RunDeadline *DL = nullptr);
  Status tryRunIterations(int64_t Iters,
                          const faults::RunDeadline *DL = nullptr);

  /// Latency-mode tryRun: fires single steady iterations only — never
  /// the fused B-iteration batch program — so the first observable
  /// output lands after one iteration's work instead of a whole
  /// batch's. Outputs are bit-identical to tryRun's (the batch program
  /// replays the same firing sequence); only the time-to-first-output
  /// changes. \p FirstOutputSeconds (optional) receives the wall-clock
  /// seconds from this call's entry to the first new observable
  /// output. The service daemon's latency serving mode.
  Status tryRunLatency(size_t NOutputs,
                       const faults::RunDeadline *DL = nullptr,
                       double *FirstOutputSeconds = nullptr);

  /// Places this (freshly instantiated) executor at the state boundary of
  /// steady iteration \p StartIteration without executing iterations
  /// 0..StartIteration-1: channels are filled to their post-init live
  /// counts with placeholder zeros, init firings are marked done, and
  /// closed-form filter state is seeded exactly per the program's
  /// ShardInfo. The caller must then replay shardInfo().WashoutIterations
  /// steady iterations (discarding their outputs) before the state — and
  /// everything after it — is bit-identical to a sequential run. Only
  /// valid on shardable programs.
  void seedSteadyState(int64_t StartIteration);

  /// seedSteadyState with the preconditions *checked*: a non-shardable
  /// program, a stale executor, or an out-of-range seed recipe (and the
  /// shard-seed-corrupt fault point) return ErrorCode::ShardAnomaly
  /// instead of asserting — the parallel backend's cue to fall back to
  /// its sequential path.
  Status trySeedSteadyState(int64_t StartIteration);

  /// Items on the external output channel (never consumed).
  std::vector<double> outputSnapshot() const { return ExtOut; }

  /// Values produced by print statements, in order.
  const std::vector<double> &printed() const { return Printed; }

  /// Count of observable outputs produced so far.
  size_t outputsProduced() const;

  /// Items on the external output channel (cheap; no snapshot copy).
  size_t externalOutputCount() const { return ExtOut.size(); }

  /// Total node firings so far (diagnostics).
  uint64_t firings() const { return Firings; }

  /// The static schedule driving this engine (for tests/diagnostics).
  const StaticSchedule &schedule() const { return Sched; }

  /// The shared artifact this instance runs.
  const CompiledProgram &program() const { return *Prog; }

  /// Attaches a dlopen'd native module (codegen/NativeModule.h): filters
  /// with an emitted entry point then run machine code instead of the
  /// op-tape dispatch loop (bit-identical by construction). Counting
  /// runs still take the tapes — emitted code does no accounting, and
  /// FLOP numbers must keep their interpreter meaning. Null detaches.
  void attachNativeModule(codegen::NativeModuleRef M) {
    NativeMod = std::move(M);
  }

  /// The attached native module (null when running pure op tapes).
  const codegen::NativeModuleRef &nativeModule() const { return NativeMod; }

private:
  /// A flat channel buffer; live items occupy [Head, Tail). Compacted
  /// (live items moved to the front) after every program run, so within
  /// one program positions never exceed the scheduled buffer size.
  struct ChannelBuf {
    std::vector<double> Buf;
    size_t Head = 0;
    size_t Tail = 0;
    size_t live() const { return Tail - Head; }
  };

  /// Per-filter *runtime* state; the op tapes themselves live in the
  /// shared CompiledProgram artifact.
  struct FilterState {
    const wir::OpProgram *Work = nullptr;
    const wir::OpProgram *InitWork = nullptr; ///< null when none
    wir::WorkFrame Frame;
    wir::FieldStore Fields;
    std::unique_ptr<NativeFilter> Native;
    bool FiredOnce = false;
  };

  class PtrTape;

  size_t extInAvailable() const { return ExtIn.size() - ExtInPos; }
  const double *readBase(int Chan) const;
  void advanceRead(int Chan, size_t N);
  double *writePtr(int Chan, size_t N);
  void runProgram(const FiringProgram &Prog);
  void fireFilterStep(size_t NodeIdx, int64_t K);
  void fireSplitJoinStep(size_t NodeIdx, int64_t K);
  void compact();

  CompiledProgramRef Prog;
  codegen::NativeModuleRef NativeMod; ///< null: op-tape dispatch only
  const flat::FlatGraph &Graph; ///< = Prog->graph()
  const StaticSchedule &Sched;  ///< = Prog->schedule()
  std::vector<ChannelBuf> Channels; ///< indexed by channel; external unused
  std::vector<FilterState> States;  ///< indexed by node; filters only
  std::vector<double> ExtIn;
  size_t ExtInPos = 0;
  std::vector<double> ExtOut;
  std::vector<double> Printed;
  /// Reusable splitter/joiner cursor scratch (no steady-state allocation).
  std::vector<double *> WriteCursors;
  std::vector<const double *> ReadCursors;
  bool InitDone = false;
  uint64_t Firings = 0;
};

} // namespace slin

#endif // SLIN_EXEC_COMPILEDEXECUTOR_H
