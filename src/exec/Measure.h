//===- exec/Measure.h - Steady-state measurement ----------------*- C++ -*-===//
///
/// \file
/// The paper's measurement methodology (Section 5.1): run the program to
/// steady state, then count floating-point operations (per output) with an
/// instruction-counting client and separately measure execution time (per
/// output). This helper reproduces that protocol: a warmup phase absorbs
/// init-work firings and pipeline fill, then a measured window is run
/// twice — once with op counting enabled, once uncounted under a wall
/// clock — and both are normalized per program output.
///
/// Measurements can run on either execution engine (exec/Engine.h); both
/// engines produce identical outputs and identical FLOP counts, so the
/// engine choice only changes the wall-clock column.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_EXEC_MEASURE_H
#define SLIN_EXEC_MEASURE_H

#include "compiler/Program.h"
#include "exec/Engine.h"
#include "exec/ExecOptions.h"
#include "exec/Executor.h"
#include "support/OpCounters.h"

namespace slin {

struct Measurement {
  OpCounts Ops;          ///< ops executed in the measured window
  size_t Outputs = 0;    ///< outputs produced in the measured window
  double Seconds = 0.0;  ///< wall-clock time of the (uncounted) window

  double flopsPerOutput() const {
    return Outputs ? static_cast<double>(Ops.flops()) / Outputs : 0.0;
  }
  double multsPerOutput() const {
    return Outputs ? static_cast<double>(Ops.mults()) / Outputs : 0.0;
  }
  double secondsPerOutput() const {
    return Outputs ? Seconds / static_cast<double>(Outputs) : 0.0;
  }
};

struct MeasureOptions {
  size_t WarmupOutputs = 256;
  size_t MeasureOutputs = 2048;
  bool MeasureTime = true; ///< skip the timing run when false
  /// Engine selection + per-engine knobs (exec/ExecOptions.h).
  ExecOptions Exec;
  /// Compiled engine only: the artifact to instantiate (e.g. the one the
  /// compiler pipeline just produced). Null: fetch from the global
  /// ProgramCache. Must match Root's structure when set.
  CompiledProgramRef Program;
};

/// Measures one configuration of a self-contained (source-driven) graph.
/// Compiled-engine runs fetch their artifact from the global ProgramCache
/// (compiler/Program.h): the counting and timing runs share one compile,
/// and repeated measurements of structurally identical configurations
/// recompile nothing.
Measurement measureSteadyState(const Stream &Root,
                               const MeasureOptions &Opts = MeasureOptions());

/// Runs \p Root until it yields \p NOutputs observable outputs and returns
/// them (printed values for void->void graphs, external channel items
/// otherwise). Used by the output-equivalence tests. Compiled-engine runs
/// go through the global ProgramCache.
std::vector<double> collectOutputs(const Stream &Root, size_t NOutputs,
                                   Engine Eng = Engine::Dynamic);

} // namespace slin

#endif // SLIN_EXEC_MEASURE_H
