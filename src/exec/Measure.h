//===- exec/Measure.h - Steady-state measurement ----------------*- C++ -*-===//
///
/// \file
/// The paper's measurement methodology (Section 5.1): run the program to
/// steady state, then count floating-point operations (per output) with an
/// instruction-counting client and separately measure execution time (per
/// output). This helper reproduces that protocol: a warmup phase absorbs
/// init-work firings and pipeline fill, then a measured window is run
/// twice — once with op counting enabled, once uncounted under a wall
/// clock — and both are normalized per program output.
///
/// Measurements can run on either execution engine (exec/Engine.h); both
/// engines produce identical outputs and identical FLOP counts, so the
/// engine choice only changes the wall-clock column.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_EXEC_MEASURE_H
#define SLIN_EXEC_MEASURE_H

#include "exec/Engine.h"
#include "exec/Executor.h"
#include "support/OpCounters.h"

namespace slin {

struct Measurement {
  OpCounts Ops;          ///< ops executed in the measured window
  size_t Outputs = 0;    ///< outputs produced in the measured window
  double Seconds = 0.0;  ///< wall-clock time of the (uncounted) window

  double flopsPerOutput() const {
    return Outputs ? static_cast<double>(Ops.flops()) / Outputs : 0.0;
  }
  double multsPerOutput() const {
    return Outputs ? static_cast<double>(Ops.mults()) / Outputs : 0.0;
  }
  double secondsPerOutput() const {
    return Outputs ? Seconds / static_cast<double>(Outputs) : 0.0;
  }
};

struct MeasureOptions {
  size_t WarmupOutputs = 256;
  size_t MeasureOutputs = 2048;
  bool MeasureTime = true; ///< skip the timing run when false
  Engine Eng = Engine::Dynamic;
  Executor::Options Exec;
  /// Compiled engine: steady-state iterations fused per batch (kept as a
  /// plain knob so this header stays light; see CompiledExecutor.h).
  int CompiledBatchIterations = 16;
};

/// Measures one configuration of a self-contained (source-driven) graph.
Measurement measureSteadyState(const Stream &Root,
                               const MeasureOptions &Opts = MeasureOptions());

/// Runs \p Root until it yields \p NOutputs observable outputs and returns
/// them (printed values for void->void graphs, external channel items
/// otherwise). Used by the output-equivalence tests.
std::vector<double> collectOutputs(const Stream &Root, size_t NOutputs,
                                   Engine Eng = Engine::Dynamic);

} // namespace slin

#endif // SLIN_EXEC_MEASURE_H
