//===- exec/CompiledExecutor.cpp - Batched compiled executor ----------------==//

#include "exec/CompiledExecutor.h"

#include "support/Diag.h"
#include "support/OpCounters.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

using namespace slin;
using namespace slin::flat;

CompiledExecutor::~CompiledExecutor() = default;

//===----------------------------------------------------------------------===//
// Native-filter tape adapter
//===----------------------------------------------------------------------===//

/// Raw-pointer tape for per-firing native execution (init firings and
/// native filters without a batched path).
class CompiledExecutor::PtrTape : public wir::Tape {
public:
  PtrTape(const double *In, double *Out, std::vector<double> &Printed)
      : In(In), Out(Out), Printed(Printed) {}

  double peek(int Index) override {
    assert(In && Index >= 0 && "peek on a source filter");
    return In[Pos + static_cast<size_t>(Index)];
  }
  double pop() override {
    assert(In && "pop on a source filter");
    return In[Pos++];
  }
  void push(double Value) override {
    assert(Out && "push on a filter without an output channel");
    Out[OutPos++] = Value;
  }
  void print(double Value) override { Printed.push_back(Value); }

private:
  const double *In;
  size_t Pos = 0;
  double *Out;
  size_t OutPos = 0;
  std::vector<double> &Printed;
};

//===----------------------------------------------------------------------===//
// Native-module host services
//===----------------------------------------------------------------------===//

namespace {

/// Print thunk handed to emitted code; Sink is the executor's Printed
/// vector, so native prints interleave exactly like tape prints.
void nativePrint(void *Sink, double V) {
  static_cast<std::vector<double> *>(Sink)->push_back(V);
}

/// Failure thunk: emitted bounds/rate checks land on the same fatal
/// ladder (and the same message text) as the op-tape interpreter's.
void nativeFail(const char *Msg) { fatalError(Msg); }

} // namespace

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

CompiledExecutor::CompiledExecutor(const Stream &Root, Options Opts)
    : CompiledExecutor(std::make_shared<const CompiledProgram>(Root, Opts)) {}

CompiledExecutor::CompiledExecutor(CompiledProgramRef Program)
    : Prog(std::move(Program)), Graph(Prog->graph()),
      Sched(Prog->schedule()) {
  Channels.resize(Graph.numChannels());
  for (size_t C = 0; C != Graph.numChannels(); ++C) {
    if (static_cast<int>(C) == Graph.ExternalIn ||
        static_cast<int>(C) == Graph.ExternalOut)
      continue;
    ChannelBuf &B = Channels[C];
    B.Buf.assign(static_cast<size_t>(Sched.ChannelBufSize[C]), 0.0);
    const std::vector<double> &Init = Graph.InitialItems[C];
    std::copy(Init.begin(), Init.end(), B.Buf.begin());
    B.Tail = Init.size();
  }

  States.resize(Graph.Nodes.size());
  for (size_t I = 0; I != Graph.Nodes.size(); ++I) {
    const Node &N = Graph.Nodes[I];
    if (N.Kind != NodeKind::Filter)
      continue;
    const CompiledProgram::FilterArtifact &A = Prog->filterArtifact(I);
    FilterState &S = States[I];
    if (A.Native) {
      S.Native = A.Native->clone();
      continue;
    }
    S.Fields = wir::FieldStore(N.F->fields());
    S.Work = &A.Work;
    S.Work->prepareFrame(S.Frame);
    if (!A.InitWork.empty()) {
      S.InitWork = &A.InitWork;
      S.InitWork->prepareFrame(S.Frame);
    }
  }
}

//===----------------------------------------------------------------------===//
// Channel access
//===----------------------------------------------------------------------===//

const double *CompiledExecutor::readBase(int Chan) const {
  if (Chan == Graph.ExternalIn)
    return ExtIn.data() + ExtInPos;
  const ChannelBuf &B = Channels[static_cast<size_t>(Chan)];
  return B.Buf.data() + B.Head;
}

void CompiledExecutor::advanceRead(int Chan, size_t N) {
  if (Chan == Graph.ExternalIn) {
    ExtInPos += N;
    assert(ExtInPos <= ExtIn.size() && "external input overrun");
    return;
  }
  ChannelBuf &B = Channels[static_cast<size_t>(Chan)];
  B.Head += N;
  assert(B.Head <= B.Tail && "channel underflow (schedule bug)");
}

double *CompiledExecutor::writePtr(int Chan, size_t N) {
  if (Chan == Graph.ExternalOut) {
    size_t Old = ExtOut.size();
    ExtOut.resize(Old + N);
    return ExtOut.data() + Old;
  }
  ChannelBuf &B = Channels[static_cast<size_t>(Chan)];
  assert(B.Tail + N <= B.Buf.size() && "channel overflow (schedule bug)");
  double *P = B.Buf.data() + B.Tail;
  B.Tail += N;
  return P;
}

void CompiledExecutor::compact() {
  for (size_t C = 0; C != Channels.size(); ++C) {
    if (static_cast<int>(C) == Graph.ExternalIn ||
        static_cast<int>(C) == Graph.ExternalOut)
      continue;
    ChannelBuf &B = Channels[C];
    if (B.Head == 0)
      continue;
    size_t Live = B.live();
    if (Live)
      std::memmove(B.Buf.data(), B.Buf.data() + B.Head,
                   Live * sizeof(double));
    B.Head = 0;
    B.Tail = Live;
  }
  // Drop the consumed prefix of the external input.
  if (ExtInPos) {
    ExtIn.erase(ExtIn.begin(),
                ExtIn.begin() + static_cast<ptrdiff_t>(ExtInPos));
    ExtInPos = 0;
  }
}

//===----------------------------------------------------------------------===//
// Firing
//===----------------------------------------------------------------------===//

void CompiledExecutor::fireFilterStep(size_t NodeIdx, int64_t K) {
  const Node &N = Graph.Nodes[NodeIdx];
  FilterState &S = States[NodeIdx];
  const Filter *F = N.F;

  bool InitPending = !S.FiredOnce && F->hasInitWork();
  int64_t SteadyK = K - (InitPending ? 1 : 0);
  int InitPop = InitPending ? F->initPopRate() : 0;
  int InitPush = InitPending ? F->initPushRate() : 0;
  int Pop = F->popRate();
  int Push = F->pushRate();
  size_t TotalPop =
      static_cast<size_t>(InitPop) + static_cast<size_t>(SteadyK) * Pop;
  size_t TotalPush =
      static_cast<size_t>(InitPush) + static_cast<size_t>(SteadyK) * Push;

  const double *In = N.In >= 0 ? readBase(N.In) : nullptr;
  double *Out = N.Out >= 0 && TotalPush ? writePtr(N.Out, TotalPush) : nullptr;

  // Emitted entry points take over only outside counting runs: native
  // code does no op accounting, so FLOP numbers keep their interpreter
  // meaning (timing runs never count; see exec/Measure.cpp).
  const codegen::NodeFns *NF = NativeMod && !ops::isCounting()
                                   ? &NativeMod->node(NodeIdx)
                                   : nullptr;

  if (S.Native) {
    const double *Ip = In;
    double *Op = Out;
    if (InitPending) {
      PtrTape T(Ip, Op, Printed);
      S.Native->fireInit(T);
      Ip = Ip ? Ip + InitPop : nullptr;
      Op = Op ? Op + InitPush : nullptr;
    }
    if (SteadyK > 0) {
      bool Batched = false;
      if (SteadyK > 1 && Ip && Op) {
        if (NF && NF->Batch) {
          NF->Batch(Ip, Op, static_cast<long>(SteadyK));
          Batched = true;
        } else {
          Batched = S.Native->fireBatch(Ip, Op, static_cast<int>(SteadyK));
        }
      }
      if (!Batched) {
        for (int64_t I = 0; I != SteadyK; ++I) {
          PtrTape T(Ip, Op, Printed);
          S.Native->fire(T);
          Ip = Ip ? Ip + Pop : nullptr;
          Op = Op ? Op + Push : nullptr;
        }
      }
    }
  } else if (NF && NF->Work) {
    const double *Ip = In;
    double *Op = Out;
    // Fill the frame's field-pointer cache exactly as OpProgram::run
    // does; emitted code indexes the same vectors through NativeCtx.
    wir::WorkFrame &Fr = S.Frame;
    size_t NumFlds = std::min(Fr.FldPtrs.size(), S.Fields.Values.size());
    for (size_t I = 0; I != NumFlds; ++I) {
      Fr.FldPtrs[I] = S.Fields.Values[I].data();
      Fr.FldSizes[I] = static_cast<int32_t>(S.Fields.Values[I].size());
    }
    codegen::NativeCtx Ctx{Fr.FldPtrs.data(), Fr.FldSizes.data(), &Printed,
                           nativePrint, nativeFail};
    if (InitPending) {
      if (NF->Init)
        NF->Init(&Ctx, Ip, Op, 1);
      else
        S.InitWork->run(S.Frame, S.Fields, Ip, Op, Printed);
      Ip = Ip ? Ip + InitPop : nullptr;
      Op = Op ? Op + InitPush : nullptr;
    }
    if (SteadyK > 0)
      NF->Work(&Ctx, Ip, Op, static_cast<long>(SteadyK));
  } else {
    const double *Ip = In;
    double *Op = Out;
    if (InitPending) {
      S.InitWork->run(S.Frame, S.Fields, Ip, Op, Printed);
      Ip = Ip ? Ip + InitPop : nullptr;
      Op = Op ? Op + InitPush : nullptr;
    }
    for (int64_t I = 0; I != SteadyK; ++I) {
      S.Work->run(S.Frame, S.Fields, Ip, Op, Printed);
      Ip = Ip ? Ip + Pop : nullptr;
      Op = Op ? Op + Push : nullptr;
    }
  }

  S.FiredOnce = true;
  if (N.In >= 0)
    advanceRead(N.In, TotalPop);
  Firings += static_cast<uint64_t>(K);
}

void CompiledExecutor::fireSplitJoinStep(size_t NodeIdx, int64_t K) {
  const Node &N = Graph.Nodes[NodeIdx];
  Firings += static_cast<uint64_t>(K);
  switch (N.Kind) {
  case NodeKind::DupSplit: {
    size_t KN = static_cast<size_t>(K);
    const double *In = readBase(N.In);
    for (int OutChan : N.Outs) {
      double *Dst = writePtr(OutChan, KN);
      std::copy(In, In + KN, Dst);
    }
    advanceRead(N.In, KN);
    return;
  }
  case NodeKind::RRSplit: {
    size_t Tot = static_cast<size_t>(N.totalWeight());
    const double *In = readBase(N.In);
    if (WriteCursors.size() < N.Outs.size())
      WriteCursors.resize(N.Outs.size());
    double **Dst = WriteCursors.data();
    for (size_t C = 0; C != N.Outs.size(); ++C)
      Dst[C] = writePtr(N.Outs[C],
                        static_cast<size_t>(K) *
                            static_cast<size_t>(N.Weights[C]));
    for (int64_t I = 0; I != K; ++I)
      for (size_t C = 0; C != N.Outs.size(); ++C)
        for (int W = 0; W != N.Weights[C]; ++W)
          *Dst[C]++ = *In++;
    advanceRead(N.In, static_cast<size_t>(K) * Tot);
    return;
  }
  case NodeKind::RRJoin: {
    size_t Tot = static_cast<size_t>(N.totalWeight());
    if (ReadCursors.size() < N.Ins.size())
      ReadCursors.resize(N.Ins.size());
    const double **Src = ReadCursors.data();
    for (size_t C = 0; C != N.Ins.size(); ++C)
      Src[C] = readBase(N.Ins[C]);
    double *Out = writePtr(N.Out, static_cast<size_t>(K) * Tot);
    for (int64_t I = 0; I != K; ++I)
      for (size_t C = 0; C != N.Ins.size(); ++C)
        for (int W = 0; W != N.Weights[C]; ++W)
          *Out++ = *Src[C]++;
    for (size_t C = 0; C != N.Ins.size(); ++C)
      advanceRead(N.Ins[C],
                  static_cast<size_t>(K) * static_cast<size_t>(N.Weights[C]));
    return;
  }
  case NodeKind::Filter:
    break;
  }
  unreachable("not a splitter/joiner node");
}

void CompiledExecutor::runProgram(const FiringProgram &Prog) {
  for (const FiringStep &Step : Prog) {
    size_t I = static_cast<size_t>(Step.Node);
    if (Graph.Nodes[I].Kind == NodeKind::Filter)
      fireFilterStep(I, Step.Count);
    else
      fireSplitJoinStep(I, Step.Count);
  }
}

//===----------------------------------------------------------------------===//
// Driving
//===----------------------------------------------------------------------===//

void CompiledExecutor::provideInput(const std::vector<double> &Items) {
  ExtIn.insert(ExtIn.end(), Items.begin(), Items.end());
}

size_t CompiledExecutor::outputsProduced() const {
  if (Graph.RootProducesOutput)
    return ExtOut.size();
  return Printed.size();
}

namespace {

/// Deadline poll shared by the try* run loops, at firing-program
/// granularity (a batch is microseconds; the check is a clock read).
/// The exec-hang fault point simulates a wedged run: it parks the
/// thread until the deadline trips — never indefinitely, so an unarmed
/// or deadline-less test cannot wedge itself.
Status checkDeadline(const faults::RunDeadline *DL) {
  if (faults::shouldFail(faults::Point::ExecHang) && DL) {
    while (!DL->expired())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!DL)
    return Status::ok();
  if (DL->cancelled())
    return Status(ErrorCode::Cancelled, "run cancelled");
  if (DL->timedOut())
    return Status(ErrorCode::Timeout, "run deadline expired");
  return Status::ok();
}

} // namespace

Status CompiledExecutor::tryRunIterations(int64_t Iters,
                                          const faults::RunDeadline *DL) {
  if (!InitDone) {
    if (extInAvailable() < static_cast<size_t>(Sched.InitExternalNeed))
      return Status(ErrorCode::Deadlock,
                    "stream graph deadlocked: initialization needs " +
                        std::to_string(Sched.InitExternalNeed) +
                        " external input items, have " +
                        std::to_string(extInAvailable()));
    runProgram(Sched.InitProgram);
    compact();
    InitDone = true;
  }
  while (Iters > 0) {
    if (Status St = checkDeadline(DL); !St.isOk())
      return St;
    if (Iters >= Sched.BatchIterations &&
        extInAvailable() >= static_cast<size_t>(Sched.BatchExternalNeed)) {
      runProgram(Sched.BatchProgram);
      Iters -= Sched.BatchIterations;
    } else if (extInAvailable() >=
               static_cast<size_t>(Sched.SteadyExternalNeed)) {
      runProgram(Sched.SteadyProgram);
      --Iters;
    } else {
      return Status(
          ErrorCode::Deadlock,
          "stream graph deadlocked: a steady-state iteration needs " +
              std::to_string(Sched.SteadyExternalNeed) +
              " external input items, have " +
              std::to_string(extInAvailable()) + " (" +
              std::to_string(Iters) + " iterations remaining)");
    }
    compact();
  }
  return Status::ok();
}

void CompiledExecutor::runIterations(int64_t Iters) {
  if (Status St = tryRunIterations(Iters); !St.isOk())
    fatalError(St.message());
}

Status CompiledExecutor::trySeedSteadyState(int64_t StartIteration) {
  const CompiledProgram::ShardInfo &SI = Prog->shardInfo();
  // The asserts of seedSteadyState, checked: a worker thread must hand
  // a seeding anomaly back to the parallel backend (which owns the
  // sequential fallback), not abort the process.
  if (!SI.Shardable)
    return Status(ErrorCode::ShardAnomaly,
                  "seeding requires a shardable program (" + SI.Reason +
                      ")");
  if (InitDone || Firings != 0)
    return Status(ErrorCode::ShardAnomaly, "seed only a fresh executor");
  for (const CompiledProgram::ShardInfo::FieldSeed &Seed : SI.Seeds) {
    if (Seed.Node < 0 ||
        static_cast<size_t>(Seed.Node) >= States.size() ||
        Graph.Nodes[static_cast<size_t>(Seed.Node)].Kind !=
            flat::NodeKind::Filter ||
        Seed.Field < 0 ||
        static_cast<size_t>(Seed.Field) >=
            States[static_cast<size_t>(Seed.Node)].Fields.Values.size())
      return Status(ErrorCode::ShardAnomaly,
                    "shard seed recipe references node " +
                        std::to_string(Seed.Node) + " field " +
                        std::to_string(Seed.Field) +
                        " outside the program");
  }
  if (faults::shouldFail(faults::Point::ShardSeedCorrupt))
    return Status(ErrorCode::ShardAnomaly,
                  "injected shard-seed corruption");
  seedSteadyState(StartIteration);
  return Status::ok();
}

void CompiledExecutor::seedSteadyState(int64_t StartIteration) {
  const CompiledProgram::ShardInfo &SI = Prog->shardInfo();
  assert(SI.Shardable && "seeding requires a shardable program");
  assert(!InitDone && Firings == 0 && "seed only a fresh executor");

  for (size_t C = 0; C != Channels.size(); ++C) {
    if (static_cast<int>(C) == Graph.ExternalIn ||
        static_cast<int>(C) == Graph.ExternalOut)
      continue;
    ChannelBuf &B = Channels[C];
    std::fill(B.Buf.begin(), B.Buf.end(), 0.0);
    B.Head = 0;
    B.Tail = static_cast<size_t>(Sched.PostInitLive[C]);
  }

  // Every filter has logically fired (init work happened long before any
  // shard boundary); its closed-form state is a function of its global
  // firing count alone.
  for (size_t I = 0; I != States.size(); ++I)
    if (Graph.Nodes[I].Kind == flat::NodeKind::Filter)
      States[I].FiredOnce = true;
  for (const CompiledProgram::ShardInfo::FieldSeed &Seed : SI.Seeds) {
    int64_t T = Sched.InitFirings[static_cast<size_t>(Seed.Node)] +
                StartIteration *
                    Sched.Repetitions[static_cast<size_t>(Seed.Node)];
    double V = Seed.Base;
    if (T > 0 && Seed.Modulus > 0) {
      // All components are non-negative integers (enforced by
      // computeShardInfo), so exact int64 modular arithmetic reproduces
      // the per-firing fmod reduction's representative for any T.
      int64_t M = static_cast<int64_t>(Seed.Modulus);
      int64_t Acc = (static_cast<int64_t>(Seed.Base) +
                     static_cast<int64_t>(Seed.DeltaFirst)) %
                    M;
      int64_t Step = static_cast<int64_t>(Seed.DeltaRest) % M;
      Acc = (Acc + ((T - 1) % M) * Step) % M;
      V = static_cast<double>(Acc);
    } else if (T > 0) {
      V = Seed.Base + Seed.DeltaFirst +
          static_cast<double>(T - 1) * Seed.DeltaRest;
    }
    States[static_cast<size_t>(Seed.Node)]
        .Fields.Values[static_cast<size_t>(Seed.Field)][0] = V;
  }
  InitDone = true;
}

Status CompiledExecutor::tryRun(size_t NOutputs,
                                const faults::RunDeadline *DL) {
  if (outputsProduced() >= NOutputs)
    return Status::ok();
  if (!InitDone) {
    if (extInAvailable() < static_cast<size_t>(Sched.InitExternalNeed))
      return Status(ErrorCode::Deadlock,
                    "stream graph deadlocked: initialization needs " +
                        std::to_string(Sched.InitExternalNeed) +
                        " external input items, have " +
                        std::to_string(extInAvailable()));
    runProgram(Sched.InitProgram);
    compact();
    InitDone = true;
  }
  while (outputsProduced() < NOutputs) {
    if (Status St = checkDeadline(DL); !St.isOk())
      return St;
    size_t Before = outputsProduced();
    if (extInAvailable() >= static_cast<size_t>(Sched.BatchExternalNeed))
      runProgram(Sched.BatchProgram);
    else if (extInAvailable() >=
             static_cast<size_t>(Sched.SteadyExternalNeed))
      runProgram(Sched.SteadyProgram);
    else
      return Status(
          ErrorCode::Deadlock,
          "stream graph deadlocked: a steady-state iteration needs " +
              std::to_string(Sched.SteadyExternalNeed) +
              " external input items, have " +
              std::to_string(extInAvailable()) + " (needed " +
              std::to_string(NOutputs) + " outputs, have " +
              std::to_string(outputsProduced()) + ")");
    compact();
    if (outputsProduced() == Before)
      return Status(ErrorCode::Deadlock,
                    "stream graph deadlocked: steady state produces no "
                    "observable output");
  }
  return Status::ok();
}

void CompiledExecutor::run(size_t NOutputs) {
  if (Status St = tryRun(NOutputs); !St.isOk())
    fatalError(St.message());
}

Status CompiledExecutor::tryRunLatency(size_t NOutputs,
                                       const faults::RunDeadline *DL,
                                       double *FirstOutputSeconds) {
  const auto Start = std::chrono::steady_clock::now();
  const size_t Initial = outputsProduced();
  bool FirstSeen = false;
  auto NoteFirstOutput = [&] {
    if (FirstSeen || outputsProduced() <= Initial)
      return;
    FirstSeen = true;
    if (FirstOutputSeconds)
      *FirstOutputSeconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        Start)
              .count();
  };
  if (outputsProduced() >= NOutputs)
    return Status::ok();
  if (!InitDone) {
    if (extInAvailable() < static_cast<size_t>(Sched.InitExternalNeed))
      return Status(ErrorCode::Deadlock,
                    "stream graph deadlocked: initialization needs " +
                        std::to_string(Sched.InitExternalNeed) +
                        " external input items, have " +
                        std::to_string(extInAvailable()));
    runProgram(Sched.InitProgram);
    compact();
    InitDone = true;
    NoteFirstOutput();
  }
  while (outputsProduced() < NOutputs) {
    if (Status St = checkDeadline(DL); !St.isOk())
      return St;
    size_t Before = outputsProduced();
    if (extInAvailable() < static_cast<size_t>(Sched.SteadyExternalNeed))
      return Status(
          ErrorCode::Deadlock,
          "stream graph deadlocked: a steady-state iteration needs " +
              std::to_string(Sched.SteadyExternalNeed) +
              " external input items, have " +
              std::to_string(extInAvailable()) + " (needed " +
              std::to_string(NOutputs) + " outputs, have " +
              std::to_string(outputsProduced()) + ")");
    runProgram(Sched.SteadyProgram);
    compact();
    if (outputsProduced() == Before)
      return Status(ErrorCode::Deadlock,
                    "stream graph deadlocked: steady state produces no "
                    "observable output");
    NoteFirstOutput();
  }
  return Status::ok();
}
