//===- exec/Executor.cpp - Dynamic stream-graph executor --------------------==//
#include <algorithm>

#include "exec/Executor.h"

#include "support/Diag.h"

using namespace slin;
using namespace slin::flat;

Executor::~Executor() = default;

//===----------------------------------------------------------------------===//
// Tape adapter
//===----------------------------------------------------------------------===//

/// Adapts a node's input/output channels to the Tape interface seen by a
/// firing filter.
class Executor::NodeTape : public wir::Tape {
public:
  NodeTape(Executor &E, int InChan, int OutChan) : E(E) {
    In = InChan >= 0 ? &E.Channels[static_cast<size_t>(InChan)].Q : nullptr;
    Out = OutChan >= 0 ? &E.Channels[static_cast<size_t>(OutChan)].Q : nullptr;
  }

  double peek(int Index) override {
    assert(In && "peek on a source filter");
    assert(Index >= 0 && static_cast<size_t>(Index) < In->size() &&
           "peek beyond available input (scheduler bug)");
    return (*In)[static_cast<size_t>(Index)];
  }

  double pop() override {
    assert(In && !In->empty() && "pop beyond available input");
    double V = In->front();
    In->pop_front();
    return V;
  }

  void push(double Value) override {
    assert(Out && "push on a filter without an output channel");
    Out->push_back(Value);
  }

  void print(double Value) override { E.Printed.push_back(Value); }

private:
  Executor &E;
  std::deque<double> *In;
  std::deque<double> *Out;
};

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

Executor::Executor(const Stream &Root, Options Opts)
    : Opts(Opts), Graph(Root) {
  Channels.resize(Graph.numChannels());
  for (size_t C = 0; C != Channels.size(); ++C)
    for (double V : Graph.InitialItems[C])
      Channels[C].Q.push_back(V);
  States.resize(Graph.Nodes.size());
  for (size_t I = 0; I != Graph.Nodes.size(); ++I) {
    const Node &N = Graph.Nodes[I];
    if (N.Kind != NodeKind::Filter)
      continue;
    if (N.F->isNative())
      States[I].Native = N.F->native().clone();
    else
      States[I].Fields = wir::FieldStore(N.F->fields());
  }
  computeChannelCaps();
}

void Executor::computeChannelCaps() {
  for (Channel &C : Channels)
    C.Cap = Opts.ChannelCap;
  auto Require = [&](int Chan, size_t Need) {
    if (Chan < 0)
      return;
    Channel &C = Channels[static_cast<size_t>(Chan)];
    size_t Cap = std::max(Opts.MinChannelCap, 2 * Need);
    C.Cap = std::min(C.Cap, std::max(Cap, C.Q.size()));
  };
  for (const Node &N : Graph.Nodes) {
    switch (N.Kind) {
    case NodeKind::Filter: {
      int Need = std::max(std::max(N.F->peekRate(), N.F->initPeekRate()), 1);
      Require(N.In, static_cast<size_t>(Need));
      break;
    }
    case NodeKind::DupSplit:
      Require(N.In, 1);
      break;
    case NodeKind::RRSplit:
      Require(N.In, static_cast<size_t>(N.totalWeight()));
      break;
    case NodeKind::RRJoin:
      for (size_t K = 0; K != N.Ins.size(); ++K)
        Require(N.Ins[K], static_cast<size_t>(N.Weights[K]));
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Firing
//===----------------------------------------------------------------------===//

size_t Executor::inputAvailable(const Node &N) const {
  if (N.In < 0)
    return 0;
  return Channels[static_cast<size_t>(N.In)].Q.size();
}

bool Executor::canFire(size_t I) const {
  const Node &N = Graph.Nodes[I];
  auto OutHasRoom = [&](int Chan) {
    if (Chan < 0)
      return true;
    const Channel &C = Channels[static_cast<size_t>(Chan)];
    return C.Q.size() <= C.Cap;
  };
  switch (N.Kind) {
  case NodeKind::Filter: {
    bool Init = !States[I].FiredOnce && N.F->hasInitWork();
    size_t Need = static_cast<size_t>(
        Init ? N.F->initPeekRate() : N.F->peekRate());
    if (N.In >= 0 && inputAvailable(N) < Need)
      return false;
    if (N.In < 0 && Need > 0)
      return false;
    return OutHasRoom(N.Out);
  }
  case NodeKind::DupSplit: {
    if (inputAvailable(N) < 1)
      return false;
    for (int C : N.Outs)
      if (!OutHasRoom(C))
        return false;
    return true;
  }
  case NodeKind::RRSplit: {
    if (inputAvailable(N) < static_cast<size_t>(N.totalWeight()))
      return false;
    for (int C : N.Outs)
      if (!OutHasRoom(C))
        return false;
    return true;
  }
  case NodeKind::RRJoin: {
    for (size_t K = 0; K != N.Ins.size(); ++K)
      if (Channels[static_cast<size_t>(N.Ins[K])].Q.size() <
          static_cast<size_t>(N.Weights[K]))
        return false;
    return OutHasRoom(N.Out);
  }
  }
  unreachable("unknown node kind");
}

void Executor::fire(size_t I) {
  ++Firings;
  const Node &N = Graph.Nodes[I];
  switch (N.Kind) {
  case NodeKind::Filter: {
    NodeTape T(*this, N.In, N.Out);
    NodeState &S = States[I];
    bool Init = !S.FiredOnce && N.F->hasInitWork();
    S.FiredOnce = true;
    if (S.Native) {
      if (Init)
        S.Native->fireInit(T);
      else
        S.Native->fire(T);
      return;
    }
    const wir::WorkFunction &W = Init ? *N.F->initWork() : N.F->work();
    wir::interpret(W, N.F->fields(), S.Fields, T);
    return;
  }
  case NodeKind::DupSplit: {
    auto &In = Channels[static_cast<size_t>(N.In)].Q;
    double V = In.front();
    In.pop_front();
    for (int C : N.Outs)
      Channels[static_cast<size_t>(C)].Q.push_back(V);
    return;
  }
  case NodeKind::RRSplit: {
    auto &In = Channels[static_cast<size_t>(N.In)].Q;
    for (size_t K = 0; K != N.Outs.size(); ++K) {
      auto &Out = Channels[static_cast<size_t>(N.Outs[K])].Q;
      for (int J = 0; J != N.Weights[K]; ++J) {
        Out.push_back(In.front());
        In.pop_front();
      }
    }
    return;
  }
  case NodeKind::RRJoin: {
    auto &Out = Channels[static_cast<size_t>(N.Out)].Q;
    for (size_t K = 0; K != N.Ins.size(); ++K) {
      auto &In = Channels[static_cast<size_t>(N.Ins[K])].Q;
      for (int J = 0; J != N.Weights[K]; ++J) {
        Out.push_back(In.front());
        In.pop_front();
      }
    }
    return;
  }
  }
  unreachable("unknown node kind");
}

//===----------------------------------------------------------------------===//
// Driving
//===----------------------------------------------------------------------===//

void Executor::provideInput(const std::vector<double> &Items) {
  auto &Q = Channels[static_cast<size_t>(Graph.ExternalIn)].Q;
  for (double V : Items)
    Q.push_back(V);
}

size_t Executor::outputsProduced() const {
  if (Graph.RootProducesOutput)
    return Channels[static_cast<size_t>(Graph.ExternalOut)].Q.size();
  return Printed.size();
}

std::vector<double> Executor::outputSnapshot() const {
  const auto &Q = Channels[static_cast<size_t>(Graph.ExternalOut)].Q;
  return std::vector<double>(Q.begin(), Q.end());
}

void Executor::run(size_t NOutputs) {
  while (outputsProduced() < NOutputs) {
    bool AnyFired = false;
    for (size_t I = 0; I != Graph.Nodes.size(); ++I) {
      size_t Batch = 0;
      while (Batch < Opts.BatchLimit && canFire(I)) {
        fire(I);
        AnyFired = true;
        ++Batch;
      }
    }
    if (!AnyFired)
      fatalError("stream graph deadlocked: no node can fire (needed " +
                 std::to_string(NOutputs) + " outputs, have " +
                 std::to_string(outputsProduced()) + ")");
  }
}
