//===- exec/Executor.cpp - Stream-graph executor ----------------------------==//
#include <algorithm>

#include "exec/Executor.h"

#include "sched/Rates.h"
#include "support/Diag.h"

using namespace slin;

Executor::~Executor() = default;

//===----------------------------------------------------------------------===//
// Tape adapter
//===----------------------------------------------------------------------===//

/// Adapts a node's input/output channels to the Tape interface seen by a
/// firing filter.
class Executor::NodeTape : public wir::Tape {
public:
  NodeTape(Executor &E, int InChan, int OutChan) : E(E) {
    In = InChan >= 0 ? &E.Channels[static_cast<size_t>(InChan)].Q : nullptr;
    Out = OutChan >= 0 ? &E.Channels[static_cast<size_t>(OutChan)].Q : nullptr;
  }

  double peek(int Index) override {
    assert(In && "peek on a source filter");
    assert(Index >= 0 && static_cast<size_t>(Index) < In->size() &&
           "peek beyond available input (scheduler bug)");
    return (*In)[static_cast<size_t>(Index)];
  }

  double pop() override {
    assert(In && !In->empty() && "pop beyond available input");
    double V = In->front();
    In->pop_front();
    return V;
  }

  void push(double Value) override {
    assert(Out && "push on a filter without an output channel");
    Out->push_back(Value);
  }

  void print(double Value) override { E.Printed.push_back(Value); }

private:
  Executor &E;
  std::deque<double> *In;
  std::deque<double> *Out;
};

//===----------------------------------------------------------------------===//
// Flattening
//===----------------------------------------------------------------------===//

Executor::Executor(const Stream &Root, Options Opts) : Opts(Opts) {
  ExternalIn = makeChannel();
  ExternalOut = makeChannel();
  flatten(Root, ExternalIn, ExternalOut);
  RootProducesOutput = computeRates(Root).Push > 0;
  computeChannelCaps();
}

void Executor::computeChannelCaps() {
  for (Channel &C : Channels)
    C.Cap = Opts.ChannelCap;
  auto Require = [&](int Chan, size_t Need) {
    if (Chan < 0)
      return;
    Channel &C = Channels[static_cast<size_t>(Chan)];
    size_t Cap = std::max(Opts.MinChannelCap, 2 * Need);
    C.Cap = std::min(C.Cap, std::max(Cap, C.Q.size()));
  };
  for (const Node &N : Nodes) {
    switch (N.Kind) {
    case NodeKind::Filter: {
      int Need = std::max(std::max(N.F->peekRate(), N.F->initPeekRate()), 1);
      Require(N.In, static_cast<size_t>(Need));
      break;
    }
    case NodeKind::DupSplit:
      Require(N.In, 1);
      break;
    case NodeKind::RRSplit: {
      size_t Total = 0;
      for (int W : N.Weights)
        Total += static_cast<size_t>(W);
      Require(N.In, Total);
      break;
    }
    case NodeKind::RRJoin:
      for (size_t K = 0; K != N.Ins.size(); ++K)
        Require(N.Ins[K], static_cast<size_t>(N.Weights[K]));
      break;
    }
  }
}

int Executor::makeChannel() {
  Channels.emplace_back();
  return static_cast<int>(Channels.size() - 1);
}

void Executor::flatten(const Stream &S, int InChan, int OutChan) {
  switch (S.kind()) {
  case StreamKind::Filter: {
    const auto *F = cast<Filter>(&S);
    Node N;
    N.Kind = NodeKind::Filter;
    N.Name = F->name();
    N.F = F;
    if (F->isNative())
      N.Native = F->native().clone();
    else
      N.State = wir::FieldStore(F->fields());
    N.In = F->peekRate() == 0 && F->popRate() == 0 && F->initPeekRate() == 0 &&
                   F->initPopRate() == 0
               ? -1
               : InChan;
    N.Out = OutChan;
    Nodes.push_back(std::move(N));
    return;
  }
  case StreamKind::Pipeline: {
    const auto *P = cast<Pipeline>(&S);
    const auto &Children = P->children();
    assert(!Children.empty() && "empty pipeline");
    int Cur = InChan;
    for (size_t I = 0; I != Children.size(); ++I) {
      int Next = I + 1 == Children.size() ? OutChan : makeChannel();
      flatten(*Children[I], Cur, Next);
      Cur = Next;
    }
    return;
  }
  case StreamKind::SplitJoin: {
    const auto *SJ = cast<SplitJoin>(&S);
    const auto &Children = SJ->children();
    assert(!Children.empty() && "empty splitjoin");

    Node Split;
    Split.Kind = SJ->splitter().Kind == Splitter::Duplicate
                     ? NodeKind::DupSplit
                     : NodeKind::RRSplit;
    Split.Name = SJ->name() + ".split";
    Split.In = InChan;
    Split.Weights = SJ->splitter().Weights;

    Node Join;
    Join.Kind = NodeKind::RRJoin;
    Join.Name = SJ->name() + ".join";
    Join.Out = OutChan;
    Join.Weights = SJ->joiner().Weights;

    std::vector<std::pair<int, int>> ChildChans;
    for (size_t K = 0; K != Children.size(); ++K) {
      int CIn = makeChannel();
      int COut = makeChannel();
      Split.Outs.push_back(CIn);
      Join.Ins.push_back(COut);
      ChildChans.push_back({CIn, COut});
    }
    // A "null" roundrobin splitter (all weights zero; e.g. Radar's bank of
    // source channels) moves no data: omit the node entirely.
    bool NullSplit = Split.Kind == NodeKind::RRSplit &&
                     SJ->splitter().totalWeight() == 0;
    if (!NullSplit)
      Nodes.push_back(std::move(Split));
    for (size_t K = 0; K != Children.size(); ++K)
      flatten(*Children[K], ChildChans[K].first, ChildChans[K].second);
    Nodes.push_back(std::move(Join));
    return;
  }
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    int BodyIn = makeChannel();
    int BodyOut = makeChannel();
    int LoopIn = makeChannel();
    int LoopOut = makeChannel();

    Node Join;
    Join.Kind = NodeKind::RRJoin;
    Join.Name = FB->name() + ".join";
    Join.Ins = {InChan, LoopOut};
    Join.Weights = FB->joiner().Weights;
    Join.Out = BodyIn;
    Nodes.push_back(std::move(Join));

    flatten(FB->body(), BodyIn, BodyOut);

    Node Split;
    Split.Kind = FB->splitter().Kind == Splitter::Duplicate
                     ? NodeKind::DupSplit
                     : NodeKind::RRSplit;
    Split.Name = FB->name() + ".split";
    Split.In = BodyOut;
    Split.Outs = {OutChan, LoopIn};
    Split.Weights = FB->splitter().Weights;
    Nodes.push_back(std::move(Split));

    flatten(FB->loop(), LoopIn, LoopOut);

    // Pre-fill the feedback channel so the joiner can start.
    for (double V : FB->enqueued())
      Channels[static_cast<size_t>(LoopOut)].Q.push_back(V);
    return;
  }
  }
  unreachable("unknown stream kind");
}

//===----------------------------------------------------------------------===//
// Firing
//===----------------------------------------------------------------------===//

size_t Executor::inputAvailable(const Node &N) const {
  if (N.In < 0)
    return 0;
  return Channels[static_cast<size_t>(N.In)].Q.size();
}

bool Executor::canFire(const Node &N) const {
  auto OutHasRoom = [&](int Chan) {
    if (Chan < 0)
      return true;
    const Channel &C = Channels[static_cast<size_t>(Chan)];
    return C.Q.size() <= C.Cap;
  };
  switch (N.Kind) {
  case NodeKind::Filter: {
    size_t Need;
    if (!N.FiredOnce && N.F->hasInitWork())
      Need = static_cast<size_t>(N.F->initPeekRate());
    else
      Need = static_cast<size_t>(N.F->peekRate());
    if (N.In >= 0 && inputAvailable(N) < Need)
      return false;
    if (N.In < 0 && Need > 0)
      return false;
    return OutHasRoom(N.Out);
  }
  case NodeKind::DupSplit: {
    if (inputAvailable(N) < 1)
      return false;
    for (int C : N.Outs)
      if (!OutHasRoom(C))
        return false;
    return true;
  }
  case NodeKind::RRSplit: {
    size_t Need = 0;
    for (int W : N.Weights)
      Need += static_cast<size_t>(W);
    if (inputAvailable(N) < Need)
      return false;
    for (int C : N.Outs)
      if (!OutHasRoom(C))
        return false;
    return true;
  }
  case NodeKind::RRJoin: {
    for (size_t K = 0; K != N.Ins.size(); ++K)
      if (Channels[static_cast<size_t>(N.Ins[K])].Q.size() <
          static_cast<size_t>(N.Weights[K]))
        return false;
    return OutHasRoom(N.Out);
  }
  }
  unreachable("unknown node kind");
}

void Executor::fire(Node &N) {
  ++Firings;
  switch (N.Kind) {
  case NodeKind::Filter: {
    NodeTape T(*this, N.In, N.Out);
    bool Init = !N.FiredOnce && N.F->hasInitWork();
    N.FiredOnce = true;
    if (N.Native) {
      if (Init)
        N.Native->fireInit(T);
      else
        N.Native->fire(T);
      return;
    }
    const wir::WorkFunction &W =
        Init ? *N.F->initWork() : N.F->work();
    wir::interpret(W, N.F->fields(), N.State, T);
    return;
  }
  case NodeKind::DupSplit: {
    auto &In = Channels[static_cast<size_t>(N.In)].Q;
    double V = In.front();
    In.pop_front();
    for (int C : N.Outs)
      Channels[static_cast<size_t>(C)].Q.push_back(V);
    return;
  }
  case NodeKind::RRSplit: {
    auto &In = Channels[static_cast<size_t>(N.In)].Q;
    for (size_t K = 0; K != N.Outs.size(); ++K) {
      auto &Out = Channels[static_cast<size_t>(N.Outs[K])].Q;
      for (int I = 0; I != N.Weights[K]; ++I) {
        Out.push_back(In.front());
        In.pop_front();
      }
    }
    return;
  }
  case NodeKind::RRJoin: {
    auto &Out = Channels[static_cast<size_t>(N.Out)].Q;
    for (size_t K = 0; K != N.Ins.size(); ++K) {
      auto &In = Channels[static_cast<size_t>(N.Ins[K])].Q;
      for (int I = 0; I != N.Weights[K]; ++I) {
        Out.push_back(In.front());
        In.pop_front();
      }
    }
    return;
  }
  }
  unreachable("unknown node kind");
}

//===----------------------------------------------------------------------===//
// Driving
//===----------------------------------------------------------------------===//

void Executor::provideInput(const std::vector<double> &Items) {
  auto &Q = Channels[static_cast<size_t>(ExternalIn)].Q;
  for (double V : Items)
    Q.push_back(V);
}

size_t Executor::outputsProduced() const {
  if (RootProducesOutput)
    return Channels[static_cast<size_t>(ExternalOut)].Q.size();
  return Printed.size();
}

std::vector<double> Executor::outputSnapshot() const {
  const auto &Q = Channels[static_cast<size_t>(ExternalOut)].Q;
  return std::vector<double>(Q.begin(), Q.end());
}

void Executor::run(size_t NOutputs) {
  while (outputsProduced() < NOutputs) {
    bool AnyFired = false;
    for (Node &N : Nodes) {
      size_t Batch = 0;
      while (Batch < Opts.BatchLimit && canFire(N)) {
        fire(N);
        AnyFired = true;
        ++Batch;
      }
    }
    if (!AnyFired)
      fatalError("stream graph deadlocked: no node can fire (needed " +
                 std::to_string(NOutputs) + " outputs, have " +
                 std::to_string(outputsProduced()) + ")");
  }
}
