//===- exec/FlatGraph.h - Flattened stream graph ---------------*- C++ -*-===//
///
/// \file
/// The hierarchical stream graph flattened into the form both execution
/// engines consume: filter nodes, splitter/joiner nodes and indexed FIFO
/// channels. The dynamic `Executor` runs this with deque channels and a
/// readiness sweep; the `CompiledExecutor` derives a static firing program
/// (sched/Schedule.h) over the same topology and runs it against flat ring
/// buffers.
///
/// FlatGraph holds only topology and per-firing rate signatures — engine
/// state (field stores, native filter instances, channel storage) stays
/// with each engine.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_EXEC_FLATGRAPH_H
#define SLIN_EXEC_FLATGRAPH_H

#include "graph/Stream.h"

#include <string>
#include <vector>

namespace slin {
namespace flat {

enum class NodeKind { Filter, DupSplit, RRSplit, RRJoin };

/// One flattened node. Filters use In/Out; splitters use In/Outs(+Weights);
/// joiners use Ins(+Weights)/Out. -1 means "none".
struct Node {
  NodeKind Kind;
  std::string Name;
  const Filter *F = nullptr; ///< Filter nodes only
  int In = -1;
  int Out = -1;
  std::vector<int> Ins;
  std::vector<int> Outs;
  std::vector<int> Weights;

  /// Total roundrobin weight (splitter items per firing / joiner output).
  int totalWeight() const {
    int T = 0;
    for (int W : Weights)
      T += W;
    return T;
  }

  /// Items that must be present on \p Chan for one firing to start.
  /// For filters this is the peek requirement (>= pop); for splitters and
  /// joiners it equals the pop amount. \p InitFiring selects a filter's
  /// init-work rates for its first firing.
  int peekNeedOn(int Chan, bool InitFiring) const;

  /// Items consumed from \p Chan by one firing.
  int popsFrom(int Chan, bool InitFiring) const;

  /// Items produced onto \p Chan by one firing.
  int pushesTo(int Chan, bool InitFiring) const;

  /// All input channels of the node (>= 0 only).
  std::vector<int> inputChannels() const;
  /// All output channels of the node (>= 0 only).
  std::vector<int> outputChannels() const;
};

/// The flattened graph: nodes in flattening order (producers of a pipeline
/// precede consumers), channels by index, plus the external endpoints.
struct FlatGraph {
  explicit FlatGraph(const Stream &Root);

  /// Empty graph, filled in by artifact deserialization
  /// (compiler/ArtifactStore.cpp) rather than by flattening.
  FlatGraph() = default;

  std::vector<Node> Nodes;
  /// Items pre-loaded on each channel (feedback-loop enqueued values).
  std::vector<std::vector<double>> InitialItems;
  int ExternalIn = -1;
  int ExternalOut = -1;
  bool RootProducesOutput = false;

  size_t numChannels() const { return InitialItems.size(); }

private:
  int makeChannel();
  void flatten(const Stream &S, int InChan, int OutChan);
};

} // namespace flat
} // namespace slin

#endif // SLIN_EXEC_FLATGRAPH_H
