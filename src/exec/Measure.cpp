//===- exec/Measure.cpp - Steady-state measurement ---------------------------==//

#include "exec/Measure.h"

#include "compiler/Program.h"
#include "exec/CompiledExecutor.h"
#include "exec/Parallel.h"

#include <chrono>

using namespace slin;

namespace {

/// The measurement protocol over either engine: both expose the same
/// run/outputsProduced surface.
template <class ExecT, class MakeExec>
Measurement measureWith(const MeasureOptions &Opts, MakeExec Make) {
  Measurement M;

  // Counting run: warm up, snapshot, run the measured window, diff. The
  // schedulers may overshoot a requested output count, so both the op
  // delta and the output delta are taken from actual progress.
  {
    ExecT E = Make();
    ops::CountingScope Scope;
    ops::reset();
    E.run(Opts.WarmupOutputs);
    OpCounts OpsBefore = ops::counts();
    size_t OutBefore = E.outputsProduced();
    E.run(OutBefore + Opts.MeasureOutputs);
    M.Ops = ops::counts() - OpsBefore;
    M.Outputs = E.outputsProduced() - OutBefore;
  }

  // Timing run: identical schedule, counting disabled.
  if (Opts.MeasureTime) {
    ExecT E = Make();
    ops::CountingScope Scope(false);
    E.run(Opts.WarmupOutputs);
    size_t OutBefore = E.outputsProduced();
    auto Start = std::chrono::steady_clock::now();
    E.run(OutBefore + Opts.MeasureOutputs);
    auto End = std::chrono::steady_clock::now();
    double Secs = std::chrono::duration<double>(End - Start).count();
    size_t Outs = E.outputsProduced() - OutBefore;
    // Rescale to the counting run's window size.
    M.Seconds = Outs ? Secs * static_cast<double>(M.Outputs) /
                           static_cast<double>(Outs)
                     : 0.0;
  }
  return M;
}

} // namespace

Measurement slin::measureSteadyState(const Stream &Root,
                                     const MeasureOptions &Opts) {
  if (usesCompiledArtifact(Opts.Exec.Eng)) {
    CompiledProgramRef P =
        Opts.Program ? Opts.Program
                     : ProgramCache::global().get(Root, Opts.Exec.Compiled);
    if (Opts.Exec.Eng == Engine::Parallel)
      // Worker-thread op counts fold back into this thread's counters
      // (ops::accumulate), so the protocol below reads them as usual.
      return measureWith<ParallelExecutor>(Opts, [&] {
        return ParallelExecutor(P, Opts.Exec.Compiled.Parallel);
      });
    if (Opts.Exec.Eng == Engine::Native) {
      // The module attaches to both runs; counting-gated dispatch keeps
      // the counting run on the op tapes (real FLOPs) while the timing
      // run executes emitted code. Null (degraded) is the Compiled path.
      codegen::NativeModuleRef M = codegen::NativeModuleCache::global().get(*P);
      return measureWith<CompiledExecutor>(
          Opts, [&] { return CompiledExecutor(P, M); });
    }
    return measureWith<CompiledExecutor>(
        Opts, [&] { return CompiledExecutor(P, nullptr); });
  }
  return measureWith<Executor>(
      Opts, [&] { return Executor(Root, Opts.Exec.Dynamic); });
}

std::vector<double> slin::collectOutputs(const Stream &Root, size_t NOutputs,
                                         Engine Eng) {
  auto Finish = [&](const std::vector<double> &Printed,
                    std::vector<double> Snapshot) {
    std::vector<double> Out = Printed.empty() ? std::move(Snapshot) : Printed;
    if (Out.size() > NOutputs)
      Out.resize(NOutputs);
    return Out;
  };
  if (Eng == Engine::Parallel) {
    ParallelExecutor E(ProgramCache::global().get(Root, CompiledOptions()));
    E.run(NOutputs);
    return Finish(E.printed(), E.outputSnapshot());
  }
  if (Eng == Engine::Compiled) {
    CompiledExecutor E(ProgramCache::global().get(Root, CompiledOptions()));
    E.run(NOutputs);
    return Finish(E.printed(), E.outputSnapshot());
  }
  if (Eng == Engine::Native) {
    CompiledProgramRef P = ProgramCache::global().get(Root, CompiledOptions());
    CompiledExecutor E(P, codegen::NativeModuleCache::global().get(*P));
    E.run(NOutputs);
    return Finish(E.printed(), E.outputSnapshot());
  }
  Executor E(Root);
  E.run(NOutputs);
  return Finish(E.printed(), E.outputSnapshot());
}
