//===- exec/Measure.cpp - Steady-state measurement ---------------------------==//

#include "exec/Measure.h"

#include <chrono>

using namespace slin;

Measurement slin::measureSteadyState(const Stream &Root,
                                     const MeasureOptions &Opts) {
  Measurement M;

  // Counting run: warm up, snapshot, run the measured window, diff. The
  // greedy scheduler may overshoot a requested output count, so both the
  // op delta and the output delta are taken from actual progress.
  {
    Executor E(Root, Opts.Exec);
    ops::CountingScope Scope;
    ops::reset();
    E.run(Opts.WarmupOutputs);
    OpCounts OpsBefore = ops::counts();
    size_t OutBefore = E.outputsProduced();
    E.run(OutBefore + Opts.MeasureOutputs);
    M.Ops = ops::counts() - OpsBefore;
    M.Outputs = E.outputsProduced() - OutBefore;
  }

  // Timing run: identical schedule, counting disabled.
  if (Opts.MeasureTime) {
    Executor E(Root, Opts.Exec);
    ops::CountingScope Scope(false);
    E.run(Opts.WarmupOutputs);
    size_t OutBefore = E.outputsProduced();
    auto Start = std::chrono::steady_clock::now();
    E.run(OutBefore + Opts.MeasureOutputs);
    auto End = std::chrono::steady_clock::now();
    double Secs = std::chrono::duration<double>(End - Start).count();
    size_t Outs = E.outputsProduced() - OutBefore;
    // Rescale to the counting run's window size.
    M.Seconds = Outs ? Secs * static_cast<double>(M.Outputs) /
                           static_cast<double>(Outs)
                     : 0.0;
  }
  return M;
}

std::vector<double> slin::collectOutputs(const Stream &Root,
                                         size_t NOutputs) {
  Executor E(Root);
  E.run(NOutputs);
  std::vector<double> Out =
      E.printed().empty() ? E.outputSnapshot() : E.printed();
  if (Out.size() > NOutputs)
    Out.resize(NOutputs);
  return Out;
}
