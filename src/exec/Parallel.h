//===- exec/Parallel.h - Parallel sharded execution backend -----*- C++ -*-===//
///
/// \file
/// The multi-threaded execution layer over immutable CompiledProgram
/// artifacts (compiler/Program.h), in two modes:
///
///  * **Sharded steady state** (ParallelExecutor): one run's steady
///    iterations are split into per-worker shards, each served by an
///    independent CompiledExecutor instance over the same shared program.
///    Steady-state stream execution composes: the state at iteration k is
///    a function of closed-form filter progressions (seeded exactly) plus
///    a bounded window of recent data (channel leftovers, delay lines,
///    kernel partials), so a worker jumps to its shard boundary by
///    seeding and then replaying the schedule's washout depth
///    (sched/Schedule.h computeShardBoundary) with outputs discarded.
///    Shard outputs are spliced in order; the result — values AND FLOP
///    counts — is bit-identical to a single-threaded run of the same
///    iterations. Programs whose state cannot be reconstructed (feedback
///    loops, opaque filter state) degrade to an equivalent sequential
///    run, never to an error.
///
///  * **Executor pool** (ExecutorPool): a fixed worker pool serving
///    concurrent independent run requests against one shared program —
///    the "compile once, serve many users" path. Each request gets a
///    fresh CompiledExecutor instance; the artifact is never mutated.
///
/// Worker-thread FLOP counts are folded back into the submitting thread's
/// counters (support/OpCounters.h accumulate), so measurements over the
/// parallel engine report the same totals as single-threaded runs.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_EXEC_PARALLEL_H
#define SLIN_EXEC_PARALLEL_H

#include "codegen/NativeModule.h"
#include "compiler/Program.h"
#include "exec/ExecOptions.h"
#include "support/Error.h"
#include "support/FaultInjection.h"
#include "support/OpCounters.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace slin {

class CompiledExecutor;

/// Sharded steady-state execution of one logical run. Mirrors the
/// CompiledExecutor driving surface (provideInput / run / outputSnapshot
/// / printed / outputsProduced) so measurement and tests can swap the
/// engines; successive run calls continue the same logical stream, with
/// every call's iteration span sharded afresh.
class ParallelExecutor {
public:
  /// Uses the parallel knobs baked into the program's options.
  explicit ParallelExecutor(CompiledProgramRef Program);
  ParallelExecutor(CompiledProgramRef Program, ParallelOptions Opts);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor &) = delete;
  ParallelExecutor &operator=(const ParallelExecutor &) = delete;

  /// Appends items to the logical run's external input stream.
  void provideInput(const std::vector<double> &Items);

  /// Runs until the observable output count reaches \p NOutputs (like
  /// CompiledExecutor::run, but sharded across workers).
  void run(size_t NOutputs);

  /// Runs exactly \p Iters further steady iterations, sharded. The
  /// spliced outputs equal a single-threaded CompiledExecutor's
  /// runIterations over the same span, bit for bit.
  void runIterations(int64_t Iters);

  /// Serving-path front doors behind run()/runIterations(): a deadlock
  /// (insufficient input) comes back as ErrorCode::Deadlock instead of
  /// aborting, and an optional \p DL is polled between firing programs
  /// by every executor this call drives. A shard whose seeding fails
  /// validation (ErrorCode::ShardAnomaly) is absorbed, not surfaced: the
  /// fan-out's partial results are discarded and the whole span re-runs
  /// sequentially — outputs and FLOP counts still bit-identical — with
  /// lastRunStats() recording Sequential plus the anomaly as
  /// FallbackReason. Timeout/Cancelled propagate (re-running would only
  /// take longer); after one, this object's logical stream is
  /// indeterminate — recover with a fresh executor.
  Status tryRun(size_t NOutputs, const faults::RunDeadline *DL = nullptr);
  Status tryRunIterations(int64_t Iters,
                          const faults::RunDeadline *DL = nullptr);

  std::vector<double> outputSnapshot() const { return ExtOut; }
  const std::vector<double> &printed() const { return Printed; }
  size_t outputsProduced() const;
  int64_t iterationsDone() const { return IterationsDone; }
  const CompiledProgram &program() const { return *Prog; }

  /// How the most recent run/runIterations call executed.
  struct RunStats {
    int ShardsUsed = 0;
    int64_t Iterations = 0;        ///< steady iterations this call
    int64_t WarmupIterations = 0;  ///< replayed (discarded) across shards
    bool Sequential = false;       ///< fell back to one in-place executor
    std::string FallbackReason;    ///< why, when Sequential
  };
  const RunStats &lastRunStats() const { return Stats; }

private:
  struct ShardResult {
    std::vector<double> Out;
    std::vector<double> Printed;
    OpCounts Ops;
    /// The shard's executor, kept alive so the last shard can be adopted
    /// as the continuation tail (it ends exactly at the new
    /// IterationsDone).
    std::unique_ptr<CompiledExecutor> Exec;
    size_t InFedEnd = 0; ///< global In index fed to Exec so far
    /// Non-Ok when the shard could not seed or run; its Out/Printed are
    /// then meaningless and the fan-out must discard every shard.
    Status St;
  };

  int64_t consumedInputItems() const;
  void runShard(int64_t Start, int64_t Span, bool Counting,
                const faults::RunDeadline *DL, ShardResult &Result) const;
  CompiledExecutor &seqExecutor();
  void spliceSeqOutputs(size_t OutBoundary, size_t PrintBoundary);
  Status runSequential(int64_t Iters, const faults::RunDeadline *DL);
  Status runSequentialByOutputs(size_t NOutputs,
                                const faults::RunDeadline *DL);
  Status recoverSpanSequentially(int64_t Iters, const std::string &Why,
                                 const faults::RunDeadline *DL);

  CompiledProgramRef Prog;
  ParallelOptions Opts;
  std::vector<double> In; ///< full logical input stream, never trimmed
  std::vector<double> ExtOut;
  std::vector<double> Printed;
  int64_t IterationsDone = 0;
  bool InitDone = false;
  RunStats Stats;
  /// Sequential fallback (unshardable programs) keeps real state across
  /// calls.
  std::unique_ptr<CompiledExecutor> Seq;
  size_t SeqInFed = 0; ///< items of In already handed to Seq
  /// Continuation tail for shardable programs: the previous call's last
  /// shard executor, positioned exactly at IterationsDone. Short
  /// follow-up spans run it forward directly — no re-seeding, no washout
  /// replay, no thread spawn.
  std::unique_ptr<CompiledExecutor> Tail;
  size_t TailInFed = 0;
  /// Lazily probed outputs-per-iteration for print-driven graphs.
  int64_t ProbedPerIterOut = -1;
};

/// A fixed pool of worker threads serving independent run requests
/// against one shared CompiledProgram.
class ExecutorPool {
public:
  struct Request {
    std::vector<double> Input;
    size_t NOutputs = 0;
    bool CountOps = false; ///< fill Result::Ops (adds counting overhead)

    /// Serving extensions (src/service/): per-request engine selection,
    /// deadline and latency-mode firing. The defaults reproduce the
    /// original pool behaviour (throughput-batched compiled engine, no
    /// deadline).
    ///
    /// Compiled runs the op tapes; Native runs \p Native when non-null
    /// (the caller resolves the module — a null module IS the compiled
    /// engine, the degradation ladder's last rung); Parallel runs the
    /// sharded backend, which itself falls back to an equivalent
    /// sequential run on shard anomalies. Dynamic is not a pool engine
    /// and is served as Compiled.
    Engine Eng = Engine::Compiled;
    codegen::NativeModuleRef Native; ///< pre-resolved Engine::Native module
    int64_t DeadlineMillis = 0;      ///< > 0: wall-clock run deadline
    /// Latency mode: single steady iterations (bounded
    /// time-to-first-output) instead of fused batches. Runs on a
    /// CompiledExecutor even for Eng == Parallel — sharding is a
    /// throughput device and cannot bound the first output.
    bool Latency = false;
  };
  struct Result {
    Status St; ///< non-Ok (Deadlock/Timeout/Cancelled): Outputs unusable
    std::vector<double> Outputs; ///< external channel (or printed) values
    OpCounts Ops;
    double Seconds = 0.0; ///< wall-clock of the run itself (queue excluded)
    double FirstOutputSeconds = 0.0; ///< latency mode: time to first output
  };

  /// Outcome counters, snapshotted under the pool lock.
  struct Stats {
    uint64_t Served = 0;   ///< requests completed Ok
    uint64_t Timeouts = 0; ///< Timeout/Cancelled results
    uint64_t Failures = 0; ///< every other non-Ok result
  };

  /// \p Workers = 0 uses the program's parallel options (and 0 there
  /// falls back to the hardware concurrency).
  explicit ExecutorPool(CompiledProgramRef Program, int Workers = 0);
  ~ExecutorPool(); ///< drains queued requests, then joins the workers

  ExecutorPool(const ExecutorPool &) = delete;
  ExecutorPool &operator=(const ExecutorPool &) = delete;

  std::future<Result> submit(Request R);

  int workers() const { return static_cast<int>(Threads.size()); }
  uint64_t served() const;
  Stats stats() const;

  /// Queued (not yet started) requests — the admission layer's
  /// queue-depth signal.
  size_t queueDepth() const;

private:
  struct Job {
    Request Req;
    std::promise<Result> Promise;
  };
  void workerLoop();

  CompiledProgramRef Prog;
  mutable std::mutex Mutex;
  std::condition_variable Ready;
  std::deque<Job> Queue;
  bool Stopping = false;
  Stats Counters;
  std::vector<std::thread> Threads;
};

/// Resolves a worker-count knob: 0 means "ask the hardware" (min 1).
int resolveWorkerCount(int Requested);

} // namespace slin

#endif // SLIN_EXEC_PARALLEL_H
