//===- exec/Executor.h - Dynamic stream-graph executor ----------*- C++ -*-===//
///
/// \file
/// The runtime substitute for the paper's uniprocessor backend + runtime
/// library (Section 5.1): the hierarchical graph is flattened (FlatGraph)
/// into filter nodes, splitter/joiner nodes and FIFO channels, then
/// executed by a bounded data-driven scheduler — any node whose inputs
/// satisfy its (init-)peek requirement may fire; channels are capped to
/// bound memory; a sweep that fires nothing diagnoses a deadlocked
/// (invalid) graph.
///
/// This executes arbitrary peeking, mismatched rates, init-work firings
/// with different rates, and feedback loops with enqueued items, without
/// computing an initialization schedule. The batched, statically-scheduled
/// counterpart is exec/CompiledExecutor.h.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_EXEC_EXECUTOR_H
#define SLIN_EXEC_EXECUTOR_H

#include "exec/ExecOptions.h"
#include "exec/FlatGraph.h"
#include "wir/Interp.h"

#include <deque>

namespace slin {

class Executor {
public:
  /// Knobs live in exec/ExecOptions.h (shared with the unified
  /// ExecOptions struct); the alias keeps `Executor::Options` spelling.
  using Options = DynamicOptions;

  explicit Executor(const Stream &Root) : Executor(Root, Options()) {}
  Executor(const Stream &Root, Options Opts);
  ~Executor();

  Executor(const Executor &) = delete;
  Executor &operator=(const Executor &) = delete;

  /// Appends items to the graph's external input channel (for graphs
  /// whose root consumes input).
  void provideInput(const std::vector<double> &Items);

  /// Fires nodes until the observable output count reaches \p NOutputs.
  /// The observable output is the external output channel if the root
  /// pushes items, otherwise the sequence of printed values.
  void run(size_t NOutputs);

  /// Items currently on the external output channel (never consumed).
  std::vector<double> outputSnapshot() const;

  /// Values produced by print statements, in order.
  const std::vector<double> &printed() const { return Printed; }

  /// Count of observable outputs produced so far.
  size_t outputsProduced() const;

  /// Total node firings so far (diagnostics).
  uint64_t firings() const { return Firings; }

  /// The derived cap (high-water bound) of channel \p Chan; exposed for
  /// the channel-cap regression tests.
  size_t channelCap(int Chan) const {
    return Channels[static_cast<size_t>(Chan)].Cap;
  }

private:
  struct Channel {
    std::deque<double> Q;
    size_t Cap = 0; ///< high-water mark (0 until computed)
  };

  /// Mutable per-node engine state alongside the FlatGraph topology.
  struct NodeState {
    wir::FieldStore Fields;
    std::unique_ptr<NativeFilter> Native;
    bool FiredOnce = false;
  };

  class NodeTape;

  void computeChannelCaps();
  bool canFire(size_t I) const;
  void fire(size_t I);
  size_t inputAvailable(const flat::Node &N) const;

  Options Opts;
  flat::FlatGraph Graph;
  std::vector<NodeState> States;
  std::vector<Channel> Channels;
  std::vector<double> Printed;
  uint64_t Firings = 0;
};

} // namespace slin

#endif // SLIN_EXEC_EXECUTOR_H
