//===- exec/Engine.h - Execution engine selection ---------------*- C++ -*-===//
///
/// \file
/// The two execution engines of the runtime: the dynamic data-driven
/// Executor (tree-walking interpreter, per-sweep readiness scan) and the
/// compiled batched CompiledExecutor (static firing program, op tapes,
/// batched matrix kernels). Measurement helpers, the cost model and the
/// benchmark harness all select an engine through this enum.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_EXEC_ENGINE_H
#define SLIN_EXEC_ENGINE_H

namespace slin {

enum class Engine {
  Dynamic, ///< exec/Executor.h
  Compiled ///< exec/CompiledExecutor.h
};

inline const char *engineName(Engine E) {
  return E == Engine::Dynamic ? "dynamic" : "compiled";
}

} // namespace slin

#endif // SLIN_EXEC_ENGINE_H
