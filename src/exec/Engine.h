//===- exec/Engine.h - Execution engine selection ---------------*- C++ -*-===//
///
/// \file
/// The execution engines of the runtime: the dynamic data-driven
/// Executor (tree-walking interpreter, per-sweep readiness scan), the
/// compiled batched CompiledExecutor (static firing program, op tapes,
/// batched matrix kernels), and the parallel sharded backend
/// (exec/Parallel.h) that splits a run's steady iterations across worker
/// threads, each an independent CompiledExecutor over the same shared
/// CompiledProgram. Measurement helpers, the cost model and the benchmark
/// harness all select an engine through this enum.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_EXEC_ENGINE_H
#define SLIN_EXEC_ENGINE_H

namespace slin {

enum class Engine {
  Dynamic,  ///< exec/Executor.h
  Compiled, ///< exec/CompiledExecutor.h
  Parallel, ///< exec/Parallel.h (sharded runs over a CompiledProgram)
  Native    ///< codegen/NativeModule.h (emitted C++, dlopen'd per program)
};

inline const char *engineName(Engine E) {
  switch (E) {
  case Engine::Dynamic:
    return "dynamic";
  case Engine::Compiled:
    return "compiled";
  case Engine::Parallel:
    return "parallel";
  case Engine::Native:
    return "native";
  }
  return "unknown";
}

/// Engines that execute a lowered CompiledProgram artifact (everything
/// but the tree interpreter): the pipeline lowers for them, the cost
/// model prices them with the compiled engine's coefficients.
inline bool usesCompiledArtifact(Engine E) { return E != Engine::Dynamic; }

} // namespace slin

#endif // SLIN_EXEC_ENGINE_H
