//===- opt/Redundancy.h - Redundancy elimination ----------------*- C++ -*-===//
///
/// \file
/// Redundancy elimination (Section 4.2): many linear filters recompute
/// the same coefficient*input product across firings (e.g. symmetric FIR
/// taps). Algorithm 3 extracts, from a linear node, the set of *linear
/// computation tuples* (LCTs — abstract products coeff*peek(pos)) that
/// recur in future firings; Transformation 7 then generates a filter that
/// caches those products in circular buffers and loads instead of
/// recomputing.
///
/// As the paper found, the caching overhead usually exceeds the savings
/// in time — the point of Figure 5-10 — but the multiplication counts
/// drop; both effects reproduce on our runtime.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_OPT_REDUNDANCY_H
#define SLIN_OPT_REDUNDANCY_H

#include "graph/Stream.h"
#include "linear/LinearNode.h"

#include <map>
#include <set>
#include <vector>

namespace slin {

/// A linear computation tuple: the abstract product Coeff * peek(Pos)
/// relative to the current firing's input tape (Definition 2).
struct LCT {
  double Coeff;
  int Pos;

  bool operator<(const LCT &O) const {
    return Pos != O.Pos ? Pos < O.Pos : Coeff < O.Coeff;
  }
  bool operator==(const LCT &O) const {
    return Pos == O.Pos && Coeff == O.Coeff;
  }
};

/// Output of Algorithm 3.
struct RedundancyInfo {
  /// LCT -> the set of future firings (0 = current) that use its value.
  std::map<LCT, std::set<int>> UseMap;
  /// LCTs computed in the current firing and reused later.
  std::set<LCT> Reused;
  /// Local tuple -> (cached tuple, firings ago it was stored).
  std::map<LCT, std::pair<LCT, int>> CompMap;

  int minUse(const LCT &T) const { return *UseMap.at(T).begin(); }
  int maxUse(const LCT &T) const { return *UseMap.at(T).rbegin(); }

  /// Fraction of the node's nonzero products whose value can be loaded
  /// from cache instead of recomputed (the paper's "redundancy").
  double redundantFraction(const LinearNode &N) const;
};

/// Runs Algorithm 3 on \p N.
RedundancyInfo analyzeRedundancy(const LinearNode &N);

/// Transformation 7: generates a filter equivalent to \p N that caches
/// reused products in circular-buffer state.
std::unique_ptr<Filter> makeRedundancyFilter(const LinearNode &N,
                                             const std::string &Name);

/// Rewrites \p Root, replacing every linear *filter* with its
/// redundancy-eliminated form (no combination; Section 5.6 applies this
/// to the plain FIR benchmark).
StreamPtr replaceRedundancy(const Stream &Root);

class LinearAnalysis;

/// As above, reusing a caller-provided analysis of \p Root.
StreamPtr replaceRedundancy(const Stream &Root, const LinearAnalysis &LA);

} // namespace slin

#endif // SLIN_OPT_REDUNDANCY_H
