//===- opt/Cleanup.h - Cleanup and verification passes ----------*- C++ -*-===//
///
/// \file
/// The compiler pipeline's cleanup and verification passes, run after the
/// paper's replacement/selection transforms (compiler/Pipeline.h):
///
///  * **LinearConstFold** — rebuilds generated linear filters whose
///    coefficient matrices carry compile-time-constant structure:
///    pure-offset nodes (A == 0, e.g. a linear region fed only by
///    constants) become constant emitters with no peek window beyond
///    their pops, and nodes whose deepest peek positions have all-zero
///    coefficients (combined decimating sections — Compressor tails —
///    produce these) get those dead rows trimmed, shrinking the peek
///    window and therefore every downstream buffer. Folding only fires
///    on filters that are verbatim outputs of our own code generator
///    (checked by structural hash), so the rebuilt filter's arithmetic —
///    and with it both output values and FLOP counts — is bit-identical
///    to the unfolded one.
///
///  * **DeadChannelElim** — deletes splitjoin branches whose outputs are
///    never consumed (joiner weight zero) and have no observable side
///    effects (no print statements anywhere in the subtree). Branches
///    fed by a duplicate splitter (or a zero splitter weight) are
///    removed outright; branches owed input by a roundrobin splitter are
///    reduced to a minimal pop-and-discard sink so the splitter's item
///    accounting is preserved. Splitjoins left with a single branch
///    collapse to that branch. The flat graph and schedule are
///    recomputed downstream, so the dead channels' buffers disappear.
///
///  * **VerifyRates** — assertion passes: verifyStreamRates re-derives
///    the push/pop/peek balance equations of the (rewritten) stream
///    hierarchy and reports the first inconsistency as a string instead
///    of executing anything; verifySchedule replays a lowered program's
///    init/steady/batch firing programs symbolically against the flat
///    graph and cross-checks every cached StaticSchedule field
///    (repetitions, firing counts, channel occupancy, high-water marks,
///    buffer capacities, external I/O accounting). The pipeline runs
///    them after every rewrite when PipelineOptions::VerifyAfterEachPass
///    is set (default: the SLIN_VERIFY environment variable), failing
///    fast with the offending pass's name.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_OPT_CLEANUP_H
#define SLIN_OPT_CLEANUP_H

#include "graph/Stream.h"
#include "opt/LinearReplacement.h"

#include <cstdint>
#include <string>

namespace slin {

class AnalysisManager;
struct StaticSchedule;
namespace flat {
struct FlatGraph;
}

/// What the cleanup passes changed, for pass notes and tests.
struct CleanupStats {
  int ConstEmitters = 0;   ///< A == 0 nodes rebuilt as constant emitters
  int TrimmedFilters = 0;  ///< filters whose peek window shrank
  int64_t TrimmedPeekRows = 0; ///< dead peek positions removed in total
  int RemovedBranches = 0; ///< splitjoin children deleted outright
  int DiscardSinks = 0;    ///< dead branches reduced to pop-and-discard
  int CollapsedSplitJoins = 0; ///< single-branch splitjoins inlined

  bool any() const {
    return ConstEmitters || TrimmedFilters || RemovedBranches ||
           DiscardSinks || CollapsedSplitJoins;
  }
  /// Short human-readable summary for PassInfo notes ("no change" when
  /// nothing fired).
  std::string summary() const;
};

/// LinearConstFold. Returns the rewritten stream, or null when nothing
/// folded (the caller keeps the input). \p Style must be the pipeline's
/// code-generation style: a filter is only rebuilt when regenerating its
/// extracted node under \p Style reproduces it exactly, which both
/// certifies it as code-generator output and guarantees the trimmed
/// rebuild differs in nothing but the peek rate. \p AM memoizes the
/// extractions.
StreamPtr constFoldLinear(const Stream &Root, AnalysisManager &AM,
                          LinearCodeGenStyle Style, CleanupStats &Stats);

/// DeadChannelElim. Returns the rewritten stream, or null when nothing
/// was removed.
StreamPtr eliminateDeadChannels(const Stream &Root, CleanupStats &Stats);

/// True if any work/init-work function in \p S contains a print
/// statement (the only externally observable effect a stream can have).
bool hasObservableEffects(const Stream &S);

/// Re-derives the balance equations of \p Root; returns the first
/// inconsistency ("" when the graph has a valid steady state). Also
/// rejects negative rates, peek < pop windows and malformed init rates.
std::string verifyStreamRates(const Stream &Root);

/// Cross-checks \p S against \p G: independent balance of Repetitions, a
/// firing-accurate symbolic replay of the init, batch and steady
/// programs (channel underflow, unsatisfied peek windows, firing-count
/// totals), and equality of every derived schedule field (PostInitLive,
/// ChannelHighWater, ChannelBufSize, external pops/needs/pushes).
/// Returns the first mismatch, "" when consistent.
std::string verifySchedule(const flat::FlatGraph &G, const StaticSchedule &S);

} // namespace slin

#endif // SLIN_OPT_CLEANUP_H
