//===- opt/Selection.h - Optimization selection (DP) ------------*- C++ -*-===//
///
/// \file
/// The optimization-selection algorithm of Section 4.3 (Figures 4-3 to
/// 4-6, due to Thies): a dynamic program over rectangular regions of each
/// container's child grid that, for every region, compares (1) collapsing
/// to the time domain, (2) collapsing to the frequency domain, and (3)
/// leaving the region uncollapsed but refactored via horizontal cuts
/// (pipeline splits) and vertical cuts (splitjoin splits), memoizing
/// Config = ⟨cost, stream⟩ per (region, transform).
///
/// Costs are expressed per steady state of the enclosing container, so a
/// cut's cost is simply the sum of its parts and a collapsed node's cost
/// is its per-firing cost times its firing count. The cost functions are
/// the paper's (Section 4.3.3), with the partially-OCR-garbled frequency
/// term reconstructed as u·ln(14e)·max(o,1) — log in the number of taps,
/// linear in the pop rate — which reproduces the qualitative behaviour
/// the text describes (frequency attractive for long unit-pop filters,
/// catastrophic for high-pop nodes like Radar's Beamform). A
/// measurement-driven model is provided as an alternative.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_OPT_SELECTION_H
#define SLIN_OPT_SELECTION_H

#include "exec/Engine.h"
#include "graph/Stream.h"
#include "linear/Analysis.h"
#include "opt/Frequency.h"
#include "opt/LinearReplacement.h"

#include <memory>

namespace slin {

/// Estimates per-firing execution cost of a linear node under the two
/// collapsed implementations (Section 4.3.3).
class CostModel {
public:
  virtual ~CostModel();

  /// Cost of one firing of the direct (time-domain) implementation.
  /// \p SelectionOnly is true when the node is a pure 0/1 selection
  /// (e.g. a roundrobin splitjoin of identities), which compiles to
  /// buffer management and is free in the paper's model.
  virtual double directCost(const LinearNode &N, bool SelectionOnly) const;

  /// Cost of one firing of the frequency implementation.
  virtual double frequencyCost(const LinearNode &N) const;

  /// Mixes the model's identity and parameters into \p H, for the
  /// pipeline-level keys of the persistent artifact store
  /// (compiler/ArtifactStore.h): two configurations may share a stored
  /// compile only if their cost models provably pick the same plans.
  /// Returns false for subclasses that do not opt in (the base
  /// implementations guard with typeid, so an unknown subclass inheriting
  /// them reports unhashable rather than aliasing as its parent) — such
  /// configurations skip disk aliasing but lose nothing else.
  virtual bool hashContent(HashStream &H) const;
};

/// Alternative model calibrated on our runtime's operation counts rather
/// than the paper's P4 constants ("guided by profiler feedback"). The
/// per-item overhead constant depends on the execution engine: the
/// compiled engine's op tapes and batched kernels cut the per-item tape
/// overhead to a fraction of the tree interpreter's, which shifts the
/// time/frequency break-even points the selection DP computes.
class MeasuredCostModel : public CostModel {
public:
  explicit MeasuredCostModel(Engine Eng = Engine::Dynamic);

  double directCost(const LinearNode &N, bool SelectionOnly) const override;
  double frequencyCost(const LinearNode &N) const override;

  bool hashContent(HashStream &H) const override;

private:
  double PerItem; ///< per pushed/popped item runtime overhead, in "ops"
  double PerMult; ///< cost of one inner-loop multiply-accumulate
};

class AnalysisManager;

struct SelectionOptions {
  FrequencyOptions Freq;
  LinearCodeGenStyle CodeGen = LinearCodeGenStyle::Auto;
  const CostModel *Model = nullptr; ///< default: the paper's model
  size_t MaxMatrixElements = size_t(1) << 22;
  /// Hash-consed extraction/combination cache (null: process-global).
  /// The DP's rectangle combinations are memoized here, so repeated
  /// selections over structurally identical regions — across modes,
  /// engines and optimize() calls — reuse one combination matrix.
  AnalysisManager *AM = nullptr;
  /// Linear analysis of the root to reuse; must have been built with the
  /// same MaxMatrixElements. Null: the DP builds its own.
  const LinearAnalysis *Analysis = nullptr;
};

/// Runs the selection DP on \p Root and returns the rebuilt stream
/// implementing the minimum-cost configuration.
StreamPtr selectOptimizations(const Stream &Root,
                              const SelectionOptions &Opts);

/// True if \p N is a pure selection/permutation of its inputs.
bool isSelectionNode(const LinearNode &N);

} // namespace slin

#endif // SLIN_OPT_SELECTION_H
