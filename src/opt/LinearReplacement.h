//===- opt/LinearReplacement.h - Linear replacement -------------*- C++ -*-===//
///
/// \file
/// Linear replacement (Section 5.2): maximal linear sections of the
/// stream graph are collapsed into a single node implemented as a matrix
/// multiply. Three code shapes are provided, mirroring the paper:
///
///  * Unrolled — one push per output with an inlined expression that
///    skips zero coefficients (used for small nodes, < 256 operations);
///  * Banded — the indexed "diagonal" multiply of Figure 5-7, a loop nest
///    over per-column coefficient arrays with leading/trailing zeros
///    removed (used for large nodes);
///  * TunedNative — a call-out to the ATLAS-substitute TunedGemv kernel
///    (Section 5.4), including its buffer-copy interface overhead.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_OPT_LINEARREPLACEMENT_H
#define SLIN_OPT_LINEARREPLACEMENT_H

#include "graph/Stream.h"
#include "linear/Analysis.h"
#include "linear/LinearNode.h"

namespace slin {

enum class LinearCodeGenStyle {
  Auto,        ///< Unrolled below 256 operations, Banded above (paper)
  Unrolled,
  Banded,
  TunedNative, ///< ATLAS-substitute gemv call-out
  /// Native filter over the banded packed kernel. Same zero-skipping
  /// arithmetic as Banded, but implemented in C++ with a batched blocked
  /// gemm path the compiled engine uses to fuse a whole batch of firings
  /// into one matrix multiply (matrix/Kernels.h).
  PackedNative
};

/// Multiplications one firing of the generated direct implementation
/// performs (Auto style): unrolled code multiplies once per nonzero;
/// banded code walks each column's band, skipping interior zeros only
/// when they lie on a uniform stride. The selection cost model uses this
/// so predicted and generated costs agree.
size_t directMultiplyCount(const LinearNode &N);

/// Generates a filter implementing \p N directly (Figure 1-4's
/// CollapsedTwoFilters shape).
std::unique_ptr<Filter> makeLinearFilter(const LinearNode &N,
                                         const std::string &Name,
                                         LinearCodeGenStyle Style);

/// Rewrites \p Root, replacing linear regions with direct implementations.
/// With \p Combine set, maximal linear sections (whole linear containers
/// and maximal runs of linear children inside pipelines) are first
/// collapsed via the Section 3.3 transformations; otherwise each linear
/// filter is replaced individually ("no combination" configurations of
/// Figure 5-4).
StreamPtr replaceLinear(const Stream &Root, bool Combine,
                        LinearCodeGenStyle Style);

/// As above, reusing a caller-provided analysis of \p Root (the compiler
/// pipeline runs linear analysis as its own pass and shares the result
/// across passes).
StreamPtr replaceLinear(const Stream &Root, const LinearAnalysis &LA,
                        bool Combine, LinearCodeGenStyle Style);

/// Collapses a maximal run of linear siblings: folds their nodes with
/// combinePipeline. \p Nodes must be non-empty.
LinearNode foldPipelineNodes(const std::vector<const LinearNode *> &Nodes);

/// Registers the tuned/packed linear filters' artifact-serialization
/// factories with the native-filter registry (compiler/ArtifactStore.h).
/// Called once by the artifact store; idempotent.
void registerLinearNativeSerialization();

} // namespace slin

#endif // SLIN_OPT_LINEARREPLACEMENT_H
