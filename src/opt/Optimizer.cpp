//===- opt/Optimizer.cpp - Optimization driver --------------------------------==//

#include "opt/Optimizer.h"

using namespace slin;

StreamPtr slin::optimize(const Stream &Root, const OptimizerOptions &Opts) {
  // Route through the pass pipeline; the transform result is the
  // optimized stream (lowering only happens for compiled-engine options).
  return CompilerPipeline(Opts).compile(Root).Optimized;
}

StreamPtr slin::optimizeBase(const Stream &Root) { return Root.clone(); }

StreamPtr slin::optimizeLinear(const Stream &Root, bool Combine) {
  OptimizerOptions O;
  O.Mode = OptMode::Linear;
  O.Combine = Combine;
  return optimize(Root, O);
}

StreamPtr slin::optimizeFreq(const Stream &Root, bool Combine) {
  OptimizerOptions O;
  O.Mode = OptMode::Freq;
  O.Combine = Combine;
  return optimize(Root, O);
}

StreamPtr slin::optimizeAutoSel(const Stream &Root) {
  OptimizerOptions O;
  O.Mode = OptMode::AutoSel;
  return optimize(Root, O);
}
