//===- opt/Optimizer.cpp - Optimization driver --------------------------------==//

#include "opt/Optimizer.h"

#include "support/Diag.h"

using namespace slin;

StreamPtr slin::optimize(const Stream &Root, const OptimizerOptions &Opts) {
  switch (Opts.Mode) {
  case OptMode::Base:
    return Root.clone();
  case OptMode::Linear:
    return replaceLinear(Root, Opts.Combine, Opts.CodeGen);
  case OptMode::Freq:
    return replaceFrequency(Root, Opts.Combine, Opts.Freq);
  case OptMode::Redundancy:
    return replaceRedundancy(Root);
  case OptMode::AutoSel: {
    SelectionOptions SO;
    SO.Freq = Opts.Freq;
    SO.CodeGen = Opts.CodeGen;
    SO.Model = Opts.Model;
    return selectOptimizations(Root, SO);
  }
  }
  unreachable("unknown optimization mode");
}

StreamPtr slin::optimizeBase(const Stream &Root) { return Root.clone(); }

StreamPtr slin::optimizeLinear(const Stream &Root, bool Combine) {
  OptimizerOptions O;
  O.Mode = OptMode::Linear;
  O.Combine = Combine;
  return optimize(Root, O);
}

StreamPtr slin::optimizeFreq(const Stream &Root, bool Combine) {
  OptimizerOptions O;
  O.Mode = OptMode::Freq;
  O.Combine = Combine;
  return optimize(Root, O);
}

StreamPtr slin::optimizeAutoSel(const Stream &Root) {
  OptimizerOptions O;
  O.Mode = OptMode::AutoSel;
  return optimize(Root, O);
}
