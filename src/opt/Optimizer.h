//===- opt/Optimizer.h - Optimization driver --------------------*- C++ -*-===//
///
/// \file
/// The configurations evaluated in Chapter 5: no optimization (base),
/// maximal linear replacement, maximal frequency replacement, redundancy
/// replacement, and automatic optimization selection — each with the
/// paper's knobs (combination on/off, code-generation backend, naive vs
/// optimized frequency implementation, FFT tier, pop-rate limit).
///
/// These are thin wrappers over the compiler pipeline
/// (compiler/Pipeline.h): OptMode and the options struct live there —
/// `OptimizerOptions` is an alias of `PipelineOptions`, which also
/// carries the engine/exec knobs and cache/diagnostic controls — and
/// `optimize()` returns the pipeline's rewritten stream, discarding the
/// compiled artifact (use CompilerPipeline::compile directly to keep it).
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_OPT_OPTIMIZER_H
#define SLIN_OPT_OPTIMIZER_H

#include "compiler/Pipeline.h"
#include "opt/Frequency.h"
#include "opt/LinearReplacement.h"
#include "opt/Redundancy.h"
#include "opt/Selection.h"

namespace slin {

/// The single options struct of the whole compilation stack.
using OptimizerOptions = PipelineOptions;

/// Applies the selected optimization configuration to \p Root.
StreamPtr optimize(const Stream &Root, const OptimizerOptions &Opts);

/// Convenience: the paper's four headline configurations.
StreamPtr optimizeBase(const Stream &Root);
StreamPtr optimizeLinear(const Stream &Root, bool Combine = true);
StreamPtr optimizeFreq(const Stream &Root, bool Combine = true);
StreamPtr optimizeAutoSel(const Stream &Root);

} // namespace slin

#endif // SLIN_OPT_OPTIMIZER_H
