//===- opt/Optimizer.h - Optimization driver --------------------*- C++ -*-===//
///
/// \file
/// The configurations evaluated in Chapter 5: no optimization (base),
/// maximal linear replacement, maximal frequency replacement, redundancy
/// replacement, and automatic optimization selection — each with the
/// paper's knobs (combination on/off, code-generation backend, naive vs
/// optimized frequency implementation, FFT tier, pop-rate limit).
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_OPT_OPTIMIZER_H
#define SLIN_OPT_OPTIMIZER_H

#include "opt/Frequency.h"
#include "opt/LinearReplacement.h"
#include "opt/Redundancy.h"
#include "opt/Selection.h"

namespace slin {

enum class OptMode {
  Base,       ///< run the program as written
  Linear,     ///< maximal linear replacement
  Freq,       ///< maximal frequency replacement
  Redundancy, ///< redundancy elimination on every linear filter
  AutoSel     ///< automatic optimization selection (Section 4.3)
};

struct OptimizerOptions {
  OptMode Mode = OptMode::Base;
  /// Combine adjacent linear streams before replacement (Section 3.3);
  /// the paper's "(nc)" configurations disable this.
  bool Combine = true;
  LinearCodeGenStyle CodeGen = LinearCodeGenStyle::Auto;
  FrequencyOptions Freq;
  const CostModel *Model = nullptr; ///< AutoSel only; default paper model
};

/// Applies the selected optimization configuration to \p Root.
StreamPtr optimize(const Stream &Root, const OptimizerOptions &Opts);

/// Convenience: the paper's four headline configurations.
StreamPtr optimizeBase(const Stream &Root);
StreamPtr optimizeLinear(const Stream &Root, bool Combine = true);
StreamPtr optimizeFreq(const Stream &Root, bool Combine = true);
StreamPtr optimizeAutoSel(const Stream &Root);

} // namespace slin

#endif // SLIN_OPT_OPTIMIZER_H
