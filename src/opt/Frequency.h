//===- opt/Frequency.h - Frequency replacement ------------------*- C++ -*-===//
///
/// \file
/// Frequency replacement (Section 4.1): a linear node is implemented as a
/// blocked convolution in the frequency domain — FFT the input window,
/// multiply by the precomputed spectra of the node's columns, inverse
/// FFT, emit outputs, append a decimator when the pop rate exceeds one.
///
/// Both the naive implementation (Transformation 5, which recomputes the
/// overlapping e−1 input items every firing and discards the partial
/// sums) and the optimized implementation (Transformation 6, which
/// carries the partial sums across firings in filter state and therefore
/// consumes non-overlapping blocks) are provided, along with two FFT
/// tiers matching Figure 5-12: the planned real-input path (the "FFTW"
/// tier) and an unplanned recursive complex FFT (the "simple" tier).
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_OPT_FREQUENCY_H
#define SLIN_OPT_FREQUENCY_H

#include "graph/Stream.h"
#include "linear/LinearNode.h"

namespace slin {

enum class FFTTier {
  PlannedReal,  ///< planned, half-complex real path (FFTW substitute)
  SimpleComplex ///< textbook recursive complex FFT, no planning
};

struct FrequencyOptions {
  bool Optimized = true;       ///< Transformation 6 vs Transformation 5
  FFTTier Tier = FFTTier::PlannedReal;
  int FFTSizeOverride = 0;     ///< 0: N = 2^ceil(lg 2e) (paper default)
  int PopLimit = 1 << 30;      ///< nodes with o > PopLimit are not converted
};

/// True if \p N can be implemented in the frequency domain under \p Opts.
bool canConvertToFrequency(const LinearNode &N, const FrequencyOptions &Opts);

/// Builds the frequency implementation of \p N: a pipeline containing the
/// frequency filter and, when o > 1, the decimator of Transformation 5.
StreamPtr makeFrequencyStream(const LinearNode &N, const std::string &Name,
                              const FrequencyOptions &Opts);

/// Rewrites \p Root, replacing (maximal, when \p Combine) linear sections
/// with frequency implementations where convertible; non-convertible
/// linear sections are left in their original form.
StreamPtr replaceFrequency(const Stream &Root, bool Combine,
                           const FrequencyOptions &Opts);

class LinearAnalysis;

/// As above, reusing a caller-provided analysis of \p Root.
StreamPtr replaceFrequency(const Stream &Root, const LinearAnalysis &LA,
                           bool Combine, const FrequencyOptions &Opts);

/// Registers the frequency filter's artifact-serialization factory with
/// the native-filter registry (compiler/ArtifactStore.h). Called once by
/// the artifact store; idempotent.
void registerFrequencyNativeSerialization();

/// Multiplications per output of the frequency implementation, as a
/// closed-form estimate used by Figure 5-12's "theory" series:
/// an N-point real FFT costs ~(N/2)lg(N) multiplies; one firing performs
/// 1+u transforms plus u*N/2-ish pointwise multiplies for m outputs.
double theoreticalFreqMultsPerOutput(int E, int FFTSize);

} // namespace slin

#endif // SLIN_OPT_FREQUENCY_H
