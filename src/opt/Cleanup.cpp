//===- opt/Cleanup.cpp - Cleanup and verification passes --------------------==//

#include "opt/Cleanup.h"

#include "compiler/AnalysisManager.h"
#include "compiler/StructuralHash.h"
#include "sched/Rates.h"
#include "sched/Schedule.h"
#include "support/Diag.h"
#include "wir/Build.h"

#include <algorithm>
#include <cstdio>

using namespace slin;

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

std::string CleanupStats::summary() const {
  if (!any())
    return "no change";
  std::string Out;
  char Buf[96];
  auto Append = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    if (!Out.empty())
      Out += ", ";
    Out += Buf;
  };
  if (ConstEmitters)
    Append("%d const emitter%s", ConstEmitters, ConstEmitters == 1 ? "" : "s");
  if (TrimmedFilters)
    Append("%d filter%s trimmed (-%lld peek rows)", TrimmedFilters,
           TrimmedFilters == 1 ? "" : "s",
           static_cast<long long>(TrimmedPeekRows));
  if (RemovedBranches)
    Append("%d dead branch%s removed", RemovedBranches,
           RemovedBranches == 1 ? "" : "es");
  if (DiscardSinks)
    Append("%d branch%s reduced to discard sinks", DiscardSinks,
           DiscardSinks == 1 ? "" : "es");
  if (CollapsedSplitJoins)
    Append("%d splitjoin%s collapsed", CollapsedSplitJoins,
           CollapsedSplitJoins == 1 ? "" : "s");
  return Out;
}

//===----------------------------------------------------------------------===//
// Observable effects
//===----------------------------------------------------------------------===//

namespace {

bool anyPrint(const wir::StmtList &Body) {
  for (const wir::StmtPtr &S : Body) {
    switch (S->kind()) {
    case wir::StmtKind::Print:
      return true;
    case wir::StmtKind::For:
      if (anyPrint(wir::cast<wir::ForStmt>(S.get())->Body))
        return true;
      break;
    case wir::StmtKind::If: {
      const auto *I = wir::cast<wir::IfStmt>(S.get());
      if (anyPrint(I->Then) || anyPrint(I->Else))
        return true;
      break;
    }
    case wir::StmtKind::Uncounted:
      if (anyPrint(wir::cast<wir::UncountedStmt>(S.get())->Body))
        return true;
      break;
    default:
      break;
    }
  }
  return false;
}

} // namespace

bool slin::hasObservableEffects(const Stream &S) {
  switch (S.kind()) {
  case StreamKind::Filter: {
    const auto *F = cast<Filter>(&S);
    if (F->isNative())
      return false; // natives only read and write their tapes
    if (anyPrint(F->work().Body))
      return true;
    return F->initWork() && anyPrint(F->initWork()->Body);
  }
  case StreamKind::Pipeline:
    for (const StreamPtr &C : cast<Pipeline>(&S)->children())
      if (hasObservableEffects(*C))
        return true;
    return false;
  case StreamKind::SplitJoin:
    for (const StreamPtr &C : cast<SplitJoin>(&S)->children())
      if (hasObservableEffects(*C))
        return true;
    return false;
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    return hasObservableEffects(FB->body()) ||
           hasObservableEffects(FB->loop());
  }
  }
  unreachable("unknown stream kind");
}

//===----------------------------------------------------------------------===//
// LinearConstFold
//===----------------------------------------------------------------------===//

namespace {

/// Deepest peek position with a nonzero coefficient, or -1 when A == 0.
int deepestUsedPeek(const LinearNode &N) {
  for (int P = N.peekRate() - 1; P >= 0; --P)
    for (int J = 0; J != N.pushRate(); ++J)
      if (N.coeff(P, J) != 0.0)
        return P;
  return -1;
}

/// \p N with its dead deep-peek rows removed: same pops, pushes and
/// coefficients, peek window shrunk to \p NewE.
LinearNode trimPeekWindow(const LinearNode &N, int NewE) {
  int E = N.peekRate(), U = N.pushRate();
  assert(NewE >= N.popRate() && NewE < E && "nothing to trim");
  Matrix A(static_cast<size_t>(NewE), static_cast<size_t>(U));
  for (int R = 0; R != NewE; ++R)
    for (int J = 0; J != U; ++J)
      A.at(static_cast<size_t>(R), static_cast<size_t>(J)) =
          N.matrix().at(static_cast<size_t>(E - NewE + R),
                        static_cast<size_t>(J));
  return LinearNode(std::move(A), N.vector(), NewE, N.popRate(), U);
}

class ConstFolder {
public:
  ConstFolder(AnalysisManager &AM, LinearCodeGenStyle Style,
              CleanupStats &Stats)
      : AM(AM), Style(Style), Stats(Stats) {}

  bool Changed = false;

  StreamPtr rewrite(const Stream &S) {
    switch (S.kind()) {
    case StreamKind::Filter:
      return rewriteFilter(*cast<Filter>(&S));
    case StreamKind::Pipeline: {
      auto Out = std::make_unique<Pipeline>(S.name());
      for (const StreamPtr &C : cast<Pipeline>(&S)->children())
        Out->add(rewrite(*C));
      return Out;
    }
    case StreamKind::SplitJoin: {
      const auto *SJ = cast<SplitJoin>(&S);
      auto Out = std::make_unique<SplitJoin>(SJ->name(), SJ->splitter(),
                                             SJ->joiner());
      for (const StreamPtr &C : SJ->children())
        Out->add(rewrite(*C));
      return Out;
    }
    case StreamKind::FeedbackLoop: {
      const auto *FB = cast<FeedbackLoop>(&S);
      return std::make_unique<FeedbackLoop>(
          FB->name(), FB->joiner(), rewrite(FB->body()), rewrite(FB->loop()),
          FB->splitter(), FB->enqueued());
    }
    }
    unreachable("unknown stream kind");
  }

private:
  StreamPtr rewriteFilter(const Filter &F) {
    // Only steady-state IR filters are foldable: natives hide their
    // arithmetic and init-work firings are outside the extracted node.
    if (F.isNative() || F.initWork())
      return F.clone();
    std::shared_ptr<const ExtractionResult> Ext = AM.extraction(F);
    if (!Ext->isLinear())
      return F.clone();
    const LinearNode &N = *Ext->Node;
    int Deepest = deepestUsedPeek(N);
    int NewE = std::max(N.popRate(), Deepest + 1);
    if (NewE >= N.peekRate())
      return F.clone(); // every deep peek position is live

    // Fold only filters that are verbatim outputs of our code generator:
    // regenerating the extracted node must reproduce the filter exactly
    // (structural hash ignores names). Then the trimmed rebuild is the
    // same code with a smaller declared peek window — outputs and FLOP
    // counts are bit-identical by construction. Hand-written filters
    // (e.g. regions the selection DP left uncollapsed) never match and
    // are left untouched.
    std::unique_ptr<Filter> Regen = makeLinearFilter(N, F.name(), Style);
    if (structuralHash(*Regen) != structuralHash(F))
      return F.clone();

    std::unique_ptr<Filter> Folded =
        makeLinearFilter(trimPeekWindow(N, NewE), F.name(), Style);
    if (Deepest < 0)
      ++Stats.ConstEmitters;
    else
      ++Stats.TrimmedFilters;
    Stats.TrimmedPeekRows += N.peekRate() - NewE;
    Changed = true;
    return Folded;
  }

  AnalysisManager &AM;
  LinearCodeGenStyle Style;
  CleanupStats &Stats;
};

} // namespace

StreamPtr slin::constFoldLinear(const Stream &Root, AnalysisManager &AM,
                                LinearCodeGenStyle Style,
                                CleanupStats &Stats) {
  ConstFolder Folder(AM, Style, Stats);
  StreamPtr Out = Folder.rewrite(Root);
  return Folder.Changed ? std::move(Out) : nullptr;
}

//===----------------------------------------------------------------------===//
// DeadChannelElim
//===----------------------------------------------------------------------===//

namespace {

/// Minimal replacement for a dead roundrobin branch: consumes its
/// splitter allotment and discards it. Pure buffer management — no
/// floating-point work survives.
std::unique_ptr<Filter> makeDiscardSink(int Pop) {
  using namespace wir;
  using namespace wir::build;
  WorkFunction W(Pop, Pop, 0,
                 stmts(loop("i", cst(0), cst(Pop), stmts(popStmt()))));
  return std::make_unique<Filter>("DeadBranchSink", std::vector<FieldDef>{},
                                  std::move(W));
}

class DeadChannelEliminator {
public:
  explicit DeadChannelEliminator(CleanupStats &Stats) : Stats(Stats) {}

  bool Changed = false;

  StreamPtr rewrite(const Stream &S) {
    switch (S.kind()) {
    case StreamKind::Filter:
      return S.clone();
    case StreamKind::Pipeline: {
      auto Out = std::make_unique<Pipeline>(S.name());
      for (const StreamPtr &C : cast<Pipeline>(&S)->children())
        Out->add(rewrite(*C));
      return Out;
    }
    case StreamKind::SplitJoin:
      return rewriteSplitJoin(*cast<SplitJoin>(&S));
    case StreamKind::FeedbackLoop: {
      const auto *FB = cast<FeedbackLoop>(&S);
      return std::make_unique<FeedbackLoop>(
          FB->name(), FB->joiner(), rewrite(FB->body()), rewrite(FB->loop()),
          FB->splitter(), FB->enqueued());
    }
    }
    unreachable("unknown stream kind");
  }

private:
  /// A branch is dead when the joiner never reads from it and deleting
  /// it cannot be observed: no prints anywhere below, and (defensively —
  /// a zero-weight producing branch has no valid steady state anyway)
  /// no items produced.
  bool isDeadBranch(const Stream &Child, int JoinWeight) {
    if (JoinWeight != 0 || hasObservableEffects(Child))
      return false;
    Expected<RateSignature> R = tryComputeRates(Child);
    return R && R->Push == 0;
  }

  /// True if \p Child already is the minimal pop-and-discard sink for
  /// \p SplitW items (keeps the pass idempotent across recompiles).
  static bool isDiscardSink(const Stream &Child, int SplitW) {
    return Child.kind() == StreamKind::Filter &&
           !cast<Filter>(&Child)->isNative() &&
           structuralHash(Child) == structuralHash(*makeDiscardSink(SplitW));
  }

  StreamPtr rewriteSplitJoin(const SplitJoin &SJ) {
    const Splitter &Split = SJ.splitter();
    const Joiner &Join = SJ.joiner();
    const auto &Children = SJ.children();
    bool RR = Split.Kind == Splitter::RoundRobin;
    // Malformed weight vectors: rebuild verbatim, the verifier's job.
    if (Join.Weights.size() != Children.size() ||
        (RR && Split.Weights.size() != Children.size())) {
      auto Out = std::make_unique<SplitJoin>(SJ.name(), Split, Join);
      for (const StreamPtr &C : Children)
        Out->add(rewrite(*C));
      return Out;
    }

    std::vector<StreamPtr> NewChildren;
    std::vector<int> NewSplitW, NewJoinW;
    int Removed = 0, Sinks = 0;
    for (size_t K = 0; K != Children.size(); ++K) {
      int SplitW = RR ? Split.Weights[K] : 0;
      if (isDeadBranch(*Children[K], Join.Weights[K])) {
        if (!RR || SplitW == 0) {
          // Nothing is owed to this branch: delete it outright.
          ++Removed;
          continue;
        }
        if (!isDiscardSink(*Children[K], SplitW)) {
          // The splitter still deals this branch SplitW items per
          // cycle; keep the accounting with a minimal discard sink.
          ++Sinks;
          NewChildren.push_back(makeDiscardSink(SplitW));
          NewSplitW.push_back(SplitW);
          NewJoinW.push_back(0);
          continue;
        }
      }
      NewChildren.push_back(rewrite(*Children[K]));
      if (RR)
        NewSplitW.push_back(SplitW);
      NewJoinW.push_back(Join.Weights[K]);
    }
    // Never delete every branch: an empty splitjoin is unrepresentable.
    // (Stats are committed only past this point, so rolled-back
    // removals never show up in the pass note.)
    if (NewChildren.empty()) {
      auto Out = std::make_unique<SplitJoin>(SJ.name(), Split, Join);
      for (const StreamPtr &C : Children)
        Out->add(rewrite(*C));
      return Out;
    }
    bool RemovedHere = Removed || Sinks;
    Stats.RemovedBranches += Removed;
    Stats.DiscardSinks += Sinks;
    Changed = Changed || RemovedHere;

    // A splitjoin reduced to one branch is that branch: the splitter
    // forwards the whole input to it and the joiner forwards its whole
    // output.
    if (RemovedHere && NewChildren.size() == 1) {
      ++Stats.CollapsedSplitJoins;
      return std::move(NewChildren.front());
    }

    Splitter NewSplit = RR ? Splitter::roundRobin(std::move(NewSplitW))
                           : Splitter::duplicate();
    auto Out = std::make_unique<SplitJoin>(
        SJ.name(), std::move(NewSplit),
        Joiner::roundRobin(std::move(NewJoinW)));
    for (StreamPtr &C : NewChildren)
      Out->add(std::move(C));
    return Out;
  }

  CleanupStats &Stats;
};

} // namespace

StreamPtr slin::eliminateDeadChannels(const Stream &Root,
                                      CleanupStats &Stats) {
  DeadChannelEliminator E(Stats);
  StreamPtr Out = E.rewrite(Root);
  return E.Changed ? std::move(Out) : nullptr;
}

//===----------------------------------------------------------------------===//
// VerifyRates: hierarchy
//===----------------------------------------------------------------------===//

namespace {

/// Filter-level invariants the balance solver never looks at.
std::string checkFilterRates(const Stream &S) {
  switch (S.kind()) {
  case StreamKind::Filter: {
    const auto *F = cast<Filter>(&S);
    if (F->peekRate() < 0 || F->popRate() < 0 || F->pushRate() < 0)
      return "filter '" + F->name() + "': negative I/O rate";
    if (F->peekRate() < F->popRate())
      return "filter '" + F->name() + "': peek rate below pop rate";
    if (F->hasInitWork()) {
      if (F->initPeekRate() < 0 || F->initPopRate() < 0 ||
          F->initPushRate() < 0)
        return "filter '" + F->name() + "': negative init I/O rate";
      if (F->initPeekRate() < F->initPopRate())
        return "filter '" + F->name() + "': init peek rate below init pop";
    }
    return "";
  }
  case StreamKind::Pipeline:
    for (const StreamPtr &C : cast<Pipeline>(&S)->children()) {
      std::string E = checkFilterRates(*C);
      if (!E.empty())
        return E;
    }
    return "";
  case StreamKind::SplitJoin:
    for (const StreamPtr &C : cast<SplitJoin>(&S)->children()) {
      std::string E = checkFilterRates(*C);
      if (!E.empty())
        return E;
    }
    return "";
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    std::string E = checkFilterRates(FB->body());
    if (!E.empty())
      return E;
    return checkFilterRates(FB->loop());
  }
  }
  unreachable("unknown stream kind");
}

} // namespace

std::string slin::verifyStreamRates(const Stream &Root) {
  std::string Err = checkFilterRates(Root);
  if (!Err.empty())
    return Err;
  // The balance solver recurses through every container, so one root
  // query validates all repetition vectors and splitter/joiner
  // consistency checks along the way.
  if (Expected<RateSignature> R = tryComputeRates(Root); !R)
    return R.status().message();
  return "";
}

//===----------------------------------------------------------------------===//
// VerifyRates: lowered schedule
//===----------------------------------------------------------------------===//

namespace {

/// Firing-accurate symbolic replay of a firing program, mirroring the
/// scheduler's SimState (sched/Schedule.cpp) and the compiled engine's
/// init-firing rule (first-ever firing of an init-work filter uses init
/// rates) — but checking every precondition instead of asserting.
struct ScheduleReplay {
  const flat::FlatGraph &G;
  const StaticSchedule &S;
  std::vector<int64_t> Count;     ///< live items per channel
  std::vector<int64_t> HighWater; ///< running max of Count
  std::vector<bool> FiredOnce;    ///< per node, across the whole run
  // Per-program accounting, reset by beginProgram().
  std::vector<int64_t> Fired;     ///< firings per node
  std::vector<int64_t> Pushed;    ///< items appended per channel
  int64_t ExtPops = 0;
  int64_t ExtPushes = 0;
  std::string Err;

  ScheduleReplay(const flat::FlatGraph &G, const StaticSchedule &S)
      : G(G), S(S), Count(G.numChannels(), 0),
        HighWater(G.numChannels(), 0), FiredOnce(G.Nodes.size(), false),
        Fired(G.Nodes.size(), 0), Pushed(G.numChannels(), 0) {
    for (size_t C = 0; C != G.numChannels(); ++C) {
      Count[C] = static_cast<int64_t>(G.InitialItems[C].size());
      HighWater[C] = Count[C];
    }
  }

  bool failed() const { return !Err.empty(); }
  void fail(const std::string &M) {
    if (Err.empty())
      Err = M;
  }

  void beginProgram() {
    std::fill(Fired.begin(), Fired.end(), 0);
    std::fill(Pushed.begin(), Pushed.end(), 0);
    ExtPops = ExtPushes = 0;
  }

  /// Applies \p K same-rate firings of node \p I (InitFiring selects the
  /// init rates of an init-work filter's first firing).
  void fire(size_t I, int64_t K, bool InitFiring, const char *Phase) {
    const flat::Node &N = G.Nodes[I];
    for (int Chan : N.inputChannels()) {
      int64_t Need = N.peekNeedOn(Chan, InitFiring);
      int64_t Pop = N.popsFrom(Chan, InitFiring);
      if (Chan == G.ExternalIn) {
        ExtPops += K * Pop; // availability is the runtime's contract
        continue;
      }
      int64_t Avail = Count[static_cast<size_t>(Chan)];
      if (Avail < Need + (K - 1) * Pop) {
        fail(std::string(Phase) + " program fires '" + N.Name +
             "' without its input window on channel " +
             std::to_string(Chan) + " (" + std::to_string(Avail) +
             " live, needs " + std::to_string(Need + (K - 1) * Pop) + ")");
        return;
      }
      Count[static_cast<size_t>(Chan)] -= K * Pop;
    }
    for (int Chan : N.outputChannels()) {
      int64_t Push = N.pushesTo(Chan, InitFiring);
      size_t C = static_cast<size_t>(Chan);
      Count[C] += K * Push;
      Pushed[C] += K * Push;
      HighWater[C] = std::max(HighWater[C], Count[C]);
      if (Chan == G.ExternalOut)
        ExtPushes += K * Push;
    }
    Fired[I] += K;
  }

  void runProgram(const FiringProgram &P, const char *Phase) {
    for (const FiringStep &Step : P) {
      if (failed())
        return;
      if (Step.Node < 0 ||
          static_cast<size_t>(Step.Node) >= G.Nodes.size() ||
          Step.Count < 1) {
        fail(std::string(Phase) + " program contains a malformed step");
        return;
      }
      size_t I = static_cast<size_t>(Step.Node);
      const flat::Node &N = G.Nodes[I];
      int64_t K = Step.Count;
      bool InitPending = !FiredOnce[I] &&
                         N.Kind == flat::NodeKind::Filter &&
                         N.F->hasInitWork();
      FiredOnce[I] = true;
      if (InitPending) {
        fire(I, 1, /*InitFiring=*/true, Phase);
        --K;
      }
      if (K > 0 && !failed())
        fire(I, K, /*InitFiring=*/false, Phase);
    }
  }

  /// Compares this program's firing totals against \p Expected.
  void checkFirings(const std::vector<int64_t> &Expected, const char *Phase) {
    if (failed())
      return;
    for (size_t I = 0; I != G.Nodes.size(); ++I)
      if (Fired[I] != Expected[I]) {
        fail(std::string(Phase) + " program fires '" + G.Nodes[I].Name +
             "' " + std::to_string(Fired[I]) + " times, schedule says " +
             std::to_string(Expected[I]));
        return;
      }
  }

  void checkCounts(const std::vector<int64_t> &Expected, const char *What) {
    if (failed())
      return;
    for (size_t C = 0; C != G.numChannels(); ++C) {
      if (static_cast<int>(C) == G.ExternalIn ||
          static_cast<int>(C) == G.ExternalOut)
        continue;
      if (Count[C] != Expected[C]) {
        fail(std::string(What) + ": channel " + std::to_string(C) +
             " holds " + std::to_string(Count[C]) + " items, schedule says " +
             std::to_string(Expected[C]));
        return;
      }
    }
  }
};

std::string checkVec(const char *Name, size_t Got, size_t Want) {
  if (Got == Want)
    return "";
  return std::string(Name) + " sized " + std::to_string(Got) +
         ", graph has " + std::to_string(Want);
}

} // namespace

std::string slin::verifySchedule(const flat::FlatGraph &G,
                                 const StaticSchedule &S) {
  size_t NumNodes = G.Nodes.size();
  size_t NumChans = G.numChannels();
  std::string E;
  if (!(E = checkVec("Repetitions", S.Repetitions.size(), NumNodes)).empty() ||
      !(E = checkVec("InitFirings", S.InitFirings.size(), NumNodes)).empty() ||
      !(E = checkVec("ChannelHighWater", S.ChannelHighWater.size(), NumChans))
           .empty() ||
      !(E = checkVec("ChannelBufSize", S.ChannelBufSize.size(), NumChans))
           .empty() ||
      !(E = checkVec("PostInitLive", S.PostInitLive.size(), NumChans)).empty())
    return E;
  if (S.BatchIterations < 1)
    return "non-positive batch iteration count";
  for (size_t I = 0; I != NumNodes; ++I) {
    if (S.Repetitions[I] < 1)
      return "node '" + G.Nodes[I].Name + "' has repetition count " +
             std::to_string(S.Repetitions[I]);
    if (S.InitFirings[I] < 0)
      return "node '" + G.Nodes[I].Name + "' has negative init firings";
  }

  // Independent balance re-derivation: on every channel with both ends
  // internal, the producer's steady output must equal the consumer's
  // steady intake under the cached repetition vector.
  std::vector<int> Producer(NumChans, -1), Consumer(NumChans, -1);
  for (size_t I = 0; I != NumNodes; ++I) {
    for (int C : G.Nodes[I].outputChannels())
      if (G.Nodes[I].pushesTo(C, false) > 0)
        Producer[static_cast<size_t>(C)] = static_cast<int>(I);
    for (int C : G.Nodes[I].inputChannels())
      if (G.Nodes[I].popsFrom(C, false) > 0)
        Consumer[static_cast<size_t>(C)] = static_cast<int>(I);
  }
  for (size_t C = 0; C != NumChans; ++C) {
    int P = Producer[C], Q = Consumer[C];
    if (P < 0 || Q < 0)
      continue;
    int64_t Out = S.Repetitions[static_cast<size_t>(P)] *
                  G.Nodes[static_cast<size_t>(P)].pushesTo(
                      static_cast<int>(C), false);
    int64_t In = S.Repetitions[static_cast<size_t>(Q)] *
                 G.Nodes[static_cast<size_t>(Q)].popsFrom(
                     static_cast<int>(C), false);
    if (Out != In)
      return "balance equation violated on channel " + std::to_string(C) +
             " between '" + G.Nodes[static_cast<size_t>(P)].Name + "' (" +
             std::to_string(Out) + " pushed) and '" +
             G.Nodes[static_cast<size_t>(Q)].Name + "' (" +
             std::to_string(In) + " popped) per steady state";
  }

  // External lookahead constants, re-derived as the scheduler does.
  int64_t ExternalExtra = 0;
  int64_t InitPeekMax = 0;
  for (const flat::Node &N : G.Nodes)
    for (int Chan : N.inputChannels()) {
      if (Chan != G.ExternalIn)
        continue;
      ExternalExtra =
          std::max(ExternalExtra, static_cast<int64_t>(
                                      N.peekNeedOn(Chan, false) -
                                      N.popsFrom(Chan, false)));
      InitPeekMax = std::max(
          InitPeekMax, static_cast<int64_t>(N.peekNeedOn(Chan, true)));
    }

  // Replay init, batch, then steady from one shared state — the order
  // the scheduler derived them in, so high-water marks line up exactly.
  ScheduleReplay R(G, S);

  R.beginProgram();
  R.runProgram(S.InitProgram, "init");
  R.checkFirings(S.InitFirings, "init");
  R.checkCounts(S.PostInitLive, "after the init program");
  if (R.failed())
    return R.Err;
  if (R.ExtPops != S.InitExternalPops)
    return "init program pops " + std::to_string(R.ExtPops) +
           " external items, schedule says " +
           std::to_string(S.InitExternalPops);
  if (R.ExtPushes != S.InitExternalPushes)
    return "init program pushes " + std::to_string(R.ExtPushes) +
           " external items, schedule says " +
           std::to_string(S.InitExternalPushes);
  if (S.InitExternalNeed !=
      std::max(S.InitExternalPops + ExternalExtra, InitPeekMax))
    return "InitExternalNeed does not cover the init pops plus lookahead";
  std::vector<int64_t> InitBuf(NumChans);
  for (size_t C = 0; C != NumChans; ++C)
    InitBuf[C] =
        static_cast<int64_t>(G.InitialItems[C].size()) + R.Pushed[C];

  std::vector<int64_t> Expected(NumNodes);
  for (size_t I = 0; I != NumNodes; ++I)
    Expected[I] = S.Repetitions[I] * S.BatchIterations;
  R.beginProgram();
  R.runProgram(S.BatchProgram, "batch");
  R.checkFirings(Expected, "batch");
  R.checkCounts(S.PostInitLive, "after the batch program");
  if (R.failed())
    return R.Err;
  if (R.ExtPops != S.BatchExternalPops ||
      S.BatchExternalNeed != S.BatchExternalPops + ExternalExtra ||
      R.ExtPushes != S.BatchExternalPushes)
    return "batch program external I/O disagrees with the schedule";
  std::vector<int64_t> BatchBuf(NumChans);
  for (size_t C = 0; C != NumChans; ++C)
    BatchBuf[C] = S.PostInitLive[C] + R.Pushed[C];

  R.beginProgram();
  R.runProgram(S.SteadyProgram, "steady");
  R.checkFirings(S.Repetitions, "steady");
  R.checkCounts(S.PostInitLive, "after the steady program");
  if (R.failed())
    return R.Err;
  if (R.ExtPops != S.SteadyExternalPops ||
      S.SteadyExternalNeed != S.SteadyExternalPops + ExternalExtra ||
      R.ExtPushes != S.SteadyExternalPushes)
    return "steady program external I/O disagrees with the schedule";

  for (size_t C = 0; C != NumChans; ++C) {
    if (R.HighWater[C] != S.ChannelHighWater[C])
      return "channel " + std::to_string(C) + " high-water mark is " +
             std::to_string(R.HighWater[C]) + ", schedule says " +
             std::to_string(S.ChannelHighWater[C]);
    bool External = static_cast<int>(C) == G.ExternalIn ||
                    static_cast<int>(C) == G.ExternalOut;
    if (External)
      continue;
    int64_t SteadyBuf = S.PostInitLive[C] + R.Pushed[C];
    int64_t Want = std::max(InitBuf[C], std::max(BatchBuf[C], SteadyBuf));
    if (S.ChannelBufSize[C] != Want)
      return "channel " + std::to_string(C) + " buffer capacity is " +
             std::to_string(S.ChannelBufSize[C]) + ", replay needs " +
             std::to_string(Want);
  }
  return "";
}
