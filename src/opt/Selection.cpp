//===- opt/Selection.cpp - Optimization selection (DP) -----------------------==//

#include "opt/Selection.h"

#include "compiler/AnalysisManager.h"
#include "fft/FFT.h"

#include "sched/Rates.h"
#include "support/Diag.h"
#include "support/MathUtil.h"

#include <cmath>
#include <limits>
#include <map>
#include <typeinfo>

using namespace slin;

CostModel::~CostModel() = default;

bool CostModel::hashContent(HashStream &H) const {
  // The paper's constants are compiled in: the class identity is the
  // content. Guard with typeid so an unhashable subclass inheriting this
  // does not alias as the paper model.
  if (typeid(*this) != typeid(CostModel))
    return false;
  H.mix(0xc057); // paper-model tag
  return true;
}

bool MeasuredCostModel::hashContent(HashStream &H) const {
  if (typeid(*this) != typeid(MeasuredCostModel))
    return false;
  H.mix(0x6ea5); // measured-model tag
  H.mixDouble(PerItem);
  H.mixDouble(PerMult);
  return true;
}

bool slin::isSelectionNode(const LinearNode &N) {
  if (N.nonZeroOffsetCount() != 0)
    return false;
  for (int J = 0; J != N.pushRate(); ++J) {
    int Ones = 0;
    for (int P = 0; P != N.peekRate(); ++P) {
      double C = N.coeff(P, J);
      if (C == 0.0)
        continue;
      if (C != 1.0)
        return false;
      ++Ones;
    }
    if (Ones != 1)
      return false;
  }
  return true;
}

double CostModel::directCost(const LinearNode &N, bool SelectionOnly) const {
  if (SelectionOnly)
    return 0.0;
  return 185.0 + 2.0 * N.pushRate() +
         static_cast<double>(N.nonZeroOffsetCount()) +
         3.0 * static_cast<double>(directMultiplyCount(N));
}

double CostModel::frequencyCost(const LinearNode &N) const {
  double U = N.pushRate();
  double E = N.peekRate();
  double O = std::max(N.popRate(), 1);
  double Dec = N.popRate() > 1
                   ? (N.popRate() - 1) * (185.0 + 4.0 * U)
                   : 0.0;
  return 185.0 + 2.0 * U + U * std::log(14.0 * E) * O + Dec;
}

MeasuredCostModel::MeasuredCostModel(Engine Eng)
    // Tree interpreter: ~12 "ops" of tape overhead per item moved and ~2
    // per inner-loop multiply. The compiled engine's op tapes and batched
    // kernels measure at roughly a quarter of both.
    : PerItem(usesCompiledArtifact(Eng) ? 3.0 : 12.0),
      PerMult(usesCompiledArtifact(Eng) ? 1.0 : 2.0) {}

double MeasuredCostModel::directCost(const LinearNode &N,
                                     bool SelectionOnly) const {
  if (SelectionOnly)
    return 0.0;
  return PerItem * (N.popRate() + N.pushRate()) +
         PerMult * static_cast<double>(directMultiplyCount(N));
}

double MeasuredCostModel::frequencyCost(const LinearNode &N) const {
  double E = N.peekRate();
  double U = N.pushRate();
  double NFFT = static_cast<double>(fft::nextPowerOfTwo(
      static_cast<size_t>(std::max(2 * N.peekRate(), 2))));
  double M = NFFT - 2.0 * E + 1.0;
  double R = M + E - 1.0;
  double PerFiring = (1.0 + U) * NFFT * std::log2(NFFT) + 2.0 * U * NFFT +
                     PerItem * (R + U * R);
  // Outputs per firing: u*r (optimized); one node firing covers r inputs
  // while the original covers o — normalize to one original firing.
  double Decim = N.popRate() > 1 ? PerItem * U * N.popRate() : 0.0;
  return PerFiring * (static_cast<double>(N.popRate()) / R) + Decim;
}

//===----------------------------------------------------------------------===//
// The DP
//===----------------------------------------------------------------------===//

namespace {

constexpr double Infinity = std::numeric_limits<double>::infinity();

enum class Transform { Any = 0, Linear = 1, Freq = 2, None = 3 };

struct Config {
  double Cost = Infinity;
  StreamPtr Str; ///< null iff infeasible

  bool feasible() const { return Str != nullptr; }
};

Config cloneConfig(const Config &C) {
  Config R;
  R.Cost = C.Cost;
  if (C.Str)
    R.Str = C.Str->clone();
  return R;
}

/// The child grid of a container (Section 4.3.2): splitjoin children are
/// columns (pipelines stack vertically); a pipeline is a single column.
struct Grid {
  const Stream *Container = nullptr;
  bool IsSplitJoin = false;
  std::vector<std::vector<const Stream *>> Columns;
  /// Firings of cell (x, y) per container steady state.
  std::vector<std::vector<int64_t>> CellReps;
  int maxHeight() const {
    size_t H = 0;
    for (const auto &Col : Columns)
      H = std::max(H, Col.size());
    return static_cast<int>(H);
  }
};

class Selector {
public:
  Selector(const Stream &Root, const SelectionOptions &Opts)
      : Opts(Opts), Model(Opts.Model ? *Opts.Model : DefaultModel),
        AM(Opts.AM ? *Opts.AM : AnalysisManager::global()),
        OwnedLA(Opts.Analysis
                    ? nullptr
                    : new LinearAnalysis(Root, makeLAOptions(Opts))),
        LA(Opts.Analysis ? *Opts.Analysis : *OwnedLA) {}

  StreamPtr run(const Stream &Root) {
    Config C = getCost(Root, Transform::Any);
    if (!C.feasible())
      fatalError("selection produced no feasible configuration");
    return C.Str->clone();
  }

private:
  static LinearAnalysis::Options makeLAOptions(const SelectionOptions &O) {
    LinearAnalysis::Options LO;
    LO.MaxMatrixElements = O.MaxMatrixElements;
    LO.AM = O.AM;
    return LO;
  }

  //===--------------------------------------------------------------------===//
  // Stream-level costs
  //===--------------------------------------------------------------------===//

  /// Cost of \p S per one aggregate steady state of \p S.
  Config getCost(const Stream &S, Transform T) {
    auto Key = std::make_pair(&S, static_cast<int>(T));
    auto It = StreamMemo.find(Key);
    if (It != StreamMemo.end())
      return cloneConfig(It->second);
    Config C = computeCost(S, T);
    auto [Ins, _] = StreamMemo.emplace(Key, std::move(C));
    return cloneConfig(Ins->second);
  }

  Config computeCost(const Stream &S, Transform T) {
    if (T == Transform::Any)
      return bestOf(getCost(S, Transform::Linear),
                    getCost(S, Transform::Freq),
                    getCost(S, Transform::None));

    if (S.kind() == StreamKind::Filter)
      return filterCost(*cast<Filter>(&S), T);

    if (S.kind() == StreamKind::FeedbackLoop) {
      if (T != Transform::None)
        return Config(); // cannot collapse across a feedback loop
      const auto *FB = cast<FeedbackLoop>(&S);
      auto Reps = childRepetitions(S);
      // Frequency conversion is suppressed inside feedback loops (block
      // buffering would deadlock the cycle).
      ++FeedbackDepth;
      Config Body = getCost(FB->body(), Transform::Any);
      Config Loop = getCost(FB->loop(), Transform::Any);
      --FeedbackDepth;
      if (!Body.feasible() || !Loop.feasible())
        return Config();
      Config C;
      C.Cost = Body.Cost * static_cast<double>(Reps[0]) +
               Loop.Cost * static_cast<double>(Reps[1]);
      C.Str = std::make_unique<FeedbackLoop>(
          FB->name(), FB->joiner(), std::move(Body.Str), std::move(Loop.Str),
          FB->splitter(), FB->enqueued());
      return C;
    }

    // Containers: full-rectangle DP.
    const Grid &G = gridFor(S);
    int W = static_cast<int>(G.Columns.size());
    return getRectCost(G, T, 0, W - 1, 0, G.maxHeight() - 1);
  }

  Config filterCost(const Filter &F, Transform T) {
    const LinearNode *N = LA.nodeFor(F);
    Config C;
    switch (T) {
    case Transform::Linear:
      if (!N)
        return Config();
      C.Cost = Model.directCost(*N, isSelectionNode(*N));
      C.Str = makeLinearFilter(*N, F.name() + "_linear", Opts.CodeGen);
      return C;
    case Transform::Freq:
      if (!N || FeedbackDepth > 0 || !canConvertToFrequency(*N, Opts.Freq))
        return Config();
      C.Cost = Model.frequencyCost(*N);
      C.Str = makeFrequencyStream(*N, F.name() + "_freq", Opts.Freq);
      return C;
    case Transform::None:
      // Linear nodes left in place still execute at direct cost;
      // nonlinear nodes are not tallied (Figure 4-5).
      C.Cost = N ? Model.directCost(*N, isSelectionNode(*N)) : 0.0;
      C.Str = F.clone();
      return C;
    case Transform::Any:
      break;
    }
    unreachable("unexpected transform");
  }

  static Config bestOf(Config A, Config B, Config C) {
    Config *Best = &A;
    if (B.feasible() && (!Best->feasible() || B.Cost < Best->Cost))
      Best = &B;
    if (C.feasible() && (!Best->feasible() || C.Cost < Best->Cost))
      Best = &C;
    return std::move(*Best);
  }

  //===--------------------------------------------------------------------===//
  // Grids
  //===--------------------------------------------------------------------===//

  const Grid &gridFor(const Stream &S) {
    auto It = Grids.find(&S);
    if (It != Grids.end())
      return It->second;
    Grid G;
    G.Container = &S;
    std::vector<int64_t> Reps = childRepetitions(S);
    if (const auto *P = dynCast<Pipeline>(&S)) {
      G.IsSplitJoin = false;
      std::vector<const Stream *> Col;
      std::vector<int64_t> ColReps;
      for (size_t Y = 0; Y != P->children().size(); ++Y) {
        Col.push_back(P->children()[Y].get());
        ColReps.push_back(Reps[Y]);
      }
      G.Columns.push_back(std::move(Col));
      G.CellReps.push_back(std::move(ColReps));
    } else {
      const auto *SJ = cast<SplitJoin>(&S);
      G.IsSplitJoin = true;
      for (size_t X = 0; X != SJ->children().size(); ++X) {
        const Stream *Child = SJ->children()[X].get();
        std::vector<const Stream *> Col;
        std::vector<int64_t> ColReps;
        if (const auto *CP = dynCast<Pipeline>(Child)) {
          std::vector<int64_t> Inner = childRepetitions(*Child);
          for (size_t Y = 0; Y != CP->children().size(); ++Y) {
            Col.push_back(CP->children()[Y].get());
            ColReps.push_back(Reps[X] * Inner[Y]);
          }
        } else {
          Col.push_back(Child);
          ColReps.push_back(Reps[X]);
        }
        G.Columns.push_back(std::move(Col));
        G.CellReps.push_back(std::move(ColReps));
      }
    }
    return Grids.emplace(&S, std::move(G)).first->second;
  }

  /// Items flowing into cell (x, y1) per container steady state.
  int64_t flowIntoCell(const Grid &G, int X, int Y) const {
    const Stream *Cell = G.Columns[static_cast<size_t>(X)]
                                  [static_cast<size_t>(Y)];
    return computeRates(*Cell).Pop *
           G.CellReps[static_cast<size_t>(X)][static_cast<size_t>(Y)];
  }

  /// Items flowing out of cell (x, y) per container steady state.
  int64_t flowOutOfCell(const Grid &G, int X, int Y) const {
    const Stream *Cell = G.Columns[static_cast<size_t>(X)]
                                  [static_cast<size_t>(Y)];
    return computeRates(*Cell).Push *
           G.CellReps[static_cast<size_t>(X)][static_cast<size_t>(Y)];
  }

  /// Interface weight vector for a cut: the raw per-container-steady-state
  /// flows. Raw flows (rather than gcd-reduced ones) keep the chunking
  /// convention globally consistent across rects that span different
  /// column subsets of the same cut.
  static std::vector<int> interfaceWeights(const std::vector<int64_t> &Flows) {
    std::vector<int> W;
    for (int64_t F : Flows) {
      assert(F > 0 && "zero interface flow");
      W.push_back(static_cast<int>(F));
    }
    return W;
  }

  //===--------------------------------------------------------------------===//
  // Rectangle costs
  //===--------------------------------------------------------------------===//

  struct RectKey {
    const Stream *Container;
    int T, X1, X2, Y1, Y2;
    bool operator<(const RectKey &O) const {
      return std::tie(Container, T, X1, X2, Y1, Y2) <
             std::tie(O.Container, O.T, O.X1, O.X2, O.Y1, O.Y2);
    }
  };

  Config getRectCost(const Grid &G, Transform T, int X1, int X2, int Y1,
                     int Y2) {
    // Clip the rect to existing cells and reject empty columns.
    for (int X = X1; X <= X2; ++X)
      if (Y1 >= static_cast<int>(G.Columns[static_cast<size_t>(X)].size()))
        return Config();
    RectKey Key{G.Container, static_cast<int>(T), X1, X2, Y1, Y2};
    auto It = RectMemo.find(Key);
    if (It != RectMemo.end())
      return cloneConfig(It->second);
    Config C = computeRectCost(G, T, X1, X2, Y1, Y2);
    auto [Ins, _] = RectMemo.emplace(std::move(Key), std::move(C));
    return cloneConfig(Ins->second);
  }

  Config computeRectCost(const Grid &G, Transform T, int X1, int X2, int Y1,
                         int Y2) {
    if (T == Transform::Any)
      return bestOf(getRectCost(G, Transform::Linear, X1, X2, Y1, Y2),
                    getRectCost(G, Transform::Freq, X1, X2, Y1, Y2),
                    getRectCost(G, Transform::None, X1, X2, Y1, Y2));

    // Single cell: descend into the child.
    int ColHeight1 =
        static_cast<int>(G.Columns[static_cast<size_t>(X1)].size());
    if (X1 == X2 && Y1 == std::min(Y2, ColHeight1 - 1)) {
      const Stream *Cell =
          G.Columns[static_cast<size_t>(X1)][static_cast<size_t>(Y1)];
      Config Inner = getCost(*Cell, T);
      if (!Inner.feasible())
        return Config();
      Inner.Cost *= static_cast<double>(
          G.CellReps[static_cast<size_t>(X1)][static_cast<size_t>(Y1)]);
      return Inner;
    }

    if (T == Transform::Linear || T == Transform::Freq)
      return collapseRect(G, T, X1, X2, Y1, Y2);

    // NONE: refactor via cuts.
    Config Best;
    // Horizontal cuts (pipeline splits). Valid only where every column
    // has cells on both sides of the pivot.
    int YTop = Y2;
    for (int X = X1; X <= X2; ++X)
      YTop = std::min(
          YTop,
          static_cast<int>(G.Columns[static_cast<size_t>(X)].size()) - 1);
    for (int Pivot = Y1; Pivot < YTop; ++Pivot) {
      Config A = getRectCost(G, Transform::Any, X1, X2, Y1, Pivot);
      Config B = getRectCost(G, Transform::Any, X1, X2, Pivot + 1, Y2);
      if (!A.feasible() || !B.feasible())
        continue;
      if (A.Cost + B.Cost < Best.Cost || !Best.feasible()) {
        auto P = std::make_unique<Pipeline>("cut");
        P->add(std::move(A.Str));
        P->add(std::move(B.Str));
        Best.Cost = A.Cost + B.Cost;
        Best.Str = std::move(P);
      }
    }
    // Vertical cuts (splitjoin splits).
    if (G.IsSplitJoin && X1 < X2) {
      for (int Pivot = X1; Pivot < X2; ++Pivot) {
        Config A = getRectCost(G, Transform::Any, X1, Pivot, Y1, Y2);
        Config B = getRectCost(G, Transform::Any, Pivot + 1, X2, Y1, Y2);
        if (!A.feasible() || !B.feasible())
          continue;
        if (A.Cost + B.Cost < Best.Cost || !Best.feasible()) {
          StreamPtr Wrapper = makeVerticalWrapper(G, X1, Pivot, X2, Y1, Y2,
                                                  std::move(A.Str),
                                                  std::move(B.Str));
          if (!Wrapper)
            continue;
          Best.Cost = A.Cost + B.Cost;
          Best.Str = std::move(Wrapper);
        }
      }
    }
    return Best;
  }

  /// Collapses rect columns' nodes into one and prices it.
  Config collapseRect(const Grid &G, Transform T, int X1, int X2, int Y1,
                      int Y2) {
    std::optional<LinearNode> Node = rectNode(G, X1, X2, Y1, Y2);
    if (!Node)
      return Config();
    Config C;
    int64_t Flow = rectInputFlow(G, X1, X2, Y1);
    double Firings =
        static_cast<double>(Flow) / static_cast<double>(Node->popRate());
    if (T == Transform::Linear) {
      C.Cost = Model.directCost(*Node, isSelectionNode(*Node)) * Firings;
      C.Str = makeLinearFilter(*Node, "collapsed_linear", Opts.CodeGen);
      return C;
    }
    if (FeedbackDepth > 0 || !canConvertToFrequency(*Node, Opts.Freq))
      return Config();
    C.Cost = Model.frequencyCost(*Node) * Firings;
    C.Str = makeFrequencyStream(*Node, "collapsed_freq", Opts.Freq);
    return C;
  }

  /// Items entering the rect per container steady state (for a duplicate
  /// splitter at the container input, the per-copy flow).
  int64_t rectInputFlow(const Grid &G, int X1, int X2, int Y1) const {
    if (Y1 == 0 && G.IsSplitJoin) {
      const auto *SJ = cast<SplitJoin>(G.Container);
      if (SJ->splitter().Kind == Splitter::Duplicate)
        return flowIntoCell(G, X1, 0);
      int64_t Sum = 0;
      for (int X = X1; X <= X2; ++X)
        Sum += flowIntoCell(G, X, 0);
      return Sum;
    }
    int64_t Sum = 0;
    for (int X = X1; X <= X2; ++X)
      Sum += flowIntoCell(G, X, Y1);
    return Sum;
  }

  /// The combined linear node of a rect, or nothing if any cell is
  /// nonlinear or the combination exceeds the size limit.
  std::optional<LinearNode> rectNode(const Grid &G, int X1, int X2, int Y1,
                                     int Y2) {
    std::vector<LinearNode> Cols;
    for (int X = X1; X <= X2; ++X) {
      int Bottom = std::min(
          Y2, static_cast<int>(G.Columns[static_cast<size_t>(X)].size()) - 1);
      std::optional<LinearNode> Col;
      for (int Y = Y1; Y <= Bottom; ++Y) {
        const LinearNode *N =
            LA.nodeFor(*G.Columns[static_cast<size_t>(X)]
                                 [static_cast<size_t>(Y)]);
        if (!N)
          return std::nullopt;
        if (!Col) {
          Col = *N;
          continue;
        }
        auto R = AM.combinePipeline(*Col, *N, Opts.MaxMatrixElements);
        if (!R->has_value())
          return std::nullopt;
        Col = **R;
      }
      Cols.push_back(std::move(*Col));
    }
    if (X1 == X2)
      return Cols.front();

    const auto *SJ = cast<SplitJoin>(G.Container);
    int H = static_cast<int>(G.Columns[static_cast<size_t>(X1)].size());
    bool FullBottom = true;
    for (int X = X1; X <= X2; ++X)
      FullBottom =
          FullBottom &&
          Y2 >= static_cast<int>(G.Columns[static_cast<size_t>(X)].size()) - 1;
    (void)H;

    // Joiner weights: original (subset) at the true bottom, interface
    // flows otherwise.
    std::vector<int> JoinW;
    if (FullBottom) {
      for (int X = X1; X <= X2; ++X)
        JoinW.push_back(SJ->joiner().Weights[static_cast<size_t>(X)]);
    } else {
      std::vector<int64_t> Flows;
      for (int X = X1; X <= X2; ++X)
        Flows.push_back(flowOutOfCell(G, X, Y2));
      JoinW = interfaceWeights(Flows);
    }

    if (Y1 == 0) {
      bool Dup = SJ->splitter().Kind == Splitter::Duplicate;
      std::vector<int> SplitW;
      if (!Dup)
        for (int X = X1; X <= X2; ++X)
          SplitW.push_back(SJ->splitter().Weights[static_cast<size_t>(X)]);
      return *AM.combineSplitJoin(Cols, Dup, SplitW, JoinW,
                                  Opts.MaxMatrixElements);
    }
    // Mid-cut rect: the input is the interleaved interface stream.
    std::vector<int64_t> InFlows;
    for (int X = X1; X <= X2; ++X)
      InFlows.push_back(flowIntoCell(G, X, Y1));
    std::vector<int> SplitW = interfaceWeights(InFlows);
    return *AM.combineSplitJoin(Cols, /*Duplicate=*/false, SplitW, JoinW,
                                Opts.MaxMatrixElements);
  }

  /// Builds the splitjoin wrapper for a vertical cut at \p XPivot.
  StreamPtr makeVerticalWrapper(const Grid &G, int X1, int XPivot, int X2,
                                int Y1, int Y2, StreamPtr A, StreamPtr B) {
    const auto *SJ = cast<SplitJoin>(G.Container);
    // Splitter: duplicate stays duplicate; roundrobin gets per-part
    // chunk weights (when Y1 == 0); mid-cut rect inputs use interface
    // flows.
    Splitter Split;
    if (Y1 == 0 && SJ->splitter().Kind == Splitter::Duplicate) {
      Split = Splitter::duplicate();
    } else if (Y1 == 0) {
      // Chunk per original splitter cycle (unreduced sums).
      int64_t SumA = 0, SumB = 0;
      for (int X = X1; X <= XPivot; ++X)
        SumA += SJ->splitter().Weights[static_cast<size_t>(X)];
      for (int X = XPivot + 1; X <= X2; ++X)
        SumB += SJ->splitter().Weights[static_cast<size_t>(X)];
      Split = Splitter::roundRobin(
          {static_cast<int>(SumA), static_cast<int>(SumB)});
    } else {
      // Chunk per interface cycle (raw flow sums, unreduced).
      int64_t SumA = 0, SumB = 0;
      for (int X = X1; X <= XPivot; ++X)
        SumA += flowIntoCell(G, X, Y1);
      for (int X = XPivot + 1; X <= X2; ++X)
        SumB += flowIntoCell(G, X, Y1);
      Split = Splitter::roundRobin(
          {static_cast<int>(SumA), static_cast<int>(SumB)});
    }
    // Joiner: one part-cycle each.
    bool FullBottom = true;
    for (int X = X1; X <= X2; ++X)
      FullBottom =
          FullBottom &&
          Y2 >= static_cast<int>(G.Columns[static_cast<size_t>(X)].size()) - 1;
    int64_t OutA = 0, OutB = 0;
    if (FullBottom) {
      for (int X = X1; X <= XPivot; ++X)
        OutA += SJ->joiner().Weights[static_cast<size_t>(X)];
      for (int X = XPivot + 1; X <= X2; ++X)
        OutB += SJ->joiner().Weights[static_cast<size_t>(X)];
    } else {
      for (int X = X1; X <= XPivot; ++X)
        OutA += flowOutOfCell(G, X, Y2);
      for (int X = XPivot + 1; X <= X2; ++X)
        OutB += flowOutOfCell(G, X, Y2);
    }
    auto Out = std::make_unique<SplitJoin>(
        "vcut", Split,
        Joiner::roundRobin({static_cast<int>(OutA), static_cast<int>(OutB)}));
    Out->add(std::move(A));
    Out->add(std::move(B));
    return Out;
  }

  SelectionOptions Opts;
  int FeedbackDepth = 0;
  CostModel DefaultModel;
  const CostModel &Model;
  AnalysisManager &AM;
  std::unique_ptr<LinearAnalysis> OwnedLA; ///< null when Analysis provided
  const LinearAnalysis &LA;
  std::map<std::pair<const Stream *, int>, Config> StreamMemo;
  std::map<RectKey, Config> RectMemo;
  std::map<const Stream *, Grid> Grids;
};

} // namespace

StreamPtr slin::selectOptimizations(const Stream &Root,
                                    const SelectionOptions &Opts) {
  Selector S(Root, Opts);
  return S.run(Root);
}
