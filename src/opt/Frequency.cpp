//===- opt/Frequency.cpp - Frequency replacement -----------------------------==//

#include "opt/Frequency.h"

#include "compiler/ArtifactStore.h"
#include "compiler/StructuralHash.h"
#include "fft/FFT.h"
#include "linear/Analysis.h"
#include "support/Diag.h"
#include "support/MathUtil.h"
#include "support/OpCounters.h"
#include "support/Serialize.h"
#include "wir/Build.h"

#include <cmath>

using namespace slin;
using namespace slin::fft;

namespace {

/// The frequency-domain filter of Transformations 5 and 6. Operates with
/// an implicit pop rate of one (a decimator downstream restores o > 1).
class FreqFilterNative : public NativeFilter {
public:
  FreqFilterNative(const LinearNode &Node, const FrequencyOptions &Opts)
      : E(Node.peekRate()), U(Node.pushRate()), Optimized(Opts.Optimized),
        Tier(Opts.Tier) {
    {
      // Content hash for structural hashing / artifact caching: the full
      // construction input (node contents + the options that shape the
      // implementation).
      HashStream HS;
      HS.mix(0xf4e9); // class tag
      HashDigest D = linearNodeHash(Node);
      HS.mix(D.Lo);
      HS.mix(D.Hi);
      HS.mix(Opts.Optimized ? 1 : 0);
      HS.mixInt(static_cast<int64_t>(Opts.Tier));
      HS.mixInt(Opts.FFTSizeOverride);
      Content = HS.digest();
    }
    N = Opts.FFTSizeOverride
            ? static_cast<size_t>(Opts.FFTSizeOverride)
            : nextPowerOfTwo(static_cast<size_t>(2 * E));
    if (!isPowerOfTwo(N) || N < static_cast<size_t>(2 * E))
      fatalError("invalid FFT size for frequency replacement");
    M = static_cast<int>(N) - 2 * E + 1;
    R = M + E - 1;

    Offsets = Node.naturalOffsets();

    // Precompute the column spectra H_j from h_j[k] = A[k, u-1-j]
    // (compile-time work; not part of the runtime FLOP counts).
    ops::CountingScope Scope(false);
    std::vector<double> HTime(N, 0.0);
    if (Tier == FFTTier::PlannedReal) {
      Plan = std::make_shared<FFTPlan>(N);
      HReal.resize(static_cast<size_t>(U), std::vector<double>(N));
      for (int J = 0; J != U; ++J) {
        std::fill(HTime.begin(), HTime.end(), 0.0);
        for (int K = 0; K != E; ++K)
          HTime[static_cast<size_t>(K)] = Node.coeff(E - 1 - K, J);
        Plan->forwardReal(HTime.data(), HReal[static_cast<size_t>(J)].data());
      }
      XF.resize(N);
      YF.resize(N);
    } else {
      HCplx.resize(static_cast<size_t>(U), std::vector<Complex>(N));
      for (int J = 0; J != U; ++J) {
        std::vector<Complex> Col(N, Complex(0, 0));
        for (int K = 0; K != E; ++K)
          Col[static_cast<size_t>(K)] = Node.coeff(E - 1 - K, J);
        simpleFFT(Col, false);
        HCplx[static_cast<size_t>(J)] = std::move(Col);
      }
      XC.resize(N);
      YC.resize(N);
    }
    XBuf.resize(N);
    YCols.resize(static_cast<size_t>(U), std::vector<double>(N));
    Partials.assign(static_cast<size_t>(U) * std::max(E - 1, 0), 0.0);
  }

  int peekRate() const override { return Optimized ? R : M + E - 1; }
  int popRate() const override { return Optimized ? R : M; }
  int pushRate() const override { return U * (Optimized ? R : M); }

  bool hasInitWork() const override { return Optimized; }
  int initPeekRate() const override { return R; }
  int initPopRate() const override { return R; }
  int initPushRate() const override { return U * M; }

  void fire(wir::Tape &T) override {
    computeColumns(T);
    if (!Optimized) {
      emitFull(T);
      for (int I = 0; I != M; ++I)
        T.pop();
      return;
    }
    // Optimized steady firing: complete the previous block's partial sums
    // first (outputs m..m+e-2 of the previous window), then emit the m
    // full outputs, then consume the whole non-overlapping block.
    for (int I = 0; I != E - 1; ++I) {
      for (int J = 0; J != U; ++J) {
        double &P = Partials[static_cast<size_t>(J) * (E - 1) + I];
        T.push(ops::add(ops::add(YCols[static_cast<size_t>(J)]
                                      [static_cast<size_t>(I)],
                                 P),
                        Offsets[static_cast<size_t>(J)]));
        P = YCols[static_cast<size_t>(J)][static_cast<size_t>(M + E - 1 + I)];
      }
    }
    emitFull(T);
    for (int I = 0; I != R; ++I)
      T.pop();
  }

  void fireInit(wir::Tape &T) override {
    assert(Optimized && "init firing on a naive frequency filter");
    computeColumns(T);
    emitFull(T);
    for (int I = 0; I != E - 1; ++I)
      for (int J = 0; J != U; ++J)
        Partials[static_cast<size_t>(J) * (E - 1) + I] =
            YCols[static_cast<size_t>(J)][static_cast<size_t>(M + E - 1 + I)];
    for (int I = 0; I != R; ++I)
      T.pop();
  }

  std::unique_ptr<NativeFilter> clone() const override {
    auto C = std::make_unique<FreqFilterNative>(*this);
    // The copy shares the FFT plan, whose real-path Scratch is mutable
    // per-call state: clones run concurrently on the parallel backend's
    // workers, so each gets a private plan (the twiddle tables are cheap
    // to rebuild).
    if (C->Plan)
      C->Plan = std::make_shared<FFTPlan>(C->N);
    return C;
  }

  const char *serialTag() const override { return "freq"; }

  void serializePayload(serial::Writer &W) const override {
    W.u64(Content.Lo);
    W.u64(Content.Hi);
    W.i32(E);
    W.i32(U);
    W.boolean(Optimized);
    W.u8(static_cast<uint8_t>(Tier));
    W.u64(N);
    serializeVector(W, Offsets);
    // The precomputed column spectra, bit-exact: recomputing them at load
    // would also be deterministic, but storing them keeps the load path
    // trivially identical to the compiled prototype.
    if (Tier == FFTTier::PlannedReal) {
      for (const std::vector<double> &Col : HReal)
        W.f64s(Col);
    } else {
      for (const std::vector<Complex> &Col : HCplx)
        for (const Complex &V : Col) {
          W.f64(V.real());
          W.f64(V.imag());
        }
    }
  }

  /// Reconstructs a prototype from serializePayload bytes. Returns null
  /// on malformed input (the caller treats it as a cache miss).
  static std::unique_ptr<NativeFilter> deserialize(serial::Reader &R) {
    std::unique_ptr<FreqFilterNative> F(new FreqFilterNative());
    F->Content.Lo = R.u64();
    F->Content.Hi = R.u64();
    F->E = R.i32();
    F->U = R.i32();
    F->Optimized = R.boolean();
    uint8_t Tier = R.u8();
    F->Tier = static_cast<FFTTier>(Tier);
    F->N = R.u64();
    if (!R.ok() || Tier > static_cast<uint8_t>(FFTTier::SimpleComplex) ||
        F->E < 1 || F->U < 1 || !isPowerOfTwo(F->N) ||
        F->N < static_cast<size_t>(2 * F->E) || F->N > (size_t(1) << 20))
      return nullptr;
    F->M = static_cast<int>(F->N) - 2 * F->E + 1;
    F->R = F->M + F->E - 1;
    if (!deserializeVector(R, F->Offsets) ||
        F->Offsets.size() != static_cast<size_t>(F->U))
      return nullptr;
    if (F->Tier == FFTTier::PlannedReal) {
      F->HReal.resize(static_cast<size_t>(F->U));
      for (std::vector<double> &Col : F->HReal) {
        Col = R.f64s();
        if (Col.size() != F->N)
          return nullptr;
      }
      F->Plan = std::make_shared<FFTPlan>(F->N);
      F->XF.resize(F->N);
      F->YF.resize(F->N);
    } else {
      // The spectra must be backed by wire bytes (16 per complex entry)
      // before anything is allocated — a checksum-valid but malformed
      // header must degrade to a cache miss, never an OOM crash.
      if (static_cast<uint64_t>(F->U) * F->N >
          R.remaining() / (2 * sizeof(double)))
        return nullptr;
      F->HCplx.resize(static_cast<size_t>(F->U),
                      std::vector<Complex>(F->N));
      for (std::vector<Complex> &Col : F->HCplx)
        for (Complex &V : Col) {
          double Re = R.f64();
          double Im = R.f64();
          V = Complex(Re, Im);
        }
      F->XC.resize(F->N);
      F->YC.resize(F->N);
    }
    F->XBuf.resize(F->N);
    F->YCols.resize(static_cast<size_t>(F->U), std::vector<double>(F->N));
    F->Partials.assign(
        static_cast<size_t>(F->U) * std::max(F->E - 1, 0), 0.0);
    if (!R.ok())
      return nullptr;
    return F;
  }

  bool hashContent(HashStream &H) const override {
    H.mix(Content.Lo);
    H.mix(Content.Hi);
    return true;
  }

  /// The optimized form carries the previous block's partial sums across
  /// firings; they are fully rewritten every firing, so one replayed
  /// firing reconstructs them. The naive form is scratch-only.
  int stateDepthFirings() const override { return Optimized ? 1 : 0; }

private:
  FreqFilterNative() = default; ///< deserialize target only

  HashDigest Content;
  /// Reads the input window, transforms it, and fills YCols[j] with the
  /// circular convolution against column j.
  void computeColumns(wir::Tape &T) {
    int Window = M + E - 1;
    for (int I = 0; I != Window; ++I)
      XBuf[static_cast<size_t>(I)] = T.peek(I);
    std::fill(XBuf.begin() + Window, XBuf.end(), 0.0);

    if (Tier == FFTTier::PlannedReal) {
      Plan->forwardReal(XBuf.data(), XF.data());
      for (int J = 0; J != U; ++J) {
        multiplyHalfComplex(N, XF.data(), HReal[static_cast<size_t>(J)].data(),
                            YF.data());
        Plan->inverseReal(YF.data(), YCols[static_cast<size_t>(J)].data());
      }
      return;
    }
    for (size_t I = 0; I != N; ++I)
      XC[I] = Complex(XBuf[I], 0.0);
    simpleFFT(XC, false);
    for (int J = 0; J != U; ++J) {
      const auto &H = HCplx[static_cast<size_t>(J)];
      for (size_t I = 0; I != N; ++I) {
        // Counted complex multiply (4 muls + 2 adds).
        double Re = ops::sub(ops::mul(XC[I].real(), H[I].real()),
                             ops::mul(XC[I].imag(), H[I].imag()));
        double Im = ops::add(ops::mul(XC[I].real(), H[I].imag()),
                             ops::mul(XC[I].imag(), H[I].real()));
        YC[I] = Complex(Re, Im);
      }
      simpleFFT(YC, true);
      for (size_t I = 0; I != N; ++I)
        YCols[static_cast<size_t>(J)][I] = YC[I].real();
    }
  }

  /// Pushes the m complete outputs y[i+e-1] + b.
  void emitFull(wir::Tape &T) {
    for (int I = 0; I != M; ++I)
      for (int J = 0; J != U; ++J)
        T.push(ops::add(
            YCols[static_cast<size_t>(J)][static_cast<size_t>(I + E - 1)],
            Offsets[static_cast<size_t>(J)]));
  }

  int E;
  int U;
  bool Optimized;
  FFTTier Tier;
  size_t N;
  int M;
  int R;
  Vector Offsets;
  std::shared_ptr<FFTPlan> Plan;
  std::vector<std::vector<double>> HReal;
  std::vector<std::vector<Complex>> HCplx;
  std::vector<double> XBuf, XF, YF;
  std::vector<Complex> XC, YC;
  std::vector<std::vector<double>> YCols;
  std::vector<double> Partials; ///< U x (E-1)
};

/// The decimator of Transformation 5: keeps the u outputs of the first of
/// every o sliding positions.
std::unique_ptr<Filter> makeDecimatorFilter(int O, int U,
                                            const std::string &Name) {
  using namespace slin::wir;
  using namespace slin::wir::build;
  StmtList Body;
  Body.push_back(loop("i", cst(0), cst(U), stmts(push(pop()))));
  Body.push_back(loop("i", cst(0), cst(U * (O - 1)), stmts(popStmt())));
  WorkFunction W(U * O, U * O, U, std::move(Body));
  return std::make_unique<Filter>(Name, std::vector<wir::FieldDef>{},
                                  std::move(W));
}

} // namespace

void slin::registerFrequencyNativeSerialization() {
  registerNativeFilterFactory(
      "freq", [](serial::Reader &R) { return FreqFilterNative::deserialize(R); });
}

bool slin::canConvertToFrequency(const LinearNode &N,
                                 const FrequencyOptions &Opts) {
  if (N.pushRate() < 1 || N.peekRate() < 1)
    return false;
  if (N.popRate() > Opts.PopLimit)
    return false;
  if (Opts.FFTSizeOverride &&
      (!isPowerOfTwo(static_cast<size_t>(Opts.FFTSizeOverride)) ||
       Opts.FFTSizeOverride < 2 * N.peekRate()))
    return false;
  // Bound the FFT size so channel buffers stay reasonable.
  return N.peekRate() <= (1 << 13);
}

StreamPtr slin::makeFrequencyStream(const LinearNode &N,
                                    const std::string &Name,
                                    const FrequencyOptions &Opts) {
  assert(canConvertToFrequency(N, Opts) && "node not convertible");
  auto P = std::make_unique<Pipeline>(Name);
  P->add(std::make_unique<Filter>(Name + ".fft",
                                  std::make_unique<FreqFilterNative>(N, Opts)));
  if (N.popRate() > 1)
    P->add(makeDecimatorFilter(N.popRate(), N.pushRate(), Name + ".decimate"));
  return P;
}

double slin::theoreticalFreqMultsPerOutput(int E, int FFTSize) {
  double N = FFTSize;
  double LgN = std::log2(N);
  double M = N - 2.0 * E + 1.0;
  assert(M >= 1.0 && "FFT size too small");
  // Forward + inverse real FFT at (N/2)lg N multiplies each, plus ~2N for
  // the half-complex pointwise product, amortized over m outputs.
  return (N * LgN + 2.0 * N) / M;
}

//===----------------------------------------------------------------------===//
// Replacement pass
//===----------------------------------------------------------------------===//

namespace {

class FrequencyReplacer {
public:
  FrequencyReplacer(const LinearAnalysis &LA, bool Combine,
                    const FrequencyOptions &Opts)
      : LA(LA), Combine(Combine), Opts(Opts) {}

  StreamPtr rewrite(const Stream &S) {
    // Frequency implementations buffer whole blocks (r = m+e-1 items),
    // which raises latency beyond what a feedback loop's enqueued items
    // can cover: never convert inside a feedbackloop.
    const LinearNode *N =
        !InFeedbackLoop && (Combine || S.kind() == StreamKind::Filter)
            ? LA.nodeFor(S)
            : nullptr;
    if (N && canConvertToFrequency(*N, Opts))
      return makeFrequencyStream(*N, S.name() + "_freq", Opts);

    switch (S.kind()) {
    case StreamKind::Filter:
      return S.clone();
    case StreamKind::Pipeline:
      return rewritePipeline(*cast<Pipeline>(&S));
    case StreamKind::SplitJoin: {
      const auto *SJ = cast<SplitJoin>(&S);
      auto Out = std::make_unique<SplitJoin>(SJ->name(), SJ->splitter(),
                                             SJ->joiner());
      for (const StreamPtr &C : SJ->children())
        Out->add(rewrite(*C));
      return Out;
    }
    case StreamKind::FeedbackLoop: {
      const auto *FB = cast<FeedbackLoop>(&S);
      bool Saved = InFeedbackLoop;
      InFeedbackLoop = true;
      auto Out = std::make_unique<FeedbackLoop>(
          FB->name(), FB->joiner(), rewrite(FB->body()), rewrite(FB->loop()),
          FB->splitter(), FB->enqueued());
      InFeedbackLoop = Saved;
      return Out;
    }
    }
    unreachable("unknown stream kind");
  }

private:
  StreamPtr rewritePipeline(const Pipeline &P) {
    auto Out = std::make_unique<Pipeline>(P.name());
    const auto &Children = P.children();
    size_t I = 0;
    while (I != Children.size()) {
      const LinearNode *N =
          Combine && !InFeedbackLoop ? LA.nodeFor(*Children[I]) : nullptr;
      if (!N) {
        Out->add(rewrite(*Children[I]));
        ++I;
        continue;
      }
      // Maximal linear run; convert the folded node if possible, else
      // fall back to per-child handling.
      std::vector<const LinearNode *> Run = {N};
      size_t End = I + 1;
      while (End != Children.size()) {
        const LinearNode *M = LA.nodeFor(*Children[End]);
        if (!M)
          break;
        Run.push_back(M);
        ++End;
      }
      LinearNode Folded = Run.size() == 1 ? *Run.front() : foldRun(Run);
      if (canConvertToFrequency(Folded, Opts)) {
        Out->add(makeFrequencyStream(
            Folded, P.name() + "_freq" + std::to_string(I), Opts));
        I = End;
        continue;
      }
      for (size_t K = I; K != End; ++K)
        Out->add(rewrite(*Children[K]));
      I = End;
    }
    return Out;
  }

  static LinearNode foldRun(const std::vector<const LinearNode *> &Run) {
    LinearNode Acc = *Run.front();
    for (size_t I = 1; I != Run.size(); ++I)
      Acc = combinePipeline(Acc, *Run[I]);
    return Acc;
  }

  const LinearAnalysis &LA;
  bool Combine;
  FrequencyOptions Opts;
  bool InFeedbackLoop = false;
};

} // namespace

StreamPtr slin::replaceFrequency(const Stream &Root, bool Combine,
                                 const FrequencyOptions &Opts) {
  LinearAnalysis LA(Root);
  return replaceFrequency(Root, LA, Combine, Opts);
}

StreamPtr slin::replaceFrequency(const Stream &Root, const LinearAnalysis &LA,
                                 bool Combine, const FrequencyOptions &Opts) {
  return FrequencyReplacer(LA, Combine, Opts).rewrite(Root);
}
