//===- opt/LinearReplacement.cpp - Linear replacement ------------------------==//

#include "opt/LinearReplacement.h"

#include "compiler/ArtifactStore.h"
#include "compiler/StructuralHash.h"
#include "matrix/Kernels.h"
#include "support/Diag.h"
#include "support/Serialize.h"
#include "wir/Build.h"

using namespace slin;
using namespace slin::wir;
using namespace slin::wir::build;

//===----------------------------------------------------------------------===//
// Code generation
//===----------------------------------------------------------------------===//

namespace {

/// Unrolled form: push(c0*peek(p0) + c1*peek(p1) + ... + b) per output,
/// skipping zero coefficients entirely.
std::unique_ptr<Filter> makeUnrolled(const LinearNode &N,
                                     const std::string &Name) {
  StmtList Body;
  for (int J = 0; J != N.pushRate(); ++J) {
    ExprPtr Sum;
    for (int P = 0; P != N.peekRate(); ++P) {
      double C = N.coeff(P, J);
      if (C == 0.0)
        continue;
      ExprPtr Term = C == 1.0 ? peek(P) : mul(cst(C), peek(P));
      Sum = Sum ? add(std::move(Sum), std::move(Term)) : std::move(Term);
    }
    if (N.offset(J) != 0.0 || !Sum) {
      ExprPtr Off = cst(N.offset(J));
      Sum = Sum ? add(std::move(Sum), std::move(Off)) : std::move(Off);
    }
    Body.push_back(push(std::move(Sum)));
  }
  for (int P = 0; P != N.popRate(); ++P)
    Body.push_back(popStmt());
  WorkFunction W(N.peekRate(), N.popRate(), N.pushRate(), std::move(Body));
  return std::make_unique<Filter>(Name, std::vector<FieldDef>{},
                                  std::move(W));
}

/// Returns the uniform stride of \p Positions, or 0 if they are not an
/// arithmetic progression. Combined nodes are frequently "polyphase":
/// their nonzeros sit at a fixed stride (interleaved channels, upsampled
/// filters), and a strided loop skips the interior zeros entirely.
int uniformStride(const std::vector<int> &Positions) {
  if (Positions.size() < 2)
    return 1;
  int Stride = Positions[1] - Positions[0];
  for (size_t I = 2; I != Positions.size(); ++I)
    if (Positions[I] - Positions[I - 1] != Stride)
      return 0;
  return Stride;
}

/// Banded form (Figure 5-7): per-column coefficient arrays with the zero
/// entries trimmed from both ends, multiplied in a loop. Columns whose
/// nonzeros lie on a uniform stride use a strided loop over the packed
/// coefficients instead of walking the zero-riddled band.
std::unique_ptr<Filter> makeBanded(const LinearNode &N,
                                   const std::string &Name) {
  std::vector<FieldDef> Fields;
  StmtList Body;
  for (int J = 0; J != N.pushRate(); ++J) {
    std::vector<int> Positions;
    for (int P = 0; P != N.peekRate(); ++P)
      if (N.coeff(P, J) != 0.0)
        Positions.push_back(P);
    std::string FieldName = "a" + std::to_string(J);
    std::string SumVar = "sum" + std::to_string(J);

    if (Positions.empty()) {
      Body.push_back(push(cst(N.offset(J))));
      continue;
    }

    int Stride = uniformStride(Positions);
    std::vector<double> Coeffs;
    int First = Positions.front();
    if (Stride > 0) {
      for (int P : Positions)
        Coeffs.push_back(N.coeff(P, J));
    } else {
      Stride = 1;
      for (int P = First; P <= Positions.back(); ++P)
        Coeffs.push_back(N.coeff(P, J));
    }
    int Len = static_cast<int>(Coeffs.size());
    Fields.push_back(FieldDef::constArray(FieldName, std::move(Coeffs)));
    Body.push_back(assign(SumVar, cst(0)));
    ExprPtr Index =
        Stride == 1 ? add(cst(First), vr("i"))
                    : add(cst(First), mul(cst(Stride), vr("i")));
    Body.push_back(loop(
        "i", cst(0), cst(Len),
        stmts(assign(SumVar, add(vr(SumVar), mul(fldAt(FieldName, vr("i")),
                                                 peek(std::move(Index))))))));
    ExprPtr Result = N.offset(J) == 0.0
                         ? vr(SumVar)
                         : add(vr(SumVar), cst(N.offset(J)));
    Body.push_back(push(std::move(Result)));
  }
  for (int P = 0; P != N.popRate(); ++P)
    Body.push_back(popStmt());
  WorkFunction W(N.peekRate(), N.popRate(), N.pushRate(), std::move(Body));
  return std::make_unique<Filter>(Name, std::move(Fields), std::move(W));
}

/// Content hash over a linear node's rates and coefficients, computed at
/// construction so the runtime kernels need not expose their packed data.
HashDigest linearContentDigest(uint64_t ClassTag, const LinearNode &N) {
  HashStream H;
  H.mix(ClassTag);
  HashDigest D = linearNodeHash(N);
  H.mix(D.Lo);
  H.mix(D.Hi);
  return H.digest();
}

/// ATLAS-substitute: native filter calling the tuned gemv kernel.
class TunedLinearFilter : public NativeFilter {
public:
  explicit TunedLinearFilter(const LinearNode &N)
      : E(N.peekRate()), O(N.popRate()), U(N.pushRate()),
        Content(linearContentDigest(0x7e4ed, N)),
        Kernel(N.naturalMatrix(), N.naturalOffsets()), In(E), Out(U) {}

  int peekRate() const override { return E; }
  int popRate() const override { return O; }
  int pushRate() const override { return U; }

  void fire(wir::Tape &T) override {
    for (int P = 0; P != E; ++P)
      In[static_cast<size_t>(P)] = T.peek(P);
    Kernel.apply(In.data(), Out.data());
    for (int J = 0; J != U; ++J)
      T.push(Out[static_cast<size_t>(J)]);
    for (int P = 0; P != O; ++P)
      T.pop();
  }

  bool fireBatch(const double *BatchIn, double *BatchOut, int K) override {
    Kernel.applyBatched(BatchIn, BatchOut, K, O);
    return true;
  }

  std::unique_ptr<NativeFilter> clone() const override {
    return std::make_unique<TunedLinearFilter>(*this);
  }

  bool hashContent(HashStream &H) const override {
    H.mix(Content.Lo);
    H.mix(Content.Hi);
    return true;
  }

  /// In/Out are per-firing scratch, fully rewritten before use.
  int stateDepthFirings() const override { return 0; }

  const char *serialTag() const override { return "tuned-linear"; }

  void serializePayload(serial::Writer &W) const override {
    W.i32(E);
    W.i32(O);
    W.i32(U);
    W.u64(Content.Lo);
    W.u64(Content.Hi);
    Kernel.serialize(W);
  }

  static std::unique_ptr<NativeFilter> deserialize(serial::Reader &R) {
    std::unique_ptr<TunedLinearFilter> F(new TunedLinearFilter());
    F->E = R.i32();
    F->O = R.i32();
    F->U = R.i32();
    F->Content.Lo = R.u64();
    F->Content.Hi = R.u64();
    if (!R.ok() || F->E < 0 || F->O < 0 || F->U < 0 ||
        !TunedGemv::deserialize(R, F->Kernel) ||
        F->Kernel.peekRate() != F->E || F->Kernel.pushRate() != F->U)
      return nullptr;
    F->In.resize(static_cast<size_t>(F->E));
    F->Out.resize(static_cast<size_t>(F->U));
    return F;
  }

private:
  TunedLinearFilter() : Kernel(Matrix(), Vector()) {}

  int E = 0, O = 0, U = 0;
  HashDigest Content;
  TunedGemv Kernel;
  std::vector<double> In;
  std::vector<double> Out;
};

/// Banded packed kernel as a native filter: the Figure 5-7 zero-skipping
/// multiply, with a batched blocked-gemm path for the compiled engine.
class PackedLinearFilter : public NativeFilter {
public:
  explicit PackedLinearFilter(const LinearNode &N)
      : E(N.peekRate()), O(N.popRate()), U(N.pushRate()),
        Content(linearContentDigest(0xbacced, N)),
        Kernel(N.naturalMatrix(), N.naturalOffsets()), In(E), Out(U) {}

  int peekRate() const override { return E; }
  int popRate() const override { return O; }
  int pushRate() const override { return U; }

  void fire(wir::Tape &T) override {
    for (int P = 0; P != E; ++P)
      In[static_cast<size_t>(P)] = T.peek(P);
    Kernel.applyBanded(In.data(), Out.data());
    for (int J = 0; J != U; ++J)
      T.push(Out[static_cast<size_t>(J)]);
    for (int P = 0; P != O; ++P)
      T.pop();
  }

  bool fireBatch(const double *BatchIn, double *BatchOut, int K) override {
    Kernel.applyBatched(BatchIn, BatchOut, K, O);
    return true;
  }

  bool emitBatchCxx(std::string &Src, const std::string &Fn) const override {
    Kernel.emitBatchedCxx(Src, Fn, O);
    return true;
  }

  std::unique_ptr<NativeFilter> clone() const override {
    return std::make_unique<PackedLinearFilter>(*this);
  }

  bool hashContent(HashStream &H) const override {
    H.mix(Content.Lo);
    H.mix(Content.Hi);
    return true;
  }

  /// In/Out are per-firing scratch, fully rewritten before use.
  int stateDepthFirings() const override { return 0; }

  const char *serialTag() const override { return "packed-linear"; }

  void serializePayload(serial::Writer &W) const override {
    W.i32(E);
    W.i32(O);
    W.i32(U);
    W.u64(Content.Lo);
    W.u64(Content.Hi);
    Kernel.serialize(W);
  }

  static std::unique_ptr<NativeFilter> deserialize(serial::Reader &R) {
    std::unique_ptr<PackedLinearFilter> F(new PackedLinearFilter());
    F->E = R.i32();
    F->O = R.i32();
    F->U = R.i32();
    F->Content.Lo = R.u64();
    F->Content.Hi = R.u64();
    if (!R.ok() || F->E < 0 || F->O < 0 || F->U < 0 ||
        !PackedLinearKernel::deserialize(R, F->Kernel) ||
        F->Kernel.peekRate() != F->E || F->Kernel.pushRate() != F->U)
      return nullptr;
    F->In.resize(static_cast<size_t>(F->E));
    F->Out.resize(static_cast<size_t>(F->U));
    return F;
  }

private:
  PackedLinearFilter() : Kernel(Matrix(), Vector()) {}

  int E = 0, O = 0, U = 0;
  HashDigest Content;
  PackedLinearKernel Kernel;
  std::vector<double> In;
  std::vector<double> Out;
};

} // namespace

void slin::registerLinearNativeSerialization() {
  registerNativeFilterFactory("tuned-linear", [](serial::Reader &R) {
    return TunedLinearFilter::deserialize(R);
  });
  registerNativeFilterFactory("packed-linear", [](serial::Reader &R) {
    return PackedLinearFilter::deserialize(R);
  });
}

size_t slin::directMultiplyCount(const LinearNode &N) {
  size_t NNZ = N.nonZeroCount();
  if (2 * NNZ < 256)
    return NNZ; // unrolled: one multiply per nonzero coefficient
  size_t Total = 0;
  for (int J = 0; J != N.pushRate(); ++J) {
    std::vector<int> Positions;
    for (int P = 0; P != N.peekRate(); ++P)
      if (N.coeff(P, J) != 0.0)
        Positions.push_back(P);
    if (Positions.empty())
      continue;
    if (uniformStride(Positions) > 0)
      Total += Positions.size();
    else
      Total += static_cast<size_t>(Positions.back() - Positions.front() + 1);
  }
  return Total;
}

std::unique_ptr<Filter> slin::makeLinearFilter(const LinearNode &N,
                                               const std::string &Name,
                                               LinearCodeGenStyle Style) {
  if (Style == LinearCodeGenStyle::Auto)
    Style = 2 * N.nonZeroCount() < 256 ? LinearCodeGenStyle::Unrolled
                                       : LinearCodeGenStyle::Banded;
  switch (Style) {
  case LinearCodeGenStyle::Unrolled:
    return makeUnrolled(N, Name);
  case LinearCodeGenStyle::Banded:
    return makeBanded(N, Name);
  case LinearCodeGenStyle::TunedNative:
    return std::make_unique<Filter>(Name,
                                    std::make_unique<TunedLinearFilter>(N));
  case LinearCodeGenStyle::PackedNative:
    return std::make_unique<Filter>(Name,
                                    std::make_unique<PackedLinearFilter>(N));
  case LinearCodeGenStyle::Auto:
    break;
  }
  unreachable("unhandled codegen style");
}

//===----------------------------------------------------------------------===//
// Replacement pass
//===----------------------------------------------------------------------===//

LinearNode
slin::foldPipelineNodes(const std::vector<const LinearNode *> &Nodes) {
  assert(!Nodes.empty() && "empty run");
  LinearNode Acc = *Nodes.front();
  for (size_t I = 1; I != Nodes.size(); ++I)
    Acc = combinePipeline(Acc, *Nodes[I]);
  return Acc;
}

namespace {

class LinearReplacer {
public:
  LinearReplacer(const LinearAnalysis &LA, bool Combine,
                 LinearCodeGenStyle Style)
      : LA(LA), Combine(Combine), Style(Style) {}

  StreamPtr rewrite(const Stream &S) {
    // Whole-stream replacement (containers and filters alike).
    if (const LinearNode *N = Combine || S.kind() == StreamKind::Filter
                                  ? LA.nodeFor(S)
                                  : nullptr)
      return makeLinearFilter(*N, S.name() + "_linear", Style);

    switch (S.kind()) {
    case StreamKind::Filter:
      return S.clone();
    case StreamKind::Pipeline:
      return rewritePipeline(*cast<Pipeline>(&S));
    case StreamKind::SplitJoin: {
      const auto *SJ = cast<SplitJoin>(&S);
      auto Out = std::make_unique<SplitJoin>(SJ->name(), SJ->splitter(),
                                             SJ->joiner());
      for (const StreamPtr &C : SJ->children())
        Out->add(rewrite(*C));
      return Out;
    }
    case StreamKind::FeedbackLoop: {
      const auto *FB = cast<FeedbackLoop>(&S);
      return std::make_unique<FeedbackLoop>(
          FB->name(), FB->joiner(), rewrite(FB->body()), rewrite(FB->loop()),
          FB->splitter(), FB->enqueued());
    }
    }
    unreachable("unknown stream kind");
  }

private:
  StreamPtr rewritePipeline(const Pipeline &P) {
    auto Out = std::make_unique<Pipeline>(P.name());
    const auto &Children = P.children();
    size_t I = 0;
    while (I != Children.size()) {
      const LinearNode *N = LA.nodeFor(*Children[I]);
      if (!N) {
        Out->add(rewrite(*Children[I]));
        ++I;
        continue;
      }
      if (!Combine) {
        Out->add(rewrite(*Children[I]));
        ++I;
        continue;
      }
      // Maximal run of linear siblings starting at I.
      std::vector<const LinearNode *> Run = {N};
      size_t End = I + 1;
      while (End != Children.size()) {
        const LinearNode *M = LA.nodeFor(*Children[End]);
        if (!M)
          break;
        Run.push_back(M);
        ++End;
      }
      LinearNode Folded = foldPipelineNodes(Run);
      Out->add(makeLinearFilter(Folded,
                                P.name() + "_linear" + std::to_string(I),
                                Style));
      I = End;
    }
    return Out;
  }

  const LinearAnalysis &LA;
  bool Combine;
  LinearCodeGenStyle Style;
};

} // namespace

StreamPtr slin::replaceLinear(const Stream &Root, bool Combine,
                              LinearCodeGenStyle Style) {
  LinearAnalysis LA(Root);
  return replaceLinear(Root, LA, Combine, Style);
}

StreamPtr slin::replaceLinear(const Stream &Root, const LinearAnalysis &LA,
                              bool Combine, LinearCodeGenStyle Style) {
  return LinearReplacer(LA, Combine, Style).rewrite(Root);
}
