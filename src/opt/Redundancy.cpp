//===- opt/Redundancy.cpp - Redundancy elimination ----------------------------==//

#include "opt/Redundancy.h"

#include "linear/Analysis.h"
#include "support/Diag.h"
#include "support/MathUtil.h"
#include "wir/Build.h"

using namespace slin;
using namespace slin::wir;
using namespace slin::wir::build;

//===----------------------------------------------------------------------===//
// Algorithm 3
//===----------------------------------------------------------------------===//

RedundancyInfo slin::analyzeRedundancy(const LinearNode &N) {
  RedundancyInfo Info;
  int E = N.peekRate(), O = N.popRate(), U = N.pushRate();
  assert(O > 0 && "redundancy analysis requires a consuming node");

  // Enumerate, for each future firing f whose window still overlaps the
  // current tape, the LCTs it computes over currently-visible items. In
  // paper coordinates: row >= f*o, pos = f*o + e - 1 - row. Zero
  // coefficients generate no product and are skipped.
  int Firings = static_cast<int>(ceilDiv(E, O));
  for (int F = 0; F != Firings; ++F) {
    for (int Row = F * O; Row < E; ++Row) {
      for (int Col = 0; Col != U; ++Col) {
        double Coeff =
            N.matrix().at(static_cast<size_t>(Row), static_cast<size_t>(Col));
        if (Coeff == 0.0)
          continue;
        LCT T{Coeff, F * O + E - 1 - Row};
        Info.UseMap[T].insert(F);
      }
    }
  }

  for (const auto &[T, Uses] : Info.UseMap)
    if (*Uses.begin() == 0 && *Uses.rbegin() > 0)
      Info.Reused.insert(T);

  for (const LCT &T : Info.Reused)
    Info.CompMap[T] = {T, 0};
  for (const LCT &T : Info.Reused) {
    for (int F : Info.UseMap.at(T)) {
      if (F == 0)
        continue;
      LCT NT{T.Coeff, T.Pos - F * O};
      auto UseIt = Info.UseMap.find(NT);
      if (UseIt == Info.UseMap.end() || *UseIt->second.begin() != 0)
        continue;
      auto It = Info.CompMap.find(NT);
      if (It == Info.CompMap.end() || F > It->second.second)
        Info.CompMap[NT] = {T, F};
    }
  }
  return Info;
}

double RedundancyInfo::redundantFraction(const LinearNode &N) const {
  // Products the direct implementation performs per firing: one per
  // nonzero cell. Products the cached implementation performs: one store
  // per reused tuple plus one per term with no cache mapping.
  size_t Direct = 0, Cached = Reused.size();
  for (int P = 0; P != N.peekRate(); ++P)
    for (int J = 0; J != N.pushRate(); ++J) {
      double C = N.coeff(P, J);
      if (C == 0.0)
        continue;
      ++Direct;
      LCT T{C, P};
      auto It = CompMap.find(T);
      if (It == CompMap.end())
        ++Cached;
    }
  if (Direct == 0)
    return 0.0;
  return 1.0 - static_cast<double>(std::min(Cached, Direct)) /
                   static_cast<double>(Direct);
}

//===----------------------------------------------------------------------===//
// Transformation 7
//===----------------------------------------------------------------------===//

std::unique_ptr<Filter> slin::makeRedundancyFilter(const LinearNode &N,
                                                   const std::string &Name) {
  RedundancyInfo Info = analyzeRedundancy(N);
  int E = N.peekRate(), O = N.popRate(), U = N.pushRate();

  // Stable tuple numbering for field names.
  std::map<LCT, int> TupleIdx;
  for (const LCT &T : Info.Reused) {
    int Idx = static_cast<int>(TupleIdx.size());
    TupleIdx[T] = Idx;
  }
  auto StateName = [](int Idx) { return "ts" + std::to_string(Idx); };
  auto IndexName = [](int Idx) { return "ti" + std::to_string(Idx); };

  std::vector<FieldDef> Fields;
  for (const auto &[T, Idx] : TupleIdx) {
    int Size = Info.maxUse(T) + 1;
    Fields.push_back(FieldDef::mutableArray(
        StateName(Idx), std::vector<double>(static_cast<size_t>(Size), 0.0)));
    Fields.push_back(FieldDef::mutableScalar(IndexName(Idx), 0.0));
  }

  // Shared output-emission code: terms are loaded from tuple state where
  // compMap provides a source, computed directly otherwise.
  auto MakeBody = [&]() {
    StmtList Body;
    // 1. Store this firing's reused products at tupleIndex.
    for (const auto &[T, Idx] : TupleIdx)
      Body.push_back(fldArrAssign(StateName(Idx), fld(IndexName(Idx)),
                                  mul(cst(T.Coeff), peek(T.Pos))));
    // 2. Emit each output as a sum of loads and direct products.
    for (int J = 0; J != U; ++J) {
      ExprPtr Sum;
      for (int P = 0; P != E; ++P) {
        double C = N.coeff(P, J);
        if (C == 0.0)
          continue;
        LCT T{C, P};
        ExprPtr Term;
        auto It = Info.CompMap.find(T);
        if (It != Info.CompMap.end()) {
          const auto &[OT, Use] = It->second;
          int Idx = TupleIdx.at(OT);
          int Size = Info.maxUse(OT) + 1;
          Term = fldAt(StateName(Idx),
                       mod(add(fld(IndexName(Idx)), cst(Use)), cst(Size)));
        } else {
          Term = mul(cst(C), peek(P));
        }
        Sum = Sum ? add(std::move(Sum), std::move(Term)) : std::move(Term);
      }
      if (N.offset(J) != 0.0 || !Sum) {
        ExprPtr Off = cst(N.offset(J));
        Sum = Sum ? add(std::move(Sum), std::move(Off)) : std::move(Off);
      }
      Body.push_back(push(std::move(Sum)));
    }
    // 3. Rotate the circular buffers (integer index arithmetic).
    StmtList Rotate;
    for (const auto &[T, Idx] : TupleIdx) {
      Rotate.push_back(
          fldAssign(IndexName(Idx), sub(fld(IndexName(Idx)), cst(1))));
      Rotate.push_back(ifStmt(
          lt(fld(IndexName(Idx)), cst(0)),
          stmts(fldAssign(IndexName(Idx), cst(Info.maxUse(T))))));
    }
    if (!Rotate.empty())
      Body.push_back(std::make_unique<UncountedStmt>(std::move(Rotate)));
    // 4. Consume.
    for (int P = 0; P != O; ++P)
      Body.push_back(popStmt());
    return Body;
  };

  WorkFunction Work(E, O, U, MakeBody());

  auto F = std::make_unique<Filter>(Name, std::move(Fields), std::move(Work));

  if (!TupleIdx.empty()) {
    // initWork: pre-populate the caches with the products that earlier
    // firings would have stored (tupleIndex starts at 0, so the value
    // from `use` firings ago belongs in slot `use`), then run a normal
    // firing.
    StmtList Init;
    for (const auto &[T, Idx] : TupleIdx)
      for (int Use = 1; Use <= Info.maxUse(T); ++Use)
        Init.push_back(fldArrAssign(StateName(Idx), cst(Use),
                                    mul(cst(T.Coeff),
                                        peek(T.Pos - O * Use))));
    for (StmtPtr &S : MakeBody())
      Init.push_back(std::move(S));
    F->setInitWork(WorkFunction(E, O, U, std::move(Init)));
  }
  return F;
}

//===----------------------------------------------------------------------===//
// Replacement pass
//===----------------------------------------------------------------------===//

namespace {

StreamPtr rewriteRedundancy(const Stream &S, const LinearAnalysis &LA) {
  switch (S.kind()) {
  case StreamKind::Filter:
    if (const LinearNode *N = LA.nodeFor(S))
      return makeRedundancyFilter(*N, S.name() + "_noredund");
    return S.clone();
  case StreamKind::Pipeline: {
    auto Out = std::make_unique<Pipeline>(S.name());
    for (const StreamPtr &C : cast<Pipeline>(&S)->children())
      Out->add(rewriteRedundancy(*C, LA));
    return Out;
  }
  case StreamKind::SplitJoin: {
    const auto *SJ = cast<SplitJoin>(&S);
    auto Out = std::make_unique<SplitJoin>(SJ->name(), SJ->splitter(),
                                           SJ->joiner());
    for (const StreamPtr &C : SJ->children())
      Out->add(rewriteRedundancy(*C, LA));
    return Out;
  }
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    return std::make_unique<FeedbackLoop>(
        FB->name(), FB->joiner(), rewriteRedundancy(FB->body(), LA),
        rewriteRedundancy(FB->loop(), LA), FB->splitter(), FB->enqueued());
  }
  }
  unreachable("unknown stream kind");
}

} // namespace

StreamPtr slin::replaceRedundancy(const Stream &Root) {
  LinearAnalysis LA(Root);
  return replaceRedundancy(Root, LA);
}

StreamPtr slin::replaceRedundancy(const Stream &Root,
                                  const LinearAnalysis &LA) {
  return rewriteRedundancy(Root, LA);
}
