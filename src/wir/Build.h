//===- wir/Build.h - Ergonomic work-IR construction ------------*- C++ -*-===//
///
/// \file
/// A small builder DSL over the work IR so that benchmark filters read
/// almost like their StreamIt sources in Appendix A. Example — the FIR
/// work function of Figure 1-3:
///
/// \code
///   using namespace slin::wir::build;
///   WorkFunction W(N, 1, 1, stmts(
///       assign("sum", cst(0)),
///       loop("i", cst(0), cst(N), stmts(
///           assign("sum", add(vr("sum"),
///                             mul(fldAt("h", vr("i")), peek(vr("i"))))))),
///       push(vr("sum")),
///       popStmt()));
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_WIR_BUILD_H
#define SLIN_WIR_BUILD_H

#include "wir/IR.h"

namespace slin {
namespace wir {
namespace build {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

inline ExprPtr cst(double V) { return std::make_unique<ConstExpr>(V); }
inline ExprPtr vr(std::string Name) {
  return std::make_unique<VarRefExpr>(std::move(Name));
}
inline ExprPtr arrAt(std::string Name, ExprPtr Index) {
  return std::make_unique<ArrayRefExpr>(std::move(Name), std::move(Index));
}
inline ExprPtr fld(std::string Name) {
  return std::make_unique<FieldRefExpr>(std::move(Name), nullptr);
}
inline ExprPtr fldAt(std::string Name, ExprPtr Index) {
  return std::make_unique<FieldRefExpr>(std::move(Name), std::move(Index));
}
inline ExprPtr peek(ExprPtr Index) {
  return std::make_unique<PeekExpr>(std::move(Index));
}
inline ExprPtr peek(int Index) { return peek(cst(Index)); }
inline ExprPtr pop() { return std::make_unique<PopExpr>(); }

inline ExprPtr bin(BinOp Op, ExprPtr L, ExprPtr R) {
  return std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R));
}
inline ExprPtr add(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Add, std::move(L), std::move(R));
}
inline ExprPtr sub(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Sub, std::move(L), std::move(R));
}
inline ExprPtr mul(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Mul, std::move(L), std::move(R));
}
inline ExprPtr div(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Div, std::move(L), std::move(R));
}
inline ExprPtr mod(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Mod, std::move(L), std::move(R));
}
inline ExprPtr lt(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Lt, std::move(L), std::move(R));
}
inline ExprPtr le(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Le, std::move(L), std::move(R));
}
inline ExprPtr gt(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Gt, std::move(L), std::move(R));
}
inline ExprPtr ge(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Ge, std::move(L), std::move(R));
}
inline ExprPtr eq(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Eq, std::move(L), std::move(R));
}
inline ExprPtr ne(ExprPtr L, ExprPtr R) {
  return bin(BinOp::Ne, std::move(L), std::move(R));
}
inline ExprPtr neg(ExprPtr E) {
  return std::make_unique<UnaryExpr>(UnOp::Neg, std::move(E));
}
inline ExprPtr call(Intrinsic Fn, ExprPtr Arg) {
  return std::make_unique<CallExpr>(Fn, std::move(Arg));
}
inline ExprPtr sinE(ExprPtr A) { return call(Intrinsic::Sin, std::move(A)); }
inline ExprPtr cosE(ExprPtr A) { return call(Intrinsic::Cos, std::move(A)); }
inline ExprPtr atanE(ExprPtr A) { return call(Intrinsic::Atan, std::move(A)); }
inline ExprPtr sqrtE(ExprPtr A) { return call(Intrinsic::Sqrt, std::move(A)); }
inline ExprPtr absE(ExprPtr A) { return call(Intrinsic::Abs, std::move(A)); }

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Variadic statement-list constructor (StmtList is move-only, so a plain
/// initializer list cannot be used).
inline void appendStmts(StmtList &) {}
template <typename... Rest>
void appendStmts(StmtList &Out, StmtPtr First, Rest... Tail) {
  Out.push_back(std::move(First));
  appendStmts(Out, std::move(Tail)...);
}
template <typename... Args> StmtList stmts(Args... List) {
  StmtList Out;
  appendStmts(Out, std::move(List)...);
  return Out;
}

inline StmtPtr assign(std::string Name, ExprPtr Value) {
  return std::make_unique<AssignStmt>(std::move(Name), std::move(Value));
}
inline StmtPtr arrAssign(std::string Name, ExprPtr Index, ExprPtr Value) {
  return std::make_unique<ArrayAssignStmt>(std::move(Name), std::move(Index),
                                           std::move(Value));
}
inline StmtPtr fldAssign(std::string Name, ExprPtr Value) {
  return std::make_unique<FieldAssignStmt>(std::move(Name), nullptr,
                                           std::move(Value));
}
inline StmtPtr fldArrAssign(std::string Name, ExprPtr Index, ExprPtr Value) {
  return std::make_unique<FieldAssignStmt>(std::move(Name), std::move(Index),
                                           std::move(Value));
}
inline StmtPtr localArray(std::string Name, int Size) {
  return std::make_unique<LocalArrayStmt>(std::move(Name), Size);
}
inline StmtPtr push(ExprPtr Value) {
  return std::make_unique<PushStmt>(std::move(Value));
}
inline StmtPtr popStmt() { return std::make_unique<PopDiscardStmt>(); }
inline StmtPtr loop(std::string Var, ExprPtr Begin, ExprPtr End,
                    StmtList Body) {
  return std::make_unique<ForStmt>(std::move(Var), std::move(Begin),
                                   std::move(End), std::move(Body));
}
inline StmtPtr ifStmt(ExprPtr Cond, StmtList Then, StmtList Else = {}) {
  return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                  std::move(Else));
}
inline StmtPtr printStmt(ExprPtr Value) {
  return std::make_unique<PrintStmt>(std::move(Value));
}
inline StmtPtr uncounted(StmtList Body) {
  return std::make_unique<UncountedStmt>(std::move(Body));
}

} // namespace build
} // namespace wir
} // namespace slin

#endif // SLIN_WIR_BUILD_H
