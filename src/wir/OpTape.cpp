//===- wir/OpTape.cpp - Flattened work-function op tape ---------------------==//

#include "wir/OpTape.h"

#include "support/Diag.h"
#include "support/OpCounters.h"
#include "support/Serialize.h"

#include <array>
#include <cmath>

using namespace slin;
using namespace slin::wir;

//===----------------------------------------------------------------------===//
// Compiler
//===----------------------------------------------------------------------===//

namespace slin {
namespace wir {

/// Single-pass tree-to-tape compiler. Emission order mirrors the tree
/// interpreter's evaluation order exactly, and instructions emitted while
/// the interpreter would hold CountingScope(false) are tagged uncounted.
///
/// Two peepholes fuse the patterns that dominate linear DSP code (the
/// multiply-accumulate of a convolution sum and the constant-offset index
/// add), and a post-pass marks index registers that provably hold exact
/// integers so dispatch can use a plain cast instead of lround. All three
/// preserve values, evaluation order and op counts exactly.
class OpTapeCompiler {
public:
  OpTapeCompiler(const WorkFunction &Work, const std::vector<FieldDef> &Fields,
                 OpProgram &P)
      : Work(Work), P(P) {
    P.PeekRate = Work.PeekRate;
    P.PopRate = Work.PopRate;
    P.PushRate = Work.PushRate;
    P.NumRegs = std::max(Work.NumScalarSlots, 1);
    FrameBase = Work.NumScalarSlots;
    TempTop = FrameBase;
    P.ArrBase.assign(static_cast<size_t>(Work.NumArraySlots), -1);
    P.ArrDeclSize.assign(static_cast<size_t>(Work.NumArraySlots), 0);
    P.ArrNames.assign(static_cast<size_t>(Work.NumArraySlots), "");
    P.FieldNames.reserve(Fields.size());
    for (const FieldDef &F : Fields)
      P.FieldNames.push_back(F.Name);
  }

  void run() {
    compileBody(Work.Body);
    emit(Op::Halt);
    markIntRegs();
  }

private:
  int nextIndex() const { return static_cast<int>(P.Code.size()); }

  /// Forbids peephole fusion from touching instructions before \p Index:
  /// called at every jump-target definition, since popping or rewriting
  /// a landing-pad instruction would detach the jumps aimed at it.
  void fusionBarrier(int Index) {
    FusionBarrier = std::max(FusionBarrier, Index);
  }

  /// True when the last \p N instructions are all past the barrier.
  bool fusible(size_t N) const {
    return P.Code.size() >= N &&
           P.Code.size() - N >= static_cast<size_t>(FusionBarrier);
  }

  int emit(Op K, int A = 0, int B = 0, int C = 0, double Imm = 0.0) {
    Inst I;
    I.K = K;
    I.Counted = UncountedDepth == 0;
    I.A = A;
    I.B = B;
    I.C = C;
    I.Imm = Imm;
    P.Code.push_back(I);
    return static_cast<int>(P.Code.size() - 1);
  }

  int allocTemp() {
    int T = TempTop++;
    P.NumRegs = std::max(P.NumRegs, TempTop);
    return T;
  }

  /// True for registers holding only intermediate values of the current
  /// statement (named locals and live loop counters sit below FrameBase).
  bool isTemp(int R) const { return R >= FrameBase; }

  static int toIndex(double V) { return static_cast<int>(std::lround(V)); }

  /// Compiles \p E into some register and returns it (a variable's slot
  /// when possible, else a fresh temp).
  int compileExpr(const Expr &E) {
    if (const auto *V = dynCast<VarRefExpr>(&E))
      return V->Slot;
    int T = allocTemp();
    compileExprInto(E, T);
    return T;
  }

  /// Compiles an index/bound expression (uncounted, like evalUncounted).
  int compileIndex(const Expr &E) {
    ++UncountedDepth;
    int R = compileExpr(E);
    --UncountedDepth;
    return R;
  }

  /// Emits Dst = L op R, fusing multiply-accumulate and constant-add
  /// patterns. The fused forms compute bit-identical values and count
  /// identical ops (a MulAdd counts its multiply and its add).
  void emitBin(Op K, int Dst, int L, int R) {
    bool Counted = UncountedDepth == 0;
    if (K == Op::Add && fusible(1)) {
      Inst &Prev = P.Code.back();
      // Const temp + x  ->  AddImm (same two operands, same rounding).
      if (Prev.K == Op::Const && isTemp(Prev.A) && (Prev.A == L) != (Prev.A == R)) {
        int Other = Prev.A == L ? R : L;
        double Imm = Prev.Imm;
        P.Code.pop_back();
        emit(Op::AddImm, Dst, Other, 0, Imm);
        return;
      }
      // x + (a*b) in a temp  ->  MulAdd; when it accumulates onto the
      // destination and the factors are a fresh field load and a peek at
      // the same index, collapse further into MacFldPeek.
      if (Prev.K == Op::Mul && isTemp(Prev.A) && Prev.Counted == Counted &&
          (Prev.A == L) != (Prev.A == R)) {
        int Addend = Prev.A == L ? R : L;
        int MB = Prev.B, MC = Prev.C;
        P.Code.pop_back();
        if (Addend == Dst && fusible(2)) {
          Inst &Pk = P.Code.back();
          Inst &Ld = P.Code[P.Code.size() - 2];
          if (Pk.K == Op::Peek && Pk.A == MC && isTemp(MC) &&
              Ld.K == Op::LoadFldIdx && Ld.A == MB && isTemp(MB) &&
              Pk.C == Ld.C) {
            int Fld = Ld.B, Idx = Ld.C;
            P.Code.pop_back();
            P.Code.pop_back();
            emit(Op::MacFldPeek, Dst, Fld, Idx);
            return;
          }
        }
        int I = emit(Op::MulAdd, Dst, MB, MC);
        P.Code[static_cast<size_t>(I)].D = Addend;
        return;
      }
    }
    emit(K, Dst, L, R);
  }

  void compileExprInto(const Expr &E, int Dst) {
    switch (E.kind()) {
    case ExprKind::Const:
      emit(Op::Const, Dst, 0, 0, cast<ConstExpr>(&E)->Value);
      return;
    case ExprKind::VarRef:
      emit(Op::Copy, Dst, cast<VarRefExpr>(&E)->Slot);
      return;
    case ExprKind::ArrayRef: {
      const auto *A = cast<ArrayRefExpr>(&E);
      int Idx = compileIndex(*A->Index);
      emit(Op::LoadArr, Dst, A->Slot, Idx);
      return;
    }
    case ExprKind::FieldRef: {
      const auto *F = cast<FieldRefExpr>(&E);
      if (!F->Index) {
        emit(Op::LoadFld, Dst, F->FieldIndex);
        return;
      }
      int Idx = compileIndex(*F->Index);
      emit(Op::LoadFldIdx, Dst, F->FieldIndex, Idx);
      return;
    }
    case ExprKind::Peek: {
      const auto *Pk = cast<PeekExpr>(&E);
      if (const auto *CI = dynCast<ConstExpr>(Pk->Index.get())) {
        emit(Op::PeekImm, Dst, toIndex(CI->Value));
        return;
      }
      int Idx = compileIndex(*Pk->Index);
      emit(Op::Peek, Dst, 0, Idx);
      return;
    }
    case ExprKind::Pop:
      emit(Op::Pop, Dst);
      return;
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      // Short-circuit logical operators (integer ops on IA-32; uncounted).
      if (B->Op == BinOp::LAnd) {
        int L = compileExpr(*B->LHS);
        ++UncountedDepth;
        int JFalse = emit(Op::JumpIfZero, L);
        --UncountedDepth;
        int R = compileExpr(*B->RHS);
        ++UncountedDepth;
        emit(Op::Bool, Dst, R);
        int JEnd = emit(Op::Jump);
        P.Code[static_cast<size_t>(JFalse)].B = nextIndex();
        fusionBarrier(nextIndex());
        emit(Op::Const, Dst, 0, 0, 0.0);
        P.Code[static_cast<size_t>(JEnd)].A = nextIndex();
        fusionBarrier(nextIndex());
        --UncountedDepth;
        return;
      }
      if (B->Op == BinOp::LOr) {
        int L = compileExpr(*B->LHS);
        ++UncountedDepth;
        int JRhs = emit(Op::JumpIfZero, L);
        emit(Op::Const, Dst, 0, 0, 1.0);
        int JEnd = emit(Op::Jump);
        P.Code[static_cast<size_t>(JRhs)].B = nextIndex();
        fusionBarrier(nextIndex());
        --UncountedDepth;
        int R = compileExpr(*B->RHS);
        ++UncountedDepth;
        emit(Op::Bool, Dst, R);
        P.Code[static_cast<size_t>(JEnd)].A = nextIndex();
        fusionBarrier(nextIndex());
        --UncountedDepth;
        return;
      }
      int L = compileExpr(*B->LHS);
      int R = compileExpr(*B->RHS);
      Op K;
      switch (B->Op) {
      case BinOp::Add: K = Op::Add; break;
      case BinOp::Sub: K = Op::Sub; break;
      case BinOp::Mul: K = Op::Mul; break;
      case BinOp::Div: K = Op::Div; break;
      case BinOp::Mod: K = Op::Mod; break;
      case BinOp::Lt:  K = Op::Lt; break;
      case BinOp::Le:  K = Op::Le; break;
      case BinOp::Gt:  K = Op::Gt; break;
      case BinOp::Ge:  K = Op::Ge; break;
      case BinOp::Eq:  K = Op::Eq; break;
      case BinOp::Ne:  K = Op::Ne; break;
      case BinOp::LAnd:
      case BinOp::LOr:
      default:
        unreachable("logical op handled above");
      }
      emitBin(K, Dst, L, R);
      return;
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      int V = compileExpr(*U->Operand);
      if (U->Op == UnOp::Neg)
        emit(Op::Neg, Dst, V); // FCHS, counted as a subtract
      else {
        ++UncountedDepth;
        emit(Op::Not, Dst, V);
        --UncountedDepth;
      }
      return;
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(&E);
      int A = compileExpr(*C->Arg);
      emit(Op::Intrin, Dst, static_cast<int>(C->Fn), A);
      return;
    }
    }
    unreachable("unknown expr kind");
  }

  void compileBody(const StmtList &Body) {
    for (const StmtPtr &S : Body) {
      TempTop = FrameBase;
      compileStmt(*S);
    }
  }

  void compileStmt(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      compileExprInto(*A->Value, A->Slot);
      return;
    }
    case StmtKind::ArrayAssign: {
      const auto *A = cast<ArrayAssignStmt>(&S);
      int Idx = compileIndex(*A->Index);
      int V = compileExpr(*A->Value);
      emit(Op::StoreArr, V, A->Slot, Idx);
      return;
    }
    case StmtKind::FieldAssign: {
      const auto *F = cast<FieldAssignStmt>(&S);
      if (!F->Index) {
        int V = compileExpr(*F->Value);
        emit(Op::StoreFld, V, F->FieldIndex);
        return;
      }
      int Idx = compileIndex(*F->Index);
      int V = compileExpr(*F->Value);
      emit(Op::StoreFldIdx, V, F->FieldIndex, Idx);
      return;
    }
    case StmtKind::LocalArray: {
      const auto *L = cast<LocalArrayStmt>(&S);
      size_t Slot = static_cast<size_t>(L->Slot);
      if (P.ArrBase[Slot] < 0) {
        P.ArrBase[Slot] = P.ArrStoreSize;
        P.ArrDeclSize[Slot] = L->Size;
        P.ArrNames[Slot] = L->Name;
        P.ArrStoreSize += L->Size;
      }
      emit(Op::ZeroArr, L->Slot);
      return;
    }
    case StmtKind::Push: {
      int V = compileExpr(*cast<PushStmt>(&S)->Value);
      emit(Op::Push, V);
      return;
    }
    case StmtKind::PopDiscard:
      emit(Op::PopDiscard);
      return;
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(&S);
      // Two frame slots (counter, bound) live for the whole loop; body
      // statements allocate their temps above them.
      int SavedBase = FrameBase;
      int Cnt = FrameBase++;
      int End = FrameBase++;
      P.NumRegs = std::max(P.NumRegs, FrameBase);
      TempTop = FrameBase;
      ++UncountedDepth;
      int B = compileExpr(*F->Begin);
      emit(Op::Round, Cnt, B);
      TempTop = FrameBase;
      int E = compileExpr(*F->End);
      emit(Op::Round, End, E);
      int Head = nextIndex();
      fusionBarrier(Head);
      int CondJ = emit(Op::JumpIfGe, Cnt, End);
      emit(Op::Copy, F->Slot, Cnt);
      --UncountedDepth;
      compileBody(F->Body);
      ++UncountedDepth;
      emit(Op::IncJump, Cnt, Head);
      --UncountedDepth;
      P.Code[static_cast<size_t>(CondJ)].C = nextIndex();
      fusionBarrier(nextIndex());
      FrameBase = SavedBase;
      TempTop = FrameBase;
      return;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(&S);
      int C = compileExpr(*I->Cond);
      ++UncountedDepth;
      int JElse = emit(Op::JumpIfZero, C);
      --UncountedDepth;
      compileBody(I->Then);
      ++UncountedDepth;
      int JEnd = emit(Op::Jump);
      --UncountedDepth;
      P.Code[static_cast<size_t>(JElse)].B = nextIndex();
      fusionBarrier(nextIndex());
      compileBody(I->Else);
      P.Code[static_cast<size_t>(JEnd)].A = nextIndex();
      fusionBarrier(nextIndex());
      return;
    }
    case StmtKind::Print: {
      int V = compileExpr(*cast<PrintStmt>(&S)->Value);
      emit(Op::Print, V);
      return;
    }
    case StmtKind::Uncounted: {
      ++UncountedDepth;
      compileBody(cast<UncountedStmt>(&S)->Body);
      --UncountedDepth;
      return;
    }
    }
    unreachable("unknown stmt kind");
  }

  /// Greatest-fixpoint analysis: a register is integer-valued when every
  /// write to it provably produces an exact integral double. For such
  /// index registers lround(x) == (long)x, so dispatch can use the cast.
  void markIntRegs() {
    auto Integral = [](double V) {
      return V == std::floor(V) && std::fabs(V) < 9.0e15;
    };
    std::vector<char> IntVal(static_cast<size_t>(P.NumRegs), 1);
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const Inst &I : P.Code) {
        int Dst = -1;
        bool IsInt = false;
        switch (I.K) {
        case Op::Const:   Dst = I.A; IsInt = Integral(I.Imm); break;
        case Op::Copy:    Dst = I.A; IsInt = IntVal[I.B]; break;
        case Op::Round:   Dst = I.A; IsInt = true; break;
        case Op::Bool:
        case Op::Not:
        case Op::Lt: case Op::Le: case Op::Gt:
        case Op::Ge: case Op::Eq: case Op::Ne:
          Dst = I.A; IsInt = true; break;
        case Op::Add:
        case Op::Sub:
        case Op::Mul:     Dst = I.A; IsInt = IntVal[I.B] && IntVal[I.C]; break;
        case Op::AddImm:  Dst = I.A; IsInt = IntVal[I.B] && Integral(I.Imm); break;
        case Op::Neg:     Dst = I.A; IsInt = IntVal[I.B]; break;
        case Op::IncJump: Dst = I.A; IsInt = IntVal[I.A]; break;
        case Op::MulAdd:
          Dst = I.A; IsInt = IntVal[I.B] && IntVal[I.C] && IntVal[I.D];
          break;
        // Data loads, division and intrinsics poison.
        case Op::Peek: case Op::PeekImm: case Op::Pop:
        case Op::LoadFld: case Op::LoadFldIdx: case Op::LoadArr:
        case Op::Div: case Op::Mod: case Op::Intrin:
        case Op::MacFldPeek:
          Dst = I.A; IsInt = false; break;
        default:
          break; // no register write
        }
        if (Dst >= 0 && IntVal[static_cast<size_t>(Dst)] && !IsInt) {
          IntVal[static_cast<size_t>(Dst)] = 0;
          Changed = true;
        }
      }
    }
    for (Inst &I : P.Code)
      switch (I.K) {
      case Op::Peek: case Op::LoadFldIdx: case Op::StoreFldIdx:
      case Op::LoadArr: case Op::StoreArr: case Op::MacFldPeek:
        I.IntIdx = IntVal[static_cast<size_t>(I.C)] != 0;
        break;
      default:
        break;
      }
  }

  const WorkFunction &Work;
  OpProgram &P;
  int FusionBarrier = 0;
  int FrameBase = 0;
  int TempTop = 0;
  int UncountedDepth = 0;
};

} // namespace wir
} // namespace slin

OpProgram OpProgram::compile(const WorkFunction &Work,
                             const std::vector<FieldDef> &Fields) {
  if (!Work.Resolved)
    resolve(Work, Fields);
  OpProgram P;
  OpTapeCompiler(Work, Fields, P).run();
  return P;
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void OpProgram::prepareFrame(WorkFrame &F) const {
#ifndef NDEBUG
  // Debug builds re-check register and slot operands against the frame
  // layout before the first firing — the dispatch loop indexes raw
  // arrays with them unchecked. (Deserialized tapes additionally go
  // through the verify/ linter's structural checks.)
  for (const Inst &I : Code) {
    switch (I.K) {
    case Op::LoadFld:
    case Op::StoreFld:
    case Op::LoadFldIdx:
    case Op::StoreFldIdx:
    case Op::MacFldPeek:
      assert(I.B >= 0 && static_cast<size_t>(I.B) < FieldNames.size() &&
             "field slot out of range");
      break;
    case Op::LoadArr:
    case Op::StoreArr:
      assert(I.B >= 0 && static_cast<size_t>(I.B) < ArrBase.size() &&
             "array slot out of range");
      break;
    case Op::ZeroArr:
      assert(I.A >= 0 && static_cast<size_t>(I.A) < ArrBase.size() &&
             "array slot out of range");
      break;
    default:
      break;
    }
    if (I.K != Op::Jump && I.K != Op::ZeroArr && I.K != Op::Halt &&
        I.K != Op::PopDiscard)
      assert(I.A >= 0 && I.A < NumRegs && "register operand out of range");
  }
#endif
  if (F.Regs.size() < static_cast<size_t>(NumRegs))
    F.Regs.assign(static_cast<size_t>(NumRegs), 0.0);
  if (F.ArrStore.size() < static_cast<size_t>(ArrStoreSize))
    F.ArrStore.assign(static_cast<size_t>(ArrStoreSize), 0.0);
  if (F.ArrSizes.size() < ArrBase.size())
    F.ArrSizes.assign(ArrBase.size(), 0);
  if (F.FldPtrs.size() < FieldNames.size()) {
    F.FldPtrs.resize(FieldNames.size());
    F.FldSizes.resize(FieldNames.size());
  }
}

namespace {

[[noreturn]] __attribute__((cold, noinline)) void
boundsError(const char *What, const std::string &Name) {
  fatalError(std::string(What) + " '" + Name + "' index out of range");
}

[[noreturn]] __attribute__((cold, noinline)) void
rateError(size_t Popped, int Pop, ptrdiff_t Pushed, int Push) {
  fatalError("work function violated its declared rates (popped " +
             std::to_string(Popped) + "/" + std::to_string(Pop) +
             ", pushed " + std::to_string(Pushed) + "/" +
             std::to_string(Push) + ")");
}

} // namespace

// Threaded (computed-goto) dispatch on GCC/Clang, plain switch elsewhere.
#if defined(__GNUC__) || defined(__clang__)
#define SLIN_TAPE_CGOTO 1
#else
#define SLIN_TAPE_CGOTO 0
#endif

template <bool CountOps>
void OpProgram::runImpl(WorkFrame &F, const double *In, double *Out,
                        std::vector<double> &Printed) const {
  double *R = F.Regs.data();
  double *AS = F.ArrStore.data();
  int32_t *ASz = F.ArrSizes.data();
  const int32_t *AB = ArrBase.data();
  const int32_t *ADS = ArrDeclSize.data();
  double *const *Fld = F.FldPtrs.data();
  const int32_t *FldSz = F.FldSizes.data();
  const Inst *Code = this->Code.data();

  // Local variables start fresh each firing, as in the interpreter.
  std::fill_n(R, static_cast<size_t>(NumRegs), 0.0);
  std::fill_n(ASz, ArrBase.size(), 0);

  size_t InPos = 0;
  double *OutCur = Out;
  size_t PC = 0;
  const Inst *Ip;

  // Debug-build bounds assertions: input-window and push-cursor indices
  // have no release-mode runtime check (unlike field/array accesses) —
  // they are proven statically by the abstract-interpretation linter
  // (src/verify/), and debug builds stop at the exact faulting op.
#ifndef NDEBUG
  const size_t Window = static_cast<size_t>(std::max(PeekRate, PopRate));
#endif

  // IDX(): index-register conversion; the int-register analysis proved
  // IntIdx registers hold exact integers, making the cast == lround.
#define IDX()                                                                  \
  (Ip->IntIdx ? static_cast<long>(R[Ip->C]) : std::lround(R[Ip->C]))

#if SLIN_TAPE_CGOTO
  static const void *Labels[] = {
      &&L_Const, &&L_Copy, &&L_Peek, &&L_PeekImm, &&L_Pop, &&L_PopDiscard,
      &&L_Push, &&L_Print, &&L_LoadFld, &&L_StoreFld, &&L_LoadFldIdx,
      &&L_StoreFldIdx, &&L_LoadArr, &&L_StoreArr, &&L_ZeroArr, &&L_Add,
      &&L_Sub, &&L_Mul, &&L_Div, &&L_Mod, &&L_Lt, &&L_Le, &&L_Gt, &&L_Ge,
      &&L_Eq, &&L_Ne, &&L_Bool, &&L_Not, &&L_Round, &&L_Neg, &&L_Intrin,
      &&L_MulAdd, &&L_MacFldPeek, &&L_AddImm, &&L_Jump, &&L_JumpIfZero,
      &&L_JumpIfGe, &&L_IncJump, &&L_Halt};
#define OPCASE(name) L_##name
#define NEXT                                                                   \
  {                                                                            \
    Ip = Code + (++PC);                                                        \
    goto *Labels[static_cast<size_t>(Ip->K)];                                  \
  }
#define JUMPTO(T)                                                              \
  {                                                                            \
    PC = static_cast<size_t>(T);                                               \
    Ip = Code + PC;                                                            \
    goto *Labels[static_cast<size_t>(Ip->K)];                                  \
  }
  Ip = Code;
  goto *Labels[static_cast<size_t>(Ip->K)];
#else
#define OPCASE(name) case Op::name
#define NEXT                                                                   \
  {                                                                            \
    ++PC;                                                                      \
    break;                                                                     \
  }
#define JUMPTO(T)                                                              \
  {                                                                            \
    PC = static_cast<size_t>(T);                                               \
    break;                                                                     \
  }
  for (;;) {
    Ip = Code + PC;
    switch (Ip->K) {
#endif

  OPCASE(Const):
    R[Ip->A] = Ip->Imm;
    NEXT;
  OPCASE(Copy):
    R[Ip->A] = R[Ip->B];
    NEXT;
  OPCASE(Peek): {
    long Idx = IDX();
    assert(In && Idx >= 0 && "peek out of range (scheduler bug)");
    assert(InPos + static_cast<size_t>(Idx) < Window &&
           "peek past the input window");
    R[Ip->A] = In[InPos + static_cast<size_t>(Idx)];
    NEXT;
  }
  OPCASE(PeekImm):
    assert(In && "peek on a source filter");
    assert(InPos + static_cast<size_t>(Ip->B) < Window &&
           "peek past the input window");
    R[Ip->A] = In[InPos + static_cast<size_t>(Ip->B)];
    NEXT;
  OPCASE(Pop):
    assert(In && "pop on a source filter");
    assert(InPos < static_cast<size_t>(PopRate) &&
           "pop past the declared pop rate");
    R[Ip->A] = In[InPos++];
    NEXT;
  OPCASE(PopDiscard):
    assert(InPos < static_cast<size_t>(PopRate) &&
           "pop past the declared pop rate");
    ++InPos;
    NEXT;
  OPCASE(Push):
    assert(OutCur - Out < static_cast<ptrdiff_t>(PushRate) &&
           "push past the declared push rate");
    *OutCur++ = R[Ip->A];
    NEXT;
  OPCASE(Print):
    Printed.push_back(R[Ip->A]);
    NEXT;
  OPCASE(LoadFld):
    R[Ip->A] = Fld[Ip->B][0];
    NEXT;
  OPCASE(StoreFld):
    Fld[Ip->B][0] = R[Ip->A];
    NEXT;
  OPCASE(LoadFldIdx): {
    long Idx = IDX();
    if (Idx < 0 || Idx >= FldSz[Ip->B])
      boundsError("field", FieldNames[static_cast<size_t>(Ip->B)]);
    R[Ip->A] = Fld[Ip->B][Idx];
    NEXT;
  }
  OPCASE(StoreFldIdx): {
    long Idx = IDX();
    if (Idx < 0 || Idx >= FldSz[Ip->B])
      boundsError("field", FieldNames[static_cast<size_t>(Ip->B)]);
    Fld[Ip->B][Idx] = R[Ip->A];
    NEXT;
  }
  OPCASE(LoadArr): {
    long Idx = IDX();
    if (Idx < 0 || Idx >= ASz[Ip->B])
      boundsError("array", ArrNames[static_cast<size_t>(Ip->B)]);
    R[Ip->A] = AS[AB[Ip->B] + Idx];
    NEXT;
  }
  OPCASE(StoreArr): {
    long Idx = IDX();
    if (Idx < 0 || Idx >= ASz[Ip->B])
      boundsError("array", ArrNames[static_cast<size_t>(Ip->B)]);
    AS[AB[Ip->B] + Idx] = R[Ip->A];
    NEXT;
  }
  OPCASE(ZeroArr):
    std::fill_n(AS + AB[Ip->A], ADS[Ip->A], 0.0);
    ASz[Ip->A] = ADS[Ip->A];
    NEXT;
  OPCASE(Add):
    R[Ip->A] = CountOps && Ip->Counted ? ops::add(R[Ip->B], R[Ip->C])
                                       : R[Ip->B] + R[Ip->C];
    NEXT;
  OPCASE(Sub):
    R[Ip->A] = CountOps && Ip->Counted ? ops::sub(R[Ip->B], R[Ip->C])
                                       : R[Ip->B] - R[Ip->C];
    NEXT;
  OPCASE(Mul):
    R[Ip->A] = CountOps && Ip->Counted ? ops::mul(R[Ip->B], R[Ip->C])
                                       : R[Ip->B] * R[Ip->C];
    NEXT;
  OPCASE(Div):
    R[Ip->A] = CountOps && Ip->Counted ? ops::div(R[Ip->B], R[Ip->C])
                                       : R[Ip->B] / R[Ip->C];
    NEXT;
  OPCASE(Mod):
    R[Ip->A] = CountOps && Ip->Counted ? ops::mod(R[Ip->B], R[Ip->C])
                                       : std::fmod(R[Ip->B], R[Ip->C]);
    NEXT;
  OPCASE(Lt): {
    bool V = R[Ip->B] < R[Ip->C];
    if (CountOps && Ip->Counted)
      ops::cmp(V);
    R[Ip->A] = V ? 1.0 : 0.0;
    NEXT;
  }
  OPCASE(Le): {
    bool V = R[Ip->B] <= R[Ip->C];
    if (CountOps && Ip->Counted)
      ops::cmp(V);
    R[Ip->A] = V ? 1.0 : 0.0;
    NEXT;
  }
  OPCASE(Gt): {
    bool V = R[Ip->B] > R[Ip->C];
    if (CountOps && Ip->Counted)
      ops::cmp(V);
    R[Ip->A] = V ? 1.0 : 0.0;
    NEXT;
  }
  OPCASE(Ge): {
    bool V = R[Ip->B] >= R[Ip->C];
    if (CountOps && Ip->Counted)
      ops::cmp(V);
    R[Ip->A] = V ? 1.0 : 0.0;
    NEXT;
  }
  OPCASE(Eq): {
    bool V = R[Ip->B] == R[Ip->C];
    if (CountOps && Ip->Counted)
      ops::cmp(V);
    R[Ip->A] = V ? 1.0 : 0.0;
    NEXT;
  }
  OPCASE(Ne): {
    bool V = R[Ip->B] != R[Ip->C];
    if (CountOps && Ip->Counted)
      ops::cmp(V);
    R[Ip->A] = V ? 1.0 : 0.0;
    NEXT;
  }
  OPCASE(Bool):
    R[Ip->A] = R[Ip->B] != 0.0 ? 1.0 : 0.0;
    NEXT;
  OPCASE(Not):
    R[Ip->A] = R[Ip->B] == 0.0 ? 1.0 : 0.0;
    NEXT;
  OPCASE(Round):
    R[Ip->A] = static_cast<double>(std::lround(R[Ip->B]));
    NEXT;
  OPCASE(Neg):
    R[Ip->A] =
        CountOps && Ip->Counted ? ops::sub(0.0, R[Ip->B]) : 0.0 - R[Ip->B];
    NEXT;
  OPCASE(Intrin): {
    double V = evalIntrinsic(static_cast<Intrinsic>(Ip->B), R[Ip->C]);
    R[Ip->A] = CountOps && Ip->Counted ? ops::trans(V) : V;
    NEXT;
  }
  OPCASE(MulAdd):
    R[Ip->A] = CountOps && Ip->Counted
                   ? ops::fma(R[Ip->D], R[Ip->B], R[Ip->C])
                   : R[Ip->D] + R[Ip->B] * R[Ip->C];
    NEXT;
  OPCASE(MacFldPeek): {
    long Idx = IDX();
    if (Idx < 0 || Idx >= FldSz[Ip->B])
      boundsError("field", FieldNames[static_cast<size_t>(Ip->B)]);
    assert(In && "peek on a source filter");
    assert(InPos + static_cast<size_t>(Idx) < Window &&
           "peek past the input window");
    double C = Fld[Ip->B][Idx];
    double X = In[InPos + static_cast<size_t>(Idx)];
    R[Ip->A] = CountOps && Ip->Counted ? ops::fma(R[Ip->A], C, X)
                                       : R[Ip->A] + C * X;
    NEXT;
  }
  OPCASE(AddImm):
    R[Ip->A] = CountOps && Ip->Counted ? ops::add(R[Ip->B], Ip->Imm)
                                       : R[Ip->B] + Ip->Imm;
    NEXT;
  OPCASE(Jump):
    JUMPTO(Ip->A);
  OPCASE(JumpIfZero):
    if (R[Ip->A] == 0.0)
      JUMPTO(Ip->B);
    NEXT;
  OPCASE(JumpIfGe):
    if (R[Ip->A] >= R[Ip->B])
      JUMPTO(Ip->C);
    NEXT;
  OPCASE(IncJump):
    R[Ip->A] += 1.0;
    JUMPTO(Ip->B);
  OPCASE(Halt):
    if (InPos != static_cast<size_t>(PopRate) ||
        OutCur - Out != static_cast<ptrdiff_t>(PushRate))
      rateError(InPos, PopRate, OutCur - Out, PushRate);
    return;

#if !SLIN_TAPE_CGOTO
    }
  }
#endif
#undef OPCASE
#undef NEXT
#undef JUMPTO
#undef IDX
}

void OpProgram::run(WorkFrame &F, FieldStore &State, const double *In,
                    double *Out, std::vector<double> &Printed) const {
  assert(State.Values.size() == FieldNames.size() &&
         "field store does not match compiled field list");
  for (size_t I = 0; I != FieldNames.size(); ++I) {
    F.FldPtrs[I] = State.Values[I].data();
    F.FldSizes[I] = static_cast<int32_t>(State.Values[I].size());
  }
#if SLIN_COUNT_OPS
  if (ops::isCounting()) {
    runImpl<true>(F, In, Out, Printed);
    return;
  }
#endif
  runImpl<false>(F, In, Out, Printed);
}

//===----------------------------------------------------------------------===//
// Cross-firing state classification
//===----------------------------------------------------------------------===//
//
// The parallel backend (exec/Parallel.h) reconstructs the runtime state a
// filter would hold at steady iteration k without executing iterations
// 0..k-1. That is possible exactly when every mutable field either
// progresses in closed form (counters, modular cursors) or is rewritten
// each firing from the current input window (delay lines) — and when no
// value flows from one firing to the next through the register frame or
// local-array store. The walk below proves those properties directly on
// the instruction tape.

namespace {

/// Symbolic class of a register value at a store site.
struct ValClass {
  enum Kind {
    Constant,    ///< literal / const-scalar-field value, known
    FieldAffine, ///< value of the stored field plus a known delta
    Input,       ///< pure function of current-firing inputs & constants
    Opaque
  } K = Opaque;
  double Num = 0.0; ///< Constant: the value; FieldAffine: the delta
};

struct StateScan {
  const std::vector<Inst> &Code;
  const std::vector<FieldDef> &Fields;
  /// All pcs writing each register.
  std::vector<std::vector<int>> Writers;
  /// Instructions inside a conditional or loop region.
  std::vector<bool> Guarded;
  /// Fields already proven Affine/ModAffine (phase 1); reading them in an
  /// input-determined cone is fine — workers seed them exactly.
  std::vector<bool> ClosedForm;
  /// Mutable fields stored anywhere in the tape.
  std::vector<bool> Stored;

  StateScan(const std::vector<Inst> &Code, const std::vector<FieldDef> &Fields)
      : Code(Code), Fields(Fields), Guarded(Code.size(), false),
        ClosedForm(Fields.size(), false), Stored(Fields.size(), false) {}

  static int destReg(const Inst &I) {
    switch (I.K) {
    case Op::Push:
    case Op::Print:
    case Op::StoreFld:
    case Op::StoreFldIdx:
    case Op::StoreArr:
    case Op::ZeroArr:
    case Op::PopDiscard:
    case Op::Jump:
    case Op::JumpIfZero:
    case Op::JumpIfGe:
    case Op::Halt:
      return -1;
    case Op::IncJump:
      return I.A;
    default:
      return I.A;
    }
  }

  void mark() {
    for (size_t P = 0; P != Code.size(); ++P) {
      const Inst &I = Code[P];
      int Target = -1;
      switch (I.K) {
      case Op::Jump:
        Target = I.A;
        break;
      case Op::JumpIfZero:
        Target = I.B;
        break;
      case Op::JumpIfGe:
        Target = I.C;
        break;
      case Op::IncJump:
        Target = I.B;
        break;
      default:
        break;
      }
      if (Target < 0)
        continue;
      if (Target > static_cast<int>(P)) {
        // Forward branch: (P, Target) executes conditionally.
        for (int Q = static_cast<int>(P) + 1; Q < Target; ++Q)
          Guarded[static_cast<size_t>(Q)] = true;
      } else {
        // Back edge: [Target, P] is a loop body (variable trip count).
        for (int Q = Target; Q <= static_cast<int>(P); ++Q)
          Guarded[static_cast<size_t>(Q)] = true;
      }
    }
    Writers.assign(64, {});
    for (size_t P = 0; P != Code.size(); ++P) {
      int D = destReg(Code[P]);
      if (D < 0)
        continue;
      if (static_cast<size_t>(D) >= Writers.size())
        Writers.resize(static_cast<size_t>(D) + 1);
      Writers[static_cast<size_t>(D)].push_back(static_cast<int>(P));
    }
    for (size_t P = 0; P != Code.size(); ++P)
      if (Code[P].K == Op::StoreFld || Code[P].K == Op::StoreFldIdx)
        Stored[static_cast<size_t>(Code[P].B)] = true;
  }

  /// Every register (and local array) must be written earlier in tape
  /// order than it is first read, or values could flow between firings
  /// through the frame.
  const char *checkWriteBeforeRead() const {
    std::vector<bool> Written(Writers.size(), false);
    std::vector<bool> Zeroed(64, false);
    auto ReadOK = [&](int R) {
      return R >= 0 && static_cast<size_t>(R) < Written.size() &&
             Written[static_cast<size_t>(R)];
    };
    for (const Inst &I : Code) {
      std::array<int, 3> Reads = {-1, -1, -1};
      bool ReadsArr = false;
      switch (I.K) {
      case Op::Const:
      case Op::Pop:
      case Op::PopDiscard:
      case Op::PeekImm:
      case Op::Halt:
      case Op::Jump:
      case Op::ZeroArr:
        break;
      case Op::Copy:
      case Op::Round:
      case Op::Neg:
      case Op::Bool:
      case Op::Not:
        Reads[0] = I.B;
        break;
      case Op::Peek:
      case Op::Intrin:
        Reads[0] = I.C;
        break;
      case Op::LoadFld:
        break;
      case Op::LoadFldIdx:
        Reads[0] = I.C;
        break;
      case Op::LoadArr:
        Reads[0] = I.C;
        ReadsArr = true;
        break;
      case Op::StoreArr:
        Reads[0] = I.A;
        Reads[1] = I.C;
        break;
      case Op::StoreFld:
        Reads[0] = I.A;
        break;
      case Op::StoreFldIdx:
        Reads[0] = I.A;
        Reads[1] = I.C;
        break;
      case Op::Push:
      case Op::Print:
      case Op::JumpIfZero:
      case Op::IncJump:
        Reads[0] = I.A;
        break;
      case Op::JumpIfGe:
        Reads[0] = I.A;
        Reads[1] = I.B;
        break;
      case Op::AddImm:
        Reads[0] = I.B;
        break;
      case Op::MulAdd:
        Reads[0] = I.B;
        Reads[1] = I.C;
        Reads[2] = I.D;
        break;
      case Op::MacFldPeek:
        Reads[0] = I.A; // accumulator
        Reads[1] = I.C;
        break;
      default: // binary arithmetic / compares
        Reads[0] = I.B;
        Reads[1] = I.C;
        break;
      }
      for (int R : Reads)
        if (R != -1 && !ReadOK(R))
          return "register read before any write in the firing";
      if (ReadsArr) {
        size_t Slot = static_cast<size_t>(I.B);
        if (Slot >= Zeroed.size() || !Zeroed[Slot])
          return "local array read before its declaration zero-fill";
      }
      if (I.K == Op::ZeroArr) {
        size_t Slot = static_cast<size_t>(I.A);
        if (Slot >= Zeroed.size())
          Zeroed.resize(Slot + 1, false);
        Zeroed[Slot] = true;
      }
      int D = destReg(I);
      if (D >= 0)
        Written[static_cast<size_t>(D)] = true;
    }
    return nullptr;
  }

  /// The write to \p Reg that reaches a read at \p Pc in straight-line
  /// order: the nearest writer strictly before \p Pc. -1 when none. The
  /// register allocator reuses slots, so chains must be traced through
  /// reaching definitions, not unique writers.
  int nearestWriterBefore(int Reg, int Pc) const {
    if (Reg < 0 || static_cast<size_t>(Reg) >= Writers.size())
      return -1;
    int Best = -1;
    for (int P : Writers[static_cast<size_t>(Reg)])
      if (P < Pc && P > Best)
        Best = P;
    return Best;
  }

  /// Follows the producing chain of \p Reg as read at \p Pc for the
  /// closed-form patterns (field + const, optionally mod const). The
  /// chain must be straight-line (unguarded): a conditionally-executed
  /// definition has no unique linear reaching write. Returns Opaque when
  /// the chain is not one of the patterns.
  ValClass affineClass(int Reg, int Pc, int Field, int Depth) const {
    ValClass Bad;
    if (Depth > 64)
      return Bad;
    int W = nearestWriterBefore(Reg, Pc);
    if (W < 0 || Guarded[static_cast<size_t>(W)])
      return Bad;
    const Inst &I = Code[static_cast<size_t>(W)];
    switch (I.K) {
    case Op::Const:
      return {ValClass::Constant, I.Imm};
    case Op::LoadFld: {
      if (I.B == Field)
        return {ValClass::FieldAffine, 0.0};
      const FieldDef &F = Fields[static_cast<size_t>(I.B)];
      if (!F.IsMutable && !F.IsArray)
        return {ValClass::Constant, F.Init[0]};
      return Bad;
    }
    case Op::Copy:
      return affineClass(I.B, W, Field, Depth + 1);
    case Op::AddImm: {
      ValClass B = affineClass(I.B, W, Field, Depth + 1);
      if (B.K == ValClass::Constant)
        return {ValClass::Constant, B.Num + I.Imm};
      if (B.K == ValClass::FieldAffine)
        return {ValClass::FieldAffine, B.Num + I.Imm};
      return Bad;
    }
    case Op::Add:
    case Op::Sub: {
      ValClass B = affineClass(I.B, W, Field, Depth + 1);
      ValClass C = affineClass(I.C, W, Field, Depth + 1);
      double Sign = I.K == Op::Sub ? -1.0 : 1.0;
      if (B.K == ValClass::Constant && C.K == ValClass::Constant)
        return {ValClass::Constant, B.Num + Sign * C.Num};
      if (B.K == ValClass::FieldAffine && C.K == ValClass::Constant)
        return {ValClass::FieldAffine, B.Num + Sign * C.Num};
      if (I.K == Op::Add && B.K == ValClass::Constant &&
          C.K == ValClass::FieldAffine)
        return {ValClass::FieldAffine, B.Num + C.Num};
      return Bad;
    }
    default:
      return Bad;
    }
  }

  /// True when every value flowing into \p Reg, as read at \p Pc, derives
  /// from the current firing's inputs, constants, const fields, or
  /// closed-form fields. Straight-line reads have a unique reaching
  /// definition; reads in or fed from guarded regions conservatively
  /// require every writer of the register to qualify.
  bool inputDetermined(int Reg, int Pc, std::vector<int64_t> &Stack) const {
    int Nearest = nearestWriterBefore(Reg, Pc);
    if (Nearest < 0)
      return false;
    std::vector<int> Defs;
    if (!Guarded[static_cast<size_t>(Nearest)] &&
        !Guarded[static_cast<size_t>(Pc)])
      Defs.push_back(Nearest);
    else
      Defs = Writers[static_cast<size_t>(Reg)]; // any may reach via jumps
    bool OK = true;
    for (int P : Defs) {
      int64_t Tag = (static_cast<int64_t>(Reg) << 32) | P;
      bool Seen = false;
      for (int64_t T : Stack)
        if (T == Tag)
          Seen = true;
      if (Seen)
        continue; // cycle: grounded by the definition outside it
      Stack.push_back(Tag);
      const Inst &I = Code[static_cast<size_t>(P)];
      switch (I.K) {
      case Op::Const:
      case Op::Pop:
      case Op::Peek:
      case Op::PeekImm:
        break;
      case Op::LoadFld:
      case Op::LoadFldIdx: {
        const FieldDef &F = Fields[static_cast<size_t>(I.B)];
        bool Fine = !F.IsMutable || !Stored[static_cast<size_t>(I.B)] ||
                    ClosedForm[static_cast<size_t>(I.B)];
        if (!Fine)
          OK = false;
        else if (I.K == Op::LoadFldIdx)
          OK = OK && inputDetermined(I.C, P, Stack);
        break;
      }
      case Op::Copy:
      case Op::Round:
      case Op::Neg:
      case Op::Bool:
      case Op::Not:
        OK = OK && inputDetermined(I.B, P, Stack);
        break;
      case Op::Intrin:
        OK = OK && inputDetermined(I.C, P, Stack);
        break;
      case Op::AddImm:
        OK = OK && inputDetermined(I.B, P, Stack);
        break;
      case Op::LoadArr:
        OK = OK && inputDetermined(I.C, P, Stack);
        break;
      case Op::MulAdd:
        OK = OK && inputDetermined(I.B, P, Stack) &&
             inputDetermined(I.C, P, Stack) && inputDetermined(I.D, P, Stack);
        break;
      case Op::MacFldPeek: {
        const FieldDef &F = Fields[static_cast<size_t>(I.B)];
        if (F.IsMutable && Stored[static_cast<size_t>(I.B)])
          OK = false;
        else
          OK = OK && inputDetermined(I.C, P, Stack);
        break;
      }
      case Op::IncJump:
        break; // counter += 1; grounded by its Const initializer
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Div:
      case Op::Mod:
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Eq:
      case Op::Ne:
        OK = OK && inputDetermined(I.B, P, Stack) &&
             inputDetermined(I.C, P, Stack);
        break;
      default:
        OK = false; // stores/jumps never write registers
        break;
      }
      Stack.pop_back();
      if (!OK)
        break;
    }
    return OK;
  }
};

} // namespace

SteadyStateInfo
OpProgram::analyzeSteadyState(const std::vector<FieldDef> &Fields) const {
  SteadyStateInfo Info;
  auto Fail = [&](const char *Why) {
    Info.Reconstructable = false;
    Info.Reason = Why;
    Info.Updates.clear();
    return Info;
  };

  StateScan S(Code, Fields);
  S.mark();
  if (const char *Why = S.checkWriteBeforeRead())
    return Fail(Why);

  // Locate the field stores; each mutable field may be stored once, at
  // top level (a guarded store retains stale state on the skipped path).
  std::vector<int> StorePc(Fields.size(), -1);
  for (size_t P = 0; P != Code.size(); ++P) {
    const Inst &I = Code[P];
    if (I.K == Op::StoreFldIdx)
      return Fail("indexed store to a mutable field array");
    if (I.K != Op::StoreFld)
      continue;
    if (S.Guarded[P])
      return Fail("conditional field store");
    if (StorePc[static_cast<size_t>(I.B)] >= 0)
      return Fail("field stored more than once per firing");
    StorePc[static_cast<size_t>(I.B)] = static_cast<int>(P);
  }

  // Phase 1: closed-form progressions (f' = f + c, f' = fmod(f + c, m)).
  for (size_t F = 0; F != Fields.size(); ++F) {
    if (StorePc[F] < 0)
      continue;
    int Pc = StorePc[F];
    const Inst &St = Code[static_cast<size_t>(Pc)];
    ValClass V = S.affineClass(St.A, Pc, static_cast<int>(F), 0);
    if (V.K == ValClass::FieldAffine) {
      Info.Updates.push_back({static_cast<int>(F),
                              SteadyStateInfo::FieldKind::Affine, V.Num, 0.0});
      S.ClosedForm[F] = true;
      continue;
    }
    // fmod(f + c, m): a Mod whose left chain is affine in f and whose
    // right chain is a positive constant.
    int W = S.nearestWriterBefore(St.A, Pc);
    if (W >= 0 && !S.Guarded[static_cast<size_t>(W)]) {
      const Inst &Prod = Code[static_cast<size_t>(W)];
      if (Prod.K == Op::Mod) {
        ValClass L = S.affineClass(Prod.B, W, static_cast<int>(F), 0);
        ValClass M = S.affineClass(Prod.C, W, static_cast<int>(F), 0);
        if (L.K == ValClass::FieldAffine && M.K == ValClass::Constant &&
            M.Num > 0) {
          Info.Updates.push_back({static_cast<int>(F),
                                  SteadyStateInfo::FieldKind::ModAffine,
                                  L.Num, M.Num});
          S.ClosedForm[F] = true;
          continue;
        }
      }
    }
  }

  // Phase 2: remaining stores must be rewritten from current inputs only.
  for (size_t F = 0; F != Fields.size(); ++F) {
    if (StorePc[F] < 0 || S.ClosedForm[F])
      continue;
    const Inst &St = Code[static_cast<size_t>(StorePc[F])];
    std::vector<int64_t> Stack;
    if (!S.inputDetermined(St.A, StorePc[F], Stack))
      return Fail("field store depends on prior-firing state");
    Info.Updates.push_back({static_cast<int>(F),
                            SteadyStateInfo::FieldKind::InputDetermined, 0.0,
                            0.0});
  }

  Info.Reconstructable = true;
  return Info;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

void OpProgram::serialize(serial::Writer &W) const {
  W.u32(static_cast<uint32_t>(Code.size()));
  for (const Inst &I : Code) {
    W.u8(static_cast<uint8_t>(I.K));
    W.u8(static_cast<uint8_t>((I.Counted ? 1 : 0) | (I.IntIdx ? 2 : 0)));
    W.i32(I.A);
    W.i32(I.B);
    W.i32(I.C);
    W.i32(I.D);
    W.f64(I.Imm);
  }
  W.i32s(ArrBase);
  W.i32s(ArrDeclSize);
  W.strs(ArrNames);
  W.strs(FieldNames);
  W.i32(NumRegs);
  W.i32(ArrStoreSize);
  W.i32(PeekRate);
  W.i32(PopRate);
  W.i32(PushRate);
}

bool OpProgram::deserialize(serial::Reader &R, OpProgram &Out) {
  OpProgram P;
  uint32_t N = R.u32();
  // Each instruction occupies 26 bytes on the wire.
  if (!R.ok() || static_cast<uint64_t>(N) * 26 > R.remaining()) {
    R.fail();
    return false;
  }
  P.Code.resize(N);
  for (Inst &I : P.Code) {
    uint8_t K = R.u8();
    uint8_t Flags = R.u8();
    if (K > static_cast<uint8_t>(Op::Halt) || Flags > 3) {
      R.fail();
      return false;
    }
    I.K = static_cast<Op>(K);
    I.Counted = (Flags & 1) != 0;
    I.IntIdx = (Flags & 2) != 0;
    I.A = R.i32();
    I.B = R.i32();
    I.C = R.i32();
    I.D = R.i32();
    I.Imm = R.f64();
    // Control flow must stay on the tape (the dispatch loop trusts pc).
    int32_t Target = I.K == Op::Jump ? I.A
                     : I.K == Op::JumpIfZero || I.K == Op::IncJump ? I.B
                     : I.K == Op::JumpIfGe ? I.C
                                           : 0;
    if (Target < 0 || static_cast<uint32_t>(Target) >= N) {
      R.fail();
      return false;
    }
  }
  P.ArrBase = R.i32s();
  P.ArrDeclSize = R.i32s();
  P.ArrNames = R.strs();
  P.FieldNames = R.strs();
  P.NumRegs = R.i32();
  P.ArrStoreSize = R.i32();
  P.PeekRate = R.i32();
  P.PopRate = R.i32();
  P.PushRate = R.i32();
  if (!R.ok() || P.NumRegs < 0 || P.ArrStoreSize < 0 || P.PeekRate < 0 ||
      P.PopRate < 0 || P.PushRate < 0 ||
      P.ArrBase.size() != P.ArrDeclSize.size() ||
      P.ArrBase.size() != P.ArrNames.size())
    return false;
  Out = std::move(P);
  return true;
}
