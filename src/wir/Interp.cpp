//===- wir/Interp.cpp - Work-IR interpreter --------------------------------==//

#include "wir/Interp.h"

#include "support/Diag.h"
#include "support/OpCounters.h"

#include <cassert>
#include <cmath>

using namespace slin;
using namespace slin::wir;

Tape::~Tape() = default;

void Tape::print(double) {}

double wir::evalIntrinsic(Intrinsic Fn, double Arg) {
  switch (Fn) {
  case Intrinsic::Sin:   return std::sin(Arg);
  case Intrinsic::Cos:   return std::cos(Arg);
  case Intrinsic::Tan:   return std::tan(Arg);
  case Intrinsic::Atan:  return std::atan(Arg);
  case Intrinsic::Sqrt:  return std::sqrt(Arg);
  case Intrinsic::Abs:   return std::fabs(Arg);
  case Intrinsic::Exp:   return std::exp(Arg);
  case Intrinsic::Log:   return std::log(Arg);
  case Intrinsic::Floor: return std::floor(Arg);
  case Intrinsic::Round: return std::round(Arg);
  }
  unreachable("unknown intrinsic");
}

namespace {

class Interp {
public:
  Interp(const WorkFunction &Work, const std::vector<FieldDef> &Fields,
         FieldStore &State, Tape &T)
      : Work(Work), Fields(Fields), State(State), T(T),
        Scalars(static_cast<size_t>(Work.NumScalarSlots), 0.0),
        Arrays(static_cast<size_t>(Work.NumArraySlots)) {}

  void run() { execBody(Work.Body); }

private:
  static int toIndex(double V) {
    return static_cast<int>(std::lround(V));
  }

  /// Index and loop-bound expressions model integer/address arithmetic,
  /// which the paper's FLOP counts exclude.
  double evalUncounted(const Expr &E) {
    ops::CountingScope Scope(false);
    return eval(E);
  }

  double eval(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Const:
      return cast<ConstExpr>(&E)->Value;
    case ExprKind::VarRef: {
      const auto *V = cast<VarRefExpr>(&E);
      assert(V->Slot >= 0 &&
             static_cast<size_t>(V->Slot) < Scalars.size() &&
             "scalar slot out of range (resolver bug)");
      return Scalars[static_cast<size_t>(V->Slot)];
    }
    case ExprKind::ArrayRef: {
      const auto *A = cast<ArrayRefExpr>(&E);
      const std::vector<double> &Arr =
          Arrays[static_cast<size_t>(A->Slot)];
      int I = toIndex(evalUncounted(*A->Index));
      if (I < 0 || static_cast<size_t>(I) >= Arr.size())
        fatalError("array '" + A->Name + "' index out of range");
      return Arr[static_cast<size_t>(I)];
    }
    case ExprKind::FieldRef: {
      const auto *F = cast<FieldRefExpr>(&E);
      const std::vector<double> &Val =
          State.Values[static_cast<size_t>(F->FieldIndex)];
      if (!F->Index)
        return Val[0];
      int I = toIndex(evalUncounted(*F->Index));
      if (I < 0 || static_cast<size_t>(I) >= Val.size())
        fatalError("field '" + F->Name + "' index out of range");
      return Val[static_cast<size_t>(I)];
    }
    case ExprKind::Peek: {
      int I = toIndex(evalUncounted(*cast<PeekExpr>(&E)->Index));
      // Tape implementations only assert in their own debug builds;
      // stop here, at the firing filter, with the offending index.
      assert(I >= 0 && "negative peek index");
      return T.peek(I);
    }
    case ExprKind::Pop:
      return T.pop();
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      double L = eval(*B->LHS);
      // Short-circuit logical operators (integer ops on IA-32; uncounted).
      if (B->Op == BinOp::LAnd)
        return L != 0.0 && eval(*B->RHS) != 0.0 ? 1.0 : 0.0;
      if (B->Op == BinOp::LOr)
        return L != 0.0 || eval(*B->RHS) != 0.0 ? 1.0 : 0.0;
      double R = eval(*B->RHS);
      switch (B->Op) {
      case BinOp::Add: return ops::add(L, R);
      case BinOp::Sub: return ops::sub(L, R);
      case BinOp::Mul: return ops::mul(L, R);
      case BinOp::Div: return ops::div(L, R);
      case BinOp::Mod:
        return ops::mod(L, R);
      case BinOp::Lt: return ops::cmp(L < R) ? 1.0 : 0.0;
      case BinOp::Le: return ops::cmp(L <= R) ? 1.0 : 0.0;
      case BinOp::Gt: return ops::cmp(L > R) ? 1.0 : 0.0;
      case BinOp::Ge: return ops::cmp(L >= R) ? 1.0 : 0.0;
      case BinOp::Eq: return ops::cmp(L == R) ? 1.0 : 0.0;
      case BinOp::Ne: return ops::cmp(L != R) ? 1.0 : 0.0;
      case BinOp::LAnd:
      case BinOp::LOr:
        break;
      }
      unreachable("unknown binop");
    }
    case ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(&E);
      double V = eval(*U->Operand);
      if (U->Op == UnOp::Neg)
        return ops::sub(0.0, V); // FCHS
      return V == 0.0 ? 1.0 : 0.0;
    }
    case ExprKind::Call: {
      const auto *C = cast<CallExpr>(&E);
      return ops::trans(evalIntrinsic(C->Fn, eval(*C->Arg)));
    }
    }
    unreachable("unknown expr kind");
  }

  void execBody(const StmtList &Body) {
    for (const StmtPtr &S : Body)
      exec(*S);
  }

  void exec(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      Scalars[static_cast<size_t>(A->Slot)] = eval(*A->Value);
      return;
    }
    case StmtKind::ArrayAssign: {
      const auto *A = cast<ArrayAssignStmt>(&S);
      std::vector<double> &Arr = Arrays[static_cast<size_t>(A->Slot)];
      int I = toIndex(evalUncounted(*A->Index));
      if (I < 0 || static_cast<size_t>(I) >= Arr.size())
        fatalError("array '" + A->Name + "' index out of range");
      Arr[static_cast<size_t>(I)] = eval(*A->Value);
      return;
    }
    case StmtKind::FieldAssign: {
      const auto *F = cast<FieldAssignStmt>(&S);
      std::vector<double> &Val =
          State.Values[static_cast<size_t>(F->FieldIndex)];
      if (!F->Index) {
        Val[0] = eval(*F->Value);
        return;
      }
      int I = toIndex(evalUncounted(*F->Index));
      if (I < 0 || static_cast<size_t>(I) >= Val.size())
        fatalError("field '" + F->Name + "' index out of range");
      Val[static_cast<size_t>(I)] = eval(*F->Value);
      return;
    }
    case StmtKind::LocalArray: {
      const auto *L = cast<LocalArrayStmt>(&S);
      Arrays[static_cast<size_t>(L->Slot)].assign(
          static_cast<size_t>(L->Size), 0.0);
      return;
    }
    case StmtKind::Push:
      T.push(eval(*cast<PushStmt>(&S)->Value));
      return;
    case StmtKind::PopDiscard:
      T.pop();
      return;
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(&S);
      int Begin = toIndex(evalUncounted(*F->Begin));
      int End = toIndex(evalUncounted(*F->End));
      for (int I = Begin; I < End; ++I) {
        Scalars[static_cast<size_t>(F->Slot)] = I;
        execBody(F->Body);
      }
      return;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(&S);
      if (eval(*I->Cond) != 0.0)
        execBody(I->Then);
      else
        execBody(I->Else);
      return;
    }
    case StmtKind::Print:
      T.print(eval(*cast<PrintStmt>(&S)->Value));
      return;
    case StmtKind::Uncounted: {
      ops::CountingScope Scope(false);
      execBody(cast<UncountedStmt>(&S)->Body);
      return;
    }
    }
    unreachable("unknown stmt kind");
  }

  const WorkFunction &Work;
  const std::vector<FieldDef> &Fields;
  FieldStore &State;
  Tape &T;
  std::vector<double> Scalars;
  std::vector<std::vector<double>> Arrays;
};

} // namespace

void wir::interpret(const WorkFunction &Work,
                    const std::vector<FieldDef> &Fields, FieldStore &State,
                    Tape &T) {
  if (!Work.Resolved)
    resolve(Work, Fields);
  assert(State.Values.size() == Fields.size() &&
         "field store does not match field list");
  Interp(Work, Fields, State, T).run();
}
