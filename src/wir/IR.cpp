//===- wir/IR.cpp - Work-function IR implementation -----------------------==//

#include "wir/IR.h"

#include "support/Diag.h"

#include <cstdio>
#include <unordered_map>

using namespace slin;
using namespace slin::wir;

Expr::~Expr() = default;
Stmt::~Stmt() = default;

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

static ExprPtr cloneOrNull(const ExprPtr &E) {
  return E ? E->clone() : nullptr;
}

ExprPtr Expr::clone() const {
  switch (Kind) {
  case ExprKind::Const:
    return std::make_unique<ConstExpr>(cast<ConstExpr>(this)->Value);
  case ExprKind::VarRef:
    return std::make_unique<VarRefExpr>(cast<VarRefExpr>(this)->Name);
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(this);
    return std::make_unique<ArrayRefExpr>(A->Name, A->Index->clone());
  }
  case ExprKind::FieldRef: {
    const auto *F = cast<FieldRefExpr>(this);
    return std::make_unique<FieldRefExpr>(F->Name, cloneOrNull(F->Index));
  }
  case ExprKind::Peek:
    return std::make_unique<PeekExpr>(cast<PeekExpr>(this)->Index->clone());
  case ExprKind::Pop:
    return std::make_unique<PopExpr>();
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(this);
    return std::make_unique<BinaryExpr>(B->Op, B->LHS->clone(),
                                        B->RHS->clone());
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(this);
    return std::make_unique<UnaryExpr>(U->Op, U->Operand->clone());
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(this);
    return std::make_unique<CallExpr>(C->Fn, C->Arg->clone());
  }
  }
  unreachable("unknown expr kind");
}

StmtList wir::cloneStmts(const StmtList &Body) {
  StmtList Out;
  Out.reserve(Body.size());
  for (const StmtPtr &S : Body)
    Out.push_back(S->clone());
  return Out;
}

StmtPtr Stmt::clone() const {
  switch (Kind) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(this);
    return std::make_unique<AssignStmt>(A->Name, A->Value->clone());
  }
  case StmtKind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(this);
    return std::make_unique<ArrayAssignStmt>(A->Name, A->Index->clone(),
                                             A->Value->clone());
  }
  case StmtKind::FieldAssign: {
    const auto *F = cast<FieldAssignStmt>(this);
    return std::make_unique<FieldAssignStmt>(F->Name, cloneOrNull(F->Index),
                                             F->Value->clone());
  }
  case StmtKind::LocalArray: {
    const auto *L = cast<LocalArrayStmt>(this);
    return std::make_unique<LocalArrayStmt>(L->Name, L->Size);
  }
  case StmtKind::Push:
    return std::make_unique<PushStmt>(cast<PushStmt>(this)->Value->clone());
  case StmtKind::PopDiscard:
    return std::make_unique<PopDiscardStmt>();
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(this);
    return std::make_unique<ForStmt>(F->Var, F->Begin->clone(),
                                     F->End->clone(), cloneStmts(F->Body));
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(this);
    return std::make_unique<IfStmt>(I->Cond->clone(), cloneStmts(I->Then),
                                    cloneStmts(I->Else));
  }
  case StmtKind::Print:
    return std::make_unique<PrintStmt>(cast<PrintStmt>(this)->Value->clone());
  case StmtKind::Uncounted:
    return std::make_unique<UncountedStmt>(
        cloneStmts(cast<UncountedStmt>(this)->Body));
  }
  unreachable("unknown stmt kind");
}

WorkFunction WorkFunction::clone() const {
  WorkFunction W(PeekRate, PopRate, PushRate, cloneStmts(Body));
  return W;
}

//===----------------------------------------------------------------------===//
// Resolution
//===----------------------------------------------------------------------===//

namespace {

class Resolver {
public:
  Resolver(const WorkFunction &Work, const std::vector<FieldDef> &Fields)
      : Work(Work), Fields(Fields) {}

  void run() {
    resolveBody(Work.Body);
    Work.NumScalarSlots = static_cast<int>(Scalars.size());
    Work.NumArraySlots = static_cast<int>(Arrays.size());
    Work.Resolved = true;
  }

private:
  void resolveBody(const StmtList &Body) {
    for (const StmtPtr &S : Body)
      resolveStmt(*S);
  }

  void resolveStmt(const Stmt &S) {
    switch (S.kind()) {
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(&S);
      resolveExpr(*A->Value);
      A->Slot = defineScalar(A->Name);
      return;
    }
    case StmtKind::ArrayAssign: {
      const auto *A = cast<ArrayAssignStmt>(&S);
      resolveExpr(*A->Index);
      resolveExpr(*A->Value);
      A->Slot = lookupArray(A->Name);
      return;
    }
    case StmtKind::FieldAssign: {
      const auto *F = cast<FieldAssignStmt>(&S);
      if (F->Index)
        resolveExpr(*F->Index);
      resolveExpr(*F->Value);
      F->FieldIndex = lookupField(F->Name, F->Index != nullptr);
      if (!Fields[F->FieldIndex].IsMutable)
        fatalError("assignment to non-mutable field '" + F->Name + "'");
      return;
    }
    case StmtKind::LocalArray: {
      const auto *L = cast<LocalArrayStmt>(&S);
      if (Arrays.count(L->Name) || Scalars.count(L->Name))
        fatalError("redeclaration of local '" + L->Name + "'");
      int Slot = static_cast<int>(Arrays.size());
      Arrays[L->Name] = Slot;
      L->Slot = Slot;
      return;
    }
    case StmtKind::Push:
      resolveExpr(*cast<PushStmt>(&S)->Value);
      return;
    case StmtKind::PopDiscard:
      return;
    case StmtKind::For: {
      const auto *F = cast<ForStmt>(&S);
      resolveExpr(*F->Begin);
      resolveExpr(*F->End);
      F->Slot = defineScalar(F->Var);
      resolveBody(F->Body);
      return;
    }
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(&S);
      resolveExpr(*I->Cond);
      resolveBody(I->Then);
      resolveBody(I->Else);
      return;
    }
    case StmtKind::Print:
      resolveExpr(*cast<PrintStmt>(&S)->Value);
      return;
    case StmtKind::Uncounted:
      resolveBody(cast<UncountedStmt>(&S)->Body);
      return;
    }
    unreachable("unknown stmt kind");
  }

  void resolveExpr(const Expr &E) {
    switch (E.kind()) {
    case ExprKind::Const:
    case ExprKind::Pop:
      return;
    case ExprKind::VarRef: {
      const auto *V = cast<VarRefExpr>(&E);
      auto It = Scalars.find(V->Name);
      if (It == Scalars.end())
        fatalError("use of undefined variable '" + V->Name + "'");
      V->Slot = It->second;
      return;
    }
    case ExprKind::ArrayRef: {
      const auto *A = cast<ArrayRefExpr>(&E);
      resolveExpr(*A->Index);
      A->Slot = lookupArray(A->Name);
      return;
    }
    case ExprKind::FieldRef: {
      const auto *F = cast<FieldRefExpr>(&E);
      if (F->Index)
        resolveExpr(*F->Index);
      F->FieldIndex = lookupField(F->Name, F->Index != nullptr);
      return;
    }
    case ExprKind::Peek:
      resolveExpr(*cast<PeekExpr>(&E)->Index);
      return;
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(&E);
      resolveExpr(*B->LHS);
      resolveExpr(*B->RHS);
      return;
    }
    case ExprKind::Unary:
      resolveExpr(*cast<UnaryExpr>(&E)->Operand);
      return;
    case ExprKind::Call:
      resolveExpr(*cast<CallExpr>(&E)->Arg);
      return;
    }
    unreachable("unknown expr kind");
  }

  int defineScalar(const std::string &Name) {
    if (Arrays.count(Name))
      fatalError("'" + Name + "' used both as scalar and array");
    auto It = Scalars.find(Name);
    if (It != Scalars.end())
      return It->second;
    int Slot = static_cast<int>(Scalars.size());
    Scalars[Name] = Slot;
    return Slot;
  }

  int lookupArray(const std::string &Name) {
    auto It = Arrays.find(Name);
    if (It == Arrays.end())
      fatalError("use of undeclared array '" + Name + "'");
    return It->second;
  }

  int lookupField(const std::string &Name, bool Indexed) {
    for (size_t I = 0, E = Fields.size(); I != E; ++I) {
      if (Fields[I].Name != Name)
        continue;
      if (Fields[I].IsArray != Indexed)
        fatalError("field '" + Name + "' " +
                   (Indexed ? "is not an array" : "requires an index"));
      return static_cast<int>(I);
    }
    fatalError("use of undefined field '" + Name + "'");
  }

  const WorkFunction &Work;
  const std::vector<FieldDef> &Fields;
  std::unordered_map<std::string, int> Scalars;
  std::unordered_map<std::string, int> Arrays;
};

} // namespace

void wir::resolve(const WorkFunction &Work,
                  const std::vector<FieldDef> &Fields) {
  Resolver(Work, Fields).run();
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

const char *binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:  return "+";
  case BinOp::Sub:  return "-";
  case BinOp::Mul:  return "*";
  case BinOp::Div:  return "/";
  case BinOp::Mod:  return "%";
  case BinOp::Lt:   return "<";
  case BinOp::Le:   return "<=";
  case BinOp::Gt:   return ">";
  case BinOp::Ge:   return ">=";
  case BinOp::Eq:   return "==";
  case BinOp::Ne:   return "!=";
  case BinOp::LAnd: return "&&";
  case BinOp::LOr:  return "||";
  }
  unreachable("unknown binop");
}

const char *intrinsicName(Intrinsic Fn) {
  switch (Fn) {
  case Intrinsic::Sin:   return "sin";
  case Intrinsic::Cos:   return "cos";
  case Intrinsic::Tan:   return "tan";
  case Intrinsic::Atan:  return "atan";
  case Intrinsic::Sqrt:  return "sqrt";
  case Intrinsic::Abs:   return "abs";
  case Intrinsic::Exp:   return "exp";
  case Intrinsic::Log:   return "log";
  case Intrinsic::Floor: return "floor";
  case Intrinsic::Round: return "round";
  }
  unreachable("unknown intrinsic");
}

void printExpr(const Expr &E, std::string &Out) {
  switch (E.kind()) {
  case ExprKind::Const: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", cast<ConstExpr>(&E)->Value);
    Out += Buf;
    return;
  }
  case ExprKind::VarRef:
    Out += cast<VarRefExpr>(&E)->Name;
    return;
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(&E);
    Out += A->Name + "[";
    printExpr(*A->Index, Out);
    Out += "]";
    return;
  }
  case ExprKind::FieldRef: {
    const auto *F = cast<FieldRefExpr>(&E);
    Out += F->Name;
    if (F->Index) {
      Out += "[";
      printExpr(*F->Index, Out);
      Out += "]";
    }
    return;
  }
  case ExprKind::Peek: {
    Out += "peek(";
    printExpr(*cast<PeekExpr>(&E)->Index, Out);
    Out += ")";
    return;
  }
  case ExprKind::Pop:
    Out += "pop()";
    return;
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    Out += "(";
    printExpr(*B->LHS, Out);
    Out += " ";
    Out += binOpName(B->Op);
    Out += " ";
    printExpr(*B->RHS, Out);
    Out += ")";
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    Out += U->Op == UnOp::Neg ? "-" : "!";
    printExpr(*U->Operand, Out);
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    Out += intrinsicName(C->Fn);
    Out += "(";
    printExpr(*C->Arg, Out);
    Out += ")";
    return;
  }
  }
  unreachable("unknown expr kind");
}

void printBody(const StmtList &Body, int Indent, std::string &Out);

void printStmt(const Stmt &S, int Indent, std::string &Out) {
  Out.append(static_cast<size_t>(Indent) * 2, ' ');
  switch (S.kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    Out += A->Name + " = ";
    printExpr(*A->Value, Out);
    Out += ";\n";
    return;
  }
  case StmtKind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(&S);
    Out += A->Name + "[";
    printExpr(*A->Index, Out);
    Out += "] = ";
    printExpr(*A->Value, Out);
    Out += ";\n";
    return;
  }
  case StmtKind::FieldAssign: {
    const auto *F = cast<FieldAssignStmt>(&S);
    Out += F->Name;
    if (F->Index) {
      Out += "[";
      printExpr(*F->Index, Out);
      Out += "]";
    }
    Out += " = ";
    printExpr(*F->Value, Out);
    Out += ";\n";
    return;
  }
  case StmtKind::LocalArray: {
    const auto *L = cast<LocalArrayStmt>(&S);
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "float[%d] %s;\n", L->Size,
                  L->Name.c_str());
    Out += Buf;
    return;
  }
  case StmtKind::Push: {
    Out += "push(";
    printExpr(*cast<PushStmt>(&S)->Value, Out);
    Out += ");\n";
    return;
  }
  case StmtKind::PopDiscard:
    Out += "pop();\n";
    return;
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(&S);
    Out += "for (" + F->Var + " = ";
    printExpr(*F->Begin, Out);
    Out += "; " + F->Var + " < ";
    printExpr(*F->End, Out);
    Out += "; " + F->Var + "++) {\n";
    printBody(F->Body, Indent + 1, Out);
    Out.append(static_cast<size_t>(Indent) * 2, ' ');
    Out += "}\n";
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(&S);
    Out += "if (";
    printExpr(*I->Cond, Out);
    Out += ") {\n";
    printBody(I->Then, Indent + 1, Out);
    Out.append(static_cast<size_t>(Indent) * 2, ' ');
    if (!I->Else.empty()) {
      Out += "} else {\n";
      printBody(I->Else, Indent + 1, Out);
      Out.append(static_cast<size_t>(Indent) * 2, ' ');
    }
    Out += "}\n";
    return;
  }
  case StmtKind::Print: {
    Out += "print(";
    printExpr(*cast<PrintStmt>(&S)->Value, Out);
    Out += ");\n";
    return;
  }
  case StmtKind::Uncounted: {
    Out += "integer {\n";
    printBody(cast<UncountedStmt>(&S)->Body, Indent + 1, Out);
    Out.append(static_cast<size_t>(Indent) * 2, ' ');
    Out += "}\n";
    return;
  }
  }
  unreachable("unknown stmt kind");
}

void printBody(const StmtList &Body, int Indent, std::string &Out) {
  for (const StmtPtr &S : Body)
    printStmt(*S, Indent, Out);
}

} // namespace

std::string wir::print(const WorkFunction &Work) {
  char Buf[80];
  std::snprintf(Buf, sizeof(Buf), "work peek %d pop %d push %d {\n",
                Work.PeekRate, Work.PopRate, Work.PushRate);
  std::string Out = Buf;
  printBody(Work.Body, 1, Out);
  Out += "}\n";
  return Out;
}

std::string wir::print(const Expr &E) {
  std::string Out;
  printExpr(E, Out);
  return Out;
}
