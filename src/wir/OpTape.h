//===- wir/OpTape.h - Flattened work-function op tape -----------*- C++ -*-===//
///
/// \file
/// The compiled execution form of a work function: the IR tree is
/// flattened once into a linear array of fixed-size instructions (an "op
/// tape") over a flat double register frame, executed by a tight dispatch
/// loop — no recursion, no virtual tape calls, no per-node allocation.
/// This is the per-filter half of the compiled execution engine
/// (exec/CompiledExecutor.h); input windows and output cursors are raw
/// pointers into the engine's flat channel buffers.
///
/// Semantics are bit-identical to the tree interpreter (wir/Interp.h):
/// evaluation order, short-circuiting, index rounding and bounds checks
/// all match, so the two engines produce byte-for-byte equal output
/// streams. Instructions that the interpreter executes under
/// CountingScope(false) (index arithmetic, loop bounds, Uncounted blocks,
/// logical combining) are statically tagged uncounted, so FLOP totals
/// also match the interpreter exactly.
///
/// Dispatch compiles to two loops: a counted one routing arithmetic
/// through the op counters, and an ops-free fast path taken whenever
/// counting is disabled at runtime (and unconditionally when the library
/// is built with SLIN_COUNT_OPS=0) — see support/OpCounters.h.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_WIR_OPTAPE_H
#define SLIN_WIR_OPTAPE_H

#include "wir/Interp.h"

#include <cstdint>
#include <string>
#include <vector>

namespace slin {

namespace serial {
class Writer;
class Reader;
} // namespace serial

namespace wir {

enum class Op : uint8_t {
  Const,    ///< R[A] = Imm
  Copy,     ///< R[A] = R[B]
  Peek,     ///< R[A] = In[pos + round(R[C])]
  PeekImm,  ///< R[A] = In[pos + B]
  Pop,      ///< R[A] = In[pos++]
  PopDiscard,
  Push,     ///< *Out++ = R[A]
  Print,    ///< sink(R[A])
  LoadFld,  ///< R[A] = Fld[B][0]
  StoreFld, ///< Fld[B][0] = R[A]
  LoadFldIdx,  ///< R[A] = Fld[B][round(R[C])]   (bounds-checked)
  StoreFldIdx, ///< Fld[B][round(R[C])] = R[A]
  LoadArr,     ///< R[A] = ArrStore[base(B) + round(R[C])]
  StoreArr,    ///< ArrStore[base(B) + round(R[C])] = R[A]
  ZeroArr,     ///< zero-fill local array slot B (declared size C)
  Add, Sub, Mul, Div, Mod,     ///< R[A] = R[B] op R[C]
  Lt, Le, Gt, Ge, Eq, Ne,      ///< R[A] = R[B] cmp R[C] ? 1 : 0
  Bool,     ///< R[A] = R[B] != 0 ? 1 : 0  (uncounted; logical results)
  Not,      ///< R[A] = R[B] == 0 ? 1 : 0  (uncounted)
  Round,    ///< R[A] = lround(R[B])       (uncounted index conversion)
  Neg,      ///< R[A] = 0 - R[B]           (counted as a subtract)
  Intrin,   ///< R[A] = intrinsic(B)(R[C])
  // Fused superinstructions (peephole-formed; arithmetic identical to the
  // sequences they replace, counted as the constituent ops).
  MulAdd,     ///< R[A] = R[D] + R[B] * R[C]
  MacFldPeek, ///< R[A] += Fld[B][idx] * In[pos + idx], idx = round(R[C])
  AddImm,     ///< R[A] = R[B] + Imm
  Jump,     ///< pc = A
  JumpIfZero, ///< if R[A] == 0 pc = B
  JumpIfGe,   ///< if R[A] >= R[B] pc = C  (uncounted loop condition)
  IncJump,    ///< R[A] += 1; pc = B       (loop back-edge)
  Halt
};

struct Inst {
  Op K = Op::Halt;
  bool Counted = false; ///< route through the op counters when counting
  /// Index operand (C) is statically known integral: convert with a cast
  /// instead of lround (set by the int-register analysis; exact).
  bool IntIdx = false;
  int32_t A = 0, B = 0, C = 0, D = 0;
  double Imm = 0.0;
};

/// Reusable per-filter-instance scratch for tape execution; sized by
/// OpProgram::prepareFrame once, reused across firings.
struct WorkFrame {
  std::vector<double> Regs;
  std::vector<double> ArrStore;
  std::vector<int32_t> ArrSizes;  ///< logical (declared-so-far) sizes
  std::vector<double *> FldPtrs;  ///< field data, cached per firing
  std::vector<int32_t> FldSizes;
};

/// Classification of a work function's cross-firing state, computed by
/// OpProgram::analyzeSteadyState for the parallel backend's shard-boundary
/// reconstruction (exec/Parallel.h). A firing is *reconstructable* when
/// its observable behaviour is a function of (a) the current firing's
/// input window, (b) fields whose per-firing progression has a closed
/// form, and (c) fields fully rewritten from the current inputs — so a
/// worker can jump to steady iteration k by seeding (b) exactly and
/// replaying a bounded warmup to refresh (c) and the channel contents.
struct SteadyStateInfo {
  enum class FieldKind {
    Affine,          ///< f' = f + Delta; seed f += Delta * firings
    ModAffine,       ///< f' = fmod(f + Delta, Mod), 0 <= f < Mod
    InputDetermined, ///< rewritten each firing from current inputs only
  };
  struct FieldUpdate {
    int Field = -1;
    FieldKind Kind = FieldKind::InputDetermined;
    double Delta = 0.0;
    double Mod = 0.0; ///< ModAffine only
  };

  /// False: the tape carries state this analysis cannot reconstruct
  /// (conditional or indexed field stores, self-referencing accumulators,
  /// values read before they are written in a firing). Shard boundaries
  /// cannot be reconstructed; the parallel backend falls back.
  bool Reconstructable = false;
  const char *Reason = ""; ///< why not, when !Reconstructable

  /// One entry per mutable field the tape stores.
  std::vector<FieldUpdate> Updates;

  /// Firings of *this filter* whose inputs determine its current state:
  /// 0 when every stored field has a closed form, 1 when any field is
  /// rewritten from the current inputs (the previous firing's value is
  /// gone after one replayed firing).
  int stateDepthFirings() const {
    for (const FieldUpdate &U : Updates)
      if (U.Kind == FieldKind::InputDetermined)
        return 1;
    return 0;
  }

  const FieldUpdate *updateFor(int Field) const {
    for (const FieldUpdate &U : Updates)
      if (U.Field == Field)
        return &U;
    return nullptr;
  }
};

/// A compiled work function.
class OpProgram {
public:
  OpProgram() = default;

  /// Compiles \p Work (resolving it against \p Fields first if needed).
  static OpProgram compile(const WorkFunction &Work,
                           const std::vector<FieldDef> &Fields);

  bool empty() const { return Code.empty(); }
  int peekRate() const { return PeekRate; }
  int popRate() const { return PopRate; }
  int pushRate() const { return PushRate; }
  size_t size() const { return Code.size(); }
  const std::vector<Inst> &code() const { return Code; }

  // Read-only frame/layout metadata, for diagnostics and the
  // abstract-interpretation linter (src/verify/), which re-executes the
  // tape symbolically and must address registers, fields and local
  // arrays exactly as runImpl does.
  int numRegs() const { return NumRegs; }
  int arrayCount() const { return static_cast<int>(ArrBase.size()); }
  int arrayBase(int Slot) const {
    return ArrBase[static_cast<size_t>(Slot)];
  }
  int arrayDeclSize(int Slot) const {
    return ArrDeclSize[static_cast<size_t>(Slot)];
  }
  const std::string &arrayName(int Slot) const {
    return ArrNames[static_cast<size_t>(Slot)];
  }
  int arrayStoreSize() const { return ArrStoreSize; }
  int fieldCount() const { return static_cast<int>(FieldNames.size()); }
  const std::string &fieldName(int F) const {
    return FieldNames[static_cast<size_t>(F)];
  }
  const std::vector<std::string> &fieldNames() const { return FieldNames; }

  /// Sizes \p F for this program (idempotent; cheap when already sized).
  void prepareFrame(WorkFrame &F) const;

  /// Classifies this tape's cross-firing state (see SteadyStateInfo).
  /// \p Fields must be the field list the program was compiled against.
  SteadyStateInfo analyzeSteadyState(const std::vector<FieldDef> &Fields) const;

  /// Binary persistence (support/Serialize.h): instructions and frame
  /// metadata are written verbatim, so a loaded program executes the
  /// exact instruction sequence — and reports the exact FLOP taxonomy —
  /// the compiler produced. deserialize() rejects out-of-range opcodes
  /// and inconsistent frame metadata (returns false; \p Out untouched).
  void serialize(serial::Writer &W) const;
  static bool deserialize(serial::Reader &R, OpProgram &Out);

  /// Executes one firing. \p In points at peek(0) (null for source
  /// filters); \p Out receives exactly pushRate() values; \p Printed
  /// collects print statements. \p State must match the field list the
  /// program was compiled against. Selects the ops-free fast path when
  /// op counting is disabled.
  void run(WorkFrame &F, FieldStore &State, const double *In, double *Out,
           std::vector<double> &Printed) const;

private:
  template <bool CountOps>
  void runImpl(WorkFrame &F, const double *In, double *Out,
               std::vector<double> &Printed) const;

  std::vector<Inst> Code;
  std::vector<int32_t> ArrBase;        ///< flat base offset per array slot
  std::vector<int32_t> ArrDeclSize;    ///< declared size per array slot
  std::vector<std::string> ArrNames;   ///< for bounds diagnostics
  std::vector<std::string> FieldNames; ///< for bounds diagnostics
  int NumRegs = 0;
  int ArrStoreSize = 0;
  int PeekRate = 0, PopRate = 0, PushRate = 0;

  friend class OpTapeCompiler;
  /// Tape → C++ lowering (wir/CxxEmit.h) reads the full private layout:
  /// emitted code must replicate frame metadata (register/array sizing,
  /// bounds-diagnostic names) exactly, not just the instruction list.
  friend class CxxTapeEmitter;
};

} // namespace wir
} // namespace slin

#endif // SLIN_WIR_OPTAPE_H
