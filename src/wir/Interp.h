//===- wir/Interp.h - Work-IR interpreter -----------------------*- C++ -*-===//
///
/// \file
/// Tree-walking interpreter for work functions — the execution engine of
/// the "uniprocessor backend" substitute. Every floating-point operation
/// is routed through the op counters so that a run reports the same FLOP
/// totals the paper gathered with its DynamoRIO client.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_WIR_INTERP_H
#define SLIN_WIR_INTERP_H

#include "wir/IR.h"
#include "wir/Tape.h"

namespace slin {
namespace wir {

/// Per-filter-instance storage of field values (mutable fields persist
/// across firings; const fields are included for uniform access).
struct FieldStore {
  FieldStore() = default;
  explicit FieldStore(const std::vector<FieldDef> &Fields) {
    Values.reserve(Fields.size());
    for (const FieldDef &F : Fields)
      Values.push_back(F.Init);
  }

  std::vector<std::vector<double>> Values;
};

/// Executes one firing of \p Work against \p T. Resolves \p Work on first
/// use. \p State must have been constructed from the same field list.
void interpret(const WorkFunction &Work, const std::vector<FieldDef> &Fields,
               FieldStore &State, Tape &T);

/// Evaluates \p Fn on \p Arg (used by both the interpreter and the
/// extraction analysis when folding intrinsic calls on constants).
double evalIntrinsic(Intrinsic Fn, double Arg);

} // namespace wir
} // namespace slin

#endif // SLIN_WIR_INTERP_H
