//===- wir/IR.h - Work-function IR ------------------------------*- C++ -*-===//
///
/// \file
/// The imperative IR for StreamIt work functions. The linear extraction
/// analysis of Section 3.2 (Figure 3-2) is defined over exactly this
/// instruction set: constants, pops, peeks, arithmetic, pushes, loops and
/// branches — plus the small practical extensions the real compiler had
/// (filter fields, local arrays, intrinsic math calls, printing).
///
/// Nodes are a kind-tagged class hierarchy (LLVM-style classof casts).
/// Ownership is by unique_ptr; deep clone() supports graph duplication.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_WIR_IR_H
#define SLIN_WIR_IR_H

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace slin {
namespace wir {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  Const,    ///< floating-point literal
  VarRef,   ///< local scalar variable
  ArrayRef, ///< local array element
  FieldRef, ///< filter field (scalar or array element)
  Peek,     ///< peek(i): read input tape without consuming
  Pop,      ///< pop(): consume one input item
  Binary,   ///< arithmetic / comparison / logical
  Unary,    ///< negation / logical not
  Call      ///< intrinsic math function
};

enum class BinOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  LAnd, LOr
};

enum class UnOp { Neg, LNot };

enum class Intrinsic { Sin, Cos, Tan, Atan, Sqrt, Abs, Exp, Log, Floor, Round };

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
public:
  virtual ~Expr();

  ExprKind kind() const { return Kind; }

  /// Deep copy.
  ExprPtr clone() const;

protected:
  explicit Expr(ExprKind Kind) : Kind(Kind) {}

private:
  ExprKind Kind;
};

class ConstExpr : public Expr {
public:
  explicit ConstExpr(double Value) : Expr(ExprKind::Const), Value(Value) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Const; }

  double Value;
};

class VarRefExpr : public Expr {
public:
  explicit VarRefExpr(std::string Name)
      : Expr(ExprKind::VarRef), Name(std::move(Name)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }

  std::string Name;
  mutable int Slot = -1; ///< filled in by resolution
};

class ArrayRefExpr : public Expr {
public:
  ArrayRefExpr(std::string Name, ExprPtr Index)
      : Expr(ExprKind::ArrayRef), Name(std::move(Name)),
        Index(std::move(Index)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::ArrayRef; }

  std::string Name;
  ExprPtr Index;
  mutable int Slot = -1;
};

class FieldRefExpr : public Expr {
public:
  /// \p Index is null for scalar fields.
  FieldRefExpr(std::string Name, ExprPtr Index)
      : Expr(ExprKind::FieldRef), Name(std::move(Name)),
        Index(std::move(Index)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::FieldRef; }

  std::string Name;
  ExprPtr Index; ///< null for scalar fields
  mutable int FieldIndex = -1;
};

class PeekExpr : public Expr {
public:
  explicit PeekExpr(ExprPtr Index)
      : Expr(ExprKind::Peek), Index(std::move(Index)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Peek; }

  ExprPtr Index;
};

class PopExpr : public Expr {
public:
  PopExpr() : Expr(ExprKind::Pop) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Pop; }
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(ExprKind::Binary), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

  BinOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnOp Op, ExprPtr Operand)
      : Expr(ExprKind::Unary), Op(Op), Operand(std::move(Operand)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

  UnOp Op;
  ExprPtr Operand;
};

class CallExpr : public Expr {
public:
  CallExpr(Intrinsic Fn, ExprPtr Arg)
      : Expr(ExprKind::Call), Fn(Fn), Arg(std::move(Arg)) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }

  Intrinsic Fn;
  ExprPtr Arg;
};

/// LLVM-style cast helpers (kinds are checked by assert).
template <typename T> const T *cast(const Expr *E) {
  assert(E && T::classof(E) && "bad expr cast");
  return static_cast<const T *>(E);
}
template <typename T> const T *dynCast(const Expr *E) {
  return E && T::classof(E) ? static_cast<const T *>(E) : nullptr;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Assign,      ///< scalar = expr
  ArrayAssign, ///< local array element = expr
  FieldAssign, ///< mutable field (scalar or element) = expr
  LocalArray,  ///< declare a local array of fixed size
  Push,        ///< push(expr)
  PopDiscard,  ///< pop() as a statement
  For,         ///< for (v = begin; v < end; ++v) body
  If,          ///< if (cond) then else
  Print,       ///< print(expr): side effect, routes to the program sink
  Uncounted    ///< integer/address arithmetic: excluded from FLOP counts
};

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

class Stmt {
public:
  virtual ~Stmt();

  StmtKind kind() const { return Kind; }

  StmtPtr clone() const;

protected:
  explicit Stmt(StmtKind Kind) : Kind(Kind) {}

private:
  StmtKind Kind;
};

/// Deep copy of a statement list.
StmtList cloneStmts(const StmtList &Body);

class AssignStmt : public Stmt {
public:
  AssignStmt(std::string Name, ExprPtr Value)
      : Stmt(StmtKind::Assign), Name(std::move(Name)), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }

  std::string Name;
  ExprPtr Value;
  mutable int Slot = -1;
};

class ArrayAssignStmt : public Stmt {
public:
  ArrayAssignStmt(std::string Name, ExprPtr Index, ExprPtr Value)
      : Stmt(StmtKind::ArrayAssign), Name(std::move(Name)),
        Index(std::move(Index)), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::ArrayAssign;
  }

  std::string Name;
  ExprPtr Index;
  ExprPtr Value;
  mutable int Slot = -1;
};

class FieldAssignStmt : public Stmt {
public:
  /// \p Index is null for scalar fields.
  FieldAssignStmt(std::string Name, ExprPtr Index, ExprPtr Value)
      : Stmt(StmtKind::FieldAssign), Name(std::move(Name)),
        Index(std::move(Index)), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::FieldAssign;
  }

  std::string Name;
  ExprPtr Index; ///< null for scalar fields
  ExprPtr Value;
  mutable int FieldIndex = -1;
};

class LocalArrayStmt : public Stmt {
public:
  LocalArrayStmt(std::string Name, int Size)
      : Stmt(StmtKind::LocalArray), Name(std::move(Name)), Size(Size) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::LocalArray;
  }

  std::string Name;
  int Size;
  mutable int Slot = -1;
};

class PushStmt : public Stmt {
public:
  explicit PushStmt(ExprPtr Value)
      : Stmt(StmtKind::Push), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Push; }

  ExprPtr Value;
};

class PopDiscardStmt : public Stmt {
public:
  PopDiscardStmt() : Stmt(StmtKind::PopDiscard) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::PopDiscard;
  }
};

class ForStmt : public Stmt {
public:
  ForStmt(std::string Var, ExprPtr Begin, ExprPtr End, StmtList Body)
      : Stmt(StmtKind::For), Var(std::move(Var)), Begin(std::move(Begin)),
        End(std::move(End)), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

  std::string Var;
  ExprPtr Begin;
  ExprPtr End; ///< exclusive; evaluated once at loop entry
  StmtList Body;
  mutable int Slot = -1;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtList Then, StmtList Else)
      : Stmt(StmtKind::If), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

  ExprPtr Cond;
  StmtList Then;
  StmtList Else;
};

class PrintStmt : public Stmt {
public:
  explicit PrintStmt(ExprPtr Value)
      : Stmt(StmtKind::Print), Value(std::move(Value)) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Print; }

  ExprPtr Value;
};

/// Statements whose arithmetic models integer/address computation (e.g.
/// circular-buffer index updates in redundancy-eliminated filters); the
/// interpreter executes them with FLOP counting suspended, mirroring the
/// paper's distinction between floating-point and address instructions.
class UncountedStmt : public Stmt {
public:
  explicit UncountedStmt(StmtList Body)
      : Stmt(StmtKind::Uncounted), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Uncounted;
  }

  StmtList Body;
};

template <typename T> const T *cast(const Stmt *S) {
  assert(S && T::classof(S) && "bad stmt cast");
  return static_cast<const T *>(S);
}
template <typename T> const T *dynCast(const Stmt *S) {
  return S && T::classof(S) ? static_cast<const T *>(S) : nullptr;
}

//===----------------------------------------------------------------------===//
// Fields and work functions
//===----------------------------------------------------------------------===//

/// A filter field. Fields initialized at construction ("init") and never
/// written by work functions are constants that the extraction analysis
/// folds; fields written by work functions are persistent state, and any
/// access to them makes the filter nonlinear (Section 3.2).
struct FieldDef {
  std::string Name;
  bool IsArray = false;
  bool IsMutable = false;
  std::vector<double> Init; ///< size 1 for scalars

  static FieldDef constScalar(std::string Name, double Value) {
    return {std::move(Name), false, false, {Value}};
  }
  static FieldDef constArray(std::string Name, std::vector<double> Values) {
    return {std::move(Name), true, false, std::move(Values)};
  }
  static FieldDef mutableScalar(std::string Name, double Value) {
    return {std::move(Name), false, true, {Value}};
  }
  static FieldDef mutableArray(std::string Name, std::vector<double> Values) {
    return {std::move(Name), true, true, std::move(Values)};
  }
};

/// A work function: declared I/O rates plus a statement body.
struct WorkFunction {
  int PeekRate = 0;
  int PopRate = 0;
  int PushRate = 0;
  StmtList Body;

  // Filled in by resolve():
  mutable int NumScalarSlots = 0;
  mutable int NumArraySlots = 0;
  mutable bool Resolved = false;

  WorkFunction() = default;
  WorkFunction(int Peek, int Pop, int Push, StmtList Body)
      : PeekRate(Peek), PopRate(Pop), PushRate(Push), Body(std::move(Body)) {}

  WorkFunction clone() const;
};

/// Assigns local-variable slots and field indices throughout \p Work.
/// Reports a fatal error on use of an undefined variable/field, a scalar
/// used as an array (or vice versa), or assignment to a non-mutable field.
void resolve(const WorkFunction &Work, const std::vector<FieldDef> &Fields);

/// Renders the work function as StreamIt-like text (for debugging and
/// golden tests).
std::string print(const WorkFunction &Work);
std::string print(const Expr &E);

} // namespace wir
} // namespace slin

#endif // SLIN_WIR_IR_H
