//===- wir/CxxEmit.h - Op tape to C++ lowering ------------------*- C++ -*-===//
///
/// \file
/// Lowers a compiled op tape (wir/OpTape.h) to a self-contained C++
/// function definition for the native codegen backend
/// (codegen/CxxBackend.h). The emitted function executes K consecutive
/// firings against raw channel memory with the exact semantics of
/// OpProgram::runImpl's ops-free path: evaluation order, index rounding
/// (lround vs. the proven-integral cast), bounds checks with the same
/// diagnostic strings, the Halt rate check, and per-firing register /
/// local-array zeroing all match, so a native run is bit-identical to the
/// op-tape interpreter (the generated TU is compiled with
/// -ffp-contract=off, so no FMA contraction can change rounding).
///
/// Emitted signature (extern "C"; the NativeCtx ABI is defined in
/// codegen/NativeModule.h and replicated in the generated TU's preamble):
///
///     void <Fn>(const SlinNativeCtx *Ctx, const double *In,
///               double *Out, long K);
///
/// Firing k's peek window starts at In + k*popRate(); its pushRate()
/// outputs go to Out + k*pushRate() — the layout CompiledExecutor's
/// flat channel buffers already provide.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_WIR_CXXEMIT_H
#define SLIN_WIR_CXXEMIT_H

#include "wir/OpTape.h"

#include <string>

namespace slin {
namespace wir {

/// Exact C++ source literal for \p V: hexfloat for finite values (parsed
/// back bit-identically by any conforming compiler), bit-pattern
/// reconstruction for NaN/Inf. Shared by the tape emitter and the kernel
/// batch emitters (matrix/Kernels.cpp).
std::string cxxDoubleLiteral(double V);

/// Appends the definition of the K-firing function \p Fn for \p P to
/// \p Src. Returns false (leaving \p Src untouched) when the tape is
/// empty — callers then keep the interpreter for that filter.
class CxxTapeEmitter {
public:
  static bool emit(const OpProgram &P, const std::string &Fn,
                   std::string &Src);
};

} // namespace wir
} // namespace slin

#endif // SLIN_WIR_CXXEMIT_H
