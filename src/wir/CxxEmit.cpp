//===- wir/CxxEmit.cpp - Op tape to C++ lowering ----------------------------==//

#include "wir/CxxEmit.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace slin;
using namespace slin::wir;

std::string wir::cxxDoubleLiteral(double V) {
  if (!std::isfinite(V)) {
    // Bit-exact reconstruction through the TU preamble's slin_bits_
    // helper; hexfloat literals cannot spell NaN payloads or infinities.
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "slin_bits_(0x%016llxULL)",
                  static_cast<unsigned long long>(Bits));
    return Buf;
  }
  // Hexfloat round-trips every finite double exactly under any
  // conforming compiler's literal parsing.
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%a", V);
  return Buf;
}

namespace {

std::string escapeString(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\\' || C == '"')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\%03o",
                    static_cast<unsigned>(static_cast<unsigned char>(C)));
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

/// Emission context for one tape: a line-oriented string builder.
class Body {
public:
  void line(const std::string &S) {
    Out += "  ";
    Out += S;
    Out += '\n';
  }
  void inner(const std::string &S) {
    Out += "    ";
    Out += S;
    Out += '\n';
  }
  std::string Out;
};

std::string reg(int32_t R) { return "R[" + std::to_string(R) + "]"; }

/// The IDX() conversion of the dispatch loop: the int-register analysis
/// proved IntIdx registers hold exact integers, so the cast == lround.
std::string idxExpr(const Inst &I) {
  if (I.IntIdx)
    return "(long)" + reg(I.C);
  return "lround(" + reg(I.C) + ")";
}

const char *intrinsicCall(int32_t Fn) {
  switch (static_cast<Intrinsic>(Fn)) {
  case Intrinsic::Sin:
    return "sin";
  case Intrinsic::Cos:
    return "cos";
  case Intrinsic::Tan:
    return "tan";
  case Intrinsic::Atan:
    return "atan";
  case Intrinsic::Sqrt:
    return "sqrt";
  case Intrinsic::Abs:
    return "fabs";
  case Intrinsic::Exp:
    return "exp";
  case Intrinsic::Log:
    return "log";
  case Intrinsic::Floor:
    return "floor";
  case Intrinsic::Round:
    return "round";
  }
  return nullptr;
}

} // namespace

bool CxxTapeEmitter::emit(const OpProgram &P, const std::string &Fn,
                          std::string &Src) {
  if (P.Code.empty())
    return false;
  const std::vector<Inst> &Code = P.Code;

  // Labels only where a jump lands.
  std::vector<bool> Target(Code.size() + 1, false);
  for (const Inst &I : Code) {
    switch (I.K) {
    case Op::Jump:
      Target[static_cast<size_t>(I.A)] = true;
      break;
    case Op::JumpIfZero:
    case Op::IncJump:
      Target[static_cast<size_t>(I.B)] = true;
      break;
    case Op::JumpIfGe:
      Target[static_cast<size_t>(I.C)] = true;
      break;
    default:
      break;
    }
  }

  Body B;
  B.Out += "extern \"C\" void " + Fn +
           "(const SlinNativeCtx *Ctx, const double *In, double *Out, "
           "long K) {\n";
  B.line("double *const *Fld = Ctx->Fld;");
  B.line("const int *FldSz = Ctx->FldSz;");
  B.line("(void)Fld; (void)FldSz; (void)In; (void)Out;");
  B.line("for (long k_ = 0; k_ != K; ++k_) {");

  // Per-firing frame, zeroed exactly like the dispatch loop: registers
  // and logical array sizes every firing; the array *store* only through
  // ZeroArr (a LoadArr is bounds-checked against the logical size, which
  // only a ZeroArr this firing can raise — stale bytes are unreachable).
  B.inner("double R[" + std::to_string(P.NumRegs) + "];");
  B.inner("for (int i_ = 0; i_ != " + std::to_string(P.NumRegs) +
          "; ++i_) R[i_] = 0.0;");
  if (P.ArrStoreSize > 0)
    B.inner("double AS[" + std::to_string(P.ArrStoreSize) + "];");
  if (!P.ArrBase.empty())
    B.inner("int ASz[" + std::to_string(P.ArrBase.size()) + "] = {0};");
  B.inner("unsigned long ip_ = 0;");
  B.inner("long opn_ = 0;");
  B.inner("(void)ip_; (void)opn_;");

  for (size_t Pc = 0; Pc != Code.size(); ++Pc) {
    const Inst &I = Code[Pc];
    std::string Pre;
    if (Target[Pc])
      Pre = "L" + std::to_string(Pc) + "_: ";
    auto Emit = [&](const std::string &S) {
      B.inner(Pre + S);
      Pre.clear();
    };
    switch (I.K) {
    case Op::Const:
      Emit(reg(I.A) + " = " + cxxDoubleLiteral(I.Imm) + ";");
      break;
    case Op::Copy:
      Emit(reg(I.A) + " = " + reg(I.B) + ";");
      break;
    case Op::Peek:
      Emit("{ long Ix = " + idxExpr(I) + "; " + reg(I.A) +
           " = In[ip_ + (unsigned long)Ix]; }");
      break;
    case Op::PeekImm:
      Emit(reg(I.A) + " = In[ip_ + " + std::to_string(I.B) + "ul];");
      break;
    case Op::Pop:
      Emit(reg(I.A) + " = In[ip_++];");
      break;
    case Op::PopDiscard:
      Emit("++ip_;");
      break;
    case Op::Push:
      Emit("Out[opn_++] = " + reg(I.A) + ";");
      break;
    case Op::Print:
      Emit("Ctx->Print(Ctx->Sink, " + reg(I.A) + ");");
      break;
    case Op::LoadFld:
      Emit(reg(I.A) + " = Fld[" + std::to_string(I.B) + "][0];");
      break;
    case Op::StoreFld:
      Emit("Fld[" + std::to_string(I.B) + "][0] = " + reg(I.A) + ";");
      break;
    case Op::LoadFldIdx:
    case Op::StoreFldIdx: {
      std::string Name =
          escapeString(P.FieldNames[static_cast<size_t>(I.B)]);
      std::string Access = "Fld[" + std::to_string(I.B) + "][Ix]";
      std::string Stmt = I.K == Op::LoadFldIdx
                             ? reg(I.A) + " = " + Access + ";"
                             : Access + " = " + reg(I.A) + ";";
      Emit("{ long Ix = " + idxExpr(I) + "; if (Ix < 0 || Ix >= FldSz[" +
           std::to_string(I.B) + "]) slin_fail_(Ctx, \"field '" + Name +
           "' index out of range\"); " + Stmt + " }");
      break;
    }
    case Op::LoadArr:
    case Op::StoreArr: {
      std::string Name = escapeString(P.ArrNames[static_cast<size_t>(I.B)]);
      std::string Access =
          "AS[" + std::to_string(P.ArrBase[static_cast<size_t>(I.B)]) +
          " + Ix]";
      std::string Stmt = I.K == Op::LoadArr
                             ? reg(I.A) + " = " + Access + ";"
                             : Access + " = " + reg(I.A) + ";";
      Emit("{ long Ix = " + idxExpr(I) + "; if (Ix < 0 || Ix >= ASz[" +
           std::to_string(I.B) + "]) slin_fail_(Ctx, \"array '" + Name +
           "' index out of range\"); " + Stmt + " }");
      break;
    }
    case Op::ZeroArr: {
      int32_t Base = P.ArrBase[static_cast<size_t>(I.A)];
      int32_t N = P.ArrDeclSize[static_cast<size_t>(I.A)];
      Emit("for (int z_ = 0; z_ != " + std::to_string(N) + "; ++z_) AS[" +
           std::to_string(Base) + " + z_] = 0.0;");
      B.inner("ASz[" + std::to_string(I.A) + "] = " + std::to_string(N) +
              ";");
      break;
    }
    case Op::Add:
      Emit(reg(I.A) + " = " + reg(I.B) + " + " + reg(I.C) + ";");
      break;
    case Op::Sub:
      Emit(reg(I.A) + " = " + reg(I.B) + " - " + reg(I.C) + ";");
      break;
    case Op::Mul:
      Emit(reg(I.A) + " = " + reg(I.B) + " * " + reg(I.C) + ";");
      break;
    case Op::Div:
      Emit(reg(I.A) + " = " + reg(I.B) + " / " + reg(I.C) + ";");
      break;
    case Op::Mod:
      Emit(reg(I.A) + " = fmod(" + reg(I.B) + ", " + reg(I.C) + ");");
      break;
    case Op::Lt:
      Emit(reg(I.A) + " = " + reg(I.B) + " < " + reg(I.C) +
           " ? 1.0 : 0.0;");
      break;
    case Op::Le:
      Emit(reg(I.A) + " = " + reg(I.B) + " <= " + reg(I.C) +
           " ? 1.0 : 0.0;");
      break;
    case Op::Gt:
      Emit(reg(I.A) + " = " + reg(I.B) + " > " + reg(I.C) +
           " ? 1.0 : 0.0;");
      break;
    case Op::Ge:
      Emit(reg(I.A) + " = " + reg(I.B) + " >= " + reg(I.C) +
           " ? 1.0 : 0.0;");
      break;
    case Op::Eq:
      Emit(reg(I.A) + " = " + reg(I.B) + " == " + reg(I.C) +
           " ? 1.0 : 0.0;");
      break;
    case Op::Ne:
      Emit(reg(I.A) + " = " + reg(I.B) + " != " + reg(I.C) +
           " ? 1.0 : 0.0;");
      break;
    case Op::Bool:
      Emit(reg(I.A) + " = " + reg(I.B) + " != 0.0 ? 1.0 : 0.0;");
      break;
    case Op::Not:
      Emit(reg(I.A) + " = " + reg(I.B) + " == 0.0 ? 1.0 : 0.0;");
      break;
    case Op::Round:
      Emit(reg(I.A) + " = (double)lround(" + reg(I.B) + ");");
      break;
    case Op::Neg:
      Emit(reg(I.A) + " = 0.0 - " + reg(I.B) + ";");
      break;
    case Op::Intrin: {
      const char *Call = intrinsicCall(I.B);
      if (!Call)
        return false; // unknown intrinsic: keep the interpreter
      Emit(reg(I.A) + " = " + std::string(Call) + "(" + reg(I.C) + ");");
      break;
    }
    case Op::MulAdd:
      Emit(reg(I.A) + " = " + reg(I.D) + " + " + reg(I.B) + " * " +
           reg(I.C) + ";");
      break;
    case Op::MacFldPeek: {
      std::string Name =
          escapeString(P.FieldNames[static_cast<size_t>(I.B)]);
      Emit("{ long Ix = " + idxExpr(I) + "; if (Ix < 0 || Ix >= FldSz[" +
           std::to_string(I.B) + "]) slin_fail_(Ctx, \"field '" + Name +
           "' index out of range\"); " + reg(I.A) + " = " + reg(I.A) +
           " + Fld[" + std::to_string(I.B) +
           "][Ix] * In[ip_ + (unsigned long)Ix]; }");
      break;
    }
    case Op::AddImm:
      Emit(reg(I.A) + " = " + reg(I.B) + " + " + cxxDoubleLiteral(I.Imm) +
           ";");
      break;
    case Op::Jump:
      Emit("goto L" + std::to_string(I.A) + "_;");
      break;
    case Op::JumpIfZero:
      Emit("if (" + reg(I.A) + " == 0.0) goto L" + std::to_string(I.B) +
           "_;");
      break;
    case Op::JumpIfGe:
      Emit("if (" + reg(I.A) + " >= " + reg(I.B) + ") goto L" +
           std::to_string(I.C) + "_;");
      break;
    case Op::IncJump:
      Emit(reg(I.A) + " += 1.0; goto L" + std::to_string(I.B) + "_;");
      break;
    case Op::Halt:
      Emit("if (ip_ != " + std::to_string(P.PopRate) + "ul || opn_ != " +
           std::to_string(P.PushRate) + ") slin_rate_fail_(Ctx, ip_, " +
           std::to_string(P.PopRate) + ", opn_, " +
           std::to_string(P.PushRate) + ");");
      B.inner("goto Lend_;");
      break;
    }
  }

  B.inner("Lend_: ;");
  if (P.PopRate > 0)
    B.inner("In += " + std::to_string(P.PopRate) + ";");
  if (P.PushRate > 0)
    B.inner("Out += " + std::to_string(P.PushRate) + ";");
  B.line("}");
  B.Out += "}\n";
  Src += B.Out;
  return true;
}
