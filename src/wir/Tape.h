//===- wir/Tape.h - Abstract input/output tape ------------------*- C++ -*-===//
///
/// \file
/// The tape interface a firing filter sees: FIFO peek/pop on the input
/// channel and push on the output channel (Section 2.1). Concrete tapes
/// are provided by the executor; tests use simple vector-backed tapes.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_WIR_TAPE_H
#define SLIN_WIR_TAPE_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace slin {
namespace wir {

class Tape {
public:
  virtual ~Tape();

  /// Returns the value at position \p Index on the input tape without
  /// consuming it; Index 0 is the next item to be popped.
  virtual double peek(int Index) = 0;

  /// Consumes and returns the next input item.
  virtual double pop() = 0;

  /// Appends \p Value to the output tape.
  virtual void push(double Value) = 0;

  /// Receives values printed by the filter; the executor routes these to
  /// the program sink. The default implementation discards them.
  virtual void print(double Value);
};

/// A vector-backed tape for tests and for one-shot filter evaluation:
/// reads from a fixed input buffer, collects pushes and prints.
class VectorTape : public Tape {
public:
  explicit VectorTape(std::vector<double> Input) : Input(std::move(Input)) {}

  double peek(int Index) override {
    assert(Index >= 0 && Pos + static_cast<size_t>(Index) < Input.size() &&
           "peek out of range");
    return Input[Pos + static_cast<size_t>(Index)];
  }
  double pop() override {
    assert(Pos < Input.size() && "pop past end of input");
    return Input[Pos++];
  }
  void push(double Value) override { Output.push_back(Value); }
  void print(double Value) override { Printed.push_back(Value); }

  /// Number of items consumed so far.
  size_t consumed() const { return Pos; }

  std::vector<double> Input;
  std::vector<double> Output;
  std::vector<double> Printed;

private:
  size_t Pos = 0;
};

} // namespace wir
} // namespace slin

#endif // SLIN_WIR_TAPE_H
