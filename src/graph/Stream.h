//===- graph/Stream.h - Hierarchical stream graph ---------------*- C++ -*-===//
///
/// \file
/// The StreamIt hierarchical stream graph (Section 2.1, Figure 2-1):
/// filters with work functions, pipelines, splitjoins (duplicate or
/// roundrobin splitters, roundrobin joiners) and feedbackloops. Every
/// stream has exactly one input and one output tape.
///
/// Filters come in two flavours:
///  * IR filters carry a work function in the work IR (plus fields and an
///    optional init-work) and are executed by the interpreter — these are
///    what the linear extraction analysis consumes;
///  * native filters are implemented directly in C++ (the frequency
///    filters calling the FFT library, the ATLAS-substitute gemv filter),
///    mirroring the paper's external library call-outs (Section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_GRAPH_STREAM_H
#define SLIN_GRAPH_STREAM_H

#include "support/Hashing.h"
#include "wir/IR.h"
#include "wir/Tape.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace slin {

namespace serial {
class Writer;
class Reader;
} // namespace serial

enum class StreamKind { Filter, Pipeline, SplitJoin, FeedbackLoop };

class Stream;
using StreamPtr = std::unique_ptr<Stream>;

/// Base class of all stream constructs.
class Stream {
public:
  virtual ~Stream();

  StreamKind kind() const { return Kind; }
  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Deep copy (native filters are cloned with fresh state).
  virtual StreamPtr clone() const = 0;

protected:
  Stream(StreamKind Kind, std::string Name)
      : Kind(Kind), Name(std::move(Name)) {}

private:
  StreamKind Kind;
  std::string Name;
};

template <typename T> const T *cast(const Stream *S) {
  assert(S && T::classof(S) && "bad stream cast");
  return static_cast<const T *>(S);
}
template <typename T> T *cast(Stream *S) {
  assert(S && T::classof(S) && "bad stream cast");
  return static_cast<T *>(S);
}
template <typename T> const T *dynCast(const Stream *S) {
  return S && T::classof(S) ? static_cast<const T *>(S) : nullptr;
}

//===----------------------------------------------------------------------===//
// Filters
//===----------------------------------------------------------------------===//

/// Base class for filters implemented natively in C++. Native filters may
/// have a distinct first firing (initWork) with its own I/O rates, exactly
/// like IR filters (e.g. the optimized frequency filter of Transformation
/// 6 pushes u*m items on the first firing and u*r afterwards).
class NativeFilter {
public:
  NativeFilter();
  NativeFilter(const NativeFilter &); ///< fresh instance id for the copy
  NativeFilter &operator=(const NativeFilter &) { return *this; }
  virtual ~NativeFilter();

  virtual int peekRate() const = 0;
  virtual int popRate() const = 0;
  virtual int pushRate() const = 0;

  virtual bool hasInitWork() const { return false; }
  virtual int initPeekRate() const { return peekRate(); }
  virtual int initPopRate() const { return popRate(); }
  virtual int initPushRate() const { return pushRate(); }

  /// Executes one steady-state firing.
  virtual void fire(wir::Tape &T) = 0;

  /// Executes the first firing; only called when hasInitWork().
  virtual void fireInit(wir::Tape &T) { fire(T); }

  /// Optional batched execution used by the compiled engine: executes
  /// \p K consecutive steady-state firings against raw channel memory.
  /// Firing k's peek window starts at In + k*popRate() (so In[k*o + p]
  /// is its peek(p)); its pushRate() outputs go to Out + k*pushRate().
  /// Implementations must produce bit-identical results to K calls of
  /// fire(). Returns false when unsupported (the caller falls back to
  /// per-firing Tape execution); the default supports nothing.
  virtual bool fireBatch(const double *In, double *Out, int K);

  /// Optional native-codegen hook (codegen/CxxBackend.h): appends to
  /// \p Src the definition of an extern "C" function \p Fn with the
  /// fireBatch memory contract —
  ///
  ///     void <Fn>(const double *In, double *Out, long K);
  ///
  /// — that is bit-identical to fireBatch over the same windows. The
  /// emitted code must be fully self-contained (coefficients baked in as
  /// exact literals; no references back into this process). Returns
  /// false when unsupported (the default): the compiled engine then
  /// keeps calling the in-process fireBatch/fire paths for this filter.
  virtual bool emitBatchCxx(std::string &Src, const std::string &Fn) const {
    (void)Src;
    (void)Fn;
    return false;
  }

  /// Fresh-state copy.
  virtual std::unique_ptr<NativeFilter> clone() const = 0;

  /// Mixes this filter's construction parameters into \p H for structural
  /// hashing (compiler/StructuralHash.h). Two native filters that mix the
  /// same sequence must be behaviourally identical. Returns false when the
  /// filter has no content hash; the hasher then falls back to the
  /// never-reused instanceId(), so such filters never alias in the
  /// analysis or program caches (cache misses, never wrong sharing).
  virtual bool hashContent(HashStream &H) const {
    (void)H;
    return false;
  }

  /// Persistent-artifact hooks (compiler/ArtifactStore.h). A serializable
  /// native filter names its concrete class with a registry tag (must be
  /// registered via registerNativeFilterFactory) and writes whatever
  /// payload its factory needs to reconstruct a behaviourally identical
  /// instance — including an identical hashContent sequence, or loaded
  /// artifacts would fail their structural-hash verification. The default
  /// (no tag) makes the enclosing program memory-cacheable only; the
  /// artifact store skips it, never errors.
  virtual const char *serialTag() const { return nullptr; }
  virtual void serializePayload(serial::Writer &W) const { (void)W; }

  /// Firings of this filter whose inputs determine its internal state,
  /// for the parallel backend's shard-boundary reconstruction
  /// (exec/Parallel.h): 0 = stateless (each firing is a pure function of
  /// its input window), k > 0 = the state is fully rewritten by the last
  /// k firings (a warmup replay of k firings reconstructs it), -1 =
  /// unknown (the default; such filters are never sharded).
  virtual int stateDepthFirings() const { return -1; }

  /// Process-unique, never-reused id of this instance (unlike a heap
  /// address, immune to allocator reuse while cache entries persist).
  uint64_t instanceId() const { return InstanceId; }

private:
  uint64_t InstanceId;
};

class Filter : public Stream {
public:
  /// Creates an IR-backed filter.
  Filter(std::string Name, std::vector<wir::FieldDef> Fields,
         wir::WorkFunction Work);

  /// Creates a native filter.
  Filter(std::string Name, std::unique_ptr<NativeFilter> Native);

  static bool classof(const Stream *S) {
    return S->kind() == StreamKind::Filter;
  }

  StreamPtr clone() const override;

  bool isNative() const { return Native != nullptr; }

  // Steady-state rates.
  int peekRate() const;
  int popRate() const;
  int pushRate() const;

  // Init firing (first invocation of work; Section 2.1).
  bool hasInitWork() const;
  int initPeekRate() const;
  int initPopRate() const;
  int initPushRate() const;
  void setInitWork(wir::WorkFunction W) { InitWork = std::move(W); }

  /// True for source filters (no input consumed or peeked, ever).
  bool isSource() const { return peekRate() == 0 && popRate() == 0; }

  const wir::WorkFunction &work() const {
    assert(!isNative() && "native filter has no work IR");
    return Work;
  }
  const wir::WorkFunction *initWork() const {
    return InitWork ? &*InitWork : nullptr;
  }
  const std::vector<wir::FieldDef> &fields() const { return Fields; }

  const NativeFilter &native() const {
    assert(isNative() && "not a native filter");
    return *Native;
  }

private:
  std::vector<wir::FieldDef> Fields;
  wir::WorkFunction Work;
  std::optional<wir::WorkFunction> InitWork;
  std::unique_ptr<NativeFilter> Native;
};

//===----------------------------------------------------------------------===//
// Containers
//===----------------------------------------------------------------------===//

class Pipeline : public Stream {
public:
  explicit Pipeline(std::string Name)
      : Stream(StreamKind::Pipeline, std::move(Name)) {}

  static bool classof(const Stream *S) {
    return S->kind() == StreamKind::Pipeline;
  }

  StreamPtr clone() const override;

  void add(StreamPtr Child) { Children.push_back(std::move(Child)); }

  const std::vector<StreamPtr> &children() const { return Children; }
  std::vector<StreamPtr> &children() { return Children; }

private:
  std::vector<StreamPtr> Children;
};

/// Splitter specification: duplicate, or roundrobin with per-child weights.
struct Splitter {
  enum KindTy { Duplicate, RoundRobin } Kind = Duplicate;
  std::vector<int> Weights; ///< RoundRobin only; one weight per child

  static Splitter duplicate() { return {Duplicate, {}}; }
  static Splitter roundRobin(std::vector<int> W) {
    return {RoundRobin, std::move(W)};
  }
  /// Items distributed per full splitter cycle (0 for duplicate).
  int totalWeight() const;
};

/// Joiner specification: roundrobin with per-child weights (the only
/// joiner StreamIt defines).
struct Joiner {
  std::vector<int> Weights;

  static Joiner roundRobin(std::vector<int> W) { return {std::move(W)}; }
  int totalWeight() const;
};

class SplitJoin : public Stream {
public:
  SplitJoin(std::string Name, Splitter Split, Joiner Join)
      : Stream(StreamKind::SplitJoin, std::move(Name)),
        Split(std::move(Split)), Join(std::move(Join)) {}

  static bool classof(const Stream *S) {
    return S->kind() == StreamKind::SplitJoin;
  }

  StreamPtr clone() const override;

  void add(StreamPtr Child) { Children.push_back(std::move(Child)); }

  const std::vector<StreamPtr> &children() const { return Children; }
  std::vector<StreamPtr> &children() { return Children; }

  const Splitter &splitter() const { return Split; }
  const Joiner &joiner() const { return Join; }

private:
  Splitter Split;
  Joiner Join;
  std::vector<StreamPtr> Children;
};

/// A feedbackloop: a roundrobin joiner merging external input (weight
/// Join.Weights[0]) with the loop stream's output (weight Join.Weights[1]),
/// feeding the body; the body's output is split between the external
/// output (Split weight 0) and the loop stream (Split weight 1). The loop
/// channel is pre-filled with Enqueued items so the cycle can start.
class FeedbackLoop : public Stream {
public:
  FeedbackLoop(std::string Name, Joiner Join, StreamPtr Body, StreamPtr Loop,
               Splitter Split, std::vector<double> Enqueued)
      : Stream(StreamKind::FeedbackLoop, std::move(Name)),
        Join(std::move(Join)), Split(std::move(Split)), Body(std::move(Body)),
        Loop(std::move(Loop)), Enqueued(std::move(Enqueued)) {}

  static bool classof(const Stream *S) {
    return S->kind() == StreamKind::FeedbackLoop;
  }

  StreamPtr clone() const override;

  const Joiner &joiner() const { return Join; }
  const Splitter &splitter() const { return Split; }
  const Stream &body() const { return *Body; }
  const Stream &loop() const { return *Loop; }
  Stream &body() { return *Body; }
  Stream &loop() { return *Loop; }
  const std::vector<double> &enqueued() const { return Enqueued; }

private:
  Joiner Join;
  Splitter Split;
  StreamPtr Body;
  StreamPtr Loop;
  std::vector<double> Enqueued;
};

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

/// Counts of stream constructs in a graph (Table 5.2's "Filters /
/// Pipelines / SplitJoins" columns).
struct GraphCounts {
  int Filters = 0;
  int Pipelines = 0;
  int SplitJoins = 0;
  int FeedbackLoops = 0;
};

GraphCounts countStreams(const Stream &Root);

/// Renders the hierarchy as indented text for debugging.
std::string printGraph(const Stream &Root);

} // namespace slin

#endif // SLIN_GRAPH_STREAM_H
