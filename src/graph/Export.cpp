//===- graph/Export.cpp - Stream graph exporters ------------------------------==//

#include "graph/Export.h"

#include "support/Diag.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

using namespace slin;

namespace {

/// Escapes for a double-quoted string literal. The escapes used are valid
/// in both JSON strings and DOT quoted ids/labels; control characters
/// would otherwise produce invalid JSON.
std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

std::string weightsStr(const std::vector<int> &W) {
  std::string S = "(";
  for (size_t I = 0; I != W.size(); ++I) {
    if (I)
      S += ",";
    S += std::to_string(W[I]);
  }
  return S + ")";
}

std::string fmtDouble(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

//===----------------------------------------------------------------------===//
// DOT
//===----------------------------------------------------------------------===//

class DotWriter {
public:
  explicit DotWriter(std::ostringstream &OS) : OS(OS) {}

  /// Emits \p S and returns its (entry, exit) node ids.
  std::pair<std::string, std::string> emit(const Stream &S, int Depth) {
    switch (S.kind()) {
    case StreamKind::Filter: {
      const auto *F = cast<Filter>(&S);
      std::string Id = fresh("f");
      indent(Depth);
      OS << Id << " [label=\"" << escape(F->name()) << "\\n"
         << (F->isNative() ? "native " : "") << "peek=" << F->peekRate()
         << " pop=" << F->popRate() << " push=" << F->pushRate();
      if (F->hasInitWork())
        OS << "\\ninit: peek=" << F->initPeekRate()
           << " pop=" << F->initPopRate() << " push=" << F->initPushRate();
      OS << "\"];\n";
      return {Id, Id};
    }
    case StreamKind::Pipeline: {
      const auto *P = cast<Pipeline>(&S);
      std::string Cluster = fresh("cluster_pipe");
      indent(Depth);
      OS << "subgraph " << Cluster << " {\n";
      indent(Depth + 1);
      OS << "label=\"pipeline " << escape(P->name()) << "\";\n";
      std::string Entry, Exit;
      for (const StreamPtr &C : P->children()) {
        auto [CIn, COut] = emit(*C, Depth + 1);
        if (Entry.empty())
          Entry = CIn;
        else {
          indent(Depth + 1);
          OS << Exit << " -> " << CIn << ";\n";
        }
        Exit = COut;
      }
      indent(Depth);
      OS << "}\n";
      return {Entry, Exit};
    }
    case StreamKind::SplitJoin: {
      const auto *SJ = cast<SplitJoin>(&S);
      std::string Cluster = fresh("cluster_sj");
      std::string Split = fresh("split");
      std::string Join = fresh("join");
      indent(Depth);
      OS << "subgraph " << Cluster << " {\n";
      indent(Depth + 1);
      OS << "label=\"splitjoin " << escape(SJ->name()) << "\";\n";
      indent(Depth + 1);
      OS << Split << " [shape=invtriangle, label=\""
         << (SJ->splitter().Kind == Splitter::Duplicate
                 ? std::string("duplicate")
                 : "roundrobin" + weightsStr(SJ->splitter().Weights))
         << "\"];\n";
      indent(Depth + 1);
      OS << Join << " [shape=triangle, label=\"roundrobin"
         << weightsStr(SJ->joiner().Weights) << "\"];\n";
      for (const StreamPtr &C : SJ->children()) {
        auto [CIn, COut] = emit(*C, Depth + 1);
        indent(Depth + 1);
        OS << Split << " -> " << CIn << ";\n";
        indent(Depth + 1);
        OS << COut << " -> " << Join << ";\n";
      }
      indent(Depth);
      OS << "}\n";
      return {Split, Join};
    }
    case StreamKind::FeedbackLoop: {
      const auto *FB = cast<FeedbackLoop>(&S);
      std::string Cluster = fresh("cluster_fb");
      std::string Join = fresh("join");
      std::string Split = fresh("split");
      indent(Depth);
      OS << "subgraph " << Cluster << " {\n";
      indent(Depth + 1);
      OS << "label=\"feedbackloop " << escape(FB->name()) << "\";\n";
      indent(Depth + 1);
      OS << Join << " [shape=triangle, label=\"roundrobin"
         << weightsStr(FB->joiner().Weights) << "\"];\n";
      indent(Depth + 1);
      OS << Split << " [shape=invtriangle, label=\"split"
         << weightsStr(FB->splitter().Weights) << "\"];\n";
      auto [BIn, BOut] = emit(FB->body(), Depth + 1);
      auto [LIn, LOut] = emit(FB->loop(), Depth + 1);
      indent(Depth + 1);
      OS << Join << " -> " << BIn << ";\n";
      indent(Depth + 1);
      OS << BOut << " -> " << Split << ";\n";
      indent(Depth + 1);
      OS << Split << " -> " << LIn << ";\n";
      indent(Depth + 1);
      OS << LOut << " -> " << Join << " [constraint=false, label=\"enq="
         << FB->enqueued().size() << "\"];\n";
      indent(Depth);
      OS << "}\n";
      return {Join, Split};
    }
    }
    unreachable("unknown stream kind");
  }

private:
  std::string fresh(const char *Prefix) {
    return std::string(Prefix) + std::to_string(Next++);
  }
  void indent(int Depth) {
    for (int I = 0; I != Depth; ++I)
      OS << "  ";
  }

  std::ostringstream &OS;
  int Next = 0;
};

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

void emitJson(std::ostringstream &OS, const Stream &S, int Depth) {
  auto Indent = [&](int D) {
    for (int I = 0; I != D; ++I)
      OS << "  ";
  };
  auto EmitChildren = [&](const std::vector<StreamPtr> &Children) {
    Indent(Depth + 1);
    OS << "\"children\": [";
    for (size_t I = 0; I != Children.size(); ++I) {
      OS << (I ? "," : "") << "\n";
      emitJson(OS, *Children[I], Depth + 2);
    }
    OS << "\n";
    Indent(Depth + 1);
    OS << "]\n";
  };
  auto EmitWeights = [&](const char *Key, const std::vector<int> &W) {
    Indent(Depth + 1);
    OS << "\"" << Key << "\": [";
    for (size_t I = 0; I != W.size(); ++I)
      OS << (I ? ", " : "") << W[I];
    OS << "],\n";
  };

  Indent(Depth);
  OS << "{\n";
  switch (S.kind()) {
  case StreamKind::Filter: {
    const auto *F = cast<Filter>(&S);
    Indent(Depth + 1);
    OS << "\"kind\": \"filter\",\n";
    Indent(Depth + 1);
    OS << "\"name\": \"" << escape(F->name()) << "\",\n";
    Indent(Depth + 1);
    OS << "\"native\": " << (F->isNative() ? "true" : "false") << ",\n";
    Indent(Depth + 1);
    OS << "\"peek\": " << F->peekRate() << ", \"pop\": " << F->popRate()
       << ", \"push\": " << F->pushRate();
    if (F->hasInitWork()) {
      OS << ",\n";
      Indent(Depth + 1);
      OS << "\"initPeek\": " << F->initPeekRate()
         << ", \"initPop\": " << F->initPopRate()
         << ", \"initPush\": " << F->initPushRate();
    }
    OS << "\n";
    break;
  }
  case StreamKind::Pipeline: {
    const auto *P = cast<Pipeline>(&S);
    Indent(Depth + 1);
    OS << "\"kind\": \"pipeline\",\n";
    Indent(Depth + 1);
    OS << "\"name\": \"" << escape(P->name()) << "\",\n";
    EmitChildren(P->children());
    break;
  }
  case StreamKind::SplitJoin: {
    const auto *SJ = cast<SplitJoin>(&S);
    Indent(Depth + 1);
    OS << "\"kind\": \"splitjoin\",\n";
    Indent(Depth + 1);
    OS << "\"name\": \"" << escape(SJ->name()) << "\",\n";
    Indent(Depth + 1);
    OS << "\"splitter\": \""
       << (SJ->splitter().Kind == Splitter::Duplicate ? "duplicate"
                                                      : "roundrobin")
       << "\",\n";
    if (SJ->splitter().Kind != Splitter::Duplicate)
      EmitWeights("splitWeights", SJ->splitter().Weights);
    EmitWeights("joinWeights", SJ->joiner().Weights);
    EmitChildren(SJ->children());
    break;
  }
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    Indent(Depth + 1);
    OS << "\"kind\": \"feedbackloop\",\n";
    Indent(Depth + 1);
    OS << "\"name\": \"" << escape(FB->name()) << "\",\n";
    EmitWeights("joinWeights", FB->joiner().Weights);
    EmitWeights("splitWeights", FB->splitter().Weights);
    Indent(Depth + 1);
    OS << "\"enqueued\": [";
    for (size_t I = 0; I != FB->enqueued().size(); ++I)
      OS << (I ? ", " : "") << fmtDouble(FB->enqueued()[I]);
    OS << "],\n";
    Indent(Depth + 1);
    OS << "\"body\":\n";
    emitJson(OS, FB->body(), Depth + 2);
    OS << ",\n";
    Indent(Depth + 1);
    OS << "\"loop\":\n";
    emitJson(OS, FB->loop(), Depth + 2);
    OS << "\n";
    break;
  }
  }
  Indent(Depth);
  OS << "}";
}

} // namespace

std::string slin::streamToDot(const Stream &Root) {
  std::ostringstream OS;
  OS << "digraph \"" << escape(Root.name()) << "\" {\n";
  OS << "  rankdir=TB;\n";
  OS << "  node [shape=box, fontname=\"Helvetica\"];\n";
  DotWriter W(OS);
  W.emit(Root, 1);
  OS << "}\n";
  return OS.str();
}

std::string slin::streamToJson(const Stream &Root) {
  std::ostringstream OS;
  emitJson(OS, Root, 0);
  OS << "\n";
  return OS.str();
}

bool slin::writeTextFile(const std::string &Path, const std::string &Text) {
  std::error_code EC;
  std::filesystem::path P(Path);
  if (P.has_parent_path())
    std::filesystem::create_directories(P.parent_path(), EC);
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fclose(F);
  return true;
}
