//===- graph/Export.h - Stream graph exporters ------------------*- C++ -*-===//
///
/// \file
/// Deterministic DOT and JSON renderings of a hierarchical stream graph,
/// used by the compiler pipeline's dump-after-pass diagnostics and by the
/// golden-file tests. DOT draws containers as nested clusters with
/// explicit splitter/joiner nodes and dataflow edges (the loop channel of
/// a feedbackloop is drawn as a back edge labelled with its enqueued
/// count); JSON mirrors the hierarchy as nested objects with rates and
/// weights, machine-readable for external tooling.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_GRAPH_EXPORT_H
#define SLIN_GRAPH_EXPORT_H

#include "graph/Stream.h"

#include <string>

namespace slin {

/// Graphviz DOT rendering of \p Root.
std::string streamToDot(const Stream &Root);

/// JSON rendering of \p Root (2-space indentation, trailing newline).
std::string streamToJson(const Stream &Root);

/// Writes \p Text to \p Path, creating parent directories. Returns false
/// (with a warning on stderr) on failure.
bool writeTextFile(const std::string &Path, const std::string &Text);

} // namespace slin

#endif // SLIN_GRAPH_EXPORT_H
