//===- graph/Stream.cpp - Hierarchical stream graph -------------------------==//

#include "graph/Stream.h"

#include "support/Diag.h"

#include <atomic>
#include <cstdio>
#include <numeric>

using namespace slin;

Stream::~Stream() = default;

namespace {
uint64_t nextNativeFilterId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}
} // namespace

NativeFilter::NativeFilter() : InstanceId(nextNativeFilterId()) {}
NativeFilter::NativeFilter(const NativeFilter &)
    : InstanceId(nextNativeFilterId()) {}
NativeFilter::~NativeFilter() = default;

bool NativeFilter::fireBatch(const double *, double *, int) { return false; }

int Splitter::totalWeight() const {
  return std::accumulate(Weights.begin(), Weights.end(), 0);
}

int Joiner::totalWeight() const {
  return std::accumulate(Weights.begin(), Weights.end(), 0);
}

//===----------------------------------------------------------------------===//
// Filter
//===----------------------------------------------------------------------===//

Filter::Filter(std::string Name, std::vector<wir::FieldDef> Fields,
               wir::WorkFunction Work)
    : Stream(StreamKind::Filter, std::move(Name)), Fields(std::move(Fields)),
      Work(std::move(Work)) {}

Filter::Filter(std::string Name, std::unique_ptr<NativeFilter> Native)
    : Stream(StreamKind::Filter, std::move(Name)), Native(std::move(Native)) {}

StreamPtr Filter::clone() const {
  if (isNative())
    return std::make_unique<Filter>(name(), Native->clone());
  auto F = std::make_unique<Filter>(name(), Fields, Work.clone());
  if (InitWork)
    F->setInitWork(InitWork->clone());
  return F;
}

int Filter::peekRate() const {
  return isNative() ? Native->peekRate() : Work.PeekRate;
}
int Filter::popRate() const {
  return isNative() ? Native->popRate() : Work.PopRate;
}
int Filter::pushRate() const {
  return isNative() ? Native->pushRate() : Work.PushRate;
}

bool Filter::hasInitWork() const {
  return isNative() ? Native->hasInitWork() : InitWork.has_value();
}
int Filter::initPeekRate() const {
  if (isNative())
    return Native->initPeekRate();
  return InitWork ? InitWork->PeekRate : peekRate();
}
int Filter::initPopRate() const {
  if (isNative())
    return Native->initPopRate();
  return InitWork ? InitWork->PopRate : popRate();
}
int Filter::initPushRate() const {
  if (isNative())
    return Native->initPushRate();
  return InitWork ? InitWork->PushRate : pushRate();
}

//===----------------------------------------------------------------------===//
// Containers
//===----------------------------------------------------------------------===//

StreamPtr Pipeline::clone() const {
  auto P = std::make_unique<Pipeline>(name());
  for (const StreamPtr &C : Children)
    P->add(C->clone());
  return P;
}

StreamPtr SplitJoin::clone() const {
  auto SJ = std::make_unique<SplitJoin>(name(), Split, Join);
  for (const StreamPtr &C : Children)
    SJ->add(C->clone());
  return SJ;
}

StreamPtr FeedbackLoop::clone() const {
  return std::make_unique<FeedbackLoop>(name(), Join, Body->clone(),
                                        Loop->clone(), Split, Enqueued);
}

//===----------------------------------------------------------------------===//
// Utilities
//===----------------------------------------------------------------------===//

static void countStreamsImpl(const Stream &S, GraphCounts &C) {
  switch (S.kind()) {
  case StreamKind::Filter:
    ++C.Filters;
    return;
  case StreamKind::Pipeline:
    ++C.Pipelines;
    for (const StreamPtr &Child : cast<Pipeline>(&S)->children())
      countStreamsImpl(*Child, C);
    return;
  case StreamKind::SplitJoin:
    ++C.SplitJoins;
    for (const StreamPtr &Child : cast<SplitJoin>(&S)->children())
      countStreamsImpl(*Child, C);
    return;
  case StreamKind::FeedbackLoop: {
    ++C.FeedbackLoops;
    const auto *FB = cast<FeedbackLoop>(&S);
    countStreamsImpl(FB->body(), C);
    countStreamsImpl(FB->loop(), C);
    return;
  }
  }
  unreachable("unknown stream kind");
}

GraphCounts slin::countStreams(const Stream &Root) {
  GraphCounts C;
  countStreamsImpl(Root, C);
  return C;
}

static void printGraphImpl(const Stream &S, int Indent, std::string &Out) {
  Out.append(static_cast<size_t>(Indent) * 2, ' ');
  switch (S.kind()) {
  case StreamKind::Filter: {
    const auto *F = cast<Filter>(&S);
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf), "filter %s (peek %d pop %d push %d)%s\n",
                  F->name().c_str(), F->peekRate(), F->popRate(),
                  F->pushRate(), F->isNative() ? " [native]" : "");
    Out += Buf;
    return;
  }
  case StreamKind::Pipeline: {
    Out += "pipeline " + S.name() + "\n";
    for (const StreamPtr &C : cast<Pipeline>(&S)->children())
      printGraphImpl(*C, Indent + 1, Out);
    return;
  }
  case StreamKind::SplitJoin: {
    const auto *SJ = cast<SplitJoin>(&S);
    Out += "splitjoin " + S.name() + " (split ";
    if (SJ->splitter().Kind == Splitter::Duplicate) {
      Out += "duplicate";
    } else {
      Out += "roundrobin";
      for (int W : SJ->splitter().Weights)
        Out += " " + std::to_string(W);
    }
    Out += "; join roundrobin";
    for (int W : SJ->joiner().Weights)
      Out += " " + std::to_string(W);
    Out += ")\n";
    for (const StreamPtr &C : SJ->children())
      printGraphImpl(*C, Indent + 1, Out);
    return;
  }
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    Out += "feedbackloop " + S.name() + "\n";
    printGraphImpl(FB->body(), Indent + 1, Out);
    printGraphImpl(FB->loop(), Indent + 1, Out);
    return;
  }
  }
  unreachable("unknown stream kind");
}

std::string slin::printGraph(const Stream &Root) {
  std::string Out;
  printGraphImpl(Root, 0, Out);
  return Out;
}
