//===- verify/Lint.h - WIR abstract-interpretation linter -------*- C++ -*-===//
///
/// \file
/// The three lint analyses built on the abstract tape executor
/// (verify/AbstractInterp.h), each an independent re-derivation of a
/// fact the optimizer stack otherwise takes on trust:
///
///  * verify-linear — the linearity oracle: re-derives the affine form
///    [A, b] of every work function from its op tape and cross-checks
///    it against linear/Extract coefficient by coefficient (exact ==),
///    with a "not-linear" witness (tape offset + reason) whenever the
///    tape disagrees;
///  * verify-bounds — the bounds & rate proof: every peek/pop/push and
///    field/array index in every tape stays inside declared rates and
///    windows, and a replay of the schedule's firing programs with the
///    *tape-derived* rates keeps every flat-buffer position inside the
///    StaticSchedule's high-water marks and buffer capacities (the
///    positions the CxxEmit lowering indexes with);
///  * verify-state — the state-classification audit: re-runs
///    analyzeSteadyState and abstractly executes one steady firing to
///    confirm every affine / modular / input-determined claim the
///    parallel backend's shard seeding trusts.
///
/// All three run as pipeline passes under SLIN_VERIFY (compiler/
/// Pipeline.cpp) and power the standalone tools/slin-lint CLI.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_VERIFY_LINT_H
#define SLIN_VERIFY_LINT_H

#include "compiler/Program.h"
#include "verify/AbstractInterp.h"

#include <string>
#include <vector>

namespace slin {

class Filter;

namespace verify {

struct Finding {
  enum class Severity {
    Error, ///< a proven disagreement / violation — fails the pass
    Note,  ///< informational (e.g. tape affine where Extract declined)
  };
  Severity Sev = Severity::Error;
  std::string Pass;  ///< verify-linear / verify-bounds / verify-state
  std::string Where; ///< filter (flat-node) name, or "schedule"
  int Pc = -1;       ///< tape offset; -1 when not tape-anchored
  std::string Message;
};

class LintReport {
public:
  void add(Finding F) { Findings.push_back(std::move(F)); }
  void error(const std::string &Pass, const std::string &Where, int Pc,
             std::string Msg) {
    add({Finding::Severity::Error, Pass, Where, Pc, std::move(Msg)});
  }
  void note(const std::string &Pass, const std::string &Where, int Pc,
            std::string Msg) {
    add({Finding::Severity::Note, Pass, Where, Pc, std::move(Msg)});
  }

  const std::vector<Finding> &findings() const { return Findings; }
  size_t errorCount() const;
  size_t noteCount() const;

  /// First Error-severity message (empty when clean) — the pipeline
  /// Status message shape of opt/Cleanup.h's verifiers.
  std::string firstError() const;

  /// Human-readable findings report.
  std::string text() const;
  /// Machine-readable report: {"errors":N,"notes":N,"findings":[...]}.
  std::string json() const;

private:
  std::vector<Finding> Findings;
};

//===----------------------------------------------------------------------===//
// Pipeline pass entry points
//===----------------------------------------------------------------------===//
// Each appends its findings to \p R and returns "" when no Error-severity
// finding was produced, else a one-line summary suitable for a
// Status(ErrorCode::VerifyFailed) message.

std::string verifyLinear(const CompiledProgram &P, LintReport &R);
std::string verifyBounds(const CompiledProgram &P, LintReport &R);
std::string verifyState(const CompiledProgram &P, LintReport &R);

/// All three passes over one compiled program (the slin-lint CLI body).
LintReport lintProgram(const CompiledProgram &P);

//===----------------------------------------------------------------------===//
// Per-tape hooks (mutation-corpus tests; also the passes' internals)
//===----------------------------------------------------------------------===//

/// Linearity oracle over one tape: cross-checks \p Tape against the
/// extraction result of \p F. \p Where labels findings.
void lintTapeLinear(const wir::OpProgram &Tape, const Filter &F,
                    const std::string &Where, LintReport &R);

/// Bounds & rate proof over one tape (no schedule context).
void lintTapeBounds(const wir::OpProgram &Tape,
                    const std::vector<wir::FieldDef> &Fields,
                    const std::string &Where, LintReport &R);

/// Audits externally supplied steady-state \p Claims against the tape's
/// abstract execution — the claims are a parameter (rather than
/// recomputed) so corrupted/mislabeled claims can be tested directly.
void lintStateClaims(const wir::OpProgram &Tape,
                     const std::vector<wir::FieldDef> &Fields,
                     const wir::SteadyStateInfo &Claims,
                     const std::string &Where, LintReport &R);

} // namespace verify
} // namespace slin

#endif // SLIN_VERIFY_LINT_H
