//===- verify/AffineDomain.cpp - Affine abstract value domain -------------===//

#include "verify/AffineDomain.h"

#include <cmath>
#include <cstdio>

using namespace slin;
using namespace slin::verify;

bool AffineValue::dependsOnState() const {
  for (const auto &KV : State)
    if (KV.second != 0.0)
      return true;
  return false;
}

bool AffineValue::sameValue(const AffineValue &O) const {
  if (K != O.K)
    return false;
  if (K == Kind::Top)
    return true;
  if (K == Kind::ModVal && Mod != O.Mod)
    return false;
  if (!(In == O.In) || Const != O.Const)
    return false;
  // State maps may carry explicit zero entries (e.g. after scaling by
  // 0); compare over the key union with == semantics.
  for (const auto &KV : State) {
    auto It = O.State.find(KV.first);
    double Theirs = It == O.State.end() ? 0.0 : It->second;
    if (KV.second != Theirs)
      return false;
  }
  for (const auto &KV : O.State)
    if (State.find(KV.first) == State.end() && KV.second != 0.0)
      return false;
  return true;
}

std::string
AffineValue::str(const std::vector<std::string> *FieldNames) const {
  if (isTop())
    return "<top>";
  auto Num = [](double V) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", V);
    return std::string(Buf);
  };
  std::string S;
  auto Term = [&](double C, const std::string &Sym) {
    if (C == 0.0)
      return;
    if (!S.empty())
      S += " + ";
    if (C == 1.0)
      S += Sym;
    else
      S += Num(C) + "*" + Sym;
  };
  for (size_t I = 0; I != In.size(); ++I)
    Term(In[I], "peek(" + std::to_string(I) + ")");
  for (const auto &KV : State) {
    int F = symField(KV.first), E = symElem(KV.first);
    std::string Name = FieldNames && static_cast<size_t>(F) < FieldNames->size()
                           ? (*FieldNames)[static_cast<size_t>(F)]
                           : "f" + std::to_string(F);
    if (E != 0)
      Name += "[" + std::to_string(E) + "]";
    Term(KV.second, "state(" + Name + ")");
  }
  if (S.empty() || Const != 0.0) {
    if (!S.empty())
      S += " + ";
    S += Num(Const);
  }
  if (isModVal())
    return "fmod(" + S + ", " + Num(Mod) + ")";
  return S;
}

AffineValue verify::affAdd(const AffineValue &L, const AffineValue &R,
                           double Sign) {
  if (!L.isVal() || !R.isVal())
    return AffineValue::top();
  AffineValue V = L;
  for (size_t I = 0; I != V.In.size(); ++I)
    V.In[I] += Sign * R.In[I];
  for (const auto &KV : R.State)
    V.State[KV.first] += Sign * KV.second;
  V.Const += Sign * R.Const;
  return V;
}

AffineValue verify::affScale(const AffineValue &V, double C) {
  if (!V.isVal())
    return AffineValue::top();
  AffineValue R = V;
  for (size_t I = 0; I != R.In.size(); ++I)
    R.In[I] *= C;
  for (auto &KV : R.State)
    KV.second *= C;
  R.Const *= C;
  return R;
}

AffineValue verify::affMul(const AffineValue &L, const AffineValue &R) {
  if (!L.isVal() || !R.isVal())
    return AffineValue::top();
  if (L.isConst())
    return affScale(R, L.Const);
  if (R.isConst())
    return affScale(L, R.Const);
  return AffineValue::top();
}

AffineValue verify::affDiv(const AffineValue &L, const AffineValue &R) {
  if (!L.isVal() || !R.isVal())
    return AffineValue::top();
  if (R.isConst() && R.Const != 0.0)
    return affScale(L, 1.0 / R.Const);
  return AffineValue::top();
}

AffineValue verify::affNeg(const AffineValue &V) {
  if (!V.isVal())
    return AffineValue::top();
  AffineValue R = V;
  for (size_t I = 0; I != R.In.size(); ++I)
    R.In[I] = -R.In[I];
  for (auto &KV : R.State)
    KV.second = -KV.second;
  R.Const = -R.Const;
  return R;
}

AffineValue verify::affModOp(const AffineValue &L, const AffineValue &R) {
  if (!L.isVal() || !R.isVal())
    return AffineValue::top();
  if (L.isConst() && R.isConst())
    return AffineValue::constant(std::fmod(L.Const, R.Const), L.In.size());
  if (R.isConst() && R.Const > 0.0) {
    AffineValue V = L;
    V.K = AffineValue::Kind::ModVal;
    V.Mod = R.Const;
    return V;
  }
  return AffineValue::top();
}

AffineValue verify::affCompare(wir::Op K, const AffineValue &L,
                               const AffineValue &R) {
  auto Fold = [&](bool B) {
    return AffineValue::constant(B ? 1.0 : 0.0, L.In.size());
  };
  switch (K) {
  case wir::Op::Bool:
    if (L.isConst())
      return Fold(L.Const != 0.0);
    return AffineValue::top();
  case wir::Op::Not:
    if (L.isConst())
      return Fold(L.Const == 0.0);
    return AffineValue::top();
  default:
    break;
  }
  if (!L.isConst() || !R.isConst())
    return AffineValue::top();
  switch (K) {
  case wir::Op::Lt:
    return Fold(L.Const < R.Const);
  case wir::Op::Le:
    return Fold(L.Const <= R.Const);
  case wir::Op::Gt:
    return Fold(L.Const > R.Const);
  case wir::Op::Ge:
    return Fold(L.Const >= R.Const);
  case wir::Op::Eq:
    return Fold(L.Const == R.Const);
  case wir::Op::Ne:
    return Fold(L.Const != R.Const);
  default:
    return AffineValue::top();
  }
}
