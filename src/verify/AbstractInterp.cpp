//===- verify/AbstractInterp.cpp - Abstract op-tape executor --------------===//

#include "verify/AbstractInterp.h"

#include <algorithm>
#include <cmath>

using namespace slin;
using namespace slin::verify;
using wir::Inst;
using wir::Op;

namespace {

/// One in-flight execution path: the full abstract machine state.
struct Path {
  size_t PC = 0;
  std::vector<AffineValue> Regs;
  std::vector<AffineValue> Arr;        ///< flat local-array store
  std::vector<int32_t> ASz;            ///< logical sizes (0 before ZeroArr)
  std::vector<std::vector<AffineValue>> Fld;
  int Pops = 0;
  std::vector<AffineValue> Pushes;
  bool Printed = false;
};

bool regOk(const wir::OpProgram &P, int32_t R) {
  return R >= 0 && R < P.numRegs();
}

bool constIndex(const AffineValue &V, bool IntIdx, long &Out) {
  if (!V.isConst())
    return false;
  Out = IntIdx ? static_cast<long>(V.Const) : std::lround(V.Const);
  return true;
}

} // namespace

bool verify::checkWellFormed(const wir::OpProgram &P,
                             const std::vector<wir::FieldDef> &Fields,
                             std::vector<TapeFault> &Faults) {
  size_t Before = Faults.size();
  auto Fault = [&](int Pc, std::string Msg) {
    Faults.push_back({Pc, std::move(Msg)});
  };
  if (P.empty()) {
    Fault(-1, "empty tape");
    return false;
  }
  if (P.code().back().K != Op::Halt)
    Fault(static_cast<int>(P.size()) - 1,
          "tape does not end in Halt (can run off the end)");
  if (static_cast<size_t>(P.fieldCount()) != Fields.size())
    Fault(-1, "tape was compiled against " + std::to_string(P.fieldCount()) +
                  " fields, filter declares " +
                  std::to_string(Fields.size()));
  for (int A = 0; A != P.arrayCount(); ++A)
    if (P.arrayBase(A) < 0 || P.arrayDeclSize(A) < 0 ||
        P.arrayBase(A) + P.arrayDeclSize(A) > P.arrayStoreSize())
      Fault(-1, "array slot " + std::to_string(A) +
                    " overflows the array store");
  const std::vector<Inst> &Code = P.code();
  long N = static_cast<long>(Code.size());
  for (long Pc = 0; Pc != N; ++Pc) {
    const Inst &I = Code[static_cast<size_t>(Pc)];
    auto Reg = [&](int32_t R, const char *Which) {
      if (!regOk(P, R))
        Fault(static_cast<int>(Pc), std::string("register operand ") + Which +
                                        " out of range (" +
                                        std::to_string(R) + " of " +
                                        std::to_string(P.numRegs()) + ")");
    };
    auto FieldSlot = [&](int32_t F) {
      if (F < 0 || static_cast<size_t>(F) >= Fields.size()) {
        Fault(static_cast<int>(Pc),
              "field operand out of range (" + std::to_string(F) + " of " +
                  std::to_string(Fields.size()) + ")");
        return false;
      }
      return true;
    };
    auto ArrSlot = [&](int32_t A) {
      if (A < 0 || A >= P.arrayCount())
        Fault(static_cast<int>(Pc),
              "array slot out of range (" + std::to_string(A) + " of " +
                  std::to_string(P.arrayCount()) + ")");
    };
    auto Target = [&](int32_t T) {
      if (T < 0 || T >= N)
        Fault(static_cast<int>(Pc),
              "jump target out of range (" + std::to_string(T) + " of " +
                  std::to_string(N) + ")");
    };
    switch (I.K) {
    case Op::Const:
      Reg(I.A, "A");
      break;
    case Op::Copy:
    case Op::Bool:
    case Op::Not:
    case Op::Round:
    case Op::Neg:
    case Op::AddImm:
      Reg(I.A, "A");
      Reg(I.B, "B");
      break;
    case Op::Peek:
      Reg(I.A, "A");
      Reg(I.C, "C");
      break;
    case Op::PeekImm:
    case Op::Pop:
    case Op::Push:
    case Op::Print:
      Reg(I.A, "A");
      break;
    case Op::PopDiscard:
    case Op::Halt:
      break;
    case Op::LoadFld:
    case Op::StoreFld:
      Reg(I.A, "A");
      if (FieldSlot(I.B) && Fields[static_cast<size_t>(I.B)].Init.empty())
        Fault(static_cast<int>(Pc), "scalar access to an empty field '" +
                                        Fields[static_cast<size_t>(I.B)].Name +
                                        "'");
      break;
    case Op::LoadFldIdx:
    case Op::StoreFldIdx:
      Reg(I.A, "A");
      Reg(I.C, "C");
      FieldSlot(I.B);
      break;
    case Op::LoadArr:
    case Op::StoreArr:
      Reg(I.A, "A");
      Reg(I.C, "C");
      ArrSlot(I.B);
      break;
    case Op::ZeroArr:
      ArrSlot(I.A);
      break;
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Mod:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::Eq:
    case Op::Ne:
      Reg(I.A, "A");
      Reg(I.B, "B");
      Reg(I.C, "C");
      break;
    case Op::Intrin:
      Reg(I.A, "A");
      Reg(I.C, "C");
      if (I.B < 0 || I.B > static_cast<int32_t>(wir::Intrinsic::Round))
        Fault(static_cast<int>(Pc),
              "unknown intrinsic id " + std::to_string(I.B));
      break;
    case Op::MulAdd:
      Reg(I.A, "A");
      Reg(I.B, "B");
      Reg(I.C, "C");
      Reg(I.D, "D");
      break;
    case Op::MacFldPeek:
      Reg(I.A, "A");
      Reg(I.C, "C");
      FieldSlot(I.B);
      break;
    case Op::Jump:
      Target(I.A);
      break;
    case Op::JumpIfZero:
      Reg(I.A, "A");
      Target(I.B);
      break;
    case Op::JumpIfGe:
      Reg(I.A, "A");
      Reg(I.B, "B");
      Target(I.C);
      break;
    case Op::IncJump:
      Reg(I.A, "A");
      Target(I.B);
      break;
    }
  }
  return Faults.size() == Before;
}

TapeSummary verify::abstractExecute(const wir::OpProgram &P,
                                    const std::vector<wir::FieldDef> &Fields) {
  TapeSummary S;
  if (!checkWellFormed(P, Fields, S.Faults))
    return S;

  const std::vector<Inst> &Code = P.code();
  const size_t E = static_cast<size_t>(
      std::max(P.peekRate(), P.popRate())); // input window, Extract's Peek

  auto Fault = [&](int Pc, const std::string &Msg) {
    for (const TapeFault &F : S.Faults)
      if (F.Pc == Pc && F.Msg == Msg)
        return;
    S.Faults.push_back({Pc, Msg});
  };
  auto NoteFork = [&](size_t Pc) {
    if (!S.Forked)
      S.FirstForkPc = static_cast<int>(Pc);
    S.Forked = true;
  };
  auto NotePeek = [&](int Pos) {
    S.MaxPeekPos = std::max(S.MaxPeekPos, Pos);
  };

  Path Init;
  Init.Regs.assign(static_cast<size_t>(P.numRegs()),
                   AffineValue::constant(0.0, E));
  Init.Arr.assign(static_cast<size_t>(P.arrayStoreSize()),
                  AffineValue::top());
  Init.ASz.assign(static_cast<size_t>(P.arrayCount()), 0);
  Init.Fld.resize(Fields.size());
  for (size_t F = 0; F != Fields.size(); ++F) {
    const wir::FieldDef &D = Fields[F];
    Init.Fld[F].reserve(D.Init.size());
    for (size_t J = 0; J != D.Init.size(); ++J)
      Init.Fld[F].push_back(D.IsMutable
                                ? AffineValue::initialState(
                                      static_cast<int>(F),
                                      static_cast<int>(J), E)
                                : AffineValue::constant(D.Init[J], E));
  }

  // The step budget bounds total abstract work (loops unroll concretely;
  // a corrupted back-edge could otherwise spin forever). The path budget
  // bounds data-dependent forking (2^branches).
  const size_t MaxSteps = 8u << 20;
  const size_t MaxPaths = 128;

  std::vector<Path> Work;
  std::vector<Path> Done;
  Work.push_back(std::move(Init));
  size_t Steps = 0;

  while (!Work.empty() && !S.Exploded) {
    Path Pt = std::move(Work.back());
    Work.pop_back();
    ++S.PathsExplored;
    bool Live = true;
    while (Live) {
      if (++Steps > MaxSteps) {
        Fault(static_cast<int>(Pt.PC),
              "abstract-execution step budget exceeded "
              "(divergent loop or extreme trip count)");
        S.Exploded = true;
        break;
      }
      const Inst &I = Code[Pt.PC];
      const int Pc = static_cast<int>(Pt.PC);
      size_t NextPC = Pt.PC + 1;
      auto Rd = [&](int32_t R) -> const AffineValue & {
        return Pt.Regs[static_cast<size_t>(R)];
      };
      auto Wr = [&](int32_t R, AffineValue V) {
        Pt.Regs[static_cast<size_t>(R)] = std::move(V);
      };
      // Reads In[Pops + Off] abstractly: window check + peek coefficient.
      auto ReadInput = [&](long Off, const char *What) -> AffineValue {
        long Pos = Pt.Pops + Off;
        if (Off < 0)
          Fault(Pc, std::string(What) + " offset is negative (" +
                        std::to_string(Off) + ")");
        if (Pos < 0 || Pos >= static_cast<long>(E)) {
          Fault(Pc, std::string(What) + " reads input position " +
                        std::to_string(Pos) + ", outside the window [0, " +
                        std::to_string(E) + ")");
          return AffineValue::top();
        }
        NotePeek(static_cast<int>(Pos));
        return AffineValue::input(static_cast<size_t>(Pos), E);
      };
      switch (I.K) {
      case Op::Const:
        Wr(I.A, AffineValue::constant(I.Imm, E));
        break;
      case Op::Copy:
        Wr(I.A, Rd(I.B));
        break;
      case Op::Peek: {
        long Idx;
        if (!constIndex(Rd(I.C), I.IntIdx, Idx)) {
          Fault(Pc, "peek index is not statically constant");
          Wr(I.A, AffineValue::top());
        } else {
          Wr(I.A, ReadInput(Idx, "peek"));
        }
        break;
      }
      case Op::PeekImm:
        Wr(I.A, ReadInput(I.B, "peek"));
        break;
      case Op::Pop: {
        AffineValue V = ReadInput(0, "pop");
        ++Pt.Pops;
        Wr(I.A, std::move(V));
        break;
      }
      case Op::PopDiscard:
        if (Pt.Pops >= static_cast<int>(E))
          Fault(Pc, "pop advances past the input window [0, " +
                        std::to_string(E) + ")");
        ++Pt.Pops;
        break;
      case Op::Push:
        if (static_cast<int>(Pt.Pushes.size()) >= P.pushRate())
          Fault(Pc, "push beyond the declared push rate " +
                        std::to_string(P.pushRate()));
        Pt.Pushes.push_back(Rd(I.A));
        break;
      case Op::Print:
        Pt.Printed = true;
        break;
      case Op::LoadFld:
        Wr(I.A, Pt.Fld[static_cast<size_t>(I.B)][0]);
        break;
      case Op::StoreFld:
        if (!Fields[static_cast<size_t>(I.B)].IsMutable)
          Fault(Pc, "store to constant field '" +
                        Fields[static_cast<size_t>(I.B)].Name + "'");
        Pt.Fld[static_cast<size_t>(I.B)][0] = Rd(I.A);
        break;
      case Op::LoadFldIdx: {
        long Idx;
        auto &Elems = Pt.Fld[static_cast<size_t>(I.B)];
        if (!constIndex(Rd(I.C), I.IntIdx, Idx)) {
          // State-dependent index (e.g. a cursor field). The dispatch
          // bounds-checks this op at runtime, so "unproven" is safe —
          // no finding, value unknown.
          Wr(I.A, AffineValue::top());
        } else if (Idx < 0 || Idx >= static_cast<long>(Elems.size())) {
          Fault(Pc, "field '" + Fields[static_cast<size_t>(I.B)].Name +
                        "' index " + std::to_string(Idx) +
                        " out of range [0, " + std::to_string(Elems.size()) +
                        ")");
          Wr(I.A, AffineValue::top());
        } else {
          Wr(I.A, Elems[static_cast<size_t>(Idx)]);
        }
        break;
      }
      case Op::StoreFldIdx: {
        long Idx;
        auto &Elems = Pt.Fld[static_cast<size_t>(I.B)];
        if (!Fields[static_cast<size_t>(I.B)].IsMutable)
          Fault(Pc, "store to constant field '" +
                        Fields[static_cast<size_t>(I.B)].Name + "'");
        if (!constIndex(Rd(I.C), I.IntIdx, Idx)) {
          // Runtime-checked store with an unknown index: any element may
          // be overwritten. No finding; the whole field is unknown.
          for (AffineValue &V : Elems)
            V = AffineValue::top();
        } else if (Idx < 0 || Idx >= static_cast<long>(Elems.size())) {
          Fault(Pc, "field '" + Fields[static_cast<size_t>(I.B)].Name +
                        "' index " + std::to_string(Idx) +
                        " out of range [0, " + std::to_string(Elems.size()) +
                        ")");
        } else {
          Elems[static_cast<size_t>(Idx)] = Rd(I.A);
        }
        break;
      }
      case Op::LoadArr:
      case Op::StoreArr: {
        long Idx;
        int32_t Slot = I.B;
        long Sz = Pt.ASz[static_cast<size_t>(Slot)];
        if (!constIndex(Rd(I.C), I.IntIdx, Idx)) {
          // Runtime-checked, like the field-index ops: unproven, silent.
          if (I.K == Op::LoadArr)
            Wr(I.A, AffineValue::top());
          else
            for (long J = 0; J != Sz; ++J)
              Pt.Arr[static_cast<size_t>(P.arrayBase(Slot) + J)] =
                  AffineValue::top();
        } else if (Idx < 0 || Idx >= Sz) {
          Fault(Pc, "array '" + P.arrayName(Slot) + "' index " +
                        std::to_string(Idx) + " out of range [0, " +
                        std::to_string(Sz) + ")" +
                        (Sz == 0 ? " (used before its declaration)" : ""));
          if (I.K == Op::LoadArr)
            Wr(I.A, AffineValue::top());
        } else if (I.K == Op::LoadArr) {
          Wr(I.A, Pt.Arr[static_cast<size_t>(P.arrayBase(Slot) + Idx)]);
        } else {
          Pt.Arr[static_cast<size_t>(P.arrayBase(Slot) + Idx)] = Rd(I.A);
        }
        break;
      }
      case Op::ZeroArr: {
        int32_t Slot = I.A;
        int32_t Decl = P.arrayDeclSize(Slot);
        for (int32_t J = 0; J != Decl; ++J)
          Pt.Arr[static_cast<size_t>(P.arrayBase(Slot) + J)] =
              AffineValue::constant(0.0, E);
        Pt.ASz[static_cast<size_t>(Slot)] = Decl;
        break;
      }
      case Op::Add:
        Wr(I.A, affAdd(Rd(I.B), Rd(I.C), 1.0));
        break;
      case Op::Sub:
        Wr(I.A, affAdd(Rd(I.B), Rd(I.C), -1.0));
        break;
      case Op::Mul:
        Wr(I.A, affMul(Rd(I.B), Rd(I.C)));
        break;
      case Op::Div:
        Wr(I.A, affDiv(Rd(I.B), Rd(I.C)));
        break;
      case Op::Mod:
        Wr(I.A, affModOp(Rd(I.B), Rd(I.C)));
        break;
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Eq:
      case Op::Ne:
        Wr(I.A, affCompare(I.K, Rd(I.B), Rd(I.C)));
        break;
      case Op::Bool:
      case Op::Not:
        Wr(I.A, affCompare(I.K, Rd(I.B), Rd(I.B)));
        break;
      case Op::Round: {
        const AffineValue &V = Rd(I.B);
        Wr(I.A, V.isConst()
                    ? AffineValue::constant(
                          static_cast<double>(std::lround(V.Const)), E)
                    : AffineValue::top());
        break;
      }
      case Op::Neg:
        Wr(I.A, affNeg(Rd(I.B)));
        break;
      case Op::Intrin: {
        const AffineValue &V = Rd(I.C);
        Wr(I.A, V.isConst()
                    ? AffineValue::constant(
                          wir::evalIntrinsic(
                              static_cast<wir::Intrinsic>(I.B), V.Const),
                          E)
                    : AffineValue::top());
        break;
      }
      case Op::MulAdd:
        Wr(I.A, affAdd(Rd(I.D), affMul(Rd(I.B), Rd(I.C)), 1.0));
        break;
      case Op::MacFldPeek: {
        long Idx;
        auto &Elems = Pt.Fld[static_cast<size_t>(I.B)];
        if (!constIndex(Rd(I.C), I.IntIdx, Idx)) {
          Fault(Pc, "mac index is not statically constant");
          Wr(I.A, AffineValue::top());
          break;
        }
        if (Idx < 0 || Idx >= static_cast<long>(Elems.size())) {
          Fault(Pc, "field '" + Fields[static_cast<size_t>(I.B)].Name +
                        "' index " + std::to_string(Idx) +
                        " out of range [0, " + std::to_string(Elems.size()) +
                        ")");
          Wr(I.A, AffineValue::top());
          break;
        }
        AffineValue X = ReadInput(Idx, "peek");
        Wr(I.A, affAdd(Rd(I.A),
                       affMul(Elems[static_cast<size_t>(Idx)], X), 1.0));
        break;
      }
      case Op::AddImm:
        Wr(I.A, affAdd(Rd(I.B), AffineValue::constant(I.Imm, E), 1.0));
        break;
      case Op::Jump:
        NextPC = static_cast<size_t>(I.A);
        break;
      case Op::JumpIfZero: {
        const AffineValue &C = Rd(I.A);
        if (C.isConst()) {
          if (C.Const == 0.0)
            NextPC = static_cast<size_t>(I.B);
        } else {
          NoteFork(Pt.PC);
          if (Done.size() + Work.size() + 2 > MaxPaths) {
            // Too many data-dependent paths (argmax-style loops reach
            // 2^trips). Every property becomes "unproven", which is not
            // a finding — Exploded tells the analyses to stay silent.
            S.Exploded = true;
            Live = false;
            break;
          }
          Path Taken = Pt;
          Taken.PC = static_cast<size_t>(I.B);
          Work.push_back(std::move(Taken));
        }
        break;
      }
      case Op::JumpIfGe: {
        const AffineValue &L = Rd(I.A);
        const AffineValue &R = Rd(I.B);
        if (L.isConst() && R.isConst()) {
          if (L.Const >= R.Const)
            NextPC = static_cast<size_t>(I.C);
        } else {
          NoteFork(Pt.PC);
          if (Done.size() + Work.size() + 2 > MaxPaths) {
            // Too many data-dependent paths (argmax-style loops reach
            // 2^trips). Every property becomes "unproven", which is not
            // a finding — Exploded tells the analyses to stay silent.
            S.Exploded = true;
            Live = false;
            break;
          }
          Path Taken = Pt;
          Taken.PC = static_cast<size_t>(I.C);
          Work.push_back(std::move(Taken));
        }
        break;
      }
      case Op::IncJump:
        Wr(I.A, affAdd(Rd(I.A), AffineValue::constant(1.0, E), 1.0));
        NextPC = static_cast<size_t>(I.B);
        break;
      case Op::Halt:
        if (Pt.Pops != P.popRate())
          Fault(Pc, "tape pops " + std::to_string(Pt.Pops) +
                        " items, declared pop rate is " +
                        std::to_string(P.popRate()));
        if (static_cast<int>(Pt.Pushes.size()) != P.pushRate())
          Fault(Pc, "tape pushes " + std::to_string(Pt.Pushes.size()) +
                        " items, declared push rate is " +
                        std::to_string(P.pushRate()));
        Done.push_back(std::move(Pt));
        Live = false;
        break;
      }
      if (!Live)
        break;
      Pt.PC = NextPC;
      S.HasPrint = S.HasPrint || Pt.Printed;
    }
  }

  if (S.Exploded)
    return S;
  if (Done.empty()) {
    // Every path died on a hard fault; the faults tell the story.
    return S;
  }
  S.Completed = true;

  // Join observable results across completed paths with exact equality
  // (Extract's confluence): any disagreement is data-dependent behaviour.
  const Path &Base = Done.front();
  S.Pops = Base.Pops;
  S.PushCount = static_cast<int>(Base.Pushes.size());
  S.Pushes = Base.Pushes;
  S.FieldFinal = Base.Fld;
  S.HasPrint = S.HasPrint || Base.Printed;
  for (size_t D = 1; D < Done.size(); ++D) {
    const Path &Pt = Done[D];
    S.HasPrint = S.HasPrint || Pt.Printed;
    if (Pt.Pops != Base.Pops ||
        Pt.Pushes.size() != Base.Pushes.size()) {
      Fault(S.FirstForkPc, "pop/push counts differ across data-dependent "
                           "paths");
      continue;
    }
    for (size_t J = 0; J != S.Pushes.size(); ++J)
      if (!S.Pushes[J].sameValue(Pt.Pushes[J]))
        S.Pushes[J] = AffineValue::top();
    for (size_t F = 0; F != S.FieldFinal.size(); ++F)
      for (size_t J = 0; J != S.FieldFinal[F].size(); ++J)
        if (!S.FieldFinal[F][J].sameValue(Pt.Fld[F][J]))
          S.FieldFinal[F][J] = AffineValue::top();
  }
  return S;
}
