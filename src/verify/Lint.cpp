//===- verify/Lint.cpp - WIR abstract-interpretation linter ---------------===//

#include "verify/Lint.h"

#include "graph/Stream.h"
#include "linear/Extract.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace slin;
using namespace slin::verify;

//===----------------------------------------------------------------------===//
// LintReport
//===----------------------------------------------------------------------===//

size_t LintReport::errorCount() const {
  size_t N = 0;
  for (const Finding &F : Findings)
    N += F.Sev == Finding::Severity::Error;
  return N;
}

size_t LintReport::noteCount() const {
  return Findings.size() - errorCount();
}

std::string LintReport::firstError() const {
  for (const Finding &F : Findings)
    if (F.Sev == Finding::Severity::Error)
      return F.Message;
  return "";
}

std::string LintReport::text() const {
  std::string Out;
  for (const Finding &F : Findings) {
    Out += F.Sev == Finding::Severity::Error ? "error" : "note";
    Out += " [" + F.Pass + "] " + F.Where;
    if (F.Pc >= 0)
      Out += " @pc " + std::to_string(F.Pc);
    Out += ": " + F.Message + "\n";
  }
  Out += std::to_string(errorCount()) + " error(s), " +
         std::to_string(noteCount()) + " note(s)\n";
  return Out;
}

static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string LintReport::json() const {
  std::string Out = "{\"errors\":" + std::to_string(errorCount()) +
                    ",\"notes\":" + std::to_string(noteCount()) +
                    ",\"findings\":[";
  bool First = true;
  for (const Finding &F : Findings) {
    if (!First)
      Out += ",";
    First = false;
    Out += std::string("{\"severity\":\"") +
           (F.Sev == Finding::Severity::Error ? "error" : "note") +
           "\",\"pass\":\"" + jsonEscape(F.Pass) + "\",\"where\":\"" +
           jsonEscape(F.Where) + "\",\"pc\":" + std::to_string(F.Pc) +
           ",\"message\":\"" + jsonEscape(F.Message) + "\"}";
  }
  Out += "]}";
  return Out;
}

//===----------------------------------------------------------------------===//
// verify-linear: the linearity oracle
//===----------------------------------------------------------------------===//

namespace {

/// Why the abstract execution says the tape is not input-affine; empty
/// when it is. Also yields a witness pc where one exists.
std::string notAffineWitness(const wir::OpProgram &Tape,
                             const TapeSummary &Sum, int &Pc) {
  Pc = -1;
  if (!Sum.Faults.empty()) {
    Pc = Sum.Faults.front().Pc;
    return Sum.Faults.front().Msg;
  }
  if (Sum.Exploded)
    return "abstract execution exhausted its budget";
  if (!Sum.Completed)
    return "no execution path reaches Halt";
  if (Sum.HasPrint)
    return "tape prints (side effect outside the affine form)";
  if (Sum.Pops != Tape.popRate() || Sum.PushCount != Tape.pushRate())
    return "pop/push counts disagree with the declared rates";
  for (size_t J = 0; J != Sum.Pushes.size(); ++J) {
    const AffineValue &V = Sum.Pushes[J];
    if (V.isTop()) {
      Pc = Sum.FirstForkPc;
      return "push " + std::to_string(J) +
             " has no affine form (nonlinear op or data-dependent paths)";
    }
    if (!V.isInputAffine())
      return "push " + std::to_string(J) +
             " depends on mutable state: " + V.str(&Tape.fieldNames());
  }
  return "";
}

/// The pass-summary convention of opt/Cleanup.h: "" when no new error
/// findings were added, else a one-line roll-up. \p FindingsBefore is the
/// findings() size when the pass started.
std::string passResult(const LintReport &R, size_t FindingsBefore,
                       const char *Pass) {
  size_t New = 0;
  std::string First;
  for (size_t I = FindingsBefore; I < R.findings().size(); ++I) {
    const Finding &F = R.findings()[I];
    if (F.Sev != Finding::Severity::Error)
      continue;
    if (New++ == 0)
      First = F.Where + ": " + F.Message;
  }
  if (New == 0)
    return "";
  return std::string(Pass) + ": " + std::to_string(New) + " finding(s); " +
         First;
}

} // namespace

void verify::lintTapeLinear(const wir::OpProgram &Tape, const Filter &F,
                            const std::string &Where, LintReport &R) {
  const char *Pass = "verify-linear";
  ExtractionResult Ext = extractLinearNode(F);
  TapeSummary Sum = abstractExecute(Tape, F.fields());
  int WitnessPc = -1;
  std::string Witness = notAffineWitness(Tape, Sum, WitnessPc);
  bool TapeAffine = Witness.empty();

  if (!Ext.isLinear()) {
    // Agreeing on "not linear" is success. A tape that *is* affine where
    // extraction declined for a structural reason (init work, zero push
    // rate) is expected; anything else is worth a look.
    if (TapeAffine && !F.hasInitWork() && F.pushRate() > 0)
      R.note(Pass, Where, -1,
             "tape is input-affine but extraction reports nonlinear (" +
                 Ext.FailureReason + ")");
    return;
  }

  const LinearNode &LN = *Ext.Node;
  if (!TapeAffine) {
    R.error(Pass, Where, WitnessPc,
            "extraction claims linear but the tape is not affine: " +
                Witness);
    return;
  }
  int E = std::max(Tape.peekRate(), Tape.popRate());
  if (LN.peekRate() != E || LN.popRate() != Tape.popRate() ||
      LN.pushRate() != Tape.pushRate()) {
    R.error(Pass, Where, -1,
            "linear node rates (e=" + std::to_string(LN.peekRate()) + ", o=" +
                std::to_string(LN.popRate()) + ", u=" +
                std::to_string(LN.pushRate()) + ") disagree with the tape (e=" +
                std::to_string(E) + ", o=" + std::to_string(Tape.popRate()) +
                ", u=" + std::to_string(Tape.pushRate()) + ")");
    return;
  }
  // Exact [A, b] cross-check, coefficient by coefficient.
  const size_t MaxReported = 16;
  size_t Mismatches = 0;
  auto Report = [&](const std::string &Msg) {
    if (++Mismatches <= MaxReported)
      R.error(Pass, Where, -1, Msg);
  };
  for (int J = 0; J != LN.pushRate(); ++J) {
    const AffineValue &V = Sum.Pushes[static_cast<size_t>(J)];
    for (int P = 0; P != E; ++P) {
      double Want = LN.coeff(P, J);
      double Got = V.In[static_cast<size_t>(P)];
      if (Want != Got)
        Report("push " + std::to_string(J) + ", coefficient of peek(" +
               std::to_string(P) + "): extraction says " +
               std::to_string(Want) + ", tape derives " + std::to_string(Got));
    }
    if (LN.offset(J) != V.Const)
      Report("push " + std::to_string(J) + " offset: extraction says " +
             std::to_string(LN.offset(J)) + ", tape derives " +
             std::to_string(V.Const));
  }
  if (Mismatches > MaxReported)
    R.error(Pass, Where, -1,
            "... and " + std::to_string(Mismatches - MaxReported) +
                " more coefficient mismatches");
}

std::string verify::verifyLinear(const CompiledProgram &P, LintReport &R) {
  size_t Before = R.findings().size();
  const flat::FlatGraph &G = P.graph();
  for (size_t I = 0; I != G.Nodes.size(); ++I) {
    const flat::Node &N = G.Nodes[I];
    if (N.Kind != flat::NodeKind::Filter || !N.F || N.F->isNative())
      continue;
    const CompiledProgram::FilterArtifact &Art = P.filterArtifact(I);
    if (Art.Work.empty())
      continue;
    lintTapeLinear(Art.Work, *N.F, N.Name, R);
  }
  return passResult(R, Before, "verify-linear");
}

//===----------------------------------------------------------------------===//
// verify-bounds: the bounds & rate proof
//===----------------------------------------------------------------------===//

namespace {

/// Per-tape bounds pass; returns the summary so the schedule replay can
/// reuse the derived rates and peek extent.
TapeSummary boundsOneTape(const wir::OpProgram &Tape,
                          const std::vector<wir::FieldDef> &Fields,
                          const std::string &Where, LintReport &R) {
  const char *Pass = "verify-bounds";
  TapeSummary Sum = abstractExecute(Tape, Fields);
  for (const TapeFault &F : Sum.Faults)
    R.error(Pass, Where, F.Pc, F.Msg);
  if (Sum.Faults.empty() && !Sum.Exploded && !Sum.Completed)
    R.error(Pass, Where, -1, "no execution path reaches Halt");
  return Sum;
}

} // namespace

void verify::lintTapeBounds(const wir::OpProgram &Tape,
                            const std::vector<wir::FieldDef> &Fields,
                            const std::string &Where, LintReport &R) {
  boundsOneTape(Tape, Fields, Where, R);
}

std::string verify::verifyBounds(const CompiledProgram &P, LintReport &R) {
  const char *Pass = "verify-bounds";
  size_t Before = R.findings().size();
  const flat::FlatGraph &G = P.graph();
  const StaticSchedule &S = P.schedule();

  // Tape-derived firing I/O per node; declared rates elsewhere.
  struct NodeIO {
    bool Derived = false; ///< filter with a tape (vs. declared rates)
    bool HasInit = false;
    int64_t Pops = 0, Pushes = 0, Need = 0;
    int64_t InitPops = 0, InitPushes = 0, InitNeed = 0;
  };
  std::vector<NodeIO> IO(G.Nodes.size());

  for (size_t I = 0; I != G.Nodes.size(); ++I) {
    const flat::Node &N = G.Nodes[I];
    if (N.Kind != flat::NodeKind::Filter || !N.F || N.F->isNative())
      continue;
    const Filter &F = *N.F;
    const CompiledProgram::FilterArtifact &Art = P.filterArtifact(I);
    if (Art.Work.empty())
      continue;
    TapeSummary Sum = boundsOneTape(Art.Work, F.fields(), N.Name, R);
    if (Art.Work.peekRate() != F.peekRate() ||
        Art.Work.popRate() != F.popRate() ||
        Art.Work.pushRate() != F.pushRate())
      R.error(Pass, N.Name, -1,
              "tape rates (peek " + std::to_string(Art.Work.peekRate()) +
                  ", pop " + std::to_string(Art.Work.popRate()) + ", push " +
                  std::to_string(Art.Work.pushRate()) +
                  ") disagree with the filter's declared rates (peek " +
                  std::to_string(F.peekRate()) + ", pop " +
                  std::to_string(F.popRate()) + ", push " +
                  std::to_string(F.pushRate()) + ")");
    NodeIO &D = IO[I];
    D.Derived = true;
    D.Pops = Art.Work.popRate();
    D.Pushes = Art.Work.pushRate();
    D.Need = std::max<int64_t>(Sum.MaxPeekPos + 1, D.Pops);
    if (!Art.InitWork.empty()) {
      TapeSummary ISum =
          boundsOneTape(Art.InitWork, F.fields(), N.Name + " [init]", R);
      D.HasInit = true;
      D.InitPops = Art.InitWork.popRate();
      D.InitPushes = Art.InitWork.pushRate();
      D.InitNeed = std::max<int64_t>(ISum.MaxPeekPos + 1, D.InitPops);
      if (Art.InitWork.popRate() != F.initPopRate() ||
          Art.InitWork.pushRate() != F.initPushRate())
        R.error(Pass, N.Name + " [init]", -1,
                "init tape rates disagree with the filter's declared init "
                "rates");
    }
  }

  // Replay the firing programs with the *derived* filter I/O: every
  // channel read stays covered by live items, and live counts stay
  // within the schedule's high-water marks and buffer capacities — the
  // flat-buffer positions CxxEmit's emitted code indexes with.
  size_t NumChans = G.numChannels();
  auto External = [&](int C) {
    return C == G.ExternalIn || C == G.ExternalOut;
  };
  std::vector<int64_t> FiredEver(G.Nodes.size(), 0);
  auto Replay = [&](const FiringProgram &Prog, std::vector<int64_t> &Live,
                    const char *Which) {
    std::vector<int64_t> StartLive = Live;
    std::vector<int64_t> Appended(NumChans, 0);
    size_t ErrsAtStart = R.errorCount();
    for (const FiringStep &Step : Prog) {
      if (Step.Node < 0 ||
          static_cast<size_t>(Step.Node) >= G.Nodes.size()) {
        R.error(Pass, "schedule", -1,
                std::string(Which) + " program fires unknown node " +
                    std::to_string(Step.Node));
        return;
      }
      const flat::Node &N = G.Nodes[static_cast<size_t>(Step.Node)];
      const NodeIO &D = IO[static_cast<size_t>(Step.Node)];
      for (int64_t K = 0; K != Step.Count; ++K) {
        // Stop piling up findings once the replay has gone off the rails.
        if (R.errorCount() > ErrsAtStart + 8)
          return;
        bool InitF = FiredEver[static_cast<size_t>(Step.Node)] == 0 &&
                     N.Kind == flat::NodeKind::Filter && N.F &&
                     N.F->hasInitWork();
        for (int C : N.inputChannels()) {
          int64_t Need, Pops;
          if (D.Derived && C == N.In) {
            Need = InitF && D.HasInit ? D.InitNeed : D.Need;
            Pops = InitF && D.HasInit ? D.InitPops : D.Pops;
          } else {
            Need = N.peekNeedOn(C, InitF);
            Pops = N.popsFrom(C, InitF);
          }
          if (!External(C)) {
            size_t Ch = static_cast<size_t>(C);
            if (Need > Live[Ch])
              R.error(Pass, "schedule", -1,
                      std::string(Which) + " program: '" + N.Name +
                          "' reads " + std::to_string(Need) +
                          " items on channel " + std::to_string(C) +
                          " with only " + std::to_string(Live[Ch]) +
                          " live");
            Live[Ch] -= Pops;
            if (Live[Ch] < 0) {
              R.error(Pass, "schedule", -1,
                      std::string(Which) + " program: channel " +
                          std::to_string(C) + " underflows at '" + N.Name +
                          "'");
              Live[Ch] = 0;
            }
          }
        }
        for (int C : N.outputChannels()) {
          int64_t Pushes;
          if (D.Derived && C == N.Out)
            Pushes = InitF && D.HasInit ? D.InitPushes : D.Pushes;
          else
            Pushes = N.pushesTo(C, InitF);
          if (!External(C)) {
            size_t Ch = static_cast<size_t>(C);
            Live[Ch] += Pushes;
            Appended[Ch] += Pushes;
            if (Ch < S.ChannelHighWater.size() &&
                Live[Ch] > S.ChannelHighWater[Ch])
              R.error(Pass, "schedule", -1,
                      std::string(Which) + " program: channel " +
                          std::to_string(C) + " holds " +
                          std::to_string(Live[Ch]) +
                          " items, above its high-water mark " +
                          std::to_string(S.ChannelHighWater[Ch]));
          }
        }
        ++FiredEver[static_cast<size_t>(Step.Node)];
      }
    }
    for (size_t C = 0; C != NumChans; ++C)
      if (!External(static_cast<int>(C)) && C < S.ChannelBufSize.size() &&
          StartLive[C] + Appended[C] > S.ChannelBufSize[C])
        R.error(Pass, "schedule", -1,
                std::string(Which) + " program: flat-buffer positions on "
                                     "channel " +
                    std::to_string(C) + " reach " +
                    std::to_string(StartLive[C] + Appended[C]) +
                    ", capacity is " + std::to_string(S.ChannelBufSize[C]));
  };

  if (S.Repetitions.size() == G.Nodes.size() &&
      S.ChannelHighWater.size() == NumChans &&
      S.ChannelBufSize.size() == NumChans) {
    std::vector<int64_t> Live(NumChans, 0);
    for (size_t C = 0; C != NumChans; ++C)
      Live[C] = static_cast<int64_t>(G.InitialItems[C].size());
    Replay(S.InitProgram, Live, "init");
    Replay(S.BatchProgram, Live, "batch");
    Replay(S.SteadyProgram, Live, "steady");
  } else {
    R.error(Pass, "schedule", -1,
            "schedule vectors are not sized to the graph");
  }
  return passResult(R, Before, "verify-bounds");
}

//===----------------------------------------------------------------------===//
// verify-state: the state-classification audit
//===----------------------------------------------------------------------===//

namespace {

/// Exactly {state(Field, 0): 1.0} and nothing else?
bool ownSymbolOnly(const AffineValue &V, int Field) {
  for (const auto &KV : V.State) {
    if (KV.second == 0.0)
      continue;
    if (KV.first != stateSym(Field, 0) || KV.second != 1.0)
      return false;
  }
  auto It = V.State.find(stateSym(Field, 0));
  return It != V.State.end() && It->second == 1.0;
}

} // namespace

void verify::lintStateClaims(const wir::OpProgram &Tape,
                             const std::vector<wir::FieldDef> &Fields,
                             const wir::SteadyStateInfo &Claims,
                             const std::string &Where, LintReport &R) {
  const char *Pass = "verify-state";
  if (!Claims.Reconstructable)
    return; // a negative claim is never trusted by anyone
  TapeSummary Sum = abstractExecute(Tape, Fields);
  if (!Sum.Completed || Sum.Exploded)
    return; // unproven, not a violation — stay silent

  // Which fields the tape stores at all, and which claims are closed-form
  // (readable by input-determined fields without breaking reconstruction).
  std::vector<bool> Stored(Fields.size(), false);
  for (const wir::Inst &I : Tape.code())
    if ((I.K == wir::Op::StoreFld || I.K == wir::Op::StoreFldIdx) &&
        I.B >= 0 && static_cast<size_t>(I.B) < Fields.size())
      Stored[static_cast<size_t>(I.B)] = true;
  std::vector<bool> Closed(Fields.size(), false);
  for (const wir::SteadyStateInfo::FieldUpdate &U : Claims.Updates)
    if (U.Kind != wir::SteadyStateInfo::FieldKind::InputDetermined &&
        U.Field >= 0 && static_cast<size_t>(U.Field) < Fields.size())
      Closed[static_cast<size_t>(U.Field)] = true;
  auto SymAllowed = [&](StateSym Sym) {
    int F = symField(Sym);
    if (F < 0 || static_cast<size_t>(F) >= Fields.size())
      return false;
    // Never-stored mutable fields hold their initial value forever;
    // closed-form fields are exactly seedable. Either is reconstructable
    // input to a rewritten field.
    return !Stored[static_cast<size_t>(F)] || Closed[static_cast<size_t>(F)];
  };

  for (const wir::SteadyStateInfo::FieldUpdate &U : Claims.Updates) {
    if (U.Field < 0 || static_cast<size_t>(U.Field) >= Fields.size() ||
        static_cast<size_t>(U.Field) >= Sum.FieldFinal.size()) {
      R.error(Pass, Where, -1,
              "state claim names unknown field " + std::to_string(U.Field));
      continue;
    }
    const std::vector<AffineValue> &Final =
        Sum.FieldFinal[static_cast<size_t>(U.Field)];
    const std::string &Name = Fields[static_cast<size_t>(U.Field)].Name;
    if (Final.empty()) {
      R.error(Pass, Where, -1, "state claim on empty field '" + Name + "'");
      continue;
    }
    using FieldKind = wir::SteadyStateInfo::FieldKind;
    switch (U.Kind) {
    case FieldKind::Affine: {
      const AffineValue &V = Final[0];
      if (V.isTop()) {
        R.note(Pass, Where, -1,
               "cannot verify affine claim on '" + Name +
                   "' (value diverged across paths)");
        break;
      }
      bool Shape = V.isVal() && V.In.countNonZero() == 0 &&
                   ownSymbolOnly(V, U.Field) && V.Const == U.Delta;
      if (!Shape)
        R.error(Pass, Where, -1,
                "claimed '" + Name + "' = '" + Name + "' + " +
                    std::to_string(U.Delta) + " per firing, tape computes " +
                    V.str(&Tape.fieldNames()));
      break;
    }
    case FieldKind::ModAffine: {
      const AffineValue &V = Final[0];
      if (V.isTop()) {
        R.note(Pass, Where, -1,
               "cannot verify modular claim on '" + Name +
                   "' (value diverged across paths)");
        break;
      }
      bool Shape = V.isModVal() && V.Mod == U.Mod &&
                   V.In.countNonZero() == 0 && ownSymbolOnly(V, U.Field) &&
                   V.Const == U.Delta;
      if (!Shape)
        R.error(Pass, Where, -1,
                "claimed '" + Name + "' = fmod('" + Name + "' + " +
                    std::to_string(U.Delta) + ", " + std::to_string(U.Mod) +
                    ") per firing, tape computes " +
                    V.str(&Tape.fieldNames()));
      break;
    }
    case FieldKind::InputDetermined: {
      for (size_t J = 0; J != Final.size(); ++J) {
        const AffineValue &V = Final[J];
        if (V.isTop()) {
          // A nonlinear function of the current inputs is still
          // input-determined; Top alone is not a violation.
          continue;
        }
        for (const auto &KV : V.State) {
          if (KV.second == 0.0 || SymAllowed(KV.first))
            continue;
          R.error(Pass, Where, -1,
                  "claimed '" + Name +
                      "' is rewritten from current inputs, but its value "
                      "depends on prior-firing state: " +
                      V.str(&Tape.fieldNames()));
          break;
        }
      }
      break;
    }
    }
  }
}

std::string verify::verifyState(const CompiledProgram &P, LintReport &R) {
  const char *Pass = "verify-state";
  size_t Before = R.findings().size();
  const flat::FlatGraph &G = P.graph();
  std::map<size_t, wir::SteadyStateInfo> ClaimsByNode;
  for (size_t I = 0; I != G.Nodes.size(); ++I) {
    const flat::Node &N = G.Nodes[I];
    if (N.Kind != flat::NodeKind::Filter || !N.F || N.F->isNative())
      continue;
    const CompiledProgram::FilterArtifact &Art = P.filterArtifact(I);
    if (Art.Work.empty())
      continue;
    wir::SteadyStateInfo Claims = Art.Work.analyzeSteadyState(N.F->fields());
    if (Claims.Reconstructable)
      lintStateClaims(Art.Work, N.F->fields(), Claims, N.Name, R);
    ClaimsByNode.emplace(I, std::move(Claims));
  }

  // The shard seeds are derived from these claims; cross-check that what
  // the parallel backend will seed matches what the tapes re-derive.
  const CompiledProgram::ShardInfo &Sh = P.shardInfo();
  if (Sh.Shardable) {
    for (const CompiledProgram::ShardInfo::FieldSeed &Seed : Sh.Seeds) {
      auto It = ClaimsByNode.find(static_cast<size_t>(Seed.Node));
      if (It == ClaimsByNode.end())
        continue; // native filter seeds are out of tape scope
      const flat::Node &N = G.Nodes[static_cast<size_t>(Seed.Node)];
      const wir::SteadyStateInfo::FieldUpdate *U =
          It->second.updateFor(Seed.Field);
      if (!U) {
        R.error(Pass, N.Name, -1,
                "shard seed for field " + std::to_string(Seed.Field) +
                    " has no matching state claim");
        continue;
      }
      bool DeltaOk = Seed.DeltaRest == U->Delta;
      bool ModOk =
          U->Kind == wir::SteadyStateInfo::FieldKind::ModAffine
              ? Seed.Modulus == U->Mod
              : Seed.Modulus == 0.0;
      if (U->Kind == wir::SteadyStateInfo::FieldKind::InputDetermined)
        R.error(Pass, N.Name, -1,
                "shard seed exists for input-determined field " +
                    std::to_string(Seed.Field));
      else if (!DeltaOk || !ModOk)
        R.error(Pass, N.Name, -1,
                "shard seed (delta " + std::to_string(Seed.DeltaRest) +
                    ", mod " + std::to_string(Seed.Modulus) +
                    ") disagrees with the tape's state claim (delta " +
                    std::to_string(U->Delta) + ", mod " +
                    std::to_string(U->Mod) + ")");
      if (N.F && !N.F->hasInitWork() && Seed.Field >= 0 &&
          static_cast<size_t>(Seed.Field) < N.F->fields().size()) {
        const wir::FieldDef &FD =
            N.F->fields()[static_cast<size_t>(Seed.Field)];
        if (!FD.Init.empty() && Seed.Base != FD.Init[0])
          R.error(Pass, N.Name, -1,
                  "shard seed base " + std::to_string(Seed.Base) +
                      " disagrees with field initializer " +
                      std::to_string(FD.Init[0]));
      }
    }
  }
  return passResult(R, Before, "verify-state");
}

//===----------------------------------------------------------------------===//
// Whole-program lint
//===----------------------------------------------------------------------===//

LintReport verify::lintProgram(const CompiledProgram &P) {
  LintReport R;
  verifyLinear(P, R);
  verifyBounds(P, R);
  verifyState(P, R);
  return R;
}
