//===- verify/AffineDomain.h - Affine abstract value domain -----*- C++ -*-===//
///
/// \file
/// The value domain of the abstract-interpretation linter (src/verify/):
/// every tape register, field element and pushed value is tracked as an
/// affine combination of the current firing's input window, the filter's
/// symbolic initial state, and a constant:
///
///     v  =  Σᵢ In[i]·peek(i)  +  Σₛ State[s]·state(s)  +  Const
///
/// with two extra points: Top (no affine form known) and ModVal — the
/// image of an affine value under fmod(·, Mod), the shape that
/// OpProgram::analyzeSteadyState's modular-cursor claims take.
///
/// The arithmetic transfer functions mirror linear/Extract.cpp's LinForm
/// operations *operation for operation*: the same operand orders, the
/// same `V.Coeffs[i] += Sign * R.Coeffs[i]` accumulation for add/sub,
/// the same const-side preference for multiply, and the same
/// scale-by-reciprocal division. A value both analyses call affine
/// therefore carries bit-identical coefficients — the property the
/// verify-linear oracle's exact `[A, b]` cross-check rests on.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_VERIFY_AFFINEDOMAIN_H
#define SLIN_VERIFY_AFFINEDOMAIN_H

#include "matrix/Matrix.h"
#include "wir/OpTape.h"

#include <cstdint>
#include <map>

namespace slin {
namespace verify {

/// Symbol naming one element of a filter's initial (pre-firing) mutable
/// state: field index in the high half, element index in the low half.
using StateSym = int64_t;

inline StateSym stateSym(int Field, int Elem) {
  return (static_cast<int64_t>(Field) << 32) |
         static_cast<uint32_t>(Elem);
}
inline int symField(StateSym S) { return static_cast<int>(S >> 32); }
inline int symElem(StateSym S) {
  return static_cast<int>(S & 0xffffffff);
}

class AffineValue {
public:
  enum class Kind {
    Val,    ///< affine: In·peeks + State·state + Const
    ModVal, ///< fmod(affine part, Mod) with Mod a positive constant
    Top,    ///< unknown / not affine
  };

  Kind K = Kind::Val;
  /// Dense input-window coefficients, always sized to the filter's peek
  /// window E = max(peek, pop) — dense so elementwise arithmetic visits
  /// exactly the entries Extract's Vector arithmetic visits.
  Vector In;
  /// Sparse initial-state coefficients (mutable field elements only).
  std::map<StateSym, double> State;
  double Const = 0.0;
  double Mod = 0.0; ///< ModVal only; > 0

  static AffineValue top() {
    AffineValue V;
    V.K = Kind::Top;
    return V;
  }
  static AffineValue constant(double C, size_t E) {
    AffineValue V;
    V.In = Vector(E);
    V.Const = C;
    return V;
  }
  /// peek(\p Pos): unit coefficient, exactly Extract's buildCoeff.
  static AffineValue input(size_t Pos, size_t E) {
    AffineValue V;
    V.In = Vector(E);
    V.In[Pos] = 1.0;
    return V;
  }
  static AffineValue initialState(int Field, int Elem, size_t E) {
    AffineValue V;
    V.In = Vector(E);
    V.State[stateSym(Field, Elem)] = 1.0;
    return V;
  }

  bool isVal() const { return K == Kind::Val; }
  bool isTop() const { return K == Kind::Top; }
  bool isModVal() const { return K == Kind::ModVal; }

  /// Any nonzero initial-state coefficient? (Zero-valued entries are
  /// treated as absent, so scaling by 0 does not change the answer.)
  bool dependsOnState() const;

  /// Constant in Extract's sense: a Val with no nonzero input or state
  /// coefficient.
  bool isConst() const {
    return isVal() && In.countNonZero() == 0 && !dependsOnState();
  }

  /// Affine purely over the input window — the verify-linear shape.
  bool isInputAffine() const { return isVal() && !dependsOnState(); }

  /// Exact structural equality (double ==, zero state entries ignored):
  /// the join the path-forking executor uses, matching Extract's
  /// exact-equality confluence.
  bool sameValue(const AffineValue &O) const;

  /// Human-readable rendering for findings ("0.5*peek(3) + state(h[0]) +
  /// 1"). \p FieldName maps a field index to its name (may be null).
  std::string str(const std::vector<std::string> *FieldNames = nullptr) const;
};

/// L + Sign*R, Extract's Add/Sub: start from L, accumulate Sign*R.
AffineValue affAdd(const AffineValue &L, const AffineValue &R, double Sign);

/// V scaled by the constant C — Extract's scale (every coefficient and
/// the constant multiplied, in place, in index order).
AffineValue affScale(const AffineValue &V, double C);

/// Extract's multiply: constant side scales the other (L-const checked
/// first); both non-constant is Top.
AffineValue affMul(const AffineValue &L, const AffineValue &R);

/// Extract's divide: constant nonzero divisor scales L by 1.0/C
/// (reciprocal-then-multiply, NOT elementwise division).
AffineValue affDiv(const AffineValue &L, const AffineValue &R);

/// Extract's Neg: elementwise negation (not 0 - x).
AffineValue affNeg(const AffineValue &V);

/// fmod: both-constant folds exactly as Extract does; an affine L with a
/// positive constant modulus becomes ModVal (the analyzeSteadyState
/// cursor shape); anything else is Top.
AffineValue affModOp(const AffineValue &L, const AffineValue &R);

/// Comparison / logical ops (Lt..Ne, Bool, Not): constant-foldable only,
/// with the tape's exact 1.0/0.0 semantics.
AffineValue affCompare(wir::Op K, const AffineValue &L, const AffineValue &R);

} // namespace verify
} // namespace slin

#endif // SLIN_VERIFY_AFFINEDOMAIN_H
