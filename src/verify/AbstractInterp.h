//===- verify/AbstractInterp.h - Abstract op-tape executor ------*- C++ -*-===//
///
/// \file
/// Abstract interpretation of one work-function firing over the affine
/// domain (verify/AffineDomain.h): the op tape is executed exactly as
/// wir::OpProgram::runImpl executes it — same register frame, same field
/// and local-array addressing, same loop back-edges — but every value is
/// an AffineValue instead of a double. Loop counters and index registers
/// stay concrete (they are constants in the domain), so loops unroll to
/// their real trip counts; a branch on a data-dependent condition forks
/// the path and both continuations run to Halt, with the observable
/// results joined by exact equality (Extract's confluence).
///
/// The executor produces everything the three lint analyses consume:
/// the affine form of each pushed value (verify-linear), every statically
/// provable index/rate violation plus the highest peek offset touched
/// (verify-bounds), and the post-firing affine form of every mutable
/// field element (verify-state).
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_VERIFY_ABSTRACTINTERP_H
#define SLIN_VERIFY_ABSTRACTINTERP_H

#include "verify/AffineDomain.h"
#include "wir/IR.h"
#include "wir/OpTape.h"

#include <string>
#include <vector>

namespace slin {
namespace verify {

/// A statically detected violation, anchored at a tape offset.
struct TapeFault {
  int Pc = -1; ///< instruction index; -1 for whole-tape facts
  std::string Msg;
};

/// Joined result of abstractly executing one firing.
struct TapeSummary {
  /// At least one path reached Halt (paths that fault hard stop early).
  bool Completed = false;
  /// The path/step budget ran out — results are partial and the caller
  /// must treat every property as unproven.
  bool Exploded = false;

  /// Data-dependent control flow was taken. FirstForkPc anchors the
  /// earliest branch whose condition was not a constant.
  bool Forked = false;
  int FirstForkPc = -1;

  /// Every index / rate / well-formedness violation found. Empty on a
  /// clean tape.
  std::vector<TapeFault> Faults;

  /// Affine form of each pushed value in push order, joined across
  /// completed paths (Top where paths disagree). Sized by the first
  /// completed path's push count.
  std::vector<AffineValue> Pushes;

  /// Post-firing value of every field element, [field][elem], joined
  /// across completed paths.
  std::vector<std::vector<AffineValue>> FieldFinal;

  /// Pops / pushes performed (from the first completed path; a fault is
  /// recorded when paths disagree or the count differs from the rates).
  int Pops = 0;
  int PushCount = 0;

  /// Highest input-window position read (peek offset + pops before it);
  /// -1 when the tape never reads input.
  int MaxPeekPos = -1;

  bool HasPrint = false;
  size_t PathsExplored = 0;

  bool faulted() const { return !Faults.empty(); }
};

/// Structural well-formedness of a (possibly deserialized, possibly
/// corrupted) tape against its own frame metadata and \p Fields: operand
/// register ranges, field/array slot ranges, immediate peek offsets,
/// intrinsic ids, jump targets. Violations are appended to \p Faults;
/// returns true when the tape is safe to (abstractly) execute.
bool checkWellFormed(const wir::OpProgram &P,
                     const std::vector<wir::FieldDef> &Fields,
                     std::vector<TapeFault> &Faults);

/// Abstractly executes one firing of \p P against \p Fields (the field
/// list the tape was compiled for). Always safe to call: a tape that
/// fails checkWellFormed is not executed and the summary only carries
/// the well-formedness faults.
TapeSummary abstractExecute(const wir::OpProgram &P,
                            const std::vector<wir::FieldDef> &Fields);

} // namespace verify
} // namespace slin

#endif // SLIN_VERIFY_ABSTRACTINTERP_H
