//===- fft/FFT.cpp --------------------------------------------------------==//

#include "fft/FFT.h"

#include "support/Diag.h"
#include "support/OpCounters.h"

#include <cassert>
#include <cmath>

using namespace slin;
using namespace slin::fft;

namespace {

constexpr double Pi = 3.14159265358979323846;

// Counted complex arithmetic. std::complex operators are not used in the
// transform kernels so that every real floating-point operation is
// accounted for individually (4 muls + 2 adds per complex multiply).
Complex cadd(Complex A, Complex B) {
  return Complex(ops::add(A.real(), B.real()), ops::add(A.imag(), B.imag()));
}
Complex csub(Complex A, Complex B) {
  return Complex(ops::sub(A.real(), B.real()), ops::sub(A.imag(), B.imag()));
}
Complex cmul(Complex A, Complex B) {
  double Re = ops::sub(ops::mul(A.real(), B.real()),
                       ops::mul(A.imag(), B.imag()));
  double Im = ops::add(ops::mul(A.real(), B.imag()),
                       ops::mul(A.imag(), B.real()));
  return Complex(Re, Im);
}
Complex cscale(Complex A, double S) {
  return Complex(ops::mul(A.real(), S), ops::mul(A.imag(), S));
}

} // namespace

size_t fft::nextPowerOfTwo(size_t N) {
  assert(N >= 1 && "nextPowerOfTwo of zero");
  size_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

bool fft::isPowerOfTwo(size_t N) { return N != 0 && (N & (N - 1)) == 0; }

FFTPlan::FFTPlan(size_t N) : N(N) {
  if (!isPowerOfTwo(N))
    fatalError("FFTPlan size must be a power of two");
  BitRev.resize(N);
  size_t LogN = 0;
  while ((size_t(1) << LogN) < N)
    ++LogN;
  for (size_t I = 0; I != N; ++I) {
    size_t R = 0;
    for (size_t B = 0; B != LogN; ++B)
      if (I & (size_t(1) << B))
        R |= size_t(1) << (LogN - 1 - B);
    BitRev[I] = R;
  }
  Twiddles.resize(N / 2);
  for (size_t K = 0; K < N / 2; ++K) {
    double Ang = -2.0 * Pi * static_cast<double>(K) / static_cast<double>(N);
    Twiddles[K] = Complex(std::cos(Ang), std::sin(Ang));
  }
  if (N >= 2) {
    HalfPlan = std::make_unique<FFTPlan>(N / 2);
    RealTwiddles.resize(N / 2 + 1);
    for (size_t K = 0; K <= N / 2; ++K) {
      double Ang = -2.0 * Pi * static_cast<double>(K) / static_cast<double>(N);
      RealTwiddles[K] = Complex(std::cos(Ang), std::sin(Ang));
    }
    Scratch.resize(N / 2);
  }
}

void FFTPlan::transform(Complex *Data, bool Inverse) const {
  // Bit-reversal permutation.
  for (size_t I = 0; I != N; ++I)
    if (BitRev[I] > I)
      std::swap(Data[I], Data[BitRev[I]]);

  for (size_t Len = 2; Len <= N; Len <<= 1) {
    size_t Half = Len / 2;
    size_t Step = N / Len;
    for (size_t Base = 0; Base != N; Base += Len) {
      // j == 0: twiddle is 1, no multiply needed.
      {
        Complex T = Data[Base + Half];
        Data[Base + Half] = csub(Data[Base], T);
        Data[Base] = cadd(Data[Base], T);
      }
      for (size_t J = 1; J != Half; ++J) {
        Complex T;
        if (J * 4 == Len) {
          // W = -i (forward) or +i (inverse): a swap and a sign change.
          Complex D = Data[Base + J + Half];
          T = Inverse ? Complex(ops::sub(0.0, D.imag()), D.real())
                      : Complex(D.imag(), ops::sub(0.0, D.real()));
        } else {
          Complex W = Twiddles[J * Step];
          if (Inverse)
            W = std::conj(W);
          T = cmul(W, Data[Base + J + Half]);
        }
        Data[Base + J + Half] = csub(Data[Base + J], T);
        Data[Base + J] = cadd(Data[Base + J], T);
      }
    }
  }
}

void FFTPlan::forward(Complex *Data) const { transform(Data, false); }

void FFTPlan::inverse(Complex *Data) const {
  transform(Data, true);
  double Scale = 1.0 / static_cast<double>(N);
  for (size_t I = 0; I != N; ++I)
    Data[I] = cscale(Data[I], Scale);
}

void FFTPlan::forwardReal(const double *In, double *Out) const {
  if (N == 1) {
    Out[0] = In[0];
    return;
  }
  if (N == 2) {
    Out[0] = ops::add(In[0], In[1]);
    Out[1] = ops::sub(In[0], In[1]);
    return;
  }
  size_t H = N / 2;
  for (size_t I = 0; I != H; ++I)
    Scratch[I] = Complex(In[2 * I], In[2 * I + 1]);
  HalfPlan->forward(Scratch.data());

  // Untangle: X[k] = E[k] + W^k O[k] with
  //   E[k] = (Z[k] + conj(Z[H-k])) / 2,  O[k] = -i (Z[k] - conj(Z[H-k])) / 2.
  {
    double Re0 = Scratch[0].real(), Im0 = Scratch[0].imag();
    Out[0] = ops::add(Re0, Im0);   // X[0]
    Out[H] = ops::sub(Re0, Im0);   // X[N/2]
  }
  for (size_t K = 1; K != H; ++K) {
    // X[k] = (Z[k]+conj(Z[H-k]))/2 + W^k * (-i)(Z[k]-conj(Z[H-k]))/2;
    // the halvings are folded into a 0.5*W^k twiddle and one 0.5 scale.
    Complex Zk = Scratch[K];
    Complex Zm = std::conj(Scratch[H - K]);
    Complex A = cadd(Zk, Zm);
    Complex D = csub(Zk, Zm);
    Complex O = Complex(D.imag(), -D.real()); // -i * D, free
    Complex HalfW = 0.5 * RealTwiddles[K];    // precomputed-style constant
    Complex X = cadd(cscale(A, 0.5), cmul(HalfW, O));
    Out[K] = X.real();
    Out[N - K] = X.imag();
  }
}

void FFTPlan::inverseReal(const double *In, double *Out) const {
  if (N == 1) {
    Out[0] = In[0];
    return;
  }
  if (N == 2) {
    Out[0] = ops::mul(ops::add(In[0], In[1]), 0.5);
    Out[1] = ops::mul(ops::sub(In[0], In[1]), 0.5);
    return;
  }
  size_t H = N / 2;
  // Rebuild Z[k] = E[k] + i O[k] from the half-complex spectrum.
  for (size_t K = 0; K != H; ++K) {
    Complex Xk = K == 0 ? Complex(In[0], 0.0) : Complex(In[K], In[N - K]);
    // X[H-K]; for K == 0 this is the purely real Nyquist bin X[N/2].
    size_t M = H - K;
    Complex Xm = M == H ? Complex(In[H], 0.0) : Complex(In[M], In[N - M]);
    Complex A = cadd(Xk, std::conj(Xm));
    Complex D = csub(Xk, std::conj(Xm));
    // O = e^{+2pi i k/N} * D / 2, with the halving folded into the twiddle.
    Complex O = cmul(0.5 * std::conj(RealTwiddles[K]), D);
    // Z = A/2 + i*O.
    Complex HalfA = cscale(A, 0.5);
    Scratch[K] = Complex(ops::sub(HalfA.real(), O.imag()),
                         ops::add(HalfA.imag(), O.real()));
  }
  HalfPlan->inverse(Scratch.data());
  for (size_t I = 0; I != H; ++I) {
    Out[2 * I] = Scratch[I].real();
    Out[2 * I + 1] = Scratch[I].imag();
  }
}

void fft::multiplyHalfComplex(size_t N, const double *A, const double *B,
                              double *Out) {
  assert(isPowerOfTwo(N) && "half-complex size must be a power of two");
  if (N == 1) {
    Out[0] = ops::mul(A[0], B[0]);
    return;
  }
  Out[0] = ops::mul(A[0], B[0]);
  Out[N / 2] = ops::mul(A[N / 2], B[N / 2]);
  for (size_t K = 1; K != N / 2; ++K) {
    Complex X(A[K], A[N - K]);
    Complex H(B[K], B[N - K]);
    Complex Y = cmul(X, H);
    Out[K] = Y.real();
    Out[N - K] = Y.imag();
  }
}

namespace {

void simpleFFTRec(std::vector<Complex> &Data, bool Inverse) {
  size_t N = Data.size();
  if (N == 1)
    return;
  std::vector<Complex> Even(N / 2), Odd(N / 2);
  for (size_t I = 0; I != N / 2; ++I) {
    Even[I] = Data[2 * I];
    Odd[I] = Data[2 * I + 1];
  }
  simpleFFTRec(Even, Inverse);
  simpleFFTRec(Odd, Inverse);
  double Sign = Inverse ? 2.0 * Pi : -2.0 * Pi;
  for (size_t K = 0; K != N / 2; ++K) {
    double Ang = Sign * static_cast<double>(K) / static_cast<double>(N);
    Complex W(std::cos(Ang), std::sin(Ang));
    Complex T = cmul(W, Odd[K]);
    Data[K] = cadd(Even[K], T);
    Data[K + N / 2] = csub(Even[K], T);
  }
}

} // namespace

void fft::simpleFFT(std::vector<Complex> &Data, bool Inverse) {
  if (!isPowerOfTwo(Data.size()))
    fatalError("simpleFFT size must be a power of two");
  simpleFFTRec(Data, Inverse);
  if (Inverse) {
    double Scale = 1.0 / static_cast<double>(Data.size());
    for (Complex &C : Data)
      C = cscale(C, Scale);
  }
}

std::vector<Complex> fft::slowDFT(const std::vector<Complex> &In,
                                  bool Inverse) {
  size_t N = In.size();
  std::vector<Complex> Out(N);
  double Sign = Inverse ? 2.0 * Pi : -2.0 * Pi;
  for (size_t K = 0; K != N; ++K) {
    Complex Sum(0.0, 0.0);
    for (size_t J = 0; J != N; ++J) {
      double Ang = Sign * static_cast<double>(K * J) / static_cast<double>(N);
      Sum += In[J] * Complex(std::cos(Ang), std::sin(Ang));
    }
    Out[K] = Inverse ? Sum / static_cast<double>(N) : Sum;
  }
  return Out;
}

std::vector<double> fft::directConvolve(const std::vector<double> &X,
                                        const std::vector<double> &H) {
  if (X.empty() || H.empty())
    return {};
  std::vector<double> Y(X.size() + H.size() - 1, 0.0);
  for (size_t I = 0; I != X.size(); ++I)
    for (size_t J = 0; J != H.size(); ++J)
      Y[I + J] += X[I] * H[J];
  return Y;
}
