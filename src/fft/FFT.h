//===- fft/FFT.h - FFT library (FFTW substitute) ---------------*- C++ -*-===//
///
/// \file
/// The frequency-replacement optimization (Section 4.1) calls out to FFTW
/// for the basis conversions. FFTW is not available here, so this module
/// is the substitute: a planned, iterative radix-2 FFT with a real-input
/// path using FFTW's half-complex ("Hermitian") packing — the same format
/// the paper's wrappers used (Section 4.4).
///
/// Two quality tiers are provided, matching the strategies compared in
/// Figure 5-12:
///  * FFTPlan — planned, iterative, real-input savings (the "FFTW" tier);
///  * simpleFFT — a textbook recursive complex FFT with no planning and
///    no real-input savings (the "simple FFT implementation" tier).
///
/// All butterfly arithmetic is routed through the op counters so that
/// frequency-domain filters report honest FLOP counts.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_FFT_FFT_H
#define SLIN_FFT_FFT_H

#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

namespace slin {
namespace fft {

using Complex = std::complex<double>;

/// Returns the smallest power of two >= \p N (N >= 1).
size_t nextPowerOfTwo(size_t N);

/// Returns true if \p N is a power of two.
bool isPowerOfTwo(size_t N);

/// A cached transform plan for a fixed power-of-two size, holding the
/// bit-reversal permutation and twiddle factors (the FFTW-plan analogue).
class FFTPlan {
public:
  /// \p N must be a power of two >= 1.
  explicit FFTPlan(size_t N);

  size_t size() const { return N; }

  /// In-place forward DFT of \p Data (N complex points).
  void forward(Complex *Data) const;

  /// In-place inverse DFT of \p Data, including the 1/N scaling.
  void inverse(Complex *Data) const;

  /// Forward DFT of \p In (N real points) into half-complex layout:
  /// Out[0] = Re X[0], Out[k] = Re X[k] for 1 <= k <= N/2, and
  /// Out[N-k] = Im X[k] for 1 <= k < N/2. Uses the packed N/2-point
  /// complex transform, so it costs roughly half a complex FFT.
  void forwardReal(const double *In, double *Out) const;

  /// Inverse of forwardReal: consumes a half-complex spectrum and
  /// produces N real points (includes the 1/N scaling).
  void inverseReal(const double *In, double *Out) const;

private:
  void transform(Complex *Data, bool Inverse) const;

  size_t N;
  std::vector<size_t> BitRev;
  std::vector<Complex> Twiddles;        ///< forward twiddles, size N/2
  std::unique_ptr<FFTPlan> HalfPlan;    ///< N/2 plan for the real path
  std::vector<Complex> RealTwiddles;    ///< e^{-2pi i k/N}, k = 0..N/2
  mutable std::vector<Complex> Scratch; ///< N/2 staging for the real path
};

/// Pointwise product of two half-complex spectra of length \p N into
/// \p Out (counted). This is the Y = X .* H step of Transformation 5.
void multiplyHalfComplex(size_t N, const double *A, const double *B,
                         double *Out);

/// Textbook recursive radix-2 complex FFT (no planning, temporaries per
/// level, no real-input savings). \p Data.size() must be a power of two.
void simpleFFT(std::vector<Complex> &Data, bool Inverse);

/// O(N^2) reference DFT for testing (not counted).
std::vector<Complex> slowDFT(const std::vector<Complex> &In, bool Inverse);

/// Direct (time-domain) linear convolution of \p X with \p H, for testing
/// and for theory baselines; result has X.size()+H.size()-1 entries.
std::vector<double> directConvolve(const std::vector<double> &X,
                                   const std::vector<double> &H);

} // namespace fft
} // namespace slin

#endif // SLIN_FFT_FFT_H
