//===- sched/Rates.h - Steady-state scheduling ------------------*- C++ -*-===//
///
/// \file
/// Balance-equation solver over the hierarchical stream graph (Section
/// 3.3.1, after Karczmarek [20]): per-container child repetition counts
/// and aggregate peek/pop/push signatures for whole sub-streams. The
/// combination transformations and the optimization-selection DP both
/// consume these.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SCHED_RATES_H
#define SLIN_SCHED_RATES_H

#include "graph/Stream.h"
#include "support/Error.h"

#include <cstdint>
#include <vector>

namespace slin {

/// Aggregate steady-state I/O signature of a stream: one "firing" of the
/// signature consumes Pop items, inspects Peek (>= Pop) items, and
/// produces Push items.
struct RateSignature {
  int64_t Peek = 0;
  int64_t Pop = 0;
  int64_t Push = 0;
};

/// Computes the aggregate steady-state rates of \p S. Reports a fatal
/// error for graphs without a valid steady state (mismatched splitjoin
/// rates, inconsistent feedback loops).
RateSignature computeRates(const Stream &S);

/// Steady-state repetition counts for the direct children of a container
/// (minimal positive integers). For a Pipeline/SplitJoin the vector is
/// ordered like children(); for a FeedbackLoop it is {body, loop}.
/// A Filter has no children; returns {}.
std::vector<int64_t> childRepetitions(const Stream &Container);

/// Non-fatal variants (the verifier pass in opt/Cleanup.h and every
/// recoverable pipeline route): on a graph without a valid steady state
/// they return a Status (ErrorCode::RateError) naming the offending
/// construct instead of aborting. Identical results to the fatal
/// versions on well-formed graphs — the fatal versions are thin
/// wrappers over these.
Expected<RateSignature> tryComputeRates(const Stream &S);
Expected<std::vector<int64_t>> tryChildRepetitions(const Stream &Container);

} // namespace slin

#endif // SLIN_SCHED_RATES_H
