//===- sched/Schedule.cpp - Static steady-state firing programs -------------==//

#include "sched/Schedule.h"

#include "support/Diag.h"
#include "support/MathUtil.h"
#include "support/Serialize.h"

#include <algorithm>
#include <limits>

using namespace slin;
using namespace slin::flat;

namespace {

constexpr int64_t Unbounded = std::numeric_limits<int64_t>::max() / 4;

/// Steady-state per-firing rate of \p N on channel \p Chan.
struct ChannelUse {
  int Chan;
  int64_t Rate;
};

/// Per-node channel rate tables, precomputed once.
struct NodeRates {
  std::vector<ChannelUse> Pops;      ///< steady pops per firing
  std::vector<ChannelUse> Pushes;    ///< steady pushes per firing
  std::vector<ChannelUse> PeekNeed;  ///< items required to fire (>= pops)
  // Init-firing variants (first firing of an init-work filter).
  std::vector<ChannelUse> InitPops;
  std::vector<ChannelUse> InitPushes;
  std::vector<ChannelUse> InitPeekNeed;
  bool HasInitWork = false;
};

std::vector<NodeRates> computeNodeRates(const FlatGraph &G) {
  std::vector<NodeRates> R(G.Nodes.size());
  for (size_t I = 0; I != G.Nodes.size(); ++I) {
    const Node &N = G.Nodes[I];
    NodeRates &NR = R[I];
    NR.HasInitWork = N.Kind == NodeKind::Filter && N.F->hasInitWork();
    for (int C : N.inputChannels()) {
      NR.Pops.push_back({C, N.popsFrom(C, false)});
      NR.PeekNeed.push_back({C, N.peekNeedOn(C, false)});
      NR.InitPops.push_back({C, N.popsFrom(C, true)});
      NR.InitPeekNeed.push_back({C, N.peekNeedOn(C, true)});
    }
    for (int C : N.outputChannels()) {
      NR.Pushes.push_back({C, N.pushesTo(C, false)});
      NR.InitPushes.push_back({C, N.pushesTo(C, true)});
    }
  }
  return R;
}

int64_t rateOn(const std::vector<ChannelUse> &Uses, int Chan) {
  for (const ChannelUse &U : Uses)
    if (U.Chan == Chan)
      return U.Rate;
  return 0;
}

/// Scales rationals to the minimal positive integer vector with the same
/// ratios (mirrors the hierarchical solver in Rates.cpp).
std::vector<int64_t> toMinimalIntegers(const std::vector<Rational> &Rats) {
  int64_t DenLcm = 1;
  for (const Rational &R : Rats) {
    if (R.num() <= 0)
      fatalError("non-positive repetition count while solving flat rates");
    DenLcm = lcm64(DenLcm, R.den());
  }
  std::vector<int64_t> Ints;
  Ints.reserve(Rats.size());
  int64_t NumGcd = 0;
  for (const Rational &R : Rats) {
    int64_t V = R.num() * (DenLcm / R.den());
    Ints.push_back(V);
    NumGcd = gcd64(NumGcd, V);
  }
  if (NumGcd > 1)
    for (int64_t &V : Ints)
      V /= NumGcd;
  return Ints;
}

/// Cumulative items consumed from \p Chan by the first \p T firings of
/// node \p I (the first firing of an init-work filter uses init rates).
int64_t cumPops(const std::vector<NodeRates> &NR, size_t I, int Chan,
                int64_t T) {
  if (T <= 0)
    return 0;
  const NodeRates &R = NR[I];
  if (R.HasInitWork)
    return rateOn(R.InitPops, Chan) + (T - 1) * rateOn(R.Pops, Chan);
  return T * rateOn(R.Pops, Chan);
}

/// Minimal T such that the first T firings of node \p I push at least
/// \p Need items onto \p Chan, or -1 if unreachable.
int64_t minFiringsToPush(const std::vector<NodeRates> &NR, size_t I, int Chan,
                         int64_t Need) {
  if (Need <= 0)
    return 0;
  const NodeRates &R = NR[I];
  int64_t Steady = rateOn(R.Pushes, Chan);
  if (R.HasInitWork) {
    int64_t First = rateOn(R.InitPushes, Chan);
    if (First >= Need)
      return 1;
    if (Steady <= 0)
      return -1;
    return 1 + ceilDiv(Need - First, Steady);
  }
  if (Steady <= 0)
    return -1;
  return ceilDiv(Need, Steady);
}

} // namespace

//===----------------------------------------------------------------------===//
// Steady-state repetitions on the flat graph
//===----------------------------------------------------------------------===//

static std::vector<int64_t> flatRepetitions(const FlatGraph &G,
                                            const std::vector<NodeRates> &NR) {
  size_t NumNodes = G.Nodes.size();
  std::vector<int> Producer(G.numChannels(), -1), Consumer(G.numChannels(), -1);
  for (size_t I = 0; I != NumNodes; ++I) {
    for (const ChannelUse &U : NR[I].Pushes)
      Producer[static_cast<size_t>(U.Chan)] = static_cast<int>(I);
    for (const ChannelUse &U : NR[I].Pops)
      Consumer[static_cast<size_t>(U.Chan)] = static_cast<int>(I);
  }

  std::vector<Rational> Reps(NumNodes, Rational(0));
  std::vector<bool> Visited(NumNodes, false);
  std::vector<int64_t> Result(NumNodes, 0);

  // Propagate balance constraints within each connected component, then
  // scale that component to minimal integers.
  for (size_t Start = 0; Start != NumNodes; ++Start) {
    if (Visited[Start])
      continue;
    std::vector<size_t> Component, Work = {Start};
    Visited[Start] = true;
    Reps[Start] = Rational(1);
    while (!Work.empty()) {
      size_t I = Work.back();
      Work.pop_back();
      Component.push_back(I);
      auto Relax = [&](int Chan) {
        int P = Producer[static_cast<size_t>(Chan)];
        int C = Consumer[static_cast<size_t>(Chan)];
        if (P < 0 || C < 0)
          return; // external endpoint or dead channel
        int64_t U = rateOn(NR[static_cast<size_t>(P)].Pushes, Chan);
        int64_t O = rateOn(NR[static_cast<size_t>(C)].Pops, Chan);
        if (U == 0 && O == 0)
          return;
        if (U == 0 || O == 0)
          fatalError("no steady state: channel between '" +
                     G.Nodes[static_cast<size_t>(P)].Name + "' and '" +
                     G.Nodes[static_cast<size_t>(C)].Name +
                     "' moves data in only one direction");
        size_t PS = static_cast<size_t>(P), CS = static_cast<size_t>(C);
        if (Visited[PS] && Visited[CS]) {
          if (!(Reps[PS] * Rational(U) == Reps[CS] * Rational(O)))
            fatalError("no steady state: inconsistent rates between '" +
                       G.Nodes[PS].Name + "' and '" + G.Nodes[CS].Name + "'");
          return;
        }
        if (Visited[PS]) {
          Reps[CS] = Reps[PS] * Rational(U, O);
          Visited[CS] = true;
          Work.push_back(CS);
        } else if (Visited[CS]) {
          Reps[PS] = Reps[CS] * Rational(O, U);
          Visited[PS] = true;
          Work.push_back(PS);
        }
      };
      for (const ChannelUse &Use : NR[I].Pops)
        Relax(Use.Chan);
      for (const ChannelUse &Use : NR[I].Pushes)
        Relax(Use.Chan);
    }
    std::vector<Rational> CompReps;
    CompReps.reserve(Component.size());
    for (size_t I : Component)
      CompReps.push_back(Reps[I]);
    std::vector<int64_t> Ints = toMinimalIntegers(CompReps);
    for (size_t K = 0; K != Component.size(); ++K)
      Result[Component[K]] = Ints[K];
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Initialization firing counts
//===----------------------------------------------------------------------===//

/// Computes per-node init firing counts as a fixpoint over channel
/// demands: every init-work filter fires at least once, and every channel
/// must end the init phase holding at least its consumer's steady
/// peek - pop lookahead.
static std::vector<int64_t> initFiringCounts(const FlatGraph &G,
                                             const std::vector<NodeRates> &NR) {
  size_t NumNodes = G.Nodes.size();
  std::vector<int64_t> T(NumNodes, 0);
  for (size_t I = 0; I != NumNodes; ++I)
    if (NR[I].HasInitWork)
      T[I] = 1;

  std::vector<int> Producer(G.numChannels(), -1);
  for (size_t I = 0; I != NumNodes; ++I)
    for (const ChannelUse &U : NR[I].Pushes)
      Producer[static_cast<size_t>(U.Chan)] = static_cast<int>(I);

  const int MaxSweeps = 128;
  for (int Sweep = 0; Sweep != MaxSweeps; ++Sweep) {
    bool Changed = false;
    for (size_t C = 0; C != NumNodes; ++C) {
      for (const ChannelUse &Use : NR[C].Pops) {
        int P = Producer[static_cast<size_t>(Use.Chan)];
        if (P < 0)
          continue; // fed externally
        int64_t Extra =
            rateOn(NR[C].PeekNeed, Use.Chan) - rateOn(NR[C].Pops, Use.Chan);
        int64_t Enqueued = static_cast<int64_t>(
            G.InitialItems[static_cast<size_t>(Use.Chan)].size());
        int64_t Need =
            cumPops(NR, C, Use.Chan, T[C]) + Extra - Enqueued;
        // An init-work firing may peek further than it pops; its whole
        // window must be supplied too.
        if (NR[C].HasInitWork)
          Need = std::max(Need,
                          rateOn(NR[C].InitPeekNeed, Use.Chan) - Enqueued);
        int64_t Req =
            minFiringsToPush(NR, static_cast<size_t>(P), Use.Chan, Need);
        if (Req < 0)
          fatalError("cannot schedule initialization: '" +
                     G.Nodes[static_cast<size_t>(P)].Name +
                     "' can never satisfy the lookahead of '" +
                     G.Nodes[C].Name + "'");
        if (Req > T[static_cast<size_t>(P)]) {
          T[static_cast<size_t>(P)] = Req;
          Changed = true;
        }
      }
    }
    if (!Changed)
      return T;
  }
  fatalError("cannot schedule initialization: channel demands do not "
             "converge (deadlocked feedback loop?)");
}

//===----------------------------------------------------------------------===//
// Greedy symbolic simulation
//===----------------------------------------------------------------------===//

namespace {

/// Symbolic channel state shared by the three program simulations.
struct SimState {
  const FlatGraph &G;
  const std::vector<NodeRates> &NR;
  std::vector<int64_t> Count;     ///< live items per channel
  std::vector<bool> FiredOnce;    ///< per node, across the whole run
  std::vector<int64_t> HighWater; ///< running max of Count
  int64_t ExternalPops = 0;       ///< pops from ExternalIn this program
  int64_t ExternalPushes = 0;     ///< pushes to ExternalOut this program
  std::vector<int64_t> Pushes;    ///< items appended per channel, this program

  SimState(const FlatGraph &G, const std::vector<NodeRates> &NR)
      : G(G), NR(NR), Count(G.numChannels(), 0),
        FiredOnce(G.Nodes.size(), false), HighWater(G.numChannels(), 0),
        Pushes(G.numChannels(), 0) {
    for (size_t C = 0; C != G.numChannels(); ++C) {
      Count[C] = static_cast<int64_t>(G.InitialItems[C].size());
      HighWater[C] = Count[C];
    }
  }

  void beginProgram() {
    ExternalPops = ExternalPushes = 0;
    std::fill(Pushes.begin(), Pushes.end(), 0);
  }

  bool isExternalIn(int Chan) const { return Chan == G.ExternalIn; }

  /// Max consecutive firings of node \p I right now, capped at \p Limit.
  /// Uses init rates for the node's first-ever firing.
  int64_t maxFirings(size_t I, int64_t Limit) const {
    if (Limit <= 0)
      return 0;
    const NodeRates &R = NR[I];
    bool Init = !FiredOnce[I] && R.HasInitWork;
    const auto &Needs = Init ? R.InitPeekNeed : R.PeekNeed;
    const auto &Pops = Init ? R.InitPops : R.Pops;
    int64_t K = Init ? 1 : Limit; // init firing scheduled one at a time
    for (size_t U = 0; U != Needs.size(); ++U) {
      int Chan = Needs[U].Chan;
      if (isExternalIn(Chan))
        continue; // runtime guarantees availability
      int64_t Avail = Count[static_cast<size_t>(Chan)];
      int64_t Need = Needs[U].Rate;
      int64_t Pop = Pops[U].Rate;
      if (Avail < Need)
        return 0;
      if (Pop > 0)
        K = std::min(K, (Avail - Need) / Pop + 1);
    }
    return K;
  }

  /// Applies \p K firings of node \p I to the symbolic state.
  void apply(size_t I, int64_t K) {
    const NodeRates &R = NR[I];
    bool Init = !FiredOnce[I] && R.HasInitWork;
    assert((!Init || K == 1) && "init firing must be scheduled alone");
    FiredOnce[I] = true;
    const auto &Pops = Init ? R.InitPops : R.Pops;
    const auto &PushesR = Init ? R.InitPushes : R.Pushes;
    for (const ChannelUse &U : Pops) {
      if (isExternalIn(U.Chan)) {
        ExternalPops += K * U.Rate;
        continue;
      }
      Count[static_cast<size_t>(U.Chan)] -= K * U.Rate;
      assert(Count[static_cast<size_t>(U.Chan)] >= 0 && "channel underflow");
    }
    for (const ChannelUse &U : PushesR) {
      size_t C = static_cast<size_t>(U.Chan);
      Count[C] += K * U.Rate;
      Pushes[C] += K * U.Rate;
      HighWater[C] = std::max(HighWater[C], Count[C]);
      if (U.Chan == G.ExternalOut)
        ExternalPushes += K * U.Rate;
    }
  }

  /// Greedily schedules \p Remaining firings per node; appends steps.
  /// Fatal if the graph deadlocks before all firings are placed.
  void schedule(std::vector<int64_t> Remaining, FiringProgram &Program,
                const char *Phase) {
    bool AnyLeft = true;
    while (AnyLeft) {
      AnyLeft = false;
      bool AnyFired = false;
      for (size_t I = 0; I != G.Nodes.size(); ++I) {
        while (Remaining[I] > 0) {
          int64_t K = maxFirings(I, Remaining[I]);
          if (K <= 0)
            break;
          apply(I, K);
          Remaining[I] -= K;
          if (!Program.empty() &&
              Program.back().Node == static_cast<int>(I))
            Program.back().Count += K;
          else
            Program.push_back({static_cast<int>(I), K});
          AnyFired = true;
        }
        if (Remaining[I] > 0)
          AnyLeft = true;
      }
      if (AnyLeft && !AnyFired)
        fatalError(std::string("cannot schedule ") + Phase +
                   " program: no node can fire (deadlocked graph?)");
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

StaticSchedule slin::computeSchedule(const FlatGraph &G, int BatchIterations) {
  if (BatchIterations < 1)
    fatalError("batch iteration count must be positive");
  std::vector<NodeRates> NR = computeNodeRates(G);

  StaticSchedule S;
  S.BatchIterations = BatchIterations;
  S.Repetitions = flatRepetitions(G, NR);
  S.InitFirings = initFiringCounts(G, NR);

  // Lookahead the first consumer of the external input requires beyond
  // what it pops (leftover items that must stay buffered), and the
  // deepest single-firing window any init-work firing peeks (which may
  // exceed its pops plus the steady lookahead).
  int64_t ExternalExtra = 0;
  int64_t InitPeekMax = 0;
  for (size_t I = 0; I != G.Nodes.size(); ++I) {
    for (const ChannelUse &U : NR[I].PeekNeed)
      if (U.Chan == G.ExternalIn)
        ExternalExtra =
            std::max(ExternalExtra, U.Rate - rateOn(NR[I].Pops, U.Chan));
    for (const ChannelUse &U : NR[I].InitPeekNeed)
      if (U.Chan == G.ExternalIn)
        InitPeekMax = std::max(InitPeekMax, U.Rate);
  }

  SimState Sim(G, NR);

  // Init program.
  Sim.beginProgram();
  Sim.schedule(S.InitFirings, S.InitProgram, "initialization");
  S.InitExternalPops = Sim.ExternalPops;
  S.InitExternalNeed =
      std::max(Sim.ExternalPops + ExternalExtra, InitPeekMax);
  S.InitExternalPushes = Sim.ExternalPushes;
  std::vector<int64_t> InitBuf(G.numChannels());
  for (size_t C = 0; C != G.numChannels(); ++C)
    InitBuf[C] =
        static_cast<int64_t>(G.InitialItems[C].size()) + Sim.Pushes[C];
  S.PostInitLive = Sim.Count;

  // Batch program (B steady states).
  std::vector<int64_t> Remaining(G.Nodes.size());
  for (size_t I = 0; I != G.Nodes.size(); ++I)
    Remaining[I] = S.Repetitions[I] * BatchIterations;
  Sim.beginProgram();
  Sim.schedule(Remaining, S.BatchProgram, "batch");
  S.BatchExternalPops = Sim.ExternalPops;
  S.BatchExternalNeed = Sim.ExternalPops + ExternalExtra;
  S.BatchExternalPushes = Sim.ExternalPushes;
  auto IsExternal = [&](size_t C) {
    return static_cast<int>(C) == G.ExternalIn ||
           static_cast<int>(C) == G.ExternalOut;
  };
  std::vector<int64_t> BatchBuf(G.numChannels());
  for (size_t C = 0; C != G.numChannels(); ++C) {
    BatchBuf[C] = S.PostInitLive[C] + Sim.Pushes[C];
    if (!IsExternal(C) && Sim.Count[C] != S.PostInitLive[C])
      fatalError("batch program does not return channel '" +
                 std::to_string(C) + "' to its steady state");
  }

  // Single steady program (tail iterations), from the same post-init state.
  for (size_t I = 0; I != G.Nodes.size(); ++I)
    Remaining[I] = S.Repetitions[I];
  Sim.beginProgram();
  Sim.schedule(Remaining, S.SteadyProgram, "steady");
  S.SteadyExternalPops = Sim.ExternalPops;
  S.SteadyExternalNeed = Sim.ExternalPops + ExternalExtra;
  S.SteadyExternalPushes = Sim.ExternalPushes;
  S.ChannelHighWater = Sim.HighWater;
  S.ChannelBufSize.resize(G.numChannels());
  for (size_t C = 0; C != G.numChannels(); ++C) {
    int64_t SteadyBuf = S.PostInitLive[C] + Sim.Pushes[C];
    S.ChannelBufSize[C] =
        std::max(InitBuf[C], std::max(BatchBuf[C], SteadyBuf));
    if (!IsExternal(C) && Sim.Count[C] != S.PostInitLive[C])
      fatalError("steady program does not return channel '" +
                 std::to_string(C) + "' to its steady state");
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Shard-boundary state computation
//===----------------------------------------------------------------------===//
//
// How many steady iterations does it take for the whole graph's state to
// be a function of only those iterations' (exact) inputs? Per channel,
// the leftover items after an iteration are the newest PostInitLive[c],
// pushed within the last ceil(live / throughput) iterations; each of
// those pushes is exact once its producer's own state and inputs were
// exact when it fired. Propagating that recurrence down the (acyclic)
// flat graph gives the washout depth: the maximum, over nodes, of the
// node's own state depth plus the staleness of its input channels.

ShardBoundary slin::computeShardBoundary(
    const flat::FlatGraph &G, const StaticSchedule &S,
    const std::vector<int> &NodeStateDepth) {
  ShardBoundary B;
  assert(NodeStateDepth.size() == G.Nodes.size() &&
         "state depth per flat node");

  size_t NumNodes = G.Nodes.size();
  std::vector<int> Producer(G.numChannels(), -1);
  std::vector<int64_t> Through(G.numChannels(), 0);
  for (size_t I = 0; I != NumNodes; ++I)
    for (int C : G.Nodes[I].outputChannels()) {
      Producer[static_cast<size_t>(C)] = static_cast<int>(I);
      Through[static_cast<size_t>(C)] =
          S.Repetitions[I] * G.Nodes[I].pushesTo(C, false);
    }

  // Flattening order puts every producer before its consumer except on
  // feedback-loop back edges; state cycles cannot be washed out.
  for (size_t I = 0; I != NumNodes; ++I)
    for (int C : G.Nodes[I].inputChannels()) {
      int P = Producer[static_cast<size_t>(C)];
      if (P >= static_cast<int>(I)) {
        B.Reason = "feedback loop: state cycles through '" +
                   G.Nodes[static_cast<size_t>(P)].Name + "'";
        return B;
      }
    }

  // Staleness of each node's output items, in iterations, once its
  // inputs are exact; computed in topological (= index) order.
  std::vector<int64_t> Depth(NumNodes, 0);
  int64_t Washout = 0;
  for (size_t I = 0; I != NumNodes; ++I) {
    if (NodeStateDepth[I] < 0) {
      B.Reason = "filter '" + G.Nodes[I].Name +
                 "' carries state that cannot be reconstructed";
      return B;
    }
    // The node's own state spans ceil(k / repetitions) iterations of its
    // input history; its inputs are stale by channel age plus the
    // producer's own staleness.
    int64_t Own = ceilDiv(static_cast<int64_t>(NodeStateDepth[I]),
                          std::max<int64_t>(S.Repetitions[I], 1));
    int64_t Stale = 0;
    for (int C : G.Nodes[I].inputChannels()) {
      size_t CS = static_cast<size_t>(C);
      if (C == G.ExternalIn)
        continue; // exact by construction (the worker's input slice)
      int P = Producer[CS];
      if (P < 0)
        continue;
      int64_t Live = S.PostInitLive[CS];
      int64_t Age = 0;
      if (Live > 0) {
        if (Through[CS] <= 0) {
          B.Reason = "channel into '" + G.Nodes[I].Name +
                     "' holds items that never drain";
          return B;
        }
        Age = ceilDiv(Live, Through[CS]);
      }
      Stale = std::max(Stale, Age + Depth[static_cast<size_t>(P)]);
    }
    int64_t D = Own + Stale;
    Depth[I] = D;
    Washout = std::max(Washout, D);
  }

  B.Feasible = true;
  B.WashoutIterations = Washout;
  return B;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

namespace {

void writeProgram(serial::Writer &W, const FiringProgram &P) {
  W.u32(static_cast<uint32_t>(P.size()));
  for (const FiringStep &S : P) {
    W.i32(S.Node);
    W.i64(S.Count);
  }
}

bool readProgram(serial::Reader &R, FiringProgram &Out) {
  uint32_t N = R.u32();
  // Each step occupies 12 bytes on the wire.
  if (!R.ok() || static_cast<uint64_t>(N) * 12 > R.remaining()) {
    R.fail();
    return false;
  }
  Out.resize(N);
  for (FiringStep &S : Out) {
    S.Node = R.i32();
    S.Count = R.i64();
  }
  return R.ok();
}

} // namespace

void slin::serializeSchedule(serial::Writer &W, const StaticSchedule &S) {
  W.i64s(S.Repetitions);
  W.i64s(S.InitFirings);
  writeProgram(W, S.InitProgram);
  writeProgram(W, S.SteadyProgram);
  writeProgram(W, S.BatchProgram);
  W.i32(S.BatchIterations);
  W.i64s(S.ChannelHighWater);
  W.i64s(S.ChannelBufSize);
  W.i64s(S.PostInitLive);
  W.i64(S.InitExternalPops);
  W.i64(S.InitExternalNeed);
  W.i64(S.SteadyExternalPops);
  W.i64(S.SteadyExternalNeed);
  W.i64(S.BatchExternalPops);
  W.i64(S.BatchExternalNeed);
  W.i64(S.InitExternalPushes);
  W.i64(S.SteadyExternalPushes);
  W.i64(S.BatchExternalPushes);
}

bool slin::deserializeSchedule(serial::Reader &R, StaticSchedule &Out) {
  StaticSchedule S;
  S.Repetitions = R.i64s();
  S.InitFirings = R.i64s();
  if (!readProgram(R, S.InitProgram) || !readProgram(R, S.SteadyProgram) ||
      !readProgram(R, S.BatchProgram))
    return false;
  S.BatchIterations = R.i32();
  S.ChannelHighWater = R.i64s();
  S.ChannelBufSize = R.i64s();
  S.PostInitLive = R.i64s();
  S.InitExternalPops = R.i64();
  S.InitExternalNeed = R.i64();
  S.SteadyExternalPops = R.i64();
  S.SteadyExternalNeed = R.i64();
  S.BatchExternalPops = R.i64();
  S.BatchExternalNeed = R.i64();
  S.InitExternalPushes = R.i64();
  S.SteadyExternalPushes = R.i64();
  S.BatchExternalPushes = R.i64();
  if (!R.ok() || S.BatchIterations < 1 ||
      S.Repetitions.size() != S.InitFirings.size())
    return false;
  Out = std::move(S);
  return true;
}
