//===- sched/Rates.cpp - Steady-state scheduling ---------------------------==//

#include "sched/Rates.h"

#include "support/Diag.h"
#include "support/MathUtil.h"

using namespace slin;

namespace {

/// Error sink for the solver: the first failure wins and every caller
/// returns early once it is set, so a malformed graph produces one
/// precise message instead of a cascade (or an abort — the verifier pass
/// runs the solver over deliberately corrupted rewrites and must get the
/// diagnostic back as a value).
struct RateErr {
  std::string Msg;
  bool failed() const { return !Msg.empty(); }
  void set(const std::string &M) {
    if (Msg.empty())
      Msg = M;
  }
};

RateSignature ratesOf(const Stream &S, RateErr &E);
std::vector<int64_t> repsOf(const Stream &Container, RateErr &E);

/// Scales a vector of positive rationals to the minimal integer vector
/// with the same ratios.
std::vector<int64_t> toMinimalIntegers(const std::vector<Rational> &Rats,
                                       RateErr &E) {
  int64_t DenLcm = 1;
  for (const Rational &R : Rats) {
    if (R.num() <= 0) {
      E.set("non-positive repetition count while solving rates");
      return {};
    }
    DenLcm = lcm64(DenLcm, R.den());
  }
  std::vector<int64_t> Ints;
  Ints.reserve(Rats.size());
  int64_t NumGcd = 0;
  for (const Rational &R : Rats) {
    int64_t V = R.num() * (DenLcm / R.den());
    Ints.push_back(V);
    NumGcd = gcd64(NumGcd, V);
  }
  if (NumGcd > 1)
    for (int64_t &V : Ints)
      V /= NumGcd;
  return Ints;
}

std::vector<int64_t> pipelineRepetitions(const Pipeline &P, RateErr &E) {
  const auto &Children = P.children();
  if (Children.empty()) {
    E.set("empty pipeline '" + P.name() + "'");
    return {};
  }
  std::vector<Rational> Reps;
  Reps.push_back(Rational(1));
  RateSignature Prev = ratesOf(*Children.front(), E);
  for (size_t I = 1; I != Children.size() && !E.failed(); ++I) {
    RateSignature Cur = ratesOf(*Children[I], E);
    if (E.failed())
      break;
    if (Prev.Push == 0) {
      E.set("pipeline '" + P.name() + "': child " + std::to_string(I - 1) +
            " pushes nothing but is not last");
      break;
    }
    if (Cur.Pop == 0) {
      E.set("pipeline '" + P.name() + "': child " + std::to_string(I) +
            " pops nothing but is not first");
      break;
    }
    Reps.push_back(Reps.back() * Rational(Prev.Push, Cur.Pop));
    Prev = Cur;
  }
  if (E.failed())
    return {};
  return toMinimalIntegers(Reps, E);
}

bool nonNegativeWeights(const std::vector<int> &Weights) {
  for (int W : Weights)
    if (W < 0)
      return false;
  return true;
}

std::vector<int64_t> splitJoinRepetitions(const SplitJoin &SJ, RateErr &E) {
  const auto &Children = SJ.children();
  size_t N = Children.size();
  if (N == 0) {
    E.set("empty splitjoin '" + SJ.name() + "'");
    return {};
  }
  const Splitter &Split = SJ.splitter();
  const Joiner &Join = SJ.joiner();
  if (Join.Weights.size() != N) {
    E.set("splitjoin '" + SJ.name() + "': joiner weight count mismatch");
    return {};
  }
  if (Split.Kind == Splitter::RoundRobin && Split.Weights.size() != N) {
    E.set("splitjoin '" + SJ.name() + "': splitter weight count mismatch");
    return {};
  }
  if (!nonNegativeWeights(Join.Weights) ||
      !nonNegativeWeights(Split.Weights)) {
    E.set("splitjoin '" + SJ.name() + "': negative splitter/joiner weight");
    return {};
  }

  std::vector<RateSignature> Rates;
  Rates.reserve(N);
  for (const StreamPtr &C : Children) {
    Rates.push_back(ratesOf(*C, E));
    if (E.failed())
      return {};
  }

  // Derive child repetitions from the joiner when every child produces
  // output, otherwise from the splitter; verify the other side.
  std::vector<Rational> Reps(N);
  bool AllPush = true;
  for (const RateSignature &R : Rates)
    AllPush = AllPush && R.Push > 0;
  if (AllPush) {
    // r_k proportional to w_k / u_k.
    for (size_t K = 0; K != N; ++K)
      Reps[K] = Rational(Join.Weights[K], Rates[K].Push);
  } else if (Split.Kind == Splitter::RoundRobin) {
    for (size_t K = 0; K != N; ++K) {
      if (Rates[K].Pop == 0) {
        E.set("splitjoin '" + SJ.name() +
              "': child neither consumes nor produces");
        return {};
      }
      Reps[K] = Rational(Split.Weights[K], Rates[K].Pop);
    }
  } else {
    for (size_t K = 0; K != N; ++K) {
      if (Rates[K].Pop == 0) {
        E.set("splitjoin '" + SJ.name() +
              "': child neither consumes nor produces");
        return {};
      }
      Reps[K] = Rational(1, Rates[K].Pop);
    }
  }

  std::vector<int64_t> Ints = toMinimalIntegers(Reps, E);
  if (E.failed())
    return {};

  // Consistency checks on the side not used for derivation.
  if (Split.Kind == Splitter::Duplicate) {
    int64_t Consumed = Rates[0].Pop * Ints[0];
    for (size_t K = 1; K != N; ++K)
      if (Rates[K].Pop * Ints[K] != Consumed) {
        E.set("splitjoin '" + SJ.name() +
              "': duplicate children consume mismatched amounts");
        return {};
      }
  } else {
    Rational SplitRep(0);
    for (size_t K = 0; K != N; ++K) {
      if (Split.Weights[K] == 0) {
        if (Rates[K].Pop != 0) {
          E.set("splitjoin '" + SJ.name() +
                "': zero-weight child consumes input");
          return {};
        }
        continue;
      }
      Rational R(Rates[K].Pop * Ints[K], Split.Weights[K]);
      if (K == 0)
        SplitRep = R;
      else if (!(SplitRep == R)) {
        E.set("splitjoin '" + SJ.name() +
              "': roundrobin splitter rates inconsistent");
        return {};
      }
    }
  }
  if (AllPush) {
    // Joiner already used; nothing further to check.
  } else {
    for (size_t K = 0; K != N; ++K)
      if ((Rates[K].Push == 0) != (Join.Weights[K] == 0)) {
        E.set("splitjoin '" + SJ.name() +
              "': joiner weight for non-producing child");
        return {};
      }
  }

  // The minimal vector balances the children against each other, but a
  // steady state must also run the splitter and joiner for a whole
  // number of cycles. Weight vectors that are unreduced multiples of the
  // per-repetition flows (the selection DP's vertical-cut wrappers build
  // these) reduce to child repetitions implying fractional cycles; scale
  // back up by the implied cycle-count denominators.
  int64_t Scale = 1;
  if (Split.Kind == Splitter::RoundRobin) {
    for (size_t K = 0; K != N; ++K) {
      if (Split.Weights[K] == 0)
        continue;
      // Equal across children (verified above); one representative.
      Rational Cycles(Rates[K].Pop * Ints[K], Split.Weights[K]);
      Scale = lcm64(Scale, Cycles.den());
      break;
    }
  }
  for (size_t K = 0; K != N; ++K) {
    if (Join.Weights[K] == 0 || Rates[K].Push == 0)
      continue;
    Rational Cycles(Rates[K].Push * Ints[K], Join.Weights[K]);
    Scale = lcm64(Scale, Cycles.den());
    break;
  }
  if (Scale > 1)
    for (int64_t &V : Ints)
      V *= Scale;
  return Ints;
}

std::vector<int64_t> feedbackLoopRepetitions(const FeedbackLoop &FB,
                                             RateErr &E) {
  RateSignature Body = ratesOf(FB.body(), E);
  RateSignature Loop = ratesOf(FB.loop(), E);
  if (E.failed())
    return {};
  const Joiner &Join = FB.joiner();
  const Splitter &Split = FB.splitter();
  if (Join.Weights.size() != 2) {
    E.set("feedbackloop '" + FB.name() + "': joiner needs two weights");
    return {};
  }
  if (Split.Kind != Splitter::RoundRobin || Split.Weights.size() != 2) {
    E.set("feedbackloop '" + FB.name() +
          "': splitter must be roundrobin with two weights");
    return {};
  }
  if (!nonNegativeWeights(Join.Weights) ||
      !nonNegativeWeights(Split.Weights)) {
    E.set("feedbackloop '" + FB.name() +
          "': negative splitter/joiner weight");
    return {};
  }
  if (Join.totalWeight() == 0 || Split.totalWeight() == 0 ||
      Loop.Pop == 0) {
    E.set("feedbackloop '" + FB.name() +
          "': joiner, splitter or loop stream moves no items");
    return {};
  }

  // Unknowns: body reps B, loop reps L, joiner cycles J, splitter cycles S.
  //   o_b * B = (w0 + w1) * J      u_b * B = (s0 + s1) * S
  //   o_l * L = s1 * S             u_l * L = w1 * J
  Rational B(1);
  Rational J = Rational(Body.Pop) / Rational(Join.totalWeight());
  Rational S = Rational(Body.Push) / Rational(Split.totalWeight());
  Rational L = Rational(Split.Weights[1]) * S / Rational(Loop.Pop);
  if (!(Rational(Loop.Push) * L == Rational(Join.Weights[1]) * J)) {
    E.set("feedbackloop '" + FB.name() + "': inconsistent loop rates");
    return {};
  }
  return toMinimalIntegers({B, L}, E);
}

std::vector<int64_t> repsOf(const Stream &Container, RateErr &E) {
  switch (Container.kind()) {
  case StreamKind::Filter:
    return {};
  case StreamKind::Pipeline:
    return pipelineRepetitions(*cast<Pipeline>(&Container), E);
  case StreamKind::SplitJoin:
    return splitJoinRepetitions(*cast<SplitJoin>(&Container), E);
  case StreamKind::FeedbackLoop:
    return feedbackLoopRepetitions(*cast<FeedbackLoop>(&Container), E);
  }
  unreachable("unknown stream kind");
}

RateSignature ratesOf(const Stream &S, RateErr &E) {
  if (E.failed())
    return {};
  switch (S.kind()) {
  case StreamKind::Filter: {
    const auto *F = cast<Filter>(&S);
    return {F->peekRate(), F->popRate(), F->pushRate()};
  }
  case StreamKind::Pipeline: {
    const auto *P = cast<Pipeline>(&S);
    std::vector<int64_t> Reps = repsOf(S, E);
    if (E.failed())
      return {};
    RateSignature First = ratesOf(*P->children().front(), E);
    RateSignature Last = ratesOf(*P->children().back(), E);
    if (E.failed())
      return {};
    RateSignature R;
    R.Pop = mulSat64(First.Pop, Reps.front());
    R.Peek = addSat64(R.Pop, First.Peek - First.Pop);
    R.Push = mulSat64(Last.Push, Reps.back());
    return R;
  }
  case StreamKind::SplitJoin: {
    const auto *SJ = cast<SplitJoin>(&S);
    std::vector<int64_t> Reps = repsOf(S, E);
    if (E.failed())
      return {};
    const auto &Children = SJ->children();
    RateSignature R;
    R.Push = 0;
    for (size_t K = 0; K != Children.size(); ++K)
      R.Push = addSat64(R.Push,
                        mulSat64(ratesOf(*Children[K], E).Push, Reps[K]));

    if (SJ->splitter().Kind == Splitter::Duplicate) {
      int64_t MaxPeek = 0;
      int64_t Consumed = 0;
      for (size_t K = 0; K != Children.size(); ++K) {
        RateSignature C = ratesOf(*Children[K], E);
        Consumed = mulSat64(C.Pop, Reps[K]);
        MaxPeek = std::max(MaxPeek, addSat64(Consumed, C.Peek - C.Pop));
      }
      R.Pop = Consumed;
      R.Peek = MaxPeek;
    } else {
      // Roundrobin: one splitter cycle distributes totalWeight items.
      int64_t VTot = SJ->splitter().totalWeight();
      int64_t SplitRep = 0;
      int64_t ExtraPeek = 0;
      for (size_t K = 0; K != Children.size(); ++K) {
        if (SJ->splitter().Weights[K] == 0)
          continue;
        RateSignature C = ratesOf(*Children[K], E);
        SplitRep = mulSat64(C.Pop, Reps[K]) / SJ->splitter().Weights[K];
        ExtraPeek = std::max(ExtraPeek, C.Peek - C.Pop);
      }
      R.Pop = mulSat64(SplitRep, VTot);
      // Approximation: extra peeking by a child requires up to a full
      // extra splitter cycle of lookahead per extra item window.
      R.Peek =
          addSat64(R.Pop, ExtraPeek > 0 ? mulSat64(ExtraPeek, VTot) : 0);
    }
    return R;
  }
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    std::vector<int64_t> Reps = repsOf(S, E);
    if (E.failed())
      return {};
    RateSignature Body = ratesOf(FB->body(), E);
    int64_t JoinCycles =
        mulSat64(Body.Pop, Reps[0]) / FB->joiner().totalWeight();
    int64_t SplitCycles =
        mulSat64(Body.Push, Reps[0]) / FB->splitter().totalWeight();
    RateSignature R;
    R.Pop = FB->joiner().Weights[0] * JoinCycles;
    R.Peek = R.Pop;
    R.Push = FB->splitter().Weights[0] * SplitCycles;
    return R;
  }
  }
  unreachable("unknown stream kind");
}

} // namespace

// The try* forms are the primary implementations; the fatal forms wrap
// them, so exactly one error-context mechanism (Status) remains between
// the solver's internal RateErr sink and every caller.

Expected<RateSignature> slin::tryComputeRates(const Stream &S) {
  RateErr E;
  RateSignature R = ratesOf(S, E);
  if (E.failed())
    return Status(ErrorCode::RateError, E.Msg);
  return R;
}

Expected<std::vector<int64_t>>
slin::tryChildRepetitions(const Stream &Container) {
  RateErr E;
  std::vector<int64_t> R = repsOf(Container, E);
  if (E.failed())
    return Status(ErrorCode::RateError, E.Msg);
  return R;
}

std::vector<int64_t> slin::childRepetitions(const Stream &Container) {
  Expected<std::vector<int64_t>> R = tryChildRepetitions(Container);
  if (!R)
    fatalError(R.status().message());
  return R.take();
}

RateSignature slin::computeRates(const Stream &S) {
  Expected<RateSignature> R = tryComputeRates(S);
  if (!R)
    fatalError(R.status().message());
  return R.take();
}
