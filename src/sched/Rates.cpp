//===- sched/Rates.cpp - Steady-state scheduling ---------------------------==//

#include "sched/Rates.h"

#include "support/Diag.h"
#include "support/MathUtil.h"

using namespace slin;

namespace {

/// Scales a vector of positive rationals to the minimal integer vector
/// with the same ratios.
std::vector<int64_t> toMinimalIntegers(const std::vector<Rational> &Rats) {
  int64_t DenLcm = 1;
  for (const Rational &R : Rats) {
    if (R.num() <= 0)
      fatalError("non-positive repetition count while solving rates");
    DenLcm = lcm64(DenLcm, R.den());
  }
  std::vector<int64_t> Ints;
  Ints.reserve(Rats.size());
  int64_t NumGcd = 0;
  for (const Rational &R : Rats) {
    int64_t V = R.num() * (DenLcm / R.den());
    Ints.push_back(V);
    NumGcd = gcd64(NumGcd, V);
  }
  if (NumGcd > 1)
    for (int64_t &V : Ints)
      V /= NumGcd;
  return Ints;
}

std::vector<int64_t> pipelineRepetitions(const Pipeline &P) {
  const auto &Children = P.children();
  if (Children.empty())
    fatalError("empty pipeline '" + P.name() + "'");
  std::vector<Rational> Reps;
  Reps.push_back(Rational(1));
  RateSignature Prev = computeRates(*Children.front());
  for (size_t I = 1; I != Children.size(); ++I) {
    RateSignature Cur = computeRates(*Children[I]);
    if (Prev.Push == 0)
      fatalError("pipeline '" + P.name() + "': child " +
                 std::to_string(I - 1) + " pushes nothing but is not last");
    if (Cur.Pop == 0)
      fatalError("pipeline '" + P.name() + "': child " + std::to_string(I) +
                 " pops nothing but is not first");
    Reps.push_back(Reps.back() * Rational(Prev.Push, Cur.Pop));
    Prev = Cur;
  }
  return toMinimalIntegers(Reps);
}

std::vector<int64_t> splitJoinRepetitions(const SplitJoin &SJ) {
  const auto &Children = SJ.children();
  size_t N = Children.size();
  if (N == 0)
    fatalError("empty splitjoin '" + SJ.name() + "'");
  const Splitter &Split = SJ.splitter();
  const Joiner &Join = SJ.joiner();
  if (Join.Weights.size() != N)
    fatalError("splitjoin '" + SJ.name() + "': joiner weight count mismatch");
  if (Split.Kind == Splitter::RoundRobin && Split.Weights.size() != N)
    fatalError("splitjoin '" + SJ.name() +
               "': splitter weight count mismatch");

  std::vector<RateSignature> Rates;
  Rates.reserve(N);
  for (const StreamPtr &C : Children)
    Rates.push_back(computeRates(*C));

  // Derive child repetitions from the joiner when every child produces
  // output, otherwise from the splitter; verify the other side.
  std::vector<Rational> Reps(N);
  bool AllPush = true;
  for (const RateSignature &R : Rates)
    AllPush = AllPush && R.Push > 0;
  if (AllPush) {
    // r_k proportional to w_k / u_k.
    for (size_t K = 0; K != N; ++K)
      Reps[K] = Rational(Join.Weights[K], Rates[K].Push);
  } else if (Split.Kind == Splitter::RoundRobin) {
    for (size_t K = 0; K != N; ++K) {
      if (Rates[K].Pop == 0)
        fatalError("splitjoin '" + SJ.name() +
                   "': child neither consumes nor produces");
      Reps[K] = Rational(Split.Weights[K], Rates[K].Pop);
    }
  } else {
    for (size_t K = 0; K != N; ++K) {
      if (Rates[K].Pop == 0)
        fatalError("splitjoin '" + SJ.name() +
                   "': child neither consumes nor produces");
      Reps[K] = Rational(1, Rates[K].Pop);
    }
  }

  std::vector<int64_t> Ints = toMinimalIntegers(Reps);

  // Consistency checks on the side not used for derivation.
  if (Split.Kind == Splitter::Duplicate) {
    int64_t Consumed = Rates[0].Pop * Ints[0];
    for (size_t K = 1; K != N; ++K)
      if (Rates[K].Pop * Ints[K] != Consumed)
        fatalError("splitjoin '" + SJ.name() +
                   "': duplicate children consume mismatched amounts");
  } else {
    Rational SplitRep(0);
    for (size_t K = 0; K != N; ++K) {
      if (Split.Weights[K] == 0) {
        if (Rates[K].Pop != 0)
          fatalError("splitjoin '" + SJ.name() +
                     "': zero-weight child consumes input");
        continue;
      }
      Rational R(Rates[K].Pop * Ints[K], Split.Weights[K]);
      if (K == 0)
        SplitRep = R;
      else if (!(SplitRep == R))
        fatalError("splitjoin '" + SJ.name() +
                   "': roundrobin splitter rates inconsistent");
    }
  }
  if (AllPush) {
    // Joiner already used; nothing further to check.
  } else {
    for (size_t K = 0; K != N; ++K)
      if ((Rates[K].Push == 0) != (Join.Weights[K] == 0))
        fatalError("splitjoin '" + SJ.name() +
                   "': joiner weight for non-producing child");
  }

  // The minimal vector balances the children against each other, but a
  // steady state must also run the splitter and joiner for a whole
  // number of cycles. Weight vectors that are unreduced multiples of the
  // per-repetition flows (the selection DP's vertical-cut wrappers build
  // these) reduce to child repetitions implying fractional cycles; scale
  // back up by the implied cycle-count denominators.
  int64_t Scale = 1;
  if (Split.Kind == Splitter::RoundRobin) {
    for (size_t K = 0; K != N; ++K) {
      if (Split.Weights[K] == 0)
        continue;
      // Equal across children (verified above); one representative.
      Rational Cycles(Rates[K].Pop * Ints[K], Split.Weights[K]);
      Scale = lcm64(Scale, Cycles.den());
      break;
    }
  }
  for (size_t K = 0; K != N; ++K) {
    if (Join.Weights[K] == 0 || Rates[K].Push == 0)
      continue;
    Rational Cycles(Rates[K].Push * Ints[K], Join.Weights[K]);
    Scale = lcm64(Scale, Cycles.den());
    break;
  }
  if (Scale > 1)
    for (int64_t &V : Ints)
      V *= Scale;
  return Ints;
}

std::vector<int64_t> feedbackLoopRepetitions(const FeedbackLoop &FB) {
  RateSignature Body = computeRates(FB.body());
  RateSignature Loop = computeRates(FB.loop());
  const Joiner &Join = FB.joiner();
  const Splitter &Split = FB.splitter();
  if (Join.Weights.size() != 2)
    fatalError("feedbackloop '" + FB.name() + "': joiner needs two weights");
  if (Split.Kind != Splitter::RoundRobin || Split.Weights.size() != 2)
    fatalError("feedbackloop '" + FB.name() +
               "': splitter must be roundrobin with two weights");

  // Unknowns: body reps B, loop reps L, joiner cycles J, splitter cycles S.
  //   o_b * B = (w0 + w1) * J      u_b * B = (s0 + s1) * S
  //   o_l * L = s1 * S             u_l * L = w1 * J
  Rational B(1);
  Rational J = Rational(Body.Pop) / Rational(Join.totalWeight());
  Rational S = Rational(Body.Push) / Rational(Split.totalWeight());
  Rational L = Rational(Split.Weights[1]) * S / Rational(Loop.Pop);
  if (!(Rational(Loop.Push) * L == Rational(Join.Weights[1]) * J))
    fatalError("feedbackloop '" + FB.name() + "': inconsistent loop rates");
  return toMinimalIntegers({B, L});
}

} // namespace

std::vector<int64_t> slin::childRepetitions(const Stream &Container) {
  switch (Container.kind()) {
  case StreamKind::Filter:
    return {};
  case StreamKind::Pipeline:
    return pipelineRepetitions(*cast<Pipeline>(&Container));
  case StreamKind::SplitJoin:
    return splitJoinRepetitions(*cast<SplitJoin>(&Container));
  case StreamKind::FeedbackLoop:
    return feedbackLoopRepetitions(*cast<FeedbackLoop>(&Container));
  }
  unreachable("unknown stream kind");
}

RateSignature slin::computeRates(const Stream &S) {
  switch (S.kind()) {
  case StreamKind::Filter: {
    const auto *F = cast<Filter>(&S);
    return {F->peekRate(), F->popRate(), F->pushRate()};
  }
  case StreamKind::Pipeline: {
    const auto *P = cast<Pipeline>(&S);
    std::vector<int64_t> Reps = childRepetitions(S);
    RateSignature First = computeRates(*P->children().front());
    RateSignature Last = computeRates(*P->children().back());
    RateSignature R;
    R.Pop = mulSat64(First.Pop, Reps.front());
    R.Peek = addSat64(R.Pop, First.Peek - First.Pop);
    R.Push = mulSat64(Last.Push, Reps.back());
    return R;
  }
  case StreamKind::SplitJoin: {
    const auto *SJ = cast<SplitJoin>(&S);
    std::vector<int64_t> Reps = childRepetitions(S);
    const auto &Children = SJ->children();
    RateSignature R;
    R.Push = 0;
    for (size_t K = 0; K != Children.size(); ++K)
      R.Push = addSat64(
          R.Push, mulSat64(computeRates(*Children[K]).Push, Reps[K]));

    if (SJ->splitter().Kind == Splitter::Duplicate) {
      int64_t MaxPeek = 0;
      int64_t Consumed = 0;
      for (size_t K = 0; K != Children.size(); ++K) {
        RateSignature C = computeRates(*Children[K]);
        Consumed = mulSat64(C.Pop, Reps[K]);
        MaxPeek = std::max(MaxPeek, addSat64(Consumed, C.Peek - C.Pop));
      }
      R.Pop = Consumed;
      R.Peek = MaxPeek;
    } else {
      // Roundrobin: one splitter cycle distributes totalWeight items.
      int64_t VTot = SJ->splitter().totalWeight();
      int64_t SplitRep = 0;
      int64_t ExtraPeek = 0;
      for (size_t K = 0; K != Children.size(); ++K) {
        if (SJ->splitter().Weights[K] == 0)
          continue;
        RateSignature C = computeRates(*Children[K]);
        SplitRep = mulSat64(C.Pop, Reps[K]) / SJ->splitter().Weights[K];
        ExtraPeek = std::max(ExtraPeek, C.Peek - C.Pop);
      }
      R.Pop = mulSat64(SplitRep, VTot);
      // Approximation: extra peeking by a child requires up to a full
      // extra splitter cycle of lookahead per extra item window.
      R.Peek =
          addSat64(R.Pop, ExtraPeek > 0 ? mulSat64(ExtraPeek, VTot) : 0);
    }
    return R;
  }
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    std::vector<int64_t> Reps = childRepetitions(S);
    RateSignature Body = computeRates(FB->body());
    int64_t JoinCycles =
        mulSat64(Body.Pop, Reps[0]) / FB->joiner().totalWeight();
    int64_t SplitCycles =
        mulSat64(Body.Push, Reps[0]) / FB->splitter().totalWeight();
    RateSignature R;
    R.Pop = FB->joiner().Weights[0] * JoinCycles;
    R.Peek = R.Pop;
    R.Push = FB->splitter().Weights[0] * SplitCycles;
    return R;
  }
  }
  unreachable("unknown stream kind");
}
