//===- sched/Schedule.h - Static steady-state firing programs ---*- C++ -*-===//
///
/// \file
/// Static scheduling of a flattened stream graph for the compiled,
/// batched execution engine (exec/CompiledExecutor.h). Extends the
/// balance-equation solver of Rates.h from the hierarchical graph to the
/// flat node graph and turns its solution into *firing programs*:
///
///  * an initialization program that executes init-work firings and primes
///    the channels of peeking consumers (leaving >= peek - pop leftover
///    items on each such channel), computed as a fixpoint over channel
///    demands downstream-to-upstream;
///  * a steady program executing exactly one steady state, and a batch
///    program executing B steady states, both derived by greedy symbolic
///    simulation (fire every ready node as many times as its remaining
///    repetition count and input allow) — replacing the dynamic engine's
///    per-sweep readiness scan with a precomputed sequence of
///    (node, count) steps whose long runs are what the batched matrix
///    kernels feed on;
///  * exact per-channel high-water marks and flat-buffer capacities, so
///    the compiled engine can allocate fixed ring buffers up front.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_SCHED_SCHEDULE_H
#define SLIN_SCHED_SCHEDULE_H

#include "exec/FlatGraph.h"

#include <cstdint>
#include <vector>

namespace slin {

/// One step of a firing program: fire node \p Node \p Count times
/// consecutively.
struct FiringStep {
  int Node = 0;
  int64_t Count = 0;
};

using FiringProgram = std::vector<FiringStep>;

/// A complete static schedule for a flattened graph.
struct StaticSchedule {
  /// Steady-state repetitions per node (minimal positive integers).
  std::vector<int64_t> Repetitions;

  /// Firings per node in the initialization phase (init-work firings plus
  /// priming for peeking consumers).
  std::vector<int64_t> InitFirings;

  /// Executed once before any steady iteration. May be empty.
  FiringProgram InitProgram;

  /// Executes exactly one steady state (used for tail iterations when the
  /// external input cannot cover a full batch).
  FiringProgram SteadyProgram;

  /// Executes BatchIterations steady states.
  FiringProgram BatchProgram;
  int BatchIterations = 1;

  /// Exact maximum number of items simultaneously live on each channel
  /// across the init program and any run of batch/steady programs.
  std::vector<int64_t> ChannelHighWater;

  /// Flat-buffer capacity per channel: live items at a program start plus
  /// all items appended during one program run (the compiled engine
  /// compacts buffers between program runs, so positions never exceed
  /// this). External channels are excluded (the engine grows them).
  std::vector<int64_t> ChannelBufSize;

  /// Items live on each channel after the init program (and after every
  /// subsequent steady/batch program run).
  std::vector<int64_t> PostInitLive;

  /// External input items required / consumed.
  int64_t InitExternalPops = 0;    ///< consumed by the init program
  int64_t InitExternalNeed = 0;    ///< required present before init
  int64_t SteadyExternalPops = 0;  ///< consumed by one steady state
  int64_t SteadyExternalNeed = 0;  ///< required present before a steady run
  int64_t BatchExternalPops = 0;
  int64_t BatchExternalNeed = 0;

  /// Items pushed to the external output channel.
  int64_t InitExternalPushes = 0;
  int64_t SteadyExternalPushes = 0;
  int64_t BatchExternalPushes = 0;
};

namespace serial {
class Writer;
class Reader;
} // namespace serial

/// Binary persistence of a schedule (support/Serialize.h): every field,
/// including the shard-boundary inputs (PostInitLive, high-water marks),
/// so a loaded program allocates and fires exactly like a fresh one.
void serializeSchedule(serial::Writer &W, const StaticSchedule &S);
bool deserializeSchedule(serial::Reader &R, StaticSchedule &Out);

/// Computes the static schedule of \p G with \p BatchIterations steady
/// states per batch program. Reports a fatal error for graphs without a
/// valid steady state or whose initialization cannot be scheduled
/// (deadlocked feedback loops).
StaticSchedule computeSchedule(const flat::FlatGraph &G,
                               int BatchIterations = 16);

/// Shard-boundary state computation for the parallel backend
/// (exec/Parallel.h). A worker reconstructs the runtime state at steady
/// iteration k by seeding closed-form filter state exactly, filling each
/// internal channel with PostInitLive placeholder items, and replaying
/// WashoutIterations steady iterations: after the replay every channel
/// item and every refreshable filter state has been recomputed from exact
/// values, so iteration k onward is bit-identical to a sequential run.
struct ShardBoundary {
  /// False when boundary state cannot be reconstructed (cyclic topology,
  /// opaque filter state, or a stateful channel that never drains).
  bool Feasible = false;
  std::string Reason; ///< why not, when !Feasible

  /// Steady iterations a worker must replay before its shard so that all
  /// channel contents and refreshable filter state are exact.
  int64_t WashoutIterations = 0;
};

/// Computes the washout depth of \p G under \p S. \p NodeStateDepth gives,
/// per flat node, the firings of that node whose inputs determine its
/// internal state (0 = stateless or exactly seeded, k > 0 = rewritten by
/// the last k firings, -1 = opaque); splitters and joiners pass 0.
ShardBoundary computeShardBoundary(const flat::FlatGraph &G,
                                   const StaticSchedule &S,
                                   const std::vector<int> &NodeStateDepth);

} // namespace slin

#endif // SLIN_SCHED_SCHEDULE_H
