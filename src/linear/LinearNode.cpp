//===- linear/LinearNode.cpp - Linear node representation -------------------==//

#include "linear/LinearNode.h"

#include "support/Diag.h"
#include "support/MathUtil.h"

#include <cmath>
#include <cstdio>

using namespace slin;

LinearNode::LinearNode(Matrix A, Vector B, int E, int O, int U)
    : A(std::move(A)), B(std::move(B)), E(E), O(O), U(U) {
  assert(this->A.rows() == static_cast<size_t>(E) && "A row count != e");
  assert(this->A.cols() == static_cast<size_t>(U) && "A col count != u");
  assert(this->B.size() == static_cast<size_t>(U) && "b size != u");
  assert(E >= O && O >= 0 && U >= 0 && "invalid rates");
}

Matrix LinearNode::naturalMatrix() const {
  Matrix C(static_cast<size_t>(E), static_cast<size_t>(U));
  for (int P = 0; P != E; ++P)
    for (int J = 0; J != U; ++J)
      C.at(static_cast<size_t>(P), static_cast<size_t>(J)) = coeff(P, J);
  return C;
}

Vector LinearNode::naturalOffsets() const {
  Vector V(static_cast<size_t>(U));
  for (int J = 0; J != U; ++J)
    V[static_cast<size_t>(J)] = offset(J);
  return V;
}

std::vector<double> LinearNode::apply(const double *Peeks) const {
  std::vector<double> Out(static_cast<size_t>(U));
  for (int J = 0; J != U; ++J) {
    double Sum = offset(J);
    for (int P = 0; P != E; ++P)
      Sum += coeff(P, J) * Peeks[P];
    Out[static_cast<size_t>(J)] = Sum;
  }
  return Out;
}

std::vector<double> LinearNode::apply(const std::vector<double> &Peeks) const {
  assert(Peeks.size() >= static_cast<size_t>(E) && "not enough input");
  return apply(Peeks.data());
}

std::vector<double> LinearNode::applyStream(const std::vector<double> &Input,
                                            int Firings) const {
  assert(static_cast<size_t>((Firings - 1) * O + E) <= Input.size() &&
         "not enough input for requested firings");
  std::vector<double> Out;
  Out.reserve(static_cast<size_t>(Firings * U));
  for (int F = 0; F != Firings; ++F) {
    std::vector<double> Y = apply(Input.data() + static_cast<size_t>(F * O));
    Out.insert(Out.end(), Y.begin(), Y.end());
  }
  return Out;
}

double LinearNode::maxAbsDiff(const LinearNode &O) const {
  assert(sameRates(O) && "rate mismatch in maxAbsDiff");
  return std::max(A.maxAbsDiff(O.A), B.maxAbsDiff(O.B));
}

std::string LinearNode::str() const {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "LinearNode e=%d o=%d u=%d\nA =\n", E, O, U);
  return std::string(Buf) + A.str() + "\nb = " + B.str();
}

//===----------------------------------------------------------------------===//
// Transformation 1: linear expansion
//===----------------------------------------------------------------------===//

LinearNode slin::expand(const LinearNode &N, int E2, int O2, int U2) {
  int E1 = N.peekRate(), O1 = N.popRate(), U1 = N.pushRate();
  assert(U1 > 0 && "cannot expand a node that pushes nothing");
  assert(E2 >= E1 && "expansion cannot shrink the peek rate");
  Matrix A2(static_cast<size_t>(E2), static_cast<size_t>(U2));
  // Copy m (m = 0 is the most recent firing, bottom-right) is shifted up
  // by m*o rows and left by m*u columns from the (E2-E1, U2-U1) anchor.
  int64_t Copies = U2 > 0 ? ceilDiv(U2, U1) : 0;
  for (int64_t M = 0; M != Copies; ++M) {
    int64_t RowOff = E2 - E1 - M * O1;
    int64_t ColOff = U2 - U1 - M * U1;
    for (int I = 0; I != E1; ++I) {
      int64_t R = RowOff + I;
      if (R < 0 || R >= E2)
        continue;
      for (int J = 0; J != U1; ++J) {
        int64_t C = ColOff + J;
        if (C < 0 || C >= U2)
          continue;
        A2.at(static_cast<size_t>(R), static_cast<size_t>(C)) +=
            N.matrix().at(static_cast<size_t>(I), static_cast<size_t>(J));
      }
    }
  }
  Vector B2(static_cast<size_t>(U2));
  for (int J = 0; J != U2; ++J)
    B2[static_cast<size_t>(J)] =
        N.vector()[static_cast<size_t>(U1 - 1 - (U2 - 1 - J) % U1)];
  return LinearNode(std::move(A2), std::move(B2), E2, O2, U2);
}

//===----------------------------------------------------------------------===//
// Transformation 2: pipeline combination
//===----------------------------------------------------------------------===//

LinearNode slin::combinePipeline(const LinearNode &First,
                                 const LinearNode &Second) {
  int U1 = First.pushRate(), O1 = First.popRate(), E1 = First.peekRate();
  int E2 = Second.peekRate(), O2 = Second.popRate(), U2 = Second.pushRate();
  assert(U1 > 0 && O2 > 0 && "pipeline combination requires data flow");

  int64_t ChanPop = lcm64(U1, O2);
  int64_t ChanPeek = ChanPop + E2 - O2;

  // Expand the upstream node to regenerate the items the downstream node
  // peeks at but does not consume (Section 3.3.2).
  LinearNode FirstE =
      expand(First,
             static_cast<int>((ceilDiv(ChanPeek, U1) - 1) * O1 + E1),
             static_cast<int>(ChanPop / U1 * O1), static_cast<int>(ChanPeek));
  LinearNode SecondE =
      expand(Second, static_cast<int>(ChanPeek), static_cast<int>(ChanPop),
             static_cast<int>(ChanPop / O2 * U2));

  // Degenerate-factor fast paths: expanded Identity filters produce exact
  // identity matrices and expanded Gain filters diagonal ones, so the
  // O(e·u·k) product collapses to a copy or a single scaling sweep. The
  // results equal the general product elementwise (a skipped k-term only
  // ever contributed an exact zero; signs of zero entries may differ,
  // which neither code generation — it tests == 0.0 — nor the runtime
  // kernels' skip logic can observe).
  const Matrix &M1 = FirstE.matrix();
  const Matrix &M2 = SecondE.matrix();
  Matrix A;
  if (M2.isIdentity()) {
    A = M1;
  } else if (M1.isIdentity()) {
    A = M2;
  } else if (M2.isDiagonal()) {
    // Mirror the general product's zero-skip: an exactly-zero factor
    // contributes nothing (not 0·x, which could be -0.0 or NaN).
    A = M1;
    for (size_t I = 0; I != A.rows(); ++I)
      for (size_t J = 0; J != A.cols(); ++J) {
        double &V = A.at(I, J);
        V = V == 0.0 ? 0.0 : V * M2.at(J, J);
      }
  } else if (M1.isDiagonal()) {
    A = M2;
    for (size_t I = 0; I != A.rows(); ++I) {
      double D = M1.at(I, I);
      for (size_t J = 0; J != A.cols(); ++J) {
        double &V = A.at(I, J);
        V = D == 0.0 || V == 0.0 ? 0.0 : D * V;
      }
    }
  } else {
    A = M1.multiply(M2);
  }
  Vector B = SecondE.matrix().leftMultiply(FirstE.vector());
  for (size_t J = 0; J != B.size(); ++J)
    B[J] += SecondE.vector()[J];
  return LinearNode(std::move(A), std::move(B), FirstE.peekRate(),
                    FirstE.popRate(), SecondE.pushRate());
}

//===----------------------------------------------------------------------===//
// Transformation 3: duplicate splitjoin combination
//===----------------------------------------------------------------------===//

LinearNode
slin::combineSplitJoinDuplicate(const std::vector<LinearNode> &Children,
                                const std::vector<int> &JoinWeights) {
  size_t N = Children.size();
  assert(N > 0 && JoinWeights.size() == N && "child/weight mismatch");

  // joinRep: joiner cycles per steady state.
  int64_t JoinRep = 1;
  for (size_t K = 0; K != N; ++K) {
    assert(JoinWeights[K] > 0 && "zero joiner weight");
    assert(Children[K].pushRate() > 0 && "child pushes nothing");
    JoinRep = lcm64(JoinRep,
                    lcm64(Children[K].pushRate(), JoinWeights[K]) /
                        JoinWeights[K]);
  }

  int64_t WTot = 0;
  std::vector<int64_t> WSum(N + 1, 0);
  for (size_t K = 0; K != N; ++K)
    WSum[K + 1] = WSum[K] + JoinWeights[K];
  WTot = WSum[N];

  std::vector<int64_t> Reps(N);
  int64_t MaxPeek = 0;
  for (size_t K = 0; K != N; ++K) {
    Reps[K] = JoinWeights[K] * JoinRep / Children[K].pushRate();
    MaxPeek = std::max<int64_t>(
        MaxPeek, static_cast<int64_t>(Children[K].popRate()) * Reps[K] +
                     Children[K].peekRate() - Children[K].popRate());
  }

  std::vector<LinearNode> Expanded;
  Expanded.reserve(N);
  int64_t Pop = -1;
  for (size_t K = 0; K != N; ++K) {
    int64_t OK = static_cast<int64_t>(Children[K].popRate()) * Reps[K];
    int64_t UK = static_cast<int64_t>(Children[K].pushRate()) * Reps[K];
    if (Pop < 0)
      Pop = OK;
    else if (Pop != OK)
      fatalError("duplicate splitjoin children consume mismatched amounts");
    Expanded.push_back(expand(Children[K], static_cast<int>(MaxPeek),
                              static_cast<int>(OK), static_cast<int>(UK)));
  }

  int64_t UOut = JoinRep * WTot;
  Matrix A(static_cast<size_t>(MaxPeek), static_cast<size_t>(UOut));
  Vector B(static_cast<size_t>(UOut));
  // During joiner cycle m, the p'th of the w_k items taken from child k
  // lands at output position m*wTot + wSum_k + p; in paper orientation
  // that is column u' - 1 - q, sourced from child column u_k^e - 1 -
  // (m*w_k + p).
  for (size_t K = 0; K != N; ++K) {
    int64_t UK = Expanded[K].pushRate();
    for (int64_t M = 0; M != JoinRep; ++M) {
      for (int64_t P = 0; P != JoinWeights[K]; ++P) {
        int64_t Q = M * WTot + WSum[K] + P;
        size_t DstCol = static_cast<size_t>(UOut - 1 - Q);
        size_t SrcCol = static_cast<size_t>(UK - 1 - (M * JoinWeights[K] + P));
        A.setColumn(DstCol, Expanded[K].matrix().column(SrcCol));
        B[DstCol] = Expanded[K].vector()[SrcCol];
      }
    }
  }
  return LinearNode(std::move(A), std::move(B), static_cast<int>(MaxPeek),
                    static_cast<int>(Pop), static_cast<int>(UOut));
}

//===----------------------------------------------------------------------===//
// Transformation 4: roundrobin to duplicate
//===----------------------------------------------------------------------===//

LinearNode slin::makeDecimator(int VTot, int VSumK, int VK) {
  assert(VK > 0 && VSumK + VK <= VTot && "bad decimator parameters");
  Matrix A(static_cast<size_t>(VTot), static_cast<size_t>(VK));
  // A[i, j] = 1 iff i = vTot - vSum_{k+1} + j  (Transformation 4), which
  // copies peek(vSum_k + p) into push p.
  for (int J = 0; J != VK; ++J) {
    int I = VTot - (VSumK + VK) + J;
    A.at(static_cast<size_t>(I), static_cast<size_t>(J)) = 1.0;
  }
  return LinearNode(std::move(A), Vector(static_cast<size_t>(VK)), VTot, VTot,
                    VK);
}

std::vector<LinearNode>
slin::roundRobinToDuplicate(const std::vector<LinearNode> &Children,
                            const std::vector<int> &SplitWeights) {
  size_t N = Children.size();
  assert(SplitWeights.size() == N && "child/weight mismatch");
  int VTot = 0;
  for (int W : SplitWeights)
    VTot += W;
  std::vector<LinearNode> Out;
  Out.reserve(N);
  int VSum = 0;
  for (size_t K = 0; K != N; ++K) {
    Out.push_back(combinePipeline(makeDecimator(VTot, VSum, SplitWeights[K]),
                                  Children[K]));
    VSum += SplitWeights[K];
  }
  return Out;
}

LinearNode slin::combineSplitJoin(const std::vector<LinearNode> &Children,
                                  bool DuplicateSplitter,
                                  const std::vector<int> &SplitWeights,
                                  const std::vector<int> &JoinWeights) {
  if (DuplicateSplitter)
    return combineSplitJoinDuplicate(Children, JoinWeights);
  return combineSplitJoinDuplicate(
      roundRobinToDuplicate(Children, SplitWeights), JoinWeights);
}
