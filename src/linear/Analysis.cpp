//===- linear/Analysis.cpp - Whole-graph linear analysis --------------------==//

#include "linear/Analysis.h"

#include "compiler/AnalysisManager.h"
#include "support/MathUtil.h"

#include <functional>

using namespace slin;

std::optional<LinearNode> slin::tryCombinePipeline(const LinearNode &First,
                                                   const LinearNode &Second,
                                                   size_t MaxElements) {
  if (First.pushRate() <= 0 || Second.popRate() <= 0)
    return std::nullopt;
  int64_t ChanPop = lcm64(First.pushRate(), Second.popRate());
  int64_t ChanPeek = ChanPop + Second.peekRate() - Second.popRate();
  int64_t E = (ceilDiv(ChanPeek, First.pushRate()) - 1) * First.popRate() +
              First.peekRate();
  int64_t U = ChanPop / Second.popRate() * Second.pushRate();
  if (E * U > static_cast<int64_t>(MaxElements))
    return std::nullopt;
  return combinePipeline(First, Second);
}

std::optional<LinearNode>
slin::tryCombineSplitJoin(const std::vector<LinearNode> &Children,
                          bool Duplicate, const std::vector<int> &SplitWeights,
                          const std::vector<int> &JoinWeights,
                          size_t MaxElements) {
  if (Children.empty() || JoinWeights.size() != Children.size())
    return std::nullopt;
  int64_t JoinRep = 1, WTot = 0;
  for (size_t K = 0; K != Children.size(); ++K) {
    if (JoinWeights[K] <= 0 || Children[K].pushRate() <= 0)
      return std::nullopt;
    JoinRep = lcm64(JoinRep, lcm64(Children[K].pushRate(), JoinWeights[K]) /
                                 JoinWeights[K]);
    WTot += JoinWeights[K];
    if (JoinRep > (int64_t(1) << 24))
      return std::nullopt;
  }
  int64_t VTot = 1;
  if (!Duplicate) {
    if (SplitWeights.size() != Children.size())
      return std::nullopt;
    VTot = 0;
    for (int W : SplitWeights)
      VTot += W;
  }
  int64_t MaxPeek = 0;
  for (size_t K = 0; K != Children.size(); ++K) {
    int64_t Rep = JoinWeights[K] * JoinRep / Children[K].pushRate();
    int64_t PeekK = static_cast<int64_t>(Children[K].popRate()) * Rep * VTot +
                    Children[K].peekRate() * (Duplicate ? 1 : VTot);
    MaxPeek = std::max(MaxPeek, PeekK);
  }
  if (MaxPeek * JoinRep * WTot > static_cast<int64_t>(MaxElements))
    return std::nullopt;
  return combineSplitJoin(Children, Duplicate, SplitWeights, JoinWeights);
}

LinearAnalysis::LinearAnalysis(const Stream &Root, Options Opts) : Opts(Opts) {
  analyze(Root);
  // Gather statistics after the map is complete.
  double VectorSizeSum = 0.0;
  std::function<void(const Stream &)> Walk = [&](const Stream &S) {
    switch (S.kind()) {
    case StreamKind::Filter:
      ++Statistics.Filters;
      if (const LinearNode *N = nodeFor(S)) {
        ++Statistics.LinearFilters;
        VectorSizeSum +=
            static_cast<double>(N->peekRate()) * N->pushRate();
      }
      return;
    case StreamKind::Pipeline:
      ++Statistics.Pipelines;
      if (nodeFor(S))
        ++Statistics.LinearPipelines;
      for (const StreamPtr &C : cast<Pipeline>(&S)->children())
        Walk(*C);
      return;
    case StreamKind::SplitJoin:
      ++Statistics.SplitJoins;
      if (nodeFor(S))
        ++Statistics.LinearSplitJoins;
      for (const StreamPtr &C : cast<SplitJoin>(&S)->children())
        Walk(*C);
      return;
    case StreamKind::FeedbackLoop:
      ++Statistics.FeedbackLoops;
      Walk(cast<FeedbackLoop>(&S)->body());
      Walk(cast<FeedbackLoop>(&S)->loop());
      return;
    }
  };
  Walk(Root);
  if (Statistics.LinearFilters > 0)
    Statistics.AvgVectorSize = VectorSizeSum / Statistics.LinearFilters;
}

const LinearNode *LinearAnalysis::nodeFor(const Stream &S) const {
  auto It = Nodes.find(&S);
  return It == Nodes.end() ? nullptr : It->second.get();
}

std::string LinearAnalysis::reasonFor(const Stream &S) const {
  auto It = Reasons.find(&S);
  return It == Reasons.end() ? std::string() : It->second;
}

void LinearAnalysis::analyze(const Stream &S) {
  AnalysisManager &AM = Opts.AM ? *Opts.AM : AnalysisManager::global();
  switch (S.kind()) {
  case StreamKind::Filter: {
    std::shared_ptr<const ExtractionResult> R =
        AM.extraction(*cast<Filter>(&S));
    if (R->Node)
      // Aliasing pointer into the shared (hash-consed) extraction result.
      Nodes.emplace(&S, std::shared_ptr<const LinearNode>(R, &*R->Node));
    else
      Reasons.emplace(&S, R->FailureReason);
    return;
  }
  case StreamKind::Pipeline: {
    const auto *P = cast<Pipeline>(&S);
    for (const StreamPtr &C : P->children())
      analyze(*C);
    std::shared_ptr<const LinearNode> Folded;
    bool First = true;
    for (const StreamPtr &C : P->children()) {
      auto It = Nodes.find(C.get());
      if (It == Nodes.end()) {
        Reasons.emplace(&S, "child '" + C->name() + "' is nonlinear");
        return;
      }
      if (First) {
        Folded = It->second;
        First = false;
        continue;
      }
      std::shared_ptr<const std::optional<LinearNode>> R =
          AM.combinePipeline(*Folded, *It->second, Opts.MaxMatrixElements);
      if (!R->has_value()) {
        Reasons.emplace(&S, "pipeline combination exceeds size limit");
        return;
      }
      Folded = std::shared_ptr<const LinearNode>(R, &**R);
    }
    if (Folded)
      Nodes.emplace(&S, std::move(Folded));
    else
      Reasons.emplace(&S, "empty pipeline");
    return;
  }
  case StreamKind::SplitJoin: {
    const auto *SJ = cast<SplitJoin>(&S);
    for (const StreamPtr &C : SJ->children())
      analyze(*C);
    std::vector<LinearNode> ChildNodes;
    for (const StreamPtr &C : SJ->children()) {
      const LinearNode *CN = nodeFor(*C);
      if (!CN) {
        Reasons.emplace(&S, "child '" + C->name() + "' is nonlinear");
        return;
      }
      ChildNodes.push_back(*CN);
    }
    std::shared_ptr<const std::optional<LinearNode>> Combined =
        AM.combineSplitJoin(ChildNodes,
                            SJ->splitter().Kind == Splitter::Duplicate,
                            SJ->splitter().Weights, SJ->joiner().Weights,
                            Opts.MaxMatrixElements);
    if (Combined->has_value())
      Nodes.emplace(
          &S, std::shared_ptr<const LinearNode>(Combined, &**Combined));
    else
      Reasons.emplace(&S, "splitjoin combination exceeds size limit");
    return;
  }
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    analyze(FB->body());
    analyze(FB->loop());
    Reasons.emplace(&S, "feedback loops require linear state (Section 7.1)");
    return;
  }
  }
}
