//===- linear/Extract.cpp - Linear extraction analysis ----------------------==//

#include "linear/Extract.h"

#include "support/Diag.h"
#include "wir/Interp.h"

#include <cmath>

using namespace slin;
using namespace slin::wir;

namespace {

/// A lattice value: ⊥ (unassigned), a linear form ⟨coeffs, const⟩, or ⊤.
struct LinForm {
  enum KindTy { Bot, Val, Top } Kind = Bot;
  Vector Coeffs; ///< Val only; indexed naturally: Coeffs[p] * peek(p)
  double Const = 0.0;

  static LinForm bottom() { return LinForm(); }
  static LinForm top() {
    LinForm F;
    F.Kind = Top;
    return F;
  }
  static LinForm constant(double C, size_t Peek) {
    LinForm F;
    F.Kind = Val;
    F.Coeffs = Vector(Peek);
    F.Const = C;
    return F;
  }

  bool isVal() const { return Kind == Val; }
  bool isConst() const { return Kind == Val && Coeffs.countNonZero() == 0; }
};

LinForm join(const LinForm &A, const LinForm &B) {
  if (A.Kind == LinForm::Bot)
    return B;
  if (B.Kind == LinForm::Bot)
    return A;
  if (A.Kind == LinForm::Top || B.Kind == LinForm::Top)
    return LinForm::top();
  if (A.Const == B.Const && A.Coeffs == B.Coeffs)
    return A;
  return LinForm::top();
}

/// popcount/pushcount live in the lattice constant-int domain.
struct LatticeInt {
  enum KindTy { Val, Top } Kind = Val;
  int Value = 0;

  static LatticeInt top() { return {Top, 0}; }
};

LatticeInt join(LatticeInt A, LatticeInt B) {
  if (A.Kind == LatticeInt::Top || B.Kind == LatticeInt::Top ||
      A.Value != B.Value)
    return LatticeInt::top();
  return A;
}

/// An A/b cell: ⊥, a known constant, or ⊤.
struct Cell {
  enum KindTy { Bot, Val, Top } Kind = Bot;
  double Value = 0.0;
};

Cell join(const Cell &A, const Cell &B) {
  if (A.Kind == Cell::Bot)
    return B;
  if (B.Kind == Cell::Bot)
    return A;
  if (A.Kind == Cell::Top || B.Kind == Cell::Top || A.Value != B.Value)
    return {Cell::Top, 0.0};
  return A;
}

/// Thrown-free failure signalling: the extractor sets Failed/Reason and
/// unwinds by checking at each step.
class Extractor {
public:
  explicit Extractor(const Filter &F) : F(F), Work(F.work()) {
    Peek = std::max(Work.PeekRate, Work.PopRate);
    Pop = Work.PopRate;
    Push = Work.PushRate;
  }

  ExtractionResult run() {
    if (Push <= 0)
      return fail("filter pushes nothing");
    if (!Work.Resolved)
      resolve(Work, F.fields());

    State S;
    S.Scalars.assign(static_cast<size_t>(Work.NumScalarSlots),
                     LinForm::bottom());
    S.Arrays.assign(static_cast<size_t>(Work.NumArraySlots), {});
    S.A.assign(static_cast<size_t>(Peek) * Push, Cell());
    S.BVec.assign(static_cast<size_t>(Push), Cell());

    execBody(Work.Body, S);
    if (Failed)
      return {std::nullopt, Reason};

    if (S.PopCount.Kind == LatticeInt::Top || S.PopCount.Value != Pop)
      return fail("pop count does not match declared pop rate");
    if (S.PushCount.Kind == LatticeInt::Top || S.PushCount.Value != Push)
      return fail("push count does not match declared push rate");

    Matrix A(static_cast<size_t>(Peek), static_cast<size_t>(Push));
    Vector B(static_cast<size_t>(Push));
    for (int R = 0; R != Peek; ++R)
      for (int C = 0; C != Push; ++C) {
        const Cell &CellV = S.A[static_cast<size_t>(R) * Push + C];
        if (CellV.Kind != Cell::Val)
          return fail("A contains a non-constant entry");
        A.at(static_cast<size_t>(R), static_cast<size_t>(C)) = CellV.Value;
      }
    for (int C = 0; C != Push; ++C) {
      if (S.BVec[static_cast<size_t>(C)].Kind != Cell::Val)
        return fail("b contains a non-constant entry");
      B[static_cast<size_t>(C)] = S.BVec[static_cast<size_t>(C)].Value;
    }
    ExtractionResult R;
    R.Node = LinearNode(std::move(A), std::move(B), Peek, Pop, Push);
    return R;
  }

private:
  struct State {
    std::vector<LinForm> Scalars;
    std::vector<std::vector<LinForm>> Arrays;
    std::vector<Cell> A;    ///< Peek x Push, row-major, paper orientation
    std::vector<Cell> BVec; ///< Push entries, paper orientation
    LatticeInt PopCount;
    LatticeInt PushCount;
  };

  ExtractionResult fail(const std::string &Why) {
    Failed = true;
    if (Reason.empty())
      Reason = Why;
    return {std::nullopt, Reason};
  }

  /// BuildCoeff (Algorithm 1): unit coefficient for peek(Pos), expressed
  /// naturally (Coeffs[p] multiplies peek(p)); the paper-orientation
  /// reversal happens when columns are stored.
  LinForm buildCoeff(int Pos) {
    LinForm V;
    V.Kind = LinForm::Val;
    V.Coeffs = Vector(static_cast<size_t>(Peek));
    V.Coeffs[static_cast<size_t>(Pos)] = 1.0;
    return V;
  }

  LinForm evalExpr(const Expr &E, State &S) {
    if (Failed)
      return LinForm::top();
    switch (E.kind()) {
    case ExprKind::Const:
      return LinForm::constant(wir::cast<ConstExpr>(&E)->Value,
                               static_cast<size_t>(Peek));
    case ExprKind::VarRef: {
      const auto *V = wir::cast<VarRefExpr>(&E);
      const LinForm &F = S.Scalars[static_cast<size_t>(V->Slot)];
      if (F.Kind == LinForm::Bot) {
        fail("read of unassigned variable '" + V->Name + "'");
        return LinForm::top();
      }
      return F;
    }
    case ExprKind::ArrayRef: {
      const auto *A = wir::cast<ArrayRefExpr>(&E);
      LinForm Idx = evalExpr(*A->Index, S);
      if (!Idx.isConst()) {
        fail("array index not a compile-time constant");
        return LinForm::top();
      }
      auto &Arr = S.Arrays[static_cast<size_t>(A->Slot)];
      int I = static_cast<int>(std::lround(Idx.Const));
      if (I < 0 || static_cast<size_t>(I) >= Arr.size()) {
        fail("array read out of range");
        return LinForm::top();
      }
      if (Arr[static_cast<size_t>(I)].Kind == LinForm::Bot) {
        fail("read of unassigned array element");
        return LinForm::top();
      }
      return Arr[static_cast<size_t>(I)];
    }
    case ExprKind::FieldRef: {
      const auto *FR = wir::cast<FieldRefExpr>(&E);
      const FieldDef &FD = F.fields()[static_cast<size_t>(FR->FieldIndex)];
      // Persistent (mutable) state: any access is ⊤ (Section 3.2).
      if (FD.IsMutable)
        return LinForm::top();
      if (!FR->Index)
        return LinForm::constant(FD.Init[0], static_cast<size_t>(Peek));
      LinForm Idx = evalExpr(*FR->Index, S);
      if (!Idx.isConst())
        return LinForm::top();
      int I = static_cast<int>(std::lround(Idx.Const));
      if (I < 0 || static_cast<size_t>(I) >= FD.Init.size()) {
        fail("const field read out of range");
        return LinForm::top();
      }
      return LinForm::constant(FD.Init[static_cast<size_t>(I)],
                               static_cast<size_t>(Peek));
    }
    case ExprKind::Peek: {
      LinForm Idx = evalExpr(*wir::cast<PeekExpr>(&E)->Index, S);
      if (!Idx.isConst()) {
        fail("peek index not a compile-time constant");
        return LinForm::top();
      }
      if (S.PopCount.Kind == LatticeInt::Top) {
        fail("peek with unresolved pop count");
        return LinForm::top();
      }
      int Pos = S.PopCount.Value + static_cast<int>(std::lround(Idx.Const));
      if (Pos < 0 || Pos >= Peek) {
        fail("peek beyond declared peek rate");
        return LinForm::top();
      }
      return buildCoeff(Pos);
    }
    case ExprKind::Pop: {
      if (S.PopCount.Kind == LatticeInt::Top) {
        fail("pop with unresolved pop count");
        return LinForm::top();
      }
      if (S.PopCount.Value >= Peek) {
        fail("pop beyond declared rates");
        return LinForm::top();
      }
      LinForm V = buildCoeff(S.PopCount.Value);
      ++S.PopCount.Value;
      return V;
    }
    case ExprKind::Binary:
      return evalBinary(*wir::cast<BinaryExpr>(&E), S);
    case ExprKind::Unary: {
      const auto *U = wir::cast<UnaryExpr>(&E);
      LinForm V = evalExpr(*U->Operand, S);
      if (U->Op == UnOp::Neg) {
        if (!V.isVal())
          return V.Kind == LinForm::Top ? LinForm::top() : V;
        for (size_t I = 0; I != V.Coeffs.size(); ++I)
          V.Coeffs[I] = -V.Coeffs[I];
        V.Const = -V.Const;
        return V;
      }
      // Logical not: constant-foldable only.
      if (V.isConst())
        return LinForm::constant(V.Const == 0.0 ? 1.0 : 0.0,
                                 static_cast<size_t>(Peek));
      return LinForm::top();
    }
    case ExprKind::Call: {
      const auto *C = wir::cast<CallExpr>(&E);
      LinForm V = evalExpr(*C->Arg, S);
      if (V.isConst())
        return LinForm::constant(evalIntrinsic(C->Fn, V.Const),
                                 static_cast<size_t>(Peek));
      return LinForm::top();
    }
    }
    unreachable("unknown expr kind");
  }

  LinForm evalBinary(const BinaryExpr &B, State &S) {
    LinForm L = evalExpr(*B.LHS, S);
    LinForm R = evalExpr(*B.RHS, S);
    if (Failed)
      return LinForm::top();
    switch (B.Op) {
    case BinOp::Add:
    case BinOp::Sub: {
      if (!L.isVal() || !R.isVal())
        return LinForm::top();
      LinForm V = L;
      double Sign = B.Op == BinOp::Add ? 1.0 : -1.0;
      for (size_t I = 0; I != V.Coeffs.size(); ++I)
        V.Coeffs[I] += Sign * R.Coeffs[I];
      V.Const += Sign * R.Const;
      return V;
    }
    case BinOp::Mul: {
      if (!L.isVal() || !R.isVal())
        return LinForm::top();
      if (L.isConst())
        return scale(R, L.Const);
      if (R.isConst())
        return scale(L, R.Const);
      return LinForm::top();
    }
    case BinOp::Div: {
      // Linear only when the divisor is a non-zero constant; a zero
      // constant dividend over a non-constant divisor is NOT zero (the
      // runtime divisor might be singular — footnote in Section 3.2).
      if (L.isVal() && R.isConst() && R.Const != 0.0)
        return scale(L, 1.0 / R.Const);
      return LinForm::top();
    }
    default: {
      // Nonlinear ops (mod, comparisons, logicals): constants fold.
      if (L.isConst() && R.isConst())
        return LinForm::constant(foldNonLinear(B.Op, L.Const, R.Const),
                                 static_cast<size_t>(Peek));
      return LinForm::top();
    }
    }
  }

  static double foldNonLinear(BinOp Op, double L, double R) {
    switch (Op) {
    case BinOp::Mod:  return std::fmod(L, R);
    case BinOp::Lt:   return L < R ? 1.0 : 0.0;
    case BinOp::Le:   return L <= R ? 1.0 : 0.0;
    case BinOp::Gt:   return L > R ? 1.0 : 0.0;
    case BinOp::Ge:   return L >= R ? 1.0 : 0.0;
    case BinOp::Eq:   return L == R ? 1.0 : 0.0;
    case BinOp::Ne:   return L != R ? 1.0 : 0.0;
    case BinOp::LAnd: return L != 0.0 && R != 0.0 ? 1.0 : 0.0;
    case BinOp::LOr:  return L != 0.0 || R != 0.0 ? 1.0 : 0.0;
    default:
      unreachable("not a foldable nonlinear op");
    }
  }

  static LinForm scale(const LinForm &V, double C) {
    LinForm R = V;
    for (size_t I = 0; I != R.Coeffs.size(); ++I)
      R.Coeffs[I] *= C;
    R.Const *= C;
    return R;
  }

  void execBody(const StmtList &Body, State &S) {
    for (const StmtPtr &St : Body) {
      if (Failed)
        return;
      execStmt(*St, S);
    }
  }

  void execStmt(const Stmt &St, State &S) {
    switch (St.kind()) {
    case StmtKind::Assign: {
      const auto *A = wir::cast<AssignStmt>(&St);
      LinForm V = evalExpr(*A->Value, S);
      if (!Failed)
        S.Scalars[static_cast<size_t>(A->Slot)] = V;
      return;
    }
    case StmtKind::ArrayAssign: {
      const auto *A = wir::cast<ArrayAssignStmt>(&St);
      LinForm Idx = evalExpr(*A->Index, S);
      LinForm V = evalExpr(*A->Value, S);
      if (Failed)
        return;
      if (!Idx.isConst()) {
        fail("array store index not a compile-time constant");
        return;
      }
      auto &Arr = S.Arrays[static_cast<size_t>(A->Slot)];
      int I = static_cast<int>(std::lround(Idx.Const));
      if (I < 0 || static_cast<size_t>(I) >= Arr.size()) {
        fail("array store out of range");
        return;
      }
      Arr[static_cast<size_t>(I)] = V;
      return;
    }
    case StmtKind::FieldAssign: {
      // Writing persistent state: evaluate operands for their tape
      // effects; the store itself is irrelevant since every read of
      // mutable state is already ⊤.
      const auto *FA = wir::cast<FieldAssignStmt>(&St);
      if (FA->Index)
        (void)evalExpr(*FA->Index, S);
      (void)evalExpr(*FA->Value, S);
      return;
    }
    case StmtKind::LocalArray: {
      const auto *L = wir::cast<LocalArrayStmt>(&St);
      S.Arrays[static_cast<size_t>(L->Slot)].assign(
          static_cast<size_t>(L->Size), LinForm::bottom());
      return;
    }
    case StmtKind::Push: {
      LinForm V = evalExpr(*wir::cast<PushStmt>(&St)->Value, S);
      if (Failed)
        return;
      if (V.Kind != LinForm::Val) {
        fail("pushed value is not an affine function of the input");
        return;
      }
      if (S.PushCount.Kind == LatticeInt::Top) {
        fail("push with unresolved push count");
        return;
      }
      if (S.PushCount.Value >= Push) {
        fail("push beyond declared push rate");
        return;
      }
      // Column Push-1-pushcount of A gets the coefficient vector with the
      // paper-orientation row reversal: A[e-1-p, col] = Coeffs[p].
      int Col = Push - 1 - S.PushCount.Value;
      for (int P = 0; P != Peek; ++P) {
        Cell &C = S.A[static_cast<size_t>(Peek - 1 - P) * Push + Col];
        assert(C.Kind == Cell::Bot && "column written twice");
        C = {Cell::Val, V.Coeffs[static_cast<size_t>(P)]};
      }
      Cell &BC = S.BVec[static_cast<size_t>(Col)];
      assert(BC.Kind == Cell::Bot && "offset written twice");
      BC = {Cell::Val, V.Const};
      ++S.PushCount.Value;
      return;
    }
    case StmtKind::PopDiscard: {
      if (S.PopCount.Kind == LatticeInt::Top) {
        fail("pop with unresolved pop count");
        return;
      }
      ++S.PopCount.Value;
      return;
    }
    case StmtKind::For: {
      const auto *F2 = wir::cast<ForStmt>(&St);
      LinForm Begin = evalExpr(*F2->Begin, S);
      LinForm End = evalExpr(*F2->End, S);
      if (Failed)
        return;
      if (!Begin.isConst() || !End.isConst()) {
        fail("loop bounds not compile-time constants");
        return;
      }
      int B = static_cast<int>(std::lround(Begin.Const));
      int E = static_cast<int>(std::lround(End.Const));
      if (E - B > (1 << 20)) {
        fail("loop trip count too large to unroll");
        return;
      }
      for (int I = B; I < E && !Failed; ++I) {
        S.Scalars[static_cast<size_t>(F2->Slot)] =
            LinForm::constant(I, static_cast<size_t>(Peek));
        execBody(F2->Body, S);
      }
      return;
    }
    case StmtKind::If: {
      const auto *I = wir::cast<IfStmt>(&St);
      LinForm Cond = evalExpr(*I->Cond, S);
      if (Failed)
        return;
      // Constant condition: execute only the taken arm.
      if (Cond.isConst()) {
        execBody(Cond.Const != 0.0 ? I->Then : I->Else, S);
        return;
      }
      // Data-dependent condition: execute both arms and join.
      State SThen = S;
      State SElse = std::move(S);
      execBody(I->Then, SThen);
      execBody(I->Else, SElse);
      if (Failed)
        return;
      S = joinStates(SThen, SElse);
      return;
    }
    case StmtKind::Print:
      // External side effect: the filter is not a pure affine map.
      fail("print statement (external side effect)");
      return;
    case StmtKind::Uncounted:
      execBody(wir::cast<UncountedStmt>(&St)->Body, S);
      return;
    }
    unreachable("unknown stmt kind");
  }

  State joinStates(const State &A, const State &B) {
    State R;
    R.Scalars.resize(A.Scalars.size());
    for (size_t I = 0; I != A.Scalars.size(); ++I)
      R.Scalars[I] = join(A.Scalars[I], B.Scalars[I]);
    R.Arrays.resize(A.Arrays.size());
    for (size_t I = 0; I != A.Arrays.size(); ++I) {
      if (A.Arrays[I].size() != B.Arrays[I].size()) {
        R.Arrays[I].assign(std::max(A.Arrays[I].size(), B.Arrays[I].size()),
                           LinForm::top());
        continue;
      }
      R.Arrays[I].resize(A.Arrays[I].size());
      for (size_t J = 0; J != A.Arrays[I].size(); ++J)
        R.Arrays[I][J] = join(A.Arrays[I][J], B.Arrays[I][J]);
    }
    R.A.resize(A.A.size());
    for (size_t I = 0; I != A.A.size(); ++I)
      R.A[I] = join(A.A[I], B.A[I]);
    R.BVec.resize(A.BVec.size());
    for (size_t I = 0; I != A.BVec.size(); ++I)
      R.BVec[I] = join(A.BVec[I], B.BVec[I]);
    R.PopCount = join(A.PopCount, B.PopCount);
    R.PushCount = join(A.PushCount, B.PushCount);
    return R;
  }

  const Filter &F;
  const WorkFunction &Work;
  int Peek, Pop, Push;
  bool Failed = false;
  std::string Reason;
};

} // namespace

ExtractionResult slin::extractLinearNode(const Filter &F) {
  if (F.isNative())
    return {std::nullopt, "native filter (no work IR)"};
  if (F.hasInitWork())
    return {std::nullopt, "filter has a distinct init work function"};
  return Extractor(F).run();
}
