//===- linear/Analysis.h - Whole-graph linear analysis ----------*- C++ -*-===//
///
/// \file
/// The "linear analyzer" of Section 4.4: walks the stream hierarchy
/// bottom-up, running extraction on filters and the combination rules of
/// Section 3.3 on containers, producing a map from every stream to its
/// linear node (or a nonlinearity reason). Replacement passes and the
/// optimization-selection DP consume this map.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_LINEAR_ANALYSIS_H
#define SLIN_LINEAR_ANALYSIS_H

#include "linear/Extract.h"
#include "linear/LinearNode.h"

#include <map>
#include <memory>
#include <string>

namespace slin {

class AnalysisManager;

/// Pipeline combination with a size guard: returns nothing when the
/// combined matrix would exceed \p MaxElements entries (or when the lcm
/// machinery would blow up).
std::optional<LinearNode> tryCombinePipeline(const LinearNode &First,
                                             const LinearNode &Second,
                                             size_t MaxElements);

/// Splitjoin combination with a size guard; see combineSplitJoin.
std::optional<LinearNode>
tryCombineSplitJoin(const std::vector<LinearNode> &Children, bool Duplicate,
                    const std::vector<int> &SplitWeights,
                    const std::vector<int> &JoinWeights, size_t MaxElements);

class LinearAnalysis {
public:
  struct Options {
    /// Combined matrices larger than this many elements are treated as
    /// nonlinear containers (guards against lcm blowup; the paper notes
    /// code-size explosion for Radar without such a restriction).
    size_t MaxMatrixElements = size_t(1) << 24;
    /// Hash-consed extraction/combination cache to consult; null selects
    /// the process-global AnalysisManager. Results are shared (not
    /// copied) with the cache, so structurally identical graphs analyzed
    /// by different LinearAnalysis instances alias one set of nodes.
    AnalysisManager *AM = nullptr;
  };

  explicit LinearAnalysis(const Stream &Root) : LinearAnalysis(Root, Options()) {}
  LinearAnalysis(const Stream &Root, Options Opts);

  /// The linear node for \p S, or null if \p S is nonlinear.
  const LinearNode *nodeFor(const Stream &S) const;

  /// Why \p S is nonlinear (empty string if it is linear).
  std::string reasonFor(const Stream &S) const;

  /// Table 5.2-style statistics over the analyzed graph.
  struct Stats {
    int Filters = 0;
    int LinearFilters = 0;
    int Pipelines = 0;
    int LinearPipelines = 0;
    int SplitJoins = 0;
    int LinearSplitJoins = 0;
    int FeedbackLoops = 0;
    /// Average e*u over linear filters ("average vector size").
    double AvgVectorSize = 0.0;
  };
  Stats stats() const { return Statistics; }

private:
  void analyze(const Stream &S);

  Options Opts;
  /// Values alias the AnalysisManager's hash-consed results (or privately
  /// computed ones); shared_ptr keeps them alive past cache invalidation.
  std::map<const Stream *, std::shared_ptr<const LinearNode>> Nodes;
  std::map<const Stream *, std::string> Reasons;
  Stats Statistics;
};

} // namespace slin

#endif // SLIN_LINEAR_ANALYSIS_H
