//===- linear/LinearNode.h - Linear node representation ---------*- C++ -*-===//
///
/// \file
/// Definition 1 (Section 3.1): a linear node Λ = {A, b, e, o, u}
/// represents an abstract stream block computing y⃗ = x⃗ A + b⃗, where
/// x⃗[i] = peek(e − 1 − i) and the u entries of y⃗ are pushed starting with
/// y⃗[u−1]. A and b are stored in exactly this *paper orientation* so the
/// combination transformations (3.3) transcribe verbatim; natural-order
/// accessors are provided for code generation and execution:
///
///   coeff(p, j)  — the coefficient of peek(p) in the j'th pushed value,
///                   i.e. A[e−1−p, u−1−j];
///   offset(j)    — the constant added to the j'th pushed value, b[u−1−j].
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_LINEAR_LINEARNODE_H
#define SLIN_LINEAR_LINEARNODE_H

#include "matrix/Matrix.h"

#include <vector>

namespace slin {

class LinearNode {
public:
  LinearNode() = default;

  /// \p A is e x u in paper orientation; \p B has u entries.
  LinearNode(Matrix A, Vector B, int E, int O, int U);

  int peekRate() const { return E; }
  int popRate() const { return O; }
  int pushRate() const { return U; }

  const Matrix &matrix() const { return A; }
  const Vector &vector() const { return B; }
  Matrix &matrix() { return A; }
  Vector &vector() { return B; }

  /// Coefficient of peek(\p PeekIdx) in push \p PushIdx (natural order).
  double coeff(int PeekIdx, int PushIdx) const {
    return A.at(static_cast<size_t>(E - 1 - PeekIdx),
                static_cast<size_t>(U - 1 - PushIdx));
  }
  void setCoeff(int PeekIdx, int PushIdx, double V) {
    A.at(static_cast<size_t>(E - 1 - PeekIdx),
         static_cast<size_t>(U - 1 - PushIdx)) = V;
  }

  /// Constant offset of push \p PushIdx (natural order).
  double offset(int PushIdx) const {
    return B[static_cast<size_t>(U - 1 - PushIdx)];
  }
  void setOffset(int PushIdx, double V) {
    B[static_cast<size_t>(U - 1 - PushIdx)] = V;
  }

  /// The e x u coefficient matrix in natural orientation: entry (p, j)
  /// multiplies peek(p) in push j. Used by the runtime kernels.
  Matrix naturalMatrix() const;

  /// Offsets in natural (push) order.
  Vector naturalOffsets() const;

  /// Executes one firing: \p Peeks must hold at least e values with
  /// Peeks[i] = peek(i); returns the u pushed values in push order.
  /// (Analysis-time reference semantics; not routed through op counters.)
  std::vector<double> apply(const double *Peeks) const;
  std::vector<double> apply(const std::vector<double> &Peeks) const;

  /// Runs \p Firings consecutive firings over \p Input (sliding by o) and
  /// concatenates the pushed values — reference semantics for tests.
  std::vector<double> applyStream(const std::vector<double> &Input,
                                  int Firings) const;

  size_t nonZeroCount() const { return A.countNonZero(); }
  size_t nonZeroOffsetCount() const { return B.countNonZero(); }

  /// Max elementwise difference over A and b; rates must match.
  double maxAbsDiff(const LinearNode &O) const;

  bool sameRates(const LinearNode &O) const {
    return E == O.E && this->O == O.O && U == O.U;
  }

  std::string str() const;

private:
  Matrix A; ///< e x u, paper orientation
  Vector B; ///< u entries, paper orientation
  int E = 0;
  int O = 0;
  int U = 0;
};

//===----------------------------------------------------------------------===//
// Transformations (Section 3.3)
//===----------------------------------------------------------------------===//

/// Transformation 1 (linear expansion): scales \p N to rates (E2, O2, U2)
/// by placing shifted copies of A along the diagonal from the bottom
/// right, preserving the input/output relationship of each firing.
LinearNode expand(const LinearNode &N, int E2, int O2, int U2);

/// Transformation 2 (pipeline combination): a single node equivalent to
/// \p First feeding \p Second.
LinearNode combinePipeline(const LinearNode &First, const LinearNode &Second);

/// Transformation 3 (duplicate splitjoin combination): a single node
/// equivalent to a duplicate splitter feeding \p Children whose outputs
/// are merged by a roundrobin joiner with \p JoinWeights.
LinearNode combineSplitJoinDuplicate(const std::vector<LinearNode> &Children,
                                     const std::vector<int> &JoinWeights);

/// The decimator node of Transformation 4 for child \p K: consumes VTot
/// items (one roundrobin splitter cycle) and copies through the VK items
/// destined for child K (offset VSumK into the cycle).
LinearNode makeDecimator(int VTot, int VSumK, int VK);

/// Transformation 4 (roundrobin-to-duplicate): rewrites each child as
/// decimator ∘ child so a roundrobin splitter can be treated as duplicate.
std::vector<LinearNode>
roundRobinToDuplicate(const std::vector<LinearNode> &Children,
                      const std::vector<int> &SplitWeights);

/// Combines any linear splitjoin: applies Transformation 4 first when the
/// splitter is roundrobin, then Transformation 3.
LinearNode combineSplitJoin(const std::vector<LinearNode> &Children,
                            bool DuplicateSplitter,
                            const std::vector<int> &SplitWeights,
                            const std::vector<int> &JoinWeights);

} // namespace slin

#endif // SLIN_LINEAR_LINEARNODE_H
