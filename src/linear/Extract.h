//===- linear/Extract.h - Linear extraction analysis ------------*- C++ -*-===//
///
/// \file
/// The linear extraction analysis of Section 3.2 (Algorithms 1 and 2): a
/// flow-sensitive forward dataflow analysis that symbolically executes a
/// filter's work function, mapping each program variable to a linear form
/// ⟨v⃗, c⟩ (value = x⃗·v⃗ + c over the input items) in a lattice with ⊥ and
/// ⊤, and filling in the A matrix and b vector column by column as pushes
/// are encountered. Loops are fully unrolled (bounds must resolve to
/// constants); both branch arms are executed and joined with the
/// confluence operator ⊔.
///
/// Practical extensions faithful to the real StreamIt implementation:
///  * const filter fields (initialized at construction, never written by
///    work) fold to constants — every Appendix-A FIR reads its h[] so;
///  * local arrays with constant indices are tracked element-wise;
///  * a branch whose condition resolves to a constant executes only the
///    taken arm;
///  * any access to mutable (persistent) state yields ⊤, as do intrinsic
///    calls and nonlinear operators on non-constant operands, print
///    statements, and unresolvable peek indices or loop bounds.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_LINEAR_EXTRACT_H
#define SLIN_LINEAR_EXTRACT_H

#include "graph/Stream.h"
#include "linear/LinearNode.h"

#include <optional>
#include <string>

namespace slin {

/// Result of attempting linear extraction on one filter.
struct ExtractionResult {
  std::optional<LinearNode> Node;
  std::string FailureReason; ///< set when Node is empty

  bool isLinear() const { return Node.has_value(); }
};

/// Runs the extraction analysis on \p F's steady-state work function.
/// Native filters and filters that push nothing are reported nonlinear.
ExtractionResult extractLinearNode(const Filter &F);

} // namespace slin

#endif // SLIN_LINEAR_EXTRACT_H
