//===- compiler/AnalysisManager.h - Hash-consed analysis cache --*- C++ -*-===//
///
/// \file
/// The memoization layer of the compiler pipeline: linear extraction and
/// the Section 3.3 combination transformations are pure functions of
/// their inputs' structure, so their results are hash-consed under
/// content digests (compiler/StructuralHash.h) and shared by every
/// client — `LinearAnalysis`, the optimization-selection DP, and all
/// replacement passes — across independent `optimize()` calls. The
/// compositional view of stream analysis (pipeline/splitjoin combination
/// is associative algebra over linear nodes) is exactly what makes these
/// intermediate facts safe to reuse: a digest determines the result.
///
/// Rewrites need no explicit invalidation to stay correct — a rewritten
/// subtree hashes differently, so stale entries are simply never hit —
/// but `invalidate()` drops all entries (memory pressure, tests), and
/// `setEnabled(false)` turns an instance into a pass-through for
/// cache-on/off differential testing.
///
/// Both maps are bounded LRU caches (mirroring ProgramCache): rewritten
/// subtrees hash differently forever, so an unbounded global() would
/// accumulate dead digests for the life of the process. Evictions are
/// counted in stats() and capacities are tunable per instance.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_COMPILER_ANALYSISMANAGER_H
#define SLIN_COMPILER_ANALYSISMANAGER_H

#include "compiler/StructuralHash.h"
#include "linear/Extract.h"

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace slin {

class AnalysisManager {
public:
  AnalysisManager() = default;
  AnalysisManager(const AnalysisManager &) = delete;
  AnalysisManager &operator=(const AnalysisManager &) = delete;

  /// The process-wide cache used whenever a client does not supply its
  /// own instance.
  static AnalysisManager &global();

  /// Memoized extractLinearNode, keyed by \p F's structural hash.
  std::shared_ptr<const ExtractionResult> extraction(const Filter &F);

  /// Memoized tryCombinePipeline (size-guarded; a cached nullopt records
  /// "combination infeasible / too large" just as firmly as a node).
  std::shared_ptr<const std::optional<LinearNode>>
  combinePipeline(const LinearNode &First, const LinearNode &Second,
                  size_t MaxElements);

  /// Memoized tryCombineSplitJoin.
  std::shared_ptr<const std::optional<LinearNode>>
  combineSplitJoin(const std::vector<LinearNode> &Children, bool Duplicate,
                   const std::vector<int> &SplitWeights,
                   const std::vector<int> &JoinWeights, size_t MaxElements);

  /// Drops every cached entry.
  void invalidate();

  /// A disabled manager recomputes everything (for differential tests).
  void setEnabled(bool E);
  bool enabled() const;

  /// Bounds the caches (entries, not bytes); evicts least recently used
  /// beyond each cap. Minimum effective capacity is 1.
  void setCapacity(size_t Extractions, size_t Combinations);

  struct Stats {
    uint64_t ExtractionHits = 0;
    uint64_t ExtractionMisses = 0;
    uint64_t CombineHits = 0;
    uint64_t CombineMisses = 0;
    uint64_t ExtractionEvictions = 0;
    uint64_t CombineEvictions = 0;
    /// Live entry counts at snapshot time (<= the capacities).
    uint64_t ExtractionEntries = 0;
    uint64_t CombineEntries = 0;
  };
  Stats stats() const;

private:
  template <class V> struct Entry {
    V Value;
    uint64_t LastUse = 0;
  };
  template <class V>
  void evictOver(std::map<HashDigest, Entry<V>> &Map, size_t Capacity,
                 uint64_t &Evictions);

  mutable std::mutex Mutex;
  bool Enabled = true;
  Stats Counters;
  uint64_t UseClock = 0;
  size_t ExtractionCapacity = 512;
  size_t CombinationCapacity = 4096;
  std::map<HashDigest, Entry<std::shared_ptr<const ExtractionResult>>>
      Extractions;
  std::map<HashDigest,
           Entry<std::shared_ptr<const std::optional<LinearNode>>>>
      Combinations;
};

} // namespace slin

#endif // SLIN_COMPILER_ANALYSISMANAGER_H
