//===- compiler/Pipeline.cpp - The compiler pipeline --------------------------==//

#include "compiler/Pipeline.h"

#include "codegen/NativeModule.h"
#include "compiler/AnalysisManager.h"
#include "compiler/ArtifactStore.h"
#include "compiler/StructuralHash.h"
#include "graph/Export.h"
#include "linear/Analysis.h"
#include "opt/Cleanup.h"
#include "opt/Redundancy.h"
#include "opt/Selection.h"
#include "support/Diag.h"
#include "support/FaultInjection.h"
#include "support/RuntimeConfig.h"
#include "verify/Lint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace slin;

const char *slin::optModeName(OptMode M) {
  switch (M) {
  case OptMode::Base:
    return "base";
  case OptMode::Linear:
    return "linear";
  case OptMode::Freq:
    return "freq";
  case OptMode::Redundancy:
    return "redundancy";
  case OptMode::AutoSel:
    return "autosel";
  }
  unreachable("unknown optimization mode");
}

bool slin::defaultVerifyAfterEachPass() {
  return RuntimeConfig::current().Verify;
}

double CompileResult::totalSeconds() const {
  double T = 0.0;
  for (const PassInfo &P : Passes)
    T += P.Seconds;
  return T;
}

std::string CompileResult::timingReport() const {
  std::string Out;
  char Buf[160];
  for (const PassInfo &P : Passes) {
    std::snprintf(Buf, sizeof(Buf), "%-22s %9.3f ms  %s\n", P.Name.c_str(),
                  P.Seconds * 1e3, P.Note.c_str());
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "%-22s %9.3f ms\n", "total",
                totalSeconds() * 1e3);
  Out += Buf;
  return Out;
}

namespace {

/// Runs one pass body under the wall clock and records it.
template <class Fn>
auto runPass(CompileResult &R, const std::string &Name, Fn &&Body)
    -> decltype(Body()) {
  auto Start = std::chrono::steady_clock::now();
  auto Value = Body();
  double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  R.Passes.push_back({Name, Secs, std::string()});
  return Value;
}

void dumpAfterPass(const PipelineOptions &Opts, size_t Index,
                   const std::string &Pass, const Stream &S) {
  if (Opts.DumpDir.empty())
    return;
  char Prefix[32];
  std::snprintf(Prefix, sizeof(Prefix), "%02zu-", Index);
  std::string Base = Opts.DumpDir + "/" + Prefix + Pass;
  writeTextFile(Base + ".dot", streamToDot(S));
  writeTextFile(Base + ".json", streamToJson(S));
}

std::string analysisNote(const LinearAnalysis &LA) {
  LinearAnalysis::Stats St = LA.stats();
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%d/%d filters linear",
                St.LinearFilters, St.Filters);
  return Buf;
}

/// Pipeline-level persistent cache key: the *pre-optimization* structure
/// plus every configuration knob that shapes what the passes produce. A
/// warm process that resolves this key through the artifact store's
/// alias records skips analysis, selection, replacement AND lowering —
/// the "zero compiler passes" load path. Returns false when the
/// configuration cannot be keyed: no compiled artifact requested, the
/// program cache bypassed, dump-after-pass side effects wanted, or a
/// cost model that does not content-hash.
bool pipelineAliasKey(const Stream &Root, const PipelineOptions &Opts,
                      HashDigest &Out) {
  // Destructured for the same compile-time exhaustiveness guarantee as
  // hashOptions: a new PipelineOptions (or FrequencyOptions) field fails
  // to compile here until it is either mixed into the key or explicitly
  // discarded below as non-semantic — it can never silently alias stored
  // compiles produced under different configurations.
  const auto &[Mode, Combine, CodeGen, Freq, Model, MaxMatrixElements,
               ConstFold, DeadChannelElim, VerifyAfterEachPass, Exec, AM,
               UseProgramCache, DumpDir] = Opts;
  // Non-semantic knobs: the analysis cache only memoizes pure functions,
  // the verifier never changes what the passes produce, and a bypassed
  // program cache / requested pass dumps disable aliasing entirely
  // rather than key it.
  (void)AM;
  (void)VerifyAfterEachPass;
  if (!usesCompiledArtifact(Exec.Eng) || !UseProgramCache ||
      !DumpDir.empty())
    return false;
  HashStream H;
  H.mix(0xa11a5); // domain tag
  hashStream(H, Root);
  H.mixInt(static_cast<int64_t>(Mode));
  H.mix(Combine ? 1 : 0);
  H.mixInt(static_cast<int64_t>(CodeGen));
  const auto &[FreqOptimized, FreqTier, FreqFFTSizeOverride, FreqPopLimit] =
      Freq;
  H.mix(FreqOptimized ? 1 : 0);
  H.mixInt(static_cast<int64_t>(FreqTier));
  H.mixInt(FreqFFTSizeOverride);
  H.mixInt(FreqPopLimit);
  if (!Model) {
    H.mix(0); // default model (engine-substituted deterministically)
  } else {
    H.mix(1);
    if (!Model->hashContent(H))
      return false;
  }
  H.mix(MaxMatrixElements);
  H.mix(ConstFold ? 1 : 0);
  H.mix(DeadChannelElim ? 1 : 0);
  // Of ExecOptions, only the compiled-engine knobs shape the artifact:
  // every artifact engine runs the same tapes/kernels (selection
  // substitutes one shared compiled-engine model), and DynamicOptions
  // never reach the compiled path.
  HashDigest OD = hashOptions(Exec.Compiled);
  H.mix(OD.Lo);
  H.mix(OD.Hi);
  Out = H.digest();
  return true;
}

/// Engine::Native: resolve (or emit+compile+dlopen) the program's native
/// module, recorded as its own timed pass. A null module is *not* an
/// error — no toolchain, a failed compile or a failed dlopen are
/// environmental, and the op-tape engine underneath is bit-identical —
/// so the result only carries Degraded/DegradeReason for observability.
/// Executors re-fetch the module from the cache (a memory hit).
void ensureNative(CompileResult &R) {
  codegen::NativeModuleCache &C = codegen::NativeModuleCache::global();
  codegen::NativeModuleCache::Stats Before = C.stats();
  std::string Reason;
  codegen::NativeModuleRef M =
      runPass(R, "native-codegen", [&] { return C.get(*R.Program, &Reason); });
  codegen::NativeModuleCache::Stats After = C.stats();
  if (M) {
    // Best-effort provenance from the stats delta (cosmetic only; other
    // threads may interleave).
    if (After.DiskHits > Before.DiskHits)
      R.Passes.back().Note = "disk object hit";
    else if (After.Compiles > Before.Compiles)
      R.Passes.back().Note = "emitted+compiled";
    else
      R.Passes.back().Note = "native cache hit (memory)";
    return;
  }
  R.Passes.back().Note = "degraded: " + Reason;
  R.Degraded = true;
  R.DegradeReason = "native codegen degraded to op tapes: " + Reason;
}

} // namespace

CompileResult CompilerPipeline::compile(const Stream &Root) const {
  // The historical front door: environmental failures are impossible on
  // this route's passes, so any error compileImpl reports is fatal.
  return compileImpl(Root, Opts, nullptr);
}

Expected<CompileResult> CompilerPipeline::tryCompile(const Stream &Root) const {
  Status St;
  CompileResult R = compileImpl(Root, Opts, &St);
  if (St.isOk())
    return R;
  // Degradation ladder: an optimization-pass or verifier failure means
  // the *rewritten* program is suspect — the program as written is not.
  // Recompile in Base mode and record why.
  if (Opts.Mode == OptMode::Base)
    return St.withContext("compile (base mode)");
  PipelineOptions BaseOpts = Opts;
  BaseOpts.Mode = OptMode::Base;
  Status BaseSt;
  CompileResult BaseR = compileImpl(Root, BaseOpts, &BaseSt);
  if (!BaseSt.isOk())
    return BaseSt.withContext("base-mode degraded recompile");
  BaseR.Degraded = true;
  BaseR.DegradeReason = St.str();
  return BaseR;
}

/// The shared pipeline body. With \p St null any verification failure
/// is fatal (compile()'s contract); with \p St non-null it is recorded
/// there and the partial result returned (tryCompile()'s contract).
/// \p Opts shadows the member deliberately: the degraded Base-mode
/// recompile reruns this body under modified options.
CompileResult CompilerPipeline::compileImpl(const Stream &Root,
                                            const PipelineOptions &Opts,
                                            Status *St) const {
  CompileResult R;
  AnalysisManager *AM = Opts.AM ? Opts.AM : &AnalysisManager::global();

  // VerifyRates: re-derive the balance equations of the current stream
  // after a rewrite pass, recorded as its own timed pass and fatal (with
  // the offending pass named) on the first inconsistency — a corrupted
  // rewrite dies here instead of as a wrong answer three passes later.
  // The pass-verifier-trip fault point injects a failure here to drive
  // the recovery ladder deterministically. Returns false when
  // compilation must stop (recoverable mode only).
  auto verifyAfter = [&](const Stream &S) {
    if (!Opts.VerifyAfterEachPass)
      return true;
    std::string After = R.Passes.empty() ? "<input>" : R.Passes.back().Name;
    std::string Err =
        runPass(R, "verify-rates", [&] { return verifyStreamRates(S); });
    R.Passes.back().Note = "after " + After;
    if (Err.empty() && faults::shouldFail(faults::Point::PassVerifierTrip))
      Err = "injected verifier trip";
    if (Err.empty())
      return true;
    std::string Msg =
        "rate verification failed after pass '" + After + "': " + Err;
    if (!St)
      fatalError(Msg);
    *St = Status(ErrorCode::VerifyFailed, Msg);
    return false;
  };

  // --- Persistent-artifact fast path -------------------------------------
  // A prior process (or this one, pre-cache-clear) that compiled this
  // exact (stream, configuration) left an alias record pointing at its
  // artifact; resolving it replaces every pass below with one load.
  ArtifactStore *Store = ArtifactStore::enabledGlobal();
  HashDigest AliasKey;
  bool Keyed = Store && pipelineAliasKey(Root, Opts, AliasKey);
  if (Keyed) {
    ArtifactStore::Key AK;
    if (Store->loadAlias(AliasKey, AK)) {
      auto Loaded = runPass(R, "artifact-load", [&] {
        return ProgramCache::global().lookup(AK.Structure, AK.Options);
      });
      if (Loaded) {
        R.Program = std::move(Loaded);
        R.ProgramCacheHit = true;
        R.Optimized = R.Program->root().clone();
        R.Passes.back().Note = R.Program->loadedFromArtifact()
                                   ? "disk artifact hit"
                                   : "program cache hit";
        if (Opts.Exec.Eng == Engine::Native)
          ensureNative(R);
        return R;
      }
      R.Passes.pop_back(); // stale alias: fall through to a full compile
    }
  }

  // --- Transformation passes --------------------------------------------
  switch (Opts.Mode) {
  case OptMode::Base:
    R.Optimized = runPass(R, "clone", [&] { return Root.clone(); });
    break;
  case OptMode::Linear:
  case OptMode::Freq:
  case OptMode::Redundancy: {
    LinearAnalysis::Options LO;
    LO.AM = AM;
    auto LA = runPass(R, "linear-analysis", [&] {
      return std::make_unique<LinearAnalysis>(Root, LO);
    });
    R.Passes.back().Note = analysisNote(*LA);
    if (Opts.Mode == OptMode::Linear)
      R.Optimized = runPass(R, "linear-replacement", [&] {
        return replaceLinear(Root, *LA, Opts.Combine, Opts.CodeGen);
      });
    else if (Opts.Mode == OptMode::Freq)
      R.Optimized = runPass(R, "frequency-replacement", [&] {
        return replaceFrequency(Root, *LA, Opts.Combine, Opts.Freq);
      });
    else
      R.Optimized = runPass(R, "redundancy-replacement",
                            [&] { return replaceRedundancy(Root, *LA); });
    break;
  }
  case OptMode::AutoSel: {
    // The DP requires an analysis built with its own (tighter)
    // combination limit, so it owns one; extraction and combinations
    // still hash-cons through the shared AnalysisManager.
    SelectionOptions SO;
    SO.Freq = Opts.Freq;
    SO.CodeGen = Opts.CodeGen;
    SO.Model = Opts.Model;
    SO.MaxMatrixElements = Opts.MaxMatrixElements;
    SO.AM = AM;
    if (!SO.Model && usesCompiledArtifact(Opts.Exec.Eng)) {
      // Select for the engine that will run the result (the parallel
      // backend executes the compiled engine's tapes and kernels, so it
      // shares the compiled coefficients).
      static const MeasuredCostModel CompiledModel{Engine::Compiled};
      SO.Model = &CompiledModel;
    }
    R.Optimized = runPass(R, "selection",
                          [&] { return selectOptimizations(Root, SO); });
    break;
  }
  }
  dumpAfterPass(Opts, R.Passes.size(), R.Passes.back().Name, *R.Optimized);
  if (!verifyAfter(*R.Optimized))
    return R;

  // --- Cleanup passes ----------------------------------------------------
  // Base mode runs the program as written; every other mode has already
  // rewritten the graph, so folding and pruning its generated parts keeps
  // outputs (and FLOP counts) bit-identical while shrinking the schedule.
  if (Opts.Mode != OptMode::Base && Opts.ConstFold) {
    CleanupStats CS;
    StreamPtr Folded = runPass(R, "linear-const-fold", [&] {
      return constFoldLinear(*R.Optimized, *AM, Opts.CodeGen, CS);
    });
    R.Passes.back().Note = CS.summary();
    if (Folded) {
      R.Optimized = std::move(Folded);
      dumpAfterPass(Opts, R.Passes.size(), "linear-const-fold",
                    *R.Optimized);
      if (!verifyAfter(*R.Optimized))
        return R;
    }
  }
  if (Opts.Mode != OptMode::Base && Opts.DeadChannelElim) {
    CleanupStats CS;
    StreamPtr Pruned = runPass(R, "dead-channel-elim", [&] {
      return eliminateDeadChannels(*R.Optimized, CS);
    });
    R.Passes.back().Note = CS.summary();
    if (Pruned) {
      R.Optimized = std::move(Pruned);
      dumpAfterPass(Opts, R.Passes.size(), "dead-channel-elim",
                    *R.Optimized);
      if (!verifyAfter(*R.Optimized))
        return R;
    }
  }

  // --- Lowering ----------------------------------------------------------
  if (!usesCompiledArtifact(Opts.Exec.Eng))
    return R;

  if (Opts.UseProgramCache) {
    bool Hit = false;
    R.Program = runPass(R, "lower", [&] {
      return ProgramCache::global().get(*R.Optimized, Opts.Exec.Compiled,
                                        &Hit);
    });
    R.ProgramCacheHit = Hit;
  } else {
    R.Program = runPass(R, "lower", [&] {
      return std::make_shared<const CompiledProgram>(*R.Optimized,
                                                     Opts.Exec.Compiled);
    });
  }
  if (R.ProgramCacheHit) {
    R.Passes.back().Note = R.Program->loadedFromArtifact()
                               ? "disk artifact hit"
                               : "program cache hit";
  } else {
    // Split the lowering pass into its recorded phases.
    const CompiledProgram::BuildStats &BS = R.Program->buildStats();
    R.Passes.pop_back();
    R.Passes.push_back({"flatten", BS.FlattenSeconds, std::string()});
    R.Passes.push_back({"schedule", BS.ScheduleSeconds, std::string()});
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "B=%d",
                  R.Program->options().BatchIterations);
    R.Passes.push_back({"tape-compile", BS.TapeSeconds, Buf});
    if (Opts.VerifyAfterEachPass) {
      // Cross-check the freshly computed static schedule against an
      // independent replay (cache and artifact hits were verified when
      // first compiled, and disk loads are checksum-validated).
      std::string Err = runPass(R, "verify-schedule", [&] {
        return verifySchedule(R.Program->graph(), R.Program->schedule());
      });
      R.Passes.back().Note = "after lower";
      if (!Err.empty()) {
        std::string Msg =
            "schedule verification failed after lowering: " + Err;
        if (!St)
          fatalError(Msg);
        *St = Status(ErrorCode::VerifyFailed, Msg);
        return R;
      }
      // The abstract-interpretation linter (src/verify/): three
      // independent oracles over the op tapes and schedule the
      // downstream engines are about to trust.
      struct LintPass {
        const char *Name;
        std::string (*Run)(const CompiledProgram &, verify::LintReport &);
      };
      const LintPass LintPasses[] = {{"verify-linear", verify::verifyLinear},
                                     {"verify-bounds", verify::verifyBounds},
                                     {"verify-state", verify::verifyState}};
      verify::LintReport Report;
      for (const LintPass &LP : LintPasses) {
        std::string LintErr =
            runPass(R, LP.Name, [&] { return LP.Run(*R.Program, Report); });
        R.Passes.back().Note = "after lower";
        if (LintErr.empty() &&
            faults::shouldFail(faults::Point::LintVerifierTrip))
          LintErr = std::string(LP.Name) + ": injected lint-verifier trip";
        if (!LintErr.empty()) {
          std::string Msg = "lint verification failed after lowering: " +
                            LintErr;
          if (!St)
            fatalError(Msg);
          *St = Status(ErrorCode::VerifyFailed, Msg);
          return R;
        }
      }
    }
  }
  // Leave a pipeline-key → artifact-key alias so the next warm start
  // resolves this configuration without running any pass. Only aliases
  // to artifacts that actually persisted (a program with an
  // unserializable native stays memory-only) are worth writing.
  if (Keyed && R.Program) {
    ArtifactStore::Key AK{structuralHash(*R.Optimized),
                          hashOptions(Opts.Exec.Compiled)};
    if (Store->contains(AK))
      Store->storeAlias(AliasKey, AK);
  }
  if (Opts.Exec.Eng == Engine::Native && R.Program)
    ensureNative(R);
  return R;
}

CompileResult slin::compileStream(const Stream &Root,
                                  const PipelineOptions &Opts) {
  return CompilerPipeline(Opts).compile(Root);
}
