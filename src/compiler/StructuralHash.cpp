//===- compiler/StructuralHash.cpp - Stream subtree hashing ------------------==//

#include "compiler/StructuralHash.h"

#include "support/Diag.h"

using namespace slin;
using namespace slin::wir;

namespace {

// Distinct tags keep different node categories from colliding even when
// their payload words happen to coincide.
enum HashTag : uint64_t {
  TagFilter = 0x11,
  TagPipeline = 0x12,
  TagSplitJoin = 0x13,
  TagFeedback = 0x14,
  TagNativeContent = 0x15,
  TagNativeIdentity = 0x16,
  TagWork = 0x21,
  TagInitWork = 0x22,
  TagField = 0x23,
  TagExpr = 0x31,
  TagStmt = 0x32,
  TagLinearNode = 0x41,
};

void hashExpr(HashStream &H, const Expr &E);

void hashExprOpt(HashStream &H, const Expr *E) {
  if (!E) {
    H.mix(0);
    return;
  }
  H.mix(1);
  hashExpr(H, *E);
}

void hashExpr(HashStream &H, const Expr &E) {
  H.mix(TagExpr);
  H.mixInt(static_cast<int64_t>(E.kind()));
  switch (E.kind()) {
  case ExprKind::Const:
    H.mixDouble(cast<ConstExpr>(&E)->Value);
    return;
  case ExprKind::VarRef:
    H.mixString(cast<VarRefExpr>(&E)->Name);
    return;
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRefExpr>(&E);
    H.mixString(A->Name);
    hashExpr(H, *A->Index);
    return;
  }
  case ExprKind::FieldRef: {
    const auto *F = cast<FieldRefExpr>(&E);
    H.mixString(F->Name);
    hashExprOpt(H, F->Index.get());
    return;
  }
  case ExprKind::Peek:
    hashExpr(H, *cast<PeekExpr>(&E)->Index);
    return;
  case ExprKind::Pop:
    return;
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(&E);
    H.mixInt(static_cast<int64_t>(B->Op));
    hashExpr(H, *B->LHS);
    hashExpr(H, *B->RHS);
    return;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(&E);
    H.mixInt(static_cast<int64_t>(U->Op));
    hashExpr(H, *U->Operand);
    return;
  }
  case ExprKind::Call: {
    const auto *C = cast<CallExpr>(&E);
    H.mixInt(static_cast<int64_t>(C->Fn));
    hashExpr(H, *C->Arg);
    return;
  }
  }
  unreachable("unknown expr kind");
}

void hashStmts(HashStream &H, const StmtList &Body);

void hashStmt(HashStream &H, const Stmt &S) {
  H.mix(TagStmt);
  H.mixInt(static_cast<int64_t>(S.kind()));
  switch (S.kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(&S);
    H.mixString(A->Name);
    hashExpr(H, *A->Value);
    return;
  }
  case StmtKind::ArrayAssign: {
    const auto *A = cast<ArrayAssignStmt>(&S);
    H.mixString(A->Name);
    hashExpr(H, *A->Index);
    hashExpr(H, *A->Value);
    return;
  }
  case StmtKind::FieldAssign: {
    const auto *F = cast<FieldAssignStmt>(&S);
    H.mixString(F->Name);
    hashExprOpt(H, F->Index.get());
    hashExpr(H, *F->Value);
    return;
  }
  case StmtKind::LocalArray: {
    const auto *L = cast<LocalArrayStmt>(&S);
    H.mixString(L->Name);
    H.mixInt(L->Size);
    return;
  }
  case StmtKind::Push:
    hashExpr(H, *cast<PushStmt>(&S)->Value);
    return;
  case StmtKind::PopDiscard:
    return;
  case StmtKind::For: {
    const auto *F = cast<ForStmt>(&S);
    H.mixString(F->Var);
    hashExpr(H, *F->Begin);
    hashExpr(H, *F->End);
    hashStmts(H, F->Body);
    return;
  }
  case StmtKind::If: {
    const auto *I = cast<IfStmt>(&S);
    hashExpr(H, *I->Cond);
    hashStmts(H, I->Then);
    hashStmts(H, I->Else);
    return;
  }
  case StmtKind::Print:
    hashExpr(H, *cast<PrintStmt>(&S)->Value);
    return;
  case StmtKind::Uncounted:
    hashStmts(H, cast<UncountedStmt>(&S)->Body);
    return;
  }
  unreachable("unknown stmt kind");
}

void hashStmts(HashStream &H, const StmtList &Body) {
  H.mix(Body.size());
  for (const StmtPtr &S : Body)
    hashStmt(H, *S);
}

void hashFields(HashStream &H, const std::vector<FieldDef> &Fields) {
  H.mix(Fields.size());
  for (const FieldDef &F : Fields) {
    H.mix(TagField);
    H.mixString(F.Name);
    H.mix(F.IsArray ? 1 : 0);
    H.mix(F.IsMutable ? 1 : 0);
    H.mix(F.Init.size());
    for (double V : F.Init)
      H.mixDouble(V);
  }
}

void hashWeights(HashStream &H, const std::vector<int> &W) {
  H.mix(W.size());
  for (int V : W)
    H.mixInt(V);
}

} // namespace

void slin::hashWorkFunction(HashStream &H, const WorkFunction &W) {
  H.mix(TagWork);
  H.mixInt(W.PeekRate);
  H.mixInt(W.PopRate);
  H.mixInt(W.PushRate);
  hashStmts(H, W.Body);
}

void slin::hashStream(HashStream &H, const Stream &S) {
  switch (S.kind()) {
  case StreamKind::Filter: {
    const auto *F = cast<Filter>(&S);
    H.mix(TagFilter);
    if (F->isNative()) {
      HashStream Content;
      if (F->native().hashContent(Content)) {
        H.mix(TagNativeContent);
        HashDigest D = Content.digest();
        H.mix(D.Lo);
        H.mix(D.Hi);
      } else {
        // No content hash: fall back to the filter's never-reused
        // instance id. Stable for the same filter object, unique across
        // objects (including a later allocation at the same address) —
        // persistent caches keyed on the enclosing digest never alias
        // distinct unhashable filters.
        H.mix(TagNativeIdentity);
        H.mix(F->native().instanceId());
      }
      return;
    }
    hashFields(H, F->fields());
    hashWorkFunction(H, F->work());
    if (const WorkFunction *IW = F->initWork()) {
      H.mix(TagInitWork);
      hashWorkFunction(H, *IW);
    } else {
      H.mix(0);
    }
    return;
  }
  case StreamKind::Pipeline: {
    const auto *P = cast<Pipeline>(&S);
    H.mix(TagPipeline);
    H.mix(P->children().size());
    for (const StreamPtr &C : P->children())
      hashStream(H, *C);
    return;
  }
  case StreamKind::SplitJoin: {
    const auto *SJ = cast<SplitJoin>(&S);
    H.mix(TagSplitJoin);
    H.mixInt(static_cast<int64_t>(SJ->splitter().Kind));
    hashWeights(H, SJ->splitter().Weights);
    hashWeights(H, SJ->joiner().Weights);
    H.mix(SJ->children().size());
    for (const StreamPtr &C : SJ->children())
      hashStream(H, *C);
    return;
  }
  case StreamKind::FeedbackLoop: {
    const auto *FB = cast<FeedbackLoop>(&S);
    H.mix(TagFeedback);
    hashWeights(H, FB->joiner().Weights);
    hashWeights(H, FB->splitter().Weights);
    H.mix(FB->enqueued().size());
    for (double V : FB->enqueued())
      H.mixDouble(V);
    hashStream(H, FB->body());
    hashStream(H, FB->loop());
    return;
  }
  }
  unreachable("unknown stream kind");
}

HashDigest slin::structuralHash(const Stream &S) {
  HashStream H;
  hashStream(H, S);
  return H.digest();
}

HashDigest slin::linearNodeHash(const LinearNode &N) {
  HashStream H;
  H.mix(TagLinearNode);
  H.mixInt(N.peekRate());
  H.mixInt(N.popRate());
  H.mixInt(N.pushRate());
  const Matrix &A = N.matrix();
  for (size_t R = 0; R != A.rows(); ++R) {
    const double *Row = A.rowData(R);
    for (size_t C = 0; C != A.cols(); ++C)
      H.mixDouble(Row[C]);
  }
  for (size_t I = 0; I != N.vector().size(); ++I)
    H.mixDouble(N.vector()[I]);
  return H.digest();
}
