//===- compiler/Pipeline.h - The compiler pipeline --------------*- C++ -*-===//
///
/// \file
/// The unified compilation pipeline: the paper's flow — linear analysis,
/// combination, replacement (linear / frequency / redundancy), automatic
/// selection, then lowering (flatten, schedule, tape-compile) — expressed
/// as named passes run by one driver, with per-pass wall-clock timing,
/// optional dump-after-pass (DOT + JSON of the stream after every
/// transform), a shared hash-consed analysis cache, and a program cache
/// that makes recompiling a structurally identical configuration a map
/// lookup.
///
/// PipelineOptions is the single options struct for the whole stack:
/// what used to be scattered across OptimizerOptions, MeasureOptions'
/// engine fields, and per-engine knob structs. `optimize()` and friends
/// (opt/Optimizer.h) are thin wrappers over CompilerPipeline::compile.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_COMPILER_PIPELINE_H
#define SLIN_COMPILER_PIPELINE_H

#include "compiler/Program.h"
#include "exec/ExecOptions.h"
#include "opt/Frequency.h"
#include "opt/LinearReplacement.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace slin {

class AnalysisManager;
class CostModel;

enum class OptMode {
  Base,       ///< run the program as written
  Linear,     ///< maximal linear replacement
  Freq,       ///< maximal frequency replacement
  Redundancy, ///< redundancy elimination on every linear filter
  AutoSel     ///< automatic optimization selection (Section 4.3)
};

const char *optModeName(OptMode M);

/// True when SLIN_VERIFY is set (non-empty, not "0") in the environment:
/// the default for PipelineOptions::VerifyAfterEachPass, letting CI runs
/// turn the verifier pass on across an unmodified test suite.
bool defaultVerifyAfterEachPass();

/// Options for the whole pipeline: transformation selection, the paper's
/// knobs, engine/exec options, caches and diagnostics.
struct PipelineOptions {
  OptMode Mode = OptMode::Base;
  /// Combine adjacent linear streams before replacement (Section 3.3);
  /// the paper's "(nc)" configurations disable this.
  bool Combine = true;
  LinearCodeGenStyle CodeGen = LinearCodeGenStyle::Auto;
  FrequencyOptions Freq;
  /// AutoSel cost model. Default: the paper's model — except when
  /// compiling for the compiled engine, where the measured model for that
  /// engine is substituted (its op tapes shift the time/frequency
  /// break-even points).
  const CostModel *Model = nullptr;
  /// AutoSel combination size guard (SelectionOptions::MaxMatrixElements).
  size_t MaxMatrixElements = size_t(1) << 22;

  /// LinearConstFold (opt/Cleanup.h): after replacement/selection,
  /// rebuild generated linear filters with compile-time-constant
  /// structure — pure-offset nodes become constant emitters, dead
  /// deep-peek rows are trimmed so buffers shrink. Never runs in Base
  /// mode (the program runs as written). Outputs and FLOP counts are
  /// bit-identical with the pass on or off.
  bool ConstFold = true;
  /// DeadChannelElim (opt/Cleanup.h): after replacement/selection,
  /// delete splitjoin branches whose outputs are never consumed (and
  /// the channels feeding them). Never runs in Base mode.
  bool DeadChannelElim = true;
  /// VerifyRates (opt/Cleanup.h): re-derive the balance equations after
  /// every rewrite pass and cross-check the static schedule after
  /// lowering, aborting with the offending pass's name on any
  /// inconsistency. Defaults to the SLIN_VERIFY environment variable.
  bool VerifyAfterEachPass = defaultVerifyAfterEachPass();

  /// Engine selection + knobs. With Engine::Compiled, compile() also
  /// lowers the optimized stream to a CompiledProgram artifact.
  ExecOptions Exec;

  /// Hash-consed analysis cache (null: process-global AnalysisManager).
  AnalysisManager *AM = nullptr;
  /// Consult/populate the global ProgramCache when lowering.
  bool UseProgramCache = true;

  /// Non-empty: after every transform pass, write
  /// <DumpDir>/<NN>-<pass>.dot and .json of the current stream.
  std::string DumpDir;
};

/// One executed pass, for timing reports and tests.
struct PassInfo {
  std::string Name;
  double Seconds = 0.0;
  std::string Note; ///< e.g. "12/14 filters linear", "program cache hit"
};

/// The result of running the pipeline on one stream.
struct CompileResult {
  StreamPtr Optimized;
  /// The reusable execution artifact; set when Exec.Eng == Compiled.
  CompiledProgramRef Program;
  bool ProgramCacheHit = false;
  std::vector<PassInfo> Passes;

  /// tryCompile only: the requested configuration failed and this
  /// result came from the degradation ladder (a Base-mode recompile).
  /// DegradeReason records the original failure for observability.
  bool Degraded = false;
  std::string DegradeReason;

  double totalSeconds() const;
  /// Human-readable per-pass timing table.
  std::string timingReport() const;
};

class CompilerPipeline {
public:
  explicit CompilerPipeline(PipelineOptions Opts) : Opts(std::move(Opts)) {}

  /// Runs the configured passes on \p Root. Fatal on a verifier
  /// failure — the historical contract, kept for tools and tests that
  /// want a broken rewrite to die loudly.
  CompileResult compile(const Stream &Root) const;

  /// The serving-path front door: like compile(), but a recoverable
  /// failure degrades instead of aborting. An optimization-pass or
  /// verifier failure (real, or injected via the pass-verifier-trip
  /// fault point) triggers one recompile in Base mode — the program as
  /// written, the always-correct degradation target — with the original
  /// failure recorded in CompileResult::DegradeReason. Only a failure
  /// of that Base recompile (or of Base itself) returns a Status.
  Expected<CompileResult> tryCompile(const Stream &Root) const;

  const PipelineOptions &options() const { return Opts; }

private:
  CompileResult compileImpl(const Stream &Root, const PipelineOptions &Opts,
                            Status *St) const;

  PipelineOptions Opts;
};

/// One-call convenience wrapper.
CompileResult compileStream(const Stream &Root, const PipelineOptions &Opts);

} // namespace slin

#endif // SLIN_COMPILER_PIPELINE_H
