//===- compiler/StructuralHash.h - Stream subtree hashing -------*- C++ -*-===//
///
/// \file
/// Content hashing of stream subtrees and linear nodes, the key machinery
/// behind the hash-consed analysis cache (compiler/AnalysisManager.h) and
/// the compiled-program cache (compiler/Program.h). Two structurally
/// identical subtrees — same construct kinds, rates, work-function IR,
/// field initializers, splitter/joiner weights — hash to the same 128-bit
/// digest regardless of object identity or stream *names*, so a filter
/// rebuilt by a fresh `optimize()` call hash-conses onto artifacts
/// compiled for an earlier, structurally equal configuration.
///
/// Names are deliberately excluded: they carry no execution semantics
/// (the replacers generate fresh "<name>_linear"-style labels on every
/// run, which must not defeat caching). Native filters participate via
/// NativeFilter::hashContent; a native filter without a content hash
/// makes the enclosing subtree hash by object identity — unique, so the
/// caches stay correct and merely miss.
///
//===----------------------------------------------------------------------===//

#ifndef SLIN_COMPILER_STRUCTURALHASH_H
#define SLIN_COMPILER_STRUCTURALHASH_H

#include "graph/Stream.h"
#include "linear/LinearNode.h"
#include "support/Hashing.h"

namespace slin {

/// Digest of a stream subtree (see file comment for what "structural"
/// includes and excludes).
HashDigest structuralHash(const Stream &S);

/// Mixes \p S's structure into an ongoing hash (for composite keys).
void hashStream(HashStream &H, const Stream &S);

/// Mixes a work function (rates + IR body) into \p H.
void hashWorkFunction(HashStream &H, const wir::WorkFunction &W);

/// Digest of a linear node's full content (rates, A, b) — the key under
/// which combination results are hash-consed.
HashDigest linearNodeHash(const LinearNode &N);

} // namespace slin

#endif // SLIN_COMPILER_STRUCTURALHASH_H
