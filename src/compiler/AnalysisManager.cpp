//===- compiler/AnalysisManager.cpp - Hash-consed analysis cache -------------==//

#include "compiler/AnalysisManager.h"

#include "linear/Analysis.h"
#include "support/StatsRegistry.h"

#include <algorithm>

using namespace slin;

AnalysisManager &AnalysisManager::global() {
  static AnalysisManager AM;
  return AM;
}

template <class V>
void AnalysisManager::evictOver(std::map<HashDigest, Entry<V>> &Map,
                                size_t Capacity, uint64_t &Evictions) {
  if (Map.size() <= Capacity)
    return;
  // Evict the oldest (excess + capacity/16) entries in one pass: the
  // slack amortizes the O(n) age scan over the next capacity/16 misses,
  // instead of rescanning the whole map under the mutex on every miss
  // at capacity. (Slack is 0 for tiny caps, where exact LRU is cheap.)
  size_t Target = Capacity - std::min(Capacity / 16, Capacity - 1);
  std::vector<std::pair<uint64_t, HashDigest>> Ages;
  Ages.reserve(Map.size());
  for (const auto &KV : Map)
    Ages.push_back({KV.second.LastUse, KV.first});
  size_t NEvict = Map.size() - Target;
  std::nth_element(Ages.begin(),
                   Ages.begin() + static_cast<ptrdiff_t>(NEvict - 1),
                   Ages.end());
  for (size_t I = 0; I != NEvict; ++I) {
    Map.erase(Ages[I].second);
    ++Evictions;
  }
}

std::shared_ptr<const ExtractionResult>
AnalysisManager::extraction(const Filter &F) {
  if (!enabled())
    return std::make_shared<ExtractionResult>(extractLinearNode(F));
  HashDigest Key = structuralHash(F);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Extractions.find(Key);
    if (It != Extractions.end()) {
      ++Counters.ExtractionHits;
      It->second.LastUse = ++UseClock;
      return It->second.Value;
    }
  }
  // Extraction runs outside the lock (it can be expensive); a racing
  // duplicate insert is harmless — both computed the same pure value.
  auto R = std::make_shared<const ExtractionResult>(extractLinearNode(F));
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.ExtractionMisses;
  auto It = Extractions.emplace(Key, Entry<decltype(R)>{R, ++UseClock}).first;
  It->second.LastUse = UseClock;
  auto Result = It->second.Value;
  evictOver(Extractions, ExtractionCapacity, Counters.ExtractionEvictions);
  return Result;
}

std::shared_ptr<const std::optional<LinearNode>>
AnalysisManager::combinePipeline(const LinearNode &First,
                                 const LinearNode &Second,
                                 size_t MaxElements) {
  if (!enabled())
    return std::make_shared<std::optional<LinearNode>>(
        tryCombinePipeline(First, Second, MaxElements));
  HashDigest Key;
  {
    HashStream HS;
    HS.mix(0xc011);
    HashDigest A = linearNodeHash(First), B = linearNodeHash(Second);
    HS.mix(A.Lo);
    HS.mix(A.Hi);
    HS.mix(B.Lo);
    HS.mix(B.Hi);
    HS.mix(MaxElements);
    Key = HS.digest();
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Combinations.find(Key);
    if (It != Combinations.end()) {
      ++Counters.CombineHits;
      It->second.LastUse = ++UseClock;
      return It->second.Value;
    }
  }
  auto R = std::make_shared<const std::optional<LinearNode>>(
      tryCombinePipeline(First, Second, MaxElements));
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.CombineMisses;
  auto It = Combinations.emplace(Key, Entry<decltype(R)>{R, ++UseClock}).first;
  It->second.LastUse = UseClock;
  auto Result = It->second.Value;
  evictOver(Combinations, CombinationCapacity, Counters.CombineEvictions);
  return Result;
}

std::shared_ptr<const std::optional<LinearNode>>
AnalysisManager::combineSplitJoin(const std::vector<LinearNode> &Children,
                                  bool Duplicate,
                                  const std::vector<int> &SplitWeights,
                                  const std::vector<int> &JoinWeights,
                                  size_t MaxElements) {
  if (!enabled())
    return std::make_shared<std::optional<LinearNode>>(tryCombineSplitJoin(
        Children, Duplicate, SplitWeights, JoinWeights, MaxElements));
  HashStream HS;
  HS.mix(0x51113);
  HS.mix(Children.size());
  for (const LinearNode &C : Children) {
    HashDigest D = linearNodeHash(C);
    HS.mix(D.Lo);
    HS.mix(D.Hi);
  }
  HS.mix(Duplicate ? 1 : 0);
  HS.mix(SplitWeights.size());
  for (int W : SplitWeights)
    HS.mixInt(W);
  HS.mix(JoinWeights.size());
  for (int W : JoinWeights)
    HS.mixInt(W);
  HS.mix(MaxElements);
  HashDigest Key = HS.digest();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Combinations.find(Key);
    if (It != Combinations.end()) {
      ++Counters.CombineHits;
      It->second.LastUse = ++UseClock;
      return It->second.Value;
    }
  }
  auto R = std::make_shared<const std::optional<LinearNode>>(
      tryCombineSplitJoin(Children, Duplicate, SplitWeights, JoinWeights,
                          MaxElements));
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.CombineMisses;
  auto It = Combinations.emplace(Key, Entry<decltype(R)>{R, ++UseClock}).first;
  It->second.LastUse = UseClock;
  auto Result = It->second.Value;
  evictOver(Combinations, CombinationCapacity, Counters.CombineEvictions);
  return Result;
}

void AnalysisManager::invalidate() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Extractions.clear();
  Combinations.clear();
}

void AnalysisManager::setEnabled(bool E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Enabled = E;
}

bool AnalysisManager::enabled() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Enabled;
}

void AnalysisManager::setCapacity(size_t Extractions_, size_t Combinations_) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ExtractionCapacity = Extractions_ ? Extractions_ : 1;
  CombinationCapacity = Combinations_ ? Combinations_ : 1;
  evictOver(Extractions, ExtractionCapacity, Counters.ExtractionEvictions);
  evictOver(Combinations, CombinationCapacity, Counters.CombineEvictions);
}

AnalysisManager::Stats AnalysisManager::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats S = Counters;
  S.ExtractionEntries = Extractions.size();
  S.CombineEntries = Combinations.size();
  return S;
}

namespace {
/// Publishes the analysis manager's counters into the unified snapshot
/// (support/StatsRegistry.h).
const StatsRegistry::Registration AnalysisStatsReg(
    "analysis", [](StatsRegistry::Counters &C) {
      AnalysisManager::Stats S = AnalysisManager::global().stats();
      C.emplace_back("extraction_hits", S.ExtractionHits);
      C.emplace_back("extraction_misses", S.ExtractionMisses);
      C.emplace_back("combine_hits", S.CombineHits);
      C.emplace_back("combine_misses", S.CombineMisses);
      C.emplace_back("extraction_evictions", S.ExtractionEvictions);
      C.emplace_back("combine_evictions", S.CombineEvictions);
      C.emplace_back("extraction_entries", S.ExtractionEntries);
      C.emplace_back("combine_entries", S.CombineEntries);
    });
} // namespace
