//===- compiler/AnalysisManager.cpp - Hash-consed analysis cache -------------==//

#include "compiler/AnalysisManager.h"

#include "linear/Analysis.h"

using namespace slin;

AnalysisManager &AnalysisManager::global() {
  static AnalysisManager AM;
  return AM;
}

std::shared_ptr<const ExtractionResult>
AnalysisManager::extraction(const Filter &F) {
  if (!enabled())
    return std::make_shared<ExtractionResult>(extractLinearNode(F));
  HashDigest Key = structuralHash(F);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Extractions.find(Key);
    if (It != Extractions.end()) {
      ++Counters.ExtractionHits;
      return It->second;
    }
  }
  // Extraction runs outside the lock (it can be expensive); a racing
  // duplicate insert is harmless — both computed the same pure value.
  auto R = std::make_shared<const ExtractionResult>(extractLinearNode(F));
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.ExtractionMisses;
  return Extractions.emplace(Key, std::move(R)).first->second;
}

std::shared_ptr<const std::optional<LinearNode>>
AnalysisManager::combinePipeline(const LinearNode &First,
                                 const LinearNode &Second,
                                 size_t MaxElements) {
  if (!enabled())
    return std::make_shared<std::optional<LinearNode>>(
        tryCombinePipeline(First, Second, MaxElements));
  HashDigest Key;
  {
    HashStream HS;
    HS.mix(0xc011);
    HashDigest A = linearNodeHash(First), B = linearNodeHash(Second);
    HS.mix(A.Lo);
    HS.mix(A.Hi);
    HS.mix(B.Lo);
    HS.mix(B.Hi);
    HS.mix(MaxElements);
    Key = HS.digest();
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Combinations.find(Key);
    if (It != Combinations.end()) {
      ++Counters.CombineHits;
      return It->second;
    }
  }
  auto R = std::make_shared<const std::optional<LinearNode>>(
      tryCombinePipeline(First, Second, MaxElements));
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.CombineMisses;
  return Combinations.emplace(Key, std::move(R)).first->second;
}

std::shared_ptr<const std::optional<LinearNode>>
AnalysisManager::combineSplitJoin(const std::vector<LinearNode> &Children,
                                  bool Duplicate,
                                  const std::vector<int> &SplitWeights,
                                  const std::vector<int> &JoinWeights,
                                  size_t MaxElements) {
  if (!enabled())
    return std::make_shared<std::optional<LinearNode>>(tryCombineSplitJoin(
        Children, Duplicate, SplitWeights, JoinWeights, MaxElements));
  HashStream HS;
  HS.mix(0x51113);
  HS.mix(Children.size());
  for (const LinearNode &C : Children) {
    HashDigest D = linearNodeHash(C);
    HS.mix(D.Lo);
    HS.mix(D.Hi);
  }
  HS.mix(Duplicate ? 1 : 0);
  HS.mix(SplitWeights.size());
  for (int W : SplitWeights)
    HS.mixInt(W);
  HS.mix(JoinWeights.size());
  for (int W : JoinWeights)
    HS.mixInt(W);
  HS.mix(MaxElements);
  HashDigest Key = HS.digest();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Combinations.find(Key);
    if (It != Combinations.end()) {
      ++Counters.CombineHits;
      return It->second;
    }
  }
  auto R = std::make_shared<const std::optional<LinearNode>>(
      tryCombineSplitJoin(Children, Duplicate, SplitWeights, JoinWeights,
                          MaxElements));
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Counters.CombineMisses;
  return Combinations.emplace(Key, std::move(R)).first->second;
}

void AnalysisManager::invalidate() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Extractions.clear();
  Combinations.clear();
}

void AnalysisManager::setEnabled(bool E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Enabled = E;
}

bool AnalysisManager::enabled() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Enabled;
}

AnalysisManager::Stats AnalysisManager::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}
